// Cholesky example: factor a sparse SPD finite-element matrix with the
// 2-D block Cholesky application on an emulated 4-processor machine, under
// a 60% memory budget, and verify the factorization numerically.
//
// This is the paper's first evaluation application end to end: symbolic
// factorization, block task-graph extraction, 2-D cyclic mapping, MPO
// ordering, MAP planning, concurrent execution with real dense kernels, and
// a residual check of ‖A − L·Lᵀ‖_F / ‖A‖_F.
package main

import (
	"fmt"
	"log"
	"math"

	"repro/internal/blas"
	"repro/internal/chol"
	"repro/internal/sparse"
	"repro/internal/util"
	"repro/rapid"
)

func main() {
	const procs = 4

	// A 2-D nine-point grid with irregular extra couplings, RCM-ordered,
	// with SPD values.
	rng := util.NewRNG(2026)
	pattern := sparse.AddRandomSymLinks(sparse.Grid2D(16, 12, true), 40, rng)
	pattern = pattern.PermuteSym(sparse.RCM(pattern))
	a := sparse.SPDValues(pattern, rng)
	fmt.Printf("matrix: n=%d, nnz=%d\n", a.N, a.Nnz())

	pr, err := chol.Build(a, chol.Options{Procs: procs, BlockSize: 8})
	if err != nil {
		log.Fatal(err)
	}
	prog := rapid.FromGraph(pr.G)
	fmt.Printf("task graph: %d tasks, %d block objects, %d edges\n",
		pr.G.NumTasks(), pr.G.NumObjects(), pr.G.NumEdges())

	// Compile with full memory first to learn the no-recycling requirement.
	free, err := rapid.Compile(prog, rapid.Options{Procs: procs, Heuristic: rapid.MPO})
	if err != nil {
		log.Fatal(err)
	}
	budget := free.TOT() * 60 / 100
	if budget < free.MinMem() {
		budget = free.MinMem()
	}
	plan, err := rapid.Compile(prog, rapid.Options{
		Procs:     procs,
		Heuristic: rapid.MPO,
		Memory:    budget,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("memory: TOT=%d units, budget=%d (%.0f%%), MIN_MEM=%d, planned MAPs/proc=%.2f\n",
		free.TOT(), budget, 100*float64(budget)/float64(free.TOT()), plan.MinMem(), plan.AvgMAPs())
	if !plan.Executable() {
		log.Fatal("schedule not executable under the budget")
	}

	report, err := rapid.Execute(prog, plan, rapid.ExecOptions{
		Kernel: pr.Kernel,
		Init:   pr.InitObject,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("executed: MAPs per proc %v, peak units %v\n", report.MAPsPerProc, report.PeakUnits)

	// Residual check against the input matrix.
	l := pr.AssembleL(report.Objects)
	n := a.N
	rec := make([]float64, n*n)
	blas.Gemm(false, true, n, n, n, 1, l, n, l, n, rec, n)
	ad := a.ToDense()
	num, den := 0.0, 0.0
	for i := 0; i < n; i++ {
		for j := 0; j <= i; j++ {
			d := ad[i*n+j] - rec[i*n+j]
			num += d * d
			den += ad[i*n+j] * ad[i*n+j]
		}
	}
	res := math.Sqrt(num / den)
	fmt.Printf("relative residual ‖A−LLᵀ‖/‖A‖ = %.3g\n", res)
	if res > 1e-10 {
		log.Fatal("residual too large")
	}

	// Timing on the simulated Cray-T3D.
	sim, err := rapid.Simulate(prog, plan, rapid.SimOptions{})
	if err != nil {
		log.Fatal(err)
	}
	base, err := rapid.Simulate(prog, free, rapid.SimOptions{Baseline: true})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("simulated T3D time: %.4g s (baseline %.4g s, +%.1f%% for 40%% memory saved)\n",
		sim.ParallelTime, base.ParallelTime, 100*(sim.ParallelTime/base.ParallelTime-1))
}
