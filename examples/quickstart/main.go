// Quickstart: the paper's Figure-2 worked example through the public API.
//
// It builds a 20-task / 11-object irregular task graph (the reconstruction
// of the paper's Figure 2), compiles it for two processors with each of the
// three ordering heuristics, and shows the time/space trade-off the paper
// demonstrates: RCP is fastest but needs the most memory, DTS needs the
// least memory but is slowest, MPO sits in between. It then executes the
// MPO schedule concurrently under the tightest memory budget it admits.
package main

import (
	"fmt"
	"log"

	"repro/internal/sched"
	"repro/internal/trace"
	"repro/rapid"
)

func main() {
	// The Figure-2 DAG comes with cyclic object owners already assigned
	// (owner(d_i) = (i-1) mod 2).
	prog := rapid.FromGraph(sched.Figure2DAG())

	fmt.Println("Figure 2 worked example: 20 tasks, 11 unit-size objects, 2 processors")
	fmt.Println()
	fmt.Printf("%-10s %10s %12s %12s\n", "heuristic", "MIN_MEM", "TOT", "pred. time")
	for _, h := range []rapid.Heuristic{rapid.RCP, rapid.MPO, rapid.DTS} {
		plan, err := rapid.Compile(prog, rapid.Options{
			Procs:     2,
			Heuristic: h,
			Model:     rapid.UnitCost(),
			Owners:    rapid.OwnersPreset,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-10v %10d %12d %12.0f\n", h, plan.MinMem(), plan.TOT(), plan.PredictedTime())
	}

	// Execute the MPO schedule under its own minimum memory: the planner
	// inserts extra MAPs, and the concurrent executor runs the five-state
	// protocol for real.
	plan, err := rapid.Compile(prog, rapid.Options{
		Procs:     2,
		Heuristic: rapid.MPO,
		Model:     rapid.UnitCost(),
		Owners:    rapid.OwnersPreset,
	})
	if err != nil {
		log.Fatal(err)
	}
	tight, err := rapid.Compile(prog, rapid.Options{
		Procs:     2,
		Heuristic: rapid.MPO,
		Model:     rapid.UnitCost(),
		Owners:    rapid.OwnersPreset,
		Memory:    plan.MinMem(),
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nMPO under %d units/processor: executable=%v, planned MAPs/proc=%.2f\n",
		plan.MinMem(), tight.Executable(), tight.AvgMAPs())

	report, err := rapid.Execute(prog, tight, rapid.ExecOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("concurrent run: MAPs=%v peak=%v units\n", report.MAPsPerProc, report.PeakUnits)

	// And a simulated timing run with a Gantt chart.
	rec := &trace.Recorder{}
	sim, err := rapid.Simulate(prog, tight, rapid.SimOptions{Trace: rec})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nsimulated parallel time: %.0f units, avg MAPs %.2f\n", sim.ParallelTime, sim.AvgMAPs)
	fmt.Print(rec.Gantt(72))
}
