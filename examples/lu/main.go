// LU example: solve an unsymmetric sparse system with the 1-D column-block
// LU-with-partial-pivoting application — the paper's second (and harder)
// evaluation code — executing concurrently under memory pressure, then
// verifying the solve.
//
// It demonstrates the DTS + slice-merging heuristic: the schedule fits a
// budget the RCP ordering cannot, while the merged slices keep the
// parallel time close to RCP's.
package main

import (
	"fmt"
	"log"
	"math"

	"repro/internal/lu"
	"repro/internal/sparse"
	"repro/internal/util"
	"repro/rapid"
)

func main() {
	const procs = 4

	rng := util.NewRNG(777)
	pattern := sparse.AddRandomUnsymLinks(sparse.Grid2D(14, 10, false), 60, rng)
	a := sparse.UnsymValues(pattern, rng)
	fmt.Printf("matrix: n=%d, nnz=%d (unsymmetric)\n", a.N, a.Nnz())

	pr, err := lu.Build(a, lu.Options{Procs: procs, BlockSize: 7})
	if err != nil {
		log.Fatal(err)
	}
	prog := rapid.FromGraph(pr.G)
	fmt.Printf("task graph: %d tasks over %d column panels\n", pr.G.NumTasks(), pr.NB)

	// How tight can memory get for each heuristic?
	fmt.Printf("\n%-10s %10s %12s\n", "heuristic", "MIN_MEM", "pred. time")
	var tot int64
	for _, h := range []rapid.Heuristic{rapid.RCP, rapid.MPO, rapid.DTS} {
		p, err := rapid.Compile(prog, rapid.Options{Procs: procs, Heuristic: h})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-10v %10d %12.4g\n", h, p.MinMem(), p.PredictedTime())
		tot = p.TOT()
	}

	// Pick a budget between DTS's and RCP's needs so only the
	// memory-efficient orderings fit, then compile DTS with slice merging.
	dtsPlan, err := rapid.Compile(prog, rapid.Options{Procs: procs, Heuristic: rapid.DTS})
	if err != nil {
		log.Fatal(err)
	}
	rcpPlan, err := rapid.Compile(prog, rapid.Options{Procs: procs, Heuristic: rapid.RCP})
	if err != nil {
		log.Fatal(err)
	}
	budget := (dtsPlan.MinMem() + rcpPlan.MinMem()) / 2
	fmt.Printf("\nbudget %d units/proc (TOT %d): RCP needs %d, DTS needs %d\n",
		budget, tot, rcpPlan.MinMem(), dtsPlan.MinMem())

	merged, err := rapid.Compile(prog, rapid.Options{
		Procs:     procs,
		Heuristic: rapid.DTSMerge,
		Memory:    budget,
	})
	if err != nil {
		log.Fatal(err)
	}
	if !merged.Executable() {
		log.Fatal("DTS+merge should fit the budget")
	}
	fmt.Printf("DTS+merge: executable, planned MAPs/proc %.2f, pred. time %.4g\n",
		merged.AvgMAPs(), merged.PredictedTime())

	report, err := rapid.Execute(prog, merged, rapid.ExecOptions{
		Kernel: pr.Kernel,
		Init:   pr.InitObject,
		BufLen: pr.BufLen,
	})
	if err != nil {
		log.Fatal(err)
	}

	// Solve A·x = b with the factored panels and check the answer.
	n := a.N
	xTrue := make([]float64, n)
	for i := range xTrue {
		xTrue[i] = rng.NormFloat64()
	}
	b := make([]float64, n)
	for j := 0; j < n; j++ {
		vals := a.ColVal(j)
		for k, i := range a.Col(j) {
			b[i] += vals[k] * xTrue[j]
		}
	}
	x := pr.Solve(report.Objects, b)
	maxErr := 0.0
	for i := range x {
		if d := math.Abs(x[i] - xTrue[i]); d > maxErr {
			maxErr = d
		}
	}
	fmt.Printf("solve max error vs known solution: %.3g\n", maxErr)
	if maxErr > 1e-6 {
		log.Fatal("solve error too large")
	}
	fmt.Println("ok")
}
