// Newton example: parallelizing Newton's method for a sparse nonlinear
// system — the paper notes "We have also used this system in parallelizing
// Newton's method to solve nonlinear systems", and this example shows why
// the inspector/executor split pays off there: the Jacobian's sparsity is
// invariant across iterations, so the task graph, the schedule and the
// memory plan are built ONCE, and only the executor runs per iteration
// with fresh numeric values.
//
// The system is a Bratu-style reaction-diffusion residual on a 2-D grid:
//
//	F(x) = A·x + c·x³ − b,   J(x) = A + 3c·diag(x²)
//
// Each Newton step factors J with the 1-D column-block sparse LU (partial
// pivoting) under a 60% memory budget and solves J·dx = −F(x).
package main

import (
	"fmt"
	"log"
	"math"

	"repro/internal/lu"
	"repro/internal/sparse"
	"repro/internal/util"
	"repro/rapid"
)

const c = 0.35 // nonlinearity strength

func main() {
	const procs = 4
	rng := util.NewRNG(99)

	// Fixed-pattern operator A: a diagonally dominant (well-conditioned)
	// grid operator with irregular extra couplings, as a discretized
	// diffusion term should be.
	pattern := sparse.AddRandomUnsymLinks(sparse.Grid2D(12, 10, false), 30, rng)
	pattern = pattern.SymmetrizePattern()
	a := sparse.SPDValues(pattern, rng)
	n := a.N

	// A known root x* defines b = A·x* + c·(x*)³.
	xStar := make([]float64, n)
	for i := range xStar {
		xStar[i] = 0.5 * rng.NormFloat64()
	}
	b := spmv(a, xStar)
	for i := range b {
		b[i] += c * xStar[i] * xStar[i] * xStar[i]
	}

	// Inspector: build the task graph and compile the schedule ONCE from
	// the Jacobian pattern (values are irrelevant to the structure).
	pr, err := lu.Build(jacobian(a, xStar), lu.Options{Procs: procs, BlockSize: 8})
	if err != nil {
		log.Fatal(err)
	}
	prog := rapid.FromGraph(pr.G)
	free, err := rapid.Compile(prog, rapid.Options{Procs: procs, Heuristic: rapid.MPO})
	if err != nil {
		log.Fatal(err)
	}
	budget := free.TOT() * 60 / 100
	if budget < free.MinMem() {
		budget = free.MinMem()
	}
	plan, err := rapid.Compile(prog, rapid.Options{Procs: procs, Heuristic: rapid.MPO, Memory: budget})
	if err != nil {
		log.Fatal(err)
	}
	if !plan.Executable() {
		log.Fatal("plan not executable under the budget")
	}
	fmt.Printf("system: n=%d nnz=%d; graph %d tasks over %d panels\n", n, a.Nnz(), pr.G.NumTasks(), pr.NB)
	fmt.Printf("compiled once: %.2f MAPs/proc under %d units (60%% of %d)\n\n",
		plan.AvgMAPs(), budget, free.TOT())

	// Executor: one concurrent factorization per Newton iteration.
	x := make([]float64, n) // start from zero
	fmt.Printf("%-5s %14s\n", "iter", "‖F(x)‖_inf")
	for it := 0; it < 12; it++ {
		f := residual(a, b, x)
		nrm := infNorm(f)
		fmt.Printf("%-5d %14.3e\n", it, nrm)
		if nrm < 1e-12 {
			break
		}
		if err := pr.SetMatrix(jacobian(a, x)); err != nil {
			log.Fatal(err)
		}
		report, err := rapid.Execute(prog, plan, rapid.ExecOptions{
			Kernel: pr.Kernel, Init: pr.InitObject, BufLen: pr.BufLen,
		})
		if err != nil {
			log.Fatal(err)
		}
		rhs := make([]float64, n)
		for i := range rhs {
			rhs[i] = -f[i]
		}
		dx := pr.Solve(report.Objects, rhs)
		for i := range x {
			x[i] += dx[i]
		}
	}
	maxErr := 0.0
	for i := range x {
		if d := math.Abs(x[i] - xStar[i]); d > maxErr {
			maxErr = d
		}
	}
	fmt.Printf("\nmax |x − x*| = %.3g\n", maxErr)
	if maxErr > 1e-8 {
		log.Fatal("Newton did not converge to the known root")
	}
	fmt.Println("converged: same schedule and memory plan reused every iteration")
}

// jacobian returns A + 3c·diag(x²) with A's pattern (diagonal present).
func jacobian(a *sparse.Matrix, x []float64) *sparse.Matrix {
	j := a.Clone()
	for col := 0; col < j.N; col++ {
		vals := j.ColVal(col)
		for k, i := range j.Col(col) {
			if int(i) == col {
				vals[k] = a.ColVal(col)[k] + 3*c*x[col]*x[col]
			}
		}
	}
	return j
}

// residual returns F(x) = A·x + c·x³ − b.
func residual(a *sparse.Matrix, b, x []float64) []float64 {
	f := spmv(a, x)
	for i := range f {
		f[i] += c*x[i]*x[i]*x[i] - b[i]
	}
	return f
}

func spmv(a *sparse.Matrix, x []float64) []float64 {
	y := make([]float64, a.N)
	for j := 0; j < a.N; j++ {
		vals := a.ColVal(j)
		for k, i := range a.Col(j) {
			y[i] += vals[k] * x[j]
		}
	}
	return y
}

func infNorm(v []float64) float64 {
	m := 0.0
	for _, x := range v {
		if a := math.Abs(x); a > m {
			m = a
		}
	}
	return m
}
