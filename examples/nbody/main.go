// N-body example: an irregular interaction task graph in the style of the
// paper's second motivating application class (N-body galaxy simulations).
//
// Bodies are grouped into spatial clusters; a timestep computes
// cluster-cluster interactions whose cost and communication pattern depend
// on an irregular proximity structure: close pairs get pairwise-accurate
// expensive tasks, mid-range pairs cheap multipole-style ones, and far
// pairs do not interact at all. Accumulation tasks for a cluster's force
// commute, exactly the kind of mixed-granularity commutative parallelism
// RAPID targets. One timestep is one task graph — the paper's iterative
// applications re-execute the same schedule every step, so the inspector
// runs once. The example runs the step under a tight memory budget and
// compares heuristics.
package main

import (
	"fmt"
	"log"

	"repro/internal/util"
	"repro/rapid"
)

func main() {
	const (
		procs    = 4
		clusters = 32
	)
	rng := util.NewRNG(4242)

	// Random cluster positions on a unit square drive the proximity
	// structure.
	xs := make([]float64, clusters)
	ys := make([]float64, clusters)
	sizes := make([]int64, clusters)
	for c := 0; c < clusters; c++ {
		xs[c], ys[c] = rng.Float64(), rng.Float64()
		sizes[c] = int64(20 + rng.Intn(100)) // bodies per cluster: irregular
	}

	b := rapid.NewBuilder()
	pos := make([]rapid.ObjID, clusters)
	force := make([]rapid.ObjID, clusters)
	for c := 0; c < clusters; c++ {
		pos[c] = b.Object(fmt.Sprintf("pos%d", c), sizes[c]*3)
		force[c] = b.Object(fmt.Sprintf("frc%d", c), sizes[c]*3)
	}

	// Force initialization.
	for c := 0; c < clusters; c++ {
		b.Task(fmt.Sprintf("zero.%d", c), float64(sizes[c]), nil, []rapid.ObjID{force[c]})
	}
	// Pairwise interactions within the cutoff radius: near pairs are
	// expensive direct interactions, mid-range pairs cheap multipole ones.
	interactions := 0
	for i := 0; i < clusters; i++ {
		for j := 0; j < clusters; j++ {
			if i == j {
				continue
			}
			dx, dy := xs[i]-xs[j], ys[i]-ys[j]
			d2 := dx*dx + dy*dy
			if d2 > 0.2 {
				continue // beyond the cutoff: no task at all
			}
			cost := float64(sizes[i] * sizes[j])
			name := fmt.Sprintf("multi.%d-%d", i, j)
			if d2 < 0.05 {
				cost *= 16 // direct pairwise
				name = fmt.Sprintf("near.%d-%d", i, j)
			}
			b.CommutativeTask(name, cost,
				[]rapid.ObjID{pos[j], force[i]}, []rapid.ObjID{force[i]})
			interactions++
		}
	}
	// Position update from accumulated forces.
	for c := 0; c < clusters; c++ {
		b.Task(fmt.Sprintf("step.%d", c), float64(sizes[c]*4),
			[]rapid.ObjID{force[c], pos[c]}, []rapid.ObjID{pos[c]})
	}
	fmt.Printf("%d interaction tasks within the cutoff\n", interactions)

	prog, err := b.Build()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("n-body graph: %d tasks, %d objects, %d edges, depth %d\n",
		prog.G.NumTasks(), prog.G.NumObjects(), prog.G.NumEdges(), prog.G.Depth())

	fmt.Printf("\n%-10s %10s %10s %12s %10s\n", "heuristic", "MIN_MEM", "TOT", "pred. time", "MAPs@60%")
	for _, h := range []rapid.Heuristic{rapid.RCP, rapid.MPO, rapid.DTS, rapid.DTSMerge} {
		free, err := rapid.Compile(prog, rapid.Options{
			Procs: procs, Heuristic: h, Owners: rapid.OwnersCyclic,
		})
		if err != nil {
			log.Fatal(err)
		}
		budget := free.TOT() * 60 / 100
		plan, err := rapid.Compile(prog, rapid.Options{
			Procs: procs, Heuristic: h, Owners: rapid.OwnersCyclic, Memory: budget,
		})
		if err != nil {
			log.Fatal(err)
		}
		maps := "inf"
		if plan.Executable() {
			maps = fmt.Sprintf("%.2f", plan.AvgMAPs())
			// Run the protocol for real (structure-only).
			if _, err := rapid.Execute(prog, plan, rapid.ExecOptions{}); err != nil {
				log.Fatal(err)
			}
		}
		fmt.Printf("%-10v %10d %10d %12.4g %10s\n", h, free.MinMem(), free.TOT(), free.PredictedTime(), maps)
	}
	fmt.Println("\nall executable configurations ran to completion under the five-state protocol")
	fmt.Println("note: MPO is the only heuristic fitting the 60% budget here — the")
	fmt.Println("force/position accesses interleave, so the DTS data connection graph")
	fmt.Println("collapses into one strongly connected component (a single slice) and")
	fmt.Println("DTS degrades to critical-path ordering, exactly as Section 4.2 warns")
	fmt.Println("can happen when accesses of two data objects are interleaved.")
}
