package rapid_test

import (
	"bytes"
	"testing"

	"repro/rapid"
)

func TestVerifyPlanCleanAcrossHeuristics(t *testing.T) {
	for _, h := range []rapid.Heuristic{rapid.RCP, rapid.MPO, rapid.DTS, rapid.DTSMerge, rapid.TreeMem} {
		for _, memDiv := range []int64{0, 2} {
			prog := pipelineProgram(t)
			opt := rapid.Options{Procs: 2, Heuristic: h, Owners: rapid.OwnersLoadBalanced}
			if memDiv > 0 {
				free, err := rapid.Compile(prog, opt)
				if err != nil {
					t.Fatal(err)
				}
				opt.Memory = free.TOT() - (free.TOT()-free.MinMem())/memDiv
			}
			plan, err := rapid.Compile(prog, opt)
			if err != nil {
				t.Fatalf("%v: %v", h, err)
			}
			res := rapid.VerifyPlan(plan)
			if !res.OK() {
				t.Errorf("%v/memDiv=%d: compiled plan fails verification: %v", h, memDiv, res.Err())
			}
		}
	}
}

func TestVerifyPlanDetectsTampering(t *testing.T) {
	prog := pipelineProgram(t)
	plan, err := rapid.Compile(prog, rapid.Options{Procs: 2, Owners: rapid.OwnersLoadBalanced})
	if err != nil {
		t.Fatal(err)
	}
	plan.Mem.Procs[0].Peak++
	res := rapid.VerifyPlan(plan)
	if res.OK() {
		t.Fatal("tampered peak not detected")
	}
	if res.Err() == nil {
		t.Fatal("Err must summarize findings")
	}
}

func TestVerifyPlanNil(t *testing.T) {
	if res := rapid.VerifyPlan(nil); res.OK() {
		t.Fatal("nil plan verified clean")
	}
}

// FuzzPlanVerifyRoundTrip asserts the codec can never turn a verified plan
// into an unverifiable one: for every generated program, the compiled plan
// verifies clean, its marshal/unmarshal round trip verifies clean, and the
// re-encoding is byte-identical.
func FuzzPlanVerifyRoundTrip(f *testing.F) {
	f.Add(uint8(6), uint8(2), uint8(0), uint8(100))
	f.Add(uint8(10), uint8(3), uint8(1), uint8(60))
	f.Add(uint8(17), uint8(4), uint8(3), uint8(80))
	f.Add(uint8(3), uint8(1), uint8(2), uint8(100))
	f.Fuzz(func(t *testing.T, nTasks, procs, heur, memPct uint8) {
		n := 2 + int(nTasks)%24
		p := 1 + int(procs)%4
		h := rapid.Heuristic(heur % 4)
		pct := 40 + int(memPct)%61

		// A deterministic layered program: task i reads up to two earlier
		// objects chosen by a hash of (i, nTasks) and writes object i.
		b := rapid.NewBuilder()
		objs := make([]rapid.ObjID, n)
		for i := 0; i < n; i++ {
			objs[i] = b.Object(name("o", i%10)+name("x", i/10), int64(1+i%5))
		}
		for i := 0; i < n; i++ {
			var reads []rapid.ObjID
			if i > 0 {
				reads = append(reads, objs[(i*7+int(nTasks))%i])
			}
			if i > 1 {
				r2 := objs[(i*13+int(procs))%i]
				if r2 != reads[0] {
					reads = append(reads, r2)
				}
			}
			b.Task(name("t", i%10)+name("y", i/10), float64(5+i%7), reads, []rapid.ObjID{objs[i]})
		}
		prog, err := b.Build()
		if err != nil {
			t.Fatal(err)
		}
		opt := rapid.Options{Procs: p, Heuristic: h, Owners: rapid.OwnersLoadBalanced}
		free, err := rapid.Compile(prog, opt)
		if err != nil {
			t.Fatal(err)
		}
		opt.Memory = free.TOT() * int64(pct) / 100
		plan, err := rapid.Compile(prog, opt)
		if err != nil {
			// A fuzzed budget below the permanent footprint cannot be
			// scheduled at all; the round-trip property only covers plans
			// that compile.
			t.Skip(err)
		}
		if res := rapid.VerifyPlan(plan); !res.OK() {
			t.Fatalf("compiled plan fails verification: %v", res.Err())
		}
		enc, err := rapid.MarshalPlan(plan)
		if err != nil {
			t.Fatal(err)
		}
		back, err := rapid.UnmarshalPlan(enc)
		if err != nil {
			t.Fatal(err)
		}
		if res := rapid.VerifyPlan(back); !res.OK() {
			t.Fatalf("round-tripped plan fails verification: %v", res.Err())
		}
		enc2, err := rapid.MarshalPlan(back)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(enc, enc2) {
			t.Fatal("re-encoding not byte-identical")
		}
	})
}
