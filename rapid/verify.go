package rapid

import (
	"fmt"
	"os"
	"sync"

	"repro/internal/verify"
)

// VerifyResult is the static verifier's report for one plan: the findings
// (empty for a clean plan), the symbolically replayed per-processor peaks
// and the count of invariants checked. See internal/verify and DESIGN.md §8
// for the paper-claim-by-claim correspondence.
type VerifyResult = verify.Result

// VerifyFinding is one verifier diagnostic.
type VerifyFinding = verify.Finding

// VerifyPlan statically verifies a compiled plan without executing it:
// MAP-before-first-use liveness per processor (use-after-free, double-free
// and leak detection), cross-processor wait-for acyclicity (the Theorem 1
// deadlock-freedom precondition, with the full blocking chain on failure),
// symbolic allocator replay against the declared peaks and AVAIL_MEM, and
// arrival-threshold / address-package cross-checks.
func VerifyPlan(p *Plan) *VerifyResult {
	if p == nil {
		return verify.Check(nil, nil)
	}
	return verify.Check(p.Schedule, p.Mem)
}

var (
	debugVerifyOnce sync.Once
	debugVerify     bool
)

// debugVerifyEnabled reports whether RAPID_VERIFY=1 asks every Compile to
// assert its own output (a debug mode for scheduler/planner development;
// the plan boundaries — cache load, daemon admission, CLIs — verify
// unconditionally).
func debugVerifyEnabled() bool {
	debugVerifyOnce.Do(func() {
		debugVerify = os.Getenv("RAPID_VERIFY") == "1"
	})
	return debugVerify
}

// assertVerified is called by Compile under RAPID_VERIFY=1.
func assertVerified(p *Plan) error {
	if !debugVerifyEnabled() {
		return nil
	}
	if res := VerifyPlan(p); !res.OK() {
		return fmt.Errorf("rapid: compiled plan failed static verification (compiler bug): %w", res.Err())
	}
	return nil
}
