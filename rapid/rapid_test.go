package rapid_test

import (
	"math"
	"testing"

	"repro/internal/sched"
	"repro/internal/trace"
	"repro/rapid"
)

// pipelineProgram builds a small irregular program through the public API:
// stage producers, cross-stage combiners, a reduction.
func pipelineProgram(t *testing.T) *rapid.Program {
	t.Helper()
	b := rapid.NewBuilder()
	var stage1, stage2 []rapid.ObjID
	for i := 0; i < 6; i++ {
		o := b.Object(name("a", i), 4)
		stage1 = append(stage1, o)
		b.Task(name("p", i), 10, nil, []rapid.ObjID{o})
	}
	for i := 0; i < 3; i++ {
		o := b.Object(name("b", i), 8)
		stage2 = append(stage2, o)
		b.Task(name("c", i), 25, []rapid.ObjID{stage1[2*i], stage1[2*i+1]}, []rapid.ObjID{o})
	}
	acc := b.Object("acc", 8)
	b.Task("init", 1, nil, []rapid.ObjID{acc})
	for i := 0; i < 3; i++ {
		b.CommutativeTask(name("r", i), 15, []rapid.ObjID{stage2[i], acc}, []rapid.ObjID{acc})
	}
	prog, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return prog
}

func name(p string, i int) string { return p + string(rune('0'+i)) }

func TestCompileAndExecuteAllHeuristics(t *testing.T) {
	for _, h := range []rapid.Heuristic{rapid.RCP, rapid.MPO, rapid.DTS, rapid.DTSMerge, rapid.TreeMem} {
		prog := pipelineProgram(t)
		plan, err := rapid.Compile(prog, rapid.Options{
			Procs:     2,
			Heuristic: h,
			Owners:    rapid.OwnersLoadBalanced,
		})
		if err != nil {
			t.Fatalf("%v: %v", h, err)
		}
		if !plan.Executable() {
			t.Fatalf("%v: full-memory plan must be executable", h)
		}
		if plan.MinMem() <= 0 || plan.TOT() < plan.MinMem() || plan.PredictedTime() <= 0 {
			t.Fatalf("%v: bad plan stats", h)
		}
		rep, err := rapid.Execute(prog, plan, rapid.ExecOptions{})
		if err != nil {
			t.Fatalf("%v: %v", h, err)
		}
		if len(rep.MAPsPerProc) != 2 {
			t.Fatalf("%v: MAPs per proc %v", h, rep.MAPsPerProc)
		}
	}
}

func TestExecuteNumericKernels(t *testing.T) {
	// sum three produced values through the API with real kernels.
	b := rapid.NewBuilder()
	var in []rapid.ObjID
	for i := 0; i < 3; i++ {
		in = append(in, b.Object(name("x", i), 1))
	}
	out := b.Object("out", 1)
	var prods []rapid.TaskID
	for i := 0; i < 3; i++ {
		prods = append(prods, b.Task(name("p", i), 1, nil, []rapid.ObjID{in[i]}))
	}
	b.Task("init", 1, nil, []rapid.ObjID{out})
	for i := 0; i < 3; i++ {
		b.CommutativeTask(name("s", i), 1, []rapid.ObjID{in[i], out}, []rapid.ObjID{out})
	}
	prog, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	plan, err := rapid.Compile(prog, rapid.Options{Procs: 2, Heuristic: rapid.MPO, Owners: rapid.OwnersCyclic})
	if err != nil {
		t.Fatal(err)
	}
	prodSet := map[rapid.TaskID]float64{prods[0]: 2, prods[1]: 3, prods[2]: 5}
	rep2, err2 := rapid.Execute(prog, plan, rapid.ExecOptions{
		Kernel: func(tk rapid.TaskID, get func(rapid.ObjID) []float64) error {
			task := prog.G.Tasks[tk]
			switch {
			case len(task.Reads) == 0 && len(task.Writes) == 1:
				buf := get(task.Writes[0])
				if v, ok := prodSet[tk]; ok {
					buf[0] = v
				} else {
					buf[0] = 0 // init
				}
			case len(task.Reads) == 2:
				get(task.Writes[0])[0] += get(task.Reads[0])[0]
			}
			return nil
		},
	})
	if err2 != nil {
		t.Fatal(err2)
	}
	var outID rapid.ObjID
	for oi := range prog.G.Objects {
		if prog.G.Objects[oi].Name == "out" {
			outID = rapid.ObjID(oi)
		}
	}
	if got := rep2.Objects[outID][0]; math.Abs(got-10) > 1e-15 {
		t.Fatalf("sum = %v, want 10", got)
	}
}

func TestSimulateBaselineVsManaged(t *testing.T) {
	prog := rapid.FromGraph(sched.Figure2DAG())
	plan, err := rapid.Compile(prog, rapid.Options{
		Procs: 2, Heuristic: rapid.MPO, Model: rapid.UnitCost(), Owners: rapid.OwnersPreset,
	})
	if err != nil {
		t.Fatal(err)
	}
	tight, err := rapid.Compile(prog, rapid.Options{
		Procs: 2, Heuristic: rapid.MPO, Model: rapid.UnitCost(), Owners: rapid.OwnersPreset,
		Memory: plan.MinMem(),
	})
	if err != nil {
		t.Fatal(err)
	}
	rec := &trace.Recorder{}
	sim, err := rapid.Simulate(prog, tight, rapid.SimOptions{Trace: rec})
	if err != nil {
		t.Fatal(err)
	}
	base, err := rapid.Simulate(prog, plan, rapid.SimOptions{Baseline: true})
	if err != nil {
		t.Fatal(err)
	}
	if sim.ParallelTime < base.ParallelTime {
		t.Fatalf("managed faster than baseline: %v < %v", sim.ParallelTime, base.ParallelTime)
	}
	if sim.AvgMAPs < 1 {
		t.Fatalf("AvgMAPs %v", sim.AvgMAPs)
	}
	if rec.Makespan() <= 0 {
		t.Fatalf("trace empty")
	}
}

func TestCompileErrors(t *testing.T) {
	prog := pipelineProgram(t)
	if _, err := rapid.Compile(prog, rapid.Options{Procs: 0}); err == nil {
		t.Fatalf("Procs=0 must error")
	}
}

func TestNonExecutableBudgetReported(t *testing.T) {
	prog := rapid.FromGraph(sched.Figure2DAG())
	plan, err := rapid.Compile(prog, rapid.Options{
		Procs: 2, Heuristic: rapid.RCP, Model: rapid.UnitCost(), Owners: rapid.OwnersPreset,
		Memory: 6, // below RCP's MIN_MEM of 9
	})
	if err != nil {
		t.Fatal(err)
	}
	if plan.Executable() {
		t.Fatalf("6 units must not be executable for RCP (MinMem %d)", plan.MinMem())
	}
	if _, err := rapid.Execute(prog, plan, rapid.ExecOptions{}); err == nil {
		t.Fatalf("Execute must reject non-executable plans")
	}
}
