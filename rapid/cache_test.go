package rapid_test

import (
	"bytes"
	"testing"

	"repro/internal/chol"
	"repro/internal/sparse"
	"repro/internal/trace"
	"repro/internal/util"
	"repro/rapid"
)

// cholProgram builds the same sparse-Cholesky program deterministically on
// every call, with owners preset by the 2-D block mapping.
func cholProgram(t testing.TB, procs int) (*rapid.Program, *chol.Problem) {
	t.Helper()
	rng := util.NewRNG(7)
	m := sparse.AddRandomSymLinks(sparse.Grid2D(12, 10, true), 40, rng)
	m = sparse.SPDValues(m.PermuteSym(sparse.RCM(m)), rng)
	pr, err := chol.Build(m, chol.Options{Procs: procs, BlockSize: 8})
	if err != nil {
		t.Fatal(err)
	}
	return rapid.FromGraph(pr.G), pr
}

// TestCompileDeterministic is the content-addressing prerequisite: two
// independent compilations of the same input must serialize to identical
// bytes, for every heuristic and owner policy that feeds the cache.
func TestCompileDeterministic(t *testing.T) {
	for _, h := range []rapid.Heuristic{rapid.RCP, rapid.MPO, rapid.DTS, rapid.DTSMerge, rapid.TreeMem} {
		for _, owners := range []rapid.OwnerPolicy{rapid.OwnersPreset, rapid.OwnersCyclic, rapid.OwnersLoadBalanced, rapid.OwnersDSC} {
			opt := rapid.Options{Procs: 4, Heuristic: h, Owners: owners, Memory: 0}
			prog1, _ := cholProgram(t, 4)
			prog2, _ := cholProgram(t, 4)
			if rapid.Fingerprint(prog1, opt) != rapid.Fingerprint(prog2, opt) {
				t.Fatalf("%v/%d: fingerprints differ for identical inputs", h, owners)
			}
			p1, err := rapid.Compile(prog1, opt)
			if err != nil {
				t.Fatalf("%v/%d: %v", h, owners, err)
			}
			p2, err := rapid.Compile(prog2, opt)
			if err != nil {
				t.Fatalf("%v/%d: %v", h, owners, err)
			}
			e1, err := rapid.MarshalPlan(p1)
			if err != nil {
				t.Fatalf("%v/%d: %v", h, owners, err)
			}
			e2, err := rapid.MarshalPlan(p2)
			if err != nil {
				t.Fatalf("%v/%d: %v", h, owners, err)
			}
			if !bytes.Equal(e1, e2) {
				t.Errorf("%v/%d: identical Compile calls serialized differently", h, owners)
			}
		}
	}
}

func TestMarshalPlanRoundTrip(t *testing.T) {
	prog, _ := cholProgram(t, 3)
	p, err := rapid.Compile(prog, rapid.Options{Procs: 3, Heuristic: rapid.DTSMerge, Memory: 0})
	if err != nil {
		t.Fatal(err)
	}
	enc, err := rapid.MarshalPlan(p)
	if err != nil {
		t.Fatal(err)
	}
	got, err := rapid.UnmarshalPlan(enc)
	if err != nil {
		t.Fatal(err)
	}
	enc2, err := rapid.MarshalPlan(got)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(enc, enc2) {
		t.Error("round trip is not byte-stable")
	}
	if got.Capacity != p.Capacity || got.MinMem() != p.MinMem() || got.PredictedTime() != p.PredictedTime() {
		t.Error("round trip changed plan statistics")
	}
}

// TestCachedPlanExecutesIdentically is the end-to-end acceptance check:
// executing from a cache-loaded plan (decoded from disk, fresh graph
// object) produces bitwise-identical numeric results to executing from a
// fresh Compile.
func TestCachedPlanExecutesIdentically(t *testing.T) {
	const procs = 3
	opt := rapid.Options{Procs: procs, Heuristic: rapid.MPO, Memory: 0}

	prog, pr := cholProgram(t, procs)
	fresh, err := rapid.Compile(prog, opt)
	if err != nil {
		t.Fatal(err)
	}
	wantRep, err := rapid.Execute(prog, fresh, rapid.ExecOptions{Kernel: pr.Kernel, Init: pr.InitObject})
	if err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	metrics := trace.NewMetrics()
	warm := rapid.NewPlanCache(rapid.PlanCacheConfig{Dir: dir, Metrics: metrics})
	prog2, _ := cholProgram(t, procs)
	if _, src, err := rapid.CompileCached(prog2, opt, warm); err != nil || src != rapid.FromCompile {
		t.Fatalf("warmup: src=%v err=%v", src, err)
	}
	// Second lookup in the same cache: memory hit.
	prog3, pr3 := cholProgram(t, procs)
	cached, src, err := rapid.CompileCached(prog3, opt, warm)
	if err != nil || src != rapid.FromMemory {
		t.Fatalf("memory lookup: src=%v err=%v", src, err)
	}
	_ = cached
	// Fresh cache over the same dir: the plan now comes from disk, with a
	// deserialized graph; execute it with prog3's kernels (IDs match).
	cold := rapid.NewPlanCache(rapid.PlanCacheConfig{Dir: dir, Metrics: metrics})
	loaded, src, err := rapid.CompileCached(prog3, opt, cold)
	if err != nil || src != rapid.FromDisk {
		t.Fatalf("disk lookup: src=%v err=%v", src, err)
	}
	gotRep, err := rapid.Execute(rapid.ProgramOf(loaded), loaded, rapid.ExecOptions{Kernel: pr3.Kernel, Init: pr3.InitObject})
	if err != nil {
		t.Fatal(err)
	}

	if len(wantRep.Objects) != len(gotRep.Objects) {
		t.Fatalf("object count %d != %d", len(wantRep.Objects), len(gotRep.Objects))
	}
	for o, want := range wantRep.Objects {
		got, ok := gotRep.Objects[o]
		if !ok {
			t.Fatalf("object %d missing from cached-plan run", o)
		}
		if len(want) != len(got) {
			t.Fatalf("object %d length %d != %d", o, len(want), len(got))
		}
		for i := range want {
			if want[i] != got[i] {
				t.Fatalf("object %d[%d]: %v != %v (cached plan diverged)", o, i, want[i], got[i])
			}
		}
	}
	// And the factor is actually right, not just consistent.
	seq, err := pr.SequentialFactor()
	if err != nil {
		t.Fatal(err)
	}
	for o, want := range seq {
		got := gotRep.Objects[o]
		for i := range want {
			if d := want[i] - got[i]; d > 1e-8 || d < -1e-8 {
				t.Fatalf("object %d[%d]: %v vs sequential %v", o, i, got[i], want[i])
			}
		}
	}
	if metrics.Get("plancache.miss") != 1 || metrics.Get("plancache.hit.mem") != 1 || metrics.Get("plancache.hit.disk") != 1 {
		t.Errorf("counters: %v", metrics.Snapshot())
	}
}

func TestCompileCachedNilCache(t *testing.T) {
	prog, _ := cholProgram(t, 2)
	p, src, err := rapid.CompileCached(prog, rapid.Options{Procs: 2}, nil)
	if err != nil || src != rapid.FromCompile || p == nil {
		t.Fatalf("nil cache: p=%v src=%v err=%v", p, src, err)
	}
}
