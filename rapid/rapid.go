// Package rapid is the public API of the library: a run-time system for
// executing irregular task-graph computations on (emulated) distributed
// memory machines under per-processor memory constraints, reproducing Fu &
// Yang, "Space and Time Efficient Execution of Parallel Irregular
// Computations" (PPoPP 1997).
//
// The programming model follows the inspector/executor style of the RAPID
// system: the application declares its distinct data objects and the tasks
// that read/write them (in sequential program order); the library derives
// the transformed true-dependence task graph, clusters and maps tasks with
// the owner-compute rule, orders them with one of the paper's three
// heuristics (RCP, MPO, DTS — optionally with slice merging), plans the
// Memory Allocation Points for a given per-processor capacity, and executes
// the schedule either concurrently (one goroutine per processor, real data,
// the full five-state protocol with active memory management) or on a
// discrete-event simulator with the paper's Cray-T3D cost model.
//
// A minimal session:
//
//	b := rapid.NewBuilder()
//	x := b.Object("x", 64)
//	y := b.Object("y", 64)
//	b.Task("produce", 1000, nil, []rapid.ObjID{x})
//	b.Task("consume", 2000, []rapid.ObjID{x}, []rapid.ObjID{y})
//	prog, _ := b.Build()
//	plan, _ := rapid.Compile(prog, rapid.Options{Procs: 2, Heuristic: rapid.MPO, Memory: 256})
//	report, _ := rapid.Execute(prog, plan, rapid.ExecOptions{})
package rapid

import (
	"fmt"
	"time"

	"repro/internal/exec"
	"repro/internal/graph"
	"repro/internal/machine"
	"repro/internal/mem"
	"repro/internal/proto"
	"repro/internal/sched"
	"repro/internal/trace"
)

// ObjID identifies a data object.
type ObjID = graph.ObjID

// TaskID identifies a task.
type TaskID = graph.TaskID

// Proc identifies a virtual processor.
type Proc = graph.Proc

// Heuristic selects the task-ordering algorithm.
type Heuristic = sched.Heuristic

// Ordering heuristics (Section 4 of the paper).
const (
	// RCP is critical-path list scheduling: best parallel time, no memory
	// awareness.
	RCP = sched.RCP
	// MPO is memory-priority guided ordering: reuses volatile objects as
	// soon as possible, competitive parallel time.
	MPO = sched.MPO
	// DTS is data-access directed time slicing: near-optimal memory use.
	DTS = sched.DTS
	// DTSMerge is DTS with slice merging under the known memory budget:
	// DTS's memory behaviour with most of RCP's time efficiency.
	DTSMerge = sched.DTSMerge
	// TreeMem is tree-memory scheduling: on tree-shaped programs it runs
	// the provably memory-optimal sequential traversal (Liu's hill/valley
	// algorithm) lifted to p processors by a rank-strict list policy; on
	// general DAGs it falls back to a greedy memory-first sweep.
	TreeMem = sched.TreeMem
)

// CostModel converts task costs and object sizes into time.
type CostModel = sched.CostModel

// T3D returns the Cray-T3D cost model used in the paper's evaluation.
func T3D() CostModel { return sched.T3D() }

// UnitCost returns the unit-cost model of the paper's worked examples.
func UnitCost() CostModel { return sched.Unit() }

// Builder declares objects and tasks in sequential program order.
type Builder struct {
	b *graph.Builder
}

// NewBuilder returns an empty Builder.
func NewBuilder() *Builder { return &Builder{b: graph.NewBuilder()} }

// Object declares a data object with a size in abstract memory units and
// returns its ID; redeclaring a name returns the existing ID.
func (b *Builder) Object(name string, size int64) ObjID { return b.b.Object(name, size) }

// Task declares a task with the given cost (work units) and access sets.
func (b *Builder) Task(name string, cost float64, reads, writes []ObjID) TaskID {
	return b.b.Task(name, cost, reads, writes)
}

// CommutativeTask declares a task that commutes with adjacent commutative
// tasks writing the same object (e.g. accumulating updates).
func (b *Builder) CommutativeTask(name string, cost float64, reads, writes []ObjID) TaskID {
	return b.b.CommutativeTask(name, cost, reads, writes)
}

// Build derives the transformed dependence graph.
func (b *Builder) Build() (*Program, error) {
	g, err := b.b.Build()
	if err != nil {
		return nil, err
	}
	return &Program{G: g}, nil
}

// Program is a built task program: a transformed, dependence-complete DAG
// over distinct data objects.
type Program struct {
	G *graph.DAG
}

// FromGraph wraps an existing task graph (e.g. from the chol/lu builders).
func FromGraph(g *graph.DAG) *Program { return &Program{G: g} }

// OwnerPolicy selects how data objects are assigned to owner processors.
type OwnerPolicy uint8

const (
	// OwnersPreset uses the Owner fields already set on the objects.
	OwnersPreset OwnerPolicy = iota
	// OwnersCyclic assigns object i to processor i mod p.
	OwnersCyclic
	// OwnersLoadBalanced clusters tasks by written object and maps clusters
	// largest-first onto the least-loaded processor.
	OwnersLoadBalanced
	// OwnersDSC applies DSC-style locality clustering (edge zeroing over
	// owner-compute units) before load-balanced mapping.
	OwnersDSC
)

// Options configure Compile.
type Options struct {
	// Procs is the number of virtual processors (required, >= 1).
	Procs int
	// Heuristic selects the ordering algorithm (default RCP).
	Heuristic Heuristic
	// Model is the cost model (zero value: T3D constants).
	Model CostModel
	// Memory is the per-processor capacity in memory units; 0 means
	// "whatever the schedule needs without recycling" (TOT).
	Memory int64
	// Owners selects the data-mapping policy (default OwnersPreset if every
	// object has an owner, OwnersLoadBalanced otherwise).
	Owners OwnerPolicy
}

// Plan is a compiled execution plan: the static schedule plus the MAP plan
// for the memory budget.
type Plan struct {
	Schedule *sched.Schedule
	Mem      *mem.Plan
	Model    CostModel
	// Capacity is the per-processor memory capacity the plan was built for.
	Capacity int64
	// Fingerprint is the content address the plan was compiled under; set
	// by CompileCached and preserved by MarshalPlan/UnmarshalPlan (empty
	// for plans from plain Compile).
	Fingerprint string
}

// Executable reports whether the plan fits the memory budget.
func (p *Plan) Executable() bool { return p.Mem.Executable }

// MinMem returns the schedule's minimum memory requirement (Definition 5).
func (p *Plan) MinMem() int64 { return p.Schedule.MinMem() }

// TOT returns the no-recycling memory requirement.
func (p *Plan) TOT() int64 { return p.Schedule.TOT() }

// AvgMAPs returns the planned average number of MAPs per processor.
func (p *Plan) AvgMAPs() float64 { return p.Mem.AvgMAPs() }

// PredictedTime returns the scheduler's predicted parallel time (seconds
// under the cost model, without memory-management overhead).
func (p *Plan) PredictedTime() float64 { return p.Schedule.Makespan }

// Compile clusters, maps, orders and memory-plans the program.
func Compile(prog *Program, opt Options) (*Plan, error) {
	if opt.Procs < 1 {
		return nil, fmt.Errorf("rapid: Procs must be >= 1, got %d", opt.Procs)
	}
	model := opt.Model
	if model == (CostModel{}) {
		model = sched.T3D()
	}
	g := prog.G
	policy := opt.Owners
	if policy == OwnersPreset {
		for i := range g.Objects {
			if g.Objects[i].Owner < 0 || int(g.Objects[i].Owner) >= opt.Procs {
				policy = OwnersLoadBalanced
				break
			}
		}
	}
	switch policy {
	case OwnersCyclic:
		sched.CyclicOwners(g, opt.Procs)
	case OwnersLoadBalanced:
		sched.LoadBalancedOwners(g, opt.Procs)
	case OwnersDSC:
		sched.DSCOwners(g, opt.Procs, model)
	}
	assign, err := sched.OwnerComputeAssign(g, opt.Procs)
	if err != nil {
		return nil, err
	}

	// The volatile budget for slice merging: capacity minus the largest
	// permanent footprint.
	availVol := int64(1) << 62
	if opt.Memory > 0 {
		var maxPerm int64
		perm := make([]int64, opt.Procs)
		for i := range g.Objects {
			perm[g.Objects[i].Owner] += g.Objects[i].Size
		}
		for _, v := range perm {
			if v > maxPerm {
				maxPerm = v
			}
		}
		availVol = opt.Memory - maxPerm
	}
	s, err := sched.ScheduleWith(opt.Heuristic, g, assign, opt.Procs, model, availVol)
	if err != nil {
		return nil, err
	}
	capacity := opt.Memory
	if capacity <= 0 {
		capacity = s.TOT()
	}
	mp, err := mem.NewPlan(s, capacity)
	if err != nil {
		return nil, err
	}
	p := &Plan{Schedule: s, Mem: mp, Model: model, Capacity: capacity}
	if err := assertVerified(p); err != nil {
		return nil, err
	}
	return p, nil
}

// KernelFunc executes one task against its local object buffers.
type KernelFunc = exec.KernelFunc

// InitFunc initializes a permanent object's buffer on its owner.
type InitFunc = exec.InitFunc

// Faults configures deterministic fault injection at the protocol's message
// choke points: delayed, lost (DropFrac) and duplicated (DupFrac) address
// packages and data messages. Both Execute and Simulate accept the same
// Faults and perturb the same messages for the same Seed; the engine's
// reliability layer (sequence numbers, ack/retransmit with exponential
// backoff) makes a perturbed run terminate with results identical to a
// fault-free one.
type Faults = proto.Faults

// ReliabilityStats summarizes the engine's ack/retransmit layer for one
// processor: retransmissions performed, transmissions lost to injected
// faults, duplicates injected and discarded, and deliveries acknowledged.
type ReliabilityStats = proto.Reliability

// SumReliability folds per-processor reliability counters into a
// machine-wide total.
func SumReliability(rs []ReliabilityStats) ReliabilityStats { return proto.SumReliability(rs) }

// StateOccupancy is the time one processor spent in each protocol state
// (REC/EXE/SND/MAP/END), indexed in StateNames order. The unit is wall-clock
// seconds from Execute and virtual seconds from Simulate.
type StateOccupancy = proto.Occupancy

// StateNames returns the five protocol state names in StateOccupancy order.
func StateNames() []string { return proto.StateNames() }

// ExecOptions configure Execute.
type ExecOptions struct {
	// Kernel runs each task (nil: structure-only protocol run).
	Kernel KernelFunc
	// Init initializes permanent objects (numeric mode).
	Init InitFunc
	// BufLen overrides physical buffer lengths (defaults to object sizes).
	BufLen func(o ObjID) int64
	// Faults injects protocol perturbations (zero value: none).
	Faults Faults
	// BlockTimeout aborts the run when a processor makes no protocol
	// progress for this long (the liveness watchdog; 0 means the executor's
	// 30-second default).
	BlockTimeout time.Duration
}

// Report summarizes an execution.
type Report struct {
	// MAPsPerProc is the number of memory allocation points each processor
	// executed.
	MAPsPerProc []int
	// PeakUnits is the per-processor peak memory use.
	PeakUnits []int64
	// Objects maps every object to its final buffer (numeric mode).
	Objects map[ObjID][]float64
	// Occupancy is the wall-clock seconds each processor spent in each
	// protocol state.
	Occupancy []StateOccupancy
	// SuspendedSends counts, per processor, the data messages that went
	// through the suspended-send queue.
	SuspendedSends []int
	// Messages and AddrPackages delivered machine-wide.
	Messages     int
	AddrPackages int
	// Reliability is the per-processor ack/retransmit summary.
	Reliability []ReliabilityStats
}

// Execute runs the plan concurrently with one goroutine per processor,
// under the full active-memory-management protocol.
func Execute(prog *Program, plan *Plan, opt ExecOptions) (*Report, error) {
	res, err := exec.Run(plan.Schedule, plan.Mem, exec.Config{
		Kernel:       opt.Kernel,
		Init:         opt.Init,
		BufLen:       opt.BufLen,
		Faults:       opt.Faults,
		BlockTimeout: opt.BlockTimeout,
	})
	if err != nil {
		return nil, err
	}
	return &Report{
		MAPsPerProc:    res.MAPsExecuted,
		PeakUnits:      res.PeakUnits,
		Objects:        res.Perm,
		Occupancy:      res.Occupancy,
		SuspendedSends: res.SuspendedSends,
		Messages:       res.Messages,
		AddrPackages:   res.AddrPackages,
		Reliability:    res.Reliability,
	}, nil
}

// SimOptions configure Simulate.
type SimOptions struct {
	// Baseline simulates the original RAPID executor (no memory management
	// overhead, all addresses pre-exchanged).
	Baseline bool
	// Trace records task and MAP spans for Gantt rendering.
	Trace *trace.Recorder
	// Faults injects protocol perturbations (zero value: none).
	Faults Faults
}

// SimReport summarizes a timing simulation.
type SimReport struct {
	// ParallelTime in seconds under the plan's cost model.
	ParallelTime float64
	// AvgMAPs per processor.
	AvgMAPs float64
	// Messages and AddrPackages delivered.
	Messages     int
	AddrPackages int
	// MAPsPerProc is the number of MAPs each processor executed.
	MAPsPerProc []int
	// PeakUnits is the per-processor peak memory use (permanent + volatile)
	// under the simulated allocator.
	PeakUnits []int64
	// SuspendedSends counts, per processor, the data messages that went
	// through the suspended-send queue.
	SuspendedSends []int
	// Occupancy is the virtual time each processor spent in each protocol
	// state.
	Occupancy []StateOccupancy
	// Reliability is the per-processor ack/retransmit summary.
	Reliability []ReliabilityStats
}

// Simulate runs the plan on the discrete-event machine simulator.
func Simulate(prog *Program, plan *Plan, opt SimOptions) (*SimReport, error) {
	res, err := machine.Simulate(plan.Schedule, plan.Mem, plan.Model, machine.Options{
		Baseline: opt.Baseline,
		Trace:    opt.Trace,
		Faults:   opt.Faults,
	})
	if err != nil {
		return nil, err
	}
	return &SimReport{
		ParallelTime:   res.ParallelTime,
		AvgMAPs:        res.AvgMAPs,
		Messages:       res.Messages,
		AddrPackages:   res.AddrPackages,
		MAPsPerProc:    res.MAPsPerProc,
		PeakUnits:      res.PeakUnits,
		SuspendedSends: res.SuspendedSends,
		Occupancy:      res.Occupancy,
		Reliability:    res.Reliability,
	}, nil
}
