package rapid

import (
	"encoding/binary"
	"fmt"
	"math"

	"repro/internal/plan"
	"repro/internal/plancache"
	"repro/internal/trace"
)

// The inspector phase behind Compile — dependence transformation,
// clustering, ordering, MAP planning — depends only on the program
// structure and the compile options, and (by construction, see
// internal/plan) is deterministic. CompileCached exploits that: it content-
// addresses the (structure, options) pair with Fingerprint and reuses the
// compiled plan from a PlanCache, so repeated executions of the same
// irregular structure — across requests or across process restarts — skip
// the inspection entirely and pay only the executor.

// CacheSource reports which tier of a PlanCache satisfied a lookup.
type CacheSource = plancache.Source

// Lookup outcomes of CompileCached.
const (
	// FromMemory: the plan came from the in-memory LRU.
	FromMemory = plancache.SourceMemory
	// FromDisk: the plan was loaded from the on-disk store.
	FromDisk = plancache.SourceDisk
	// FromCompile: no cached plan existed; Compile ran.
	FromCompile = plancache.SourceCompiled
)

// PlanCacheConfig configures NewPlanCache.
type PlanCacheConfig struct {
	// Dir is the on-disk store directory; empty keeps the cache purely
	// in-memory.
	Dir string
	// MemBudget bounds the in-memory tier by total encoded plan size in
	// bytes (0: a 256 MiB default; negative: disable the memory tier).
	MemBudget int64
	// Metrics receives the plancache.* counters (nil: discarded).
	Metrics *trace.Metrics
}

// PlanCache caches compiled plans by structural fingerprint. Safe for
// concurrent use; lookups for the same fingerprint are single-flight.
type PlanCache struct {
	c *plancache.Cache
}

// NewPlanCache creates a plan cache.
func NewPlanCache(cfg PlanCacheConfig) *PlanCache {
	return &PlanCache{c: plancache.New(plancache.Config{
		Dir:       cfg.Dir,
		MemBudget: cfg.MemBudget,
		Metrics:   cfg.Metrics,
	})}
}

// Fingerprint returns the content address (a SHA-256 hex string) of the
// compilation input: the program's full task-graph structure plus the
// compile options. Equal fingerprints guarantee byte-identical compiled
// plans.
//
// Fingerprint the program as built, before any Compile call: Compile's
// owner policies assign object owners in place, so a program hashed after
// compilation keys differently from the same program hashed fresh (both
// keys are valid content addresses; they simply name different input
// states). Rebuilding the program per request, as a daemon does, always
// produces the fresh key.
func Fingerprint(prog *Program, opt Options) string {
	return plan.Fingerprint(prog.G, encodeOptions(opt))
}

// encodeOptions canonicalizes Options into the fingerprint blob, resolving
// the same defaults Compile resolves so that semantically equal option
// structs hash equally.
func encodeOptions(opt Options) []byte {
	model := opt.Model
	if model == (CostModel{}) {
		model = T3D()
	}
	b := make([]byte, 0, 64)
	b = append(b, 1) // options layout version
	b = binary.AppendVarint(b, int64(opt.Procs))
	b = append(b, byte(opt.Heuristic))
	b = binary.AppendVarint(b, opt.Memory)
	b = append(b, byte(opt.Owners))
	for _, f := range []float64{
		model.ComputeRate, model.Latency, model.Bandwidth,
		model.MAPOverhead, model.MAPPerObject, model.AddrLatency,
	} {
		b = binary.LittleEndian.AppendUint64(b, math.Float64bits(f))
	}
	return b
}

// CompileCached is Compile through a plan cache: it fingerprints the
// (program, options) pair, reuses a cached plan when one exists (memory
// tier first, then disk), and otherwise compiles and stores the result.
// Concurrent calls for the same fingerprint compile once.
//
// A plan served from disk carries its own deserialized copy of the task
// graph. Task and object IDs are preserved exactly, so kernels and
// initializers keyed by ID (every builder in this module) execute
// identically against it; see rapid_test.go for the end-to-end identity
// check.
func CompileCached(prog *Program, opt Options, cache *PlanCache) (*Plan, CacheSource, error) {
	if cache == nil {
		p, err := Compile(prog, opt)
		return p, FromCompile, err
	}
	fp := Fingerprint(prog, opt)
	art, src, err := cache.c.GetOrCompile(fp, func() (*plan.Artifact, error) {
		p, err := Compile(prog, opt)
		if err != nil {
			return nil, err
		}
		return planToArtifact(p, fp), nil
	})
	if err != nil {
		return nil, src, err
	}
	return artifactToPlan(art), src, nil
}

// MarshalPlan serializes a compiled plan (including the task graph its
// schedule refers to) into the versioned binary format of internal/plan.
// The encoding is deterministic: equal plans marshal to equal bytes.
func MarshalPlan(p *Plan) ([]byte, error) {
	return plan.Encode(planToArtifact(p, p.Fingerprint))
}

// UnmarshalPlan parses a plan serialized by MarshalPlan, verifying its
// checksum and structural invariants.
func UnmarshalPlan(data []byte) (*Plan, error) {
	art, err := plan.Decode(data)
	if err != nil {
		return nil, err
	}
	return artifactToPlan(art), nil
}

// ProgramOf returns a Program view of the task graph embedded in a plan
// (e.g. one loaded by UnmarshalPlan), for passing to Execute or Simulate.
func ProgramOf(p *Plan) *Program {
	return &Program{G: p.Schedule.G}
}

func planToArtifact(p *Plan, fp string) *plan.Artifact {
	return &plan.Artifact{
		Fingerprint: fp,
		Model:       p.Model,
		Capacity:    p.Capacity,
		Schedule:    p.Schedule,
		Mem:         p.Mem,
	}
}

func artifactToPlan(a *plan.Artifact) *Plan {
	return &Plan{
		Schedule:    a.Schedule,
		Mem:         a.Mem,
		Model:       a.Model,
		Capacity:    a.Capacity,
		Fingerprint: a.Fingerprint,
	}
}

// CacheStats formats a metrics registry's plancache counters; a
// convenience for demo binaries.
func CacheStats(m *trace.Metrics) string {
	if m == nil {
		return ""
	}
	return fmt.Sprintf("hits(mem)=%d hits(disk)=%d misses=%d evictions=%d corrupt=%d",
		m.Get("plancache.hit.mem"), m.Get("plancache.hit.disk"),
		m.Get("plancache.miss"), m.Get("plancache.evict"), m.Get("plancache.corrupt"))
}
