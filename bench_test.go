package repro_test

// One benchmark per table and figure of the paper's evaluation section,
// plus micro-benchmarks of the pipeline stages. The table benchmarks run
// the Small-scale workloads so `go test -bench=.` finishes quickly; run
// `go run ./cmd/paper -scale full` for the paper-scale regeneration
// recorded in EXPERIMENTS.md.

import (
	"fmt"
	"io"
	"testing"

	"repro/internal/chol"
	"repro/internal/exec"
	"repro/internal/lu"
	"repro/internal/machine"
	"repro/internal/mem"
	"repro/internal/paper"
	"repro/internal/sched"
	"repro/internal/sparse"
	"repro/internal/util"
	"repro/rapid"
)

func BenchmarkTable1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		paper.Table1(io.Discard, paper.Small)
	}
}

func BenchmarkTable2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		paper.Table2(io.Discard, paper.Small)
	}
}

func BenchmarkTable3(b *testing.B) {
	for i := 0; i < b.N; i++ {
		paper.Table3(io.Discard, paper.Small)
	}
}

func BenchmarkTable4(b *testing.B) {
	for i := 0; i < b.N; i++ {
		paper.Table4(io.Discard, paper.Small)
	}
}

func BenchmarkTable5(b *testing.B) {
	for i := 0; i < b.N; i++ {
		paper.Table5(io.Discard, paper.Small)
	}
}

func BenchmarkTable6(b *testing.B) {
	for i := 0; i < b.N; i++ {
		paper.Table6(io.Discard, paper.Small)
	}
}

func BenchmarkTable7(b *testing.B) {
	for i := 0; i < b.N; i++ {
		paper.Table7(io.Discard, paper.Small)
	}
}

func BenchmarkTable8(b *testing.B) {
	for i := 0; i < b.N; i++ {
		paper.Table8(io.Discard, paper.Small)
	}
}

func BenchmarkFigure7(b *testing.B) {
	for i := 0; i < b.N; i++ {
		paper.Figure7(io.Discard, paper.Small)
	}
}

func BenchmarkFigure3(b *testing.B) {
	for i := 0; i < b.N; i++ {
		paper.Figure3(io.Discard)
	}
}

func BenchmarkExtensionTrisolve(b *testing.B) {
	for i := 0; i < b.N; i++ {
		paper.ExtensionTrisolve(io.Discard, paper.Small)
	}
}

func BenchmarkAblationMAPPolicy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		paper.AblationMAPPolicy(io.Discard, paper.Small)
	}
}

func BenchmarkAblationSlotDepth(b *testing.B) {
	for i := 0; i < b.N; i++ {
		paper.AblationSlotDepth(io.Discard, paper.Small)
	}
}

func BenchmarkAblationMergeSweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		paper.AblationMergeSweep(io.Discard, paper.Small)
	}
}

// --- pipeline micro-benchmarks ---

func cholBench(b *testing.B) (*chol.Problem, []int32) {
	b.Helper()
	rng := util.NewRNG(1)
	m := sparse.AddRandomSymLinks(sparse.Grid2D(24, 18, true), 120, rng)
	m = sparse.SPDValues(m.PermuteSym(sparse.RCM(m)), rng)
	pr, err := chol.Build(m, chol.Options{Procs: 8, BlockSize: 12})
	if err != nil {
		b.Fatal(err)
	}
	assign, err := sched.OwnerComputeAssign(pr.G, 8)
	if err != nil {
		b.Fatal(err)
	}
	return pr, assign
}

func BenchmarkSymbolicCholesky(b *testing.B) {
	rng := util.NewRNG(2)
	m := sparse.AddRandomSymLinks(sparse.Grid2D(40, 40, true), 300, rng)
	m = m.PermuteSym(sparse.RCM(m))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sparse.NewBlockPattern2D(m, 16)
	}
}

func BenchmarkStaticSymbolicLU(b *testing.B) {
	rng := util.NewRNG(3)
	m := sparse.AddRandomUnsymLinks(sparse.Grid2D(40, 40, true), 500, rng)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sparse.NewBlockPattern1D(m, 16)
	}
}

func BenchmarkTaskGraphBuildChol(b *testing.B) {
	rng := util.NewRNG(4)
	m := sparse.AddRandomSymLinks(sparse.Grid2D(24, 18, true), 120, rng)
	m = m.PermuteSym(sparse.RCM(m))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := chol.Build(m, chol.Options{Procs: 8, BlockSize: 12}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTaskGraphBuildLU(b *testing.B) {
	rng := util.NewRNG(5)
	m := sparse.AddRandomUnsymLinks(sparse.Grid2D(26, 22, true), 500, rng)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := lu.Build(m, lu.Options{Procs: 8, BlockSize: 12}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkScheduleRCP(b *testing.B) {
	pr, assign := cholBench(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sched.ScheduleRCP(pr.G, assign, 8, sched.T3D()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkScheduleMPO(b *testing.B) {
	pr, assign := cholBench(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sched.ScheduleMPO(pr.G, assign, 8, sched.T3D()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkScheduleDTS(b *testing.B) {
	pr, assign := cholBench(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sched.ScheduleDTS(pr.G, assign, 8, sched.T3D(), false, 0); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMAPPlan(b *testing.B) {
	pr, assign := cholBench(b)
	s, err := sched.ScheduleMPO(pr.G, assign, 8, sched.T3D())
	if err != nil {
		b.Fatal(err)
	}
	capacity := s.MinMem()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := mem.NewPlan(s, capacity); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSimulate(b *testing.B) {
	pr, assign := cholBench(b)
	s, err := sched.ScheduleMPO(pr.G, assign, 8, sched.T3D())
	if err != nil {
		b.Fatal(err)
	}
	plan, err := mem.NewPlan(s, s.MinMem())
	if err != nil || !plan.Executable {
		b.Fatal("plan not executable")
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := machine.Simulate(s, plan, sched.T3D(), machine.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

// --- plan cache benchmarks (inspector amortization) ---

// planCacheBench builds a BCSSTK-style structural problem (2-D grid with
// extra random couplings, RCM ordered, blocked Cholesky) — the shape of
// matrix the plan cache amortizes across repeated rapidd solves — and
// drives the owner assignment to its fixed point so every iteration
// fingerprints identically (Compile assigns owners in place).
func planCacheBench(b *testing.B) (*rapid.Program, rapid.Options) {
	b.Helper()
	rng := util.NewRNG(11)
	m := sparse.AddRandomSymLinks(sparse.Grid2D(30, 24, true), 200, rng)
	m = sparse.SPDValues(m.PermuteSym(sparse.RCM(m)), rng)
	pr, err := chol.Build(m, chol.Options{Procs: 8, BlockSize: 12})
	if err != nil {
		b.Fatal(err)
	}
	prog := rapid.FromGraph(pr.G)
	opt := rapid.Options{Procs: 8, Heuristic: rapid.MPO}
	if _, err := rapid.Compile(prog, opt); err != nil {
		b.Fatal(err)
	}
	return prog, opt
}

// BenchmarkCompileFresh is the uncached baseline: the full inspector phase
// (clustering, mapping, ordering, MAP planning) on every call.
func BenchmarkCompileFresh(b *testing.B) {
	prog, opt := planCacheBench(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := rapid.Compile(prog, opt); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCompileCachedMemoryHit serves the plan from the in-memory LRU:
// fingerprint the input, return the resident artifact.
func BenchmarkCompileCachedMemoryHit(b *testing.B) {
	prog, opt := planCacheBench(b)
	cache := rapid.NewPlanCache(rapid.PlanCacheConfig{})
	if _, _, err := rapid.CompileCached(prog, opt, cache); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, src, err := rapid.CompileCached(prog, opt, cache)
		if err != nil || src != rapid.FromMemory {
			b.Fatalf("src=%v err=%v", src, err)
		}
	}
}

// BenchmarkCompileCachedDiskLoad pays the cold-start path: read the
// content-addressed file, verify the checksum, decode and validate the
// artifact (a fresh cache per iteration keeps the memory tier cold).
func BenchmarkCompileCachedDiskLoad(b *testing.B) {
	prog, opt := planCacheBench(b)
	dir := b.TempDir()
	warm := rapid.NewPlanCache(rapid.PlanCacheConfig{Dir: dir})
	if _, _, err := rapid.CompileCached(prog, opt, warm); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cold := rapid.NewPlanCache(rapid.PlanCacheConfig{Dir: dir})
		_, src, err := rapid.CompileCached(prog, opt, cold)
		if err != nil || src != rapid.FromDisk {
			b.Fatalf("src=%v err=%v", src, err)
		}
	}
}

// concurrentExecProblem builds the fixed factorization problem the
// executor benchmarks share, scheduled for p emulated processors.
func concurrentExecProblem(b *testing.B, p int) (*chol.Problem, *sched.Schedule, *mem.Plan) {
	b.Helper()
	rng := util.NewRNG(1)
	m := sparse.AddRandomSymLinks(sparse.Grid2D(24, 18, true), 120, rng)
	m = sparse.SPDValues(m.PermuteSym(sparse.RCM(m)), rng)
	pr, err := chol.Build(m, chol.Options{Procs: p, BlockSize: 12})
	if err != nil {
		b.Fatal(err)
	}
	assign, err := sched.OwnerComputeAssign(pr.G, p)
	if err != nil {
		b.Fatal(err)
	}
	s, err := sched.ScheduleMPO(pr.G, assign, p, sched.T3D())
	if err != nil {
		b.Fatal(err)
	}
	plan, err := mem.NewPlan(s, s.TOT())
	if err != nil || !plan.Executable {
		b.Fatal("plan not executable")
	}
	return pr, s, plan
}

// BenchmarkConcurrentExec drives the wall-clock executor at several
// emulated-processor counts on one fixed factorization problem,
// structure-only (no numeric kernels): what it measures is the executor's
// own hot path — the protocol loop, message delivery, parking and waking —
// not BLAS throughput (BenchmarkConcurrentExecNumeric covers the end-to-end
// numeric run). The p ≥ 16 variants oversubscribe the physical cores on
// purpose: that regime is where an executor that burns a core per blocked
// processor collapses and an event-driven one does not, so CI gates this
// benchmark against regressions (see .github/workflows/ci.yml).
func BenchmarkConcurrentExec(b *testing.B) {
	for _, p := range []int{8, 16, 32} {
		b.Run(fmt.Sprintf("p=%d", p), func(b *testing.B) {
			_, s, plan := concurrentExecProblem(b, p)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := exec.Run(s, plan, exec.Config{}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkConcurrentExecNumeric is the end-to-end variant: real kernels,
// real data movement. Kernel time dominates at low p, so executor-level
// regressions show up here damped; the structure-only benchmark above is
// the sensitive gauge.
func BenchmarkConcurrentExecNumeric(b *testing.B) {
	for _, p := range []int{8, 16, 32} {
		b.Run(fmt.Sprintf("p=%d", p), func(b *testing.B) {
			pr, s, plan := concurrentExecProblem(b, p)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := exec.Run(s, plan, exec.Config{Kernel: pr.Kernel, Init: pr.InitObject}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
