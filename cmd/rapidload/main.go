// Command rapidload drives a rapidd daemon with deterministic closed-loop
// load and reports throughput, latency percentiles and shed rate. The same
// (config, seed) pair replays the identical request sequence, so two runs
// against different server configurations are an apples-to-apples
// comparison (EXPERIMENTS.md records the serial-vs-pooled one).
//
// Usage:
//
//	rapidload -url http://127.0.0.1:8437 [-clients 8] [-requests 200]
//	          [-keys 8] [-skew 1.2] [-fault-frac 0.1] [-seed 1]
//	rapidload -config load.json
//	rapidload -inproc [-workers 4] [-queue-depth 16] [-avail-mem U]
//	          [-journal-dir DIR] [-degraded-mode reject|serve]
//	rapidload -tenants gold:3:high,bronze:1:low ...
//
// -inproc starts a rapidd server inside the process on a loopback listener
// and aims the load at it — no daemon to manage, used by the CI smoke run.
// -tenants splits the clients across named tenants by share (name[:share
// [:priority]]) and reports per-tenant latency rows — the isolation
// experiment in EXPERIMENTS.md is a pair of such runs. Flags override
// file-config fields when both are given.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"strconv"
	"strings"
	"time"

	"repro/internal/loadgen"
	"repro/internal/rapidd"
	"repro/internal/trace"
)

// parseTenants parses the -tenants syntax name[:share[:priority]],...
// into the config's tenant mix (validated later by Normalize).
func parseTenants(arg string) ([]loadgen.TenantMix, error) {
	var mixes []loadgen.TenantMix
	for _, spec := range strings.Split(arg, ",") {
		parts := strings.Split(spec, ":")
		if len(parts) > 3 || parts[0] == "" {
			return nil, fmt.Errorf("%q: want name[:share[:priority]]", spec)
		}
		m := loadgen.TenantMix{Name: parts[0]}
		if len(parts) > 1 && parts[1] != "" {
			share, err := strconv.Atoi(parts[1])
			if err != nil {
				return nil, fmt.Errorf("%q: share: %v", spec, err)
			}
			m.Share = share
		}
		if len(parts) > 2 {
			m.Priority = parts[2]
		}
		mixes = append(mixes, m)
	}
	return mixes, nil
}

func main() {
	var cfg loadgen.Config
	configPath := flag.String("config", "", "JSON config file (flags override its fields)")
	flag.StringVar(&cfg.URL, "url", "", "daemon base URL (omit with -inproc)")
	flag.IntVar(&cfg.Clients, "clients", 0, "closed-loop client count (default 4)")
	flag.IntVar(&cfg.Requests, "requests", 0, "total requests (default 100)")
	flag.Uint64Var(&cfg.Seed, "seed", 0, "deterministic run seed (default 1)")
	flag.IntVar(&cfg.Keys, "keys", 0, "distinct job structures (default 8)")
	flag.Float64Var(&cfg.Skew, "skew", 0, "zipf key-skew exponent (0: uniform)")
	flag.StringVar(&cfg.Kind, "kind", "", "factorization kind (default chol)")
	flag.IntVar(&cfg.N, "n", 0, "matrix order (default 120)")
	flag.IntVar(&cfg.Procs, "procs", 0, "virtual processors per job (default 4)")
	flag.Float64Var(&cfg.FaultFrac, "fault-frac", 0, "fraction of requests with injected faults")
	flag.Float64Var(&cfg.DropFrac, "drop-frac", 0, "message-loss fraction on faulty requests")
	flag.Float64Var(&cfg.DupFrac, "dup-frac", 0, "duplicate fraction on faulty requests")
	flag.IntVar(&cfg.DeadlineMS, "deadline-ms", 0, "per-job deadline in ms (0: none)")
	flag.IntVar(&cfg.HoldMS, "hold-ms", 0, "per-job post-execution memory hold in ms (traffic shaping)")
	tenants := flag.String("tenants", "", "tenant mix name[:share[:priority]],... (empty: single default tenant)")
	inproc := flag.Bool("inproc", false, "serve from an in-process rapidd instead of -url")
	workers := flag.Int("workers", 0, "in-process server worker-pool size (0: default)")
	queueDepth := flag.Int("queue-depth", 0, "in-process server queue depth (0: default)")
	availMem := flag.Int64("avail-mem", 0, "in-process server AVAIL_MEM (0: unlimited)")
	defaultQuota := flag.Int64("default-tenant-quota", 0, "in-process server per-tenant AVAIL_MEM sub-quota (0: uncapped)")
	journalDir := flag.String("journal-dir", "", "in-process server write-ahead journal directory (empty: no durability)")
	degradedMode := flag.String("degraded-mode", "", "in-process server policy while the journal is degraded: reject or serve")
	flag.Parse()

	if *tenants != "" {
		mixes, err := parseTenants(*tenants)
		if err != nil {
			log.Fatalf("rapidload: -tenants: %v", err)
		}
		cfg.Tenants = mixes
	}

	if *configPath != "" {
		data, err := os.ReadFile(*configPath)
		if err != nil {
			log.Fatal(err)
		}
		fileCfg, err := loadgen.ParseConfig(data)
		if err != nil {
			log.Fatal(err)
		}
		// Flags set explicitly on the command line win over the file.
		merged := fileCfg
		flag.Visit(func(f *flag.Flag) {
			switch f.Name {
			case "url":
				merged.URL = cfg.URL
			case "clients":
				merged.Clients = cfg.Clients
			case "requests":
				merged.Requests = cfg.Requests
			case "seed":
				merged.Seed = cfg.Seed
			case "keys":
				merged.Keys = cfg.Keys
			case "skew":
				merged.Skew = cfg.Skew
			case "kind":
				merged.Kind = cfg.Kind
			case "n":
				merged.N = cfg.N
			case "procs":
				merged.Procs = cfg.Procs
			case "fault-frac":
				merged.FaultFrac = cfg.FaultFrac
			case "drop-frac":
				merged.DropFrac = cfg.DropFrac
			case "dup-frac":
				merged.DupFrac = cfg.DupFrac
			case "deadline-ms":
				merged.DeadlineMS = cfg.DeadlineMS
			case "hold-ms":
				merged.HoldMS = cfg.HoldMS
			case "tenants":
				merged.Tenants = cfg.Tenants
			}
		})
		cfg = merged
	}

	if *inproc {
		srv, err := rapidd.Open(rapidd.Config{
			Workers:            *workers,
			QueueDepth:         *queueDepth,
			AvailMem:           *availMem,
			DefaultTenantQuota: *defaultQuota,
			JournalDir:         *journalDir,
			DegradedMode:       *degradedMode,
			Metrics:            trace.NewMetrics(),
		})
		if err != nil {
			log.Fatalf("rapidload: -inproc server: %v", err)
		}
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			log.Fatal(err)
		}
		hs := &http.Server{Handler: srv}
		go hs.Serve(ln)
		cfg.URL = "http://" + ln.Addr().String()
		defer func() {
			ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
			defer cancel()
			srv.Drain(ctx)
			hs.Shutdown(ctx)
		}()
		log.Printf("rapidload: in-process rapidd at %s (workers=%d queue-depth=%d)", cfg.URL, *workers, *queueDepth)
	}

	res, err := loadgen.Run(cfg, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(res.Report())
	if res.Errors > 0 {
		os.Exit(1)
	}
}
