package main

import (
	"strings"
	"testing"

	"repro/internal/chol"
	"repro/internal/sparse"
	"repro/internal/util"
	"repro/rapid"
)

// TestStateTableFromExecution runs a small Cholesky factorization through
// the pipeline and checks the occupancy table the binary prints: a header
// with all five protocol states, one row per processor, and a totals row.
func TestStateTableFromExecution(t *testing.T) {
	rng := util.NewRNG(11)
	pat := sparse.Grid2D(6, 6, true)
	a := sparse.SPDValues(pat, rng)
	pr, err := chol.Build(a, chol.Options{Procs: 3, BlockSize: 4})
	if err != nil {
		t.Fatal(err)
	}
	prog := rapid.FromGraph(pr.G)
	plan, err := rapid.Compile(prog, rapid.Options{Procs: 3, Heuristic: rapid.MPO})
	if err != nil {
		t.Fatal(err)
	}
	report, err := rapid.Execute(prog, plan, rapid.ExecOptions{Kernel: pr.Kernel, Init: pr.InitObject})
	if err != nil {
		t.Fatal(err)
	}

	out := stateTable(report)
	for _, h := range []string{"REC(s)", "EXE(s)", "SND(s)", "MAP(s)", "END(s)"} {
		if !strings.Contains(out, h) {
			t.Errorf("table missing header %q:\n%s", h, out)
		}
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if want := 1 + 3 + 1; len(lines) != want { // header + one row per proc + totals
		t.Errorf("table has %d lines, want %d:\n%s", len(lines), want, out)
	}
	for p := 0; p < 3; p++ {
		if !strings.HasPrefix(lines[1+p], "P"+string(rune('0'+p))) {
			t.Errorf("row %d does not start with P%d:\n%s", 1+p, p, out)
		}
	}
	if !strings.HasPrefix(lines[len(lines)-1], "all") {
		t.Errorf("missing totals row:\n%s", out)
	}
}

// TestReliabilityTableFromFaultyExecution runs the same small factorization
// under message loss and duplication and checks the reliability table the
// binary prints with -drop/-dup: retransmit activity is visible, every
// processor has a row, and the factorization still succeeds.
func TestReliabilityTableFromFaultyExecution(t *testing.T) {
	rng := util.NewRNG(13)
	pat := sparse.Grid2D(6, 6, true)
	a := sparse.SPDValues(pat, rng)
	pr, err := chol.Build(a, chol.Options{Procs: 3, BlockSize: 4})
	if err != nil {
		t.Fatal(err)
	}
	prog := rapid.FromGraph(pr.G)
	plan, err := rapid.Compile(prog, rapid.Options{Procs: 3, Heuristic: rapid.MPO})
	if err != nil {
		t.Fatal(err)
	}
	faults := rapid.Faults{Seed: 2, DropFrac: 0.25, DupFrac: 0.10}
	report, err := rapid.Execute(prog, plan, rapid.ExecOptions{Kernel: pr.Kernel, Init: pr.InitObject, Faults: faults})
	if err != nil {
		t.Fatal(err)
	}

	out := reliabilityTable(report)
	for _, h := range []string{"retrans", "dropped", "dups-sent", "dups-rcvd", "acked"} {
		if !strings.Contains(out, h) {
			t.Errorf("table missing header %q:\n%s", h, out)
		}
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if want := 1 + 3 + 1; len(lines) != want {
		t.Errorf("table has %d lines, want %d:\n%s", len(lines), want, out)
	}
	tot := rapid.SumReliability(report.Reliability)
	if tot.Retransmits == 0 || tot.Retransmits != tot.Dropped {
		t.Errorf("expected live retransmit counters (retransmits == drops > 0), got %+v", tot)
	}
}
