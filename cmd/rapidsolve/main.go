// Command rapidsolve is an end-to-end demonstration binary: it generates a
// sparse linear system, factors it through the full pipeline (symbolic
// analysis → task graph → scheduling → memory planning → concurrent
// execution under the active-memory-management protocol) and solves it,
// reporting memory statistics and the verification residual.
//
// Usage:
//
//	rapidsolve [-kind chol|lu] [-n 300] [-procs 4] [-block 8]
//	           [-heuristic rcp|mpo|dts|dtsmerge|treemem] [-mem 60]
//	           [-file matrix.mtx] [-verify] [-exact]
//	           [-drop 0.25] [-dup 0.1] [-addrdelay 0.3] [-datadelay 0.3]
//	           [-faultseed 1]
//
// -n is the approximate matrix order (ignored when -file loads a
// MatrixMarket matrix); -mem the memory budget as a percentage of the
// no-recycling requirement. -verify runs the static plan verifier
// (internal/verify) on the compiled plan before execution: on findings the
// table is printed to stderr and the process exits non-zero without
// executing. -exact additionally runs the branch-and-bound reference
// solver (internal/sched/exact) on instances of at most 20 tasks and
// reports the compiled schedule's (time, memory) optimality gap against
// the true Pareto frontier. The -drop/-dup/-addrdelay/-datadelay flags
// inject deterministic message faults (loss, duplication, delay) selected
// by -faultseed; the engine's reliability layer must absorb them, the
// residual must be unchanged, and the per-processor retransmit/dedup
// counters are printed as a reliability table.
package main

import (
	"flag"
	"fmt"
	"log"
	"math"
	"os"
	"strings"

	"repro/internal/blas"
	"repro/internal/chol"
	"repro/internal/lu"
	"repro/internal/sched"
	"repro/internal/sched/exact"
	"repro/internal/sparse"
	"repro/internal/trace"
	"repro/internal/util"
	"repro/rapid"
)

// stateTable renders the executor's per-processor protocol-state occupancy
// (wall-clock seconds in each of REC/EXE/SND/MAP/END) as a text table.
func stateTable(report *rapid.Report) string {
	rows := make([][]float64, len(report.Occupancy))
	for p, occ := range report.Occupancy {
		rows[p] = occ[:]
	}
	return trace.StateTable(rapid.StateNames(), rows, "s")
}

// reliabilityTable renders the per-processor ack/retransmit counters of the
// engine's reliability layer as a text table.
func reliabilityTable(report *rapid.Report) string {
	rows := make([][]int64, len(report.Reliability))
	for p, r := range report.Reliability {
		rows[p] = []int64{int64(r.Retransmits), int64(r.Dropped), int64(r.DupsSent), int64(r.DupDropped), int64(r.Acked)}
	}
	return trace.CountTable([]string{"retrans", "dropped", "dups-sent", "dups-rcvd", "acked"}, rows)
}

func main() {
	kind := flag.String("kind", "chol", "factorization: chol or lu")
	n := flag.Int("n", 300, "approximate matrix order")
	procs := flag.Int("procs", 4, "virtual processors")
	block := flag.Int("block", 8, "block / panel size")
	heur := flag.String("heuristic", "mpo", "ordering: rcp, mpo, dts, dtsmerge, treemem")
	doExact := flag.Bool("exact", false, "solve the exact (makespan, MIN_MEM) Pareto frontier (branch and bound; instances of at most 20 tasks) and report the schedule's optimality gap")
	memPct := flag.Int("mem", 60, "memory budget, percent of the no-recycling requirement")
	seed := flag.Uint64("seed", 1, "matrix generator seed")
	file := flag.String("file", "", "load a MatrixMarket matrix instead of generating one")
	drop := flag.Float64("drop", 0, "fault injection: fraction of transmissions lost in transit (retransmitted by the reliability layer)")
	dup := flag.Float64("dup", 0, "fault injection: fraction of deliveries duplicated (discarded by receiver dedup)")
	addrDelay := flag.Float64("addrdelay", 0, "fault injection: fraction of address packages delayed one round")
	dataDelay := flag.Float64("datadelay", 0, "fault injection: fraction of data messages forced through the suspended-send queue")
	faultSeed := flag.Uint64("faultseed", 1, "fault injection seed (deterministic fault plan)")
	doVerify := flag.Bool("verify", false, "statically verify the compiled plan; on findings, print the table to stderr and exit non-zero without executing")
	flag.Parse()
	verifyPlans = *doVerify
	exactFrontier = *doExact

	faults := rapid.Faults{
		Seed:     *faultSeed,
		AddrFrac: *addrDelay,
		DataFrac: *dataDelay,
		DropFrac: *drop,
		DupFrac:  *dup,
	}

	var h rapid.Heuristic
	switch strings.ToLower(*heur) {
	case "rcp":
		h = rapid.RCP
	case "mpo":
		h = rapid.MPO
	case "dts":
		h = rapid.DTS
	case "dtsmerge":
		h = rapid.DTSMerge
	case "treemem":
		h = rapid.TreeMem
	default:
		fmt.Fprintf(os.Stderr, "unknown heuristic %q\n", *heur)
		os.Exit(2)
	}

	rng := util.NewRNG(*seed)
	var loaded *sparse.Matrix
	if *file != "" {
		f, err := os.Open(*file)
		if err != nil {
			log.Fatal(err)
		}
		loaded, err = sparse.ReadMatrixMarket(f)
		f.Close()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("loaded %s: n=%d nnz=%d\n", *file, loaded.N, loaded.Nnz())
	}
	nx := int(math.Sqrt(float64(*n) * 1.3))
	ny := *n / nx
	switch strings.ToLower(*kind) {
	case "chol":
		a := loaded
		if a == nil {
			pat := sparse.AddRandomSymLinks(sparse.Grid2D(nx, ny, true), *n/8, rng)
			pat = pat.PermuteSym(sparse.RCM(pat))
			a = sparse.SPDValues(pat, rng)
		} else if !a.IsSymmetricPattern() {
			log.Fatal("chol requires a symmetric-pattern matrix")
		}
		solveChol(a, *procs, *block, h, *memPct, faults)
	case "lu":
		a := loaded
		if a == nil {
			pat := sparse.AddRandomUnsymLinks(sparse.Grid2D(nx, ny, true), *n/4, rng)
			a = sparse.UnsymValues(pat, rng)
		}
		solveLU(a, *procs, *block, h, *memPct, rng, faults)
	default:
		fmt.Fprintf(os.Stderr, "unknown kind %q\n", *kind)
		os.Exit(2)
	}
}

// verifyPlans mirrors the -verify flag: compiled plans are statically
// verified and a defective one aborts the run before execution.
var verifyPlans bool

// exactFrontier mirrors the -exact flag: the branch-and-bound reference
// solver computes the true (makespan, MIN_MEM) Pareto frontier and the
// compiled schedule's optimality gap is reported.
var exactFrontier bool

// reportExact solves the instance exactly and prints the frontier and the
// compiled schedule's gap against it. Instances above the solver's task cap
// abort with a hint to shrink -n.
func reportExact(prog *rapid.Program, procs int, plan *rapid.Plan) {
	assign, err := sched.OwnerComputeAssign(prog.G, procs)
	if err != nil {
		log.Fatal(err)
	}
	res, err := exact.Frontier(prog.G, assign, procs, plan.Model, exact.Options{})
	if err != nil {
		log.Fatalf("exact solve: %v (use a smaller -n/-block so the graph has at most 20 tasks)", err)
	}
	if !res.Complete {
		log.Fatalf("exact solve: node budget exhausted after %d nodes; frontier would be unsound", res.Nodes)
	}
	fmt.Printf("exact:    frontier of %d point(s) in %d nodes:", len(res.Frontier), res.Nodes)
	for _, pt := range res.Frontier {
		fmt.Printf(" (time %.4g, mem %d)", pt.Makespan, pt.MinMem)
	}
	fmt.Println()
	s := plan.Schedule
	if gt, ok := res.GapTime(s.Makespan, s.MinMem()); ok {
		fmt.Printf("exact:    time gap %.4gx at this memory", gt)
	} else {
		fmt.Printf("exact:    no frontier point within this schedule's memory")
	}
	if gm, ok := res.GapMem(s.MinMem()); ok {
		fmt.Printf(", memory gap %.4gx over the instance optimum %d\n", gm, res.BestMem())
	} else {
		fmt.Println()
	}
}

func compile(prog *rapid.Program, procs int, h rapid.Heuristic, memPct int) *rapid.Plan {
	free, err := rapid.Compile(prog, rapid.Options{Procs: procs, Heuristic: h})
	if err != nil {
		log.Fatal(err)
	}
	budget := free.TOT() * int64(memPct) / 100
	plan, err := rapid.Compile(prog, rapid.Options{Procs: procs, Heuristic: h, Memory: budget})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("schedule: %v, predicted time %.4gs\n", h, plan.PredictedTime())
	fmt.Printf("memory:   TOT=%d units, budget=%d (%d%%), MIN_MEM=%d\n",
		free.TOT(), budget, memPct, plan.MinMem())
	if !plan.Executable() {
		log.Fatalf("schedule is NOT executable under %d%% memory; try -heuristic dtsmerge or a larger -mem", memPct)
	}
	fmt.Printf("plan:     %.2f MAPs/processor\n", plan.AvgMAPs())
	if verifyPlans {
		res := rapid.VerifyPlan(plan)
		if !res.OK() {
			fmt.Fprintf(os.Stderr, "plan failed static verification (%d findings, %d checks):\n", len(res.Findings), res.Checks)
			cols, rows := res.Rows()
			fmt.Fprint(os.Stderr, trace.Grid(cols, rows))
			os.Exit(1)
		}
		fmt.Printf("verified: %d static checks passed, replayed peaks %v\n", res.Checks, res.Peaks)
	}
	if exactFrontier {
		reportExact(prog, procs, plan)
	}
	return plan
}

func solveChol(a *sparse.Matrix, procs, block int, h rapid.Heuristic, memPct int, faults rapid.Faults) {
	fmt.Printf("sparse Cholesky: n=%d nnz=%d procs=%d block=%d\n", a.N, a.Nnz(), procs, block)
	pr, err := chol.Build(a, chol.Options{Procs: procs, BlockSize: block})
	if err != nil {
		log.Fatal(err)
	}
	prog := rapid.FromGraph(pr.G)
	fmt.Printf("graph:    %d tasks, %d blocks\n", pr.G.NumTasks(), pr.G.NumObjects())
	plan := compile(prog, procs, h, memPct)
	report, err := rapid.Execute(prog, plan, rapid.ExecOptions{Kernel: pr.Kernel, Init: pr.InitObject, Faults: faults})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("executed: MAPs %v, %d messages, %d address packages\n",
		report.MAPsPerProc, report.Messages, report.AddrPackages)
	fmt.Printf("protocol state occupancy:\n%s", stateTable(report))
	if faults.Enabled() {
		fmt.Printf("reliability (injected faults, seed %d):\n%s", faults.Seed, reliabilityTable(report))
	}

	l := pr.AssembleL(report.Objects)
	rec := make([]float64, a.N*a.N)
	blas.Gemm(false, true, a.N, a.N, a.N, 1, l, a.N, l, a.N, rec, a.N)
	ad := a.ToDense()
	num, den := 0.0, 0.0
	for i := 0; i < a.N; i++ {
		for j := 0; j <= i; j++ {
			d := ad[i*a.N+j] - rec[i*a.N+j]
			num += d * d
			den += ad[i*a.N+j] * ad[i*a.N+j]
		}
	}
	fmt.Printf("residual: ‖A−LLᵀ‖/‖A‖ = %.3g\n", math.Sqrt(num/den))
}

func solveLU(a *sparse.Matrix, procs, block int, h rapid.Heuristic, memPct int, rng *util.RNG, faults rapid.Faults) {
	fmt.Printf("sparse LU with partial pivoting: n=%d nnz=%d procs=%d panel=%d\n", a.N, a.Nnz(), procs, block)
	pr, err := lu.Build(a, lu.Options{Procs: procs, BlockSize: block})
	if err != nil {
		log.Fatal(err)
	}
	prog := rapid.FromGraph(pr.G)
	fmt.Printf("graph:    %d tasks, %d panels\n", pr.G.NumTasks(), pr.NB)
	plan := compile(prog, procs, h, memPct)
	report, err := rapid.Execute(prog, plan, rapid.ExecOptions{
		Kernel: pr.Kernel, Init: pr.InitObject, BufLen: pr.BufLen, Faults: faults,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("executed: MAPs %v, %d messages, %d address packages\n",
		report.MAPsPerProc, report.Messages, report.AddrPackages)
	fmt.Printf("protocol state occupancy:\n%s", stateTable(report))
	if faults.Enabled() {
		fmt.Printf("reliability (injected faults, seed %d):\n%s", faults.Seed, reliabilityTable(report))
	}

	xTrue := make([]float64, a.N)
	for i := range xTrue {
		xTrue[i] = rng.NormFloat64()
	}
	b := make([]float64, a.N)
	for j := 0; j < a.N; j++ {
		vals := a.ColVal(j)
		for k, i := range a.Col(j) {
			b[i] += vals[k] * xTrue[j]
		}
	}
	x := pr.Solve(report.Objects, b)
	maxErr := 0.0
	for i := range x {
		if d := math.Abs(x[i] - xTrue[i]); d > maxErr {
			maxErr = d
		}
	}
	fmt.Printf("solve:    max |x−x*| = %.3g\n", maxErr)
}
