// Command paper regenerates the tables and figures of the evaluation
// section of Fu & Yang, PPoPP'97, on the simulated machine.
//
// Usage:
//
//	paper [-scale small|full] [-exp all|table1|table2|...|table8|figure7]
//
// Full scale uses the paper's matrix dimensions (n = 3500..7300) and takes
// a few minutes; small scale finishes in seconds.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/paper"
)

func main() {
	scale := flag.String("scale", "small", "workload scale: small or full")
	exp := flag.String("exp", "all", "experiment: all, table1..table8, figure7")
	flag.Parse()

	sc := paper.Small
	switch strings.ToLower(*scale) {
	case "small":
	case "full":
		sc = paper.Full
	default:
		fmt.Fprintf(os.Stderr, "unknown scale %q\n", *scale)
		os.Exit(2)
	}

	w := os.Stdout
	run := func(name string, f func()) {
		if *exp == "all" || *exp == name {
			f()
		}
	}
	run("table1", func() { paper.Table1(w, sc) })
	run("table2", func() { paper.Table2(w, sc) })
	run("table3", func() { paper.Table3(w, sc) })
	run("table4", func() { paper.Table4(w, sc) })
	run("table5", func() { paper.Table5(w, sc) })
	run("table6", func() { paper.Table6(w, sc) })
	run("table7", func() { paper.Table7(w, sc) })
	run("table8", func() { paper.Table8(w, sc) })
	run("ablation", func() {
		paper.AblationMAPPolicy(w, sc)
		paper.AblationSlotDepth(w, sc)
		paper.AblationMergeSweep(w, sc)
	})
	run("figure3", func() { paper.Figure3(w) })
	run("figure7", func() { paper.Figure7(w, sc) })
	run("trisolve", func() { paper.ExtensionTrisolve(w, sc) })
	run("fragmentation", func() { paper.ExtensionFragmentation(w, sc) })
	run("breakdown", func() { paper.ExtensionMemoryBreakdown(w, sc) })
}
