// Command rapidvet statically enforces the runtime's concurrency and
// durability invariants: admission-ledger balance, store-then-wake
// ordering, the failed-fsync gate, guarded-by lock annotations, wrapped
// sentinel discipline, and plan-byte determinism. Run it standalone
// (`go run ./cmd/rapidvet ./...`) or as a vettool
// (`go vet -vettool=$(which rapidvet) ./...`); see DESIGN.md §13 for the
// invariant-to-analyzer table.
package main

import "repro/tools/analyzers/rapidvet/checker"

func main() { checker.Main() }
