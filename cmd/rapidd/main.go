// Command rapidd is the solve service: a daemon that accepts sparse
// factorization jobs over HTTP, reuses compiled inspector artifacts through
// the two-tier plan cache (in-memory LRU over an on-disk content-addressed
// store), and executes them on a bounded worker pool under a machine-wide
// memory-budget admission controller — concurrent jobs share -avail-mem,
// and jobs that would overflow it queue until running work releases space.
//
// Usage:
//
//	rapidd [-addr :8437] [-cache-dir DIR] [-cache-mem BYTES] [-avail-mem UNITS]
//	       [-job-timeout 30s] [-job-retries 2]
//	       [-workers N] [-queue-depth N] [-deadline DUR] [-retry-after 1s]
//	       [-journal-dir DIR] [-degraded-mode reject|serve] [-rearm-backoff 50ms]
//	       [-tenant-quotas gold=48,bronze=16]
//	       [-default-tenant-quota UNITS] [-tenant-weights gold=3,bronze=1]
//
// Submit a job and wait for the result:
//
//	curl -s -X POST 'localhost:8437/v1/solve?wait=1' \
//	     -d '{"kind":"chol","n":300,"procs":4,"heuristic":"mpo","verify":true}'
//
// Re-submitting the same spec returns "plan_source": "memory" — the
// inspector phase is skipped — and if the duplicate arrives while the first
// is still executing it coalesces onto that execution ("coalesced": true).
// When the backlog exceeds -queue-depth the daemon sheds load with 429 +
// Retry-After instead of queueing without bound. See /v1/stats for cache,
// pool and admission counters.
//
// On SIGINT/SIGTERM the daemon stops accepting jobs (503), finishes the
// backlog, and exits.
//
// With -journal-dir set every accepted job is journaled (fsync'd) before the
// submit is acknowledged; on restart the daemon replays the journal, requeues
// jobs that never ran and explicitly fails the ones it was executing when it
// died. If the journal's disk fails mid-run the daemon degrades instead of
// wedging: -degraded-mode picks whether new submits are refused with 503
// (reject, the default) or accepted with "durable": false (serve), while a
// background loop retries re-arming the journal every -rearm-backoff
// (doubling). GET /healthz is a readiness probe: 200 while durable, 503 +
// JSON state while degraded. Tenants (X-Tenant header or "tenant" spec
// field) get per-tenant
// -avail-mem sub-quotas, weighted-fair queueing and priority-aware shedding;
// GET /metrics exposes the counters in Prometheus text format.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"repro/internal/rapidd"
	"repro/internal/trace"
)

// parseTenantMap parses "name=value,name=value" flag syntax shared by
// -tenant-quotas and -tenant-weights. parse converts the value half.
func parseTenantMap[V any](arg string, parse func(string) (V, error)) (map[string]V, error) {
	if arg == "" {
		return nil, nil
	}
	out := make(map[string]V)
	for _, pair := range strings.Split(arg, ",") {
		name, val, ok := strings.Cut(pair, "=")
		if !ok || name == "" {
			return nil, fmt.Errorf("%q: want name=value", pair)
		}
		if _, dup := out[name]; dup {
			return nil, fmt.Errorf("tenant %q listed twice", name)
		}
		v, err := parse(val)
		if err != nil {
			return nil, fmt.Errorf("tenant %q: %v", name, err)
		}
		out[name] = v
	}
	return out, nil
}

func main() {
	addr := flag.String("addr", ":8437", "listen address")
	cacheDir := flag.String("cache-dir", "", "on-disk plan store directory (empty: memory-only cache)")
	cacheMem := flag.Int64("cache-mem", 0, "in-memory plan cache budget in bytes (0: default 256 MiB)")
	availMem := flag.Int64("avail-mem", 0, "machine-wide memory budget in abstract units (0: unlimited)")
	jobTimeout := flag.Duration("job-timeout", 0, "per-attempt execution watchdog deadline (0: executor default)")
	jobRetries := flag.Int("job-retries", 0, "retries for fault-injected jobs that fail (0: default 2, negative: none)")
	workers := flag.Int("workers", 0, "worker-pool size: concurrent job executions (0: max(2, GOMAXPROCS); 1: serial)")
	queueDepth := flag.Int("queue-depth", 0, "accepted-job backlog bound; beyond it requests are shed with 429 (0: 64, negative: unbuffered)")
	deadline := flag.Duration("deadline", 0, "default end-to-end job deadline for specs without deadline_ms (0: none)")
	retryAfter := flag.Duration("retry-after", 0, "client back-off hint on shed responses (0: 1s)")
	drainTimeout := flag.Duration("drain-timeout", 30*time.Second, "how long shutdown waits for in-flight jobs")
	journalDir := flag.String("journal-dir", "", "write-ahead job journal directory (empty: no durability)")
	journalNoSync := flag.Bool("journal-nosync", false, "skip per-record journal fsync (benchmarks only; crashes can lose acknowledged jobs)")
	degradedMode := flag.String("degraded-mode", "", "submit policy while the journal is degraded: reject (default: 503 new submits) or serve (accept with durable:false)")
	rearmBackoff := flag.Duration("rearm-backoff", 0, "initial delay between journal re-arm attempts while degraded (0: 50ms), doubled per failure")
	tenantQuotas := flag.String("tenant-quotas", "", "per-tenant avail-mem sub-quotas, e.g. gold=48,bronze=16")
	defaultTenantQuota := flag.Int64("default-tenant-quota", 0, "avail-mem sub-quota for tenants not in -tenant-quotas (0: uncapped)")
	tenantWeights := flag.String("tenant-weights", "", "fair-queueing weights, e.g. gold=3,bronze=1 (default 1 each)")
	flag.Parse()

	quotas, err := parseTenantMap(*tenantQuotas, func(s string) (int64, error) {
		v, err := strconv.ParseInt(s, 10, 64)
		if err == nil && v <= 0 {
			err = fmt.Errorf("quota %d not positive", v)
		}
		return v, err
	})
	if err != nil {
		log.Fatalf("rapidd: -tenant-quotas: %v", err)
	}
	weights, err := parseTenantMap(*tenantWeights, func(s string) (float64, error) {
		v, err := strconv.ParseFloat(s, 64)
		if err == nil && (v <= 0 || v != v) {
			err = fmt.Errorf("weight %g not positive", v)
		}
		return v, err
	})
	if err != nil {
		log.Fatalf("rapidd: -tenant-weights: %v", err)
	}

	srv, err := rapidd.Open(rapidd.Config{
		CacheDir:           *cacheDir,
		CacheMemBudget:     *cacheMem,
		AvailMem:           *availMem,
		JobTimeout:         *jobTimeout,
		MaxJobRetries:      *jobRetries,
		Workers:            *workers,
		QueueDepth:         *queueDepth,
		DefaultDeadline:    *deadline,
		RetryAfter:         *retryAfter,
		JournalDir:         *journalDir,
		JournalNoSync:      *journalNoSync,
		DegradedMode:       *degradedMode,
		RearmBackoff:       *rearmBackoff,
		TenantQuotas:       quotas,
		DefaultTenantQuota: *defaultTenantQuota,
		TenantWeights:      weights,
		Metrics:            trace.NewMetrics(),
	})
	if err != nil {
		log.Fatalf("rapidd: %v", err)
	}
	hs := &http.Server{Addr: *addr, Handler: srv}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	errc := make(chan error, 1)
	go func() { errc <- hs.ListenAndServe() }()
	log.Printf("rapidd listening on %s (cache-dir=%q avail-mem=%d workers=%d queue-depth=%d journal-dir=%q)",
		*addr, *cacheDir, *availMem, *workers, *queueDepth, *journalDir)

	select {
	case err := <-errc:
		log.Fatal(err)
	case <-ctx.Done():
	}
	log.Printf("rapidd draining (up to %s)", *drainTimeout)
	dctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := srv.Drain(dctx); err != nil {
		log.Printf("rapidd: %v", err)
	}
	if err := hs.Shutdown(dctx); err != nil {
		log.Printf("rapidd: shutdown: %v", err)
	}
	log.Printf("rapidd stopped")
}
