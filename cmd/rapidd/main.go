// Command rapidd is the solve service: a daemon that accepts sparse
// factorization jobs over HTTP, reuses compiled inspector artifacts through
// the two-tier plan cache (in-memory LRU over an on-disk content-addressed
// store), and executes them on a bounded worker pool under a machine-wide
// memory-budget admission controller — concurrent jobs share -avail-mem,
// and jobs that would overflow it queue until running work releases space.
//
// Usage:
//
//	rapidd [-addr :8437] [-cache-dir DIR] [-cache-mem BYTES] [-avail-mem UNITS]
//	       [-job-timeout 30s] [-job-retries 2]
//	       [-workers N] [-queue-depth N] [-deadline DUR] [-retry-after 1s]
//
// Submit a job and wait for the result:
//
//	curl -s -X POST 'localhost:8437/v1/solve?wait=1' \
//	     -d '{"kind":"chol","n":300,"procs":4,"heuristic":"mpo","verify":true}'
//
// Re-submitting the same spec returns "plan_source": "memory" — the
// inspector phase is skipped — and if the duplicate arrives while the first
// is still executing it coalesces onto that execution ("coalesced": true).
// When the backlog exceeds -queue-depth the daemon sheds load with 429 +
// Retry-After instead of queueing without bound. See /v1/stats for cache,
// pool and admission counters.
//
// On SIGINT/SIGTERM the daemon stops accepting jobs (503), finishes the
// backlog, and exits.
package main

import (
	"context"
	"flag"
	"log"
	"net/http"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/rapidd"
	"repro/internal/trace"
)

func main() {
	addr := flag.String("addr", ":8437", "listen address")
	cacheDir := flag.String("cache-dir", "", "on-disk plan store directory (empty: memory-only cache)")
	cacheMem := flag.Int64("cache-mem", 0, "in-memory plan cache budget in bytes (0: default 256 MiB)")
	availMem := flag.Int64("avail-mem", 0, "machine-wide memory budget in abstract units (0: unlimited)")
	jobTimeout := flag.Duration("job-timeout", 0, "per-attempt execution watchdog deadline (0: executor default)")
	jobRetries := flag.Int("job-retries", 0, "retries for fault-injected jobs that fail (0: default 2, negative: none)")
	workers := flag.Int("workers", 0, "worker-pool size: concurrent job executions (0: max(2, GOMAXPROCS); 1: serial)")
	queueDepth := flag.Int("queue-depth", 0, "accepted-job backlog bound; beyond it requests are shed with 429 (0: 64, negative: unbuffered)")
	deadline := flag.Duration("deadline", 0, "default end-to-end job deadline for specs without deadline_ms (0: none)")
	retryAfter := flag.Duration("retry-after", 0, "client back-off hint on shed responses (0: 1s)")
	drainTimeout := flag.Duration("drain-timeout", 30*time.Second, "how long shutdown waits for in-flight jobs")
	flag.Parse()

	srv := rapidd.New(rapidd.Config{
		CacheDir:        *cacheDir,
		CacheMemBudget:  *cacheMem,
		AvailMem:        *availMem,
		JobTimeout:      *jobTimeout,
		MaxJobRetries:   *jobRetries,
		Workers:         *workers,
		QueueDepth:      *queueDepth,
		DefaultDeadline: *deadline,
		RetryAfter:      *retryAfter,
		Metrics:         trace.NewMetrics(),
	})
	hs := &http.Server{Addr: *addr, Handler: srv}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	errc := make(chan error, 1)
	go func() { errc <- hs.ListenAndServe() }()
	log.Printf("rapidd listening on %s (cache-dir=%q avail-mem=%d workers=%d queue-depth=%d)",
		*addr, *cacheDir, *availMem, *workers, *queueDepth)

	select {
	case err := <-errc:
		log.Fatal(err)
	case <-ctx.Done():
	}
	log.Printf("rapidd draining (up to %s)", *drainTimeout)
	dctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := srv.Drain(dctx); err != nil {
		log.Printf("rapidd: %v", err)
	}
	if err := hs.Shutdown(dctx); err != nil {
		log.Printf("rapidd: shutdown: %v", err)
	}
	log.Printf("rapidd stopped")
}
