// Command rapidd is the solve service: a daemon that accepts sparse
// factorization jobs over HTTP, reuses compiled inspector artifacts through
// the two-tier plan cache (in-memory LRU over an on-disk content-addressed
// store), and runs executions under a machine-wide memory-budget admission
// controller — jobs that would overflow -avail-mem queue until running
// work releases space.
//
// Usage:
//
//	rapidd [-addr :8437] [-cache-dir DIR] [-cache-mem BYTES] [-avail-mem UNITS]
//	       [-job-timeout 30s] [-job-retries 2]
//
// Submit a job and wait for the result:
//
//	curl -s -X POST 'localhost:8437/v1/solve?wait=1' \
//	     -d '{"kind":"chol","n":300,"procs":4,"heuristic":"mpo","verify":true}'
//
// Re-submitting the same spec returns "plan_source": "memory" — the
// inspector phase is skipped. See /v1/stats for cache and admission
// counters.
package main

import (
	"flag"
	"log"
	"net/http"

	"repro/internal/rapidd"
	"repro/internal/trace"
)

func main() {
	addr := flag.String("addr", ":8437", "listen address")
	cacheDir := flag.String("cache-dir", "", "on-disk plan store directory (empty: memory-only cache)")
	cacheMem := flag.Int64("cache-mem", 0, "in-memory plan cache budget in bytes (0: default 256 MiB)")
	availMem := flag.Int64("avail-mem", 0, "machine-wide memory budget in abstract units (0: unlimited)")
	jobTimeout := flag.Duration("job-timeout", 0, "per-attempt execution watchdog deadline (0: executor default)")
	jobRetries := flag.Int("job-retries", 0, "retries for fault-injected jobs that fail (0: default 2, negative: none)")
	flag.Parse()

	srv := rapidd.New(rapidd.Config{
		CacheDir:       *cacheDir,
		CacheMemBudget: *cacheMem,
		AvailMem:       *availMem,
		JobTimeout:     *jobTimeout,
		MaxJobRetries:  *jobRetries,
		Metrics:        trace.NewMetrics(),
	})
	log.Printf("rapidd listening on %s (cache-dir=%q avail-mem=%d)", *addr, *cacheDir, *availMem)
	log.Fatal(http.ListenAndServe(*addr, srv))
}
