// Command rapidverify runs the static plan verifier (internal/verify)
// without executing anything: it proves MAP-before-first-use liveness,
// cross-processor wait-for acyclicity (the Theorem 1 deadlock-freedom
// precondition) and the symbolic memory-budget replay on serialized plans
// or on freshly compiled example problems.
//
// Usage:
//
//	rapidverify plan.rplan ...            verify serialized plan files
//	rapidverify -expect-fail bad.rplan .. assert every file FAILS verification
//	rapidverify -builtin [-procs 4] [-n 120] [-block 8]
//	                                      compile the example problems
//	                                      (chol + lu x rcp/mpo/dts/dtsmerge
//	                                      x 100%/60% memory) and verify each
//
// Plan files are decoded leniently (checksum and structure enforced,
// semantic validation left to the verifier), so deliberately defective
// corpora — e.g. internal/verify/testdata/badplans — can be checked with
// -expect-fail. Exit status: 0 when every input matches the expectation,
// 1 otherwise, 2 on usage errors.
package main

import (
	"flag"
	"fmt"
	"math"
	"os"

	"repro/internal/chol"
	"repro/internal/lu"
	"repro/internal/plan"
	"repro/internal/sparse"
	"repro/internal/trace"
	"repro/internal/util"
	"repro/internal/verify"
	"repro/rapid"
)

func main() {
	expectFail := flag.Bool("expect-fail", false, "assert every input fails verification (for defect corpora)")
	builtin := flag.Bool("builtin", false, "compile and verify the built-in example problems instead of reading plan files")
	procs := flag.Int("procs", 4, "virtual processors for -builtin")
	n := flag.Int("n", 120, "approximate matrix order for -builtin")
	block := flag.Int("block", 8, "block / panel size for -builtin")
	seed := flag.Uint64("seed", 1, "matrix generator seed for -builtin")
	flag.Parse()

	switch {
	case *builtin:
		if flag.NArg() > 0 || *expectFail {
			fmt.Fprintln(os.Stderr, "rapidverify: -builtin takes no file arguments and no -expect-fail")
			os.Exit(2)
		}
		os.Exit(runBuiltin(*procs, *n, *block, *seed))
	case flag.NArg() == 0:
		fmt.Fprintln(os.Stderr, "rapidverify: no plan files given (or use -builtin)")
		os.Exit(2)
	default:
		os.Exit(runFiles(flag.Args(), *expectFail))
	}
}

// runFiles verifies each serialized plan, printing one verdict line per
// file and the findings table for failures.
func runFiles(files []string, expectFail bool) int {
	bad := 0
	for _, file := range files {
		data, err := os.ReadFile(file)
		if err != nil {
			fmt.Fprintf(os.Stderr, "rapidverify: %v\n", err)
			bad++
			continue
		}
		a, err := plan.DecodeLenient(data)
		if err != nil {
			// Undecodable bytes cannot reach the verifier; under
			// -expect-fail that still counts as a detected-bad plan.
			if expectFail {
				fmt.Printf("%s: FAIL (decode: %v) — expected\n", file, err)
			} else {
				fmt.Fprintf(os.Stderr, "%s: %v\n", file, err)
				bad++
			}
			continue
		}
		res := verify.CheckArtifact(a)
		switch {
		case res.OK() && !expectFail:
			fmt.Printf("%s: OK (%d checks, peaks %v)\n", file, res.Checks, res.Peaks)
		case !res.OK() && expectFail:
			fmt.Printf("%s: FAIL (%d findings) — expected\n", file, len(res.Findings))
		case res.OK() && expectFail:
			fmt.Printf("%s: OK — but failure was expected\n", file)
			bad++
		default:
			fmt.Printf("%s: FAIL (%d findings, %d checks)\n", file, len(res.Findings), res.Checks)
			cols, rows := res.Rows()
			fmt.Print(trace.Grid(cols, rows))
			bad++
		}
	}
	if bad > 0 {
		return 1
	}
	return 0
}

// runBuiltin compiles the example problems across every heuristic at full
// and constrained memory and verifies each plan: the "all real plans pass"
// half of the verifier's acceptance criteria.
func runBuiltin(procs, n, block int, seed uint64) int {
	rng := util.NewRNG(seed)
	nx := int(math.Sqrt(float64(n) * 1.3))
	ny := n / nx
	if nx < 2 {
		nx = 2
	}
	if ny < 2 {
		ny = 2
	}

	cholPat := sparse.AddRandomSymLinks(sparse.Grid2D(nx, ny, true), n/8, rng)
	cholPat = cholPat.PermuteSym(sparse.RCM(cholPat))
	cholA := sparse.SPDValues(cholPat, rng)
	cholPr, err := chol.Build(cholA, chol.Options{Procs: procs, BlockSize: block})
	if err != nil {
		fmt.Fprintf(os.Stderr, "rapidverify: chol build: %v\n", err)
		return 1
	}
	luPat := sparse.AddRandomUnsymLinks(sparse.Grid2D(nx, ny, true), n/4, rng)
	luA := sparse.UnsymValues(luPat, rng)
	luPr, err := lu.Build(luA, lu.Options{Procs: procs, BlockSize: block})
	if err != nil {
		fmt.Fprintf(os.Stderr, "rapidverify: lu build: %v\n", err)
		return 1
	}
	programs := []struct {
		name string
		prog *rapid.Program
	}{
		{"chol", rapid.FromGraph(cholPr.G)},
		{"lu", rapid.FromGraph(luPr.G)},
	}

	bad := 0
	for _, pb := range programs {
		for _, h := range []rapid.Heuristic{rapid.RCP, rapid.MPO, rapid.DTS, rapid.DTSMerge, rapid.TreeMem} {
			for _, memPct := range []int{100, 60} {
				label := fmt.Sprintf("%s/%v/mem=%d%%", pb.name, h, memPct)
				free, err := rapid.Compile(pb.prog, rapid.Options{Procs: procs, Heuristic: h})
				if err != nil {
					fmt.Fprintf(os.Stderr, "%s: compile: %v\n", label, err)
					bad++
					continue
				}
				opt := rapid.Options{Procs: procs, Heuristic: h,
					Memory: free.TOT() * int64(memPct) / 100}
				p, err := rapid.Compile(pb.prog, opt)
				if err != nil {
					fmt.Fprintf(os.Stderr, "%s: compile: %v\n", label, err)
					bad++
					continue
				}
				res := rapid.VerifyPlan(p)
				if res.OK() {
					exec := "executable"
					if !p.Executable() {
						exec = "non-executable"
					}
					fmt.Printf("%s: OK (%d checks, %s)\n", label, res.Checks, exec)
					continue
				}
				fmt.Printf("%s: FAIL (%d findings)\n", label, len(res.Findings))
				cols, rows := res.Rows()
				fmt.Print(trace.Grid(cols, rows))
				bad++
			}
		}
	}
	if bad > 0 {
		return 1
	}
	return 0
}
