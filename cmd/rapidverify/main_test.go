package main

import (
	"path/filepath"
	"testing"
)

const corpus = "../../internal/verify/testdata/badplans"

func TestCorpusExpectFail(t *testing.T) {
	files, err := filepath.Glob(filepath.Join(corpus, "*.rplan"))
	if err != nil || len(files) == 0 {
		t.Fatalf("corpus missing: %v (%d files)", err, len(files))
	}
	if code := runFiles(files, true); code != 0 {
		t.Fatalf("expect-fail over the corpus exited %d", code)
	}
	// Without -expect-fail, the same corpus must fail.
	if code := runFiles(files, false); code != 1 {
		t.Fatalf("plain run over the corpus exited %d, want 1", code)
	}
}

func TestBuiltinPlansPass(t *testing.T) {
	if testing.Short() {
		t.Skip("compiles 16 plans")
	}
	if code := runBuiltin(3, 80, 8, 1); code != 0 {
		t.Fatalf("builtin plans failed verification (exit %d)", code)
	}
}
