// Package repro reproduces Fu & Yang, "Space and Time Efficient Execution
// of Parallel Irregular Computations" (PPoPP 1997): a RAPID-style run-time
// system executing irregular task graphs on distributed-memory machines
// under per-processor memory constraints, with active memory management
// (Memory Allocation Points, address notification over remote memory
// access, suspended sends, a provably deadlock-free five-state protocol)
// and the memory-efficient scheduling heuristics RCP, MPO and DTS.
//
// The public API lives in the rapid package; the applications (2-D block
// sparse Cholesky, 1-D column-block sparse LU with partial pivoting) and
// all substrates are under internal/. The benchmark harness in
// bench_test.go regenerates every table and figure of the paper's
// evaluation; see DESIGN.md and EXPERIMENTS.md.
//
// The inspector phase is deterministic and content-addressable:
// rapid.CompileCached fingerprints the (task structure, options) pair and
// reuses compiled plans from a two-tier plan cache (in-memory LRU over an
// on-disk store, internal/plancache), so repeated executions of the same
// irregular structure — the inspector/executor paradigm's amortization
// case — skip inspection entirely. Command rapidd serves that workflow as
// a daemon, with a memory-budget admission controller that queues jobs
// whose planned footprint would overflow the machine's AVAIL_MEM.
package repro
