module repro

go 1.22

// rapidvet (tools/analyzers/rapidvet) compiles against a local mirror of
// the go/analysis API so the suite builds offline. The pin below records
// the upstream the mirror tracks; the replace gates it against the
// network — this environment has no module proxy, so the requirement
// resolves to the empty stub in third_party/. To adopt the real module,
// follow third_party/golang.org/x/tools/README.md.
require golang.org/x/tools v0.24.0

replace golang.org/x/tools => ./third_party/golang.org/x/tools
