// Offline stand-in for golang.org/x/tools. The build environment has no
// module proxy, so the replace directive in the root go.mod resolves the
// pinned requirement here instead of the network. The module is
// deliberately empty: rapidvet compiles against its own API mirror in
// tools/analyzers/rapidvet/analysis, and this stub only keeps the pin
// resolvable. See third_party/golang.org/x/tools/README.md.
module golang.org/x/tools

go 1.22
