package sparse

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/util"
)

func TestMatrixMarketRoundTrip(t *testing.T) {
	rng := util.NewRNG(5)
	m := SPDValues(AddRandomSymLinks(Grid2D(5, 4, true), 7, rng), rng)
	var buf bytes.Buffer
	if err := m.WriteMatrixMarket(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadMatrixMarket(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.N != m.N || got.Nnz() != m.Nnz() {
		t.Fatalf("shape changed: %dx%d nnz %d", got.N, got.N, got.Nnz())
	}
	for k := range m.RowIdx {
		if got.RowIdx[k] != m.RowIdx[k] || got.Val[k] != m.Val[k] {
			t.Fatalf("entry %d differs", k)
		}
	}
}

func TestMatrixMarketPatternRoundTrip(t *testing.T) {
	m := Grid2D(4, 4, false)
	var buf bytes.Buffer
	if err := m.WriteMatrixMarket(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "pattern") {
		t.Fatalf("pattern field missing")
	}
	got, err := ReadMatrixMarket(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Nnz() != m.Nnz() {
		t.Fatalf("nnz changed")
	}
}

func TestMatrixMarketSymmetricExpansion(t *testing.T) {
	in := `%%MatrixMarket matrix coordinate real symmetric
% a comment
3 3 4
1 1 2.0
2 1 -1.0
3 2 -1.0
3 3 2.0
`
	m, err := ReadMatrixMarket(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if m.Nnz() != 6 {
		t.Fatalf("nnz %d, want 6 after expansion", m.Nnz())
	}
	if !m.IsSymmetricPattern() {
		t.Fatalf("not symmetric after expansion")
	}
	if !m.HasEntry(0, 1) || !m.HasEntry(1, 0) {
		t.Fatalf("mirror entry missing")
	}
}

func TestMatrixMarketErrors(t *testing.T) {
	cases := []string{
		"",
		"%%MatrixMarket matrix array real general\n2 2\n1\n2\n3\n4\n",
		"%%MatrixMarket matrix coordinate real general\n2 3 1\n1 1 5\n",
		"%%MatrixMarket matrix coordinate real general\n2 2 1\n9 1 5\n",
		"%%MatrixMarket matrix coordinate real general\n2 2 1\n1 1\n",
	}
	for i, c := range cases {
		if _, err := ReadMatrixMarket(strings.NewReader(c)); err == nil {
			t.Fatalf("case %d: expected error", i)
		}
	}
}

func TestMatrixMarketDuplicatesSummed(t *testing.T) {
	in := `%%MatrixMarket matrix coordinate real general
2 2 3
1 1 1.5
1 1 2.5
2 2 1.0
`
	m, err := ReadMatrixMarket(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if m.Nnz() != 2 {
		t.Fatalf("nnz %d, want 2", m.Nnz())
	}
	d := m.ToDense()
	if d[0] != 4.0 {
		t.Fatalf("duplicate not summed: %v", d[0])
	}
}

func TestAtAPatternProperties(t *testing.T) {
	rng := util.NewRNG(6)
	m := AddRandomUnsymLinks(Grid2D(5, 5, false), 15, rng)
	ata := m.AtAPattern()
	if !ata.IsSymmetricPattern() {
		t.Fatalf("AᵀA pattern not symmetric")
	}
	// Every structural entry of AᵀA: exists row r with entries in both
	// columns; verify against a dense check.
	n := m.N
	dense := make([][]bool, n)
	rows := m.TransposePattern()
	for i := range dense {
		dense[i] = make([]bool, n)
		dense[i][i] = true
	}
	for i := 0; i < n; i++ {
		rs := rows.Col(i)
		for _, a := range rs {
			for _, b := range rs {
				dense[a][b] = true
			}
		}
	}
	for j := 0; j < n; j++ {
		for i := 0; i < n; i++ {
			if ata.HasEntry(i, j) != dense[i][j] {
				t.Fatalf("AᵀA mismatch at (%d,%d)", i, j)
			}
		}
	}
}
