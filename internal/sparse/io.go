package sparse

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// WriteMatrixMarket writes the matrix in MatrixMarket coordinate format
// ("%%MatrixMarket matrix coordinate real general", 1-based indices).
// Pattern-only matrices are written with the "pattern" field.
func (m *Matrix) WriteMatrixMarket(w io.Writer) error {
	bw := bufio.NewWriter(w)
	field := "real"
	if m.Val == nil {
		field = "pattern"
	}
	if _, err := fmt.Fprintf(bw, "%%%%MatrixMarket matrix coordinate %s general\n", field); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(bw, "%d %d %d\n", m.N, m.N, m.Nnz()); err != nil {
		return err
	}
	for j := 0; j < m.N; j++ {
		vals := m.ColVal(j)
		for k, i := range m.Col(j) {
			if vals != nil {
				if _, err := fmt.Fprintf(bw, "%d %d %.17g\n", i+1, j+1, vals[k]); err != nil {
					return err
				}
			} else {
				if _, err := fmt.Fprintf(bw, "%d %d\n", i+1, j+1); err != nil {
					return err
				}
			}
		}
	}
	return bw.Flush()
}

// ReadMatrixMarket parses a MatrixMarket coordinate file (real, integer or
// pattern field; general or symmetric symmetry — symmetric input is
// expanded to the full pattern). Only square matrices are accepted.
func ReadMatrixMarket(r io.Reader) (*Matrix, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<24)

	if !sc.Scan() {
		return nil, fmt.Errorf("sparse: empty MatrixMarket input")
	}
	headline := strings.Fields(strings.ToLower(sc.Text()))
	if len(headline) < 5 || headline[0] != "%%matrixmarket" || headline[1] != "matrix" || headline[2] != "coordinate" {
		return nil, fmt.Errorf("sparse: unsupported MatrixMarket header %q", sc.Text())
	}
	field := headline[3]
	symmetry := headline[4]
	switch field {
	case "real", "integer", "pattern":
	default:
		return nil, fmt.Errorf("sparse: unsupported field %q", field)
	}
	switch symmetry {
	case "general", "symmetric":
	default:
		return nil, fmt.Errorf("sparse: unsupported symmetry %q", symmetry)
	}

	// Size line (skipping comments).
	var n, cols, nnz int
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "%") {
			continue
		}
		if _, err := fmt.Sscan(line, &n, &cols, &nnz); err != nil {
			return nil, fmt.Errorf("sparse: bad size line %q: %w", line, err)
		}
		break
	}
	if n != cols {
		return nil, fmt.Errorf("sparse: only square matrices supported (%dx%d)", n, cols)
	}

	type entry struct {
		c coord
		v float64
	}
	entries := make([]entry, 0, nnz*2)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "%") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			return nil, fmt.Errorf("sparse: bad entry line %q", line)
		}
		i, err := strconv.Atoi(fields[0])
		if err != nil {
			return nil, fmt.Errorf("sparse: bad row index %q", fields[0])
		}
		j, err := strconv.Atoi(fields[1])
		if err != nil {
			return nil, fmt.Errorf("sparse: bad column index %q", fields[1])
		}
		if i < 1 || i > n || j < 1 || j > n {
			return nil, fmt.Errorf("sparse: index (%d,%d) out of range", i, j)
		}
		v := 1.0
		if field != "pattern" {
			if len(fields) < 3 {
				return nil, fmt.Errorf("sparse: missing value in %q", line)
			}
			v, err = strconv.ParseFloat(fields[2], 64)
			if err != nil {
				return nil, fmt.Errorf("sparse: bad value %q", fields[2])
			}
		}
		entries = append(entries, entry{coord{int32(i - 1), int32(j - 1)}, v})
		if symmetry == "symmetric" && i != j {
			entries = append(entries, entry{coord{int32(j - 1), int32(i - 1)}, v})
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}

	// Sort and assemble (duplicates are summed, per MM convention).
	coords := make([]coord, len(entries))
	for k, e := range entries {
		coords[k] = e.c
	}
	m := FromCoords(n, coords)
	if field != "pattern" {
		m.Val = make([]float64, m.Nnz())
		for _, e := range entries {
			// Binary search the slot.
			lo := int(m.ColPtr[e.c.c])
			hi := int(m.ColPtr[e.c.c+1])
			for lo < hi {
				mid := (lo + hi) / 2
				if m.RowIdx[mid] < e.c.r {
					lo = mid + 1
				} else {
					hi = mid
				}
			}
			m.Val[lo] += e.v
		}
	}
	return m, nil
}
