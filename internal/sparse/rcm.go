package sparse

import "sort"

// RCM computes a reverse Cuthill-McKee ordering of a symmetric-pattern
// matrix, returning perm with perm[new] = old. Starting vertices are
// pseudo-peripheral nodes found by repeated BFS level-structure expansion.
// Bandwidth-reducing orderings keep the synthetic grid+links matrices close
// in fill behaviour to the band-oriented Harwell-Boeing originals.
func RCM(m *Matrix) []int32 {
	n := m.N
	deg := make([]int32, n)
	for j := 0; j < n; j++ {
		deg[j] = int32(len(m.Col(j)))
	}
	visited := make([]bool, n)
	perm := make([]int32, 0, n)
	level := make([]int32, n)

	bfsLevels := func(start int32, order []int32) ([]int32, int32) {
		order = order[:0]
		for i := range level {
			level[i] = -1
		}
		level[start] = 0
		order = append(order, start)
		maxLvl := int32(0)
		for h := 0; h < len(order); h++ {
			u := order[h]
			for _, v := range m.Col(int(u)) {
				if v == u || level[v] != -1 || visited[v] {
					continue
				}
				level[v] = level[u] + 1
				if level[v] > maxLvl {
					maxLvl = level[v]
				}
				order = append(order, v)
			}
		}
		return order, maxLvl
	}

	scratch := make([]int32, 0, n)
	for root := 0; root < n; root++ {
		if visited[root] {
			continue
		}
		// Find a pseudo-peripheral start in this component.
		start := int32(root)
		var lvl int32
		scratch, lvl = bfsLevels(start, scratch)
		for iter := 0; iter < 6; iter++ {
			// Pick a minimum-degree node in the last level.
			best := start
			bestDeg := int32(1 << 30)
			for _, u := range scratch {
				if level[u] == lvl && deg[u] < bestDeg {
					best, bestDeg = u, deg[u]
				}
			}
			var lvl2 int32
			scratch, lvl2 = bfsLevels(best, scratch)
			if lvl2 <= lvl {
				start = best
				break
			}
			start, lvl = best, lvl2
		}

		// Cuthill-McKee BFS from start, neighbours sorted by degree.
		compStart := len(perm)
		visited[start] = true
		perm = append(perm, start)
		for h := compStart; h < len(perm); h++ {
			u := perm[h]
			nbrStart := len(perm)
			for _, v := range m.Col(int(u)) {
				if v == u || visited[v] {
					continue
				}
				visited[v] = true
				perm = append(perm, v)
			}
			nb := perm[nbrStart:]
			sort.Slice(nb, func(a, b int) bool {
				if deg[nb[a]] != deg[nb[b]] {
					return deg[nb[a]] < deg[nb[b]]
				}
				return nb[a] < nb[b]
			})
		}
	}
	// Reverse.
	for i, j := 0, len(perm)-1; i < j; i, j = i+1, j-1 {
		perm[i], perm[j] = perm[j], perm[i]
	}
	return perm
}
