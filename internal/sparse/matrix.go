// Package sparse provides the sparse-matrix substrate for the two
// evaluation applications: compressed sparse column matrices, synthetic
// generators standing in for the Harwell-Boeing test matrices (BCSSTK15,
// BCSSTK24, BCSSTK33) and the goodwin fluid-mechanics matrix, reverse
// Cuthill-McKee ordering, elimination trees, symbolic factorization
// (Cholesky, and the static symbolic LU of Fu & Yang SC'96 via the
// symmetrized pattern), and block partitioning (2-D blocks for Cholesky,
// 1-D column blocks for LU).
package sparse

import (
	"fmt"
	"sort"
)

// Matrix is a compressed sparse column (CSC) matrix. Row indices within a
// column are strictly increasing. Val may be nil for pattern-only matrices.
type Matrix struct {
	N      int
	ColPtr []int32 // len N+1
	RowIdx []int32 // len nnz
	Val    []float64
}

// Nnz returns the number of stored entries.
func (m *Matrix) Nnz() int { return len(m.RowIdx) }

// Col returns the row indices of column j.
func (m *Matrix) Col(j int) []int32 { return m.RowIdx[m.ColPtr[j]:m.ColPtr[j+1]] }

// ColVal returns the values of column j (nil for pattern-only matrices).
func (m *Matrix) ColVal(j int) []float64 {
	if m.Val == nil {
		return nil
	}
	return m.Val[m.ColPtr[j]:m.ColPtr[j+1]]
}

// coord is a matrix coordinate used during construction.
type coord struct{ r, c int32 }

// FromCoords builds a pattern matrix from a list of (row, col) coordinates,
// deduplicating and sorting. Values are not set.
func FromCoords(n int, coords []coord) *Matrix {
	sort.Slice(coords, func(i, j int) bool {
		if coords[i].c != coords[j].c {
			return coords[i].c < coords[j].c
		}
		return coords[i].r < coords[j].r
	})
	colPtr := make([]int32, n+1)
	rowIdx := make([]int32, 0, len(coords))
	prev := coord{-1, -1}
	for _, cc := range coords {
		if cc == prev {
			continue
		}
		prev = cc
		rowIdx = append(rowIdx, cc.r)
		colPtr[cc.c+1]++
	}
	for j := 0; j < n; j++ {
		colPtr[j+1] += colPtr[j]
	}
	return &Matrix{N: n, ColPtr: colPtr, RowIdx: rowIdx}
}

// Clone returns a deep copy.
func (m *Matrix) Clone() *Matrix {
	c := &Matrix{
		N:      m.N,
		ColPtr: append([]int32(nil), m.ColPtr...),
		RowIdx: append([]int32(nil), m.RowIdx...),
	}
	if m.Val != nil {
		c.Val = append([]float64(nil), m.Val...)
	}
	return c
}

// SymmetrizePattern returns the pattern of A + Aᵀ (no values).
func (m *Matrix) SymmetrizePattern() *Matrix {
	coords := make([]coord, 0, 2*m.Nnz())
	for j := 0; j < m.N; j++ {
		for _, i := range m.Col(j) {
			coords = append(coords, coord{i, int32(j)}, coord{int32(j), i})
		}
	}
	return FromCoords(m.N, coords)
}

// AtAPattern returns the pattern of AᵀA (with a full diagonal): the columns
// of every row of A form a clique. George & Ng showed the Cholesky factor
// pattern of AᵀA bounds the L and U patterns of P·A = L·U for ANY partial
// pivoting sequence, which is what the static symbolic factorization of the
// sparse LU application relies on.
func (m *Matrix) AtAPattern() *Matrix {
	n := m.N
	rows := m.TransposePattern() // column j of rows = row j of m
	coords := make([]coord, 0, 4*m.Nnz())
	for i := 0; i < n; i++ {
		coords = append(coords, coord{int32(i), int32(i)})
		rs := rows.Col(i) // columns with a nonzero in row i of m
		for x := 0; x < len(rs); x++ {
			for y := x + 1; y < len(rs); y++ {
				coords = append(coords, coord{rs[x], rs[y]}, coord{rs[y], rs[x]})
			}
			coords = append(coords, coord{rs[x], rs[x]})
		}
	}
	return FromCoords(n, coords)
}

// IsSymmetricPattern reports whether the nonzero pattern is symmetric.
func (m *Matrix) IsSymmetricPattern() bool {
	t := m.TransposePattern()
	if len(t.RowIdx) != len(m.RowIdx) {
		return false
	}
	for k := range m.RowIdx {
		if m.RowIdx[k] != t.RowIdx[k] {
			return false
		}
	}
	for j := range m.ColPtr {
		if m.ColPtr[j] != t.ColPtr[j] {
			return false
		}
	}
	return true
}

// TransposePattern returns the pattern of Aᵀ (no values).
func (m *Matrix) TransposePattern() *Matrix {
	n := m.N
	colPtr := make([]int32, n+1)
	for _, i := range m.RowIdx {
		colPtr[i+1]++
	}
	for j := 0; j < n; j++ {
		colPtr[j+1] += colPtr[j]
	}
	rowIdx := make([]int32, len(m.RowIdx))
	next := append([]int32(nil), colPtr[:n]...)
	for j := 0; j < n; j++ {
		for _, i := range m.Col(j) {
			rowIdx[next[i]] = int32(j)
			next[i]++
		}
	}
	return &Matrix{N: n, ColPtr: colPtr, RowIdx: rowIdx}
}

// PermuteSym returns P·A·Pᵀ for a symmetric-pattern matrix where perm[new] =
// old (i.e. perm is the new ordering listing original indices). Values, if
// present, are carried along.
func (m *Matrix) PermuteSym(perm []int32) *Matrix {
	n := m.N
	if len(perm) != n {
		panic(fmt.Sprintf("sparse: permutation length %d != n %d", len(perm), n))
	}
	inv := make([]int32, n)
	for newI, oldI := range perm {
		inv[oldI] = int32(newI)
	}
	type entry struct {
		r, c int32
		v    float64
	}
	entries := make([]entry, 0, m.Nnz())
	for j := 0; j < n; j++ {
		vals := m.ColVal(j)
		for k, i := range m.Col(j) {
			var v float64
			if vals != nil {
				v = vals[k]
			}
			entries = append(entries, entry{inv[i], inv[j], v})
		}
	}
	sort.Slice(entries, func(a, b int) bool {
		if entries[a].c != entries[b].c {
			return entries[a].c < entries[b].c
		}
		return entries[a].r < entries[b].r
	})
	out := &Matrix{N: n, ColPtr: make([]int32, n+1), RowIdx: make([]int32, len(entries))}
	if m.Val != nil {
		out.Val = make([]float64, len(entries))
	}
	for k, e := range entries {
		out.RowIdx[k] = e.r
		out.ColPtr[e.c+1]++
		if out.Val != nil {
			out.Val[k] = e.v
		}
	}
	for j := 0; j < n; j++ {
		out.ColPtr[j+1] += out.ColPtr[j]
	}
	return out
}

// ToDense expands the matrix to a dense row-major n×n array. Intended for
// small validation problems only.
func (m *Matrix) ToDense() []float64 {
	d := make([]float64, m.N*m.N)
	for j := 0; j < m.N; j++ {
		vals := m.ColVal(j)
		for k, i := range m.Col(j) {
			v := 1.0
			if vals != nil {
				v = vals[k]
			}
			d[int(i)*m.N+j] = v
		}
	}
	return d
}

// HasEntry reports whether (i, j) is a stored entry.
func (m *Matrix) HasEntry(i, j int) bool {
	col := m.Col(j)
	lo, hi := 0, len(col)
	for lo < hi {
		mid := (lo + hi) / 2
		if col[mid] < int32(i) {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo < len(col) && col[lo] == int32(i)
}
