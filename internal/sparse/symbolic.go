package sparse

// EliminationTree computes the elimination tree of a symmetric-pattern
// matrix using Liu's algorithm with path compression. parent[j] == -1 marks
// a root. Only the lower triangle of the pattern is consulted.
func EliminationTree(m *Matrix) []int32 {
	n := m.N
	parent := make([]int32, n)
	ancestor := make([]int32, n)
	for j := 0; j < n; j++ {
		parent[j] = -1
		ancestor[j] = -1
		for _, i := range m.Col(j) {
			// Entries above the diagonal in column j correspond to lower
			// entries A(j, i) with i < j by symmetry.
			k := int(i)
			if k >= j {
				continue
			}
			for k != -1 && k < j {
				next := ancestor[k]
				ancestor[k] = int32(j)
				if next == -1 {
					parent[k] = int32(j)
					break
				}
				k = int(next)
			}
		}
	}
	return parent
}

// ColCounts returns the number of nonzeros in each column of the Cholesky
// factor L (diagonal included), computed by the row-subtree traversal: the
// nonzeros of row i of L are the nodes on the paths from each k in
// A(i, 0..i-1) up the elimination tree towards i. O(|L|) time.
func ColCounts(m *Matrix, parent []int32) []int64 {
	n := m.N
	counts := make([]int64, n)
	mark := make([]int32, n)
	for i := range mark {
		mark[i] = -1
	}
	for i := 0; i < n; i++ {
		counts[i]++ // diagonal
		mark[i] = int32(i)
		// Row i of L: walk up from each below-diagonal entry of column i of
		// the symmetric pattern (i.e. each A(i,k) with k < i).
		for _, r := range m.Col(i) {
			k := int(r)
			if k >= i {
				continue
			}
			for k != -1 && k < i && mark[k] != int32(i) {
				counts[k]++
				mark[k] = int32(i)
				k = int(parent[k])
			}
		}
	}
	return counts
}

// FactorNnz returns the total number of nonzeros in L.
func FactorNnz(counts []int64) int64 {
	var s int64
	for _, c := range counts {
		s += c
	}
	return s
}

// CholeskyFlops returns the flop count of the numeric factorization,
// sum over columns of c_j² + 2·c_j (standard column-Cholesky estimate).
func CholeskyFlops(counts []int64) int64 {
	var s int64
	for _, c := range counts {
		s += c*c + 2*c
	}
	return s
}

// BlockPattern2D computes the block-level nonzero pattern of the Cholesky
// factor for a uniform block size w: block (I, J), I >= J, is present iff
// some L(i, j) != 0 with i in block I and j in block J. It is computed
// during the same row-subtree traversal as ColCounts without materializing
// L. The result maps each block column J to the sorted list of block rows
// I >= J with nonzero blocks (the diagonal block is always present).
type BlockPattern2D struct {
	N    int       // matrix order
	W    int       // block size
	NB   int       // number of block rows/columns
	Rows [][]int32 // Rows[J] = sorted block rows I >= J with L block nonzero
	// ColNnz[j] is the scalar column count of L (for flop/size accounting).
	ColNnz []int64
}

// NewBlockPattern2D runs the symbolic analysis. The pattern must be
// symmetric with a full diagonal.
func NewBlockPattern2D(m *Matrix, w int) *BlockPattern2D {
	n := m.N
	nb := (n + w - 1) / w
	parent := EliminationTree(m)
	counts := make([]int64, n)
	mark := make([]int32, n)
	for i := range mark {
		mark[i] = -1
	}
	// blockSeen[J] tracks, for the current block row span, which block
	// columns have been touched; accumulate into per-block-column sets.
	sets := make([]map[int32]struct{}, nb)
	for j := range sets {
		sets[j] = make(map[int32]struct{})
		sets[j][int32(j)] = struct{}{} // diagonal block always present
	}
	for i := 0; i < n; i++ {
		counts[i]++
		mark[i] = int32(i)
		bi := int32(i / w)
		for _, r := range m.Col(i) {
			k := int(r)
			if k >= i {
				continue
			}
			for k != -1 && k < i && mark[k] != int32(i) {
				counts[k]++
				mark[k] = int32(i)
				sets[k/w][bi] = struct{}{}
				k = int(parent[k])
			}
		}
	}
	bp := &BlockPattern2D{N: n, W: w, NB: nb, Rows: make([][]int32, nb), ColNnz: counts}
	for j := 0; j < nb; j++ {
		rows := make([]int32, 0, len(sets[j]))
		for r := range sets[j] {
			rows = append(rows, r)
		}
		sortInt32(rows)
		bp.Rows[j] = rows
	}
	return bp
}

// BlockDim returns the number of scalar rows/columns in block b (the last
// block may be ragged).
func (bp *BlockPattern2D) BlockDim(b int) int {
	if b == bp.NB-1 {
		if r := bp.N - b*bp.W; r > 0 {
			return r
		}
	}
	return bp.W
}

// HasBlock reports whether block (I, J), I >= J, is present.
func (bp *BlockPattern2D) HasBlock(i, j int) bool {
	rows := bp.Rows[j]
	lo, hi := 0, len(rows)
	for lo < hi {
		mid := (lo + hi) / 2
		if rows[mid] < int32(i) {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo < len(rows) && rows[lo] == int32(i)
}

func sortInt32(a []int32) {
	// Insertion sort is fine: block-row lists are short and nearly sorted.
	for i := 1; i < len(a); i++ {
		v := a[i]
		j := i - 1
		for j >= 0 && a[j] > v {
			a[j+1] = a[j]
			j--
		}
		a[j+1] = v
	}
}

// BlockPattern1D computes the column-block (panel) structure for the 1-D
// column-block LU of Fu & Yang SC'96: the static symbolic factorization
// overestimates the fill so the dependence structure is valid for every
// partial-pivoting sequence. Following George & Ng, the L and U patterns of
// P·A = L·U are bounded by the Cholesky factor pattern of AᵀA, so the
// factorization of that symmetric pattern drives the block structure: panel
// K interacts with panel J > K iff block (J, K) of the bound factor is
// nonzero (this covers Schur updates AND pure row interchanges).
type BlockPattern1D struct {
	N  int
	W  int
	NB int
	// Succ[K] = sorted panels J > K updated by panel K.
	Succ [][]int32
	// PanelNnz[K] = scalar factor nonzeros in panel K's columns of L plus
	// the mirrored U rows (2·(L column counts) − diagonal), used as the
	// panel data-object size.
	PanelNnz []int64
}

// NewBlockPattern1D runs the static symbolic analysis for LU.
func NewBlockPattern1D(a *Matrix, w int) *BlockPattern1D {
	bp2 := NewBlockPattern2D(a.AtAPattern(), w)
	nb := bp2.NB
	succ := make([][]int32, nb)
	for k := 0; k < nb; k++ {
		rows := bp2.Rows[k]
		s := make([]int32, 0, len(rows))
		for _, r := range rows {
			if r > int32(k) {
				s = append(s, r)
			}
		}
		succ[k] = s
	}
	panelNnz := make([]int64, nb)
	for k := 0; k < nb; k++ {
		lo, hi := k*w, (k+1)*w
		if hi > bp2.N {
			hi = bp2.N
		}
		var s int64
		for j := lo; j < hi; j++ {
			s += 2*bp2.ColNnz[j] - 1
		}
		panelNnz[k] = s
	}
	return &BlockPattern1D{N: bp2.N, W: w, NB: nb, Succ: succ, PanelNnz: panelNnz}
}

// BlockDim returns the number of scalar columns in panel b.
func (bp *BlockPattern1D) BlockDim(b int) int {
	if b == bp.NB-1 {
		if r := bp.N - b*bp.W; r > 0 {
			return r
		}
	}
	return bp.W
}
