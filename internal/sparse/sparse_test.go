package sparse

import (
	"testing"

	"repro/internal/blas"
	"repro/internal/util"
)

func TestGrid2DPattern(t *testing.T) {
	m := Grid2D(3, 3, false)
	if m.N != 9 {
		t.Fatalf("N = %d", m.N)
	}
	if !m.IsSymmetricPattern() {
		t.Fatalf("not symmetric")
	}
	// Interior node 4 has 5 entries (self + 4 neighbours).
	if len(m.Col(4)) != 5 {
		t.Fatalf("center column has %d entries, want 5", len(m.Col(4)))
	}
	if !m.HasEntry(4, 4) || !m.HasEntry(3, 4) || m.HasEntry(0, 4) {
		t.Fatalf("entries wrong")
	}
}

func TestGrid2DNineP(t *testing.T) {
	m := Grid2D(3, 3, true)
	if len(m.Col(4)) != 9 {
		t.Fatalf("center column has %d entries, want 9", len(m.Col(4)))
	}
	if !m.IsSymmetricPattern() {
		t.Fatalf("not symmetric")
	}
}

func TestGrid3D(t *testing.T) {
	m := Grid3D(3, 3, 3)
	if m.N != 27 {
		t.Fatalf("N = %d", m.N)
	}
	if len(m.Col(13)) != 7 { // interior node
		t.Fatalf("interior column has %d entries, want 7", len(m.Col(13)))
	}
	if !m.IsSymmetricPattern() {
		t.Fatalf("not symmetric")
	}
}

func TestSymmetrizeAndLinks(t *testing.T) {
	rng := util.NewRNG(1)
	m := Grid2D(5, 5, false)
	u := AddRandomUnsymLinks(m, 20, rng)
	s := u.SymmetrizePattern()
	if !s.IsSymmetricPattern() {
		t.Fatalf("symmetrize failed")
	}
	if s.Nnz() < u.Nnz() {
		t.Fatalf("symmetrize lost entries")
	}
	m2 := AddRandomSymLinks(m, 20, rng)
	if !m2.IsSymmetricPattern() {
		t.Fatalf("AddRandomSymLinks broke symmetry")
	}
}

func TestTruncate(t *testing.T) {
	m := Grid2D(4, 4, false)
	tr := m.Truncate(7)
	if tr.N != 7 {
		t.Fatalf("N = %d", tr.N)
	}
	for j := 0; j < 7; j++ {
		for _, i := range tr.Col(j) {
			if int(i) >= 7 {
				t.Fatalf("row out of range")
			}
			if !m.HasEntry(int(i), j) {
				t.Fatalf("spurious entry")
			}
		}
	}
}

func TestPermuteSymRoundTrip(t *testing.T) {
	rng := util.NewRNG(2)
	m := SPDValues(AddRandomSymLinks(Grid2D(4, 4, false), 6, rng), rng)
	perm := make([]int32, m.N)
	for i, v := range rng.Perm(m.N) {
		perm[i] = int32(v)
	}
	p := m.PermuteSym(perm)
	if p.Nnz() != m.Nnz() {
		t.Fatalf("nnz changed: %d vs %d", p.Nnz(), m.Nnz())
	}
	// Check value correspondence via dense expansion.
	dm, dp := m.ToDense(), p.ToDense()
	n := m.N
	for newI := 0; newI < n; newI++ {
		for newJ := 0; newJ < n; newJ++ {
			if dp[newI*n+newJ] != dm[int(perm[newI])*n+int(perm[newJ])] {
				t.Fatalf("permutation wrong at (%d,%d)", newI, newJ)
			}
		}
	}
}

func TestRCMIsPermutationAndReducesBandwidth(t *testing.T) {
	rng := util.NewRNG(3)
	m := AddRandomSymLinks(Grid2D(12, 12, false), 10, rng)
	// Scramble first so RCM has something to do.
	scram := make([]int32, m.N)
	for i, v := range rng.Perm(m.N) {
		scram[i] = int32(v)
	}
	ms := m.PermuteSym(scram)
	perm := RCM(ms)
	seen := make([]bool, ms.N)
	for _, v := range perm {
		if v < 0 || int(v) >= ms.N || seen[v] {
			t.Fatalf("RCM not a permutation")
		}
		seen[v] = true
	}
	bw := func(a *Matrix) int {
		b := 0
		for j := 0; j < a.N; j++ {
			for _, i := range a.Col(j) {
				d := int(i) - j
				if d < 0 {
					d = -d
				}
				if d > b {
					b = d
				}
			}
		}
		return b
	}
	after := ms.PermuteSym(perm)
	if bw(after) >= bw(ms) {
		t.Fatalf("RCM did not reduce bandwidth: %d -> %d", bw(ms), bw(after))
	}
}

// denseSymbolicFill computes the fill pattern of the Cholesky factor by a
// dense reference elimination on the pattern.
func denseSymbolicFill(m *Matrix) [][]bool {
	n := m.N
	f := make([][]bool, n)
	for i := range f {
		f[i] = make([]bool, n)
	}
	for j := 0; j < n; j++ {
		for _, i := range m.Col(j) {
			f[int(i)][j] = true
			f[j][int(i)] = true
		}
	}
	for k := 0; k < n; k++ {
		for i := k + 1; i < n; i++ {
			if !f[i][k] {
				continue
			}
			for j := k + 1; j <= i; j++ {
				if f[j][k] {
					f[i][j] = true
					f[j][i] = true
				}
			}
		}
	}
	return f
}

func TestEtreeAndColCountsAgainstDense(t *testing.T) {
	rng := util.NewRNG(4)
	for trial := 0; trial < 20; trial++ {
		m := AddRandomSymLinks(Grid2D(3+rng.Intn(4), 3+rng.Intn(4), trial%2 == 0), rng.Intn(8), rng)
		parent := EliminationTree(m)
		counts := ColCounts(m, parent)
		fill := denseSymbolicFill(m)
		n := m.N
		for j := 0; j < n; j++ {
			want := int64(0)
			for i := j; i < n; i++ {
				if fill[i][j] {
					want++
				}
			}
			if counts[j] != want {
				t.Fatalf("trial %d: col %d count %d, want %d", trial, j, counts[j], want)
			}
		}
		// Elimination tree parent must be the first below-diagonal nonzero
		// of the factor column.
		for j := 0; j < n; j++ {
			first := int32(-1)
			for i := j + 1; i < n; i++ {
				if fill[i][j] {
					first = int32(i)
					break
				}
			}
			if parent[j] != first {
				t.Fatalf("trial %d: parent[%d] = %d, want %d", trial, j, parent[j], first)
			}
		}
	}
}

func TestBlockPattern2DAgainstDense(t *testing.T) {
	rng := util.NewRNG(5)
	for trial := 0; trial < 10; trial++ {
		m := AddRandomSymLinks(Grid2D(4+rng.Intn(3), 4+rng.Intn(3), true), rng.Intn(6), rng)
		w := 2 + rng.Intn(3)
		bp := NewBlockPattern2D(m, w)
		fill := denseSymbolicFill(m)
		n := m.N
		nb := (n + w - 1) / w
		if bp.NB != nb {
			t.Fatalf("NB = %d, want %d", bp.NB, nb)
		}
		for J := 0; J < nb; J++ {
			for I := J; I < nb; I++ {
				want := I == J // diagonal always present
				for i := I * w; i < (I+1)*w && i < n && !want; i++ {
					for j := J * w; j < (J+1)*w && j < n; j++ {
						if j <= i && fill[i][j] {
							want = true
							break
						}
					}
				}
				if bp.HasBlock(I, J) != want {
					t.Fatalf("trial %d w=%d: block (%d,%d) = %v, want %v", trial, w, I, J, bp.HasBlock(I, J), want)
				}
			}
		}
	}
}

func TestBlockDims(t *testing.T) {
	m := Grid2D(5, 2, false) // n = 10
	bp := NewBlockPattern2D(m, 4)
	if bp.NB != 3 {
		t.Fatalf("NB = %d", bp.NB)
	}
	if bp.BlockDim(0) != 4 || bp.BlockDim(2) != 2 {
		t.Fatalf("block dims wrong: %d %d", bp.BlockDim(0), bp.BlockDim(2))
	}
	bp1 := NewBlockPattern1D(m, 4)
	if bp1.BlockDim(2) != 2 {
		t.Fatalf("1-D block dim wrong")
	}
}

func TestBlockPattern1DSuccessors(t *testing.T) {
	rng := util.NewRNG(6)
	m := AddRandomUnsymLinks(Grid2D(6, 4, false), 10, rng)
	w := 3
	bp := NewBlockPattern1D(m, w)
	bp2 := NewBlockPattern2D(m.AtAPattern(), w)
	for k := 0; k < bp.NB; k++ {
		succ := map[int32]bool{}
		for _, s := range bp.Succ[k] {
			if s <= int32(k) {
				t.Fatalf("successor not after panel")
			}
			succ[s] = true
		}
		for j := k + 1; j < bp.NB; j++ {
			if bp2.HasBlock(j, k) != succ[int32(j)] {
				t.Fatalf("panel %d succ %d mismatch", k, j)
			}
		}
		if bp.PanelNnz[k] <= 0 {
			t.Fatalf("panel nnz must be positive")
		}
	}
}

func TestSPDValuesAreFactorizable(t *testing.T) {
	rng := util.NewRNG(7)
	m := SPDValues(AddRandomSymLinks(Grid2D(5, 4, true), 8, rng), rng)
	d := m.ToDense()
	if err := blas.Potrf(m.N, d, m.N); err != nil {
		t.Fatalf("SPDValues produced non-PD matrix: %v", err)
	}
	// Symmetry of values.
	d2 := m.ToDense()
	for i := 0; i < m.N; i++ {
		for j := 0; j < m.N; j++ {
			if d2[i*m.N+j] != d2[j*m.N+i] {
				t.Fatalf("values not symmetric")
			}
		}
	}
}

func TestUnsymValuesFactorizable(t *testing.T) {
	rng := util.NewRNG(8)
	m := UnsymValues(AddRandomUnsymLinks(Grid2D(5, 4, false), 12, rng), rng)
	d := m.ToDense()
	piv := make([]int, m.N)
	if err := blas.Getrf(m.N, m.N, d, m.N, piv); err != nil {
		t.Fatalf("UnsymValues produced singular matrix: %v", err)
	}
}

func TestNamedGeneratorsDimensions(t *testing.T) {
	if testing.Short() {
		t.Skip("named generators are large")
	}
	cases := []struct {
		name string
		m    *Matrix
		n    int
		sym  bool
	}{
		{"BCSSTK15", BCSSTK15Like(), 3948, true},
		{"BCSSTK24", BCSSTK24Like(), 3562, true},
		{"goodwin", GoodwinLike(), 7320, false},
	}
	for _, c := range cases {
		if c.m.N != c.n {
			t.Errorf("%s: N = %d, want %d", c.name, c.m.N, c.n)
		}
		if got := c.m.IsSymmetricPattern(); got != c.sym {
			t.Errorf("%s: symmetric = %v, want %v", c.name, got, c.sym)
		}
	}
}
