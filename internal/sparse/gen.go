package sparse

import (
	"repro/internal/util"
)

// Grid2D returns the symmetric pattern of a 9-point (stencil9=true) or
// 5-point finite-difference/element operator on an nx×ny grid, diagonal
// included. This is the classic structural-analysis-like sparsity that the
// Harwell-Boeing BCSSTK matrices exhibit.
func Grid2D(nx, ny int, stencil9 bool) *Matrix {
	n := nx * ny
	id := func(x, y int) int32 { return int32(y*nx + x) }
	coords := make([]coord, 0, n*9)
	for y := 0; y < ny; y++ {
		for x := 0; x < nx; x++ {
			c := id(x, y)
			coords = append(coords, coord{c, c})
			add := func(x2, y2 int) {
				if x2 < 0 || x2 >= nx || y2 < 0 || y2 >= ny {
					return
				}
				r := id(x2, y2)
				coords = append(coords, coord{r, c}, coord{c, r})
			}
			add(x+1, y)
			add(x, y+1)
			if stencil9 {
				add(x+1, y+1)
				add(x-1, y+1)
			}
		}
	}
	return FromCoords(n, coords)
}

// Grid3D returns the symmetric pattern of a 7-point operator on an
// nx×ny×nz grid, diagonal included.
func Grid3D(nx, ny, nz int) *Matrix {
	n := nx * ny * nz
	id := func(x, y, z int) int32 { return int32((z*ny+y)*nx + x) }
	coords := make([]coord, 0, n*7)
	for z := 0; z < nz; z++ {
		for y := 0; y < ny; y++ {
			for x := 0; x < nx; x++ {
				c := id(x, y, z)
				coords = append(coords, coord{c, c})
				add := func(x2, y2, z2 int) {
					if x2 < 0 || x2 >= nx || y2 < 0 || y2 >= ny || z2 < 0 || z2 >= nz {
						return
					}
					r := id(x2, y2, z2)
					coords = append(coords, coord{r, c}, coord{c, r})
				}
				add(x+1, y, z)
				add(x, y+1, z)
				add(x, y, z+1)
			}
		}
	}
	return FromCoords(n, coords)
}

// AddRandomSymLinks adds k random symmetric off-diagonal entry pairs to the
// pattern, modelling the irregular long-range couplings (multi-point
// constraints, rigid links) that make real structural matrices harder than
// pure grids.
func AddRandomSymLinks(m *Matrix, k int, rng *util.RNG) *Matrix {
	coords := make([]coord, 0, m.Nnz()+2*k)
	for j := 0; j < m.N; j++ {
		for _, i := range m.Col(j) {
			coords = append(coords, coord{i, int32(j)})
		}
	}
	for t := 0; t < k; t++ {
		i := int32(rng.Intn(m.N))
		j := int32(rng.Intn(m.N))
		if i == j {
			continue
		}
		coords = append(coords, coord{i, j}, coord{j, i})
	}
	return FromCoords(m.N, coords)
}

// AddRandomUnsymLinks adds k random off-diagonal entries without their
// transposes, producing the unsymmetric patterns typical of the goodwin
// fluid-mechanics matrix.
func AddRandomUnsymLinks(m *Matrix, k int, rng *util.RNG) *Matrix {
	coords := make([]coord, 0, m.Nnz()+k)
	for j := 0; j < m.N; j++ {
		for _, i := range m.Col(j) {
			coords = append(coords, coord{i, int32(j)})
		}
	}
	for t := 0; t < k; t++ {
		i := int32(rng.Intn(m.N))
		j := int32(rng.Intn(m.N))
		if i == j {
			continue
		}
		coords = append(coords, coord{i, j})
	}
	return FromCoords(m.N, coords)
}

// Truncate returns the leading principal submatrix of order k (rows and
// columns 0..k-1), mirroring the paper's "take data from column/row 1 up to
// 5600" experiments with BCSSTK33.
func (m *Matrix) Truncate(k int) *Matrix {
	coords := make([]coord, 0, m.Nnz())
	for j := 0; j < k && j < m.N; j++ {
		for _, i := range m.Col(j) {
			if int(i) < k {
				coords = append(coords, coord{i, int32(j)})
			}
		}
	}
	return FromCoords(k, coords)
}

// SPDValues fills values making the matrix symmetric positive definite:
// off-diagonal entries get deterministic values in (-1, 0) and each diagonal
// entry exceeds the absolute row sum (diagonal dominance).
func SPDValues(m *Matrix, rng *util.RNG) *Matrix {
	out := m.Clone()
	out.Val = make([]float64, out.Nnz())
	rowSum := make([]float64, out.N)
	// First pass: assign symmetric off-diagonal values from a hash of the
	// (min,max) index pair so A[i][j] == A[j][i] without a second lookup.
	for j := 0; j < out.N; j++ {
		col := out.Col(j)
		vals := out.ColVal(j)
		for k, i := range col {
			if int(i) == j {
				continue
			}
			lo, hi := i, int32(j)
			if lo > hi {
				lo, hi = hi, lo
			}
			h := util.NewRNG(uint64(lo)*0x1000193 ^ uint64(hi)<<21 ^ 0xABCD)
			v := -(0.1 + 0.9*h.Float64())
			vals[k] = v
			rowSum[i] += -v
		}
	}
	for j := 0; j < out.N; j++ {
		col := out.Col(j)
		vals := out.ColVal(j)
		for k, i := range col {
			if int(i) == j {
				vals[k] = rowSum[i] + 1 + rng.Float64()
			}
		}
	}
	return out
}

// UnsymValues fills values for an unsymmetric matrix: deterministic
// pseudo-random off-diagonals and dominant diagonals, keeping LU with
// partial pivoting well behaved while still exercising row interchanges.
func UnsymValues(m *Matrix, rng *util.RNG) *Matrix {
	out := m.Clone()
	out.Val = make([]float64, out.Nnz())
	rowSum := make([]float64, out.N)
	diagIdx := make([]int, out.N)
	for i := range diagIdx {
		diagIdx[i] = -1
	}
	for j := 0; j < out.N; j++ {
		col := out.Col(j)
		vals := out.ColVal(j)
		for k, i := range col {
			if int(i) == j {
				diagIdx[j] = int(out.ColPtr[j]) + k
				continue
			}
			v := rng.NormFloat64()
			vals[k] = v
			if v < 0 {
				rowSum[i] -= v
			} else {
				rowSum[i] += v
			}
		}
	}
	for j := 0; j < out.N; j++ {
		if k := diagIdx[j]; k >= 0 {
			// Mostly dominant, but every fifth diagonal is made small so
			// partial pivoting has real row interchanges to perform.
			switch {
			case j%5 == 2:
				out.Val[k] = 1e-3 * (1 + rng.Float64())
			case j%7 == 3:
				out.Val[k] = -(0.5*rowSum[j] + 1 + rng.Float64())
			default:
				out.Val[k] = 0.5*rowSum[j] + 1 + rng.Float64()
			}
		}
	}
	return out
}

// The named generators below stand in for the paper's Harwell-Boeing test
// matrices. Dimensions match the originals; patterns are synthetic
// (grid stencils plus irregular links) since the HB files cannot be shipped
// with an offline module. See DESIGN.md §2 for the substitution argument.

// BCSSTK15Like returns a symmetric pattern with n=3948 (the order of
// BCSSTK15, a structural engineering stiffness matrix).
func BCSSTK15Like() *Matrix {
	m := Grid2D(94, 42, true) // 3948 nodes
	return AddRandomSymLinks(m, 1400, util.NewRNG(15))
}

// BCSSTK24Like returns a symmetric pattern with n=3562 (the order of
// BCSSTK24).
func BCSSTK24Like() *Matrix {
	m := Grid2D(137, 26, true) // 3562 nodes
	return AddRandomSymLinks(m, 1200, util.NewRNG(24))
}

// GoodwinLike returns an unsymmetric pattern with n=7320 (the order of the
// goodwin fluid-mechanics matrix).
func GoodwinLike() *Matrix {
	m := Grid2D(120, 61, true) // 7320 nodes
	return AddRandomUnsymLinks(m, 9000, util.NewRNG(7320))
}

// BCSSTK33Like returns a symmetric pattern with n=8738 (the order of
// BCSSTK33); the paper truncates it to leading submatrices (5600, 6080).
func BCSSTK33Like() *Matrix {
	m := Grid2D(257, 34, true) // 8738 nodes
	return AddRandomSymLinks(m, 5000, util.NewRNG(33))
}
