package util

import (
	"sort"
	"testing"
	"testing/quick"
)

func TestBitsetBasic(t *testing.T) {
	b := NewBitset(200)
	if b.Count() != 0 {
		t.Fatalf("new bitset not empty")
	}
	for _, i := range []int{0, 1, 63, 64, 65, 127, 128, 199} {
		b.Set(i)
	}
	if b.Count() != 8 {
		t.Fatalf("Count = %d, want 8", b.Count())
	}
	if !b.Has(63) || !b.Has(64) || b.Has(62) {
		t.Fatalf("Has wrong")
	}
	b.Clear(63)
	if b.Has(63) || b.Count() != 7 {
		t.Fatalf("Clear wrong")
	}
	var got []int
	b.ForEach(func(i int) { got = append(got, i) })
	want := []int{0, 1, 64, 65, 127, 128, 199}
	if len(got) != len(want) {
		t.Fatalf("ForEach got %v want %v", got, want)
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("ForEach got %v want %v", got, want)
		}
	}
	b.Reset()
	if b.Count() != 0 {
		t.Fatalf("Reset failed")
	}
}

func TestBitsetOr(t *testing.T) {
	a := NewBitset(100)
	b := NewBitset(100)
	a.Set(3)
	b.Set(70)
	a.Or(b)
	if !a.Has(3) || !a.Has(70) || a.Count() != 2 {
		t.Fatalf("Or wrong")
	}
}

func TestBitsetPropertySetHas(t *testing.T) {
	f := func(xs []uint16) bool {
		b := NewBitset(1 << 16)
		seen := map[int]bool{}
		for _, x := range xs {
			b.Set(int(x))
			seen[int(x)] = true
		}
		if b.Count() != len(seen) {
			return false
		}
		for x := range seen {
			if !b.Has(x) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestHeapSortsKeys(t *testing.T) {
	h := NewFloat64Heap(8)
	keys := []float64{5, 3, 8, 1, 9, 2, 7, 4, 6, 0}
	for i, k := range keys {
		h.Push(int32(i), k)
	}
	prev := -1.0
	for h.Len() > 0 {
		_, k := h.Pop()
		if k < prev {
			t.Fatalf("heap pop out of order: %v after %v", k, prev)
		}
		prev = k
	}
}

func TestHeapUpdate(t *testing.T) {
	h := NewFloat64Heap(4)
	h.Push(1, 10)
	h.Push(2, 20)
	h.Push(3, 30)
	if !h.Update(3, 5) {
		t.Fatalf("Update said absent")
	}
	if id, k := h.Pop(); id != 3 || k != 5 {
		t.Fatalf("Pop got (%d,%v), want (3,5)", id, k)
	}
	if h.Update(99, 1) {
		t.Fatalf("Update of absent id returned true")
	}
	if !h.Contains(1) || h.Contains(3) {
		t.Fatalf("Contains wrong")
	}
}

func TestHeapPropertyAgainstSort(t *testing.T) {
	f := func(keys []float64) bool {
		h := NewFloat64Heap(len(keys))
		for i, k := range keys {
			h.Push(int32(i), k)
		}
		var got []float64
		for h.Len() > 0 {
			_, k := h.Pop()
			got = append(got, k)
		}
		want := append([]float64(nil), keys...)
		sort.Float64s(want)
		for i := range want {
			// NaN-free inputs from quick are not guaranteed; treat NaN
			// groups as equal.
			if got[i] != want[i] && !(got[i] != got[i] && want[i] != want[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same seed diverged at step %d", i)
		}
	}
	if NewRNG(0).Uint64() == 0 {
		t.Fatalf("zero seed produced zero stream")
	}
}

func TestRNGRanges(t *testing.T) {
	r := NewRNG(7)
	for i := 0; i < 1000; i++ {
		if v := r.Intn(10); v < 0 || v >= 10 {
			t.Fatalf("Intn out of range: %d", v)
		}
		if f := r.Float64(); f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %v", f)
		}
	}
}

func TestRNGPerm(t *testing.T) {
	r := NewRNG(9)
	p := r.Perm(50)
	seen := make([]bool, 50)
	for _, v := range p {
		if v < 0 || v >= 50 || seen[v] {
			t.Fatalf("not a permutation: %v", p)
		}
		seen[v] = true
	}
}

func TestRNGNormRoughMoments(t *testing.T) {
	r := NewRNG(11)
	n := 20000
	sum, sum2 := 0.0, 0.0
	for i := 0; i < n; i++ {
		v := r.NormFloat64()
		sum += v
		sum2 += v * v
	}
	mean := sum / float64(n)
	varr := sum2/float64(n) - mean*mean
	if mean < -0.05 || mean > 0.05 {
		t.Fatalf("mean %v too far from 0", mean)
	}
	if varr < 0.9 || varr > 1.1 {
		t.Fatalf("variance %v too far from 1", varr)
	}
}
