package util

// Float64Heap is a binary min-heap of (id, key float64) pairs with an index
// so that keys can be decreased or entries removed by id. It backs the list
// schedulers and the discrete-event simulator, where ids are task or event
// identifiers.
type Float64Heap struct {
	ids  []int32
	keys []float64
	pos  map[int32]int
}

// NewFloat64Heap returns an empty heap with capacity hint n.
func NewFloat64Heap(n int) *Float64Heap {
	return &Float64Heap{
		ids:  make([]int32, 0, n),
		keys: make([]float64, 0, n),
		pos:  make(map[int32]int, n),
	}
}

// Len returns the number of entries.
func (h *Float64Heap) Len() int { return len(h.ids) }

// Push inserts id with the given key. It must not already be present.
func (h *Float64Heap) Push(id int32, key float64) {
	h.ids = append(h.ids, id)
	h.keys = append(h.keys, key)
	h.pos[id] = len(h.ids) - 1
	h.up(len(h.ids) - 1)
}

// Pop removes and returns the entry with the smallest key.
func (h *Float64Heap) Pop() (int32, float64) {
	id, key := h.ids[0], h.keys[0]
	h.swap(0, len(h.ids)-1)
	h.ids = h.ids[:len(h.ids)-1]
	h.keys = h.keys[:len(h.keys)-1]
	delete(h.pos, id)
	if len(h.ids) > 0 {
		h.down(0)
	}
	return id, key
}

// Peek returns the minimum entry without removing it.
func (h *Float64Heap) Peek() (int32, float64) { return h.ids[0], h.keys[0] }

// Update changes the key of id (up or down) if present, and reports whether
// it was present.
func (h *Float64Heap) Update(id int32, key float64) bool {
	i, ok := h.pos[id]
	if !ok {
		return false
	}
	old := h.keys[i]
	h.keys[i] = key
	if key < old {
		h.up(i)
	} else {
		h.down(i)
	}
	return true
}

// Contains reports whether id is in the heap.
func (h *Float64Heap) Contains(id int32) bool {
	_, ok := h.pos[id]
	return ok
}

func (h *Float64Heap) swap(i, j int) {
	h.ids[i], h.ids[j] = h.ids[j], h.ids[i]
	h.keys[i], h.keys[j] = h.keys[j], h.keys[i]
	h.pos[h.ids[i]] = i
	h.pos[h.ids[j]] = j
}

func (h *Float64Heap) less(i, j int) bool {
	if h.keys[i] != h.keys[j] {
		return h.keys[i] < h.keys[j]
	}
	return h.ids[i] < h.ids[j] // deterministic tie-break
}

func (h *Float64Heap) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !h.less(i, parent) {
			break
		}
		h.swap(i, parent)
		i = parent
	}
}

func (h *Float64Heap) down(i int) {
	n := len(h.ids)
	for {
		l, r := 2*i+1, 2*i+2
		small := i
		if l < n && h.less(l, small) {
			small = l
		}
		if r < n && h.less(r, small) {
			small = r
		}
		if small == i {
			return
		}
		h.swap(i, small)
		i = small
	}
}
