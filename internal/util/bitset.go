// Package util provides small supporting data structures used across the
// repository: bitsets, indexed priority queues and a deterministic random
// number generator. All of them are allocation-conscious because the
// scheduling and simulation layers call them in tight loops.
package util

import "math/bits"

// Bitset is a fixed-capacity set of small non-negative integers.
type Bitset struct {
	words []uint64
	n     int
}

// NewBitset returns a Bitset able to hold values in [0, n).
func NewBitset(n int) *Bitset {
	return &Bitset{words: make([]uint64, (n+63)/64), n: n}
}

// Len returns the capacity the set was created with.
func (b *Bitset) Len() int { return b.n }

// Set adds i to the set.
func (b *Bitset) Set(i int) { b.words[i>>6] |= 1 << uint(i&63) }

// Clear removes i from the set.
func (b *Bitset) Clear(i int) { b.words[i>>6] &^= 1 << uint(i&63) }

// Has reports whether i is in the set.
func (b *Bitset) Has(i int) bool { return b.words[i>>6]&(1<<uint(i&63)) != 0 }

// Count returns the number of elements in the set.
func (b *Bitset) Count() int {
	c := 0
	for _, w := range b.words {
		c += bits.OnesCount64(w)
	}
	return c
}

// Reset removes all elements.
func (b *Bitset) Reset() {
	for i := range b.words {
		b.words[i] = 0
	}
}

// Or sets b to the union of b and other. The sets must have the same capacity.
func (b *Bitset) Or(other *Bitset) {
	for i, w := range other.words {
		b.words[i] |= w
	}
}

// ForEach calls f for every element in increasing order.
func (b *Bitset) ForEach(f func(i int)) {
	for wi, w := range b.words {
		for w != 0 {
			tz := bits.TrailingZeros64(w)
			f(wi<<6 + tz)
			w &^= 1 << uint(tz)
		}
	}
}
