package util

// RNG is a small deterministic xorshift64* pseudo-random generator. The
// repository avoids math/rand so that matrix generators and property tests
// produce identical streams on every platform and Go release.
type RNG struct{ state uint64 }

// NewRNG returns a generator seeded with seed (zero is remapped).
func NewRNG(seed uint64) *RNG {
	if seed == 0 {
		seed = 0x9E3779B97F4A7C15
	}
	return &RNG{state: seed}
}

// Uint64 returns the next value in the stream.
func (r *RNG) Uint64() uint64 {
	x := r.state
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	r.state = x
	return x * 0x2545F4914F6CDD1D
}

// Intn returns a value uniformly distributed in [0, n).
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("util: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Float64 returns a value uniformly distributed in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / float64(1<<53)
}

// NormFloat64 returns an approximately standard normal variate using the
// sum-of-uniforms (Irwin–Hall) method, which is plenty for test matrices.
func (r *RNG) NormFloat64() float64 {
	s := 0.0
	for i := 0; i < 12; i++ {
		s += r.Float64()
	}
	return s - 6
}

// Hash64 deterministically mixes seed and parts into one 64-bit value
// (iterated splitmix64 finalizers). Unlike RNG it has no stream position,
// so independently executing components (e.g. the two protocol backends
// making fault-injection decisions) reach identical verdicts for the same
// event identifiers regardless of evaluation order.
func Hash64(seed uint64, parts ...uint64) uint64 {
	mix := func(x uint64) uint64 {
		x ^= x >> 30
		x *= 0xBF58476D1CE4E5B9
		x ^= x >> 27
		x *= 0x94D049BB133111EB
		x ^= x >> 31
		return x
	}
	h := mix(seed ^ 0x9E3779B97F4A7C15)
	for _, p := range parts {
		h = mix(h ^ (p + 0x9E3779B97F4A7C15))
	}
	return h
}

// Perm returns a pseudo-random permutation of [0, n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}
