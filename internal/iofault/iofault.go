// Package iofault is a thin filesystem seam with deterministic fault
// injection. The durable layers of the daemon — the write-ahead journal
// and the plan cache's disk tier — do their I/O through the FS/File
// interfaces here instead of calling the os package directly, so tests
// can interpose a FaultFS that fails exactly the operations a fault plan
// selects: EIO or ENOSPC on write/fsync/close, short writes, latency,
// whole outage windows, or a manually thrown breaker.
//
// The production path is OS, a zero-state passthrough to the os package:
// one interface dispatch per call, no allocation, no locks. Fault
// verdicts in FaultFS follow the style of proto.Faults: each write-side
// operation gets a monotonically increasing op index, and whether op k of
// class c fails is a pure function of (seed, c, k) — the same plan
// replays the same failures on every run and platform, so a crash window
// found once is a regression test forever.
package iofault

import (
	"io"
	"os"
	"path/filepath"
)

// File is the handle surface the durable layers need: append-style
// writes, fsync, close. (Reads go through FS.ReadFile; nothing seeks.)
type File interface {
	io.Writer
	// Sync flushes the file to stable storage (fsync).
	Sync() error
	Close() error
	// Name returns the path the file was opened under.
	Name() string
}

// FS is the filesystem surface of the journal and the plan-cache disk
// tier. Every method mirrors the os function of the same shape.
type FS interface {
	OpenFile(name string, flag int, perm os.FileMode) (File, error)
	CreateTemp(dir, pattern string) (File, error)
	ReadFile(name string) ([]byte, error)
	ReadDir(name string) ([]os.DirEntry, error)
	MkdirAll(path string, perm os.FileMode) error
	Remove(name string) error
	Rename(oldpath, newpath string) error
	Truncate(name string, size int64) error
	// SyncDir fsyncs a directory, making renames and removals inside it
	// durable (where the filesystem supports directory fsync).
	SyncDir(dir string) error
}

// OS is the production FS: a stateless passthrough to the os package.
type OS struct{}

var _ FS = OS{}

func (OS) OpenFile(name string, flag int, perm os.FileMode) (File, error) {
	f, err := os.OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	return f, nil
}

func (OS) CreateTemp(dir, pattern string) (File, error) {
	f, err := os.CreateTemp(dir, pattern)
	if err != nil {
		return nil, err
	}
	return f, nil
}

func (OS) ReadFile(name string) ([]byte, error)         { return os.ReadFile(name) }
func (OS) ReadDir(name string) ([]os.DirEntry, error)   { return os.ReadDir(name) }
func (OS) MkdirAll(path string, perm os.FileMode) error { return os.MkdirAll(path, perm) }
func (OS) Remove(name string) error                     { return os.Remove(name) }
func (OS) Rename(oldpath, newpath string) error         { return os.Rename(oldpath, newpath) }
func (OS) Truncate(name string, size int64) error       { return os.Truncate(name, size) }

func (OS) SyncDir(dir string) error {
	d, err := os.Open(filepath.Clean(dir))
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}
