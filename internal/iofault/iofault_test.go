package iofault

import (
	"errors"
	"os"
	"path/filepath"
	"syscall"
	"testing"
)

// TestOSPassthrough exercises the production FS end to end: create, write,
// sync, close, read back, rename, dir sync, truncate, remove.
func TestOSPassthrough(t *testing.T) {
	dir := t.TempDir()
	var fs FS = OS{}

	f, err := fs.OpenFile(filepath.Join(dir, "a.log"), os.O_CREATE|os.O_RDWR|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatalf("OpenFile: %v", err)
	}
	if _, err := f.Write([]byte("hello world")); err != nil {
		t.Fatalf("Write: %v", err)
	}
	if err := f.Sync(); err != nil {
		t.Fatalf("Sync: %v", err)
	}
	if err := f.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	b, err := fs.ReadFile(filepath.Join(dir, "a.log"))
	if err != nil || string(b) != "hello world" {
		t.Fatalf("ReadFile = %q, %v", b, err)
	}
	if err := fs.Truncate(filepath.Join(dir, "a.log"), 5); err != nil {
		t.Fatalf("Truncate: %v", err)
	}
	if err := fs.Rename(filepath.Join(dir, "a.log"), filepath.Join(dir, "b.log")); err != nil {
		t.Fatalf("Rename: %v", err)
	}
	if err := fs.SyncDir(dir); err != nil {
		t.Fatalf("SyncDir: %v", err)
	}
	ents, err := fs.ReadDir(dir)
	if err != nil || len(ents) != 1 || ents[0].Name() != "b.log" {
		t.Fatalf("ReadDir = %v, %v", ents, err)
	}
	if err := fs.MkdirAll(filepath.Join(dir, "x", "y"), 0o755); err != nil {
		t.Fatalf("MkdirAll: %v", err)
	}
	tf, err := fs.CreateTemp(dir, "t*.tmp")
	if err != nil {
		t.Fatalf("CreateTemp: %v", err)
	}
	tf.Close()
	if err := fs.Remove(tf.Name()); err != nil {
		t.Fatalf("Remove: %v", err)
	}
	if err := fs.Remove(filepath.Join(dir, "b.log")); err != nil {
		t.Fatalf("Remove: %v", err)
	}
}

// TestPlanDeterminism runs the same op sequence against two FaultFS with
// the same plan and asserts identical failure patterns, and that a
// different seed yields a different pattern.
func TestPlanDeterminism(t *testing.T) {
	run := func(seed uint64) []bool {
		dir := t.TempDir()
		f := NewFaultFS(OS{}, Plan{Seed: seed, WriteErrFrac: 0.3, SyncErrFrac: 0.3})
		fh, err := f.OpenFile(filepath.Join(dir, "w.log"), os.O_CREATE|os.O_RDWR|os.O_APPEND, 0o644)
		if err != nil {
			t.Fatalf("OpenFile: %v", err)
		}
		defer fh.Close()
		var pattern []bool
		for i := 0; i < 64; i++ {
			_, werr := fh.Write([]byte("x"))
			serr := fh.Sync()
			pattern = append(pattern, werr != nil, serr != nil)
		}
		return pattern
	}
	a, b := run(7), run(7)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at op %d", i)
		}
	}
	c := run(8)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatalf("different seeds produced identical 128-op failure pattern")
	}
	any := false
	for _, v := range a {
		any = any || v
	}
	if !any {
		t.Fatalf("0.3 fault fraction injected nothing in 128 ops")
	}
}

// TestBreakHeal verifies the manual breaker fails masked classes with the
// given error (errors.Is-visible through the PathError wrap) and that
// Heal restores service.
func TestBreakHeal(t *testing.T) {
	dir := t.TempDir()
	f := NewFaultFS(OS{}, Plan{})
	fh, err := f.OpenFile(filepath.Join(dir, "w.log"), os.O_CREATE|os.O_RDWR|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatalf("OpenFile: %v", err)
	}
	defer fh.Close()

	if _, err := fh.Write([]byte("a")); err != nil {
		t.Fatalf("healthy write failed: %v", err)
	}
	f.Break(ClassDurability, syscall.ENOSPC)
	if _, err := fh.Write([]byte("b")); !errors.Is(err, syscall.ENOSPC) {
		t.Fatalf("broken write = %v, want ENOSPC", err)
	}
	if err := fh.Sync(); !errors.Is(err, syscall.ENOSPC) {
		t.Fatalf("broken sync = %v, want ENOSPC", err)
	}
	if _, err := f.OpenFile(filepath.Join(dir, "w2.log"), os.O_CREATE|os.O_WRONLY, 0o644); !errors.Is(err, syscall.ENOSPC) {
		t.Fatalf("broken open = %v, want ENOSPC", err)
	}
	// Reads are outside ClassDurability: still served.
	if _, err := f.ReadDir(dir); err != nil {
		t.Fatalf("read during durability outage: %v", err)
	}
	if f.Injected() == 0 {
		t.Fatalf("Injected() = 0 after breaker faults")
	}
	f.Heal()
	if _, err := fh.Write([]byte("c")); err != nil {
		t.Fatalf("post-heal write failed: %v", err)
	}
	if err := fh.Sync(); err != nil {
		t.Fatalf("post-heal sync failed: %v", err)
	}
	if got := f.Writes(fh.Name()); got != 2 {
		t.Fatalf("Writes(%q) = %d, want 2 successful", fh.Name(), got)
	}
	if f.Syncs(fh.Name()) != 2 {
		t.Fatalf("Syncs = %d, want 2 attempts", f.Syncs(fh.Name()))
	}
}

// TestShortWrite asserts a torn write persists a strict prefix and
// reports an error.
func TestShortWrite(t *testing.T) {
	dir := t.TempDir()
	f := NewFaultFS(OS{}, Plan{Seed: 3, ShortWriteFrac: 1})
	fh, err := f.OpenFile(filepath.Join(dir, "w.log"), os.O_CREATE|os.O_RDWR|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatalf("OpenFile: %v", err)
	}
	n, werr := fh.Write([]byte("0123456789"))
	if werr == nil {
		t.Fatalf("torn write returned nil error")
	}
	if n != 5 {
		t.Fatalf("torn write persisted %d bytes, want 5", n)
	}
	fh.Close()
	b, _ := os.ReadFile(filepath.Join(dir, "w.log"))
	if string(b) != "01234" {
		t.Fatalf("on-disk prefix = %q, want %q", b, "01234")
	}
}

// TestOutageWindow checks the [From, From+Len) op-indexed outage.
func TestOutageWindow(t *testing.T) {
	dir := t.TempDir()
	f := NewFaultFS(OS{}, Plan{Seed: 1, OutageFrom: 2, OutageLen: 3})
	fh, err := f.OpenFile(filepath.Join(dir, "w.log"), os.O_CREATE|os.O_RDWR|os.O_APPEND, 0o644) // op 0
	if err != nil {
		t.Fatalf("OpenFile: %v", err)
	}
	defer fh.Close()
	var got []bool
	for i := 0; i < 6; i++ { // ops 1..6
		_, werr := fh.Write([]byte("x"))
		got = append(got, werr != nil)
	}
	want := []bool{false, true, true, true, false, false}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("outage pattern = %v, want %v", got, want)
		}
	}
}

// TestDefaultErrIsEIO verifies the default injected error class.
func TestDefaultErrIsEIO(t *testing.T) {
	dir := t.TempDir()
	f := NewFaultFS(nil, Plan{Seed: 1, WriteErrFrac: 1})
	fh, err := f.OpenFile(filepath.Join(dir, "w.log"), os.O_CREATE|os.O_RDWR|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatalf("OpenFile: %v", err)
	}
	defer fh.Close()
	if _, err := fh.Write([]byte("x")); !errors.Is(err, syscall.EIO) {
		t.Fatalf("default fault = %v, want EIO", err)
	}
	var pe *os.PathError
	_, err = fh.Write([]byte("x"))
	if !errors.As(err, &pe) {
		t.Fatalf("injected error not an *os.PathError: %v", err)
	}
}
