package iofault

import (
	"os"
	"sync"
	"syscall"
	"time"

	"repro/internal/util"
)

// ClassMask selects operation classes for fault plans and breakers.
type ClassMask uint32

const (
	ClassWrite ClassMask = 1 << iota
	ClassSync
	ClassClose
	ClassOpen
	ClassCreate
	ClassRename
	ClassRemove
	ClassTruncate
	ClassSyncDir
	ClassRead

	// ClassDurability covers everything a disk outage takes down: the ops
	// whose failure the journal must survive.
	ClassDurability = ClassWrite | ClassSync | ClassClose | ClassOpen |
		ClassCreate | ClassRename | ClassRemove | ClassTruncate | ClassSyncDir
	// ClassAll is every op class, reads included.
	ClassAll = ClassDurability | ClassRead
)

// Per-class hash tags: the op-key domain separator, one per class, in the
// style of proto.Faults. Verdicts are Hash64(seed, tag, opIndex).
const (
	tagWrite   = 0xF1A0
	tagSync    = 0xF1A1
	tagClose   = 0xF1A2
	tagShort   = 0xF1A3
	tagLatency = 0xF1A4
	tagRename  = 0xF1A5
)

// Plan is a deterministic fault schedule. All fractions are in [0,1];
// a fraction of 0 disables that fault class. Verdicts are pure functions
// of (Seed, class, opIndex) — replaying the same op sequence against the
// same plan yields the same failures.
type Plan struct {
	Seed uint64

	WriteErrFrac   float64 // fail this fraction of writes
	SyncErrFrac    float64 // fail this fraction of fsyncs
	CloseErrFrac   float64 // fail this fraction of closes
	RenameErrFrac  float64 // fail this fraction of renames
	ShortWriteFrac float64 // persist only a prefix, then error

	// Err is the error injected for failed ops; nil means syscall.EIO.
	// Use syscall.ENOSPC for disk-full plans.
	Err error

	// Latency is added to LatencyFrac of write-side ops (deterministically
	// chosen; the sleep itself is wall-clock, so keep it small in tests).
	Latency     time.Duration
	LatencyFrac float64

	// Outage fails every durability-class op with index in
	// [OutageFrom, OutageFrom+OutageLen) — a whole disk dying and coming
	// back, keyed to the shared op counter.
	OutageFrom, OutageLen uint64
}

func (p *Plan) err() error {
	if p.Err != nil {
		return p.Err
	}
	return syscall.EIO
}

func hit(h uint64, frac float64) bool {
	if frac <= 0 {
		return false
	}
	if frac >= 1 {
		return true
	}
	return float64(h%1_000_000) < frac*1_000_000
}

// FaultFS wraps an inner FS and injects faults per a Plan, plus a manual
// breaker (Break/Heal) for scripted outage windows. It also counts
// per-path writes and syncs, which lets tests assert that a poisoned
// segment fd was never written again.
type FaultFS struct {
	inner FS
	plan  Plan

	mu       sync.Mutex
	op       uint64 // shared op index across write-side classes
	broken   ClassMask
	breakErr error
	writes   map[string]int // successful writes per path
	syncs    map[string]int // sync attempts per path
	injected int            // total injected faults
}

// NewFaultFS wraps inner (nil means the real OS) with the given plan.
func NewFaultFS(inner FS, plan Plan) *FaultFS {
	if inner == nil {
		inner = OS{}
	}
	return &FaultFS{
		inner:  inner,
		plan:   plan,
		writes: make(map[string]int),
		syncs:  make(map[string]int),
	}
}

// Break trips the manual breaker: every op in mask fails with err (nil
// means the plan's error) until Heal. This is the scripted-outage knob
// for chaos tests: Break(ClassDurability, syscall.EIO) is the disk dying.
func (f *FaultFS) Break(mask ClassMask, err error) {
	f.mu.Lock()
	f.broken = mask
	f.breakErr = err
	f.mu.Unlock()
}

// Heal clears the manual breaker.
func (f *FaultFS) Heal() {
	f.mu.Lock()
	f.broken = 0
	f.breakErr = nil
	f.mu.Unlock()
}

// Writes returns the number of successful writes issued to the named
// path through this FS.
func (f *FaultFS) Writes(name string) int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.writes[name]
}

// Syncs returns the number of sync attempts issued to the named path.
func (f *FaultFS) Syncs(name string) int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.syncs[name]
}

// Injected returns the total number of faults injected so far.
func (f *FaultFS) Injected() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.injected
}

// fail decides whether op class `class` with hash tag `tag` and fraction
// `frac` fails at this op index. Caller holds no locks.
func (f *FaultFS) fail(class ClassMask, tag uint64, frac float64, op string, name string) error {
	f.mu.Lock()
	n := f.op
	f.op++
	broken := f.broken&class != 0
	berr := f.breakErr
	f.mu.Unlock()

	if f.plan.Latency > 0 && hit(util.Hash64(f.plan.Seed, tagLatency, n), f.plan.LatencyFrac) {
		time.Sleep(f.plan.Latency)
	}

	var err error
	switch {
	case broken:
		err = berr
		if err == nil {
			err = f.plan.err()
		}
	case f.plan.OutageLen > 0 && n >= f.plan.OutageFrom && n < f.plan.OutageFrom+f.plan.OutageLen && class&ClassDurability != 0:
		err = f.plan.err()
	case hit(util.Hash64(f.plan.Seed, tag, n), frac):
		err = f.plan.err()
	}
	if err == nil {
		return nil
	}
	f.mu.Lock()
	f.injected++
	f.mu.Unlock()
	return &os.PathError{Op: op, Path: name, Err: err}
}

// shortWrite decides whether this write is torn; returns true and the
// prefix length to persist.
func (f *FaultFS) shortWrite(n uint64, total int) (int, bool) {
	if total < 2 || !hit(util.Hash64(f.plan.Seed, tagShort, n), f.plan.ShortWriteFrac) {
		return 0, false
	}
	return total / 2, true
}

var _ FS = (*FaultFS)(nil)

func (f *FaultFS) OpenFile(name string, flag int, perm os.FileMode) (File, error) {
	if err := f.fail(ClassOpen, tagWrite, 0, "open", name); err != nil {
		return nil, err
	}
	inner, err := f.inner.OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	return &faultFile{fs: f, inner: inner}, nil
}

func (f *FaultFS) CreateTemp(dir, pattern string) (File, error) {
	if err := f.fail(ClassCreate, tagWrite, 0, "createtemp", dir); err != nil {
		return nil, err
	}
	inner, err := f.inner.CreateTemp(dir, pattern)
	if err != nil {
		return nil, err
	}
	return &faultFile{fs: f, inner: inner}, nil
}

func (f *FaultFS) ReadFile(name string) ([]byte, error) {
	if err := f.fail(ClassRead, tagWrite, 0, "read", name); err != nil {
		return nil, err
	}
	return f.inner.ReadFile(name)
}

func (f *FaultFS) ReadDir(name string) ([]os.DirEntry, error) {
	if err := f.fail(ClassRead, tagWrite, 0, "readdir", name); err != nil {
		return nil, err
	}
	return f.inner.ReadDir(name)
}

func (f *FaultFS) MkdirAll(path string, perm os.FileMode) error {
	if err := f.fail(ClassCreate, tagWrite, 0, "mkdir", path); err != nil {
		return err
	}
	return f.inner.MkdirAll(path, perm)
}

func (f *FaultFS) Remove(name string) error {
	if err := f.fail(ClassRemove, tagWrite, 0, "remove", name); err != nil {
		return err
	}
	return f.inner.Remove(name)
}

func (f *FaultFS) Rename(oldpath, newpath string) error {
	if err := f.fail(ClassRename, tagRename, f.plan.RenameErrFrac, "rename", oldpath); err != nil {
		return err
	}
	return f.inner.Rename(oldpath, newpath)
}

func (f *FaultFS) Truncate(name string, size int64) error {
	if err := f.fail(ClassTruncate, tagWrite, 0, "truncate", name); err != nil {
		return err
	}
	return f.inner.Truncate(name, size)
}

func (f *FaultFS) SyncDir(dir string) error {
	if err := f.fail(ClassSyncDir, tagSync, f.plan.SyncErrFrac, "syncdir", dir); err != nil {
		return err
	}
	return f.inner.SyncDir(dir)
}

// faultFile wraps a File, routing write/sync/close through the plan.
type faultFile struct {
	fs    *FaultFS
	inner File
}

func (ff *faultFile) Name() string { return ff.inner.Name() }

func (ff *faultFile) Write(p []byte) (int, error) {
	f := ff.fs
	f.mu.Lock()
	n := f.op
	f.mu.Unlock()
	if pre, torn := f.shortWrite(n, len(p)); torn {
		// A torn write persists a prefix and then fails: the frame is
		// half on disk, exactly the shape replay's torn-tail truncation
		// must absorb. fail() with frac=1 advances the shared op counter
		// and routes through the breaker/outage machinery.
		err := f.fail(ClassWrite, tagWrite, 1, "write", ff.inner.Name())
		if wrote, werr := ff.inner.Write(p[:pre]); werr != nil {
			return wrote, werr
		}
		return pre, err
	}
	if err := f.fail(ClassWrite, tagWrite, f.plan.WriteErrFrac, "write", ff.inner.Name()); err != nil {
		return 0, err
	}
	wrote, err := ff.inner.Write(p)
	if err == nil {
		f.mu.Lock()
		f.writes[ff.inner.Name()]++
		f.mu.Unlock()
	}
	return wrote, err
}

func (ff *faultFile) Sync() error {
	f := ff.fs
	f.mu.Lock()
	f.syncs[ff.inner.Name()]++
	f.mu.Unlock()
	if err := f.fail(ClassSync, tagSync, f.plan.SyncErrFrac, "sync", ff.inner.Name()); err != nil {
		return err
	}
	return ff.inner.Sync()
}

func (ff *faultFile) Close() error {
	f := ff.fs
	if err := f.fail(ClassClose, tagClose, f.plan.CloseErrFrac, "close", ff.inner.Name()); err != nil {
		ff.inner.Close() // the fd itself is released either way
		return err
	}
	return ff.inner.Close()
}
