package graph

import (
	"testing"
	"testing/quick"

	"repro/internal/util"
)

// genProgram builds a random sequential program from a seed: tasks with
// random read/write sets over a small object pool, some commutative.
func genProgram(seed uint64, nTasks, nObjs int) *DAG {
	rng := util.NewRNG(seed)
	b := NewBuilder()
	objs := make([]ObjID, nObjs)
	for i := range objs {
		objs[i] = b.Object(qName("o", i), int64(1+rng.Intn(5)))
	}
	for t := 0; t < nTasks; t++ {
		nr := rng.Intn(3)
		var reads []ObjID
		for i := 0; i < nr; i++ {
			reads = append(reads, objs[rng.Intn(nObjs)])
		}
		w := objs[rng.Intn(nObjs)]
		if rng.Intn(4) == 0 {
			// Commutative read-modify-write accumulation.
			b.CommutativeTask(qName("c", t), float64(1+rng.Intn(9)), append(reads, w), []ObjID{w})
		} else {
			b.Task(qName("t", t), float64(1+rng.Intn(9)), reads, []ObjID{w})
		}
	}
	g, err := b.Build()
	if err != nil {
		panic(err)
	}
	return g
}

func qName(p string, i int) string {
	return p + string(rune('a'+i%26)) + string(rune('0'+(i/26)%10))
}

// TestQuickBuilderAlwaysDependenceComplete: whatever the access pattern,
// the transformed graph must order every conflicting pair (the property
// Theorem 1's data-consistency argument needs).
func TestQuickBuilderAlwaysDependenceComplete(t *testing.T) {
	f := func(seed uint64, a, b uint8) bool {
		nTasks := 2 + int(a)%40
		nObjs := 1 + int(b)%10
		g := genProgram(seed, nTasks, nObjs)
		if err := g.Validate(); err != nil {
			t.Logf("validate: %v", err)
			return false
		}
		if err := g.CheckDependenceComplete(); err != nil {
			t.Logf("completeness: %v", err)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickReadersSeeLastWriter: for every non-commutative reader, there is
// a true edge from the most recent preceding writer of each object it
// reads (value flow is never lost by the transformation).
func TestQuickReadersSeeLastWriter(t *testing.T) {
	f := func(seed uint64, a, b uint8) bool {
		nTasks := 2 + int(a)%30
		nObjs := 1 + int(b)%8
		rng := util.NewRNG(seed)
		bld := NewBuilder()
		objs := make([]ObjID, nObjs)
		for i := range objs {
			objs[i] = bld.Object(qName("o", i), 1)
		}
		lastWriter := make(map[ObjID]TaskID)
		type expect struct{ from, to TaskID }
		var expects []expect
		for ti := 0; ti < nTasks; ti++ {
			var reads []ObjID
			for i := 0; i < rng.Intn(3); i++ {
				reads = append(reads, objs[rng.Intn(nObjs)])
			}
			w := objs[rng.Intn(nObjs)]
			id := bld.Task(qName("t", ti), 1, reads, []ObjID{w})
			for _, r := range reads {
				if lw, ok := lastWriter[r]; ok && lw != id {
					expects = append(expects, expect{lw, id})
				}
			}
			lastWriter[w] = id
		}
		g, err := bld.Build()
		if err != nil {
			t.Logf("build: %v", err)
			return false
		}
		for _, e := range expects {
			found := false
			for _, edge := range g.Out(e.from) {
				if edge.To == e.to && edge.Kind == DepTrue {
					found = true
					break
				}
			}
			if !found {
				t.Logf("missing true edge %d->%d", e.from, e.to)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickTopoOrderRespectsEdges: every topological sort emitted is a
// linear extension.
func TestQuickTopoOrderRespectsEdges(t *testing.T) {
	f := func(seed uint64, a, b uint8) bool {
		g := genProgram(seed, 2+int(a)%50, 1+int(b)%12)
		order, err := g.TopoSort()
		if err != nil {
			return false
		}
		pos := make([]int, g.NumTasks())
		for i, v := range order {
			pos[v] = i
		}
		for ti := 0; ti < g.NumTasks(); ti++ {
			for _, e := range g.Out(TaskID(ti)) {
				if pos[e.From] >= pos[e.To] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickLevelsMonotone: bottom levels decrease along edges and are at
// least the task cost; top levels increase along edges.
func TestQuickLevelsMonotone(t *testing.T) {
	f := func(seed uint64, a uint8) bool {
		g := genProgram(seed, 2+int(a)%40, 6)
		bl := g.BottomLevels(UnitComm)
		tl := g.TopLevels(UnitComm)
		for ti := 0; ti < g.NumTasks(); ti++ {
			if bl[ti] < g.Tasks[ti].Cost {
				return false
			}
			for _, e := range g.Out(TaskID(ti)) {
				if bl[e.From] < g.Tasks[e.From].Cost+bl[e.To] {
					return false
				}
				if tl[e.To] < tl[e.From]+g.Tasks[e.From].Cost {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}
