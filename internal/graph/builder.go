package graph

import "fmt"

// Builder constructs a transformed task dependence graph from a sequential
// stream of task declarations. Dependencies are derived from the read/write
// sets exactly as a data dependence graph would record them (true, anti,
// output), and the Build step performs the transformation of Section 2 of
// the paper: anti and output edges subsumed by true-dependence paths are
// removed; the remainder are retained as pure precedence edges so the
// resulting DAG is always safe to execute.
//
// Commutative tasks: a maximal consecutive run of tasks declared with
// Commutative=true that write the same object is treated as a commuting
// group. Tasks inside the group are not ordered against each other; the
// group as a whole is ordered against earlier and later accessors of the
// object. This captures the accumulating update operations of sparse
// factorizations.
type Builder struct {
	tasks   []Task
	objects []Object

	objNames  map[string]ObjID
	taskNames map[string]struct{}
}

// NewBuilder returns an empty Builder.
func NewBuilder() *Builder {
	return &Builder{
		objNames:  make(map[string]ObjID),
		taskNames: make(map[string]struct{}),
	}
}

// Object declares a data object with the given name and size (memory
// units) and returns its ID. Declaring the same name twice is an error at
// Build time if the sizes differ; otherwise the original ID is returned.
func (b *Builder) Object(name string, size int64) ObjID {
	if id, ok := b.objNames[name]; ok {
		return id
	}
	id := ObjID(len(b.objects))
	b.objects = append(b.objects, Object{ID: id, Name: name, Size: size, Owner: None})
	b.objNames[name] = id
	return id
}

// ObjectID returns the ID of a previously declared object name.
func (b *Builder) ObjectID(name string) (ObjID, bool) {
	id, ok := b.objNames[name]
	return id, ok
}

// Task appends a task to the sequential program. Reads and writes may
// overlap (read-modify-write).
func (b *Builder) Task(name string, cost float64, reads, writes []ObjID) TaskID {
	return b.addTask(name, cost, reads, writes, false)
}

// CommutativeTask appends a task that commutes with adjacent commutative
// tasks writing the same objects.
func (b *Builder) CommutativeTask(name string, cost float64, reads, writes []ObjID) TaskID {
	return b.addTask(name, cost, reads, writes, true)
}

func (b *Builder) addTask(name string, cost float64, reads, writes []ObjID, comm bool) TaskID {
	id := TaskID(len(b.tasks))
	b.tasks = append(b.tasks, Task{
		ID:          id,
		Name:        name,
		Cost:        cost,
		Reads:       append([]ObjID(nil), reads...),
		Writes:      append([]ObjID(nil), writes...),
		Commutative: comm,
	})
	return id
}

// NumTasks returns the number of tasks declared so far.
func (b *Builder) NumTasks() int { return len(b.tasks) }

// rawDep is a dependence discovered during the sequential scan.
type rawDep struct {
	from, to TaskID
	obj      ObjID
	kind     DepKind
}

// Build derives the DDG, applies the transformation and returns the
// resulting DAG. The returned graph owns the task and object slices.
//
// Build is deterministic: dependencies are discovered by a single scan in
// program order and edges are inserted in discovery order, so two Builds of
// the same declaration sequence produce DAGs with identical adjacency-list
// orders. (The maps used here — name lookup and edge dedup — never drive
// iteration.) Plan content addressing relies on this invariant; see
// internal/plan.
func (b *Builder) Build() (*DAG, error) {
	nObj := len(b.objects)
	g := newDAG(b.tasks, b.objects)

	// Per-object scan state.
	type objState struct {
		// lastWriters holds the most recent writing group: a single task, or
		// all members of an open commutative group.
		lastWriters []TaskID
		commOpen    bool
		// readersSince holds tasks that read the object after the last write.
		readersSince []TaskID
		// groupPreds / groupAntiPreds hold the writers and readers that
		// preceded the currently-open commutative group, so that tasks
		// joining the group later are still ordered after them.
		groupPreds     []TaskID
		groupAntiPreds []TaskID
	}
	st := make([]objState, nObj)

	var deps []rawDep
	seen := make(map[[2]TaskID]DepKind)
	add := func(from, to TaskID, obj ObjID, kind DepKind) {
		if from == to {
			return
		}
		key := [2]TaskID{from, to}
		if prev, ok := seen[key]; ok {
			// True dependence dominates; keep the strongest kind only.
			if prev == DepTrue || kind != DepTrue {
				return
			}
		}
		seen[key] = kind
		deps = append(deps, rawDep{from, to, obj, kind})
	}

	for ti := range b.tasks {
		t := &b.tasks[ti]
		writes := make(map[ObjID]bool, len(t.Writes))
		for _, o := range t.Writes {
			writes[o] = true
		}
		for _, o := range t.Reads {
			if writes[o] && t.Commutative {
				// Read-modify-write inside a commutative group: ordering is
				// handled by the write scan against the pre-group writers,
				// not against the other (commuting) group members.
				continue
			}
			s := &st[o]
			for _, w := range s.lastWriters {
				add(w, t.ID, o, DepTrue)
			}
			if !writes[o] {
				s.readersSince = append(s.readersSince, t.ID)
				// A plain read consumes the accumulated value: any open
				// commutative group on o is closed so that writers declared
				// later are ordered after this reader, whatever the
				// reader's own commutativity (it may belong to a group on a
				// different object).
				s.commOpen = false
			}
		}
		for _, o := range t.Writes {
			s := &st[o]
			if t.Commutative && s.commOpen {
				// Member of the open commutative group: unordered against the
				// other members, but still ordered after everything that
				// preceded the group.
				for _, w := range s.groupPreds {
					add(w, t.ID, o, DepTrue)
				}
				for _, r := range s.groupAntiPreds {
					add(r, t.ID, o, DepAnti)
				}
				s.lastWriters = append(s.lastWriters, t.ID)
				continue
			}
			// Close out the previous writers/readers.
			for _, r := range s.readersSince {
				add(r, t.ID, o, DepAnti)
			}
			for _, w := range s.lastWriters {
				kind := DepOutput
				if readsObj(t, o) {
					kind = DepTrue // read-modify-write: value flows
				}
				add(w, t.ID, o, kind)
			}
			if t.Commutative {
				// Opening a new group: remember what preceded it.
				s.groupPreds = append(s.groupPreds[:0], s.lastWriters...)
				s.groupAntiPreds = append(s.groupAntiPreds[:0], s.readersSince...)
			}
			s.readersSince = s.readersSince[:0]
			s.lastWriters = append(s.lastWriters[:0], t.ID)
			s.commOpen = t.Commutative
		}
	}

	// Insert true edges first so subsumption can consult them.
	for _, d := range deps {
		if d.kind == DepTrue {
			g.AddEdge(Edge{From: d.from, To: d.to, Obj: d.obj, Kind: DepTrue})
		}
	}
	order, err := g.TopoSort()
	if err != nil {
		return nil, fmt.Errorf("graph: true-dependence subgraph is cyclic: %w", err)
	}
	topoIdx := make([]int32, len(b.tasks))
	for i, t := range order {
		topoIdx[t] = int32(i)
	}

	// Transformation: drop anti/output edges subsumed by a true-dependence
	// path; keep the rest as precedence edges.
	reach := newReachability(g, topoIdx)
	for _, d := range deps {
		if d.kind == DepTrue {
			continue
		}
		if reach.hasPath(d.from, d.to) {
			continue // subsumed
		}
		g.AddEdge(Edge{From: d.from, To: d.to, Obj: d.obj, Kind: DepPrec})
	}
	if err := g.Validate(); err != nil {
		return nil, err
	}
	return g, nil
}

func readsObj(t *Task, o ObjID) bool {
	for _, r := range t.Reads {
		if r == o {
			return true
		}
	}
	return false
}

// reachability answers s->t path queries over the true-dependence subgraph
// using a DFS pruned by topological index. Queries are expected to be local
// (producer and consumer close in program order), so the pruned DFS is fast
// in practice.
type reachability struct {
	g       *DAG
	topoIdx []int32
	mark    []int32
	stamp   int32
	stack   []TaskID
}

func newReachability(g *DAG, topoIdx []int32) *reachability {
	return &reachability{g: g, topoIdx: topoIdx, mark: make([]int32, len(g.Tasks))}
}

func (r *reachability) hasPath(from, to TaskID) bool {
	if from == to {
		return true
	}
	if r.topoIdx[from] >= r.topoIdx[to] {
		return false
	}
	r.stamp++
	r.stack = append(r.stack[:0], from)
	r.mark[from] = r.stamp
	limit := r.topoIdx[to]
	for len(r.stack) > 0 {
		t := r.stack[len(r.stack)-1]
		r.stack = r.stack[:len(r.stack)-1]
		for _, e := range r.g.out[t] {
			if e.Kind != DepTrue {
				continue
			}
			if e.To == to {
				return true
			}
			if r.topoIdx[e.To] >= limit || r.mark[e.To] == r.stamp {
				continue
			}
			r.mark[e.To] = r.stamp
			r.stack = append(r.stack, e.To)
		}
	}
	return false
}
