package graph

// CommCostFunc returns the communication delay charged on edge e. Returning
// zero models a local (same-processor) edge; the schedulers pass a function
// that consults the current task-to-processor assignment.
type CommCostFunc func(e Edge) float64

// ZeroComm charges no communication anywhere (pure computation DAG).
func ZeroComm(Edge) float64 { return 0 }

// UnitComm charges one unit on every edge, as the paper's worked example
// does ("each task and each message cost one unit of time").
func UnitComm(Edge) float64 { return 1 }

// BottomLevels returns, for every task, the length of the longest path from
// the task to an exit task, including the task's own cost and the
// communication delays charged by comm. This is the critical-path priority
// used by RCP and as the tie-break in MPO and DTS.
func (g *DAG) BottomLevels(comm CommCostFunc) []float64 {
	order, err := g.TopoSort()
	if err != nil {
		panic("graph: BottomLevels on cyclic graph: " + err.Error())
	}
	bl := make([]float64, len(g.Tasks))
	for i := len(order) - 1; i >= 0; i-- {
		t := order[i]
		best := 0.0
		for _, e := range g.out[t] {
			v := comm(e) + bl[e.To]
			if v > best {
				best = v
			}
		}
		bl[t] = g.Tasks[t].Cost + best
	}
	return bl
}

// TopLevels returns, for every task, the length of the longest path from an
// entry task to the task, excluding the task's own cost.
func (g *DAG) TopLevels(comm CommCostFunc) []float64 {
	order, err := g.TopoSort()
	if err != nil {
		panic("graph: TopLevels on cyclic graph: " + err.Error())
	}
	tl := make([]float64, len(g.Tasks))
	for _, t := range order {
		for _, e := range g.out[t] {
			v := tl[t] + g.Tasks[t].Cost + comm(e)
			if v > tl[e.To] {
				tl[e.To] = v
			}
		}
	}
	return tl
}

// CriticalPathLength returns the length of the longest path through the DAG
// under the given communication cost function.
func (g *DAG) CriticalPathLength(comm CommCostFunc) float64 {
	bl := g.BottomLevels(comm)
	best := 0.0
	for t := range g.Tasks {
		if len(g.in[t]) == 0 && bl[t] > best {
			best = bl[t]
		}
	}
	return best
}

// Depth returns the maximum number of tasks on any path (the DAG depth D of
// Blelloch et al.'s space bound, for reporting).
func (g *DAG) Depth() int {
	order, _ := g.TopoSort()
	d := make([]int, len(g.Tasks))
	max := 0
	for _, t := range order {
		if d[t] == 0 {
			d[t] = 1
		}
		if d[t] > max {
			max = d[t]
		}
		for _, e := range g.out[t] {
			if d[t]+1 > d[e.To] {
				d[e.To] = d[t] + 1
			}
		}
	}
	return max
}

// TotalWork returns the sum of all task costs (the sequential time T1).
func (g *DAG) TotalWork() float64 {
	w := 0.0
	for i := range g.Tasks {
		w += g.Tasks[i].Cost
	}
	return w
}

// SeqSpace returns S1, the sequential space requirement: the total size of
// all data objects.
func (g *DAG) SeqSpace() int64 {
	var s int64
	for i := range g.Objects {
		s += g.Objects[i].Size
	}
	return s
}
