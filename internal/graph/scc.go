package graph

// SCC computes the strongly connected components of a directed graph given
// as an adjacency list over nodes 0..n-1, using Tarjan's algorithm with an
// explicit stack (no recursion, safe for large data connection graphs).
// It returns the component index of every node; component indices are
// assigned in reverse topological order of the condensation (comp[u] >
// comp[v] whenever there is an edge u->v between different components), so
// "number of components - 1 - comp" is a valid topological index of the
// condensation.
func SCC(adj [][]int32) (comp []int32, nComp int) {
	n := len(adj)
	comp = make([]int32, n)
	for i := range comp {
		comp[i] = -1
	}
	index := make([]int32, n)
	low := make([]int32, n)
	onStack := make([]bool, n)
	for i := range index {
		index[i] = -1
	}

	var (
		stack    []int32 // Tarjan stack
		counter  int32
		compCnt  int32
		callNode []int32 // explicit DFS call stack: node
		callEdge []int   // explicit DFS call stack: next edge index
	)

	for root := 0; root < n; root++ {
		if index[root] != -1 {
			continue
		}
		callNode = append(callNode[:0], int32(root))
		callEdge = append(callEdge[:0], 0)
		index[root] = counter
		low[root] = counter
		counter++
		stack = append(stack, int32(root))
		onStack[root] = true

		for len(callNode) > 0 {
			v := callNode[len(callNode)-1]
			ei := callEdge[len(callEdge)-1]
			if ei < len(adj[v]) {
				callEdge[len(callEdge)-1]++
				w := adj[v][ei]
				if index[w] == -1 {
					index[w] = counter
					low[w] = counter
					counter++
					stack = append(stack, w)
					onStack[w] = true
					callNode = append(callNode, w)
					callEdge = append(callEdge, 0)
				} else if onStack[w] && index[w] < low[v] {
					low[v] = index[w]
				}
				continue
			}
			// Post-order: pop v.
			callNode = callNode[:len(callNode)-1]
			callEdge = callEdge[:len(callEdge)-1]
			if len(callNode) > 0 {
				parent := callNode[len(callNode)-1]
				if low[v] < low[parent] {
					low[parent] = low[v]
				}
			}
			if low[v] == index[v] {
				for {
					w := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					onStack[w] = false
					comp[w] = compCnt
					if w == v {
						break
					}
				}
				compCnt++
			}
		}
	}
	return comp, int(compCnt)
}

// CondensationTopoOrder converts Tarjan component indices (reverse
// topological) into a topological order of components: position i of the
// result is the component that comes i-th.
func CondensationTopoOrder(nComp int) []int32 {
	order := make([]int32, nComp)
	for i := 0; i < nComp; i++ {
		order[i] = int32(nComp - 1 - i)
	}
	return order
}
