package graph

import (
	"fmt"
	"testing"
)

// structureSig renders a DAG's full structure (objects with sizes and
// owners, tasks with costs and access lists, derived edges) into one string
// for determinism comparisons.
func structureSig(g *DAG) string {
	s := fmt.Sprintf("n=%d m=%d\n", g.NumTasks(), g.NumObjects())
	for i := range g.Objects {
		o := &g.Objects[i]
		s += fmt.Sprintf("o%d %s sz=%d own=%d\n", i, o.Name, o.Size, o.Owner)
	}
	for i := range g.Tasks {
		tk := &g.Tasks[i]
		s += fmt.Sprintf("t%d %s c=%g r=%v w=%v\n", i, tk.Name, tk.Cost, tk.Reads, tk.Writes)
	}
	for t := 0; t < g.NumTasks(); t++ {
		for _, e := range g.Out(TaskID(t)) {
			s += fmt.Sprintf("e %d->%d k=%d o=%d\n", e.From, e.To, e.Kind, e.Obj)
		}
	}
	return s
}

// TestScenariosDeterministic: a (seed, size) pair must name one graph
// forever — the golden bake-off table and fuzz corpus both key on it.
func TestScenariosDeterministic(t *testing.T) {
	for _, sc := range Scenarios() {
		for _, seed := range []uint64{0, 1, 42, 1 << 40} {
			a, err := sc.Build(seed, 37)
			if err != nil {
				t.Fatalf("%s: %v", sc.Name, err)
			}
			b, err := sc.Build(seed, 37)
			if err != nil {
				t.Fatalf("%s: %v", sc.Name, err)
			}
			if structureSig(a) != structureSig(b) {
				t.Fatalf("%s(seed=%d) is not deterministic", sc.Name, seed)
			}
			if err := a.Validate(); err != nil {
				t.Fatalf("%s(seed=%d): emitted invalid graph: %v", sc.Name, seed, err)
			}
		}
		// Different seeds should generally differ (not a hard guarantee for
		// tiny sizes, so use a mid-size instance).
		a, _ := sc.Build(1, 37)
		b, _ := sc.Build(2, 37)
		if structureSig(a) == structureSig(b) {
			t.Errorf("%s: seeds 1 and 2 emitted identical 37-task graphs", sc.Name)
		}
	}
}

// TestScenariosClampSizes: degenerate and huge size requests clamp rather
// than fail, and the emitted task count tracks the request in between.
func TestScenariosClampSizes(t *testing.T) {
	for _, sc := range Scenarios() {
		for _, size := range []int{-5, 0, 1, 2, 60} {
			g, err := sc.Build(3, size)
			if err != nil {
				t.Fatalf("%s(size=%d): %v", sc.Name, size, err)
			}
			if g.NumTasks() < 1 {
				t.Fatalf("%s(size=%d): empty graph", sc.Name, size)
			}
			if err := g.Validate(); err != nil {
				t.Fatalf("%s(size=%d): %v", sc.Name, size, err)
			}
		}
		small, _ := sc.Build(3, 10)
		large, _ := sc.Build(3, 100)
		if large.NumTasks() <= small.NumTasks() {
			t.Errorf("%s: size 100 gave %d tasks, size 10 gave %d", sc.Name, large.NumTasks(), small.NumTasks())
		}
	}
}

// TestMemoryTreeIsInForest pins the property the Liu scheduler depends on:
// every task in the memory-tree gadget has at most one distinct successor
// over all edge kinds, links are owned, files are not.
func TestMemoryTreeIsInForest(t *testing.T) {
	for _, seed := range []uint64{1, 7, 19} {
		g, err := GenMemoryTree(seed, 24)
		if err != nil {
			t.Fatal(err)
		}
		roots := 0
		for i := 0; i < g.NumTasks(); i++ {
			succ := map[TaskID]bool{}
			for _, e := range g.Out(TaskID(i)) {
				succ[e.To] = true
			}
			if len(succ) > 1 {
				t.Fatalf("seed %d: task %d has %d distinct successors; not an in-forest", seed, i, len(succ))
			}
			if len(succ) == 0 {
				roots++
			}
		}
		if roots != 1 {
			t.Fatalf("seed %d: %d roots, want a single tree", seed, roots)
		}
		owned, unowned := 0, 0
		for i := range g.Objects {
			if g.Objects[i].Owner == None {
				unowned++
			} else {
				owned++
			}
		}
		if owned != g.NumTasks() || unowned != g.NumTasks() {
			t.Fatalf("seed %d: %d owned links / %d unowned files for %d tasks", seed, owned, unowned, g.NumTasks())
		}
	}
}

// TestScenarioNamesStable pins the zoo's names and order: golden tables and
// fuzz corpus entries index into this slice.
func TestScenarioNamesStable(t *testing.T) {
	want := []string{"elimtree", "powerlaw", "highfill", "memtree"}
	zoo := Scenarios()
	if len(zoo) != len(want) {
		t.Fatalf("zoo has %d scenarios, want %d", len(zoo), len(want))
	}
	for i, sc := range zoo {
		if sc.Name != want[i] {
			t.Fatalf("scenario %d is %q, want %q", i, sc.Name, want[i])
		}
	}
	if !zoo[3].PresetOwners {
		t.Fatal("memtree must preset its owners")
	}
	for _, sc := range zoo[:3] {
		if sc.PresetOwners {
			t.Fatalf("%s should not preset owners", sc.Name)
		}
	}
}
