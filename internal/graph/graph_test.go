package graph

import (
	"testing"

	"repro/internal/util"
)

// diamond builds  a -> b, a -> c, b -> d, c -> d  over two objects.
func diamond(t *testing.T) *DAG {
	t.Helper()
	b := NewBuilder()
	x := b.Object("x", 1)
	y := b.Object("y", 1)
	z := b.Object("z", 1)
	u := b.Object("u", 1)
	b.Task("a", 1, nil, []ObjID{x})
	b.Task("b", 1, []ObjID{x}, []ObjID{y})
	b.Task("c", 1, []ObjID{x}, []ObjID{z})
	b.Task("d", 1, []ObjID{y, z}, []ObjID{u})
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestBuilderTrueDeps(t *testing.T) {
	g := diamond(t)
	if g.NumTasks() != 4 || g.NumObjects() != 4 {
		t.Fatalf("sizes wrong")
	}
	wantEdges := map[[2]TaskID]DepKind{
		{0, 1}: DepTrue, {0, 2}: DepTrue, {1, 3}: DepTrue, {2, 3}: DepTrue,
	}
	count := 0
	for ti := 0; ti < g.NumTasks(); ti++ {
		for _, e := range g.Out(TaskID(ti)) {
			k, ok := wantEdges[[2]TaskID{e.From, e.To}]
			if !ok || k != e.Kind {
				t.Fatalf("unexpected edge %+v", e)
			}
			count++
		}
	}
	if count != 4 {
		t.Fatalf("edge count %d, want 4", count)
	}
}

func TestBuilderAntiOutputSubsumption(t *testing.T) {
	// w1 writes x; r reads x; w2 rewrites x reading it (true dep chain
	// w1->r (true), r->w2 (anti), w1->w2 (true via RMW)).
	b := NewBuilder()
	x := b.Object("x", 1)
	y := b.Object("y", 1)
	b.Task("w1", 1, nil, []ObjID{x})
	b.Task("r", 1, []ObjID{x}, []ObjID{y})
	b.Task("w2", 1, []ObjID{x}, []ObjID{x})
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	// The anti edge r->w2 is NOT subsumed (no true path r->w2), so it must
	// be retained as a precedence edge.
	found := false
	for _, e := range g.Out(1) {
		if e.To == 2 && e.Kind == DepPrec {
			found = true
		}
	}
	if !found {
		t.Fatalf("anti dependence r->w2 not preserved")
	}
}

func TestBuilderOutputSubsumed(t *testing.T) {
	// w1 writes x, r reads x writes y, w2 reads y writes x.
	// Output dep w1->w2 subsumed by true path w1->r->w2; anti r->w2 also
	// subsumed by true edge r->w2 (y flows). Result: only true edges.
	b := NewBuilder()
	x := b.Object("x", 1)
	y := b.Object("y", 1)
	b.Task("w1", 1, nil, []ObjID{x})
	b.Task("r", 1, []ObjID{x}, []ObjID{y})
	b.Task("w2", 1, []ObjID{y}, []ObjID{x})
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	for ti := 0; ti < g.NumTasks(); ti++ {
		for _, e := range g.Out(TaskID(ti)) {
			if e.Kind != DepTrue {
				t.Fatalf("non-true edge survived: %+v", e)
			}
		}
	}
	if g.NumEdges() != 2 {
		t.Fatalf("edges = %d, want 2", g.NumEdges())
	}
}

func TestBuilderCommutativeGroup(t *testing.T) {
	// init writes acc; u1,u2,u3 commutatively accumulate into acc (each
	// reads a distinct input and acc); fin reads acc.
	b := NewBuilder()
	acc := b.Object("acc", 1)
	in1 := b.Object("in1", 1)
	in2 := b.Object("in2", 1)
	in3 := b.Object("in3", 1)
	b.Task("init", 1, nil, []ObjID{acc})
	b.Task("p1", 1, nil, []ObjID{in1})
	b.Task("p2", 1, nil, []ObjID{in2})
	b.Task("p3", 1, nil, []ObjID{in3})
	u1 := b.CommutativeTask("u1", 1, []ObjID{in1, acc}, []ObjID{acc})
	u2 := b.CommutativeTask("u2", 1, []ObjID{in2, acc}, []ObjID{acc})
	u3 := b.CommutativeTask("u3", 1, []ObjID{in3, acc}, []ObjID{acc})
	fin := b.Task("fin", 1, []ObjID{acc}, nil)
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	// u1,u2,u3 must be mutually unordered.
	for _, u := range []TaskID{u1, u2, u3} {
		for _, e := range g.Out(u) {
			if e.To == u1 || e.To == u2 || e.To == u3 {
				t.Fatalf("commutative members ordered: %+v", e)
			}
		}
	}
	// Each u must depend on init, and fin must depend on all three.
	hasEdge := func(from, to TaskID) bool {
		for _, e := range g.Out(from) {
			if e.To == to {
				return true
			}
		}
		return false
	}
	for _, u := range []TaskID{u1, u2, u3} {
		if !hasEdge(0, u) {
			t.Fatalf("u%d missing dependence on init", u)
		}
		if !hasEdge(u, fin) {
			t.Fatalf("fin missing dependence on u%d", u)
		}
	}
	if err := g.CheckDependenceComplete(); err != nil {
		t.Fatalf("commutative graph should be dependence complete: %v", err)
	}
}

func TestTopoSortValid(t *testing.T) {
	g := diamond(t)
	order, err := g.TopoSort()
	if err != nil {
		t.Fatal(err)
	}
	pos := make(map[TaskID]int)
	for i, v := range order {
		pos[v] = i
	}
	for ti := 0; ti < g.NumTasks(); ti++ {
		for _, e := range g.Out(TaskID(ti)) {
			if pos[e.From] >= pos[e.To] {
				t.Fatalf("topo order violates edge %+v", e)
			}
		}
	}
}

func TestLevels(t *testing.T) {
	g := diamond(t)
	bl := g.BottomLevels(UnitComm)
	// d: 1; b,c: 1 + 1 + 1 = 3; a: 1 + 1 + 3 = 5.
	if bl[3] != 1 || bl[1] != 3 || bl[2] != 3 || bl[0] != 5 {
		t.Fatalf("bottom levels wrong: %v", bl)
	}
	tl := g.TopLevels(UnitComm)
	if tl[0] != 0 || tl[1] != 2 || tl[2] != 2 || tl[3] != 4 {
		t.Fatalf("top levels wrong: %v", tl)
	}
	if cp := g.CriticalPathLength(UnitComm); cp != 5 {
		t.Fatalf("critical path %v, want 5", cp)
	}
	if cp := g.CriticalPathLength(ZeroComm); cp != 3 {
		t.Fatalf("critical path %v, want 3", cp)
	}
	if g.Depth() != 3 {
		t.Fatalf("depth %d, want 3", g.Depth())
	}
	if g.TotalWork() != 4 {
		t.Fatalf("total work %v, want 4", g.TotalWork())
	}
	if g.SeqSpace() != 4 {
		t.Fatalf("seq space %v, want 4", g.SeqSpace())
	}
}

func TestDependenceComplete(t *testing.T) {
	g := diamond(t)
	if err := g.CheckDependenceComplete(); err != nil {
		t.Fatal(err)
	}
	// Build an incomplete graph by hand: two unordered writers of x.
	bad := newDAG(
		[]Task{
			{ID: 0, Name: "w1", Writes: []ObjID{0}},
			{ID: 1, Name: "w2", Writes: []ObjID{0}},
		},
		[]Object{{ID: 0, Name: "x", Size: 1, Owner: None}},
	)
	if err := bad.CheckDependenceComplete(); err == nil {
		t.Fatalf("expected incompleteness error")
	}
}

// randomAdj builds a random directed graph for SCC testing.
func randomAdj(rng *util.RNG, n, e int) [][]int32 {
	adj := make([][]int32, n)
	for k := 0; k < e; k++ {
		u, v := rng.Intn(n), rng.Intn(n)
		adj[u] = append(adj[u], int32(v))
	}
	return adj
}

// bruteReach computes the reachability closure.
func bruteReach(adj [][]int32) [][]bool {
	n := len(adj)
	r := make([][]bool, n)
	for u := 0; u < n; u++ {
		r[u] = make([]bool, n)
		stack := []int32{int32(u)}
		r[u][u] = true
		for len(stack) > 0 {
			x := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for _, y := range adj[x] {
				if !r[u][y] {
					r[u][y] = true
					stack = append(stack, y)
				}
			}
		}
	}
	return r
}

func TestSCCAgainstBruteForce(t *testing.T) {
	rng := util.NewRNG(123)
	for trial := 0; trial < 50; trial++ {
		n := 2 + rng.Intn(30)
		adj := randomAdj(rng, n, rng.Intn(3*n))
		comp, nc := SCC(adj)
		reach := bruteReach(adj)
		for u := 0; u < n; u++ {
			if comp[u] < 0 || int(comp[u]) >= nc {
				t.Fatalf("component index out of range")
			}
			for v := 0; v < n; v++ {
				same := reach[u][v] && reach[v][u]
				if same != (comp[u] == comp[v]) {
					t.Fatalf("SCC mismatch: u=%d v=%d same=%v comp=%v", u, v, same, comp)
				}
			}
		}
		// Edge direction property: u->v across components implies
		// comp[u] > comp[v] (reverse topological indices).
		for u := 0; u < n; u++ {
			for _, v := range adj[u] {
				if comp[u] != comp[v] && comp[u] <= comp[v] {
					t.Fatalf("condensation order violated: comp[%d]=%d comp[%d]=%d", u, comp[u], v, comp[v])
				}
			}
		}
	}
}

func TestSCCCycle(t *testing.T) {
	adj := [][]int32{{1}, {2}, {0}, {0}} // 0->1->2->0, 3->0
	comp, nc := SCC(adj)
	if nc != 2 {
		t.Fatalf("nComp = %d, want 2", nc)
	}
	if comp[0] != comp[1] || comp[1] != comp[2] || comp[3] == comp[0] {
		t.Fatalf("components wrong: %v", comp)
	}
	if comp[3] <= comp[0] {
		t.Fatalf("3->0 must give comp[3] > comp[0]: %v", comp)
	}
}

func TestValidateCatchesCycle(t *testing.T) {
	g := newDAG(
		[]Task{{ID: 0, Name: "a"}, {ID: 1, Name: "b"}},
		nil,
	)
	g.AddEdge(Edge{From: 0, To: 1, Kind: DepPrec})
	g.AddEdge(Edge{From: 1, To: 0, Kind: DepPrec})
	if err := g.Validate(); err == nil {
		t.Fatalf("cycle not detected")
	}
}

func TestAccessors(t *testing.T) {
	g := diamond(t)
	readers, writers := g.Accessors()
	if len(writers[0]) != 1 || writers[0][0] != 0 {
		t.Fatalf("writers of x wrong: %v", writers[0])
	}
	if len(readers[0]) != 2 {
		t.Fatalf("readers of x wrong: %v", readers[0])
	}
}
