package graph

import (
	"fmt"

	"repro/internal/util"
)

// This file is the scenario zoo: deterministic seeded generators for the
// irregular structures the scheduler bake-off (internal/sched/bakeoff) and
// the property suites measure the heuristics on. Every generator emits its
// structure through the Builder API, so the dependence edges are derived by
// the same Section-2 transformation as real workloads, and every emitted
// graph has passed Validate by construction. All randomness flows from
// util.RNG so a (seed, size) pair names one graph forever.

// Scenario is one named generator of the zoo.
type Scenario struct {
	// Name identifies the structure family (stable across releases: golden
	// tables key on it).
	Name string
	// PresetOwners reports that the generator assigns object owners itself
	// (the memory-tree gadget needs a specific ownership to be meaningful);
	// otherwise the consumer picks an ownership policy.
	PresetOwners bool
	// Build materializes the structure for a seed and an approximate task
	// count. Implementations clamp size to a sane range rather than fail.
	Build func(seed uint64, size int) (*DAG, error)
}

// Scenarios returns the zoo in a fixed order.
func Scenarios() []Scenario {
	return []Scenario{
		{Name: "elimtree", Build: GenEliminationTree},
		{Name: "powerlaw", Build: GenPowerLawDAG},
		{Name: "highfill", Build: GenHighFill},
		{Name: "memtree", PresetOwners: true, Build: GenMemoryTree},
	}
}

func clampSize(size, lo, hi int) int {
	if size < lo {
		return lo
	}
	if size > hi {
		return hi
	}
	return size
}

// GenEliminationTree generates a deep elimination-tree factorization: task
// i factors column i after reading its children's columns, and additionally
// reads a few deeper descendant columns (the fill-in of sparse Cholesky,
// which makes lifetimes long and irregular). Parents are biased close to
// their children, so trees are deep rather than bushy.
func GenEliminationTree(seed uint64, size int) (*DAG, error) {
	n := clampSize(size, 2, 4096)
	rng := util.NewRNG(seed)
	parent := make([]int, n)
	parent[n-1] = -1
	for i := 0; i < n-1; i++ {
		span := n - 1 - i
		if span > 4 {
			span = 4
		}
		parent[i] = i + 1 + rng.Intn(span)
	}
	kids := make([][]int, n)
	for i := 0; i < n-1; i++ {
		kids[parent[i]] = append(kids[parent[i]], i)
	}
	b := NewBuilder()
	cols := make([]ObjID, n)
	for i := 0; i < n; i++ {
		cols[i] = b.Object(fmt.Sprintf("L%d", i), int64(1+rng.Intn(4)))
	}
	for i := 0; i < n; i++ {
		reads := make([]ObjID, 0, len(kids[i])+2)
		for _, c := range kids[i] {
			reads = append(reads, cols[c])
		}
		// Fill-in: read up to two deeper descendant columns.
		for f := 0; f < 2; f++ {
			if len(kids[i]) == 0 || rng.Intn(3) != 0 {
				continue
			}
			d := kids[i][rng.Intn(len(kids[i]))]
			if len(kids[d]) > 0 {
				reads = append(reads, cols[kids[d][rng.Intn(len(kids[d]))]])
			}
		}
		b.Task(fmt.Sprintf("F%d", i), 1+rng.Float64()*3, reads, []ObjID{cols[i]})
	}
	return b.Build()
}

// GenPowerLawDAG generates an irregular-fanout DAG with preferential
// attachment: each task writes a fresh object and reads earlier objects
// chosen proportionally to their current reader count, so a few hub
// objects acquire power-law fanout and very long volatile lifetimes.
func GenPowerLawDAG(seed uint64, size int) (*DAG, error) {
	n := clampSize(size, 2, 4096)
	rng := util.NewRNG(seed)
	b := NewBuilder()
	objs := make([]ObjID, n)
	weight := make([]int, n) // 1 + reader count, drives attachment
	var totalWeight int
	for i := 0; i < n; i++ {
		objs[i] = b.Object(fmt.Sprintf("d%d", i), int64(1)<<rng.Intn(4))
		weight[i] = 1
	}
	for i := 0; i < n; i++ {
		var reads []ObjID
		if i > 0 {
			k := 1 + rng.Intn(3)
			seen := make(map[int]bool, k)
			for j := 0; j < k; j++ {
				// Weighted draw over objs[0:i].
				r := rng.Intn(totalWeight)
				pick := 0
				for acc := weight[0]; acc <= r; acc += weight[pick] {
					pick++
				}
				if seen[pick] {
					continue
				}
				seen[pick] = true
				reads = append(reads, objs[pick])
				weight[pick]++
				totalWeight++
			}
		}
		b.Task(fmt.Sprintf("t%d", i), 1+rng.Float64()*2, reads, []ObjID{objs[i]})
		totalWeight += weight[i]
	}
	return b.Build()
}

// GenHighFill generates a pathological high-fill structure: a band of
// producers followed by a dense wave of combiners that each read a large
// random subset of the produced blocks, and one reducer over every combiner
// output. TOT explodes relative to MIN_MEM, which is exactly the regime the
// paper's slice merging and memory budgets are for.
func GenHighFill(seed uint64, size int) (*DAG, error) {
	n := clampSize(size, 4, 4096)
	rng := util.NewRNG(seed)
	m := n / 3
	if m < 2 {
		m = 2
	}
	b := NewBuilder()
	blocks := make([]ObjID, m)
	for i := 0; i < m; i++ {
		blocks[i] = b.Object(fmt.Sprintf("b%d", i), int64(1+rng.Intn(3)))
		b.Task(fmt.Sprintf("p%d", i), 1+rng.Float64(), nil, []ObjID{blocks[i]})
	}
	nc := n - m - 1
	if nc < 1 {
		nc = 1
	}
	outs := make([]ObjID, nc)
	for j := 0; j < nc; j++ {
		span := 2 + rng.Intn(m-1)
		start := rng.Intn(m)
		reads := make([]ObjID, 0, span)
		for k := 0; k < span; k++ {
			reads = append(reads, blocks[(start+k)%m])
		}
		outs[j] = b.Object(fmt.Sprintf("w%d", j), int64(1+rng.Intn(2)))
		b.Task(fmt.Sprintf("c%d", j), 1+rng.Float64()*2, reads, []ObjID{outs[j]})
	}
	sum := b.Object("sum", 1)
	b.Task("reduce", 2, outs, []ObjID{sum})
	return b.Build()
}

// GenMemoryTree generates the Liu-tree gadget: a random in-tree of tasks
// where task i writes a small chain object l_i read only by its parent (the
// tree edges), and additionally reads a per-node file object f_i that its
// parent reads again. The files are external inputs — owned by nobody
// (graph.None), like Liu's pebble-game node weights materialized on first
// read — so on the computing processor each f_i is volatile precisely from
// node i to parent(i) and the repository's MIN_MEM of a traversal equals
// the (constant) link residency plus the peak of Liu's pebble game with
// node weights size(f_i). Owners are preset (PresetOwners); schedule it
// with OwnerComputeAssign (all tasks land on processor 0).
func GenMemoryTree(seed uint64, size int) (*DAG, error) {
	n := clampSize(size, 2, 2048)
	rng := util.NewRNG(seed)
	parent := make([]int, n)
	parent[n-1] = -1
	for i := 0; i < n-1; i++ {
		span := n - 1 - i
		if span > 3 {
			span = 3
		}
		parent[i] = i + 1 + rng.Intn(span)
	}
	kids := make([][]int, n)
	for i := 0; i < n-1; i++ {
		kids[parent[i]] = append(kids[parent[i]], i)
	}
	b := NewBuilder()
	link := make([]ObjID, n)
	file := make([]ObjID, n)
	for i := 0; i < n; i++ {
		link[i] = b.Object(fmt.Sprintf("l%d", i), 1)
		file[i] = b.Object(fmt.Sprintf("f%d", i), int64(1+rng.Intn(8)))
	}
	for i := 0; i < n; i++ {
		reads := []ObjID{file[i]}
		for _, c := range kids[i] {
			reads = append(reads, link[c], file[c])
		}
		b.Task(fmt.Sprintf("T%d", i), 1, reads, []ObjID{link[i]})
	}
	g, err := b.Build()
	if err != nil {
		return nil, err
	}
	for i := 0; i < n; i++ {
		g.Objects[link[i]].Owner = 0
		// file[i] stays graph.None: an unowned external input, volatile on
		// every reader, permanent nowhere.
	}
	return g, nil
}
