// Package graph implements the task-parallelism model of Fu & Yang
// (PPoPP'97): directed acyclic task graphs with mixed granularities over a
// set of distinct data objects. It provides
//
//   - construction of data dependence graphs (DDG) from a sequential task
//     stream with read/write sets (true, anti and output dependencies),
//   - the transformation to a true-dependence-only DAG (anti/output edges
//     that are subsumed by true-dependence paths are dropped, the rest are
//     kept as pure precedence edges),
//   - commutative task groups (e.g. the accumulating update tasks of sparse
//     factorizations) which are left mutually unordered,
//   - critical-path metrics (top and bottom levels) parameterized by a
//     communication cost function,
//   - topological sorting, strongly-connected components (for the DTS data
//     connection graph) and the dependence-completeness check used by the
//     paper's data-consistency argument.
package graph

import (
	"fmt"
)

// TaskID identifies a task within a DAG.
type TaskID = int32

// ObjID identifies a data object within a DAG.
type ObjID = int32

// Proc identifies a (virtual) processor.
type Proc = int32

// None marks an absent task/object/processor.
const None int32 = -1

// DepKind classifies a dependence edge.
type DepKind uint8

const (
	// DepTrue is a flow (read-after-write) dependence; the edge carries the
	// labelled data object from producer to consumer.
	DepTrue DepKind = iota
	// DepAnti is a write-after-read dependence.
	DepAnti
	// DepOutput is a write-after-write dependence.
	DepOutput
	// DepPrec is a pure precedence edge retained after transformation for an
	// anti/output dependence that could not be subsumed.
	DepPrec
)

func (k DepKind) String() string {
	switch k {
	case DepTrue:
		return "true"
	case DepAnti:
		return "anti"
	case DepOutput:
		return "output"
	case DepPrec:
		return "prec"
	}
	return "?"
}

// Edge is a dependence edge. For DepTrue edges Obj is the data object whose
// value flows along the edge; for other kinds Obj records the conflicting
// object (informational).
type Edge struct {
	From, To TaskID
	Obj      ObjID
	Kind     DepKind
}

// Object is a distinct data object. Size is in abstract memory units (the
// applications use the number of float64 entries of a block). Owner is the
// processor that holds the object permanently; it is graph.None until a
// mapping assigns it.
type Object struct {
	ID    ObjID
	Name  string
	Size  int64
	Owner Proc
}

// Task is a unit of computation reading and writing subsets of the data
// objects. Cost is in abstract work units (the applications use flops).
// Commutative tasks writing the same object in a consecutive program-order
// run are left mutually unordered by the DDG builder.
type Task struct {
	ID          TaskID
	Name        string
	Cost        float64
	Reads       []ObjID
	Writes      []ObjID
	Commutative bool
}

// DAG is a transformed task dependence graph: acyclic, with true-dependence
// edges labelled by data objects plus optional pure precedence edges.
type DAG struct {
	Tasks   []Task
	Objects []Object

	out [][]Edge
	in  [][]Edge

	nEdges int
}

// NumTasks returns the number of tasks.
func (g *DAG) NumTasks() int { return len(g.Tasks) }

// NumObjects returns the number of data objects.
func (g *DAG) NumObjects() int { return len(g.Objects) }

// NumEdges returns the number of dependence edges.
func (g *DAG) NumEdges() int { return g.nEdges }

// Out returns the out-edges of task t. The slice must not be modified.
func (g *DAG) Out(t TaskID) []Edge { return g.out[t] }

// In returns the in-edges of task t. The slice must not be modified.
func (g *DAG) In(t TaskID) []Edge { return g.in[t] }

// AddEdge inserts a dependence edge. It does not deduplicate; use the
// Builder for that.
func (g *DAG) AddEdge(e Edge) {
	g.out[e.From] = append(g.out[e.From], e)
	g.in[e.To] = append(g.in[e.To], e)
	g.nEdges++
}

// NewDAG allocates a DAG with the given tasks and objects and no edges.
// Deserializers and generators add edges with AddEdge (in a deterministic
// order — adjacency-list order is observable) and should run Validate once
// construction is complete.
func NewDAG(tasks []Task, objects []Object) *DAG { return newDAG(tasks, objects) }

// newDAG allocates a DAG with the given tasks and objects and no edges.
func newDAG(tasks []Task, objects []Object) *DAG {
	return &DAG{
		Tasks:   tasks,
		Objects: objects,
		out:     make([][]Edge, len(tasks)),
		in:      make([][]Edge, len(tasks)),
	}
}

// TopoSort returns a topological order of the tasks, or an error if the
// graph contains a cycle.
func (g *DAG) TopoSort() ([]TaskID, error) {
	n := len(g.Tasks)
	indeg := make([]int32, n)
	for t := 0; t < n; t++ {
		for range g.in[t] {
			indeg[t]++
		}
	}
	order := make([]TaskID, 0, n)
	queue := make([]TaskID, 0, n)
	for t := 0; t < n; t++ {
		if indeg[t] == 0 {
			queue = append(queue, TaskID(t))
		}
	}
	for len(queue) > 0 {
		t := queue[0]
		queue = queue[1:]
		order = append(order, t)
		for _, e := range g.out[t] {
			indeg[e.To]--
			if indeg[e.To] == 0 {
				queue = append(queue, e.To)
			}
		}
	}
	if len(order) != n {
		return nil, fmt.Errorf("graph: cycle detected (%d of %d tasks ordered)", len(order), n)
	}
	return order, nil
}

// Validate checks structural invariants: edge endpoints in range, object
// references in range, acyclicity.
func (g *DAG) Validate() error {
	n := int32(len(g.Tasks))
	m := int32(len(g.Objects))
	for ti := range g.Tasks {
		t := &g.Tasks[ti]
		if t.ID != TaskID(ti) {
			return fmt.Errorf("graph: task %d has ID %d", ti, t.ID)
		}
		for _, o := range t.Reads {
			if o < 0 || o >= m {
				return fmt.Errorf("graph: task %q reads out-of-range object %d", t.Name, o)
			}
		}
		for _, o := range t.Writes {
			if o < 0 || o >= m {
				return fmt.Errorf("graph: task %q writes out-of-range object %d", t.Name, o)
			}
		}
	}
	for ti := range g.out {
		for _, e := range g.out[ti] {
			if e.From != TaskID(ti) {
				return fmt.Errorf("graph: edge %v stored under task %d", e, ti)
			}
			if e.To < 0 || e.To >= n {
				return fmt.Errorf("graph: edge %v has out-of-range head", e)
			}
			if e.Kind == DepTrue && (e.Obj < 0 || e.Obj >= m) {
				return fmt.Errorf("graph: true edge %v has no object", e)
			}
		}
	}
	if _, err := g.TopoSort(); err != nil {
		return err
	}
	return nil
}

// Accessors returns, for every object, the IDs of the tasks that read it and
// the tasks that write it, in task-ID order.
func (g *DAG) Accessors() (readers, writers [][]TaskID) {
	readers = make([][]TaskID, len(g.Objects))
	writers = make([][]TaskID, len(g.Objects))
	for ti := range g.Tasks {
		t := &g.Tasks[ti]
		for _, o := range t.Reads {
			readers[o] = append(readers[o], t.ID)
		}
		for _, o := range t.Writes {
			writers[o] = append(writers[o], t.ID)
		}
	}
	return readers, writers
}
