package graph

import "fmt"

// CheckDependenceComplete verifies the dependence-completeness property the
// paper's data-consistency proof relies on: for every pair of tasks that
// access a common object with at least one writer, there must be a
// dependence path between them — unless both are writers belonging to the
// same commutative group (their serialization is chosen by the owner
// processor's schedule, which is legal precisely because they commute).
//
// The check is O(v·e/64) time and O(v²/64) transient memory per topological
// wavefront; it is intended for tests and for validating API-built graphs,
// not for the inner scheduling loop.
func (g *DAG) CheckDependenceComplete() error {
	order, err := g.TopoSort()
	if err != nil {
		return err
	}
	n := len(g.Tasks)
	topoIdx := make([]int32, n)
	for i, t := range order {
		topoIdx[t] = int32(i)
	}

	// reachTo[t] = set of tasks that can reach t (ancestors), built along the
	// topological order as bitsets.
	words := (n + 63) / 64
	reach := make([][]uint64, n)
	for _, t := range order {
		row := make([]uint64, words)
		for _, e := range g.in[t] {
			row[e.From>>6] |= 1 << uint(e.From&63)
			for wi, w := range reach[e.From] {
				row[wi] |= w
			}
		}
		reach[t] = row
	}
	connected := func(a, b TaskID) bool {
		if topoIdx[a] > topoIdx[b] {
			a, b = b, a
		}
		return reach[b][a>>6]&(1<<uint(a&63)) != 0
	}

	readers, writers := g.Accessors()
	for o := range g.Objects {
		ws := writers[o]
		for i := 0; i < len(ws); i++ {
			for j := i + 1; j < len(ws); j++ {
				a, b := ws[i], ws[j]
				if g.Tasks[a].Commutative && g.Tasks[b].Commutative {
					continue
				}
				if !connected(a, b) {
					return fmt.Errorf("graph: not dependence complete: writers %q and %q of object %q are unordered",
						g.Tasks[a].Name, g.Tasks[b].Name, g.Objects[o].Name)
				}
			}
			for _, r := range readers[o] {
				if r == ws[i] {
					continue
				}
				if g.Tasks[r].Commutative && g.Tasks[ws[i]].Commutative && writesObj(&g.Tasks[r], ObjID(o)) {
					continue
				}
				if !connected(ws[i], r) {
					return fmt.Errorf("graph: not dependence complete: writer %q and reader %q of object %q are unordered",
						g.Tasks[ws[i]].Name, g.Tasks[r].Name, g.Objects[o].Name)
				}
			}
		}
	}
	return nil
}

func writesObj(t *Task, o ObjID) bool {
	for _, w := range t.Writes {
		if w == o {
			return true
		}
	}
	return false
}
