package blas

import (
	"math"
	"testing"

	"repro/internal/util"
)

func randMat(rng *util.RNG, m, n int) []float64 {
	a := make([]float64, m*n)
	for i := range a {
		a[i] = rng.NormFloat64()
	}
	return a
}

func naiveGemm(transA, transB bool, m, n, k int, alpha float64, a []float64, lda int, b []float64, ldb int, c []float64, ldc int) {
	at := func(i, l int) float64 {
		if transA {
			return a[l*lda+i]
		}
		return a[i*lda+l]
	}
	bt := func(l, j int) float64 {
		if transB {
			return b[j*ldb+l]
		}
		return b[l*ldb+j]
	}
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			s := 0.0
			for l := 0; l < k; l++ {
				s += at(i, l) * bt(l, j)
			}
			c[i*ldc+j] += alpha * s
		}
	}
}

func TestGemmAllVariants(t *testing.T) {
	rng := util.NewRNG(1)
	for _, tA := range []bool{false, true} {
		for _, tB := range []bool{false, true} {
			m, n, k := 7, 5, 6
			var a, b []float64
			if tA {
				a = randMat(rng, k, m)
			} else {
				a = randMat(rng, m, k)
			}
			if tB {
				b = randMat(rng, n, k)
			} else {
				b = randMat(rng, k, n)
			}
			lda := len(a) / map[bool]int{true: k, false: m}[tA]
			ldb := len(b) / map[bool]int{true: n, false: k}[tB]
			c1 := randMat(rng, m, n)
			c2 := append([]float64(nil), c1...)
			Gemm(tA, tB, m, n, k, 1.5, a, lda, b, ldb, c1, n)
			naiveGemm(tA, tB, m, n, k, 1.5, a, lda, b, ldb, c2, n)
			if d := MaxAbsDiff(m, n, c1, n, c2, n); d > 1e-12 {
				t.Fatalf("Gemm(tA=%v,tB=%v) diff %v", tA, tB, d)
			}
		}
	}
}

func TestGemmSubBlockLeadingDim(t *testing.T) {
	// Multiply sub-blocks of a larger panel to exercise lda != n.
	rng := util.NewRNG(2)
	big := randMat(rng, 8, 8)
	a := big[2*8+1:] // 3x2 sub-block at (2,1), lda 8
	b := randMat(rng, 2, 4)
	c := make([]float64, 3*4)
	Gemm(false, false, 3, 4, 2, 1, a, 8, b, 4, c, 4)
	want := make([]float64, 3*4)
	for i := 0; i < 3; i++ {
		for j := 0; j < 4; j++ {
			for l := 0; l < 2; l++ {
				want[i*4+j] += big[(2+i)*8+1+l] * b[l*4+j]
			}
		}
	}
	if d := MaxAbsDiff(3, 4, c, 4, want, 4); d > 1e-13 {
		t.Fatalf("sub-block Gemm diff %v", d)
	}
}

func TestSyrkMatchesGemm(t *testing.T) {
	rng := util.NewRNG(3)
	n, k := 6, 4
	a := randMat(rng, n, k)
	c1 := make([]float64, n*n)
	c2 := make([]float64, n*n)
	Syrk(n, k, -1, a, k, c1, n)
	naiveGemm(false, true, n, n, k, -1, a, k, a, k, c2, n)
	for i := 0; i < n; i++ {
		for j := 0; j <= i; j++ {
			if math.Abs(c1[i*n+j]-c2[i*n+j]) > 1e-12 {
				t.Fatalf("Syrk mismatch at (%d,%d)", i, j)
			}
		}
	}
}

func spdMatrix(rng *util.RNG, n int) []float64 {
	b := randMat(rng, n, n)
	a := make([]float64, n*n)
	Gemm(false, true, n, n, n, 1, b, n, b, n, a, n)
	for i := 0; i < n; i++ {
		a[i*n+i] += float64(n)
	}
	return a
}

func TestPotrfReconstructs(t *testing.T) {
	rng := util.NewRNG(4)
	n := 12
	a := spdMatrix(rng, n)
	l := append([]float64(nil), a...)
	if err := Potrf(n, l, n); err != nil {
		t.Fatal(err)
	}
	// Zero the strict upper triangle of L, then compute L·Lᵀ.
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			l[i*n+j] = 0
		}
	}
	rec := make([]float64, n*n)
	Gemm(false, true, n, n, n, 1, l, n, l, n, rec, n)
	for i := 0; i < n; i++ {
		for j := 0; j <= i; j++ {
			if math.Abs(rec[i*n+j]-a[i*n+j]) > 1e-9 {
				t.Fatalf("LLᵀ != A at (%d,%d): %v vs %v", i, j, rec[i*n+j], a[i*n+j])
			}
		}
	}
}

func TestPotrfNotPD(t *testing.T) {
	a := []float64{1, 2, 2, 1} // indefinite
	if err := Potrf(2, a, 2); err != ErrNotPD {
		t.Fatalf("want ErrNotPD, got %v", err)
	}
}

func TestGetrfReconstructs(t *testing.T) {
	rng := util.NewRNG(5)
	m, n := 9, 6
	a := randMat(rng, m, n)
	f := append([]float64(nil), a...)
	piv := make([]int, n)
	if err := Getrf(m, n, f, n, piv); err != nil {
		t.Fatal(err)
	}
	// Reconstruct L·U and compare with P·A.
	pa := append([]float64(nil), a...)
	Laswp(n, pa, n, piv)
	lu := make([]float64, m*n)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			s := 0.0
			kmax := j
			if i < kmax {
				kmax = i
			}
			for k := 0; k < kmax; k++ {
				s += f[i*n+k] * f[k*n+j]
			}
			if i <= j {
				s += f[i*n+j] // diagonal of L is 1
			} else {
				s += f[i*n+j] * f[j*n+j]
			}
			lu[i*n+j] = s
		}
	}
	if d := MaxAbsDiff(m, n, lu, n, pa, n); d > 1e-10 {
		t.Fatalf("LU != PA, diff %v", d)
	}
}

func TestGetrfPivotsAreUsed(t *testing.T) {
	// First pivot is tiny; partial pivoting must select row 1.
	a := []float64{1e-20, 1, 1, 1}
	piv := make([]int, 2)
	if err := Getrf(2, 2, a, 2, piv); err != nil {
		t.Fatal(err)
	}
	if piv[0] != 1 {
		t.Fatalf("pivot not selected: %v", piv)
	}
}

func TestGetrfSingular(t *testing.T) {
	a := []float64{0, 0, 0, 0}
	piv := make([]int, 2)
	if err := Getrf(2, 2, a, 2, piv); err != ErrSingular {
		t.Fatalf("want ErrSingular, got %v", err)
	}
}

func TestTrsmRightLowerT(t *testing.T) {
	rng := util.NewRNG(6)
	m, n := 5, 4
	l := randMat(rng, n, n)
	for i := 0; i < n; i++ {
		l[i*n+i] = 2 + math.Abs(l[i*n+i])
		for j := i + 1; j < n; j++ {
			l[i*n+j] = 0
		}
	}
	b := randMat(rng, m, n)
	x := append([]float64(nil), b...)
	TrsmRightLowerT(m, n, l, n, x, n, false)
	// Check X·Lᵀ == B.
	rec := make([]float64, m*n)
	Gemm(false, true, m, n, n, 1, x, n, l, n, rec, n)
	if d := MaxAbsDiff(m, n, rec, n, b, n); d > 1e-10 {
		t.Fatalf("X·Lᵀ != B, diff %v", d)
	}
}

func TestTrsmLeftLowerUnit(t *testing.T) {
	rng := util.NewRNG(7)
	m, n := 4, 6
	l := randMat(rng, m, m)
	for i := 0; i < m; i++ {
		l[i*m+i] = 1
		for j := i + 1; j < m; j++ {
			l[i*m+j] = 0
		}
	}
	b := randMat(rng, m, n)
	x := append([]float64(nil), b...)
	TrsmLeftLowerUnit(m, n, l, m, x, n)
	rec := make([]float64, m*n)
	Gemm(false, false, m, n, m, 1, l, m, x, n, rec, n)
	if d := MaxAbsDiff(m, n, rec, n, b, n); d > 1e-10 {
		t.Fatalf("L·X != B, diff %v", d)
	}
}

func TestFrobNorm(t *testing.T) {
	a := []float64{3, 4, 0, 0}
	if v := FrobNorm(2, 2, a, 2); math.Abs(v-5) > 1e-15 {
		t.Fatalf("FrobNorm = %v, want 5", v)
	}
}
