// Package blas provides the small set of dense linear-algebra kernels the
// block sparse factorizations execute inside their tasks: matrix multiply,
// symmetric rank-k update, triangular solve, Cholesky and LU (with partial
// pivoting) factorization of dense panels. Matrices are stored row-major in
// flat float64 slices with an explicit leading dimension, so sub-blocks of
// larger panels can be addressed without copying.
//
// These are reference implementations in pure Go (the evaluation machine's
// vendor BLAS is replaced by the cost model in internal/machine); they exist
// so that the factorizations are numerically real and testable, not to win
// flop races.
package blas

import (
	"errors"
	"math"
)

// ErrNotPD is returned by Potrf when the matrix is not positive definite.
var ErrNotPD = errors.New("blas: matrix not positive definite")

// ErrSingular is returned by Getrf when no usable pivot exists.
var ErrSingular = errors.New("blas: matrix is singular to working precision")

// Gemm computes C = C + alpha * op(A) * op(B) where op is identity or
// transpose, for row-major matrices: A is m×k (k×m if transA), B is k×n
// (n×k if transB), C is m×n, with leading dimensions lda, ldb, ldc.
func Gemm(transA, transB bool, m, n, k int, alpha float64, a []float64, lda int, b []float64, ldb int, c []float64, ldc int) {
	if alpha == 0 || m == 0 || n == 0 || k == 0 {
		return
	}
	switch {
	case !transA && !transB:
		for i := 0; i < m; i++ {
			ci := c[i*ldc : i*ldc+n]
			for l := 0; l < k; l++ {
				v := alpha * a[i*lda+l]
				if v == 0 {
					continue
				}
				bl := b[l*ldb : l*ldb+n]
				for j, bv := range bl {
					ci[j] += v * bv
				}
			}
		}
	case !transA && transB:
		for i := 0; i < m; i++ {
			ai := a[i*lda : i*lda+k]
			ci := c[i*ldc : i*ldc+n]
			for j := 0; j < n; j++ {
				bj := b[j*ldb : j*ldb+k]
				s := 0.0
				for l, av := range ai {
					s += av * bj[l]
				}
				ci[j] += alpha * s
			}
		}
	case transA && !transB:
		for l := 0; l < k; l++ {
			al := a[l*lda : l*lda+m]
			bl := b[l*ldb : l*ldb+n]
			for i := 0; i < m; i++ {
				v := alpha * al[i]
				if v == 0 {
					continue
				}
				ci := c[i*ldc : i*ldc+n]
				for j, bv := range bl {
					ci[j] += v * bv
				}
			}
		}
	default: // transA && transB
		for i := 0; i < m; i++ {
			ci := c[i*ldc : i*ldc+n]
			for j := 0; j < n; j++ {
				s := 0.0
				for l := 0; l < k; l++ {
					s += a[l*lda+i] * b[j*ldb+l]
				}
				ci[j] += alpha * s
			}
		}
	}
}

// Syrk computes the lower triangle of C = C + alpha * A * Aᵀ where A is n×k
// row-major with leading dimension lda and C is n×n with leading dimension
// ldc. Only the lower triangle of C is referenced and updated.
func Syrk(n, k int, alpha float64, a []float64, lda int, c []float64, ldc int) {
	for i := 0; i < n; i++ {
		ai := a[i*lda : i*lda+k]
		for j := 0; j <= i; j++ {
			aj := a[j*lda : j*lda+k]
			s := 0.0
			for l, av := range ai {
				s += av * aj[l]
			}
			c[i*ldc+j] += alpha * s
		}
	}
}

// TrsmRightLowerT solves X * Lᵀ = B in place for X, where L is an n×n lower
// triangular matrix with unit or non-unit diagonal and B is m×n row-major.
// This is the "scale a subdiagonal block by the Cholesky factor" kernel:
// A_ik ← A_ik · L_kkᵀ⁻¹.
func TrsmRightLowerT(m, n int, l []float64, ldl int, b []float64, ldb int, unitDiag bool) {
	for i := 0; i < m; i++ {
		bi := b[i*ldb : i*ldb+n]
		for j := 0; j < n; j++ {
			s := bi[j]
			lj := l[j*ldl : j*ldl+n]
			for p := 0; p < j; p++ {
				s -= bi[p] * lj[p]
			}
			if unitDiag {
				bi[j] = s
			} else {
				bi[j] = s / lj[j]
			}
		}
	}
}

// TrsmLeftLowerUnit solves L * X = B in place for X, where L is m×m lower
// triangular with implicit unit diagonal and B is m×n row-major. This is the
// "compute a U block from a factored panel" kernel of LU.
func TrsmLeftLowerUnit(m, n int, l []float64, ldl int, b []float64, ldb int) {
	for i := 0; i < m; i++ {
		li := l[i*ldl : i*ldl+m]
		bi := b[i*ldb : i*ldb+n]
		for p := 0; p < i; p++ {
			v := li[p]
			if v == 0 {
				continue
			}
			bp := b[p*ldb : p*ldb+n]
			for j, bv := range bp {
				bi[j] -= v * bv
			}
		}
	}
}

// Potrf computes the Cholesky factorization A = L·Lᵀ of an n×n symmetric
// positive definite matrix in place, storing L in the lower triangle. The
// strict upper triangle is not referenced.
func Potrf(n int, a []float64, lda int) error {
	for j := 0; j < n; j++ {
		d := a[j*lda+j]
		aj := a[j*lda : j*lda+j]
		for _, v := range aj {
			d -= v * v
		}
		if d <= 0 || math.IsNaN(d) {
			return ErrNotPD
		}
		d = math.Sqrt(d)
		a[j*lda+j] = d
		for i := j + 1; i < n; i++ {
			s := a[i*lda+j]
			ai := a[i*lda : i*lda+j]
			for p, v := range aj {
				s -= ai[p] * v
			}
			a[i*lda+j] = s / d
		}
	}
	return nil
}

// Getrf computes an LU factorization with partial pivoting of an m×n panel
// (m >= n) in place: P·A = L·U with unit lower-triangular L stored below the
// diagonal and U on and above it. piv[j] records the row swapped into
// position j at step j (LAPACK-style ipiv, 0-based). Rows are swapped across
// the full panel width n.
func Getrf(m, n int, a []float64, lda int, piv []int) error {
	if len(piv) < n {
		panic("blas: pivot slice too short")
	}
	for j := 0; j < n; j++ {
		// Find pivot.
		p := j
		pv := math.Abs(a[j*lda+j])
		for i := j + 1; i < m; i++ {
			if v := math.Abs(a[i*lda+j]); v > pv {
				pv, p = v, i
			}
		}
		if pv == 0 {
			return ErrSingular
		}
		piv[j] = p
		if p != j {
			rj := a[j*lda : j*lda+n]
			rp := a[p*lda : p*lda+n]
			for q := range rj {
				rj[q], rp[q] = rp[q], rj[q]
			}
		}
		d := a[j*lda+j]
		for i := j + 1; i < m; i++ {
			l := a[i*lda+j] / d
			a[i*lda+j] = l
			if l == 0 {
				continue
			}
			ri := a[i*lda+j+1 : i*lda+n]
			rj := a[j*lda+j+1 : j*lda+n]
			for q, v := range rj {
				ri[q] -= l * v
			}
		}
	}
	return nil
}

// Laswp applies the row interchanges recorded by Getrf to an m×n matrix:
// for j = 0..len(piv)-1, rows j and piv[j] are swapped.
func Laswp(n int, a []float64, lda int, piv []int) {
	for j, p := range piv {
		if p == j {
			continue
		}
		rj := a[j*lda : j*lda+n]
		rp := a[p*lda : p*lda+n]
		for q := range rj {
			rj[q], rp[q] = rp[q], rj[q]
		}
	}
}

// TrsvLower solves L·x = b in place for x (x holds b on entry), where L is
// an n×n non-unit lower triangular matrix.
func TrsvLower(n int, l []float64, ldl int, x []float64) {
	for i := 0; i < n; i++ {
		s := x[i]
		li := l[i*ldl : i*ldl+i]
		for p, v := range li {
			s -= v * x[p]
		}
		x[i] = s / l[i*ldl+i]
	}
}

// TrsvLowerT solves Lᵀ·x = b in place for x, where L is an n×n non-unit
// lower triangular matrix (so Lᵀ is upper triangular).
func TrsvLowerT(n int, l []float64, ldl int, x []float64) {
	for i := n - 1; i >= 0; i-- {
		s := x[i]
		for p := i + 1; p < n; p++ {
			s -= l[p*ldl+i] * x[p]
		}
		x[i] = s / l[i*ldl+i]
	}
}

// GemvSub computes y = y - A·x for a row-major m×n matrix A.
func GemvSub(m, n int, a []float64, lda int, x, y []float64) {
	for i := 0; i < m; i++ {
		ai := a[i*lda : i*lda+n]
		s := 0.0
		for j, v := range ai {
			s += v * x[j]
		}
		y[i] -= s
	}
}

// GemvTSub computes y = y - Aᵀ·x for a row-major m×n matrix A (so y has n
// entries and x has m).
func GemvTSub(m, n int, a []float64, lda int, x, y []float64) {
	for i := 0; i < m; i++ {
		v := x[i]
		if v == 0 {
			continue
		}
		ai := a[i*lda : i*lda+n]
		for j, av := range ai {
			y[j] -= av * v
		}
	}
}

// FrobNorm returns the Frobenius norm of an m×n row-major matrix.
func FrobNorm(m, n int, a []float64, lda int) float64 {
	s := 0.0
	for i := 0; i < m; i++ {
		for _, v := range a[i*lda : i*lda+n] {
			s += v * v
		}
	}
	return math.Sqrt(s)
}

// MaxAbsDiff returns max |a_ij - b_ij| over an m×n region.
func MaxAbsDiff(m, n int, a []float64, lda int, b []float64, ldb int) float64 {
	d := 0.0
	for i := 0; i < m; i++ {
		ra := a[i*lda : i*lda+n]
		rb := b[i*ldb : i*ldb+n]
		for j := range ra {
			if v := math.Abs(ra[j] - rb[j]); v > d {
				d = v
			}
		}
	}
	return d
}
