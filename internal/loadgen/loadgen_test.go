package loadgen

import (
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/rapidd"
	"repro/internal/trace"
	"repro/internal/util"
)

func TestParseConfigDefaults(t *testing.T) {
	cfg, err := ParseConfig([]byte(`{}`))
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Clients != 4 || cfg.Requests != 100 || cfg.Keys != 8 || cfg.Seed != 1 || cfg.TimeoutMS != 60000 {
		t.Fatalf("defaults not applied: %+v", cfg)
	}
}

func TestParseConfigRejectsBadInput(t *testing.T) {
	for _, body := range []string{
		`not json`,
		`{"clients":-1}`,
		`{"clients":9999}`,
		`{"requests":-5}`,
		`{"keys":100000}`,
		`{"skew":-1}`,
		`{"skew":100}`,
		`{"fault_frac":1.5}`,
		`{"drop_frac":-0.1}`,
		`{"dup_frac":2}`,
		`{"deadline_ms":-1}`,
		`{"timeout_ms":-1}`,
		`{"n":-3}`,
	} {
		if _, err := ParseConfig([]byte(body)); err == nil {
			t.Errorf("config %s accepted, want error", body)
		}
	}
}

// TestPickerDeterministicAndSkewed: the key stream is a pure function of
// the seed, and a positive skew concentrates mass on key 0.
func TestPickerDeterministicAndSkewed(t *testing.T) {
	pk := newPicker(16, 1.5)
	a, b := util.NewRNG(42), util.NewRNG(42)
	counts := make([]int, 16)
	for i := 0; i < 5000; i++ {
		ka, kb := pk.pick(a), pk.pick(b)
		if ka != kb {
			t.Fatalf("draw %d: %d vs %d from equal seeds", i, ka, kb)
		}
		counts[ka]++
	}
	if counts[0] <= counts[15] {
		t.Fatalf("skew 1.5 did not concentrate: counts[0]=%d counts[15]=%d", counts[0], counts[15])
	}
	// Uniform picker spreads within a loose tolerance.
	flat := newPicker(4, 0)
	fc := make([]int, 4)
	rng := util.NewRNG(7)
	for i := 0; i < 4000; i++ {
		fc[flat.pick(rng)]++
	}
	for k, c := range fc {
		if c < 700 || c > 1300 {
			t.Fatalf("uniform picker key %d drawn %d/4000 times", k, c)
		}
	}
}

// TestRunAgainstInProcessServer drives a small deterministic load at a real
// rapidd server and checks the accounting adds up: every request lands in
// exactly one outcome bucket, repeats of hot keys hit the plan cache, and
// the report carries the headline numbers.
func TestRunAgainstInProcessServer(t *testing.T) {
	srv := rapidd.New(rapidd.Config{Workers: 2, QueueDepth: 16, Metrics: trace.NewMetrics()})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	cfg := Config{
		URL:      ts.URL,
		Clients:  3,
		Requests: 12,
		Keys:     2,
		Skew:     1,
		N:        80,
		Procs:    2,
		Seed:     9,
	}
	res, err := Run(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Issued != 12 {
		t.Fatalf("issued %d, want 12", res.Issued)
	}
	if res.Done+res.Failed+res.Shed+res.Errors != res.Issued {
		t.Fatalf("outcomes do not partition issued: %+v", res)
	}
	if res.Errors != 0 || res.Failed != 0 {
		t.Fatalf("clean load produced errors=%d failed=%d", res.Errors, res.Failed)
	}
	if res.Done != 12 {
		t.Fatalf("done %d, want 12", res.Done)
	}
	// 12 requests over 2 structures: most serves must be cache hits or
	// coalesced onto an in-flight twin.
	if res.CacheHits+res.Coalesced < 8 {
		t.Fatalf("only %d cache hits + %d coalesced out of 12", res.CacheHits, res.Coalesced)
	}
	if res.Latency.Count() != res.Done {
		t.Fatalf("latency samples %d != done %d", res.Latency.Count(), res.Done)
	}
	if res.Throughput() <= 0 {
		t.Fatal("throughput not positive")
	}
	rep := res.Report()
	for _, want := range []string{"throughput", "latency_p50", "shed", "cache_hits"} {
		if !strings.Contains(rep, want) {
			t.Errorf("report missing %q:\n%s", want, rep)
		}
	}
}

// TestRunCountsShedResponses aims more clients than the server's worker +
// queue capacity at slow jobs: some requests must be shed (counted, not
// errored) and the run still terminates with the books balanced.
func TestRunCountsShedResponses(t *testing.T) {
	srv := rapidd.New(rapidd.Config{Workers: -1, QueueDepth: -1, Metrics: trace.NewMetrics()})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	cfg := Config{
		URL:      ts.URL,
		Clients:  4,
		Requests: 16,
		Keys:     1,
		N:        80,
		Procs:    2,
		Seed:     3,
		HoldMS:   30,
	}
	res, err := Run(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Shed == 0 {
		t.Fatalf("4 clients vs 1 worker with no queue shed nothing: %+v", res)
	}
	if res.Errors != 0 {
		t.Fatalf("shed responses must not count as errors: %+v", res)
	}
	if res.Done+res.Failed+res.Shed+res.Errors != res.Issued {
		t.Fatalf("outcomes do not partition issued: %+v", res)
	}
	if res.ShedRate() <= 0 {
		t.Fatal("shed rate not positive")
	}
}

func TestRunRejectsMissingURL(t *testing.T) {
	if _, err := Run(Config{}, nil); err == nil {
		t.Fatal("Run without URL must error")
	}
}

// TestSplitClientsShares: clients split across tenants by share, every
// tenant gets at least one client, and the assignment is deterministic.
func TestSplitClientsShares(t *testing.T) {
	cfg := Config{
		Clients: 10,
		Tenants: []TenantMix{
			{Name: "heavy", Share: 8},
			{Name: "a", Share: 1},
			{Name: "b", Share: 1},
		},
	}
	if err := cfg.Normalize(); err != nil {
		t.Fatal(err)
	}
	counts := map[string]int{}
	for _, m := range splitClients(cfg) {
		if m == nil {
			t.Fatal("tenant run produced a nil mix")
		}
		counts[m.Name]++
	}
	if counts["heavy"] != 8 || counts["a"] != 1 || counts["b"] != 1 {
		t.Fatalf("split %v, want heavy=8 a=1 b=1", counts)
	}

	// A tiny share still gets one client.
	cfg2 := Config{
		Clients: 4,
		Tenants: []TenantMix{
			{Name: "big", Share: 100},
			{Name: "tiny", Share: 1},
		},
	}
	if err := cfg2.Normalize(); err != nil {
		t.Fatal(err)
	}
	counts2 := map[string]int{}
	for _, m := range splitClients(cfg2) {
		counts2[m.Name]++
	}
	if counts2["tiny"] < 1 || counts2["big"]+counts2["tiny"] != 4 {
		t.Fatalf("split %v, want tiny>=1 and total 4", counts2)
	}

	// Single-tenant runs assign no mixes.
	cfg3 := Config{Clients: 3}
	if err := cfg3.Normalize(); err != nil {
		t.Fatal(err)
	}
	for _, m := range splitClients(cfg3) {
		if m != nil {
			t.Fatal("single-tenant run produced a mix")
		}
	}
}

// TestRunMultiTenantMix drives a 2-tenant mix at an in-process server and
// checks the per-tenant books: every spec carried its tenant, sub-results
// partition the total, and the report names each tenant.
func TestRunMultiTenantMix(t *testing.T) {
	metrics := trace.NewMetrics()
	srv := rapidd.New(rapidd.Config{Workers: 2, QueueDepth: 16, Metrics: metrics})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	cfg := Config{
		URL:      ts.URL,
		Clients:  4,
		Requests: 12,
		Keys:     2,
		N:        80,
		Procs:    2,
		Seed:     9,
		Tenants: []TenantMix{
			{Name: "gold", Share: 3, Priority: "high"},
			{Name: "bronze", Share: 1, Priority: "low"},
		},
	}
	res, err := Run(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Done != 12 || res.Errors != 0 {
		t.Fatalf("done=%d errors=%d, want 12/0", res.Done, res.Errors)
	}
	if len(res.Tenants) != 2 {
		t.Fatalf("per-tenant results %d, want 2", len(res.Tenants))
	}
	var sum int64
	for name, tr := range res.Tenants {
		if tr.Issued == 0 {
			t.Errorf("tenant %s issued nothing", name)
		}
		sum += tr.Issued
	}
	if sum != res.Issued {
		t.Fatalf("tenant issued sum %d != total %d", sum, res.Issued)
	}
	// gold ran 3 of 4 clients → ~3/4 of requests.
	if res.Tenants["gold"].Issued <= res.Tenants["bronze"].Issued {
		t.Fatalf("gold issued %d <= bronze %d despite 3x share",
			res.Tenants["gold"].Issued, res.Tenants["bronze"].Issued)
	}
	// The daemon saw both tenants (its per-tenant ledger confirms the
	// specs carried the names).
	rep := res.Report()
	for _, want := range []string{"tenant/gold p99", "tenant/bronze p99", "tenant/gold done"} {
		if !strings.Contains(rep, want) {
			t.Errorf("report missing %q:\n%s", want, rep)
		}
	}
}
