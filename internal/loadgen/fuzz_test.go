package loadgen

import (
	"reflect"
	"testing"
)

// FuzzParseConfig fuzzes rapidload's -config input surface: arbitrary
// bytes must yield either an in-range config or an error, never a panic —
// and normalization must be a fixpoint so a dumped config reloads
// identically.
func FuzzParseConfig(f *testing.F) {
	for _, seed := range []string{
		`{}`,
		`{"clients":8,"requests":200,"keys":16,"skew":1.2}`,
		`{"fault_frac":0.3,"drop_frac":0.25,"dup_frac":0.1,"seed":7}`,
		`{"kind":"lu","n":80,"procs":2,"deadline_ms":5000,"hold_ms":20}`,
		`{"clients":-3}`,
		`{"skew":1e308}`,
		`{"requests":9999999}`,
		`{"timeout_ms":0.5}`,
		`{"tenants":[{"name":"gold","share":3,"priority":"high"},{"name":"bronze","priority":"low"}]}`,
		`{"tenants":[{"name":"bad tenant"}]}`,
		`{"clients":1,"tenants":[{"name":"a"},{"name":"b"}]}`,
		`not json`,
		`[]`,
		``,
	} {
		f.Add([]byte(seed))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		cfg, err := ParseConfig(data)
		if err != nil {
			return
		}
		if cfg.Clients < 1 || cfg.Clients > 1024 {
			t.Fatalf("accepted clients %d", cfg.Clients)
		}
		if cfg.Requests < 1 || cfg.Requests > 1_000_000 {
			t.Fatalf("accepted requests %d", cfg.Requests)
		}
		if cfg.Keys < 1 || cfg.Keys > 4096 {
			t.Fatalf("accepted keys %d", cfg.Keys)
		}
		if cfg.Skew < 0 || cfg.Skew > 8 {
			t.Fatalf("accepted skew %g", cfg.Skew)
		}
		for _, frac := range []float64{cfg.FaultFrac, cfg.DropFrac, cfg.DupFrac} {
			if frac < 0 || frac > 1 {
				t.Fatalf("accepted fraction %g", frac)
			}
		}
		if cfg.TimeoutMS < 1 || cfg.TimeoutMS > 600_000 {
			t.Fatalf("accepted timeout_ms %d", cfg.TimeoutMS)
		}
		for _, tm := range cfg.Tenants {
			if !validTenantName(tm.Name) || tm.Share < 1 {
				t.Fatalf("accepted tenant %+v", tm)
			}
		}
		// Normalization must be a fixpoint so a dumped config reloads
		// identically. Config holds a slice, so compare via reflect.
		again := cfg
		again.Tenants = append([]TenantMix(nil), cfg.Tenants...)
		if err := again.Normalize(); err != nil {
			t.Fatalf("re-normalization rejected an accepted config: %v", err)
		}
		if !reflect.DeepEqual(again, cfg) {
			t.Fatalf("normalization not a fixpoint: %+v vs %+v", cfg, again)
		}
	})
}
