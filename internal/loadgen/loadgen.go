// Package loadgen is a deterministic closed-loop load generator for the
// rapidd solve service. A fixed number of clients each issue synchronous
// solve requests back to back (closed loop: offered load adapts to service
// rate, so the generator measures the server, not its own queue). Key
// choice, fault injection and fault seeds all derive from util.RNG streams
// seeded per client, so a (config, seed) pair replays the identical request
// sequence on every run and platform.
//
// Keys map to distinct matrix structures (distinct plan-cache fingerprints)
// via the spec seed; the Skew exponent concentrates traffic on low keys the
// way real workloads concentrate on hot structures, which is what makes the
// plan cache and request coalescing observable under load.
package loadgen

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"sort"
	"sync"
	"time"

	"repro/internal/rapidd"
	"repro/internal/trace"
	"repro/internal/util"
)

// Config describes one load run. The zero value of most fields means "use
// the default"; out-of-range values are rejected by Normalize, never
// silently clamped.
type Config struct {
	// URL is the daemon base URL (e.g. http://127.0.0.1:8437). Required by
	// Run; absent in file configs used with rapidload's -inproc mode.
	URL string `json:"url"`
	// Clients is the closed-loop concurrency (default 4, max 1024).
	Clients int `json:"clients"`
	// Requests is the total request count across clients (default 100).
	Requests int `json:"requests"`
	// Seed drives every random decision of the run (default 1).
	Seed uint64 `json:"seed"`
	// Keys is the number of distinct job structures (default 8, max 4096).
	Keys int `json:"keys"`
	// Skew is the zipf exponent over keys: 0 uniform, larger concentrates
	// traffic on low keys (range [0, 8]).
	Skew float64 `json:"skew"`
	// Kind, N, Procs, Block, Heuristic shape the jobs (defaults: the
	// daemon's own — chol, 120, 4, 8, mpo). Verify adds residual checks.
	Kind      string `json:"kind"`
	N         int    `json:"n"`
	Procs     int    `json:"procs"`
	Block     int    `json:"block"`
	Heuristic string `json:"heuristic"`
	Verify    bool   `json:"verify"`
	// FaultFrac is the fraction of requests carrying injected message
	// faults; faulty requests use DropFrac/DupFrac (all in [0, 1]).
	FaultFrac float64 `json:"fault_frac"`
	DropFrac  float64 `json:"drop_frac"`
	DupFrac   float64 `json:"dup_frac"`
	// DeadlineMS is attached to every spec (0: none, range [0, 600000]).
	DeadlineMS int `json:"deadline_ms"`
	// HoldMS makes every job hold its memory this long after executing
	// (range [0, 60000]) — traffic shaping for overload experiments.
	HoldMS int `json:"hold_ms"`
	// TimeoutMS bounds each HTTP round trip (default 60000).
	TimeoutMS int `json:"timeout_ms"`
	// Tenants is the multi-tenant traffic mix: clients are split across
	// the entries in proportion to their shares, and each client stamps
	// its tenant's name, priority and hold on every spec it issues.
	// Empty: every client submits as the daemon's default tenant (the
	// single-tenant behaviour).
	Tenants []TenantMix `json:"tenants"`
	// Observe, when set, is called with every successfully decoded job
	// response, concurrently from the client goroutines. Chaos harnesses
	// use it to record which acknowledgements carried Durable:true before
	// killing the daemon's disk out from under it. Not part of the JSON
	// config surface.
	Observe func(job rapidd.Job) `json:"-"`
}

// TenantMix is one tenant's slice of the generated load.
type TenantMix struct {
	// Name is the tenant label sent with every spec (required).
	Name string `json:"name"`
	// Share is the tenant's relative weight when splitting Clients
	// (default 1). A tenant with share 8 among shares totalling 10 runs
	// 8/10 of the closed-loop clients — the knob the isolation
	// experiment turns to make one tenant misbehave.
	Share int `json:"share"`
	// Priority rides on every spec: "low", "normal" (default) or "high".
	Priority string `json:"priority"`
	// HoldMS overrides the run-level HoldMS for this tenant (0: inherit).
	HoldMS int `json:"hold_ms"`
}

// ParseConfig decodes and validates a JSON config. It is the whole input
// surface of rapidload's -config flag, factored out as the fuzz target:
// any bytes either yield a valid in-range config or an error — no panics.
func ParseConfig(data []byte) (Config, error) {
	var cfg Config
	if err := json.Unmarshal(data, &cfg); err != nil {
		return cfg, fmt.Errorf("loadgen: bad config: %v", err)
	}
	if err := cfg.Normalize(); err != nil {
		return cfg, err
	}
	return cfg, nil
}

// Normalize fills defaults and rejects out-of-range fields.
func (c *Config) Normalize() error {
	if c.Clients == 0 {
		c.Clients = 4
	}
	if c.Clients < 1 || c.Clients > 1024 {
		return fmt.Errorf("loadgen: clients=%d out of range [1, 1024]", c.Clients)
	}
	if c.Requests == 0 {
		c.Requests = 100
	}
	if c.Requests < 1 || c.Requests > 1_000_000 {
		return fmt.Errorf("loadgen: requests=%d out of range [1, 1000000]", c.Requests)
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Keys == 0 {
		c.Keys = 8
	}
	if c.Keys < 1 || c.Keys > 4096 {
		return fmt.Errorf("loadgen: keys=%d out of range [1, 4096]", c.Keys)
	}
	if c.Skew < 0 || c.Skew > 8 || math.IsNaN(c.Skew) {
		return fmt.Errorf("loadgen: skew=%g out of range [0, 8]", c.Skew)
	}
	for name, f := range map[string]float64{"fault_frac": c.FaultFrac, "drop_frac": c.DropFrac, "dup_frac": c.DupFrac} {
		if f < 0 || f > 1 || math.IsNaN(f) {
			return fmt.Errorf("loadgen: %s=%g out of range [0, 1]", name, f)
		}
	}
	if c.DeadlineMS < 0 || c.DeadlineMS > 600_000 {
		return fmt.Errorf("loadgen: deadline_ms=%d out of range [0, 600000]", c.DeadlineMS)
	}
	if c.HoldMS < 0 || c.HoldMS > 60_000 {
		return fmt.Errorf("loadgen: hold_ms=%d out of range [0, 60000]", c.HoldMS)
	}
	if c.TimeoutMS == 0 {
		c.TimeoutMS = 60_000
	}
	if c.TimeoutMS < 1 || c.TimeoutMS > 600_000 {
		return fmt.Errorf("loadgen: timeout_ms=%d out of range [1, 600000]", c.TimeoutMS)
	}
	// The job-shape fields ride through to the daemon, which validates
	// them; reject only what would make specs non-deterministic here.
	if c.N < 0 || c.Procs < 0 || c.Block < 0 {
		return fmt.Errorf("loadgen: negative job shape (n=%d procs=%d block=%d)", c.N, c.Procs, c.Block)
	}
	if len(c.Tenants) > c.Clients {
		return fmt.Errorf("loadgen: %d tenants but only %d clients", len(c.Tenants), c.Clients)
	}
	seen := make(map[string]bool, len(c.Tenants))
	for i := range c.Tenants {
		tm := &c.Tenants[i]
		if !validTenantName(tm.Name) {
			return fmt.Errorf("loadgen: bad tenant name %q (want 1-64 bytes of [a-zA-Z0-9._-])", tm.Name)
		}
		if seen[tm.Name] {
			return fmt.Errorf("loadgen: duplicate tenant %q", tm.Name)
		}
		seen[tm.Name] = true
		if tm.Share == 0 {
			tm.Share = 1
		}
		if tm.Share < 1 || tm.Share > 1_000_000 {
			return fmt.Errorf("loadgen: tenant %q share=%d out of range [1, 1000000]", tm.Name, tm.Share)
		}
		switch tm.Priority {
		case "", "low", "normal", "high":
		default:
			return fmt.Errorf("loadgen: tenant %q priority %q (want low, normal or high)", tm.Name, tm.Priority)
		}
		if tm.HoldMS < 0 || tm.HoldMS > 60_000 {
			return fmt.Errorf("loadgen: tenant %q hold_ms=%d out of range [0, 60000]", tm.Name, tm.HoldMS)
		}
	}
	return nil
}

// validTenantName mirrors the daemon's tenant charset so a bad mix fails
// at config parse, not as a wall of 400s mid-run.
func validTenantName(name string) bool {
	if len(name) == 0 || len(name) > 64 {
		return false
	}
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9', c == '.', c == '_', c == '-':
		default:
			return false
		}
	}
	return true
}

// splitClients assigns each closed-loop client a tenant mix, shares
// respected by largest remainder, deterministically. Returns nils for a
// single-tenant run.
func splitClients(cfg Config) []*TenantMix {
	mixes := make([]*TenantMix, cfg.Clients)
	if len(cfg.Tenants) == 0 {
		return mixes
	}
	total := 0
	for i := range cfg.Tenants {
		total += cfg.Tenants[i].Share
	}
	// Whole shares first, then remainders in declaration order — every
	// tenant gets at least one client (Normalize caps len(Tenants) at
	// Clients).
	counts := make([]int, len(cfg.Tenants))
	assigned := 0
	for i := range cfg.Tenants {
		counts[i] = cfg.Clients * cfg.Tenants[i].Share / total
		assigned += counts[i]
	}
	for i := 0; assigned < cfg.Clients; i = (i + 1) % len(counts) {
		counts[i]++
		assigned++
	}
	for i := range counts {
		if counts[i] == 0 {
			counts[i] = 1 // steal below from the biggest holder
			big := 0
			for k := range counts {
				if counts[k] > counts[big] {
					big = k
				}
			}
			counts[big]--
		}
	}
	c := 0
	for i := range cfg.Tenants {
		for n := 0; n < counts[i]; n++ {
			mixes[c] = &cfg.Tenants[i]
			c++
		}
	}
	return mixes
}

// picker draws keys from a zipf-like distribution: weight(k) ∝ (k+1)^-skew.
type picker struct{ cum []float64 }

func newPicker(keys int, skew float64) *picker {
	cum := make([]float64, keys)
	total := 0.0
	for i := 0; i < keys; i++ {
		total += math.Pow(float64(i+1), -skew)
		cum[i] = total
	}
	for i := range cum {
		cum[i] /= total
	}
	return &picker{cum: cum}
}

func (p *picker) pick(rng *util.RNG) int {
	u := rng.Float64()
	for i, c := range p.cum {
		if u < c {
			return i
		}
	}
	return len(p.cum) - 1
}

// Result aggregates one run. Latency covers served (HTTP 200) requests
// only — shed responses return in microseconds and would make percentiles
// look better the harder the server is overloaded.
type Result struct {
	Config  Config
	Elapsed time.Duration

	Issued    int64
	Done      int64
	Failed    int64
	Shed      int64
	Errors    int64
	Coalesced int64
	CacheHits int64
	// Refused counts 503 responses (daemon draining, or degraded with
	// -degraded-mode=reject); Durable counts served requests whose
	// acknowledgement carried Durable:true.
	Refused int64
	Durable int64

	// Latency is in microseconds per served request.
	Latency *trace.Histogram

	// Tenants breaks the run down per tenant mix (nil for single-tenant
	// runs) — the isolation experiment compares these sub-results.
	Tenants map[string]*Result
}

// merge folds one client's counters into the aggregate.
func (r *Result) merge(c *Result) {
	r.Issued += c.Issued
	r.Done += c.Done
	r.Failed += c.Failed
	r.Shed += c.Shed
	r.Refused += c.Refused
	r.Errors += c.Errors
	r.Coalesced += c.Coalesced
	r.CacheHits += c.CacheHits
	r.Durable += c.Durable
	r.Latency.Merge(c.Latency)
}

// Throughput is served (done) requests per second of wall time.
func (r *Result) Throughput() float64 {
	if r.Elapsed <= 0 {
		return 0
	}
	return float64(r.Done) / r.Elapsed.Seconds()
}

// ShedRate is the fraction of issued requests that were shed.
func (r *Result) ShedRate() float64 {
	if r.Issued == 0 {
		return 0
	}
	return float64(r.Shed) / float64(r.Issued)
}

// Report renders the run as a metric/value table.
func (r *Result) Report() string {
	ms := func(us int64) string { return fmt.Sprintf("%.2f ms", float64(us)/1000) }
	pct := func(n int64) string {
		if r.Issued == 0 {
			return "0%"
		}
		return fmt.Sprintf("%.1f%%", 100*float64(n)/float64(r.Issued))
	}
	rows := [][]string{
		{"clients", fmt.Sprint(r.Config.Clients)},
		{"issued", fmt.Sprint(r.Issued)},
		{"elapsed", r.Elapsed.Round(time.Millisecond).String()},
		{"throughput", fmt.Sprintf("%.1f jobs/s", r.Throughput())},
		{"done", fmt.Sprintf("%d (%s)", r.Done, pct(r.Done))},
		{"failed", fmt.Sprintf("%d (%s)", r.Failed, pct(r.Failed))},
		{"shed", fmt.Sprintf("%d (%s)", r.Shed, pct(r.Shed))},
		{"refused", fmt.Sprintf("%d (%s)", r.Refused, pct(r.Refused))},
		{"durable", fmt.Sprintf("%d (%s)", r.Durable, pct(r.Durable))},
		{"errors", fmt.Sprint(r.Errors)},
		{"coalesced", fmt.Sprint(r.Coalesced)},
		{"cache_hits", fmt.Sprint(r.CacheHits)},
		{"latency_mean", fmt.Sprintf("%.2f ms", r.Latency.Mean()/1000)},
		{"latency_p50", ms(r.Latency.Quantile(0.5))},
		{"latency_p90", ms(r.Latency.Quantile(0.9))},
		{"latency_p99", ms(r.Latency.Quantile(0.99))},
		{"latency_max", ms(r.Latency.Max())},
	}
	names := make([]string, 0, len(r.Tenants))
	for name := range r.Tenants {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		tr := r.Tenants[name]
		rows = append(rows,
			[]string{"tenant/" + name + " done", fmt.Sprintf("%d of %d", tr.Done, tr.Issued)},
			[]string{"tenant/" + name + " shed", fmt.Sprint(tr.Shed)},
			[]string{"tenant/" + name + " p50", ms(tr.Latency.Quantile(0.5))},
			[]string{"tenant/" + name + " p99", ms(tr.Latency.Quantile(0.99))})
	}
	return trace.Grid([]string{"metric", "value"}, rows)
}

// Run executes the load against cfg.URL. hc may be nil (a client with the
// configured timeout is built); pass one to point at an in-process server.
func Run(cfg Config, hc *http.Client) (*Result, error) {
	if err := cfg.Normalize(); err != nil {
		return nil, err
	}
	if cfg.URL == "" {
		return nil, fmt.Errorf("loadgen: no daemon URL configured")
	}
	if hc == nil {
		hc = &http.Client{Timeout: time.Duration(cfg.TimeoutMS) * time.Millisecond}
	}
	pk := newPicker(cfg.Keys, cfg.Skew)

	// Split the request budget; earlier clients absorb the remainder.
	per := make([]int, cfg.Clients)
	for i := 0; i < cfg.Requests; i++ {
		per[i%cfg.Clients]++
	}

	mixes := splitClients(cfg)
	results := make([]*Result, cfg.Clients)
	var wg sync.WaitGroup
	start := time.Now()
	for c := 0; c < cfg.Clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			results[c] = runClient(cfg, hc, pk, c, per[c], mixes[c])
		}(c)
	}
	wg.Wait()

	total := &Result{Config: cfg, Elapsed: time.Since(start), Latency: trace.NewHistogram()}
	if len(cfg.Tenants) > 0 {
		total.Tenants = make(map[string]*Result, len(cfg.Tenants))
		for i := range cfg.Tenants {
			total.Tenants[cfg.Tenants[i].Name] = &Result{Latency: trace.NewHistogram()}
		}
	}
	for c, r := range results {
		total.merge(r)
		if mixes[c] != nil {
			total.Tenants[mixes[c].Name].merge(r)
		}
	}
	return total, nil
}

// runClient is one closed-loop client: its RNG stream is a pure function
// of (seed, client index), independent of scheduling. mix (nil for
// single-tenant runs) stamps the client's tenant identity on every spec.
func runClient(cfg Config, hc *http.Client, pk *picker, client, n int, mix *TenantMix) *Result {
	rng := util.NewRNG(util.Hash64(cfg.Seed, uint64(client)))
	res := &Result{Latency: trace.NewHistogram()}
	for i := 0; i < n; i++ {
		spec := rapidd.JobSpec{
			Kind:       cfg.Kind,
			N:          cfg.N,
			Seed:       uint64(pk.pick(rng) + 1),
			Procs:      cfg.Procs,
			Block:      cfg.Block,
			Heuristic:  cfg.Heuristic,
			Verify:     cfg.Verify,
			DeadlineMS: cfg.DeadlineMS,
			HoldMS:     cfg.HoldMS,
		}
		if mix != nil {
			spec.Tenant = mix.Name
			spec.Priority = mix.Priority
			if mix.HoldMS > 0 {
				spec.HoldMS = mix.HoldMS
			}
		}
		if cfg.FaultFrac > 0 && rng.Float64() < cfg.FaultFrac {
			spec.DropFrac = cfg.DropFrac
			spec.DupFrac = cfg.DupFrac
			spec.FaultSeed = rng.Uint64() | 1
		}
		res.Issued++
		body, _ := json.Marshal(spec)
		t0 := time.Now()
		resp, err := hc.Post(cfg.URL+"/v1/solve?wait=1", "application/json", bytes.NewReader(body))
		if err != nil {
			res.Errors++
			continue
		}
		lat := time.Since(t0)
		switch resp.StatusCode {
		case http.StatusOK:
			var job rapidd.Job
			if err := json.NewDecoder(resp.Body).Decode(&job); err != nil {
				res.Errors++
				resp.Body.Close()
				continue
			}
			res.Latency.Observe(lat.Microseconds())
			switch job.Status {
			case rapidd.StatusDone:
				res.Done++
			default:
				res.Failed++
			}
			if job.Coalesced {
				res.Coalesced++
			}
			if job.Durable {
				res.Durable++
			}
			if job.PlanSource == "memory" || job.PlanSource == "disk" {
				res.CacheHits++
			}
			if cfg.Observe != nil {
				cfg.Observe(job)
			}
		case http.StatusTooManyRequests:
			res.Shed++
		case http.StatusServiceUnavailable:
			res.Refused++
		default:
			res.Errors++
		}
		resp.Body.Close()
	}
	return res
}
