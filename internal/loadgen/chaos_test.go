package loadgen

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"runtime"
	"sync"
	"syscall"
	"testing"
	"time"

	"repro/internal/iofault"
	"repro/internal/journal"
	"repro/internal/rapidd"
	"repro/internal/trace"
)

// TestJournalChaosSoak is the failure-domain proof run: a closed-loop
// load drives a journaled daemon while its disk dies twice mid-run (EIO,
// then ENOSPC) and comes back. The daemon must never wedge — every
// request gets a definite answer, degraded windows refuse with 503 —
// the health state machine must round-trip to durable, and at the end
// the journal must agree exactly with the set of acknowledged-durable
// jobs: nothing lost, nothing duplicated, nothing phantom.
func TestJournalChaosSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second chaos soak; skipped in -short")
	}
	g0 := runtime.NumGoroutine()

	dir := t.TempDir()
	ffs := iofault.NewFaultFS(nil, iofault.Plan{})
	metrics := trace.NewMetrics()
	srv, err := rapidd.Open(rapidd.Config{
		JournalDir:   dir,
		JournalFS:    ffs,
		Workers:      4,
		QueueDepth:   64,
		RearmBackoff: time.Millisecond,
		Metrics:      metrics,
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)

	// Record every acknowledgement that claimed durability; the journal
	// must answer for each of these at replay.
	var mu sync.Mutex
	acked := make(map[string]bool)
	observe := func(job rapidd.Job) {
		if job.Durable {
			mu.Lock()
			acked[job.ID] = true
			mu.Unlock()
		}
	}
	ackedCount := func() int {
		mu.Lock()
		defer mu.Unlock()
		return len(acked)
	}

	healthz := func() int {
		resp, err := http.Get(ts.URL + "/healthz")
		if err != nil {
			return 0
		}
		resp.Body.Close()
		return resp.StatusCode
	}

	// Chaos controller: once enough acks are in flight, break the disk,
	// hold the outage until the daemon visibly degrades, heal, and wait
	// for the re-arm. Twice, with different errnos, to cover both re-arm
	// paths (EIO rotates onto a gap segment, ENOSPC compacts first).
	stop := make(chan struct{})
	waitUntil := func(cond func() bool) bool {
		for !cond() {
			select {
			case <-stop:
				return false
			case <-time.After(2 * time.Millisecond):
			}
		}
		return true
	}
	chaosDone := make(chan struct{})
	go func() {
		defer close(chaosDone)
		for i, errno := range []syscall.Errno{syscall.EIO, syscall.ENOSPC} {
			threshold := 40 + 120*i
			if !waitUntil(func() bool { return ackedCount() >= threshold }) {
				return
			}
			ffs.Break(iofault.ClassDurability, errno)
			if !waitUntil(func() bool { return healthz() == http.StatusServiceUnavailable }) {
				return
			}
			ffs.Heal()
			if !waitUntil(func() bool { return healthz() == http.StatusOK }) {
				return
			}
		}
	}()

	res, err := Run(Config{
		URL:      ts.URL,
		Clients:  8,
		Requests: 400,
		Keys:     4,
		N:        48,
		Procs:    2,
		Seed:     7,
		Observe:  observe,
	}, nil)
	close(stop)
	<-chaosDone
	if err != nil {
		t.Fatal(err)
	}

	// The daemon never wedged: every request got an answer, none errored.
	if res.Errors != 0 {
		t.Errorf("%d requests errored under chaos (daemon wedged or crashed?)", res.Errors)
	}
	if res.Done+res.Failed+res.Shed+res.Refused+res.Errors != res.Issued {
		t.Errorf("outcomes do not partition issued: %+v", res)
	}
	if res.Durable != res.Done+res.Failed {
		t.Errorf("served %d but durable-acked %d: reject mode must never serve non-durably",
			res.Done+res.Failed, res.Durable)
	}

	// The state machine round-trips to durable (the run may have ended
	// mid-outage; heal and let the re-arm loop finish its job).
	ffs.Heal()
	deadline := time.Now().Add(10 * time.Second)
	for healthz() != http.StatusOK {
		if time.Now().After(deadline) {
			t.Fatalf("daemon stuck degraded after heal; health state %d", metrics.Gauge("rapidd.health.state"))
		}
		time.Sleep(5 * time.Millisecond)
	}
	if metrics.Get("rapidd.health.degraded_windows") == 0 {
		t.Error("chaos never degraded the daemon — the soak tested nothing")
	}
	if metrics.Get("rapidd.health.rearms") == 0 {
		t.Error("daemon recovered without a recorded re-arm")
	}
	if res.Refused == 0 && metrics.Get("rapidd.jobs.refused_degraded") == 0 {
		t.Error("no request was refused while degraded")
	}

	// Budget invariant: with the run over, no admission units or queue
	// slots may stay booked.
	waitSettled := func() bool {
		resp, err := http.Get(ts.URL + "/v1/stats")
		if err != nil {
			return false
		}
		defer resp.Body.Close()
		var st struct {
			MemInUse   int64 `json:"mem_in_use"`
			JobsQueued int64 `json:"jobs_queued"`
			QueueLen   int64 `json:"queue_len"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
			return false
		}
		return st.MemInUse == 0 && st.JobsQueued == 0 && st.QueueLen == 0
	}
	for !waitSettled() {
		if time.Now().After(deadline) {
			t.Fatal("admission/queue ledgers never settled to zero")
		}
		time.Sleep(5 * time.Millisecond)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := srv.Drain(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	ts.Close()

	// Replay the journal the chaos left behind. ReplayDir itself enforces
	// the no-loss invariant — it fails loudly if a gap cap would discard
	// acknowledged bytes — so a successful replay means no durable-acked
	// record vanished. (Presence can't be asserted per job: the ENOSPC
	// re-arm compacts, legitimately dropping records of jobs that already
	// gave their client a terminal answer.) On top of that: every
	// surviving submit must be a job some client was acked durable (no
	// phantoms), none may appear twice (no double-execution on restart),
	// and any job still live in the log must be acked too — the bounded
	// residual of completion records lost mid-outage.
	rep, err := journal.ReplayDir(dir)
	if err != nil {
		t.Fatalf("replay after chaos: %v", err)
	}
	submits := make(map[string]int)
	terminal := make(map[string]bool)
	for _, rec := range rep.Records {
		switch rec.Op {
		case journal.OpSubmit:
			submits[rec.ID]++
		case journal.OpComplete:
			terminal[rec.ID] = true
		}
	}
	mu.Lock()
	defer mu.Unlock()
	live := 0
	for id, n := range submits {
		if !acked[id] {
			t.Errorf("phantom job %s in journal: never acknowledged durable", id)
		}
		if n > 1 {
			t.Errorf("job %s journaled %d times (would double-execute on restart)", id, n)
		}
		if !terminal[id] {
			live++
		}
	}
	t.Logf("replay: %d submits survive compaction, %d live (completion lost mid-outage), %d suspect bytes discarded",
		len(submits), live, rep.SuspectBytes)

	// Leak check: drain stopped the workers, the re-arm loop and every
	// waiting handler. Allow the runtime a moment to retire them.
	for end := time.Now().Add(5 * time.Second); ; {
		if runtime.NumGoroutine() <= g0+3 {
			break
		}
		if time.Now().After(end) {
			t.Fatalf("goroutines leaked: %d now vs %d at start", runtime.NumGoroutine(), g0)
		}
		time.Sleep(10 * time.Millisecond)
	}
}
