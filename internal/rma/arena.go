package rma

import "sort"

// Arena is an address-based first-fit allocator with free-block coalescing
// over a contiguous region of abstract memory units. The counting
// allocator in Memory assumes perfectly compactable space — the assumption
// behind the paper's MIN_MEM arithmetic; Arena models the real allocator
// the paper's conclusion calls for ("space freed ... usually contains many
// small pieces and is hard to be re-utilized. To address this
// fragmentation problem, it is necessary to develop a special memory
// allocator") so the fragmentation premium can be measured.
type Arena struct {
	capacity int64
	// free holds disjoint free blocks sorted by address.
	free []arenaBlock
	// allocated maps address -> size for validation.
	allocated map[int64]int64
	used      int64
}

type arenaBlock struct{ addr, size int64 }

// NewArena returns an empty arena of the given capacity.
func NewArena(capacity int64) *Arena {
	return &Arena{
		capacity:  capacity,
		free:      []arenaBlock{{0, capacity}},
		allocated: make(map[int64]int64),
	}
}

// Used returns the units currently allocated.
func (a *Arena) Used() int64 { return a.used }

// LargestFree returns the size of the largest free block.
func (a *Arena) LargestFree() int64 {
	var m int64
	for _, b := range a.free {
		if b.size > m {
			m = b.size
		}
	}
	return m
}

// FreeBlocks returns the number of free-list fragments.
func (a *Arena) FreeBlocks() int { return len(a.free) }

// Alloc reserves size contiguous units, first-fit, and returns the address.
// ok is false when no free block is large enough — which can happen even
// when total free space suffices (external fragmentation).
func (a *Arena) Alloc(size int64) (addr int64, ok bool) {
	if size <= 0 {
		return 0, false
	}
	for i := range a.free {
		if a.free[i].size < size {
			continue
		}
		addr = a.free[i].addr
		a.free[i].addr += size
		a.free[i].size -= size
		if a.free[i].size == 0 {
			a.free = append(a.free[:i], a.free[i+1:]...)
		}
		a.allocated[addr] = size
		a.used += size
		return addr, true
	}
	return 0, false
}

// Free releases the block at addr, coalescing with free neighbours. It
// panics on a bad address or size mismatch (allocator invariants are
// protocol invariants here).
func (a *Arena) Free(addr int64) {
	size, ok := a.allocated[addr]
	if !ok {
		panic("rma: Arena.Free of unallocated address")
	}
	delete(a.allocated, addr)
	a.used -= size
	i := sort.Search(len(a.free), func(i int) bool { return a.free[i].addr > addr })
	// Try to merge with the predecessor and/or successor.
	mergedPrev := false
	if i > 0 && a.free[i-1].addr+a.free[i-1].size == addr {
		a.free[i-1].size += size
		mergedPrev = true
	}
	if i < len(a.free) && addr+size == a.free[i].addr {
		if mergedPrev {
			a.free[i-1].size += a.free[i].size
			a.free = append(a.free[:i], a.free[i+1:]...)
		} else {
			a.free[i].addr = addr
			a.free[i].size += size
		}
		return
	}
	if !mergedPrev {
		a.free = append(a.free, arenaBlock{})
		copy(a.free[i+1:], a.free[i:])
		a.free[i] = arenaBlock{addr, size}
	}
}

// checkInvariants validates the free list (used by tests).
func (a *Arena) checkInvariants() error {
	var prevEnd int64 = -1
	var freeTotal int64
	for _, b := range a.free {
		if b.size <= 0 {
			return errBadArena("empty free block")
		}
		if b.addr <= prevEnd-1 {
			return errBadArena("unsorted or overlapping free blocks")
		}
		if b.addr == prevEnd {
			return errBadArena("uncoalesced adjacent free blocks")
		}
		prevEnd = b.addr + b.size
		freeTotal += b.size
	}
	if prevEnd > a.capacity {
		return errBadArena("free block beyond capacity")
	}
	if freeTotal+a.used != a.capacity {
		return errBadArena("accounting mismatch")
	}
	return nil
}

type errBadArena string

func (e errBadArena) Error() string { return "rma: arena invariant violated: " + string(e) }
