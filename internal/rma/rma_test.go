package rma

import (
	"runtime"
	"sync"
	"testing"

	"repro/internal/graph"
)

func TestMemoryCapacityAccounting(t *testing.T) {
	m := NewMemory(10)
	b1, err := Alloc2(m, 1, 6)
	if err != nil {
		t.Fatal(err)
	}
	if m.Used() != 6 {
		t.Fatalf("used %d", m.Used())
	}
	if _, err := Alloc2(m, 2, 5); err == nil {
		t.Fatalf("over-capacity allocation succeeded")
	}
	if _, err := Alloc2(m, 1, 1); err == nil {
		t.Fatalf("duplicate allocation succeeded")
	}
	if err := m.Free(1, 6); err != nil {
		t.Fatal(err)
	}
	if m.Used() != 0 {
		t.Fatalf("used %d after free", m.Used())
	}
	if err := m.Free(1, 6); err == nil {
		t.Fatalf("double free succeeded")
	}
	_ = b1
	if _, ok := m.Lookup(1); ok {
		t.Fatalf("freed buffer still visible")
	}
}

// Alloc2 is a test helper with a buffer length equal to size.
func Alloc2(m *Memory, o graph.ObjID, size int64) (*Buffer, error) {
	return m.Alloc(o, size, size)
}

func TestPutAndArrivals(t *testing.T) {
	m := NewMemory(100)
	b, err := Alloc2(m, 7, 4)
	if err != nil {
		t.Fatal(err)
	}
	if b.Arrivals() != 0 {
		t.Fatalf("fresh buffer has arrivals")
	}
	if !b.Put([]float64{1, 2, 3, 4}, 1) {
		t.Fatalf("first deposit rejected")
	}
	if b.Arrivals() != 1 {
		t.Fatalf("arrivals %d", b.Arrivals())
	}
	if b.Data[2] != 3 {
		t.Fatalf("data not deposited")
	}
	if !b.Put([]float64{5, 6, 7, 8}, 2) {
		t.Fatalf("second deposit rejected")
	}
	if b.Arrivals() != 2 || b.Data[0] != 5 {
		t.Fatalf("second deposit wrong")
	}
	if !b.PutFlagOnly(3) {
		t.Fatalf("flag-only deposit rejected")
	}
	if b.Arrivals() != 3 {
		t.Fatalf("flag-only deposit not counted")
	}
}

// TestPutDedup: a deposit whose sequence number is not above the highest
// already delivered is a duplicate — discarded without copying data or
// touching the arrival counter, even after the buffer is freed.
func TestPutDedup(t *testing.T) {
	m := NewMemory(100)
	b, err := Alloc2(m, 7, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !b.Put([]float64{1, 2}, 1) {
		t.Fatal("original deposit rejected")
	}
	if b.Put([]float64{9, 9}, 1) {
		t.Fatal("duplicate deposit accepted")
	}
	if b.Arrivals() != 1 || b.Data[0] != 1 {
		t.Fatalf("duplicate touched the buffer: arrivals %d data %v", b.Arrivals(), b.Data)
	}
	if b.PutFlagOnly(1) {
		t.Fatal("duplicate flag-only deposit accepted")
	}
	// A duplicate may even arrive after the receiver consumed the original
	// and freed the buffer; it must be discarded, not treated as a
	// consistency violation.
	if err := m.Free(7, 2); err != nil {
		t.Fatal(err)
	}
	if b.Put([]float64{9, 9}, 1) {
		t.Fatal("duplicate deposit into freed buffer accepted")
	}
}

func TestPutAfterFreePanics(t *testing.T) {
	m := NewMemory(100)
	b, err := Alloc2(m, 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Free(3, 2); err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Fatalf("Put into freed buffer did not panic")
		}
	}()
	b.Put([]float64{1, 2}, 1)
}

func TestAddrSlotsSingleSlot(t *testing.T) {
	s := NewAddrSlots(3)
	pkg1 := &AddrPackage{From: 1}
	pkg2 := &AddrPackage{From: 1}
	if !s.TrySend(0, 1, pkg1) {
		t.Fatalf("first send failed")
	}
	if s.TrySend(0, 1, pkg2) {
		t.Fatalf("second send into occupied slot succeeded")
	}
	// A different source pair is independent.
	if !s.TrySend(0, 2, &AddrPackage{From: 2}) {
		t.Fatalf("independent slot blocked")
	}
	got := s.Consume(0)
	if len(got) != 2 {
		t.Fatalf("consumed %d packages, want 2", len(got))
	}
	if !s.TrySend(0, 1, pkg2) {
		t.Fatalf("slot not freed by Consume")
	}
	if pkgs := s.Consume(1); pkgs != nil {
		t.Fatalf("empty consume returned %v", pkgs)
	}
}

func TestAddrSlotsConcurrent(t *testing.T) {
	const n = 500
	s := NewAddrSlots(2)
	var wg sync.WaitGroup
	wg.Add(2)
	sent := 0
	go func() {
		defer wg.Done()
		for i := 0; i < n; {
			if s.TrySend(0, 1, &AddrPackage{From: 1}) {
				i++
				sent++
			} else {
				runtime.Gosched()
			}
		}
	}()
	received := 0
	go func() {
		defer wg.Done()
		for received < n {
			got := len(s.Consume(0))
			received += got
			if got == 0 {
				runtime.Gosched()
			}
		}
	}()
	wg.Wait()
	if sent != n || received != n {
		t.Fatalf("sent %d received %d", sent, received)
	}
}
