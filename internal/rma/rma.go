// Package rma emulates the remote-memory-access substrate the paper's
// run-time system is built on (SHMEM_PUT on the Cray-T3D): a processor can
// deposit data directly into another processor's memory, but only at an
// address it has been told in advance. The emulation preserves the
// properties the protocol design depends on:
//
//   - Put targets a buffer handle previously exported by the receiver; there
//     is no handshake and no receiver-side copy. Arrival is observable only
//     through a completion counter the receiver polls (the deposit-then-flag
//     idiom of real RMA codes).
//   - Address packages travel through a single-slot buffer per
//     (sender, receiver) pair: a new package cannot be sent until the
//     receiver has consumed the previous one (Section 3.2's "no address
//     buffering" decision).
//   - Freeing a buffer while a Put could still target it is a protocol bug;
//     the emulation panics on a Put into a freed buffer, turning the paper's
//     data-consistency theorem into a checkable runtime assertion.
//
// Memory capacity accounting uses the abstract object sizes (units); the
// backing float64 buffers may have a different physical length (e.g. dense
// panels for structurally sparse objects).
package rma

import (
	"fmt"
	"math/bits"
	"sync/atomic"

	"repro/internal/graph"
)

// Buffer is an exported memory region on some processor. The receiver
// polls Arrivals; producers Put into it. Every deposit carries the
// message's version sequence number; the buffer discards duplicates
// (retransmission-layer dedup: at most one arrival per sequence number).
type Buffer struct {
	Obj      graph.ObjID
	Data     []float64
	arrivals atomic.Int32
	lastSeq  atomic.Int32
	freed    atomic.Bool
}

// Arrivals returns the number of completed deposits (acquire semantics).
func (b *Buffer) Arrivals() int32 { return b.arrivals.Load() }

// Put copies data into the buffer and increments the arrival counter with
// release semantics. seq is the deposit's version sequence number; a
// duplicate delivery (seq not above the highest already deposited — the
// reliability layer delivers versions in order) is discarded and Put
// reports false. The dedup check runs before the freed check on purpose: a
// duplicated copy may land after the receiver consumed the original and
// freed the buffer, and must be discarded, not treated as a consistency
// violation. A non-duplicate Put into a freed buffer still panics: it means
// the protocol invalidated an address that was in use.
func (b *Buffer) Put(data []float64, seq int32) bool {
	if seq <= b.lastSeq.Load() {
		return false
	}
	if b.freed.Load() {
		panic(fmt.Sprintf("rma: Put into freed buffer for object %d (address consistency violated)", b.Obj))
	}
	b.lastSeq.Store(seq)
	if b.Data != nil {
		copy(b.Data, data)
	}
	b.arrivals.Add(1)
	return true
}

// PutFlagOnly increments the arrival counter without copying (used when the
// executor runs structure-only, with no numeric payloads). Duplicate
// sequence numbers are discarded exactly as in Put.
func (b *Buffer) PutFlagOnly(seq int32) bool {
	if seq <= b.lastSeq.Load() {
		return false
	}
	if b.freed.Load() {
		panic(fmt.Sprintf("rma: Put into freed buffer for object %d (address consistency violated)", b.Obj))
	}
	b.lastSeq.Store(seq)
	b.arrivals.Add(1)
	return true
}

// AddrPackage is one address-notification message: the exported buffers a
// consumer tells a producer about. Seq is the package's per-(sender,
// receiver) sequence number, used by the receiver to discard duplicated
// deliveries.
type AddrPackage struct {
	From    graph.Proc
	Seq     int32
	Buffers []*Buffer
}

// Memory is one processor's capacity-accounted arena. Allocation and
// freeing are performed only by the owner processor's goroutine; buffers
// are handed to remote producers through address packages.
type Memory struct {
	capacity int64
	used     int64
	bufs     map[graph.ObjID]*Buffer
}

// NewMemory returns an arena with the given capacity in abstract units.
func NewMemory(capacity int64) *Memory {
	return &Memory{capacity: capacity, bufs: make(map[graph.ObjID]*Buffer)}
}

// Used returns the units currently allocated.
func (m *Memory) Used() int64 { return m.used }

// Alloc reserves size units for object o and returns its buffer with a
// backing slice of bufLen float64s (bufLen 0 gives a flag-only buffer).
func (m *Memory) Alloc(o graph.ObjID, size, bufLen int64) (*Buffer, error) {
	if _, dup := m.bufs[o]; dup {
		return nil, fmt.Errorf("rma: object %d already allocated (volatile objects are allocated once)", o)
	}
	if m.used+size > m.capacity {
		return nil, fmt.Errorf("rma: out of memory: %d + %d > %d", m.used, size, m.capacity)
	}
	m.used += size
	var data []float64
	if bufLen > 0 {
		data = make([]float64, bufLen)
	}
	b := &Buffer{Obj: o, Data: data}
	m.bufs[o] = b
	return b, nil
}

// Free releases object o's buffer and marks it dead so that stray Puts are
// detected.
func (m *Memory) Free(o graph.ObjID, size int64) error {
	b, ok := m.bufs[o]
	if !ok {
		return fmt.Errorf("rma: freeing unallocated object %d", o)
	}
	b.freed.Store(true)
	delete(m.bufs, o)
	m.used -= size
	return nil
}

// Lookup returns the live buffer of object o, if any.
func (m *Memory) Lookup(o graph.ObjID) (*Buffer, bool) {
	b, ok := m.bufs[o]
	return b, ok
}

// AddrSlots is the mesh of single-slot address buffers: slot (dst, src)
// holds at most one in-flight package from src to dst. Each destination
// additionally has a pending bitmask (one bit per source, in 64-bit
// words): a sender raises its bit after filling the slot, and the RA
// operation swaps out whole mask words and visits only flagged slots —
// O(p/64) atomic operations when idle instead of O(p) slot swaps per poll,
// which is what keeps the executor's per-blocking-state RA cheap at high
// processor counts.
type AddrSlots struct {
	p     int
	words int // mask words per destination
	slots []atomic.Pointer[AddrPackage]
	masks []paddedMask // dst-major, words per dst on their own cache lines
}

// paddedMask is one 64-source pending word, padded so different
// destinations' masks (written by senders, swapped by the consumer) do not
// false-share.
type paddedMask struct {
	w atomic.Uint64
	_ [56]byte
}

// NewAddrSlots returns the slot mesh for p processors.
func NewAddrSlots(p int) *AddrSlots {
	words := (p + 63) / 64
	return &AddrSlots{
		p:     p,
		words: words,
		slots: make([]atomic.Pointer[AddrPackage], p*p),
		masks: make([]paddedMask, p*words),
	}
}

// TrySend attempts to deposit a package from src into dst's slot. It
// reports false if the previous package has not been consumed yet. The
// pending bit is raised only after the slot is filled, so a consumer that
// observes the bit always finds the package.
func (a *AddrSlots) TrySend(dst, src graph.Proc, pkg *AddrPackage) bool {
	if !a.slots[int(dst)*a.p+int(src)].CompareAndSwap(nil, pkg) {
		return false
	}
	// CAS loop rather than atomic.Uint64.Or: the module targets go1.22,
	// which predates the atomic bitwise ops. Contention is bounded by the
	// senders of one destination racing the consumer's Swap(0).
	m := &a.masks[int(dst)*a.words+int(src)/64].w
	bit := uint64(1) << (uint(src) % 64)
	for {
		old := m.Load()
		if old&bit != 0 || m.CompareAndSwap(old, old|bit) {
			return true
		}
	}
}

// Consume removes and returns all pending packages addressed to dst (the RA
// operation). It returns nil when nothing is pending.
func (a *AddrSlots) Consume(dst graph.Proc) []*AddrPackage {
	return a.ConsumeAppend(dst, nil)
}

// ConsumeAppend is Consume with a caller-supplied buffer: pending packages
// are appended to buf and the extended slice returned. The RA operation
// runs in every blocking state of the protocol, so the executor reuses one
// scratch slice per processor to keep the steady-state poll allocation-free.
// A bit whose sender raced the mask swap stays set for the next poll; the
// package is simply consumed then (the wake token the executor posts after
// TrySend guarantees that next poll happens).
func (a *AddrSlots) ConsumeAppend(dst graph.Proc, buf []*AddrPackage) []*AddrPackage {
	base := int(dst) * a.p
	for w := 0; w < a.words; w++ {
		mask := a.masks[int(dst)*a.words+w].w.Swap(0)
		for mask != 0 {
			src := w*64 + bits.TrailingZeros64(mask)
			mask &= mask - 1
			if pkg := a.slots[base+src].Swap(nil); pkg != nil {
				buf = append(buf, pkg)
			}
		}
	}
	return buf
}
