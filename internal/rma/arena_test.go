package rma

import (
	"testing"
	"testing/quick"

	"repro/internal/util"
)

func TestArenaBasic(t *testing.T) {
	a := NewArena(100)
	x, ok := a.Alloc(40)
	if !ok || x != 0 {
		t.Fatalf("first alloc at %d ok=%v", x, ok)
	}
	y, ok := a.Alloc(60)
	if !ok || y != 40 {
		t.Fatalf("second alloc at %d ok=%v", y, ok)
	}
	if _, ok := a.Alloc(1); ok {
		t.Fatalf("alloc beyond capacity succeeded")
	}
	a.Free(x)
	if a.Used() != 60 {
		t.Fatalf("used %d", a.Used())
	}
	z, ok := a.Alloc(40)
	if !ok || z != 0 {
		t.Fatalf("freed space not reused: %d ok=%v", z, ok)
	}
	if err := a.checkInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestArenaExternalFragmentation(t *testing.T) {
	a := NewArena(100)
	var addrs []int64
	for i := 0; i < 10; i++ {
		x, ok := a.Alloc(10)
		if !ok {
			t.Fatalf("alloc %d failed", i)
		}
		addrs = append(addrs, x)
	}
	// Free every other block: 50 units free but largest block is 10.
	for i := 0; i < 10; i += 2 {
		a.Free(addrs[i])
	}
	if a.Used() != 50 {
		t.Fatalf("used %d", a.Used())
	}
	if a.LargestFree() != 10 || a.FreeBlocks() != 5 {
		t.Fatalf("largest %d blocks %d", a.LargestFree(), a.FreeBlocks())
	}
	if _, ok := a.Alloc(20); ok {
		t.Fatalf("fragmented alloc of 20 should fail despite 50 free")
	}
	// Freeing the neighbours coalesces.
	a.Free(addrs[1])
	if a.LargestFree() < 30 {
		t.Fatalf("coalescing failed: largest %d", a.LargestFree())
	}
	if err := a.checkInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestArenaCoalesceBothSides(t *testing.T) {
	a := NewArena(30)
	x, _ := a.Alloc(10)
	y, _ := a.Alloc(10)
	z, _ := a.Alloc(10)
	a.Free(x)
	a.Free(z)
	a.Free(y) // merges with both neighbours
	if a.FreeBlocks() != 1 || a.LargestFree() != 30 {
		t.Fatalf("full coalesce failed: %d blocks largest %d", a.FreeBlocks(), a.LargestFree())
	}
	if err := a.checkInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestArenaFreePanics(t *testing.T) {
	a := NewArena(10)
	defer func() {
		if recover() == nil {
			t.Fatalf("bad free did not panic")
		}
	}()
	a.Free(3)
}

func TestArenaQuickInvariants(t *testing.T) {
	f := func(seed uint64, ops []uint8) bool {
		rng := util.NewRNG(seed)
		a := NewArena(1000)
		var live []int64
		for _, op := range ops {
			if op%3 != 0 || len(live) == 0 {
				size := int64(1 + rng.Intn(100))
				if addr, ok := a.Alloc(size); ok {
					live = append(live, addr)
				}
			} else {
				i := rng.Intn(len(live))
				a.Free(live[i])
				live[i] = live[len(live)-1]
				live = live[:len(live)-1]
			}
			if err := a.checkInvariants(); err != nil {
				t.Log(err)
				return false
			}
		}
		for _, addr := range live {
			a.Free(addr)
		}
		if a.Used() != 0 || a.FreeBlocks() != 1 || a.LargestFree() != 1000 {
			t.Logf("final state: used %d blocks %d largest %d", a.Used(), a.FreeBlocks(), a.LargestFree())
			return false
		}
		return a.checkInvariants() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}
