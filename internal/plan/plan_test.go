package plan

import (
	"bytes"
	"reflect"
	"testing"

	"repro/internal/graph"
	"repro/internal/mem"
	"repro/internal/sched"
)

// buildArtifact compiles a small irregular program end to end.
func buildArtifact(t *testing.T, h sched.Heuristic, procs int) *Artifact {
	t.Helper()
	b := graph.NewBuilder()
	n := 6
	objs := make([]graph.ObjID, n*n)
	for i := 0; i < n; i++ {
		for j := 0; j <= i; j++ {
			objs[i*n+j] = b.Object(blockName(i, j), int64(4+i+j))
		}
	}
	for k := 0; k < n; k++ {
		b.Task(taskName("f", k, k), 100, nil, []graph.ObjID{objs[k*n+k]})
		for i := k + 1; i < n; i++ {
			b.Task(taskName("s", i, k), 50,
				[]graph.ObjID{objs[k*n+k]}, []graph.ObjID{objs[i*n+k]})
		}
		for i := k + 1; i < n; i++ {
			for j := k + 1; j <= i; j++ {
				b.CommutativeTask(taskName("u", i, j)+taskName("", k, 0), 25,
					[]graph.ObjID{objs[i*n+k], objs[j*n+k]}, []graph.ObjID{objs[i*n+j]})
			}
		}
	}
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	sched.CyclicOwners(g, procs)
	assign, err := sched.OwnerComputeAssign(g, procs)
	if err != nil {
		t.Fatal(err)
	}
	model := sched.T3D()
	s, err := sched.ScheduleWith(h, g, assign, procs, model, 1<<40)
	if err != nil {
		t.Fatal(err)
	}
	capacity := s.MinMem() + 10
	mp, err := mem.NewPlan(s, capacity)
	if err != nil {
		t.Fatal(err)
	}
	return &Artifact{
		Fingerprint: Fingerprint(g, []byte{byte(h), byte(procs)}),
		Model:       model,
		Capacity:    capacity,
		Schedule:    s,
		Mem:         mp,
	}
}

func blockName(i, j int) string {
	return "A[" + string(rune('0'+i)) + "," + string(rune('0'+j)) + "]"
}

func taskName(k string, i, j int) string {
	return k + string(rune('0'+i)) + string(rune('0'+j))
}

func TestRoundTripIdentity(t *testing.T) {
	for _, h := range []sched.Heuristic{sched.RCP, sched.MPO, sched.DTS, sched.DTSMerge, sched.TreeMem} {
		a := buildArtifact(t, h, 3)
		enc1, err := Encode(a)
		if err != nil {
			t.Fatalf("%v: encode: %v", h, err)
		}
		got, err := Decode(enc1)
		if err != nil {
			t.Fatalf("%v: decode: %v", h, err)
		}
		enc2, err := Encode(got)
		if err != nil {
			t.Fatalf("%v: re-encode: %v", h, err)
		}
		if !bytes.Equal(enc1, enc2) {
			t.Errorf("%v: round trip is not byte-stable", h)
		}
		if got.Fingerprint != a.Fingerprint {
			t.Errorf("%v: fingerprint changed", h)
		}
		if got.Capacity != a.Capacity || got.Model != a.Model {
			t.Errorf("%v: capacity/model changed", h)
		}
		checkArtifactEqual(t, a, got)
	}
}

// checkArtifactEqual compares the decoded artifact structurally with the
// original, field by field.
func checkArtifactEqual(t *testing.T, want, got *Artifact) {
	t.Helper()
	ws, gs := want.Schedule, got.Schedule
	if !reflect.DeepEqual(ws.Assign, gs.Assign) {
		t.Error("Assign differs")
	}
	if !reflect.DeepEqual(ws.Order, gs.Order) {
		t.Error("Order differs")
	}
	if !reflect.DeepEqual(ws.Pos, gs.Pos) {
		t.Error("Pos differs")
	}
	if ws.Makespan != gs.Makespan || ws.Heuristic != gs.Heuristic {
		t.Error("Makespan/Heuristic differs")
	}
	if !reflect.DeepEqual(ws.Slices, gs.Slices) || ws.NumSlices != gs.NumSlices {
		t.Error("Slices differ")
	}
	if !reflect.DeepEqual(ws.G.Tasks, gs.G.Tasks) {
		t.Error("Tasks differ")
	}
	if !reflect.DeepEqual(ws.G.Objects, gs.G.Objects) {
		t.Error("Objects differ")
	}
	if ws.G.NumEdges() != gs.G.NumEdges() {
		t.Errorf("edge count %d != %d", ws.G.NumEdges(), gs.G.NumEdges())
	}
	for ti := 0; ti < ws.G.NumTasks(); ti++ {
		if !reflect.DeepEqual(ws.G.Out(graph.TaskID(ti)), gs.G.Out(graph.TaskID(ti))) {
			t.Fatalf("out-edges of task %d differ", ti)
		}
	}
	wm, gm := want.Mem, got.Mem
	if wm.Capacity != gm.Capacity || wm.Executable != gm.Executable {
		t.Error("mem plan header differs")
	}
	for p := range wm.Procs {
		wp, gp := &wm.Procs[p], &gm.Procs[p]
		if wp.Peak != gp.Peak || wp.Executable != gp.Executable || wp.FailPos != gp.FailPos {
			t.Errorf("proc %d plan header differs", p)
		}
		if len(wp.MAPs) != len(gp.MAPs) {
			t.Fatalf("proc %d: %d MAPs != %d", p, len(wp.MAPs), len(gp.MAPs))
		}
		for mi := range wp.MAPs {
			w, g := &wp.MAPs[mi], &gp.MAPs[mi]
			if w.Pos != g.Pos || w.CoverEnd != g.CoverEnd ||
				!reflect.DeepEqual(w.Frees, g.Frees) || !reflect.DeepEqual(w.Allocs, g.Allocs) {
				t.Errorf("proc %d MAP %d differs", p, mi)
			}
			if len(w.Notify) != len(g.Notify) {
				t.Errorf("proc %d MAP %d notify size differs", p, mi)
				continue
			}
			for q, objs := range w.Notify {
				if !reflect.DeepEqual(objs, g.Notify[q]) {
					t.Errorf("proc %d MAP %d notify[%d] differs", p, mi, q)
				}
			}
		}
	}
}

func TestEncodeDeterministicAcrossCompiles(t *testing.T) {
	a1 := buildArtifact(t, sched.MPO, 4)
	a2 := buildArtifact(t, sched.MPO, 4)
	e1, err := Encode(a1)
	if err != nil {
		t.Fatal(err)
	}
	e2, err := Encode(a2)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(e1, e2) {
		t.Error("two identical compilations serialized differently")
	}
}

func TestDecodeRejectsCorruption(t *testing.T) {
	a := buildArtifact(t, sched.RCP, 2)
	enc, err := Encode(a)
	if err != nil {
		t.Fatal(err)
	}
	// Flip one byte in every region of the payload.
	for _, off := range []int{0, 4, len(enc) / 3, len(enc) / 2, len(enc) - 40, len(enc) - 1} {
		bad := append([]byte(nil), enc...)
		bad[off] ^= 0x5a
		if _, err := Decode(bad); err == nil {
			t.Errorf("corruption at offset %d not detected", off)
		}
	}
	// Truncations.
	for _, n := range []int{0, 3, 10, len(enc) / 2, len(enc) - 1} {
		if _, err := Decode(enc[:n]); err == nil {
			t.Errorf("truncation to %d bytes not detected", n)
		}
	}
	// Wrong version.
	bad := append([]byte(nil), enc...)
	bad[4] = 0x7f // version varint follows the 4-byte magic
	if _, err := Decode(bad); err == nil {
		t.Error("wrong version not detected")
	}
}

func TestFingerprintSensitivity(t *testing.T) {
	build := func(extraObj bool, size int64) *graph.DAG {
		b := graph.NewBuilder()
		x := b.Object("x", size)
		y := b.Object("y", 8)
		b.Task("p", 10, nil, []graph.ObjID{x})
		b.Task("c", 20, []graph.ObjID{x}, []graph.ObjID{y})
		if extraObj {
			z := b.Object("z", 8)
			b.Task("t", 5, []graph.ObjID{y}, []graph.ObjID{z})
		}
		g, err := b.Build()
		if err != nil {
			t.Fatal(err)
		}
		sched.CyclicOwners(g, 2)
		return g
	}
	base := Fingerprint(build(false, 8), []byte{1})
	if base != Fingerprint(build(false, 8), []byte{1}) {
		t.Error("fingerprint not reproducible")
	}
	if base == Fingerprint(build(false, 16), []byte{1}) {
		t.Error("object size change not reflected")
	}
	if base == Fingerprint(build(true, 8), []byte{1}) {
		t.Error("structure change not reflected")
	}
	if base == Fingerprint(build(false, 8), []byte{2}) {
		t.Error("options change not reflected")
	}
	g := build(false, 8)
	fpBefore := Fingerprint(g, []byte{1})
	g.Objects[0].Owner = 1 - g.Objects[0].Owner
	if fpBefore == Fingerprint(g, []byte{1}) {
		t.Error("owner change not reflected")
	}
}

func TestLenientCodecCarriesDefectivePlans(t *testing.T) {
	a := buildArtifact(t, sched.RCP, 2)
	// Reverse P0's order: Schedule.Validate fails, so the strict codec
	// refuses the plan in both directions, but the lenient codec must carry
	// it byte-for-byte so the verifier corpus can persist such fixtures.
	o := a.Schedule.Order[0]
	for i, j := 0, len(o)-1; i < j; i, j = i+1, j-1 {
		o[i], o[j] = o[j], o[i]
	}
	for p := range a.Schedule.Order {
		for i, tk := range a.Schedule.Order[p] {
			a.Schedule.Pos[tk] = int32(i)
		}
	}
	if _, err := Encode(a); err == nil {
		t.Fatal("strict Encode accepted an invalid schedule")
	}
	enc, err := EncodeLenient(a)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Decode(enc); err == nil {
		t.Fatal("strict Decode accepted an invalid schedule")
	}
	got, err := DecodeLenient(enc)
	if err != nil {
		t.Fatal(err)
	}
	checkArtifactEqual(t, a, got)
	// Checksum and truncation protection still apply.
	bad := append([]byte(nil), enc...)
	bad[len(bad)/2] ^= 0x5a
	if _, err := DecodeLenient(bad); err == nil {
		t.Fatal("lenient decode skipped the checksum")
	}
	if _, err := DecodeLenient(enc[:len(enc)/2]); err == nil {
		t.Fatal("lenient decode accepted truncation")
	}
}

func TestLenientMatchesStrictOnValidPlans(t *testing.T) {
	a := buildArtifact(t, sched.MPO, 3)
	strict, err := Encode(a)
	if err != nil {
		t.Fatal(err)
	}
	lenient, err := EncodeLenient(a)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(strict, lenient) {
		t.Fatal("lenient encoding diverges from strict on a valid plan")
	}
}
