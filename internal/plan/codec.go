package plan

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"math"
	"sort"

	"repro/internal/graph"
	"repro/internal/mem"
	"repro/internal/sched"
)

// magic identifies a serialized plan artifact.
var magic = [4]byte{'R', 'P', 'L', 'N'}

// Encode serializes the artifact. The output is a pure function of the
// artifact's contents: slices are written in stored order and the only maps
// in the artifact (MAP notify sets) are written in sorted key order, so two
// equal artifacts encode to identical bytes. The payload is terminated by a
// SHA-256 checksum.
func Encode(a *Artifact) ([]byte, error) {
	if err := a.Validate(); err != nil {
		return nil, err
	}
	return encode(a)
}

// EncodeLenient serializes without the semantic Validate pass, so that
// deliberately defective plans (verifier test corpora, crash repros) can be
// persisted. The byte format and checksum are identical to Encode's; only
// plans the encoder cannot represent at all are rejected.
func EncodeLenient(a *Artifact) ([]byte, error) {
	if a == nil || a.Schedule == nil || a.Schedule.G == nil || a.Mem == nil {
		return nil, fmt.Errorf("plan: artifact missing schedule, graph or memory plan")
	}
	if len(a.Mem.Procs) != a.Schedule.P || len(a.Schedule.Order) != a.Schedule.P {
		return nil, fmt.Errorf("plan: processor counts disagree; cannot encode")
	}
	return encode(a)
}

func encode(a *Artifact) ([]byte, error) {
	e := &encoder{}
	e.raw(magic[:])
	e.u64(Version)
	e.str(a.Fingerprint)
	encodeModel(e, a.Model)
	e.i64(a.Capacity)
	encodeDAG(e, a.Schedule.G)
	encodeSchedule(e, a.Schedule)
	encodeMemPlan(e, a.Mem)
	sum := sha256.Sum256(e.b)
	e.raw(sum[:])
	return e.b, nil
}

// Decode parses a serialized artifact, verifying version, checksum and all
// structural invariants. Corrupted or truncated input yields an error.
func Decode(data []byte) (*Artifact, error) {
	a, err := decode(data)
	if err != nil {
		return nil, err
	}
	if err := a.Validate(); err != nil {
		return nil, err
	}
	return a, nil
}

// DecodeLenient parses a serialized artifact, verifying version, checksum
// and the decoder's structural invariants but skipping the final semantic
// Validate. Use it to load plans destined for the static verifier (which
// reports semantic defects as findings instead of a bare decode error) and
// for the defective-plan test corpus.
func DecodeLenient(data []byte) (*Artifact, error) {
	return decode(data)
}

func decode(data []byte) (*Artifact, error) {
	if len(data) < len(magic)+sha256.Size {
		return nil, fmt.Errorf("plan: input too short (%d bytes)", len(data))
	}
	payload, sum := data[:len(data)-sha256.Size], data[len(data)-sha256.Size:]
	if got := sha256.Sum256(payload); !bytes.Equal(got[:], sum) {
		return nil, fmt.Errorf("plan: checksum mismatch (corrupted artifact)")
	}
	d := &decoder{b: payload}
	var m [4]byte
	d.rawInto(m[:])
	if m != magic {
		return nil, fmt.Errorf("plan: bad magic %q", m[:])
	}
	if v := d.u64(); v != Version {
		return nil, fmt.Errorf("plan: unsupported version %d (have %d)", v, Version)
	}
	a := &Artifact{}
	a.Fingerprint = d.str()
	a.Model = decodeModel(d)
	a.Capacity = d.i64()
	g, err := decodeDAG(d)
	if err != nil {
		return nil, err
	}
	s, err := decodeSchedule(d, g)
	if err != nil {
		return nil, err
	}
	mp, err := decodeMemPlan(d, s)
	if err != nil {
		return nil, err
	}
	if d.err != nil {
		return nil, d.err
	}
	if len(d.b) != 0 {
		return nil, fmt.Errorf("plan: %d trailing bytes", len(d.b))
	}
	a.Schedule = s
	a.Mem = mp
	return a, nil
}

func encodeModel(e *encoder, m sched.CostModel) {
	e.f64(m.ComputeRate)
	e.f64(m.Latency)
	e.f64(m.Bandwidth)
	e.f64(m.MAPOverhead)
	e.f64(m.MAPPerObject)
	e.f64(m.AddrLatency)
}

func decodeModel(d *decoder) sched.CostModel {
	return sched.CostModel{
		ComputeRate:  d.f64(),
		Latency:      d.f64(),
		Bandwidth:    d.f64(),
		MAPOverhead:  d.f64(),
		MAPPerObject: d.f64(),
		AddrLatency:  d.f64(),
	}
}

func encodeDAG(e *encoder, g *graph.DAG) {
	e.u64(uint64(g.NumObjects()))
	for i := range g.Objects {
		o := &g.Objects[i]
		e.str(o.Name)
		e.i64(o.Size)
		e.i32(o.Owner)
	}
	e.u64(uint64(g.NumTasks()))
	for i := range g.Tasks {
		t := &g.Tasks[i]
		e.str(t.Name)
		e.f64(t.Cost)
		e.ids(t.Reads)
		e.ids(t.Writes)
		e.bool(t.Commutative)
	}
	// Edges in adjacency-list order (From implied by the outer loop), which
	// the graph builder guarantees to be deterministic.
	for t := 0; t < g.NumTasks(); t++ {
		out := g.Out(graph.TaskID(t))
		e.u64(uint64(len(out)))
		for _, ed := range out {
			e.i32(ed.To)
			e.i32(ed.Obj)
			e.u64(uint64(ed.Kind))
		}
	}
}

func decodeDAG(d *decoder) (*graph.DAG, error) {
	nObj := d.count("objects")
	objects := make([]graph.Object, nObj)
	for i := range objects {
		objects[i] = graph.Object{
			ID:    graph.ObjID(i),
			Name:  d.str(),
			Size:  d.i64(),
			Owner: d.i32(),
		}
	}
	nTask := d.count("tasks")
	tasks := make([]graph.Task, nTask)
	for i := range tasks {
		tasks[i] = graph.Task{
			ID:          graph.TaskID(i),
			Name:        d.str(),
			Cost:        d.f64(),
			Reads:       d.ids(),
			Writes:      d.ids(),
			Commutative: d.bool(),
		}
	}
	if d.err != nil {
		return nil, d.err
	}
	g := graph.NewDAG(tasks, objects)
	for t := 0; t < nTask; t++ {
		nOut := d.count("edges")
		for k := 0; k < nOut; k++ {
			to := d.i32()
			obj := d.i32()
			kind := d.u64()
			if d.err != nil {
				return nil, d.err
			}
			if to < 0 || int(to) >= nTask {
				return nil, fmt.Errorf("plan: edge target %d out of range", to)
			}
			if kind > uint64(graph.DepPrec) {
				return nil, fmt.Errorf("plan: bad edge kind %d", kind)
			}
			g.AddEdge(graph.Edge{From: graph.TaskID(t), To: to, Obj: obj, Kind: graph.DepKind(kind)})
		}
	}
	if d.err != nil {
		return nil, d.err
	}
	if err := g.Validate(); err != nil {
		return nil, err
	}
	return g, nil
}

func encodeSchedule(e *encoder, s *sched.Schedule) {
	e.u64(uint64(s.P))
	e.ids(s.Assign)
	for p := 0; p < s.P; p++ {
		e.ids(s.Order[p])
	}
	e.f64(s.Makespan)
	e.u64(uint64(s.Heuristic))
	if s.Slices == nil {
		e.bool(false)
	} else {
		e.bool(true)
		e.ids(s.Slices)
		e.u64(uint64(s.NumSlices))
	}
}

func decodeSchedule(d *decoder, g *graph.DAG) (*sched.Schedule, error) {
	n := g.NumTasks()
	s := &sched.Schedule{G: g}
	s.P = d.count("processors")
	s.Assign = d.ids()
	s.Order = make([][]graph.TaskID, s.P)
	for p := 0; p < s.P; p++ {
		s.Order[p] = d.ids()
	}
	s.Makespan = d.f64()
	s.Heuristic = sched.Heuristic(d.u64())
	if d.bool() {
		s.Slices = d.ids()
		s.NumSlices = int(d.u64())
	}
	if d.err != nil {
		return nil, d.err
	}
	if s.NumSlices < 0 || s.NumSlices > n+1 {
		return nil, fmt.Errorf("plan: implausible slice count %d for %d tasks", s.NumSlices, n)
	}
	if len(s.Assign) != n {
		return nil, fmt.Errorf("plan: %d assignments for %d tasks", len(s.Assign), n)
	}
	if s.Slices != nil && len(s.Slices) != n {
		return nil, fmt.Errorf("plan: %d slice entries for %d tasks", len(s.Slices), n)
	}
	// Reconstruct Pos and check that every task appears exactly once on its
	// assigned processor.
	s.Pos = make([]int32, n)
	for i := range s.Pos {
		s.Pos[i] = -1
	}
	count := 0
	for p := 0; p < s.P; p++ {
		for i, t := range s.Order[p] {
			if t < 0 || int(t) >= n {
				return nil, fmt.Errorf("plan: ordered task %d out of range", t)
			}
			if s.Assign[t] != graph.Proc(p) {
				return nil, fmt.Errorf("plan: task %d ordered on proc %d but assigned to %d", t, p, s.Assign[t])
			}
			if s.Pos[t] != -1 {
				return nil, fmt.Errorf("plan: task %d ordered twice", t)
			}
			s.Pos[t] = int32(i)
			count++
		}
	}
	if count != n {
		return nil, fmt.Errorf("plan: %d of %d tasks ordered", count, n)
	}
	return s, nil
}

func encodeMemPlan(e *encoder, pl *mem.Plan) {
	e.i64(pl.Capacity)
	e.bool(pl.Executable)
	for p := range pl.Procs {
		pp := &pl.Procs[p]
		e.i64(pp.Peak)
		e.bool(pp.Executable)
		e.i32(pp.FailPos)
		e.u64(uint64(len(pp.MAPs)))
		for mi := range pp.MAPs {
			m := &pp.MAPs[mi]
			e.i32(m.Pos)
			e.i32(m.CoverEnd)
			e.ids(m.Frees)
			e.ids(m.Allocs)
			// Notify in sorted destination order: the map itself has no
			// canonical order.
			dests := make([]graph.Proc, 0, len(m.Notify))
			for q := range m.Notify { //det:ok keys collected then sorted below
				dests = append(dests, q)
			}
			sort.Slice(dests, func(i, j int) bool { return dests[i] < dests[j] })
			e.u64(uint64(len(dests)))
			for _, q := range dests {
				e.i32(q)
				e.ids(m.Notify[q])
			}
		}
	}
}

func decodeMemPlan(d *decoder, s *sched.Schedule) (*mem.Plan, error) {
	pl := &mem.Plan{Schedule: s}
	pl.Capacity = d.i64()
	pl.Executable = d.bool()
	pl.Procs = make([]mem.ProcPlan, s.P)
	for p := range pl.Procs {
		pp := &pl.Procs[p]
		pp.Peak = d.i64()
		pp.Executable = d.bool()
		pp.FailPos = d.i32()
		nMAPs := d.count("MAPs")
		pp.MAPs = make([]mem.MAP, nMAPs)
		for mi := range pp.MAPs {
			m := &pp.MAPs[mi]
			m.Pos = d.i32()
			m.CoverEnd = d.i32()
			m.Frees = d.ids()
			m.Allocs = d.ids()
			nDest := d.count("notify destinations")
			m.Notify = make(map[graph.Proc][]graph.ObjID, nDest)
			for k := 0; k < nDest; k++ {
				q := d.i32()
				objs := d.ids()
				if d.err != nil {
					return nil, d.err
				}
				if q < 0 || int(q) >= s.P {
					return nil, fmt.Errorf("plan: notify destination %d out of range", q)
				}
				m.Notify[q] = objs
			}
		}
	}
	if d.err != nil {
		return nil, d.err
	}
	nObj := int32(s.G.NumObjects())
	for p := range pl.Procs {
		for mi := range pl.Procs[p].MAPs {
			m := &pl.Procs[p].MAPs[mi]
			for _, lists := range [2][]graph.ObjID{m.Frees, m.Allocs} {
				for _, o := range lists {
					if o < 0 || o >= nObj {
						return nil, fmt.Errorf("plan: MAP references object %d out of range", o)
					}
				}
			}
		}
	}
	return pl, nil
}

// encoder appends varint/fixed primitives to a buffer.
type encoder struct{ b []byte }

func (e *encoder) raw(p []byte)  { e.b = append(e.b, p...) }
func (e *encoder) u64(v uint64)  { e.b = binary.AppendUvarint(e.b, v) }
func (e *encoder) i64(v int64)   { e.b = binary.AppendVarint(e.b, v) }
func (e *encoder) i32(v int32)   { e.i64(int64(v)) }
func (e *encoder) f64(v float64) { e.b = binary.LittleEndian.AppendUint64(e.b, math.Float64bits(v)) }
func (e *encoder) str(s string)  { e.u64(uint64(len(s))); e.b = append(e.b, s...) }
func (e *encoder) bool(v bool) {
	if v {
		e.b = append(e.b, 1)
	} else {
		e.b = append(e.b, 0)
	}
}

func (e *encoder) ids(s []int32) {
	e.u64(uint64(len(s)))
	for _, v := range s {
		e.i32(v)
	}
}

// decoder consumes the same primitives, latching the first error.
type decoder struct {
	b   []byte
	err error
}

func (d *decoder) fail(format string, args ...any) {
	if d.err == nil {
		d.err = fmt.Errorf("plan: "+format, args...)
	}
}

func (d *decoder) rawInto(p []byte) {
	if d.err != nil {
		return
	}
	if len(d.b) < len(p) {
		d.fail("truncated input")
		return
	}
	copy(p, d.b[:len(p)])
	d.b = d.b[len(p):]
}

func (d *decoder) u64() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.b)
	if n <= 0 {
		d.fail("bad uvarint")
		return 0
	}
	d.b = d.b[n:]
	return v
}

func (d *decoder) i64() int64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Varint(d.b)
	if n <= 0 {
		d.fail("bad varint")
		return 0
	}
	d.b = d.b[n:]
	return v
}

func (d *decoder) i32() int32 {
	v := d.i64()
	if v < math.MinInt32 || v > math.MaxInt32 {
		d.fail("value %d overflows int32", v)
		return 0
	}
	return int32(v)
}

func (d *decoder) f64() float64 {
	if d.err != nil {
		return 0
	}
	if len(d.b) < 8 {
		d.fail("truncated float")
		return 0
	}
	v := math.Float64frombits(binary.LittleEndian.Uint64(d.b))
	d.b = d.b[8:]
	return v
}

func (d *decoder) str() string {
	n := d.count("string bytes")
	if d.err != nil {
		return ""
	}
	s := string(d.b[:n])
	d.b = d.b[n:]
	return s
}

func (d *decoder) bool() bool {
	if d.err != nil {
		return false
	}
	if len(d.b) < 1 {
		d.fail("truncated bool")
		return false
	}
	v := d.b[0]
	d.b = d.b[1:]
	if v > 1 {
		d.fail("bad bool byte %d", v)
		return false
	}
	return v == 1
}

// count reads a length prefix and sanity-checks it against the remaining
// input (every element takes at least one byte), so corrupted lengths fail
// cleanly instead of attempting enormous allocations.
func (d *decoder) count(what string) int {
	n := d.u64()
	if d.err != nil {
		return 0
	}
	if n > uint64(len(d.b)) {
		d.fail("implausible %s count %d (only %d bytes left)", what, n, len(d.b))
		return 0
	}
	return int(n)
}

func (d *decoder) ids() []int32 {
	n := d.count("id list")
	if d.err != nil || n == 0 {
		return nil
	}
	s := make([]int32, n)
	for i := range s {
		s[i] = d.i32()
	}
	if d.err != nil {
		return nil
	}
	return s
}
