// Package plan serializes compiled execution plans — the full output of the
// inspector phase: task graph, processor mapping, per-processor task
// orders, DTS slice boundaries and the MAP memory plan — into a versioned,
// deterministic, self-checking binary format.
//
// The inspector (graph transformation, clustering, ordering, MAP planning)
// is the expensive half of the inspector/executor split; its output depends
// only on the program structure and the compile options, so it can be
// computed once and reused across process lifetimes. This package provides
// the two primitives that make that safe:
//
//   - a structural Fingerprint over the input (DAG structure + options)
//     used as the content address of the compiled artifact, and
//   - a byte-stable codec: Encode is a pure function of the artifact, so
//     equal compilations produce equal bytes (the determinism audits in
//     internal/graph, internal/sched and internal/mem exist to guarantee
//     equal compilations in the first place).
//
// Integrity: the payload carries a SHA-256 checksum; Decode rejects
// truncated or corrupted input with an error rather than a panic, so cache
// layers can fall back to recompilation.
package plan

import (
	"fmt"

	"repro/internal/mem"
	"repro/internal/sched"
)

// Version is the current serialization format version. Decode rejects any
// other version; bump it whenever the layout of Artifact or the codec
// changes.
const Version = 1

// Artifact is a complete compiled plan: everything the executor and the
// simulator need, with no references back to the builder that produced it.
// It corresponds to rapid.Plan plus the task graph the schedule refers to
// (Schedule.G) and the content address it was compiled under.
type Artifact struct {
	// Fingerprint is the content address of the (structure, options) pair
	// this plan was compiled from (see Fingerprint).
	Fingerprint string
	// Model is the cost model the schedule was computed with.
	Model sched.CostModel
	// Capacity is the per-processor memory capacity of the MAP plan.
	Capacity int64
	// Schedule is the static schedule, including its task graph.
	Schedule *sched.Schedule
	// Mem is the MAP plan for Capacity.
	Mem *mem.Plan
}

// Validate checks the internal consistency of a (typically just decoded)
// artifact: schedule and memory plan present, referring to the same graph,
// and structurally sound.
func (a *Artifact) Validate() error {
	if a.Schedule == nil || a.Schedule.G == nil {
		return fmt.Errorf("plan: artifact has no schedule")
	}
	if a.Mem == nil {
		return fmt.Errorf("plan: artifact has no memory plan")
	}
	if a.Mem.Schedule != a.Schedule {
		return fmt.Errorf("plan: memory plan refers to a different schedule")
	}
	if len(a.Mem.Procs) != a.Schedule.P {
		return fmt.Errorf("plan: memory plan has %d processors, schedule %d", len(a.Mem.Procs), a.Schedule.P)
	}
	if err := a.Schedule.G.Validate(); err != nil {
		return err
	}
	if err := a.Schedule.Validate(); err != nil {
		return err
	}
	return nil
}
