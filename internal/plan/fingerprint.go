package plan

import (
	"crypto/sha256"
	"encoding/hex"

	"repro/internal/graph"
)

// fingerprintDomain separates plan fingerprints from any other SHA-256 use
// and versions the hashed layout: change it whenever the fields entering
// the hash change.
const fingerprintDomain = "rapid-plan-fingerprint-v1"

// Fingerprint returns the content address of a compilation input: a
// SHA-256 (hex) over the complete task-graph structure — objects with
// sizes and current owners, tasks with costs, access sets and
// commutativity, and every dependence edge in adjacency order — plus an
// opaque options blob supplied by the caller (processor count, heuristic,
// cost model, memory budget, owner policy...). Two inputs with equal
// fingerprints compile, deterministically, to byte-identical artifacts, so
// the fingerprint is a safe cache key for compiled plans.
//
// Owners are part of the structure on purpose: the same DAG under a
// different preset data mapping schedules differently. Callers that apply
// an owner policy during compilation must fingerprint before mutation and
// include the policy in opts (the policy is a deterministic function of the
// pre-mutation state).
func Fingerprint(g *graph.DAG, opts []byte) string {
	h := sha256.New()
	e := &encoder{}
	e.str(fingerprintDomain)
	encodeDAG(e, g)
	e.u64(uint64(len(opts)))
	e.raw(opts)
	h.Write(e.b)
	return hex.EncodeToString(h.Sum(nil))
}
