// Package lu builds the 1-D column-block sparse LU task graphs of the
// paper's second evaluation application: sparse Gaussian elimination with
// partial pivoting, parallelized with the static symbolic factorization of
// Fu & Yang (SC'96) so the dependence structure is fixed before numeric
// execution, and a 1-D column-block cyclic mapping that keeps pivoting and
// row swaps local to the panel owner.
//
// Data objects are column panels; tasks are
//
//	Factor_k   : factor panel k (LU with partial pivoting on the trailing
//	             rows); the pivot sequence is stored with the panel
//	Update_kj  : apply panel k's pivots, the unit-lower triangular solve
//	             and the Schur update to panel j (j > k, structurally
//	             coupled); non-commutative — updates to a panel are applied
//	             in ascending k order
//
// Panel sizes (memory units) come from the structural symbolic analysis;
// numeric buffers are dense n×w panels plus a pivot strip, intended for
// validation-scale problems.
package lu

import (
	"fmt"

	"repro/internal/blas"
	"repro/internal/graph"
	"repro/internal/sparse"
)

type opKind uint8

const (
	opFactor opKind = iota
	opUpdate
)

type taskInfo struct {
	kind opKind
	k, j int32
}

// Problem is a built LU instance.
type Problem struct {
	N  int
	W  int
	NB int
	P  int
	G  *graph.DAG
	BP *sparse.BlockPattern1D

	panelObj []graph.ObjID
	info     []taskInfo
	// heights[k] is the structural column height of panel k (scalar rows on
	// and below the diagonal of the factor), used for flop estimates.
	heights []int64

	A *sparse.Matrix
}

// Options configure the build.
type Options struct {
	Procs     int
	BlockSize int
}

// Build constructs the problem. The matrix may be unsymmetric; values are
// optional and needed only for numeric execution.
func Build(a *sparse.Matrix, opt Options) (*Problem, error) {
	if opt.Procs <= 0 || opt.BlockSize <= 0 {
		return nil, fmt.Errorf("lu: invalid options %+v", opt)
	}
	bp := sparse.NewBlockPattern1D(a, opt.BlockSize)
	pr := &Problem{N: a.N, W: opt.BlockSize, NB: bp.NB, P: opt.Procs, BP: bp, A: a}

	// Structural heights from the AᵀA-bound block pattern (the same bound
	// that defines the panel interaction structure).
	bp2 := sparse.NewBlockPattern2D(a.AtAPattern(), opt.BlockSize)
	pr.heights = make([]int64, bp.NB)
	for k := 0; k < bp.NB; k++ {
		var h int64
		for _, r := range bp2.Rows[k] {
			h += int64(bp2.BlockDim(int(r)))
		}
		pr.heights[k] = h
	}

	gb := graph.NewBuilder()
	pr.panelObj = make([]graph.ObjID, bp.NB)
	owners := make([]graph.Proc, bp.NB)
	for k := 0; k < bp.NB; k++ {
		pr.panelObj[k] = gb.Object(fmt.Sprintf("P[%d]", k), bp.PanelNnz[k])
		owners[k] = graph.Proc(k % opt.Procs)
	}

	// Sequential elimination order. Updates into a panel are ordered by
	// ascending k through the read-modify-write chain (non-commutative).
	for k := int32(0); k < int32(bp.NB); k++ {
		wk := float64(bp.BlockDim(int(k)))
		hk := float64(pr.heights[k])
		pk := pr.panelObj[k]
		gb.Task(fmt.Sprintf("factor(%d)", k), hk*wk*wk,
			[]graph.ObjID{pk}, []graph.ObjID{pk})
		pr.info = append(pr.info, taskInfo{kind: opFactor, k: k, j: k})
		for _, j := range bp.Succ[k] {
			wj := float64(bp.BlockDim(int(j)))
			pj := pr.panelObj[j]
			gb.Task(fmt.Sprintf("update(%d,%d)", k, j), 2*hk*wk*wj,
				[]graph.ObjID{pk, pj}, []graph.ObjID{pj})
			pr.info = append(pr.info, taskInfo{kind: opUpdate, k: k, j: j})
		}
	}
	g, err := gb.Build()
	if err != nil {
		return nil, fmt.Errorf("lu: %w", err)
	}
	for k := 0; k < bp.NB; k++ {
		g.Objects[pr.panelObj[k]].Owner = owners[k]
	}
	pr.G = g
	return pr, nil
}

// SetMatrix swaps in new numeric values for an iterative computation (e.g.
// a Newton iteration): the pattern must be the one the problem was built
// with, so the task graph, schedule and memory plan stay valid — the
// inspector runs once, the executor every iteration.
func (pr *Problem) SetMatrix(a *sparse.Matrix) error {
	if a.N != pr.N || a.Nnz() != pr.A.Nnz() {
		return fmt.Errorf("lu: SetMatrix pattern mismatch (n %d vs %d, nnz %d vs %d)",
			a.N, pr.N, a.Nnz(), pr.A.Nnz())
	}
	pr.A = a
	return nil
}

// PanelObj returns the object ID of panel k.
func (pr *Problem) PanelObj(k int) graph.ObjID { return pr.panelObj[k] }

// BufLen returns the numeric buffer length of an object: a dense n×w panel
// plus w pivot slots. (The abstract Size used for memory accounting is the
// structural nonzero count.)
func (pr *Problem) BufLen(o graph.ObjID) int64 {
	k := int(o) // panels were created in order, so ObjID == panel index
	w := pr.BP.BlockDim(k)
	return int64(pr.N*w + w)
}

// colStart returns the first scalar column of panel k.
func (pr *Problem) colStart(k int) int { return k * pr.W }

// InitObject fills a panel buffer with the values of the corresponding
// columns of A (dense n×w panel, pivot strip zeroed).
func (pr *Problem) InitObject(o graph.ObjID, buf []float64) {
	for i := range buf {
		buf[i] = 0
	}
	if pr.A == nil || pr.A.Val == nil {
		return
	}
	k := int(o)
	w := pr.BP.BlockDim(k)
	c0 := pr.colStart(k)
	for j := 0; j < w; j++ {
		col := pr.A.Col(c0 + j)
		vals := pr.A.ColVal(c0 + j)
		for idx, i := range col {
			buf[int(i)*w+j] = vals[idx]
		}
	}
}

// panelParts splits a panel buffer into the dense n×w matrix and the pivot
// strip (pivots stored as float64 row indices relative to the panel's
// diagonal row).
func (pr *Problem) panelParts(k int, buf []float64) (mat []float64, piv []float64, w int) {
	w = pr.BP.BlockDim(k)
	return buf[:pr.N*w], buf[pr.N*w : pr.N*w+w], w
}

// Kernel executes task t numerically.
func (pr *Problem) Kernel(t graph.TaskID, get func(graph.ObjID) []float64) error {
	ti := pr.info[t]
	switch ti.kind {
	case opFactor:
		k := int(ti.k)
		buf := get(pr.panelObj[k])
		mat, pivF, w := pr.panelParts(k, buf)
		r0 := pr.colStart(k)
		m := pr.N - r0
		piv := make([]int, w)
		if err := blas.Getrf(m, w, mat[r0*w:], w, piv); err != nil {
			return fmt.Errorf("lu: factor(%d): %w", k, err)
		}
		for j := 0; j < w; j++ {
			pivF[j] = float64(piv[j])
		}
		return nil
	case opUpdate:
		k, j := int(ti.k), int(ti.j)
		bufK := get(pr.panelObj[k])
		bufJ := get(pr.panelObj[j])
		matK, pivF, wk := pr.panelParts(k, bufK)
		matJ, _, wj := pr.panelParts(j, bufJ)
		r0 := pr.colStart(k)
		m := pr.N - r0
		piv := make([]int, wk)
		for q := 0; q < wk; q++ {
			piv[q] = int(pivF[q])
		}
		// Apply panel k's row interchanges to panel j's trailing rows.
		blas.Laswp(wj, matJ[r0*wj:], wj, piv)
		// U block: solve L_kk (unit lower) * U = B on the wk pivot rows.
		blas.TrsmLeftLowerUnit(wk, wj, matK[r0*wk:], wk, matJ[r0*wj:], wj)
		// Schur complement on the rows below panel k.
		rows := m - wk
		if rows > 0 {
			blas.Gemm(false, false, rows, wj, wk, -1,
				matK[(r0+wk)*wk:], wk,
				matJ[r0*wj:], wj,
				matJ[(r0+wk)*wj:], wj)
		}
		return nil
	}
	return fmt.Errorf("lu: unknown kernel for task %d", t)
}

// SequentialFactor runs the kernels in topological order, returning the
// panel buffers (reference for tests and for the solver below).
func (pr *Problem) SequentialFactor() (map[graph.ObjID][]float64, error) {
	bufs := make(map[graph.ObjID][]float64, pr.G.NumObjects())
	for oi := range pr.G.Objects {
		b := make([]float64, pr.BufLen(graph.ObjID(oi)))
		pr.InitObject(graph.ObjID(oi), b)
		bufs[graph.ObjID(oi)] = b
	}
	order, err := pr.G.TopoSort()
	if err != nil {
		return nil, err
	}
	get := func(o graph.ObjID) []float64 { return bufs[o] }
	for _, t := range order {
		if err := pr.Kernel(t, get); err != nil {
			return nil, err
		}
	}
	return bufs, nil
}

// Solve uses factored panel buffers to solve A·x = b (in place on a copy of
// b), applying the per-panel pivot sequences, the unit-lower forward solve
// and the upper back substitution.
func (pr *Problem) Solve(bufs map[graph.ObjID][]float64, b []float64) []float64 {
	n := pr.N
	x := append([]float64(nil), b...)
	// Forward: for each panel k, apply its pivots to x (rows r0..n-1), then
	// eliminate with the unit-lower columns.
	for k := 0; k < pr.NB; k++ {
		mat, pivF, w := pr.panelParts(k, bufs[pr.panelObj[k]])
		r0 := pr.colStart(k)
		// Pivots are recorded relative to the factored submatrix, which
		// starts at row r0.
		for q := 0; q < w; q++ {
			p, pq := r0+q, r0+int(pivF[q])
			x[p], x[pq] = x[pq], x[p]
		}
		for q := 0; q < w; q++ {
			gj := r0 + q
			v := x[gj]
			if v == 0 {
				continue
			}
			for i := gj + 1; i < n; i++ {
				x[i] -= mat[i*w+q] * v
			}
		}
	}
	// Backward: upper triangular solve using the U parts of the panels.
	for gj := n - 1; gj >= 0; gj-- {
		k := gj / pr.W
		mat, _, w := pr.panelParts(k, bufs[pr.panelObj[k]])
		q := gj - pr.colStart(k)
		x[gj] /= mat[gj*w+q]
		v := x[gj]
		if v == 0 {
			continue
		}
		// Subtract column gj of U from rows above: U entries live in the
		// panels of each column; iterate rows i < gj via this column.
		for i := 0; i < gj; i++ {
			x[i] -= mat[i*w+q] * v
		}
	}
	return x
}

// Heights exposes the structural panel heights (for cost reporting).
func (pr *Problem) Heights() []int64 { return pr.heights }
