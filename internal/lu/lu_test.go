package lu

import (
	"math"
	"testing"

	"repro/internal/sparse"
	"repro/internal/util"
)

func testMatrix(t *testing.T, nx, ny, links int, seed uint64) *sparse.Matrix {
	t.Helper()
	rng := util.NewRNG(seed)
	m := sparse.AddRandomUnsymLinks(sparse.Grid2D(nx, ny, false), links, rng)
	return sparse.UnsymValues(m, rng)
}

func TestBuildStructure(t *testing.T) {
	a := testMatrix(t, 6, 5, 8, 1)
	pr, err := Build(a, Options{Procs: 4, BlockSize: 4})
	if err != nil {
		t.Fatal(err)
	}
	if err := pr.G.Validate(); err != nil {
		t.Fatal(err)
	}
	if err := pr.G.CheckDependenceComplete(); err != nil {
		t.Fatal(err)
	}
	if pr.G.NumObjects() != pr.NB {
		t.Fatalf("objects %d != panels %d", pr.G.NumObjects(), pr.NB)
	}
	// 1-D cyclic owners.
	for k := 0; k < pr.NB; k++ {
		if pr.G.Objects[pr.PanelObj(k)].Owner != int32(k%4) {
			t.Fatalf("panel %d owner wrong", k)
		}
	}
}

func TestSolveResidual(t *testing.T) {
	for _, bs := range []int{3, 5, 7} {
		a := testMatrix(t, 6, 6, 10, uint64(bs))
		pr, err := Build(a, Options{Procs: 3, BlockSize: bs})
		if err != nil {
			t.Fatal(err)
		}
		bufs, err := pr.SequentialFactor()
		if err != nil {
			t.Fatal(err)
		}
		n := a.N
		rng := util.NewRNG(99)
		xTrue := make([]float64, n)
		for i := range xTrue {
			xTrue[i] = rng.NormFloat64()
		}
		// b = A·xTrue.
		b := make([]float64, n)
		for j := 0; j < n; j++ {
			vals := a.ColVal(j)
			for k, i := range a.Col(j) {
				b[i] += vals[k] * xTrue[j]
			}
		}
		x := pr.Solve(bufs, b)
		maxErr, maxX := 0.0, 0.0
		for i := range x {
			if d := math.Abs(x[i] - xTrue[i]); d > maxErr {
				maxErr = d
			}
			if v := math.Abs(xTrue[i]); v > maxX {
				maxX = v
			}
		}
		if maxErr/maxX > 1e-8 {
			t.Fatalf("bs=%d: relative solve error %v", bs, maxErr/maxX)
		}
	}
}

func TestUpdatesAreOrderedChains(t *testing.T) {
	a := testMatrix(t, 5, 5, 6, 2)
	pr, err := Build(a, Options{Procs: 2, BlockSize: 4})
	if err != nil {
		t.Fatal(err)
	}
	// Updates into a panel must form a chain: every update task except the
	// panel's first has an incoming true edge from another task writing the
	// same panel.
	writers := make(map[int32][]int32) // panel -> task IDs in program order
	for ti := range pr.G.Tasks {
		inf := pr.info[ti]
		writers[inf.j] = append(writers[inf.j], int32(ti))
	}
	for panel, ws := range writers {
		for i := 1; i < len(ws); i++ {
			found := false
			for _, e := range pr.G.In(ws[i]) {
				if e.From == ws[i-1] {
					found = true
					break
				}
			}
			if !found {
				t.Fatalf("panel %d: writer %d not chained to %d", panel, ws[i], ws[i-1])
			}
		}
	}
}

func TestPanelSizesAndHeights(t *testing.T) {
	a := testMatrix(t, 6, 4, 5, 3)
	pr, err := Build(a, Options{Procs: 2, BlockSize: 5})
	if err != nil {
		t.Fatal(err)
	}
	for k := 0; k < pr.NB; k++ {
		if pr.G.Objects[pr.PanelObj(k)].Size <= 0 {
			t.Fatalf("panel %d size non-positive", k)
		}
		if pr.BufLen(pr.PanelObj(k)) != int64(pr.N*pr.BP.BlockDim(k)+pr.BP.BlockDim(k)) {
			t.Fatalf("panel %d buffer length wrong", k)
		}
	}
	h := pr.Heights()
	for k := range h {
		if h[k] < int64(pr.BP.BlockDim(k)) {
			t.Fatalf("height of panel %d below its own width", k)
		}
	}
}

func TestPivotingActuallyHappens(t *testing.T) {
	a := testMatrix(t, 6, 6, 12, 4)
	pr, err := Build(a, Options{Procs: 2, BlockSize: 4})
	if err != nil {
		t.Fatal(err)
	}
	bufs, err := pr.SequentialFactor()
	if err != nil {
		t.Fatal(err)
	}
	swaps := 0
	for k := 0; k < pr.NB; k++ {
		_, pivF, w := pr.panelParts(k, bufs[pr.PanelObj(k)])
		for q := 0; q < w; q++ {
			if int(pivF[q]) != q {
				swaps++
			}
		}
	}
	if swaps == 0 {
		t.Fatalf("no row interchanges occurred; pivoting untested")
	}
}
