// Package journal is the write-ahead job journal of the rapidd solve
// service. Every job-lifecycle transition (submit, admit, complete,
// cancel) is appended — checksummed and fsync'd — before the daemon acts
// on it, so a restart can replay the log and reconstruct exactly which
// jobs were queued (recoverable) and which were executing (must be failed
// explicitly). The journal never silently drops an acknowledged record:
// the only tolerated damage is a torn tail on the newest segment, which a
// crash mid-append produces by construction, and even that is truncated
// loudly (reported in Stats) rather than skipped over.
//
// Layout: a journal directory holds numbered segment files
// (wal-00000001.log, ...). Records are length-prefixed, CRC-32C-framed
// binary. When the active segment outgrows MaxSegmentBytes the journal
// compacts: it writes a fresh segment seeded with a high-water mark record
// plus the live (non-terminal) jobs' records, then deletes the older
// segments — terminal jobs vanish, the ID high-water mark and every
// in-flight job survive. Replay therefore always sees a bounded log:
// live jobs plus the tail of recent traffic.
package journal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"syscall"

	"repro/internal/iofault"
)

// Op enumerates record types.
type Op uint8

const (
	// OpSubmit records a job accepted into the queue: ID, Seq, Tenant,
	// Priority and the raw spec bytes.
	OpSubmit Op = 1
	// OpAdmit records a job booking admission budget and starting to
	// execute: ID and Demand. A job with OpAdmit but no OpComplete at
	// replay time was in flight when the daemon died.
	OpAdmit Op = 2
	// OpComplete records a terminal state: ID, Status ("done"/"failed")
	// and Error.
	OpComplete Op = 3
	// OpCancel records a cancellation request for a queued job.
	OpCancel Op = 4
	// OpMark carries the job-sequence high-water mark into compacted
	// segments so restarted daemons never reuse an ID.
	OpMark Op = 5
	// OpGap is the first record of a segment opened by a degraded-mode
	// re-arm. It tells replay the extent of the fault window it closes:
	// Demand holds the durable (acknowledged) byte length of the
	// immediately preceding segment — everything past that offset was
	// written to a poisoned fd whose fsync failed and must be discarded —
	// Seq carries the high-water mark across the gap, and Error records
	// the fault that opened the window.
	OpGap Op = 6
)

func (op Op) valid() bool { return op >= OpSubmit && op <= OpGap }

// String names the op for logs and tests.
func (op Op) String() string {
	switch op {
	case OpSubmit:
		return "submit"
	case OpAdmit:
		return "admit"
	case OpComplete:
		return "complete"
	case OpCancel:
		return "cancel"
	case OpMark:
		return "mark"
	case OpGap:
		return "gap"
	}
	return fmt.Sprintf("op(%d)", uint8(op))
}

// Record is one journal entry. Fields irrelevant to an op are left zero
// (and encode to a few bytes).
type Record struct {
	Op       Op
	Seq      uint64 // job sequence number (submit/mark)
	ID       string
	Tenant   string
	Priority string
	Demand   int64  // admitted budget units (admit)
	Status   string // terminal status (complete)
	Error    string // terminal error (complete)
	Spec     []byte // raw job-spec JSON (submit), opaque to the journal
}

// Encoding limits. A spec is a few hundred bytes of JSON; anything near
// these caps is garbage and is rejected before it can poison the log.
const (
	maxFieldBytes  = 1 << 10
	maxRecordBytes = 1 << 20
	recVersion     = 1
	frameHdrBytes  = 8 // 4B payload length + 4B CRC-32C

	// MaxSpecBytes is the largest Spec payload EncodeRecord accepts.
	// Callers that validate request bodies before journaling them should
	// enforce the same cap, so a spec that passed validation can never
	// fail to journal.
	MaxSpecBytes = maxRecordBytes / 2
	// MaxFieldBytes is the per-string-field cap (ID, Tenant, Priority,
	// Status, Error). Callers must truncate free-form text (error
	// messages) to this before journaling.
	MaxFieldBytes = maxFieldBytes
)

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// Decode errors. ErrTruncated means the buffer ends mid-record — expected
// at the tail of the newest segment after a crash; ErrCorrupt means the
// bytes are structurally wrong or fail their checksum.
var (
	ErrTruncated = errors.New("journal: truncated record")
	ErrCorrupt   = errors.New("journal: corrupt record")
)

// ErrDegraded wraps every Append error after an I/O fault has poisoned
// the active segment. A failed fsync says nothing about which earlier
// pages reached disk (the kernel may mark dirty pages clean on error), so
// the journal never writes to that fd again; it stays degraded — every
// Append failing fast with this error — until Rearm rotates onto a fresh
// segment. Callers match it with errors.Is.
var ErrDegraded = errors.New("journal: degraded")

func putStr(b []byte, s string) []byte {
	b = binary.AppendUvarint(b, uint64(len(s)))
	return append(b, s...)
}

// EncodeRecord frames r: [len][crc32c][payload]. Panics only on records
// violating the documented field caps (a programming error, not input).
func EncodeRecord(r Record) ([]byte, error) {
	if !r.Op.valid() {
		return nil, fmt.Errorf("journal: encode: invalid op %d", r.Op)
	}
	for name, s := range map[string]string{
		"id": r.ID, "tenant": r.Tenant, "priority": r.Priority,
		"status": r.Status, "error": r.Error,
	} {
		if len(s) > maxFieldBytes {
			return nil, fmt.Errorf("journal: encode: %s field %d bytes exceeds cap %d", name, len(s), maxFieldBytes)
		}
	}
	if len(r.Spec) > MaxSpecBytes {
		return nil, fmt.Errorf("journal: encode: spec %d bytes exceeds cap %d", len(r.Spec), MaxSpecBytes)
	}
	p := make([]byte, 0, 64+len(r.Spec))
	p = append(p, recVersion, byte(r.Op))
	p = binary.AppendUvarint(p, r.Seq)
	p = binary.AppendUvarint(p, uint64(r.Demand))
	p = putStr(p, r.ID)
	p = putStr(p, r.Tenant)
	p = putStr(p, r.Priority)
	p = putStr(p, r.Status)
	p = putStr(p, r.Error)
	p = binary.AppendUvarint(p, uint64(len(r.Spec)))
	p = append(p, r.Spec...)

	out := make([]byte, frameHdrBytes, frameHdrBytes+len(p))
	binary.LittleEndian.PutUint32(out[0:4], uint32(len(p)))
	binary.LittleEndian.PutUint32(out[4:8], crc32.Checksum(p, crcTable))
	return append(out, p...), nil
}

// byteCursor walks a payload, flagging overruns as corruption.
type byteCursor struct {
	b   []byte
	off int
	err error
}

func (c *byteCursor) uvarint() uint64 {
	if c.err != nil {
		return 0
	}
	v, n := binary.Uvarint(c.b[c.off:])
	if n <= 0 {
		c.err = ErrCorrupt
		return 0
	}
	c.off += n
	return v
}

func (c *byteCursor) str() string {
	n := c.uvarint()
	if c.err != nil {
		return ""
	}
	if n > maxFieldBytes || c.off+int(n) > len(c.b) {
		c.err = ErrCorrupt
		return ""
	}
	s := string(c.b[c.off : c.off+int(n)])
	c.off += int(n)
	return s
}

// DecodeRecord decodes the first frame in b, returning the record and the
// number of bytes consumed. It never panics on any input: the outcomes
// are a valid record, ErrTruncated (b ends mid-frame) or ErrCorrupt.
func DecodeRecord(b []byte) (Record, int, error) {
	if len(b) < frameHdrBytes {
		return Record{}, 0, ErrTruncated
	}
	plen := binary.LittleEndian.Uint32(b[0:4])
	if plen < 2 || plen > maxRecordBytes {
		return Record{}, 0, ErrCorrupt
	}
	if len(b) < frameHdrBytes+int(plen) {
		return Record{}, 0, ErrTruncated
	}
	payload := b[frameHdrBytes : frameHdrBytes+int(plen)]
	if crc32.Checksum(payload, crcTable) != binary.LittleEndian.Uint32(b[4:8]) {
		return Record{}, 0, ErrCorrupt
	}
	if payload[0] != recVersion {
		return Record{}, 0, fmt.Errorf("%w: unknown version %d", ErrCorrupt, payload[0])
	}
	r := Record{Op: Op(payload[1])}
	if !r.Op.valid() {
		return Record{}, 0, fmt.Errorf("%w: unknown op %d", ErrCorrupt, payload[1])
	}
	c := &byteCursor{b: payload, off: 2}
	r.Seq = c.uvarint()
	r.Demand = int64(c.uvarint())
	r.ID = c.str()
	r.Tenant = c.str()
	r.Priority = c.str()
	r.Status = c.str()
	r.Error = c.str()
	specLen := c.uvarint()
	if c.err == nil {
		if specLen > MaxSpecBytes || c.off+int(specLen) > len(c.b) {
			c.err = ErrCorrupt
		} else if specLen > 0 {
			r.Spec = append([]byte(nil), c.b[c.off:c.off+int(specLen)]...)
			c.off += int(specLen)
		}
	}
	if c.err != nil {
		return Record{}, 0, c.err
	}
	if c.off != len(payload) {
		// Trailing garbage inside a checksummed payload means the encoder
		// and decoder disagree — corruption, not slack.
		return Record{}, 0, fmt.Errorf("%w: %d trailing payload bytes", ErrCorrupt, len(payload)-c.off)
	}
	return r, frameHdrBytes + int(plen), nil
}

// Options configures a Journal.
type Options struct {
	// MaxSegmentBytes triggers compaction when the active segment outgrows
	// it (default 1 MiB; minimum 4 KiB).
	MaxSegmentBytes int64
	// NoSync skips the per-append fsync. Tests and benchmarks only: a
	// production journal without fsync can acknowledge records a crash
	// then loses.
	NoSync bool
	// FS is the filesystem seam; nil means the real OS. Fault-injection
	// tests pass an iofault.FaultFS here.
	FS iofault.FS
}

// Stats reports journal health.
type Stats struct {
	Segments       int   // segment files on disk
	Records        int64 // records appended or replayed this session
	TruncatedBytes int64 // torn-tail bytes discarded at Open
	Compactions    int64 // segment compactions this session
	LiveJobs       int   // non-terminal jobs currently tracked
	ActiveBytes    int64 // size of the active segment

	Degraded        bool   // an I/O fault poisoned the active segment
	DegradedCause   string // fault that opened the current/last window
	Rearms          int64  // successful degraded→durable recoveries
	RearmFailures   int64  // failed Rearm attempts
	CompactFailures int64  // compactions aborted by I/O errors
	CleanupErrors   int64  // post-publish close/remove errors (non-fatal)
	GapRecords      int64  // OpGap records written this session
	SuspectBytes    int64  // unacknowledged bytes discarded at Open
}

// liveJob retains the encoded frames needed to re-materialize one
// non-terminal job into a compacted segment.
type liveJob struct {
	seq    uint64
	frames [][]byte
	bytes  int64
}

// Journal is an open journal directory. Safe for concurrent Append.
type Journal struct {
	dir  string
	opts Options
	fs   iofault.FS

	mu       sync.Mutex
	f        iofault.File        // guarded-by: mu
	seg      int                 // guarded-by: mu
	segBytes int64               // guarded-by: mu
	highSeq  uint64              // guarded-by: mu
	live     map[string]*liveJob // guarded-by: mu
	liveByte int64               // guarded-by: mu
	stats    Stats               // guarded-by: mu
	closed   bool                // guarded-by: mu

	// Degraded-mode state. ackedBytes is the durable prefix of the active
	// segment: it advances only after a successful write+fsync, so when a
	// fault poisons the segment it is exactly the offset past which bytes
	// are suspect — the extent the re-arm's OpGap record carries.
	degraded      bool  // guarded-by: mu
	degradedCause error // guarded-by: mu
	ackedBytes    int64 // guarded-by: mu
	// compactAfter backs off compaction retries after an I/O failure:
	// no new attempt until the active segment grows past it.
	compactAfter int64 // guarded-by: mu
}

// segName formats a segment file name; the zero-padded number keeps
// lexicographic and numeric order identical.
func segName(n int) string { return fmt.Sprintf("wal-%08d.log", n) }

func parseSegName(name string) (int, bool) {
	var n int
	if _, err := fmt.Sscanf(name, "wal-%08d.log", &n); err != nil || segName(n) != name {
		return 0, false
	}
	return n, true
}

// Replay is the outcome of reading a journal directory.
type Replay struct {
	// Records holds every decoded record in append order.
	Records []Record
	// TruncatedBytes counts torn-tail bytes discarded from the newest
	// segment (zero on a clean shutdown).
	TruncatedBytes int64
	// SuspectBytes counts bytes discarded because an OpGap record capped a
	// poisoned segment at its acknowledged extent: they were written to an
	// fd whose fsync later failed, so no client was ever told they were
	// durable.
	SuspectBytes int64
}

// loadedSeg is one segment read into memory during replay, after gap caps
// have been applied.
type loadedSeg struct {
	n    int
	data []byte
}

// loadSegments reads every segment and applies OpGap caps: a segment
// whose first record is OpGap was opened by a re-arm after the fd of the
// segment named in the record's ID field was poisoned, and the record's
// Demand field is that segment's durable byte extent. Bytes past that
// offset were never acknowledged — discard them (and, when persist is
// set, truncate them off on disk so a later replay sees the same log). A
// poisoned segment SHORTER than its acknowledged extent means durable
// data vanished: fail loudly.
func loadSegments(fs iofault.FS, dir string, segs []int, persist bool) ([]loadedSeg, int64, error) {
	loaded := make([]loadedSeg, 0, len(segs))
	byName := make(map[string]int, len(segs))
	for _, seg := range segs {
		data, err := fs.ReadFile(filepath.Join(dir, segName(seg)))
		if err != nil {
			return nil, 0, fmt.Errorf("journal: %w", err)
		}
		byName[segName(seg)] = len(loaded)
		loaded = append(loaded, loadedSeg{n: seg, data: data})
	}
	var suspect int64
	for i := 1; i < len(loaded); i++ {
		rec0, _, err0 := DecodeRecord(loaded[i].data)
		if err0 != nil || rec0.Op != OpGap {
			continue
		}
		target, ok := byName[rec0.ID]
		if !ok || target >= i {
			// The poisoned segment is gone — an emergency compaction or a
			// later compaction root already superseded it.
			continue
		}
		acked := rec0.Demand
		if int64(len(loaded[target].data)) < acked {
			return nil, 0, fmt.Errorf("journal: segment %s is %d bytes but %d were acknowledged durable before the fault window; refusing to replay a log that lost acknowledged records",
				rec0.ID, len(loaded[target].data), acked)
		}
		if int64(len(loaded[target].data)) == acked {
			continue
		}
		suspect += int64(len(loaded[target].data)) - acked
		loaded[target].data = loaded[target].data[:acked]
		if persist {
			if err := fs.Truncate(filepath.Join(dir, rec0.ID), acked); err != nil {
				return nil, 0, fmt.Errorf("journal: truncating fault window: %w", err)
			}
		}
	}
	return loaded, suspect, nil
}

// Open replays the journal in dir (creating it if absent) and opens it
// for appending. Damage anywhere but the newest segment's tail or a
// gap-capped fault window is an error — the caller must not come up on a
// silently incomplete log.
func Open(dir string, opts Options) (*Journal, *Replay, error) {
	if opts.MaxSegmentBytes == 0 {
		opts.MaxSegmentBytes = 1 << 20
	}
	if opts.MaxSegmentBytes < 4<<10 {
		opts.MaxSegmentBytes = 4 << 10
	}
	fs := opts.FS
	if fs == nil {
		fs = iofault.OS{}
	}
	if err := fs.MkdirAll(dir, 0o755); err != nil {
		return nil, nil, fmt.Errorf("journal: %w", err)
	}
	// A compaction interrupted before its fsync+rename leaves a .tmp file;
	// it is incomplete by construction (the rename is what publishes it),
	// so discard it and keep replaying from the segments it would have
	// replaced.
	if err := removeTempSegments(fs, dir); err != nil {
		return nil, nil, err
	}
	segs, err := listSegments(fs, dir)
	if err != nil {
		return nil, nil, err
	}
	j := &Journal{dir: dir, opts: opts, fs: fs, live: make(map[string]*liveJob)}
	rep := &Replay{}
	loaded, suspect, err := loadSegments(fs, dir, segs, true)
	if err != nil {
		return nil, nil, err
	}
	if suspect > 0 {
		rep.SuspectBytes = suspect
		j.stats.SuspectBytes = suspect
	}
	for i, ls := range loaded {
		seg, data := ls.n, ls.data
		last := i == len(loaded)-1
		// A segment that BEGINS with an OpMark is a compaction root: it
		// was published (renamed into place) only after holding a complete,
		// fsync'd copy of every live job, so any older segment is a
		// leftover of a crash between that rename and the old segment's
		// removal. Replaying both would duplicate every live job's records
		// — reset the state accumulated so far and finish the deletion the
		// crash interrupted. (An OpMark appended mid-segment is just the
		// high-water record and does not reset anything.)
		if i > 0 {
			if rec0, _, err0 := DecodeRecord(data); err0 == nil && rec0.Op == OpMark {
				for _, old := range loaded[:i] {
					if err := fs.Remove(filepath.Join(dir, segName(old.n))); err != nil {
						return nil, nil, fmt.Errorf("journal: removing stale pre-compaction segment: %w", err)
					}
				}
				rep.Records = rep.Records[:0]
				j.live = make(map[string]*liveJob)
				j.liveByte = 0
				j.highSeq = 0
				j.stats.Records = 0
			}
		}
		off := 0
		for off < len(data) {
			rec, n, err := DecodeRecord(data[off:])
			if err != nil {
				if !last {
					return nil, nil, fmt.Errorf("journal: segment %s damaged at offset %d (%v); refusing to replay past a hole", segName(seg), off, err)
				}
				// Torn tail of the newest segment: the crash interrupted an
				// append. Truncate to the last whole record and carry on.
				rep.TruncatedBytes = int64(len(data) - off)
				j.stats.TruncatedBytes = rep.TruncatedBytes
				if err := fs.Truncate(filepath.Join(dir, segName(seg)), int64(off)); err != nil {
					return nil, nil, fmt.Errorf("journal: truncating torn tail: %w", err)
				}
				data = data[:off]
				break
			}
			off += n
			rep.Records = append(rep.Records, rec)
			j.stats.Records++
			j.applyLocked(rec, data[off-n:off])
		}
		if last {
			j.seg = seg
			j.segBytes = int64(len(data))
		}
	}
	if len(loaded) == 0 {
		j.seg = 1
	}
	path := filepath.Join(dir, segName(j.seg))
	j.f, err = fs.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, nil, fmt.Errorf("journal: %w", err)
	}
	j.ackedBytes = j.segBytes
	return j, rep, nil
}

func listSegments(fs iofault.FS, dir string) ([]int, error) {
	ents, err := fs.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("journal: %w", err)
	}
	var segs []int
	for _, e := range ents {
		if n, ok := parseSegName(e.Name()); ok {
			segs = append(segs, n)
		}
	}
	sort.Ints(segs)
	return segs, nil
}

// tmpSuffix marks a compacted segment still being written; only the
// rename after fsync makes it a real segment.
const tmpSuffix = ".tmp"

// removeTempSegments deletes half-written compaction outputs.
func removeTempSegments(fs iofault.FS, dir string) error {
	ents, err := fs.ReadDir(dir)
	if err != nil {
		return fmt.Errorf("journal: %w", err)
	}
	for _, e := range ents {
		name := e.Name()
		if !strings.HasSuffix(name, tmpSuffix) {
			continue
		}
		if _, ok := parseSegName(strings.TrimSuffix(name, tmpSuffix)); !ok {
			continue
		}
		if err := fs.Remove(filepath.Join(dir, name)); err != nil {
			return fmt.Errorf("journal: removing interrupted compaction %s: %w", name, err)
		}
	}
	return nil
}

// applyLocked folds one record into the live-job and high-water state.
func (j *Journal) applyLocked(rec Record, frame []byte) {
	if rec.Seq > j.highSeq {
		j.highSeq = rec.Seq
	}
	switch rec.Op {
	case OpSubmit:
		// Belt and braces: a duplicate submit for a live ID (which the
		// compaction-root handling in Open should already have prevented)
		// replaces rather than double-counts the job.
		if old, ok := j.live[rec.ID]; ok {
			j.liveByte -= old.bytes
		}
		lj := &liveJob{seq: rec.Seq}
		lj.frames = append(lj.frames, append([]byte(nil), frame...))
		lj.bytes = int64(len(frame))
		j.live[rec.ID] = lj
		j.liveByte += lj.bytes
	case OpAdmit, OpCancel:
		if lj, ok := j.live[rec.ID]; ok {
			lj.frames = append(lj.frames, append([]byte(nil), frame...))
			lj.bytes += int64(len(frame))
			j.liveByte += int64(len(frame))
		}
	case OpComplete:
		if lj, ok := j.live[rec.ID]; ok {
			j.liveByte -= lj.bytes
			delete(j.live, rec.ID)
		}
	}
}

// Append encodes, writes and (unless NoSync) fsyncs one record, then
// compacts if the active segment outgrew its bound. The record is durable
// when Append returns nil. Any I/O failure on the append path poisons the
// active segment — the fd is closed and never written again (a failed
// fsync may have silently dropped earlier dirty pages) — and Append
// returns an error matching ErrDegraded, as does every subsequent Append
// until Rearm succeeds.
func (j *Journal) Append(rec Record) error {
	frame, err := EncodeRecord(rec)
	if err != nil {
		return err
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return errors.New("journal: closed")
	}
	if j.degraded {
		return fmt.Errorf("%w: %v", ErrDegraded, j.degradedCause)
	}
	if _, err := j.f.Write(frame); err != nil {
		j.poisonLocked(fmt.Errorf("append: %w", err))
		return fmt.Errorf("%w: %v", ErrDegraded, j.degradedCause)
	}
	if !j.opts.NoSync {
		if err := j.f.Sync(); err != nil {
			j.poisonLocked(fmt.Errorf("fsync: %w", err))
			return fmt.Errorf("%w: %v", ErrDegraded, j.degradedCause)
		}
	}
	j.segBytes += int64(len(frame))
	j.ackedBytes = j.segBytes
	j.stats.Records++
	j.applyLocked(rec, frame)
	// Compact when the segment is oversized and mostly dead weight —
	// compacting a segment that is all live jobs would thrash. A failed
	// compaction never fails the append (the record above is already
	// durable); it is retried once the segment grows past the backoff
	// watermark.
	if j.segBytes >= j.opts.MaxSegmentBytes && j.liveByte < j.segBytes/2 && j.segBytes >= j.compactAfter {
		if err := j.compactLocked(); err != nil {
			j.stats.CompactFailures++
			j.compactAfter = j.segBytes + j.opts.MaxSegmentBytes/4
		} else {
			j.compactAfter = 0
		}
	}
	return nil
}

// poisonLocked moves the journal into degraded mode: the active segment's
// fd is closed immediately and never reused. ackedBytes is left at the
// last acknowledged extent — the value a re-arm's OpGap record publishes
// so replay discards everything past it.
func (j *Journal) poisonLocked(cause error) {
	if j.degraded {
		return
	}
	j.degraded = true
	j.degradedCause = cause
	j.stats.Degraded = true
	j.stats.DegradedCause = cause.Error()
	if j.f != nil {
		j.f.Close() // fd is suspect; release it regardless of the result
		j.f = nil
	}
}

// Degraded reports whether the journal is refusing appends, and why.
func (j *Journal) Degraded() (bool, error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.degraded, j.degradedCause
}

// Rearm attempts to leave degraded mode. For ENOSPC it first tries an
// emergency compaction — the live set is small, and publishing a
// compaction root deletes every older segment, reclaiming the dead weight
// that filled the disk. Otherwise (or if that fails) it rotates onto a
// fresh segment whose first record is an OpGap marker carrying the
// poisoned segment's durable extent, so replay knows exactly where the
// fault window starts. Returns nil when the journal is durable again;
// callers own the retry/backoff policy.
func (j *Journal) Rearm() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return errors.New("journal: closed")
	}
	if !j.degraded {
		return nil
	}
	if errors.Is(j.degradedCause, syscall.ENOSPC) {
		if err := j.compactLocked(); err == nil {
			j.rearmedLocked()
			return nil
		}
	}
	if err := j.rotateGapLocked(); err != nil {
		j.stats.RearmFailures++
		return err
	}
	j.rearmedLocked()
	return nil
}

func (j *Journal) rearmedLocked() {
	j.degraded = false
	j.degradedCause = nil
	j.stats.Degraded = false
	j.stats.Rearms++
}

// rotateGapLocked opens a fresh segment and makes its first record an
// OpGap marker: Seq carries the high-water mark, Demand the poisoned
// predecessor's durable extent, Error the fault. Only a fully written and
// fsync'd gap segment is adopted; any failure leaves the journal degraded
// with no state change.
func (j *Journal) rotateGapLocked() error {
	cause := ""
	if j.degradedCause != nil {
		cause = j.degradedCause.Error()
		if len(cause) > MaxFieldBytes {
			cause = cause[:MaxFieldBytes]
		}
	}
	gap, err := EncodeRecord(Record{
		Op:     OpGap,
		Seq:    j.highSeq,
		ID:     segName(j.seg), // the poisoned segment this gap caps
		Demand: j.ackedBytes,
		Error:  cause,
	})
	if err != nil {
		return err
	}
	// O_EXCL: if a crashed compaction left a published root at the next
	// number, appending the gap there would corrupt its first-record
	// semantics — skip to an unused name instead.
	next := j.seg
	var f iofault.File
	for try := 0; try < 4; try++ {
		next++
		path := filepath.Join(j.dir, segName(next))
		f, err = j.fs.OpenFile(path, os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
		if err == nil {
			break
		}
		if !errors.Is(err, os.ErrExist) {
			return fmt.Errorf("journal: rearm: %w", err)
		}
		f = nil
	}
	if f == nil {
		return fmt.Errorf("journal: rearm: no free segment name after %s", segName(j.seg))
	}
	path := filepath.Join(j.dir, segName(next))
	abort := func(err error) error {
		f.Close()
		j.fs.Remove(path)
		return err
	}
	if _, err := f.Write(gap); err != nil {
		return abort(fmt.Errorf("journal: rearm: %w", err))
	}
	if err := f.Sync(); err != nil {
		return abort(fmt.Errorf("journal: rearm fsync: %w", err))
	}
	// Make the new segment's dir entry durable before acknowledging
	// anything into it.
	if err := j.fs.SyncDir(j.dir); err != nil {
		return abort(fmt.Errorf("journal: rearm dir fsync: %w", err))
	}
	j.f = f
	j.seg = next
	j.segBytes = int64(len(gap))
	j.ackedBytes = j.segBytes
	j.stats.GapRecords++
	j.stats.Records++
	return nil
}

// compactLocked writes a fresh segment holding the high-water mark plus
// every live job's frames, fsyncs it, renames it into place, then removes
// the older segment. The temp-then-rename order is what makes crash
// recovery unambiguous: a published segment starting with OpMark is
// guaranteed complete (Open treats it as a compaction root and drops any
// older segment a crash left behind), while a segment that never got
// renamed is a .tmp file Open simply deletes.
func (j *Journal) compactLocked() error {
	next := j.seg + 1
	path := filepath.Join(j.dir, segName(next))
	tmp := path + tmpSuffix
	f, err := j.fs.OpenFile(tmp, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("journal: compact: %w", err)
	}
	fail := func(err error) error {
		f.Close()
		j.fs.Remove(tmp)
		return err
	}
	var size int64
	mark, err := EncodeRecord(Record{Op: OpMark, Seq: j.highSeq})
	if err != nil {
		return fail(err)
	}
	if _, err := f.Write(mark); err != nil {
		return fail(fmt.Errorf("journal: compact: %w", err))
	}
	size += int64(len(mark))
	ids := make([]string, 0, len(j.live))
	for id := range j.live {
		ids = append(ids, id)
	}
	// Submission order, so replay of a compacted segment re-queues
	// recovered jobs exactly as the original arrival order did.
	sort.Slice(ids, func(a, b int) bool { return j.live[ids[a]].seq < j.live[ids[b]].seq })
	for _, id := range ids {
		for _, frame := range j.live[id].frames {
			if _, err := f.Write(frame); err != nil {
				return fail(fmt.Errorf("journal: compact: %w", err))
			}
			size += int64(len(frame))
		}
	}
	if err := f.Sync(); err != nil {
		return fail(fmt.Errorf("journal: compact fsync: %w", err))
	}
	// Publish. The open fd survives the rename (same inode), so f becomes
	// the active segment file.
	if err := j.fs.Rename(tmp, path); err != nil {
		return fail(fmt.Errorf("journal: compact publish: %w", err))
	}
	// The rename is not durable until the directory is fsync'd; until then
	// a crash could resurrect the .tmp name, and Open deletes .tmp files —
	// so nothing may be acknowledged into the new segment yet. A failed
	// dir fsync therefore rolls the publish back and keeps the old
	// segment. If even the rollback fails, the directory holds a
	// compaction root we are not writing to next to a segment we are —
	// replaying that after more appends would drop them — so the only safe
	// exit is to poison the journal and let Rearm rebuild on fresh state.
	if err := j.fs.SyncDir(j.dir); err != nil {
		f.Close()
		if rerr := j.fs.Remove(path); rerr != nil {
			j.poisonLocked(fmt.Errorf("compact publish fsync: %v; rollback: %w", err, rerr))
			return fmt.Errorf("%w: %v", ErrDegraded, j.degradedCause)
		}
		return fmt.Errorf("journal: compact publish fsync: %w", err)
	}
	old := j.f
	j.f, j.seg, j.segBytes = f, next, size
	j.ackedBytes = size
	j.stats.Compactions++
	// Post-publish cleanup. The root is durable, so these failures cannot
	// lose records — Open's compaction-root handling deletes any stragglers
	// — but they are counted, not swallowed: a close error on the old
	// segment or an undeletable file is an early sign of the same disk
	// faults that poison appends.
	if old != nil {
		if err := old.Close(); err != nil {
			j.stats.CleanupErrors++
		}
	}
	// Remove every older segment, not just the immediate predecessor:
	// degraded-mode rotations can leave several capped segments behind,
	// and the root supersedes them all.
	if segs, err := listSegments(j.fs, j.dir); err == nil {
		for _, s := range segs {
			if s >= next {
				continue
			}
			if err := j.fs.Remove(filepath.Join(j.dir, segName(s))); err != nil {
				j.stats.CleanupErrors++
			}
		}
	} else {
		j.stats.CleanupErrors++
	}
	// Make the deletions durable (best effort: if the old segments do
	// survive a crash, Open's compaction-root handling discards them).
	if err := j.fs.SyncDir(j.dir); err != nil {
		j.stats.CleanupErrors++
	}
	return nil
}

// HighSeq returns the largest job sequence number ever journaled — the
// floor for ID allocation after a restart.
func (j *Journal) HighSeq() uint64 {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.highSeq
}

// Stats snapshots journal health counters.
func (j *Journal) Stats() Stats {
	j.mu.Lock()
	defer j.mu.Unlock()
	st := j.stats
	st.LiveJobs = len(j.live)
	st.ActiveBytes = j.segBytes
	segs, err := listSegments(j.fs, j.dir)
	if err == nil {
		st.Segments = len(segs)
	}
	return st
}

// Close fsyncs and closes the active segment. Appends after Close fail.
// Closing a degraded journal is a no-op on the fd (poisoning already
// closed it) but still latches the closed state.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return nil
	}
	j.closed = true
	if j.f == nil {
		return nil
	}
	if !j.opts.NoSync {
		if err := j.f.Sync(); err != nil {
			j.f.Close()
			return fmt.Errorf("journal: close: %w", err)
		}
	}
	return j.f.Close()
}

// ReplayDir reads a journal directory without opening it for appends —
// the read-only half of Open, for tools and tests that inspect a log
// (e.g. asserting what a crashed daemon had acknowledged). Unlike Open it
// modifies nothing: a torn tail is reported, not truncated.
func ReplayDir(dir string) (*Replay, error) {
	fs := iofault.FS(iofault.OS{})
	segs, err := listSegments(fs, dir)
	if err != nil {
		return nil, err
	}
	loaded, suspect, err := loadSegments(fs, dir, segs, false)
	if err != nil {
		return nil, err
	}
	rep := &Replay{SuspectBytes: suspect}
	for i, ls := range loaded {
		data := ls.data
		// Same compaction-root rule as Open, minus the cleanup: a segment
		// beginning with OpMark supersedes everything before it.
		if i > 0 {
			if rec0, _, err0 := DecodeRecord(data); err0 == nil && rec0.Op == OpMark {
				rep.Records = rep.Records[:0]
			}
		}
		off := 0
		for off < len(data) {
			rec, n, err := DecodeRecord(data[off:])
			if err != nil {
				if i != len(loaded)-1 {
					return nil, fmt.Errorf("journal: segment %s damaged at offset %d (%v)", segName(ls.n), off, err)
				}
				rep.TruncatedBytes = int64(len(data) - off)
				break
			}
			off += n
			rep.Records = append(rep.Records, rec)
		}
	}
	return rep, nil
}

// WriteTo streams a human-readable dump of a replay (debugging aid).
func (r *Replay) WriteTo(w io.Writer) (int64, error) {
	var total int64
	for _, rec := range r.Records {
		n, err := fmt.Fprintf(w, "%s seq=%d id=%s tenant=%s prio=%s demand=%d status=%s err=%q spec=%dB\n",
			rec.Op, rec.Seq, rec.ID, rec.Tenant, rec.Priority, rec.Demand, rec.Status, rec.Error, len(rec.Spec))
		total += int64(n)
		if err != nil {
			return total, err
		}
	}
	if r.TruncatedBytes > 0 {
		n, err := fmt.Fprintf(w, "torn tail: %d bytes truncated\n", r.TruncatedBytes)
		total += int64(n)
		if err != nil {
			return total, err
		}
	}
	return total, nil
}
