package journal

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

func sampleRecords() []Record {
	return []Record{
		{Op: OpSubmit, Seq: 1, ID: "j0001", Tenant: "acme", Priority: "high", Spec: []byte(`{"kind":"chol","n":120}`)},
		{Op: OpAdmit, Seq: 0, ID: "j0001", Demand: 512},
		{Op: OpSubmit, Seq: 2, ID: "j0002", Tenant: "dot", Priority: "low", Spec: []byte(`{"kind":"lu"}`)},
		{Op: OpCancel, ID: "j0002"},
		{Op: OpComplete, ID: "j0001", Status: "done"},
		{Op: OpComplete, ID: "j0002", Status: "failed", Error: "cancelled"},
		{Op: OpMark, Seq: 7},
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	for _, rec := range sampleRecords() {
		b, err := EncodeRecord(rec)
		if err != nil {
			t.Fatalf("%v: %v", rec.Op, err)
		}
		got, n, err := DecodeRecord(b)
		if err != nil {
			t.Fatalf("%v: decode: %v", rec.Op, err)
		}
		if n != len(b) {
			t.Fatalf("%v: consumed %d of %d bytes", rec.Op, n, len(b))
		}
		if !reflect.DeepEqual(got, rec) {
			t.Fatalf("%v: round trip mismatch:\n got %+v\nwant %+v", rec.Op, got, rec)
		}
	}
}

func TestEncodeRejectsBadRecords(t *testing.T) {
	if _, err := EncodeRecord(Record{Op: 0}); err == nil {
		t.Error("op 0 must be rejected")
	}
	if _, err := EncodeRecord(Record{Op: 99}); err == nil {
		t.Error("unknown op must be rejected")
	}
	if _, err := EncodeRecord(Record{Op: OpSubmit, ID: strings.Repeat("x", maxFieldBytes+1)}); err == nil {
		t.Error("oversized field must be rejected")
	}
	if _, err := EncodeRecord(Record{Op: OpSubmit, Spec: make([]byte, maxRecordBytes)}); err == nil {
		t.Error("oversized spec must be rejected")
	}
}

// TestDecodeTruncationAndCorruption exercises every cut point of a valid
// frame (truncation) and every flipped byte (corruption): the decoder
// must return the sentinel errors, never a wrong record, never panic.
func TestDecodeTruncationAndCorruption(t *testing.T) {
	rec := sampleRecords()[0]
	b, err := EncodeRecord(rec)
	if err != nil {
		t.Fatal(err)
	}
	for cut := 0; cut < len(b); cut++ {
		if _, _, err := DecodeRecord(b[:cut]); !errors.Is(err, ErrTruncated) && !errors.Is(err, ErrCorrupt) {
			t.Fatalf("cut at %d: got %v, want truncated/corrupt", cut, err)
		}
	}
	for i := 0; i < len(b); i++ {
		mut := append([]byte(nil), b...)
		mut[i] ^= 0xFF
		got, _, err := DecodeRecord(mut)
		if err == nil && !reflect.DeepEqual(got, rec) {
			// A flip in the length prefix can widen the frame so the CRC no
			// longer matches — any error is fine; a silently different
			// record is not.
			t.Fatalf("flip at %d: decoded a different record without error: %+v", i, got)
		}
	}
}

func TestAppendReplay(t *testing.T) {
	dir := t.TempDir()
	j, rep, err := Open(dir, Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Records) != 0 {
		t.Fatalf("fresh journal replayed %d records", len(rep.Records))
	}
	want := sampleRecords()
	for _, rec := range want {
		if err := j.Append(rec); err != nil {
			t.Fatal(err)
		}
	}
	if hs := j.HighSeq(); hs != 7 {
		t.Fatalf("HighSeq=%d, want 7 (from the mark record)", hs)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	if err := j.Append(want[0]); err == nil {
		t.Fatal("append after Close must fail")
	}

	j2, rep2, err := Open(dir, Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if !reflect.DeepEqual(rep2.Records, want) {
		t.Fatalf("replay mismatch:\n got %+v\nwant %+v", rep2.Records, want)
	}
	if rep2.TruncatedBytes != 0 {
		t.Fatalf("clean journal reported %d truncated bytes", rep2.TruncatedBytes)
	}
	if hs := j2.HighSeq(); hs != 7 {
		t.Fatalf("replayed HighSeq=%d, want 7", hs)
	}
}

// TestTornTailTruncated simulates a crash mid-append: every prefix of a
// valid log replays a prefix of its records, and Open truncates the torn
// bytes so the journal is appendable again.
func TestTornTailTruncated(t *testing.T) {
	dir := t.TempDir()
	j, _, err := Open(dir, Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	recs := sampleRecords()
	var frames [][]byte
	for _, rec := range recs {
		frame, err := EncodeRecord(rec)
		if err != nil {
			t.Fatal(err)
		}
		frames = append(frames, frame)
		if err := j.Append(rec); err != nil {
			t.Fatal(err)
		}
	}
	j.Close()
	full, err := os.ReadFile(filepath.Join(dir, segName(1)))
	if err != nil {
		t.Fatal(err)
	}

	for cut := 0; cut <= len(full); cut++ {
		sub := t.TempDir()
		if err := os.WriteFile(filepath.Join(sub, segName(1)), full[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		j2, rep, err := Open(sub, Options{NoSync: true})
		if err != nil {
			t.Fatalf("cut %d: %v", cut, err)
		}
		// Count how many whole frames fit in the prefix.
		whole, off := 0, 0
		for whole < len(frames) && off+len(frames[whole]) <= cut {
			off += len(frames[whole])
			whole++
		}
		if len(rep.Records) != whole {
			t.Fatalf("cut %d: replayed %d records, want %d", cut, len(rep.Records), whole)
		}
		if want := int64(cut - off); rep.TruncatedBytes != want {
			t.Fatalf("cut %d: truncated %d bytes, want %d", cut, rep.TruncatedBytes, want)
		}
		// The journal must be appendable after truncation, and the new
		// record must land where the torn bytes were.
		if err := j2.Append(Record{Op: OpMark, Seq: 99}); err != nil {
			t.Fatalf("cut %d: append after truncation: %v", cut, err)
		}
		j2.Close()
		rep2, err := ReplayDir(sub)
		if err != nil {
			t.Fatalf("cut %d: re-replay: %v", cut, err)
		}
		if len(rep2.Records) != whole+1 || rep2.Records[whole].Seq != 99 {
			t.Fatalf("cut %d: re-replay got %d records", cut, len(rep2.Records))
		}
	}
}

// TestMidJournalCorruptionRefused: damage before the newest segment's
// tail must fail Open loudly, not silently drop records.
func TestMidJournalCorruptionRefused(t *testing.T) {
	dir := t.TempDir()
	j, _, err := Open(dir, Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, rec := range sampleRecords() {
		if err := j.Append(rec); err != nil {
			t.Fatal(err)
		}
	}
	j.Close()
	path := filepath.Join(dir, segName(1))
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[10] ^= 0xFF // inside the first record, not the tail
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	// Corruption in the last (only) segment reads as a torn tail — but a
	// second segment after it makes the damage mid-journal.
	if err := os.WriteFile(filepath.Join(dir, segName(2)), nil, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := Open(dir, Options{NoSync: true}); err == nil {
		t.Fatal("Open must refuse a journal with a mid-log hole")
	}
	if _, err := ReplayDir(dir); err == nil {
		t.Fatal("ReplayDir must refuse a journal with a mid-log hole")
	}
}

// TestCompaction drives the journal past its segment bound with mostly
// terminal jobs and checks that compaction keeps live jobs and the ID
// high-water mark while old segments are deleted.
func TestCompaction(t *testing.T) {
	dir := t.TempDir()
	j, _, err := Open(dir, Options{NoSync: true, MaxSegmentBytes: 4 << 10})
	if err != nil {
		t.Fatal(err)
	}
	spec := []byte(`{"kind":"chol","n":240,"seed":12345}`)
	var seq uint64
	submit := func(id, tenant string) {
		seq++
		if err := j.Append(Record{Op: OpSubmit, Seq: seq, ID: id, Tenant: tenant, Priority: "normal", Spec: spec}); err != nil {
			t.Fatal(err)
		}
	}
	// Two live jobs (one admitted), then a flood of terminal ones.
	submit("live-queued", "acme")
	submit("live-running", "dot")
	if err := j.Append(Record{Op: OpAdmit, ID: "live-running", Demand: 64}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 400; i++ {
		id := "dead-" + string(rune('a'+i%26)) + "-" + string(rune('a'+i/26))
		submit(id, "acme")
		if err := j.Append(Record{Op: OpComplete, ID: id, Status: "done"}); err != nil {
			t.Fatal(err)
		}
	}
	st := j.Stats()
	if st.Compactions == 0 {
		t.Fatal("expected at least one compaction")
	}
	if st.Segments != 1 {
		t.Fatalf("Segments=%d after compaction, want 1", st.Segments)
	}
	if st.LiveJobs != 2 {
		t.Fatalf("LiveJobs=%d, want 2", st.LiveJobs)
	}
	high := j.HighSeq()
	j.Close()

	j2, rep, err := Open(dir, Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	// The mark plus the post-compaction records must reconstruct the full
	// ID high-water mark: a restarted daemon can never reuse a job ID.
	if j2.HighSeq() != high {
		t.Fatalf("replayed HighSeq=%d, want %d", j2.HighSeq(), high)
	}
	byID := map[string][]Op{}
	for _, rec := range rep.Records {
		if rec.Op == OpMark {
			continue
		}
		byID[rec.ID] = append(byID[rec.ID], rec.Op)
	}
	for id, want := range map[string][]Op{
		"live-queued":  {OpSubmit},
		"live-running": {OpSubmit, OpAdmit},
	} {
		if !reflect.DeepEqual(byID[id], want) {
			t.Fatalf("%s ops=%v, want %v", id, byID[id], want)
		}
	}
	for id, ops := range byID {
		if id != "live-queued" && id != "live-running" {
			// Any surviving terminal job must be complete — pairs in the
			// active segment's tail that have not been compacted yet.
			if ops[len(ops)-1] != OpComplete {
				t.Fatalf("non-terminal residue for %s: %v", id, ops)
			}
		}
	}
}

// TestCompactionPreservesSubmissionOrder: recovered jobs must replay in
// arrival order even after their records pass through a compaction.
func TestCompactionPreservesSubmissionOrder(t *testing.T) {
	dir := t.TempDir()
	j, _, err := Open(dir, Options{NoSync: true, MaxSegmentBytes: 4 << 10})
	if err != nil {
		t.Fatal(err)
	}
	var seq uint64
	for i := 0; i < 50; i++ {
		seq++
		id := string(rune('a' + i%26))
		if err := j.Append(Record{Op: OpSubmit, Seq: seq, ID: "live" + string(rune('0'+i/10)) + id, Spec: bytes.Repeat([]byte("x"), 200)}); err != nil {
			t.Fatal(err)
		}
	}
	// Force a compaction: dead weight beyond the cap.
	for i := 0; i < 100; i++ {
		seq++
		if err := j.Append(Record{Op: OpSubmit, Seq: seq, ID: "dead", Spec: bytes.Repeat([]byte("y"), 200)}); err != nil {
			t.Fatal(err)
		}
		if err := j.Append(Record{Op: OpComplete, ID: "dead", Status: "done"}); err != nil {
			t.Fatal(err)
		}
	}
	if j.Stats().Compactions == 0 {
		t.Fatal("expected a compaction")
	}
	j.Close()
	rep, err := ReplayDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var last uint64
	for _, rec := range rep.Records {
		if rec.Op != OpSubmit || rec.ID == "dead" {
			continue
		}
		if rec.Seq <= last {
			t.Fatalf("submit order violated: seq %d after %d", rec.Seq, last)
		}
		last = rec.Seq
	}
}

// TestCrashBetweenCompactionAndRemoveReplaysOnce simulates the crash
// window after compactLocked publishes the compacted segment but before
// it removes the old one: both segments are on disk, and the compacted
// one repeats every live job's frames. Open must treat the
// segment-initial OpMark as a compaction root — replaying only from it
// and deleting the stale segment — so no job's records replay twice.
func TestCrashBetweenCompactionAndRemoveReplaysOnce(t *testing.T) {
	dir := t.TempDir()
	frame := func(rec Record) []byte {
		b, err := EncodeRecord(rec)
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	submit := frame(Record{Op: OpSubmit, Seq: 1, ID: "j0001", Tenant: "acme", Priority: "normal", Spec: []byte(`{"kind":"chol"}`)})
	admit := frame(Record{Op: OpAdmit, ID: "j0001", Demand: 64})
	// Segment 1: the pre-compaction log — the live job plus a dead one.
	seg1 := append(append(append([]byte(nil), submit...), admit...),
		append(frame(Record{Op: OpSubmit, Seq: 2, ID: "j0002", Spec: []byte(`{}`)}),
			frame(Record{Op: OpComplete, ID: "j0002", Status: "done"})...)...)
	// Segment 2: exactly what compactLocked publishes — mark + live frames.
	seg2 := append(append(frame(Record{Op: OpMark, Seq: 2}), submit...), admit...)
	if err := os.WriteFile(filepath.Join(dir, segName(1)), seg1, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, segName(2)), seg2, 0o644); err != nil {
		t.Fatal(err)
	}

	for name, replay := range map[string]func() []Record{
		"Open": func() []Record {
			j, rep, err := Open(dir, Options{NoSync: true})
			if err != nil {
				t.Fatal(err)
			}
			defer j.Close()
			if hs := j.HighSeq(); hs != 2 {
				t.Errorf("HighSeq=%d, want 2", hs)
			}
			if st := j.Stats(); st.Segments != 1 || st.LiveJobs != 1 {
				t.Errorf("Segments=%d LiveJobs=%d after root recovery, want 1 and 1", st.Segments, st.LiveJobs)
			}
			if _, err := os.Stat(filepath.Join(dir, segName(1))); !os.IsNotExist(err) {
				t.Errorf("stale pre-compaction segment still on disk (err=%v)", err)
			}
			return rep.Records
		},
		"ReplayDir": func() []Record {
			rep, err := ReplayDir(dir)
			if err != nil {
				t.Fatal(err)
			}
			return rep.Records
		},
	} {
		recs := replay()
		submits := 0
		for _, rec := range recs {
			if rec.Op == OpSubmit && rec.ID == "j0001" {
				submits++
			}
			if rec.ID == "j0002" {
				t.Errorf("%s: terminal job j0002 resurrected from the stale segment", name)
			}
		}
		if submits != 1 {
			t.Errorf("%s: %d OpSubmit records for j0001, want exactly 1", name, submits)
		}
	}
}

// TestCrashDuringCompactionKeepsOldSegment: a compaction that dies before
// its rename leaves only a .tmp file; Open must discard it and replay the
// old segment untouched — the half-written copy must never shadow it.
func TestCrashDuringCompactionKeepsOldSegment(t *testing.T) {
	dir := t.TempDir()
	j, _, err := Open(dir, Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	want := sampleRecords()
	for _, rec := range want {
		if err := j.Append(rec); err != nil {
			t.Fatal(err)
		}
	}
	j.Close()
	// A torn compacted segment: a valid mark, but the live frames that
	// should follow never made it to disk.
	mark, err := EncodeRecord(Record{Op: OpMark, Seq: 7})
	if err != nil {
		t.Fatal(err)
	}
	tmp := filepath.Join(dir, segName(2)+tmpSuffix)
	if err := os.WriteFile(tmp, mark, 0o644); err != nil {
		t.Fatal(err)
	}
	j2, rep, err := Open(dir, Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if !reflect.DeepEqual(rep.Records, want) {
		t.Fatalf("replay after interrupted compaction:\n got %+v\nwant %+v", rep.Records, want)
	}
	if _, err := os.Stat(tmp); !os.IsNotExist(err) {
		t.Fatalf("interrupted compaction tmp file still on disk (err=%v)", err)
	}
}

// TestMidSegmentMarkDoesNotReset: an OpMark appended in the middle of a
// segment is just the high-water record — only a segment-INITIAL mark is
// a compaction root.
func TestMidSegmentMarkDoesNotReset(t *testing.T) {
	dir := t.TempDir()
	j, _, err := Open(dir, Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	want := sampleRecords() // ends with a mid-segment OpMark
	for _, rec := range want {
		if err := j.Append(rec); err != nil {
			t.Fatal(err)
		}
	}
	j.Close()
	rep, err := ReplayDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(rep.Records, want) {
		t.Fatalf("mid-segment mark dropped records:\n got %+v\nwant %+v", rep.Records, want)
	}
}

func TestReplayDump(t *testing.T) {
	rep := &Replay{Records: sampleRecords(), TruncatedBytes: 3}
	var b bytes.Buffer
	if _, err := rep.WriteTo(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"submit", "admit", "complete", "cancel", "mark", "torn tail: 3 bytes"} {
		if !strings.Contains(out, want) {
			t.Fatalf("dump missing %q:\n%s", want, out)
		}
	}
}
