package journal

import (
	"bytes"
	"errors"
	"reflect"
	"testing"
)

// FuzzDecodeRecord is the journal's whole input surface at restart: bytes
// read back from disk after an arbitrary crash. Any input must decode to
// a valid record, ErrTruncated or ErrCorrupt — never panic, never consume
// a nonsensical length — and a decoded record must survive a re-encode
// round trip (what compaction writes is what replay read).
func FuzzDecodeRecord(f *testing.F) {
	for _, rec := range []Record{
		{Op: OpSubmit, Seq: 1, ID: "j0001", Tenant: "acme", Priority: "high", Spec: []byte(`{"kind":"chol","n":120}`)},
		{Op: OpAdmit, ID: "j0001", Demand: 512},
		{Op: OpComplete, ID: "j0001", Status: "done"},
		{Op: OpComplete, ID: "j0002", Status: "failed", Error: "daemon restarted mid-execution"},
		{Op: OpCancel, ID: "j0003"},
		{Op: OpMark, Seq: 1 << 40},
	} {
		b, err := EncodeRecord(rec)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(b)
		// Torn and corrupted variants seed the interesting error paths.
		f.Add(b[:len(b)/2])
		mut := append([]byte(nil), b...)
		mut[len(mut)/2] ^= 0x40
		f.Add(mut)
	}
	f.Add([]byte{})
	f.Add(bytes.Repeat([]byte{0xFF}, 32))

	f.Fuzz(func(t *testing.T, data []byte) {
		rec, n, err := DecodeRecord(data)
		if err != nil {
			if !errors.Is(err, ErrTruncated) && !errors.Is(err, ErrCorrupt) {
				t.Fatalf("unexpected error class: %v", err)
			}
			if n != 0 {
				t.Fatalf("error with %d bytes consumed", n)
			}
			return
		}
		if n < frameHdrBytes || n > len(data) {
			t.Fatalf("consumed %d of %d bytes", n, len(data))
		}
		if !rec.Op.valid() {
			t.Fatalf("decoded invalid op %d", rec.Op)
		}
		reenc, err := EncodeRecord(rec)
		if err != nil {
			t.Fatalf("decoded record does not re-encode: %v", err)
		}
		rec2, n2, err := DecodeRecord(reenc)
		if err != nil || n2 != len(reenc) {
			t.Fatalf("re-encoded record does not decode: %v", err)
		}
		if !reflect.DeepEqual(rec, rec2) {
			t.Fatalf("round trip drift:\n got %+v\nwant %+v", rec2, rec)
		}
	})
}

// FuzzReplayStream feeds an arbitrary byte stream through the segment
// replay loop's logic: records decoded until the first damage, with every
// decoded prefix identical whether the damage exists or not (replay of a
// crashed log is a prefix of replay of the full log).
func FuzzReplayStream(f *testing.F) {
	var clean []byte
	for _, rec := range []Record{
		{Op: OpSubmit, Seq: 1, ID: "a", Spec: []byte(`{}`)},
		{Op: OpAdmit, ID: "a", Demand: 9},
		{Op: OpComplete, ID: "a", Status: "done"},
	} {
		b, err := EncodeRecord(rec)
		if err != nil {
			f.Fatal(err)
		}
		clean = append(clean, b...)
	}
	f.Add(clean, 10)
	f.Add(clean, len(clean)-3)

	decodeAll := func(data []byte) []Record {
		var recs []Record
		off := 0
		for off < len(data) {
			rec, n, err := DecodeRecord(data[off:])
			if err != nil {
				break
			}
			off += n
			recs = append(recs, rec)
		}
		return recs
	}

	f.Fuzz(func(t *testing.T, data []byte, cut int) {
		if cut < 0 || cut > len(data) {
			return
		}
		full := decodeAll(data)
		prefix := decodeAll(data[:cut])
		if len(prefix) > len(full) {
			t.Fatalf("prefix decoded more records (%d) than the full stream (%d)", len(prefix), len(full))
		}
		for i := range prefix {
			if !reflect.DeepEqual(prefix[i], full[i]) {
				t.Fatalf("record %d differs between prefix and full replay", i)
			}
		}
	})
}
