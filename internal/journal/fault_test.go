package journal

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"syscall"
	"testing"

	"repro/internal/iofault"
)

func submitRec(seq uint64) Record {
	return Record{
		Op: OpSubmit, Seq: seq, ID: fmt.Sprintf("job-%d", seq),
		Tenant: "t", Priority: "normal", Spec: []byte(`{"kind":"grid"}`),
	}
}

func completeRec(seq uint64) Record {
	return Record{Op: OpComplete, ID: fmt.Sprintf("job-%d", seq), Status: "done"}
}

// countSubmits returns the set of submit IDs in a replay.
func countSubmits(rep *Replay) map[string]bool {
	ids := make(map[string]bool)
	for _, rec := range rep.Records {
		if rec.Op == OpSubmit {
			ids[rec.ID] = true
		}
	}
	return ids
}

// TestFsyncFailurePoisonsSegment is the fsyncgate regression test: after
// a failed fsync the journal must never write to the poisoned segment fd
// again — every Append fails fast with ErrDegraded until Rearm rotates
// onto a fresh segment — and the record whose fsync failed must not
// survive replay as a phantom.
func TestFsyncFailurePoisonsSegment(t *testing.T) {
	dir := t.TempDir()
	ffs := iofault.NewFaultFS(nil, iofault.Plan{})
	j, _, err := Open(dir, Options{FS: ffs})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	for seq := uint64(1); seq <= 3; seq++ {
		if err := j.Append(submitRec(seq)); err != nil {
			t.Fatalf("Append(%d): %v", seq, err)
		}
	}
	seg1 := filepath.Join(dir, segName(1))
	writesAtPoison := ffs.Writes(seg1)

	// Disk dies: the write lands but the fsync fails, so job-4 was never
	// acknowledged even though its bytes are on disk.
	ffs.Break(iofault.ClassSync, syscall.EIO)
	if err := j.Append(submitRec(4)); !errors.Is(err, ErrDegraded) {
		t.Fatalf("Append during fsync failure = %v, want ErrDegraded", err)
	}
	if deg, cause := j.Degraded(); !deg || cause == nil {
		t.Fatalf("Degraded() = %v, %v after poison", deg, cause)
	}
	// Fast-fail path: no writes may reach the poisoned fd.
	for seq := uint64(5); seq <= 8; seq++ {
		if err := j.Append(submitRec(seq)); !errors.Is(err, ErrDegraded) {
			t.Fatalf("Append(%d) while degraded = %v, want ErrDegraded", seq, err)
		}
	}
	if got := ffs.Writes(seg1); got != writesAtPoison+1 {
		t.Fatalf("poisoned segment got %d writes after the fault, want 1 (the failing append only)", got-writesAtPoison)
	}

	// Disk still broken: Rearm must fail and stay degraded.
	if err := j.Rearm(); err == nil {
		t.Fatalf("Rearm with the disk still broken succeeded")
	}
	if j.Stats().RearmFailures == 0 {
		t.Fatalf("RearmFailures not counted")
	}

	// Disk comes back: Rearm rotates onto a fresh segment.
	ffs.Heal()
	if err := j.Rearm(); err != nil {
		t.Fatalf("Rearm after heal: %v", err)
	}
	if deg, _ := j.Degraded(); deg {
		t.Fatalf("still degraded after successful Rearm")
	}
	st := j.Stats()
	if st.Rearms != 1 || st.GapRecords != 1 {
		t.Fatalf("Rearms=%d GapRecords=%d, want 1/1", st.Rearms, st.GapRecords)
	}
	if _, err := os.Stat(filepath.Join(dir, segName(2))); err != nil {
		t.Fatalf("rotation did not create a fresh segment: %v", err)
	}
	if err := j.Append(submitRec(9)); err != nil {
		t.Fatalf("Append after Rearm: %v", err)
	}
	// Zero writes to the poisoned segment across the whole degraded
	// window and after recovery.
	if got := ffs.Writes(seg1); got != writesAtPoison+1 {
		t.Fatalf("poisoned segment written after rotation: %d writes", got-writesAtPoison)
	}
	if err := j.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	// Replay: jobs 1-3 and 9 survive; job-4 (unacknowledged suspect
	// bytes) is discarded by the gap cap, never a phantom.
	j2, rep, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer j2.Close()
	ids := countSubmits(rep)
	for _, want := range []string{"job-1", "job-2", "job-3", "job-9"} {
		if !ids[want] {
			t.Fatalf("replay lost acknowledged %s (got %v)", want, ids)
		}
	}
	if ids["job-4"] {
		t.Fatalf("unacknowledged job-4 resurrected as a phantom")
	}
	if rep.SuspectBytes == 0 {
		t.Fatalf("suspect bytes not reported (the torn frame was on disk)")
	}
	if j2.HighSeq() != 9 {
		t.Fatalf("HighSeq = %d, want 9 (carried across the gap)", j2.HighSeq())
	}
}

// TestWriteFailurePoisons covers the EIO-on-write path: the frame never
// reaches the disk, so the gap cap discards nothing but the journal still
// degrades and re-arms.
func TestWriteFailurePoisons(t *testing.T) {
	dir := t.TempDir()
	ffs := iofault.NewFaultFS(nil, iofault.Plan{})
	j, _, err := Open(dir, Options{FS: ffs})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	if err := j.Append(submitRec(1)); err != nil {
		t.Fatalf("Append: %v", err)
	}
	ffs.Break(iofault.ClassWrite, syscall.EIO)
	if err := j.Append(submitRec(2)); !errors.Is(err, ErrDegraded) {
		t.Fatalf("Append = %v, want ErrDegraded", err)
	}
	ffs.Heal()
	if err := j.Rearm(); err != nil {
		t.Fatalf("Rearm: %v", err)
	}
	if err := j.Append(submitRec(3)); err != nil {
		t.Fatalf("Append after Rearm: %v", err)
	}
	j.Close()
	_, rep, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	ids := countSubmits(rep)
	if !ids["job-1"] || !ids["job-3"] || ids["job-2"] {
		t.Fatalf("replay ids = %v, want job-1 and job-3 only", ids)
	}
	if rep.SuspectBytes != 0 {
		t.Fatalf("SuspectBytes = %d, want 0 (the failed write never landed)", rep.SuspectBytes)
	}
}

// TestENOSPCRearmCompacts: when the fault is disk-full, Rearm's first
// move is an emergency compaction — the live set is tiny, and publishing
// a compaction root deletes every older segment, reclaiming the dead
// weight that filled the disk.
func TestENOSPCRearmCompacts(t *testing.T) {
	dir := t.TempDir()
	ffs := iofault.NewFaultFS(nil, iofault.Plan{})
	j, _, err := Open(dir, Options{FS: ffs, MaxSegmentBytes: 1 << 20})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	// Mostly dead weight: 40 terminal jobs, 2 live ones.
	for seq := uint64(1); seq <= 40; seq++ {
		if err := j.Append(submitRec(seq)); err != nil {
			t.Fatalf("Append: %v", err)
		}
		if err := j.Append(completeRec(seq)); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	for seq := uint64(41); seq <= 42; seq++ {
		if err := j.Append(submitRec(seq)); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	ffs.Break(iofault.ClassDurability, syscall.ENOSPC)
	if err := j.Append(submitRec(43)); !errors.Is(err, ErrDegraded) {
		t.Fatalf("Append = %v, want ErrDegraded", err)
	}
	if err := j.Rearm(); err == nil {
		t.Fatalf("Rearm with the disk still full succeeded")
	}
	ffs.Heal()
	if err := j.Rearm(); err != nil {
		t.Fatalf("Rearm after heal: %v", err)
	}
	st := j.Stats()
	if st.Compactions != 1 {
		t.Fatalf("Compactions = %d, want 1 (ENOSPC re-arm must compact)", st.Compactions)
	}
	if st.GapRecords != 0 {
		t.Fatalf("GapRecords = %d, want 0 (the root supersedes the poisoned segment)", st.GapRecords)
	}
	if st.Segments != 1 {
		t.Fatalf("Segments = %d, want 1 after emergency compaction", st.Segments)
	}
	if err := j.Append(submitRec(44)); err != nil {
		t.Fatalf("Append after Rearm: %v", err)
	}
	j.Close()
	_, rep, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	ids := countSubmits(rep)
	for _, want := range []string{"job-41", "job-42", "job-44"} {
		if !ids[want] {
			t.Fatalf("replay lost live %s", want)
		}
	}
	if ids["job-43"] || ids["job-1"] {
		t.Fatalf("replay ids = %v: phantom or un-compacted terminal job", ids)
	}
}

// TestCompactDirSyncFailureRollsBack: a compaction whose publish cannot
// be made durable (directory fsync fails) must roll back and keep the old
// segment — never leave a root it is not appending to next to a segment
// it is.
func TestCompactDirSyncFailureRollsBack(t *testing.T) {
	dir := t.TempDir()
	ffs := iofault.NewFaultFS(nil, iofault.Plan{})
	j, _, err := Open(dir, Options{FS: ffs, MaxSegmentBytes: 4 << 10})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	ffs.Break(iofault.ClassSyncDir, syscall.EIO)
	// Enough terminal traffic to cross the compaction threshold several
	// times; every attempt must fail cleanly without losing an append.
	var seq uint64
	for seq = 1; seq <= 200; seq++ {
		if err := j.Append(submitRec(seq)); err != nil {
			t.Fatalf("Append(%d): %v", seq, err)
		}
		if err := j.Append(completeRec(seq)); err != nil {
			t.Fatalf("Append complete(%d): %v", seq, err)
		}
	}
	st := j.Stats()
	if st.CompactFailures == 0 {
		t.Fatalf("no compaction was attempted (CompactFailures = 0); grow the workload")
	}
	if st.Compactions != 0 {
		t.Fatalf("compaction published without a durable dir entry")
	}
	ffs.Heal()
	// With the disk healed the next eligible append compacts for real.
	for ; seq <= 600; seq++ {
		if err := j.Append(submitRec(seq)); err != nil {
			t.Fatalf("Append(%d): %v", seq, err)
		}
		if err := j.Append(completeRec(seq)); err != nil {
			t.Fatalf("Append complete(%d): %v", seq, err)
		}
		if j.Stats().Compactions > 0 {
			break
		}
	}
	if j.Stats().Compactions == 0 {
		t.Fatalf("compaction never recovered after heal")
	}
	j.Close()
	if _, rep, err := Open(dir, Options{}); err != nil {
		t.Fatalf("reopen: %v", err)
	} else if len(rep.Records) == 0 {
		t.Fatalf("empty replay after compaction recovery")
	}
}

// TestCompactWriteFailureIsNonFatal: an EIO while writing the compacted
// tmp segment must not fail the append that triggered it (its record is
// already durable) and must leave no .tmp litter that a reopen would
// misread.
func TestCompactWriteFailureIsNonFatal(t *testing.T) {
	dir := t.TempDir()
	ffs := iofault.NewFaultFS(nil, iofault.Plan{})
	j, _, err := Open(dir, Options{FS: ffs, MaxSegmentBytes: 4 << 10})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	// Fail every write to a .tmp path by breaking CreateTemp-class ops?
	// Compaction opens the tmp via OpenFile, so break writes globally only
	// for the compaction window: fill below the threshold first, then
	// break, then push one append over the line. The append itself must
	// still succeed because its own write+fsync completed before the
	// compaction attempt started.
	var seq uint64
	for seq = 1; ; seq++ {
		if err := j.Append(submitRec(seq)); err != nil {
			t.Fatalf("Append(%d): %v", seq, err)
		}
		if err := j.Append(completeRec(seq)); err != nil {
			t.Fatalf("Append complete(%d): %v", seq, err)
		}
		st := j.Stats()
		if st.ActiveBytes >= (4<<10)-200 {
			break
		}
	}
	ffs.Break(iofault.ClassOpen|iofault.ClassCreate, syscall.EIO)
	// Push appends over the compaction threshold; each rides a failing
	// compaction attempt and must still succeed.
	for i := 0; i < 20; i++ {
		seq++
		if err := j.Append(submitRec(seq)); err != nil {
			t.Fatalf("append that triggers a failing compaction must not fail: %v", err)
		}
		if err := j.Append(completeRec(seq)); err != nil {
			t.Fatalf("Append complete(%d): %v", seq, err)
		}
	}
	st := j.Stats()
	if st.CompactFailures == 0 {
		t.Fatalf("compaction failure not counted")
	}
	if st.Compactions != 0 {
		t.Fatalf("compaction reported success under EIO")
	}
	ffs.Heal()
	j.Close()
	ents, _ := os.ReadDir(dir)
	for _, e := range ents {
		if filepath.Ext(e.Name()) == tmpSuffix {
			t.Fatalf("aborted compaction left %s behind", e.Name())
		}
	}
	if _, rep, err := Open(dir, Options{}); err != nil {
		t.Fatalf("reopen: %v", err)
	} else {
		ids := countSubmits(rep)
		if !ids[fmt.Sprintf("job-%d", seq)] {
			t.Fatalf("the append that rode the failed compaction was lost")
		}
	}
}

// TestLostAckedBytesFailsLoudly: if the poisoned segment is shorter than
// the extent the gap record says was acknowledged, durable data vanished
// — Open must refuse, not silently come up incomplete.
func TestLostAckedBytesFailsLoudly(t *testing.T) {
	dir := t.TempDir()
	ffs := iofault.NewFaultFS(nil, iofault.Plan{})
	j, _, err := Open(dir, Options{FS: ffs})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	for seq := uint64(1); seq <= 4; seq++ {
		if err := j.Append(submitRec(seq)); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	ffs.Break(iofault.ClassSync, syscall.EIO)
	j.Append(submitRec(5))
	ffs.Heal()
	if err := j.Rearm(); err != nil {
		t.Fatalf("Rearm: %v", err)
	}
	j.Close()
	// Chop acknowledged bytes off the capped segment.
	seg1 := filepath.Join(dir, segName(1))
	fi, err := os.Stat(seg1)
	if err != nil {
		t.Fatalf("stat: %v", err)
	}
	if err := os.Truncate(seg1, fi.Size()/2); err != nil {
		t.Fatalf("truncate: %v", err)
	}
	if _, _, err := Open(dir, Options{}); err == nil {
		t.Fatalf("Open succeeded on a log that lost acknowledged records")
	}
	if _, err := ReplayDir(dir); err == nil {
		t.Fatalf("ReplayDir succeeded on a log that lost acknowledged records")
	}
}

// TestSeededFaultPlanSoak drives a journal through a seeded low-rate
// fault plan: every append either acknowledges durably or degrades
// loudly, re-arms heal the journal, and the final replay contains exactly
// the acknowledged submits — no phantoms, no losses — for several seeds.
func TestSeededFaultPlanSoak(t *testing.T) {
	for _, seed := range []uint64{1, 2, 3, 4, 5} {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			dir := t.TempDir()
			ffs := iofault.NewFaultFS(nil, iofault.Plan{
				Seed: seed, SyncErrFrac: 0.05, WriteErrFrac: 0.03,
			})
			j, _, err := Open(dir, Options{FS: ffs, MaxSegmentBytes: 8 << 10})
			if err != nil {
				t.Fatalf("Open: %v", err)
			}
			acked := make(map[string]bool)
			terminal := make(map[string]bool)
			for seq := uint64(1); seq <= 300; seq++ {
				id := fmt.Sprintf("job-%d", seq)
				err := j.Append(submitRec(seq))
				switch {
				case err == nil:
					acked[id] = true
				case errors.Is(err, ErrDegraded):
					// Re-arm with unlimited patience: the plan's faults are
					// transient, so some attempt succeeds.
					for try := 0; ; try++ {
						if err := j.Rearm(); err == nil {
							break
						}
						if try > 1000 {
							t.Fatalf("journal never re-armed under seed %d", seed)
						}
					}
				default:
					t.Fatalf("Append(%d) = %v, want nil or ErrDegraded", seq, err)
				}
				if acked[id] && seq%3 == 0 {
					if err := j.Append(completeRec(seq)); err == nil {
						terminal[id] = true
					}
				}
			}
			j.Close()
			_, rep, err := Open(dir, Options{})
			if err != nil {
				t.Fatalf("reopen under seed %d: %v", seed, err)
			}
			ids := countSubmits(rep)
			for id := range ids {
				if !acked[id] {
					t.Fatalf("seed %d: phantom %s in replay (never acknowledged)", seed, id)
				}
			}
			for id := range acked {
				if terminal[id] {
					continue // terminal jobs may be compacted away
				}
				if !ids[id] {
					t.Fatalf("seed %d: acknowledged %s lost at replay", seed, id)
				}
			}
		})
	}
}
