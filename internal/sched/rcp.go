package sched

import "repro/internal/graph"

// rcpPolicy orders ready tasks by critical-path (bottom-level) priority.
type rcpPolicy struct{ bl []float64 }

func (p *rcpPolicy) keys(t graph.TaskID) (float64, float64) { return -p.bl[t], 0 }
func (p *rcpPolicy) eligible(graph.TaskID, graph.Proc) bool { return true }
func (p *rcpPolicy) inserted(graph.TaskID, graph.Proc)      {}
func (p *rcpPolicy) scheduled(graph.TaskID, graph.Proc)     {}

// ScheduleRCP produces the time-efficient baseline schedule: ready critical
// path ordering on each processor under the given assignment.
func ScheduleRCP(g *graph.DAG, assign []graph.Proc, p int, model CostModel) (*Schedule, error) {
	bl := g.BottomLevels(model.EdgeComm(g, assign))
	return runList(g, assign, p, model, &rcpPolicy{bl: bl}, RCP)
}
