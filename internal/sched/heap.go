package sched

import "repro/internal/graph"

// taskHeap is a binary min-heap of tasks keyed by a lexicographic
// (k1, k2, id) triple; schedulers negate "higher is better" priorities so
// the heap top is the best candidate. Updatable by task id.
type taskHeap struct {
	ids []graph.TaskID
	k1  []float64
	k2  []float64
	pos map[graph.TaskID]int
}

func newTaskHeap() *taskHeap {
	return &taskHeap{pos: make(map[graph.TaskID]int)}
}

func (h *taskHeap) Len() int { return len(h.ids) }

func (h *taskHeap) Top() graph.TaskID { return h.ids[0] }

func (h *taskHeap) Push(id graph.TaskID, k1, k2 float64) {
	h.ids = append(h.ids, id)
	h.k1 = append(h.k1, k1)
	h.k2 = append(h.k2, k2)
	h.pos[id] = len(h.ids) - 1
	h.up(len(h.ids) - 1)
}

func (h *taskHeap) Pop() graph.TaskID {
	id := h.ids[0]
	n := len(h.ids) - 1
	h.swap(0, n)
	h.ids = h.ids[:n]
	h.k1 = h.k1[:n]
	h.k2 = h.k2[:n]
	delete(h.pos, id)
	if n > 0 {
		h.down(0)
	}
	return id
}

// Update changes the keys of id if present.
func (h *taskHeap) Update(id graph.TaskID, k1, k2 float64) {
	i, ok := h.pos[id]
	if !ok {
		return
	}
	h.k1[i], h.k2[i] = k1, k2
	h.up(i)
	h.down(h.pos[id])
}

func (h *taskHeap) less(i, j int) bool {
	if h.k1[i] != h.k1[j] {
		return h.k1[i] < h.k1[j]
	}
	if h.k2[i] != h.k2[j] {
		return h.k2[i] < h.k2[j]
	}
	return h.ids[i] < h.ids[j]
}

func (h *taskHeap) swap(i, j int) {
	h.ids[i], h.ids[j] = h.ids[j], h.ids[i]
	h.k1[i], h.k1[j] = h.k1[j], h.k1[i]
	h.k2[i], h.k2[j] = h.k2[j], h.k2[i]
	h.pos[h.ids[i]] = i
	h.pos[h.ids[j]] = j
}

func (h *taskHeap) up(i int) {
	for i > 0 {
		p := (i - 1) / 2
		if !h.less(i, p) {
			return
		}
		h.swap(i, p)
		i = p
	}
}

func (h *taskHeap) down(i int) {
	n := len(h.ids)
	for {
		l, r := 2*i+1, 2*i+2
		s := i
		if l < n && h.less(l, s) {
			s = l
		}
		if r < n && h.less(r, s) {
			s = r
		}
		if s == i {
			return
		}
		h.swap(i, s)
		i = s
	}
}
