// Property-based cross-checks between the three layers that each claim the
// same invariants from a different angle: the scheduler (dependence-safe
// orders, Theorem-2 space bounds), the MAP planner (frees strictly after
// last use, allocations no later than first use, replayable peaks) and the
// static verifier (which must agree with an independent replay on clean
// plans and disagree loudly on mutated ones). The package is sched_test so
// it can import internal/verify, which itself imports sched.
package sched_test

import (
	"fmt"
	"testing"
	"testing/quick"

	"repro/internal/graph"
	"repro/internal/mem"
	"repro/internal/sched"
	"repro/internal/util"
	"repro/internal/verify"
)

// randomDAG builds a random owner-compute program: every task writes one
// object and reads a few earlier-written ones, owners assigned cyclically.
// Mirrors the generator the sched-internal tests use, rebuilt here on the
// exported API only.
func randomDAG(rng *util.RNG, nTasks, nObjs, p int) *graph.DAG {
	b := graph.NewBuilder()
	objs := make([]graph.ObjID, nObjs)
	for i := range objs {
		objs[i] = b.Object(fmt.Sprintf("o%d", i), int64(1+rng.Intn(4)))
	}
	var written []graph.ObjID
	for t := 0; t < nTasks; t++ {
		var reads []graph.ObjID
		for r := 0; r < rng.Intn(3); r++ {
			if len(written) > 0 {
				reads = append(reads, written[rng.Intn(len(written))])
			}
		}
		w := objs[rng.Intn(nObjs)]
		b.Task(fmt.Sprintf("t%d", t), float64(1+rng.Intn(5)), reads, []graph.ObjID{w})
		written = append(written, w)
	}
	g, err := b.Build()
	if err != nil {
		panic(err)
	}
	sched.CyclicOwners(g, p)
	return g
}

// volatileUses scans a processor's execution order directly (independent
// of sched.VolatileLifetimes) and returns first- and last-use positions of
// every volatile object the processor touches.
func volatileUses(s *sched.Schedule, p int) (first, last map[graph.ObjID]int32) {
	first = make(map[graph.ObjID]int32)
	last = make(map[graph.ObjID]int32)
	for i, t := range s.Order[p] {
		task := &s.G.Tasks[t]
		for _, list := range [2][]graph.ObjID{task.Reads, task.Writes} {
			for _, o := range list {
				if s.G.Objects[o].Owner == graph.Proc(p) {
					continue
				}
				if _, ok := first[o]; !ok {
					first[o] = int32(i)
				}
				last[o] = int32(i)
			}
		}
	}
	return first, last
}

// replayPlan re-executes a MAP plan against uses derived straight from the
// schedule and returns an error on the first violated invariant: a free at
// or before last use, an allocation after first use, double free/alloc, a
// used object never allocated, or a declared peak that disagrees with the
// replay.
func replayPlan(s *sched.Schedule, mp *mem.Plan) error {
	perm := s.PermSize()
	for p := range mp.Procs {
		pp := &mp.Procs[p]
		if !pp.Executable {
			return fmt.Errorf("proc %d not executable under capacity %d", p, mp.Capacity)
		}
		first, last := volatileUses(s, p)
		allocated := make(map[graph.ObjID]bool)
		freed := make(map[graph.ObjID]bool)
		inUse, peak := perm[p], perm[p]
		for _, m := range pp.MAPs {
			for _, o := range m.Frees {
				switch {
				case !allocated[o]:
					return fmt.Errorf("proc %d MAP@%d frees unallocated object %d", p, m.Pos, o)
				case freed[o]:
					return fmt.Errorf("proc %d MAP@%d double-frees object %d", p, m.Pos, o)
				case last[o] >= m.Pos:
					return fmt.Errorf("proc %d MAP@%d frees object %d at/before last use %d", p, m.Pos, o, last[o])
				}
				freed[o] = true
				inUse -= s.G.Objects[o].Size
			}
			for _, o := range m.Allocs {
				if allocated[o] {
					return fmt.Errorf("proc %d MAP@%d reallocates object %d", p, m.Pos, o)
				}
				if f, ok := first[o]; !ok || f < m.Pos {
					return fmt.Errorf("proc %d MAP@%d allocates object %d after first use", p, m.Pos, o)
				}
				allocated[o] = true
				inUse += s.G.Objects[o].Size
			}
			if inUse > peak {
				peak = inUse
			}
		}
		for o := range first {
			if !allocated[o] {
				return fmt.Errorf("proc %d never allocates used volatile object %d", p, o)
			}
		}
		if peak != pp.Peak {
			return fmt.Errorf("proc %d declared peak %d, replay got %d", p, pp.Peak, peak)
		}
		if mp.Capacity > 0 && peak > mp.Capacity {
			return fmt.Errorf("proc %d peak %d exceeds capacity %d", p, peak, mp.Capacity)
		}
	}
	return nil
}

// TestQuickPlanFreesFollowLastUse: over random programs and all three
// ordering heuristics, the MAP plan at both the tight (MIN_MEM) and loose
// (TOT) capacities survives the independent replay above — every free is
// strictly after last use, every allocation no later than first use, and
// declared peaks are exactly reproducible.
func TestQuickPlanFreesFollowLastUse(t *testing.T) {
	f := func(seed uint64, a, b, c uint8) bool {
		rng := util.NewRNG(seed)
		p := 2 + int(c)%4
		g := randomDAG(rng, 10+int(a)%50, 4+int(b)%12, p)
		assign, err := sched.OwnerComputeAssign(g, p)
		if err != nil {
			t.Logf("assign: %v", err)
			return false
		}
		for _, h := range []sched.Heuristic{sched.RCP, sched.MPO, sched.DTS} {
			s, err := sched.ScheduleWith(h, g, assign, p, sched.Unit(), 0)
			if err != nil {
				t.Logf("%v: %v", h, err)
				return false
			}
			for _, capacity := range []int64{s.MinMem(), s.TOT()} {
				mp, err := mem.NewPlan(s, capacity)
				if err != nil {
					t.Logf("%v cap=%d: %v", h, capacity, err)
					return false
				}
				if err := replayPlan(s, mp); err != nil {
					t.Logf("%v cap=%d: %v", h, capacity, err)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickVerifierAgreesWithReplay: the static verifier and the
// independent replay must agree that untouched plans are clean — across
// random programs, heuristics and both capacity levels.
func TestQuickVerifierAgreesWithReplay(t *testing.T) {
	f := func(seed uint64, a, b uint8) bool {
		rng := util.NewRNG(seed)
		p := 2 + int(b)%3
		g := randomDAG(rng, 10+int(a)%40, 5+int(b)%10, p)
		assign, err := sched.OwnerComputeAssign(g, p)
		if err != nil {
			t.Logf("assign: %v", err)
			return false
		}
		for _, h := range []sched.Heuristic{sched.RCP, sched.MPO, sched.DTS} {
			s, err := sched.ScheduleWith(h, g, assign, p, sched.Unit(), 0)
			if err != nil {
				t.Logf("%v: %v", h, err)
				return false
			}
			mp, err := mem.NewPlan(s, s.TOT())
			if err != nil {
				t.Logf("%v: %v", h, err)
				return false
			}
			if res := verify.Check(s, mp); !res.OK() {
				t.Logf("%v: verifier flagged a clean plan: %v", h, res.Err())
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func hasClass(res *verify.Result, class verify.Class) bool {
	for _, f := range res.Findings {
		if f.Class == class {
			return true
		}
	}
	return false
}

// TestVerifierCatchesMutatedPlans seeds three defect families into clean
// plans — tampered peak, dropped free, dropped allocation — and requires
// the verifier to flag each with the matching finding class. Each mutation
// gets a freshly compiled plan so defects cannot mask each other.
func TestVerifierCatchesMutatedPlans(t *testing.T) {
	rng := util.NewRNG(23)
	caughtFree, caughtAlloc := false, false
	for trial := 0; trial < 12; trial++ {
		p := 2 + rng.Intn(3)
		g := randomDAG(rng, 25+rng.Intn(30), 6+rng.Intn(10), p)
		assign, err := sched.OwnerComputeAssign(g, p)
		if err != nil {
			t.Fatal(err)
		}
		s, err := sched.ScheduleWith(sched.MPO, g, assign, p, sched.Unit(), 0)
		if err != nil {
			t.Fatal(err)
		}
		plan := func() *mem.Plan {
			mp, err := mem.NewPlan(s, s.MinMem())
			if err != nil {
				t.Fatal(err)
			}
			return mp
		}

		// Tampered peak: always applicable.
		mp := plan()
		mp.Procs[0].Peak += 1000
		if res := verify.Check(s, mp); res.OK() || !hasClass(res, verify.ClassPeakMismatch) {
			t.Fatalf("trial %d: tampered peak not flagged: %+v", trial, res.Findings)
		}

		// Dropped free: the object outlives its liveness — leak and/or
		// peak mismatch, never clean.
		mp = plan()
	drop:
		for pi := range mp.Procs {
			for mi := range mp.Procs[pi].MAPs {
				if len(mp.Procs[pi].MAPs[mi].Frees) > 0 {
					mp.Procs[pi].MAPs[mi].Frees = mp.Procs[pi].MAPs[mi].Frees[1:]
					if res := verify.Check(s, mp); res.OK() {
						t.Fatalf("trial %d: dropped free not flagged", trial)
					}
					caughtFree = true
					break drop
				}
			}
		}

		// Dropped allocation: some task uses the object before any MAP
		// allocates it.
		mp = plan()
	dropAlloc:
		for pi := range mp.Procs {
			for mi := range mp.Procs[pi].MAPs {
				if len(mp.Procs[pi].MAPs[mi].Allocs) > 0 {
					mp.Procs[pi].MAPs[mi].Allocs = mp.Procs[pi].MAPs[mi].Allocs[1:]
					res := verify.Check(s, mp)
					if res.OK() || !hasClass(res, verify.ClassUseBeforeMAP) {
						t.Fatalf("trial %d: dropped alloc not flagged as use-before-map: %+v", trial, res.Findings)
					}
					caughtAlloc = true
					break dropAlloc
				}
			}
		}
	}
	if !caughtFree || !caughtAlloc {
		t.Fatalf("mutation coverage incomplete: free=%v alloc=%v", caughtFree, caughtAlloc)
	}
}

// TestQuickDTSTheorem2BoundEndToEnd: for random programs, the DTS schedule
// (a) keeps its immediate-free peak within maxPerm + h, where h is the
// slice volatile need of Theorem 2, (b) yields an executable MAP plan at
// exactly that capacity, and (c) passes the verifier's dts-bound checks.
func TestQuickDTSTheorem2BoundEndToEnd(t *testing.T) {
	f := func(seed uint64, a, b uint8) bool {
		rng := util.NewRNG(seed)
		p := 2 + int(b)%3
		g := randomDAG(rng, 15+int(a)%45, 5+int(b)%12, p)
		assign, err := sched.OwnerComputeAssign(g, p)
		if err != nil {
			t.Logf("assign: %v", err)
			return false
		}
		sliceOf, nSlices, err := sched.Slices(g)
		if err != nil {
			t.Logf("slices: %v", err)
			return false
		}
		var h int64
		for _, v := range sched.SliceVolatileNeed(g, assign, p, sliceOf, nSlices) {
			if v > h {
				h = v
			}
		}
		s, err := sched.ScheduleDTS(g, assign, p, sched.Unit(), false, 0)
		if err != nil {
			t.Logf("dts: %v", err)
			return false
		}
		var maxPerm int64
		for _, v := range s.PermSize() {
			if v > maxPerm {
				maxPerm = v
			}
		}
		if s.MinMem() > maxPerm+h {
			t.Logf("DTS peak %d exceeds Theorem-2 bound %d + %d", s.MinMem(), maxPerm, h)
			return false
		}
		mp, err := mem.NewPlan(s, maxPerm+h)
		if err != nil {
			t.Logf("plan: %v", err)
			return false
		}
		if !mp.Executable {
			t.Logf("DTS plan not executable at the Theorem-2 capacity %d", maxPerm+h)
			return false
		}
		if res := verify.Check(s, mp); !res.OK() {
			t.Logf("verifier flagged the DTS plan: %v", res.Err())
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// TestHeuristicNamesAndPeakAlias pins the user-facing names of the four
// heuristics (they appear in trace tables and rapidload reports) and the
// PerProcPeak alias used for Figure-7 style comparisons.
func TestHeuristicNamesAndPeakAlias(t *testing.T) {
	names := map[sched.Heuristic]string{
		sched.RCP:      "RCP",
		sched.MPO:      "MPO",
		sched.DTS:      "DTS",
		sched.DTSMerge: "DTS+merge",
		sched.TreeMem:  "TreeMem",
	}
	for h, want := range names {
		if got := h.String(); got != want {
			t.Errorf("heuristic %d prints %q, want %q", h, got, want)
		}
	}
	if got := sched.Heuristic(250).String(); got != "?" {
		t.Errorf("unknown heuristic prints %q, want ?", got)
	}

	rng := util.NewRNG(11)
	g := randomDAG(rng, 24, 8, 3)
	assign, err := sched.OwnerComputeAssign(g, 3)
	if err != nil {
		t.Fatal(err)
	}
	s, err := sched.ScheduleRCP(g, assign, 3, sched.Unit())
	if err != nil {
		t.Fatal(err)
	}
	if s.PerProcPeak() != s.MinMem() {
		t.Errorf("PerProcPeak %d != MinMem %d", s.PerProcPeak(), s.MinMem())
	}
	// PerProcPeak must be derivable from the full vector: the max of
	// PerProcPeaks, which itself maxes to MIN_MEM by Definition 5.
	peaks := s.PerProcPeaks()
	if len(peaks) != 3 {
		t.Fatalf("PerProcPeaks returned %d entries for 3 procs", len(peaks))
	}
	var max int64
	for _, pk := range peaks {
		if pk > max {
			max = pk
		}
	}
	if max != s.PerProcPeak() {
		t.Errorf("max of PerProcPeaks %d != PerProcPeak %d", max, s.PerProcPeak())
	}
	if imb := s.PeakImbalance(); imb < 1 || imb > 3 {
		t.Errorf("PeakImbalance %g outside [1, procs]", imb)
	}
}
