package sched

import (
	"fmt"
	"sort"

	"repro/internal/graph"
)

// CyclicOwners assigns object i to processor i mod p (the paper's worked
// example uses owner(d_i) = (i-1) mod p, which is the same rule on 0-based
// IDs). It mutates the graph's Owner fields and returns the graph.
func CyclicOwners(g *graph.DAG, p int) *graph.DAG {
	for i := range g.Objects {
		g.Objects[i].Owner = graph.Proc(i % p)
	}
	return g
}

// OwnerComputeAssign assigns each task to the owner of the object it
// writes (the owner-compute rule). Tasks that write nothing run on the
// owner of their first read. All written objects of a task must share an
// owner; otherwise an error is returned.
func OwnerComputeAssign(g *graph.DAG, p int) ([]graph.Proc, error) {
	assign := make([]graph.Proc, g.NumTasks())
	for ti := range g.Tasks {
		t := &g.Tasks[ti]
		proc := graph.Proc(-1)
		for _, o := range t.Writes {
			own := g.Objects[o].Owner
			if own < 0 {
				return nil, fmt.Errorf("sched: object %q has no owner", g.Objects[o].Name)
			}
			if proc >= 0 && own != proc {
				return nil, fmt.Errorf("sched: task %q writes objects with different owners (%d and %d)", t.Name, proc, own)
			}
			proc = own
		}
		if proc < 0 {
			if len(t.Reads) == 0 {
				return nil, fmt.Errorf("sched: task %q accesses no objects", t.Name)
			}
			proc = g.Objects[t.Reads[0]].Owner
		}
		if proc < 0 || int(proc) >= p {
			return nil, fmt.Errorf("sched: task %q assigned to invalid processor %d", t.Name, proc)
		}
		assign[ti] = proc
	}
	return assign, nil
}

// LoadBalancedOwners clusters tasks by the object they write (owner-compute
// clusters), then maps clusters to processors with the
// largest-processing-time-first rule so per-processor work is balanced.
// Object owners are set from the resulting cluster placement. Objects that
// are never written are distributed cyclically.
func LoadBalancedOwners(g *graph.DAG, p int) *graph.DAG {
	type cluster struct {
		obj  graph.ObjID
		work float64
	}
	clusters := make([]cluster, 0, g.NumObjects())
	work := make([]float64, g.NumObjects())
	written := make([]bool, g.NumObjects())
	for ti := range g.Tasks {
		t := &g.Tasks[ti]
		if len(t.Writes) == 0 {
			continue
		}
		o := t.Writes[0]
		work[o] += t.Cost
		for _, w := range t.Writes {
			written[w] = true
		}
	}
	for o := range g.Objects {
		if written[o] {
			clusters = append(clusters, cluster{graph.ObjID(o), work[o]})
		}
	}
	sort.Slice(clusters, func(i, j int) bool {
		if clusters[i].work != clusters[j].work {
			return clusters[i].work > clusters[j].work
		}
		return clusters[i].obj < clusters[j].obj
	})
	load := make([]float64, p)
	for _, c := range clusters {
		best := 0
		for q := 1; q < p; q++ {
			if load[q] < load[best] {
				best = q
			}
		}
		g.Objects[c.obj].Owner = graph.Proc(best)
		load[best] += c.work
	}
	next := 0
	for o := range g.Objects {
		if !written[o] {
			g.Objects[o].Owner = graph.Proc(next % p)
			next++
		}
	}
	// Secondary writes must agree with the primary cluster owner; force
	// them (rare: tasks writing multiple objects put all their objects on
	// one processor).
	for ti := range g.Tasks {
		t := &g.Tasks[ti]
		if len(t.Writes) <= 1 {
			continue
		}
		own := g.Objects[t.Writes[0]].Owner
		for _, w := range t.Writes[1:] {
			g.Objects[w].Owner = own
		}
	}
	return g
}
