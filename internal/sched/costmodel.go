package sched

import "repro/internal/graph"

// CostModel converts the abstract task costs (flops) and object sizes
// (float64 words) into seconds, following the Cray-T3D constants reported
// in Section 5 of the paper.
type CostModel struct {
	// ComputeRate is the per-node compute throughput in cost units per
	// second (the paper: 103 MFLOPS with BLAS-3 DGEMM).
	ComputeRate float64
	// Latency is the fixed per-message overhead in seconds (the paper:
	// 2.7 µs for SHMEM_PUT).
	Latency float64
	// Bandwidth is the transfer rate in size units per second (the paper:
	// 128 MB/s = 16 M float64 words/s).
	Bandwidth float64
	// MAPOverhead is the fixed cost of executing one memory allocation
	// point, and MAPPerObject the additional cost per object allocated or
	// deallocated at it. These model the free/allocate/assemble work of
	// Section 3.3.
	MAPOverhead  float64
	MAPPerObject float64
	// AddrLatency is the cost of transferring one address package (a small
	// RMA message).
	AddrLatency float64
}

// T3D returns the cost model with the constants reported in the paper
// (103 MFLOPS/node, 2.7 µs SHMEM_PUT overhead, 128 MB/s bandwidth). Task
// costs are flops; object sizes are float64 words (8 bytes).
//
// The memory-management constants are not reported in the paper; they are
// calibrated so that the overhead of the scheme with FULL memory (one MAP,
// all volatile space allocated and notified once) reproduces the 2-22%
// range of the paper's 100% columns in Tables 2-3. The per-object cost
// models the software bookkeeping of a 150 MHz Alpha: hash-table inserts
// for irregular object indexing, dead-list scanning and address-package
// assembly.
func T3D() CostModel {
	return CostModel{
		ComputeRate:  103e6,
		Latency:      2.7e-6,
		Bandwidth:    128e6 / 8,
		MAPOverhead:  500e-6,
		MAPPerObject: 25e-6,
		AddrLatency:  10e-6,
	}
}

// Unit returns the unit-cost model of the paper's worked examples: each
// task and each message costs one time unit and memory management is free.
func Unit() CostModel {
	return CostModel{ComputeRate: 1, Latency: 1, Bandwidth: 0}
}

// TaskTime returns the execution time of a task.
func (m CostModel) TaskTime(t *graph.Task) float64 {
	if m.ComputeRate <= 0 {
		return t.Cost
	}
	return t.Cost / m.ComputeRate
}

// CommTime returns the transfer time of an object of the given size.
func (m CostModel) CommTime(size int64) float64 {
	t := m.Latency
	if m.Bandwidth > 0 {
		t += float64(size) / m.Bandwidth
	}
	return t
}

// EdgeComm builds a graph.CommCostFunc charging CommTime on cross-processor
// true-dependence edges under the given assignment and zero otherwise.
func (m CostModel) EdgeComm(g *graph.DAG, assign []graph.Proc) graph.CommCostFunc {
	return func(e graph.Edge) float64 {
		if e.Kind != graph.DepTrue || assign[e.From] == assign[e.To] {
			return 0
		}
		return m.CommTime(g.Objects[e.Obj].Size)
	}
}
