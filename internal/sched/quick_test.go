package sched

import (
	"testing"
	"testing/quick"

	"repro/internal/graph"
	"repro/internal/util"
)

// TestQuickScheduleInvariants drives the three heuristics over random
// owner-compute programs and checks, for every schedule produced:
// validity (a linear extension per processor and globally), MinMem <= TOT,
// MinMem at least the largest permanent footprint, and makespan at least
// the critical path over the compute-only DAG.
func TestQuickScheduleInvariants(t *testing.T) {
	f := func(seed uint64, a, b, c uint8) bool {
		rng := util.NewRNG(seed)
		p := 2 + int(c)%4
		g := randomOwnerComputeDAG(rng, 5+int(a)%50, 3+int(b)%12, p)
		assign, err := OwnerComputeAssign(g, p)
		if err != nil {
			t.Logf("assign: %v", err)
			return false
		}
		for _, h := range []Heuristic{RCP, MPO, DTS} {
			s, err := ScheduleWith(h, g, assign, p, Unit(), 0)
			if err != nil {
				t.Logf("%v: %v", h, err)
				return false
			}
			if err := s.Validate(); err != nil {
				t.Logf("%v: %v", h, err)
				return false
			}
			minMem, tot := s.MinMem(), s.TOT()
			if minMem > tot {
				t.Logf("%v: MinMem %d > TOT %d", h, minMem, tot)
				return false
			}
			perm := s.PermSize()
			var maxPerm int64
			for _, v := range perm {
				if v > maxPerm {
					maxPerm = v
				}
			}
			if minMem < maxPerm {
				t.Logf("%v: MinMem %d below permanent %d", h, minMem, maxPerm)
				return false
			}
			if s.Makespan+1e-9 < g.CriticalPathLength(graph.ZeroComm)/float64(1) {
				// With Unit cost model task time == cost, so the makespan
				// can never beat the zero-comm critical path.
				t.Logf("%v: makespan %v below critical path", h, s.Makespan)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickMergeSlicesInvariants: merging never increases the slice count,
// preserves contiguity (new indices are non-decreasing and gap-free), and
// each merged slice's total H fits the budget whenever a single slice does.
func TestQuickMergeSlicesInvariants(t *testing.T) {
	f := func(hsRaw []uint16, budRaw uint16) bool {
		if len(hsRaw) == 0 {
			return true
		}
		hs := make([]int64, len(hsRaw))
		var maxH int64
		for i, v := range hsRaw {
			hs[i] = int64(v)%97 + 1
			if hs[i] > maxH {
				maxH = hs[i]
			}
		}
		budget := int64(budRaw)%200 + 1
		newIdx, n := MergeSlices(hs, budget)
		if n > len(hs) || n < 1 {
			return false
		}
		prev := int32(0)
		for i, idx := range newIdx {
			if idx < prev || idx > prev+1 {
				return false // not contiguous
			}
			if i == 0 && idx != 0 {
				return false
			}
			prev = idx
		}
		if int(prev)+1 != n {
			return false
		}
		// Sum of H within each merged slice obeys the budget unless a
		// single original slice alone exceeds it.
		sums := make([]int64, n)
		for i, idx := range newIdx {
			sums[idx] += hs[i]
		}
		if maxH <= budget {
			for _, s := range sums {
				if s > budget {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickDTSSliceOrderConsistent: for any random program, the DTS slice
// assignment is consistent with the dependence direction — an edge never
// goes from a later slice to an earlier one.
func TestQuickDTSSliceOrderConsistent(t *testing.T) {
	f := func(seed uint64, a, b uint8) bool {
		rng := util.NewRNG(seed)
		g := randomOwnerComputeDAG(rng, 5+int(a)%40, 3+int(b)%10, 2)
		sliceOf, _, err := Slices(g)
		if err != nil {
			t.Logf("slices: %v", err)
			return false
		}
		for ti := 0; ti < g.NumTasks(); ti++ {
			for _, e := range g.Out(graph.TaskID(ti)) {
				if sliceOf[e.From] > sliceOf[e.To] {
					t.Logf("edge %d->%d from slice %d to %d", e.From, e.To, sliceOf[e.From], sliceOf[e.To])
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}
