package sched

import (
	"testing"

	"repro/internal/graph"
	"repro/internal/sparse"
	"repro/internal/util"
)

func buildCholGraph(t *testing.T, p int) (*graph.DAG, []graph.Proc) {
	t.Helper()
	rng := util.NewRNG(42)
	m := sparse.AddRandomSymLinks(sparse.Grid2D(10, 8, true), 12, rng)
	m = m.PermuteSym(sparse.RCM(m))
	// Build a small block Cholesky-like graph via the chol package would
	// create an import cycle for tests; instead reuse Figure2-style graphs
	// plus a synthetic layered DAG below. For realism, tests in the paper
	// harness cover chol/lu; here we exercise the algorithms on the
	// reconstruction and random owner-compute DAGs.
	_ = m
	g := randomOwnerComputeDAG(rng, 60, 25, p)
	assign, err := OwnerComputeAssign(g, p)
	if err != nil {
		t.Fatal(err)
	}
	return g, assign
}

// randomOwnerComputeDAG builds a random DAG where each task writes exactly
// one object and reads a few earlier-written objects, with cyclic owners.
func randomOwnerComputeDAG(rng *util.RNG, nTasks, nObjs, p int) *graph.DAG {
	b := graph.NewBuilder()
	objs := make([]graph.ObjID, nObjs)
	for i := 0; i < nObjs; i++ {
		objs[i] = b.Object(objName(i), int64(1+rng.Intn(4)))
	}
	written := []graph.ObjID{}
	for t := 0; t < nTasks; t++ {
		var reads []graph.ObjID
		for r := 0; r < rng.Intn(3); r++ {
			if len(written) > 0 {
				reads = append(reads, written[rng.Intn(len(written))])
			}
		}
		wobj := objs[rng.Intn(nObjs)]
		b.Task(taskName(t), float64(1+rng.Intn(5)), reads, []graph.ObjID{wobj})
		written = append(written, wobj)
	}
	g, err := b.Build()
	if err != nil {
		panic(err)
	}
	CyclicOwners(g, p)
	return g
}

func objName(i int) string  { return "o" + string(rune('A'+i%26)) + string(rune('0'+i/26)) }
func taskName(i int) string { return "t" + string(rune('a'+i%26)) + string(rune('0'+i/26)) }

func TestAllHeuristicsProduceValidSchedules(t *testing.T) {
	for _, p := range []int{2, 3, 4} {
		g, assign := buildCholGraph(t, p)
		for _, h := range []Heuristic{RCP, MPO, DTS, DTSMerge, TreeMem} {
			s, err := ScheduleWith(h, g, assign, p, Unit(), 1<<30)
			if err != nil {
				t.Fatalf("p=%d %v: %v", p, h, err)
			}
			if err := s.Validate(); err != nil {
				t.Fatalf("p=%d %v: %v", p, h, err)
			}
			if s.Makespan <= 0 {
				t.Fatalf("p=%d %v: makespan %v", p, h, s.Makespan)
			}
			if s.MinMem() <= 0 || s.TOT() < s.MinMem() {
				t.Fatalf("p=%d %v: MinMem %d TOT %d", p, h, s.MinMem(), s.TOT())
			}
		}
	}
}

func TestRandomDAGsPropertySweep(t *testing.T) {
	rng := util.NewRNG(7)
	for trial := 0; trial < 25; trial++ {
		p := 2 + rng.Intn(4)
		g := randomOwnerComputeDAG(rng, 20+rng.Intn(60), 5+rng.Intn(20), p)
		assign, err := OwnerComputeAssign(g, p)
		if err != nil {
			t.Fatal(err)
		}
		for _, h := range []Heuristic{RCP, MPO, DTS} {
			s, err := ScheduleWith(h, g, assign, p, T3D(), 0)
			if err != nil {
				t.Fatalf("trial %d %v: %v", trial, h, err)
			}
			if err := s.Validate(); err != nil {
				t.Fatalf("trial %d %v: %v", trial, h, err)
			}
		}
	}
}

func TestDTSSliceMonotonePerProc(t *testing.T) {
	g, assign := buildCholGraph(t, 3)
	s, err := ScheduleDTS(g, assign, 3, Unit(), false, 0)
	if err != nil {
		t.Fatal(err)
	}
	for p := 0; p < s.P; p++ {
		prev := int32(-1)
		for _, task := range s.Order[p] {
			if s.Slices[task] < prev {
				t.Fatalf("proc %d executes slice %d after %d", p, s.Slices[task], prev)
			}
			prev = s.Slices[task]
		}
	}
}

func TestDTSTheorem2Bound(t *testing.T) {
	// Theorem 2: a DTS schedule is executable under S1/p + h per processor,
	// i.e. its per-processor peak is at most max permanent space + h.
	rng := util.NewRNG(11)
	for trial := 0; trial < 20; trial++ {
		p := 2 + rng.Intn(3)
		g := randomOwnerComputeDAG(rng, 30+rng.Intn(40), 6+rng.Intn(12), p)
		assign, err := OwnerComputeAssign(g, p)
		if err != nil {
			t.Fatal(err)
		}
		sliceOf, nSlices, err := Slices(g)
		if err != nil {
			t.Fatal(err)
		}
		hv := SliceVolatileNeed(g, assign, p, sliceOf, nSlices)
		var h int64
		for _, v := range hv {
			if v > h {
				h = v
			}
		}
		s, err := ScheduleDTS(g, assign, p, Unit(), false, 0)
		if err != nil {
			t.Fatal(err)
		}
		perm := s.PermSize()
		var maxPerm int64
		for _, v := range perm {
			if v > maxPerm {
				maxPerm = v
			}
		}
		if s.MinMem() > maxPerm+h {
			t.Fatalf("trial %d: DTS peak %d exceeds maxPerm %d + h %d", trial, s.MinMem(), maxPerm, h)
		}
	}
}

func TestMergeSlices(t *testing.T) {
	h := []int64{3, 2, 2, 5, 1, 1, 1}
	newIdx, n := MergeSlices(h, 5)
	// 3+2=5 ok; +2 exceeds -> new; 2+... 2+5 exceeds -> new; 5 alone; +1
	// exceeds? 5+1=6>5 -> new; 1+1+1=3 ok.
	want := []int32{0, 0, 1, 2, 3, 3, 3}
	if n != 4 {
		t.Fatalf("n = %d, want 4", n)
	}
	for i := range want {
		if newIdx[i] != want[i] {
			t.Fatalf("newIdx = %v, want %v", newIdx, want)
		}
	}
	// Huge budget merges everything.
	newIdx, n = MergeSlices(h, 1<<40)
	if n != 1 {
		t.Fatalf("full merge got %d slices", n)
	}
	// Tiny budget keeps all slices separate.
	_, n = MergeSlices(h, 1)
	if n != len(h) {
		t.Fatalf("no-merge got %d slices", n)
	}
}

func TestMergedDTSNotWorseInTime(t *testing.T) {
	g, assign := buildCholGraph(t, 4)
	plain, err := ScheduleDTS(g, assign, 4, Unit(), false, 0)
	if err != nil {
		t.Fatal(err)
	}
	merged, err := ScheduleDTS(g, assign, 4, Unit(), true, 1<<40)
	if err != nil {
		t.Fatal(err)
	}
	if merged.NumSlices > plain.NumSlices {
		t.Fatalf("merging increased slice count")
	}
	if merged.Makespan > plain.Makespan+1e-9 {
		t.Fatalf("full merge should not be slower: %v vs %v", merged.Makespan, plain.Makespan)
	}
}

func TestFigure2Progression(t *testing.T) {
	g := Figure2DAG()
	if g.NumTasks() != 20 || g.NumObjects() != 11 {
		t.Fatalf("reconstruction has %d tasks, %d objects", g.NumTasks(), g.NumObjects())
	}
	if err := g.CheckDependenceComplete(); err != nil {
		t.Fatal(err)
	}
	assign, err := OwnerComputeAssign(g, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Volatile sets must match the paper's text: VOLA(P0)={d8},
	// VOLA(P1)={d1,d3,d5,d7}.
	rcp, err := ScheduleRCP(g, assign, 2, Unit())
	if err != nil {
		t.Fatal(err)
	}
	vol := rcp.VolatileObjects()
	if len(vol[0]) != 1 || len(vol[1]) != 4 {
		t.Fatalf("volatile sets wrong: %v / %v", vol[0], vol[1])
	}
	mpo, err := ScheduleMPO(g, assign, 2, Unit())
	if err != nil {
		t.Fatal(err)
	}
	dts, err := ScheduleDTS(g, assign, 2, Unit(), false, 0)
	if err != nil {
		t.Fatal(err)
	}
	mr, mm, md := rcp.MinMem(), mpo.MinMem(), dts.MinMem()
	if !(mr >= mm && mm >= md) {
		t.Fatalf("memory progression violated: RCP %d, MPO %d, DTS %d", mr, mm, md)
	}
	if mr == md {
		t.Fatalf("reconstruction shows no memory spread: RCP %d DTS %d", mr, md)
	}
	t.Logf("Figure 2 reconstruction: MIN_MEM RCP=%d MPO=%d DTS=%d; makespan RCP=%.0f MPO=%.0f DTS=%.0f",
		mr, mm, md, rcp.Makespan, mpo.Makespan, dts.Makespan)
}

func TestLoadBalancedOwners(t *testing.T) {
	rng := util.NewRNG(13)
	b := graph.NewBuilder()
	var objs []graph.ObjID
	for i := 0; i < 12; i++ {
		objs = append(objs, b.Object(objName(i), 1))
	}
	for t := 0; t < 48; t++ {
		b.Task(taskName(t), float64(1+rng.Intn(9)), nil, []graph.ObjID{objs[t%12]})
	}
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	LoadBalancedOwners(g, 3)
	assign, err := OwnerComputeAssign(g, 3)
	if err != nil {
		t.Fatal(err)
	}
	load := make([]float64, 3)
	for ti := range g.Tasks {
		load[assign[ti]] += g.Tasks[ti].Cost
	}
	max, min := load[0], load[0]
	for _, l := range load {
		if l > max {
			max = l
		}
		if l < min {
			min = l
		}
	}
	if min == 0 || max/min > 2 {
		t.Fatalf("load imbalance too high: %v", load)
	}
}

func TestOwnerComputeAssignErrors(t *testing.T) {
	b := graph.NewBuilder()
	x := b.Object("x", 1)
	y := b.Object("y", 1)
	b.Task("t", 1, nil, []graph.ObjID{x, y})
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	g.Objects[x].Owner = 0
	g.Objects[y].Owner = 1
	if _, err := OwnerComputeAssign(g, 2); err == nil {
		t.Fatalf("expected error for split-owner writes")
	}
}

func TestCostModelEdgeComm(t *testing.T) {
	g := Figure2DAG()
	assign, _ := OwnerComputeAssign(g, 2)
	m := T3D()
	f := m.EdgeComm(g, assign)
	sawRemote := false
	for ti := 0; ti < g.NumTasks(); ti++ {
		for _, e := range g.Out(graph.TaskID(ti)) {
			c := f(e)
			if assign[e.From] == assign[e.To] && c != 0 {
				t.Fatalf("local edge charged %v", c)
			}
			if e.Kind == graph.DepTrue && assign[e.From] != assign[e.To] {
				if c < m.Latency {
					t.Fatalf("remote edge under-charged: %v", c)
				}
				sawRemote = true
			}
		}
	}
	if !sawRemote {
		t.Fatalf("no remote edges in Figure 2 graph")
	}
}
