package sched

import "repro/internal/graph"

// mpoPolicy implements the memory-priority guided ordering of Figure 4.
// The memory priority of a ready task is the fraction of the objects it
// needs that are already allocated on its processor (permanent objects are
// always allocated; volatile objects become allocated when a previously
// scheduled task on the same processor first used them). Critical-path
// priority breaks ties. As the paper notes, only the priorities of tasks
// affected by the newly scheduled task need refreshing: the engine is told
// to re-sink exactly the ready tasks that use a just-allocated object.
type mpoPolicy struct {
	g      *graph.DAG
	assign []graph.Proc
	bl     []float64
	// allocated[p] is the set of volatile objects already allocated on p
	// during the scheduling simulation.
	allocated []map[graph.ObjID]bool
	// waiting[p][o] lists ready tasks on p whose priority depends on the
	// (currently unallocated) volatile object o.
	waiting []map[graph.ObjID][]graph.TaskID
	refresh func(t graph.TaskID, p graph.Proc)
}

func newMPOPolicy(g *graph.DAG, assign []graph.Proc, p int, bl []float64) *mpoPolicy {
	alloc := make([]map[graph.ObjID]bool, p)
	waiting := make([]map[graph.ObjID][]graph.TaskID, p)
	for i := range alloc {
		alloc[i] = make(map[graph.ObjID]bool)
		waiting[i] = make(map[graph.ObjID][]graph.TaskID)
	}
	return &mpoPolicy{g: g, assign: assign, bl: bl, allocated: alloc, waiting: waiting}
}

func (m *mpoPolicy) setRefresh(f func(t graph.TaskID, p graph.Proc)) { m.refresh = f }

func (m *mpoPolicy) forObjects(t graph.TaskID, f func(o graph.ObjID)) {
	task := &m.g.Tasks[t]
	seen := make(map[graph.ObjID]bool, len(task.Reads)+len(task.Writes))
	for _, lists := range [2][]graph.ObjID{task.Reads, task.Writes} {
		for _, o := range lists {
			if !seen[o] {
				seen[o] = true
				f(o)
			}
		}
	}
}

func (m *mpoPolicy) keys(t graph.TaskID) (float64, float64) {
	p := m.assign[t]
	total, have := 0, 0
	m.forObjects(t, func(o graph.ObjID) {
		total++
		if m.g.Objects[o].Owner == p || m.allocated[p][o] {
			have++
		}
	})
	prio := 1.0
	if total > 0 {
		prio = float64(have) / float64(total)
	}
	return -prio, -m.bl[t]
}

func (m *mpoPolicy) eligible(graph.TaskID, graph.Proc) bool { return true }

func (m *mpoPolicy) inserted(t graph.TaskID, p graph.Proc) {
	m.forObjects(t, func(o graph.ObjID) {
		if m.g.Objects[o].Owner != p && !m.allocated[p][o] {
			m.waiting[p][o] = append(m.waiting[p][o], t)
		}
	})
}

func (m *mpoPolicy) scheduled(t graph.TaskID, p graph.Proc) {
	// Allocate all volatile objects the task uses that are not allocated
	// yet on its processor (line 4 of Figure 4), then refresh the ready
	// tasks whose memory priority just improved.
	m.forObjects(t, func(o graph.ObjID) {
		if m.g.Objects[o].Owner == p || m.allocated[p][o] {
			return
		}
		m.allocated[p][o] = true
		for _, w := range m.waiting[p][o] {
			if w != t {
				m.refresh(w, p)
			}
		}
		delete(m.waiting[p], o)
	})
}

// ScheduleMPO produces the memory-priority guided ordering of Section 4.1.
func ScheduleMPO(g *graph.DAG, assign []graph.Proc, p int, model CostModel) (*Schedule, error) {
	bl := g.BottomLevels(model.EdgeComm(g, assign))
	return runList(g, assign, p, model, newMPOPolicy(g, assign, p, bl), MPO)
}
