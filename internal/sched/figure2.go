package sched

import (
	"fmt"

	"repro/internal/graph"
)

// Figure2DAG builds a 20-task, 11-object DAG in the style of the paper's
// Figure 2 worked example. The exact figure is not recoverable from the
// text (it is an image), so this is a documented reconstruction that keeps
// every property the text states: tasks named T[i,j] read d_i and update
// d_j (T[j] only updates d_j); data objects are mapped cyclically,
// owner(d_i) = (i-1) mod p with p = 2, so PERM(P0) = {d1,d3,d5,d7,d9,d11}
// and PERM(P1) = {d2,d4,d6,d8,d10}; with owner-compute task assignment the
// volatile sets are VOLA(P0) = {d8} and VOLA(P1) = {d1,d3,d5,d7}; and the
// orderings trade memory for time the way the paper's example does
// (MIN_MEM 9 under RCP vs 7 under MPO/DTS, mirroring the 9/8/7 progression,
// with schedule length growing from RCP through MPO to DTS).
//
// Objects are of unit size; every task costs one unit; every message costs
// one unit (use the Unit cost model).
func Figure2DAG() *graph.DAG {
	b := graph.NewBuilder()
	d := make([]graph.ObjID, 12) // 1-based like the paper
	for i := 1; i <= 11; i++ {
		d[i] = b.Object(fmt.Sprintf("d%d", i), 1)
	}
	w := func(j int) { b.Task(fmt.Sprintf("T[%d]", j), 1, nil, []graph.ObjID{d[j]}) }
	rw := func(j int) {
		b.Task(fmt.Sprintf("T[%d]*", j), 1, []graph.ObjID{d[j]}, []graph.ObjID{d[j]})
	}
	t := func(i, j int) {
		b.Task(fmt.Sprintf("T[%d,%d]", i, j), 1, []graph.ObjID{d[i]}, []graph.ObjID{d[j]})
	}

	// P0 produces the four objects that become volatile copies on P1.
	w(1) // T[1]
	w(3) // T[3]
	w(5) // T[5]
	w(7) // T[7]
	// P1's main elimination chain T[2] -> T[1,2] -> T[2,4] -> ... carries
	// the critical path, so RCP starts the first reader of each volatile
	// object early (long bottom level) while their second readers (the
	// T[.,10] accumulation chain) have short bottom levels and run last —
	// keeping all four volatile objects alive at once. MPO and DTS instead
	// schedule both readers of a volatile object back to back.
	w(2)     // T[2]
	t(1, 2)  // T[1,2]
	t(2, 4)  // T[2,4]
	t(3, 4)  // T[3,4]
	t(5, 4)  // T[5,4]
	t(7, 4)  // T[7,4]
	t(4, 6)  // T[4,6]
	t(6, 8)  // T[6,8]
	t(7, 8)  // T[7,8]
	rw(8)    // T[8]
	t(1, 10) // T[1,10]
	t(3, 10) // T[3,10]
	t(5, 10) // T[5,10]
	t(7, 10) // T[7,10]
	// P0 tail consuming d8 (its only volatile object).
	t(8, 9)  // T[8,9]
	t(9, 11) // T[9,11]

	g, err := b.Build()
	if err != nil {
		panic("sched: Figure2DAG must build: " + err.Error())
	}
	// owner(d_i) = (i-1) mod 2.
	for i := 1; i <= 11; i++ {
		g.Objects[d[i]].Owner = graph.Proc((i - 1) % 2)
	}
	return g
}
