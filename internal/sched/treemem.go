package sched

import (
	"fmt"
	"sort"

	"repro/internal/graph"
)

// This file implements the TreeMem strategy: a memory-first scheduler built
// on the optimal sequential tree-traversal theory of Liu as revisited by
// Marchal–Sinnen–Vivien (arXiv 1210.2580) and Eyraud-Dubois et al. (arXiv
// 1410.0329). The scheduler first computes one global activation order that
// minimizes (exactly, on tree-shaped graphs; greedily otherwise) the
// footprint of a sequential sweep, then lifts it to p processors as a
// rank-strict list schedule: each processor executes its tasks exactly in
// activation order. Because every per-processor order is then a projection
// of the global order, the realized per-processor peak is bounded by the
// sequential sweep's footprint — the 2014-style "parallel execution of a
// sequential traversal" guarantee, checked end to end in the test suite.

// hvSeg is one canonical hill/valley segment of a subtree traversal
// profile: executing the segment's tasks raises the alive volatile total to
// at most hill (absolute, relative to the subtree entry level 0) and leaves
// it at base. Canonical sequences have strictly decreasing hills and
// strictly increasing bases, which makes the decreasing (hill−base) merge
// of child sequences optimal (Liu's theorem).
type hvSeg struct {
	hill, base int64
	tasks      []graph.TaskID
}

// treeParents reports whether every task has at most one distinct successor
// over all dependence kinds — i.e. the whole DAG is an in-forest — and
// returns the parent array (graph.None-typed -1 for roots) if so.
func treeParents(g *graph.DAG) ([]graph.TaskID, bool) {
	n := g.NumTasks()
	parent := make([]graph.TaskID, n)
	for t := 0; t < n; t++ {
		parent[t] = -1
		for _, e := range g.Out(graph.TaskID(t)) {
			if parent[t] == -1 {
				parent[t] = e.To
			} else if parent[t] != e.To {
				return nil, false
			}
		}
	}
	return parent, true
}

// volKey identifies a volatile copy: object o held on processor q ≠ owner.
type volKey struct {
	q graph.Proc
	o graph.ObjID
}

// volatileTouchers groups, for every volatile copy, the tasks that touch it
// (each task listed once), in task-ID order.
func volatileTouchers(g *graph.DAG, assign []graph.Proc) map[volKey][]graph.TaskID {
	touch := make(map[volKey][]graph.TaskID)
	for t := 0; t < g.NumTasks(); t++ {
		q := assign[t]
		task := &g.Tasks[t]
		seen := make(map[graph.ObjID]bool, len(task.Reads)+len(task.Writes))
		for _, lists := range [2][]graph.ObjID{task.Reads, task.Writes} {
			for _, o := range lists {
				if g.Objects[o].Owner == q || seen[o] {
					continue
				}
				seen[o] = true
				k := volKey{q, o}
				touch[k] = append(touch[k], graph.TaskID(t))
			}
		}
	}
	return touch
}

// liuContrib computes, for an in-forest DAG whose volatile toucher sets are
// ancestor chains, the per-task allocation and release totals: alloc[t] is
// the size of volatile copies whose first use (in every valid traversal) is
// t, free[t] those whose last use is t. With chains these positions are
// order-independent — the deepest toucher is a descendant of the others and
// therefore always runs first; the shallowest always runs last — which is
// exactly what makes the hill/valley algebra applicable. Returns ok=false
// when some toucher set is not a chain.
func liuContrib(g *graph.DAG, assign []graph.Proc, parent []graph.TaskID) (alloc, free []int64, ok bool) {
	n := g.NumTasks()
	depth := make([]int32, n)
	for t := 0; t < n; t++ {
		depth[t] = -1
	}
	var depthOf func(t graph.TaskID) int32
	depthOf = func(t graph.TaskID) int32 {
		// Iterative: walk up to a known depth, then fill back down.
		var chain []graph.TaskID
		u := t
		for depth[u] == -1 {
			chain = append(chain, u)
			if parent[u] == -1 {
				depth[u] = 0
				break
			}
			u = parent[u]
		}
		for i := len(chain) - 1; i >= 0; i-- {
			c := chain[i]
			if depth[c] != -1 {
				continue
			}
			depth[c] = depth[parent[c]] + 1
		}
		return depth[t]
	}
	for t := 0; t < n; t++ {
		depthOf(graph.TaskID(t))
	}
	isAncestor := func(anc, t graph.TaskID) bool {
		for depth[t] > depth[anc] {
			t = parent[t]
		}
		return t == anc
	}

	alloc = make([]int64, n)
	free = make([]int64, n)
	touch := volatileTouchers(g, assign)
	keys := make([]volKey, 0, len(touch))
	for k := range touch { //det:ok keys collected then sorted
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].q != keys[j].q {
			return keys[i].q < keys[j].q
		}
		return keys[i].o < keys[j].o
	})
	for _, k := range keys {
		ts := touch[k]
		sort.Slice(ts, func(i, j int) bool { return depth[ts[i]] > depth[ts[j]] })
		for i := 1; i < len(ts); i++ {
			if depth[ts[i]] == depth[ts[i-1]] || !isAncestor(ts[i], ts[i-1]) {
				return nil, nil, false
			}
		}
		sz := g.Objects[k.o].Size
		alloc[ts[0]] += sz        // deepest toucher allocates
		free[ts[len(ts)-1]] += sz // shallowest toucher releases
	}
	return alloc, free, true
}

// composeLiu merges the canonical child traversal sequences of a node in
// decreasing (hill − base) order — optimal by Liu's theorem because each
// canonical sequence is itself sorted that way — and appends the node's own
// segment, re-canonicalizing as it goes. self == -1 composes root
// sequences without appending a node.
func composeLiu(children [][]hvSeg, selfAlloc, selfFree int64, self graph.TaskID) []hvSeg {
	type rel struct {
		h, d  int64
		tasks []graph.TaskID
	}
	var rels []rel
	for _, segs := range children {
		prev := int64(0)
		for _, sg := range segs {
			rels = append(rels, rel{h: sg.hill - prev, d: sg.base - prev, tasks: sg.tasks})
			prev = sg.base
		}
	}
	// Stable sort keeps per-child segment order on ties (within a child the
	// key is strictly decreasing, so only cross-child ties exist).
	sort.SliceStable(rels, func(i, j int) bool {
		return rels[i].h-rels[i].d > rels[j].h-rels[j].d
	})

	var out []hvSeg
	base := int64(0)
	push := func(h, d int64, tasks []graph.TaskID) {
		out = append(out, hvSeg{hill: base + h, base: base + d, tasks: tasks})
		base += d
		for len(out) >= 2 {
			a, b := out[len(out)-2], out[len(out)-1]
			if b.hill < a.hill && b.base > a.base {
				break // canonical: hills decrease, bases increase
			}
			hill := a.hill
			if b.hill > hill {
				hill = b.hill
			}
			merged := hvSeg{hill: hill, base: b.base}
			merged.tasks = append(append([]graph.TaskID(nil), a.tasks...), b.tasks...)
			out = out[:len(out)-2]
			out = append(out, merged)
		}
	}
	for _, r := range rels {
		push(r.h, r.d, r.tasks)
	}
	if self >= 0 {
		push(selfAlloc, selfAlloc-selfFree, []graph.TaskID{self})
	}
	return out
}

// liuOrder computes Liu's memory-optimal traversal of an in-forest DAG.
func liuOrder(g *graph.DAG, parent []graph.TaskID, alloc, free []int64) ([]graph.TaskID, error) {
	topo, err := g.TopoSort()
	if err != nil {
		return nil, err
	}
	n := g.NumTasks()
	kids := make([][]graph.TaskID, n)
	roots := make([]graph.TaskID, 0)
	for t := 0; t < n; t++ {
		if parent[t] == -1 {
			roots = append(roots, graph.TaskID(t))
		} else {
			kids[parent[t]] = append(kids[parent[t]], graph.TaskID(t))
		}
	}
	for t := range kids {
		sort.Slice(kids[t], func(i, j int) bool { return kids[t][i] < kids[t][j] })
	}
	seqs := make([][]hvSeg, n)
	for _, t := range topo { // children precede parents in any topo order
		childSeqs := make([][]hvSeg, 0, len(kids[t]))
		for _, c := range kids[t] {
			childSeqs = append(childSeqs, seqs[c])
		}
		seqs[t] = composeLiu(childSeqs, alloc[t], free[t], t)
	}
	rootSeqs := make([][]hvSeg, 0, len(roots))
	for _, r := range roots {
		rootSeqs = append(rootSeqs, seqs[r])
	}
	final := composeLiu(rootSeqs, 0, 0, -1)
	order := make([]graph.TaskID, 0, n)
	for _, sg := range final {
		order = append(order, sg.tasks...)
	}
	if len(order) != n {
		return nil, fmt.Errorf("sched: liu traversal emitted %d of %d tasks", len(order), n)
	}
	return order, nil
}

// greedyMemOrder computes a memory-sweep linear extension of an arbitrary
// DAG: among ready tasks, repeatedly pick the one with the smallest net
// growth of the summed alive volatile space (ties: smallest new allocation,
// then largest bottom level, then task ID). This is the general-DAG
// fallback of the tree traversal — on trees with chain-shaped lifetimes it
// tends to match Liu but carries no optimality proof.
func greedyMemOrder(g *graph.DAG, assign []graph.Proc, model CostModel) []graph.TaskID {
	n := g.NumTasks()
	bl := g.BottomLevels(model.EdgeComm(g, assign))

	// Distinct volatile copies per task, and total touch counts per copy.
	vols := make([][]volKey, n)
	left := make(map[volKey]int32)
	for t := 0; t < n; t++ {
		q := assign[t]
		task := &g.Tasks[t]
		seen := make(map[graph.ObjID]bool, len(task.Reads)+len(task.Writes))
		for _, lists := range [2][]graph.ObjID{task.Reads, task.Writes} {
			for _, o := range lists {
				if g.Objects[o].Owner == q || seen[o] {
					continue
				}
				seen[o] = true
				k := volKey{q, o}
				vols[t] = append(vols[t], k)
				left[k]++
			}
		}
	}

	remaining := make([]int32, n)
	for t := 0; t < n; t++ {
		remaining[t] = int32(len(g.In(graph.TaskID(t))))
	}
	ready := make([]graph.TaskID, 0, n)
	for t := 0; t < n; t++ {
		if remaining[t] == 0 {
			ready = append(ready, graph.TaskID(t))
		}
	}
	alive := make(map[volKey]bool)
	order := make([]graph.TaskID, 0, n)
	for len(ready) > 0 {
		besti := -1
		var bestGrow, bestAlloc int64
		for i, t := range ready {
			var grow, allocNew int64
			for _, k := range vols[t] {
				sz := g.Objects[k.o].Size
				if !alive[k] {
					allocNew += sz
					grow += sz
				}
				if left[k] == 1 {
					grow -= sz
				}
			}
			if besti == -1 {
				besti, bestGrow, bestAlloc = i, grow, allocNew
				continue
			}
			b := ready[besti]
			better := false
			switch {
			case grow != bestGrow:
				better = grow < bestGrow
			case allocNew != bestAlloc:
				better = allocNew < bestAlloc
			case bl[t] != bl[b]:
				better = bl[t] > bl[b]
			default:
				better = t < b
			}
			if better {
				besti, bestGrow, bestAlloc = i, grow, allocNew
			}
		}
		t := ready[besti]
		ready = append(ready[:besti], ready[besti+1:]...)
		order = append(order, t)
		for _, k := range vols[t] {
			alive[k] = true
			left[k]--
			if left[k] == 0 {
				delete(alive, k)
			}
		}
		for _, e := range g.Out(t) {
			remaining[e.To]--
			if remaining[e.To] == 0 {
				ready = append(ready, e.To)
			}
		}
	}
	return order
}

// TreeMemOrder computes the TreeMem global activation order: Liu's
// memory-optimal traversal when the DAG is an in-forest whose volatile
// lifetimes are ancestor chains (liu=true), the greedy memory sweep
// otherwise. The returned order is always a linear extension of the full
// dependence graph.
func TreeMemOrder(g *graph.DAG, assign []graph.Proc, model CostModel) (order []graph.TaskID, liu bool, err error) {
	if parent, isForest := treeParents(g); isForest {
		if alloc, free, chains := liuContrib(g, assign, parent); chains {
			o, err := liuOrder(g, parent, alloc, free)
			if err != nil {
				return nil, false, err
			}
			return o, true, nil
		}
	}
	return greedyMemOrder(g, assign, model), false, nil
}

// SequentialFootprint evaluates an activation order as if one processor at
// a time executed it: the maximum, over positions, of the largest permanent
// residency plus the total alive volatile space summed across processors
// (each volatile copy alive from the first to the last position of its
// touchers). Because every per-processor order of a TreeMem schedule is a
// projection of the activation order, each realized per-processor peak — and
// therefore MIN_MEM — is bounded by this footprint (the 2014-style bound).
func SequentialFootprint(g *graph.DAG, assign []graph.Proc, p int, order []graph.TaskID) int64 {
	perm := make([]int64, p)
	for i := range g.Objects {
		o := &g.Objects[i]
		if o.Owner >= 0 {
			perm[o.Owner] += o.Size
		}
	}
	var maxPerm int64
	for _, v := range perm {
		if v > maxPerm {
			maxPerm = v
		}
	}
	pos := make([]int32, g.NumTasks())
	for i, t := range order {
		pos[t] = int32(i)
	}
	first := make(map[volKey]int32)
	last := make(map[volKey]int32)
	for k, ts := range volatileTouchers(g, assign) { //det:ok folds into position extremes, commutative
		lo, hi := int32(len(order)), int32(-1)
		for _, t := range ts {
			if pos[t] < lo {
				lo = pos[t]
			}
			if pos[t] > hi {
				hi = pos[t]
			}
		}
		first[k] = lo
		last[k] = hi
	}
	allocAt := make([]int64, len(order)+1)
	freeAfter := make([]int64, len(order)+1)
	for k := range first { //det:ok sums into position buckets, commutative
		allocAt[first[k]] += g.Objects[k.o].Size
		freeAfter[last[k]] += g.Objects[k.o].Size
	}
	peak := maxPerm
	var aliveVol int64
	for i := range order {
		aliveVol += allocAt[i]
		if req := maxPerm + aliveVol; req > peak {
			peak = req
		}
		aliveVol -= freeAfter[i]
	}
	return peak
}

// rankPolicy makes each processor execute its tasks exactly in activation
// order: a ready task is eligible only when it is its processor's
// head-of-line task by global rank. The globally smallest unscheduled rank
// is always ready (the order is a linear extension) and head-of-line on its
// processor, so the policy never starves the list engine.
type rankPolicy struct {
	rank      []int32
	procRanks [][]int32 // ascending ranks of each processor's tasks
	next      []int
}

func newRankPolicy(order []graph.TaskID, assign []graph.Proc, p int) *rankPolicy {
	r := &rankPolicy{
		rank:      make([]int32, len(order)),
		procRanks: make([][]int32, p),
		next:      make([]int, p),
	}
	for i, t := range order {
		r.rank[t] = int32(i)
		q := assign[t]
		r.procRanks[q] = append(r.procRanks[q], int32(i))
	}
	// Ranks arrive in ascending order per processor (one pass over order).
	return r
}

func (r *rankPolicy) keys(t graph.TaskID) (float64, float64) {
	return float64(r.rank[t]), 0
}

func (r *rankPolicy) eligible(t graph.TaskID, p graph.Proc) bool {
	return r.rank[t] == r.procRanks[p][r.next[p]]
}

func (r *rankPolicy) inserted(graph.TaskID, graph.Proc) {}

func (r *rankPolicy) scheduled(t graph.TaskID, p graph.Proc) {
	r.next[p]++
}

// ScheduleTreeMem produces the tree-memory schedule: the TreeMemOrder
// activation order lifted to p processors rank-strictly, so that MIN_MEM of
// the result is bounded by SequentialFootprint of the order.
func ScheduleTreeMem(g *graph.DAG, assign []graph.Proc, p int, model CostModel) (*Schedule, error) {
	order, _, err := TreeMemOrder(g, assign, model)
	if err != nil {
		return nil, err
	}
	pol := newRankPolicy(order, assign, p)
	return runList(g, assign, p, model, pol, TreeMem)
}
