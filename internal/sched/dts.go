package sched

import (
	"fmt"

	"repro/internal/graph"
)

// assocObjects returns the data nodes a task is associated with in the data
// connection graph (Section 4.2): the objects it uses but does not modify,
// or, if it has none (e.g. it only modifies objects), the objects it
// modifies.
func assocObjects(t *graph.Task) []graph.ObjID {
	writes := make(map[graph.ObjID]bool, len(t.Writes))
	for _, o := range t.Writes {
		writes[o] = true
	}
	var assoc []graph.ObjID
	seen := map[graph.ObjID]bool{}
	for _, o := range t.Reads {
		if !writes[o] && !seen[o] {
			seen[o] = true
			assoc = append(assoc, o)
		}
	}
	if len(assoc) == 0 {
		for _, o := range t.Writes {
			if !seen[o] {
				seen[o] = true
				assoc = append(assoc, o)
			}
		}
	}
	return assoc
}

// BuildDCG constructs the data connection graph of the DAG: one node per
// data object, doubly-directed edges among the objects associated with a
// common task, and an edge d_i -> d_j for every task dependence edge
// (Tx, Ty) with Tx associated with d_i and Ty associated with d_j. It
// returns the adjacency list and the per-task association lists.
func BuildDCG(g *graph.DAG) (adj [][]int32, assoc [][]graph.ObjID) {
	m := g.NumObjects()
	adj = make([][]int32, m)
	assoc = make([][]graph.ObjID, g.NumTasks())
	addEdge := func(a, b graph.ObjID) {
		if a == b {
			return
		}
		adj[a] = append(adj[a], int32(b))
	}
	for ti := range g.Tasks {
		as := assocObjects(&g.Tasks[ti])
		assoc[ti] = as
		// Strongly connect multi-associated data nodes.
		for i := 0; i < len(as); i++ {
			for j := i + 1; j < len(as); j++ {
				addEdge(as[i], as[j])
				addEdge(as[j], as[i])
			}
		}
	}
	for ti := range g.Tasks {
		for _, e := range g.Out(graph.TaskID(ti)) {
			for _, di := range assoc[e.From] {
				for _, dj := range assoc[e.To] {
					addEdge(di, dj)
				}
			}
		}
	}
	return adj, assoc
}

// Slices computes the DTS slices: strongly connected components of the DCG
// in a topological order of the condensation. It returns sliceOf[task] and
// the number of slices. Tasks associated with multiple objects always land
// in a single slice because their data nodes are strongly connected.
func Slices(g *graph.DAG) (sliceOf []int32, nSlices int, err error) {
	adj, assoc := BuildDCG(g)
	comp, nc := graph.SCC(adj)
	// Tarjan indices are reverse-topological; flip them.
	sliceOf = make([]int32, g.NumTasks())
	for ti := range sliceOf {
		as := assoc[ti]
		if len(as) == 0 {
			return nil, 0, fmt.Errorf("sched: task %q accesses no objects", g.Tasks[ti].Name)
		}
		s := int32(nc) - 1 - comp[as[0]]
		for _, o := range as[1:] {
			if s2 := int32(nc) - 1 - comp[o]; s2 != s {
				return nil, 0, fmt.Errorf("sched: task %q spans slices %d and %d", g.Tasks[ti].Name, s, s2)
			}
		}
		sliceOf[ti] = s
	}
	return sliceOf, nc, nil
}

// SliceVolatileNeed computes H(R, L) for every slice (Definition 7): the
// maximum over processors of the total size of distinct volatile objects
// used by the slice's tasks on that processor.
func SliceVolatileNeed(g *graph.DAG, assign []graph.Proc, p int, sliceOf []int32, nSlices int) []int64 {
	type key struct {
		slice int32
		proc  graph.Proc
		obj   graph.ObjID
	}
	seen := make(map[key]bool)
	perProc := make([][]int64, nSlices)
	for s := range perProc {
		perProc[s] = make([]int64, p)
	}
	for ti := range g.Tasks {
		t := &g.Tasks[ti]
		s := sliceOf[ti]
		q := assign[ti]
		for _, lists := range [2][]graph.ObjID{t.Reads, t.Writes} {
			for _, o := range lists {
				if g.Objects[o].Owner == q {
					continue
				}
				k := key{s, q, o}
				if seen[k] {
					continue
				}
				seen[k] = true
				perProc[s][q] += g.Objects[o].Size
			}
		}
	}
	h := make([]int64, nSlices)
	for s := 0; s < nSlices; s++ {
		for q := 0; q < p; q++ {
			if perProc[s][q] > h[s] {
				h[s] = perProc[s][q]
			}
		}
	}
	return h
}

// MergeSlices implements the greedy slice-merging of Figure 6: consecutive
// slices are merged while the sum of their volatile requirements stays
// within availVolatile (AVAIL_MEM expressed as the per-processor volatile
// budget). It returns the new slice index for each original slice and the
// new slice count.
func MergeSlices(h []int64, availVolatile int64) (newIdx []int32, nNew int) {
	newIdx = make([]int32, len(h))
	if len(h) == 0 {
		return newIdx, 0
	}
	cur := int32(0)
	spaceReq := h[0]
	newIdx[0] = 0
	for i := 1; i < len(h); i++ {
		if spaceReq+h[i] <= availVolatile {
			newIdx[i] = cur
			spaceReq += h[i]
		} else {
			cur++
			newIdx[i] = cur
			spaceReq = h[i]
		}
	}
	return newIdx, int(cur) + 1
}

// dtsPolicy schedules slice by slice: on each processor, a ready task is
// eligible only if no unscheduled task on the same processor belongs to an
// earlier slice. Within a slice, critical-path priority orders tasks.
type dtsPolicy struct {
	sliceOf []int32
	bl      []float64
	// unsched[p][s] counts unscheduled tasks of slice s on processor p;
	// minSlice[p] is the smallest s with unsched[p][s] > 0.
	unsched  [][]int32
	minSlice []int32
	nSlices  int
}

func newDTSPolicy(g *graph.DAG, assign []graph.Proc, p int, sliceOf []int32, nSlices int, bl []float64) *dtsPolicy {
	d := &dtsPolicy{
		sliceOf:  sliceOf,
		bl:       bl,
		unsched:  make([][]int32, p),
		minSlice: make([]int32, p),
		nSlices:  nSlices,
	}
	for q := 0; q < p; q++ {
		d.unsched[q] = make([]int32, nSlices)
	}
	for ti := range g.Tasks {
		d.unsched[assign[ti]][sliceOf[ti]]++
	}
	for q := 0; q < p; q++ {
		d.advance(graph.Proc(q))
	}
	return d
}

func (d *dtsPolicy) advance(p graph.Proc) {
	for int(d.minSlice[p]) < d.nSlices && d.unsched[p][d.minSlice[p]] == 0 {
		d.minSlice[p]++
	}
}

func (d *dtsPolicy) keys(t graph.TaskID) (float64, float64) {
	// Slice-major (ascending) so that the heap top always carries the
	// smallest ready slice; an ineligible top therefore implies no
	// eligible ready task on the processor.
	return float64(d.sliceOf[t]), -d.bl[t]
}

func (d *dtsPolicy) eligible(t graph.TaskID, p graph.Proc) bool {
	return d.sliceOf[t] == d.minSlice[p]
}

func (d *dtsPolicy) inserted(graph.TaskID, graph.Proc) {}

func (d *dtsPolicy) scheduled(t graph.TaskID, p graph.Proc) {
	d.unsched[p][d.sliceOf[t]]--
	d.advance(p)
}

// ScheduleDTS produces the data-access directed time-slicing schedule of
// Section 4.2. If merge is true, consecutive slices are first merged under
// the per-processor volatile budget availVolatile (Figure 6); otherwise
// availVolatile is ignored.
func ScheduleDTS(g *graph.DAG, assign []graph.Proc, p int, model CostModel, merge bool, availVolatile int64) (*Schedule, error) {
	sliceOf, nSlices, err := Slices(g)
	if err != nil {
		return nil, err
	}
	h := DTS
	if merge {
		hv := SliceVolatileNeed(g, assign, p, sliceOf, nSlices)
		newIdx, nNew := MergeSlices(hv, availVolatile)
		for ti := range sliceOf {
			sliceOf[ti] = newIdx[sliceOf[ti]]
		}
		nSlices = nNew
		h = DTSMerge
	}
	bl := g.BottomLevels(model.EdgeComm(g, assign))
	pol := newDTSPolicy(g, assign, p, sliceOf, nSlices, bl)
	s, err := runList(g, assign, p, model, pol, h)
	if err != nil {
		return nil, err
	}
	s.Slices = sliceOf
	s.NumSlices = nSlices
	return s, nil
}

// Schedule dispatches to the requested heuristic. availVolatile is only
// used by DTSMerge.
func ScheduleWith(h Heuristic, g *graph.DAG, assign []graph.Proc, p int, model CostModel, availVolatile int64) (*Schedule, error) {
	switch h {
	case RCP:
		return ScheduleRCP(g, assign, p, model)
	case MPO:
		return ScheduleMPO(g, assign, p, model)
	case DTS:
		return ScheduleDTS(g, assign, p, model, false, 0)
	case DTSMerge:
		return ScheduleDTS(g, assign, p, model, true, availVolatile)
	case TreeMem:
		return ScheduleTreeMem(g, assign, p, model)
	}
	return nil, fmt.Errorf("sched: unknown heuristic %d", h)
}
