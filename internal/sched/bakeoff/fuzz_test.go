package bakeoff

import (
	"bytes"
	"testing"

	"repro/internal/graph"
	"repro/internal/mem"
	"repro/internal/plan"
	"repro/internal/sched"
)

// FuzzGenerators drives the scenario zoo with arbitrary (generator, seed,
// size) triples and asserts the whole-pipe contract: every emitted
// structure builds and validates, accepts an owner-compute assignment,
// schedules under every heuristic family, fits a MAP plan at TOT, and
// round-trips the plan codec byte-identically after compilation.
func FuzzGenerators(f *testing.F) {
	f.Add(uint8(0), uint64(1), uint16(24))
	f.Add(uint8(1), uint64(2), uint16(30))
	f.Add(uint8(2), uint64(3), uint16(18))
	f.Add(uint8(3), uint64(7), uint16(16))
	f.Add(uint8(200), uint64(0), uint16(0))
	f.Add(uint8(1), uint64(0xDEADBEEF), uint16(65535))
	f.Fuzz(func(t *testing.T, genIdx uint8, seed uint64, rawSize uint16) {
		zoo := graph.Scenarios()
		sc := zoo[int(genIdx)%len(zoo)]
		size := int(rawSize%180) + 2
		g, err := sc.Build(seed, size)
		if err != nil {
			t.Fatalf("%s(seed=%d,size=%d): build: %v", sc.Name, seed, size, err)
		}
		if err := g.Validate(); err != nil {
			t.Fatalf("%s(seed=%d,size=%d): validate: %v", sc.Name, seed, size, err)
		}
		const procs = 2
		if !sc.PresetOwners {
			sched.CyclicOwners(g, procs)
		}
		assign, err := sched.OwnerComputeAssign(g, procs)
		if err != nil {
			t.Fatalf("%s(seed=%d,size=%d): assign: %v", sc.Name, seed, size, err)
		}
		heuristics := Heuristics()
		h := heuristics[int(seed%uint64(len(heuristics)))]
		model := sched.Unit()
		s, err := sched.ScheduleWith(h, g, assign, procs, model, 1<<40)
		if err != nil {
			t.Fatalf("%s/%s: schedule: %v", sc.Name, h, err)
		}
		if err := s.Validate(); err != nil {
			t.Fatalf("%s/%s: schedule invalid: %v", sc.Name, h, err)
		}
		capacity := s.TOT() + 1
		mp, err := mem.NewPlan(s, capacity)
		if err != nil {
			t.Fatalf("%s/%s: plan: %v", sc.Name, h, err)
		}
		if !mp.Executable {
			t.Fatalf("%s/%s: plan not executable at TOT+1", sc.Name, h)
		}
		a := &plan.Artifact{
			Fingerprint: plan.Fingerprint(g, []byte{byte(h), procs}),
			Model:       model,
			Capacity:    capacity,
			Schedule:    s,
			Mem:         mp,
		}
		enc, err := plan.Encode(a)
		if err != nil {
			t.Fatalf("%s/%s: encode: %v", sc.Name, h, err)
		}
		back, err := plan.Decode(enc)
		if err != nil {
			t.Fatalf("%s/%s: decode: %v", sc.Name, h, err)
		}
		enc2, err := plan.Encode(back)
		if err != nil {
			t.Fatalf("%s/%s: re-encode: %v", sc.Name, h, err)
		}
		if !bytes.Equal(enc, enc2) {
			t.Fatalf("%s/%s: codec round-trip changed plan bytes", sc.Name, h)
		}
	})
}
