package bakeoff

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "regenerate the golden bake-off table")

const goldenPath = "../../../testdata/bakeoff/table.tsv"

func runTable(t *testing.T) *Table {
	t.Helper()
	structures, err := DefaultStructures()
	if err != nil {
		t.Fatal(err)
	}
	tbl, err := Run(structures)
	if err != nil {
		t.Fatal(err)
	}
	return tbl
}

// TestBakeoffGolden is the regression gate: the freshly measured table must
// match the committed golden bytes; if it doesn't, any cell that got worse
// in makespan, MIN_MEM, peak, or executability fails the build with a
// per-cell diagnosis, and a mere improvement fails asking for an -update
// bless so the better numbers become the new floor.
func TestBakeoffGolden(t *testing.T) {
	tbl := runTable(t)
	got := tbl.TSV()
	if *update {
		if err := os.MkdirAll(filepath.Dir(goldenPath), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath, got, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %d cells to %s", len(tbl.Cells), goldenPath)
		return
	}
	want, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("missing golden table (generate with -update): %v", err)
	}
	if bytes.Equal(got, want) {
		return
	}
	prev, err := ParseTSV(want)
	if err != nil {
		t.Fatalf("golden table unparseable: %v", err)
	}
	next, err := ParseTSV(got)
	if err != nil {
		t.Fatalf("fresh table unparseable: %v", err)
	}
	if regs := Compare(prev, next); len(regs) > 0 {
		var b strings.Builder
		for _, r := range regs {
			fmt.Fprintf(&b, "  %s: %s\n", r.Key, r.Reason)
		}
		t.Fatalf("bake-off regressions against %s:\n%s", goldenPath, b.String())
	}
	t.Fatalf("bake-off table drifted without regressions (improvement or zoo change); bless with:\n  go test ./internal/sched/bakeoff -run TestBakeoffGolden -update")
}

// TestTableByteStable re-runs the harness and requires identical bytes:
// the golden gate is meaningless if generation itself wobbles.
func TestTableByteStable(t *testing.T) {
	a := runTable(t).TSV()
	b := runTable(t).TSV()
	if !bytes.Equal(a, b) {
		t.Fatal("two bake-off runs produced different bytes")
	}
}

// TestTableCoverage pins the acceptance shape of the zoo: at least 4
// structures × 4 schedulers × 3 budgets, with exact-frontier gap columns
// populated on the small instances (including a DTS gap measurement).
func TestTableCoverage(t *testing.T) {
	tbl := runTable(t)
	structures := map[string]bool{}
	scheds := map[string]bool{}
	budgets := map[int]bool{}
	dtsGap := false
	for i := range tbl.Cells {
		c := &tbl.Cells[i]
		structures[c.Structure] = true
		scheds[c.Sched.String()] = true
		budgets[c.BudgetPct] = true
		if c.HasGap && c.Sched.String() == "DTS" {
			dtsGap = true
			if c.GapTime < 1-1e-9 || c.GapMem < 1-1e-9 {
				t.Errorf("%s: gap below 1 beats the exact frontier (gapTime=%g gapMem=%g)", c.Key(), c.GapTime, c.GapMem)
			}
		}
	}
	if len(structures) < 4 || len(scheds) < 4 || len(budgets) < 3 {
		t.Fatalf("zoo too small: %d structures, %d schedulers, %d budgets", len(structures), len(scheds), len(budgets))
	}
	if !dtsGap {
		t.Fatal("no exact-frontier gap measured for DTS on any structure")
	}
}

// TestCompareCatchesWorsenedCells deliberately worsens parsed cells and
// checks the gate trips — the mutation check for the regression machinery
// itself.
func TestCompareCatchesWorsenedCells(t *testing.T) {
	tbl := runTable(t)
	golden, err := ParseTSV(tbl.TSV())
	if err != nil {
		t.Fatal(err)
	}
	mutations := []struct {
		name   string
		mutate func(c *Cell)
	}{
		{"makespan", func(c *Cell) { c.Makespan *= 1.5 }},
		{"minmem", func(c *Cell) { c.MinMem++ }},
		{"peakmax", func(c *Cell) { c.PeakMax += 3 }},
		{"executability", func(c *Cell) { c.Executable = false }},
	}
	for _, m := range mutations {
		worse, _ := ParseTSV(tbl.TSV())
		mutated := false
		for i := range worse.Cells {
			if m.name != "executability" || worse.Cells[i].Executable {
				m.mutate(&worse.Cells[i])
				mutated = true
				break
			}
		}
		if !mutated {
			t.Fatalf("%s: no cell to mutate", m.name)
		}
		if regs := Compare(golden, worse); len(regs) == 0 {
			t.Errorf("worsened %s not caught by Compare", m.name)
		}
	}
	// Improvements must NOT trip the gate (they require -update instead).
	better, _ := ParseTSV(tbl.TSV())
	for i := range better.Cells {
		if better.Cells[i].MinMem > 1 {
			better.Cells[i].MinMem--
			break
		}
	}
	if regs := Compare(golden, better); len(regs) != 0 {
		t.Errorf("improvement flagged as regression: %v", regs)
	}
}

// TestParseTSVRoundTrip checks render → parse → render is the identity.
func TestParseTSVRoundTrip(t *testing.T) {
	tbl := runTable(t)
	raw := tbl.TSV()
	back, err := ParseTSV(raw)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(raw, back.TSV()) {
		t.Fatal("TSV -> ParseTSV -> TSV is not the identity")
	}
	if _, err := ParseTSV([]byte("nonsense\n")); err == nil {
		t.Fatal("ParseTSV accepted a garbage header")
	}
}
