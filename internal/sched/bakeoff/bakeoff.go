// Package bakeoff runs the scheduler regression bake-off: every scheduling
// heuristic over every scenario-zoo structure under several memory budgets,
// with the exact branch-and-bound frontier as ground truth on the small
// instances. The result is rendered as a byte-stable TSV table that lives
// under testdata/bakeoff/ at the repository root; CI re-runs the harness
// and fails when any cell regresses in makespan, MIN_MEM, or
// executability, so a future "speedup" cannot silently trade space for
// time. Improvements don't fail the build but do change the bytes — they
// are blessed by regenerating the golden file with -update.
package bakeoff

import (
	"bytes"
	"fmt"
	"strconv"
	"strings"

	"repro/internal/graph"
	"repro/internal/mem"
	"repro/internal/sched"
	"repro/internal/sched/exact"
)

// Heuristics are the columns of the bake-off, in table order.
func Heuristics() []sched.Heuristic {
	return []sched.Heuristic{sched.RCP, sched.MPO, sched.DTS, sched.DTSMerge, sched.TreeMem}
}

// BudgetPcts are the memory budgets, as percentages of the structure's
// reference TOT (the paper's memory-constraint axis).
var BudgetPcts = []int{50, 75, 100}

// Structure is one materialized bake-off instance.
type Structure struct {
	Name   string
	G      *graph.DAG
	Assign []graph.Proc
	Procs  int
	// Exact is the reference frontier; nil when the instance is above the
	// exact-solver cap or the solver ran out of budget.
	Exact *exact.Result
}

// Cell is one (structure × scheduler × budget) measurement.
type Cell struct {
	Structure string
	Tasks     int
	Procs     int
	Sched     sched.Heuristic
	BudgetPct int
	Budget    int64
	Makespan  float64
	MinMem    int64
	TOT       int64
	PeakMax   int64
	Imbalance float64
	// Executable reports whether the MAP planner fits the schedule into the
	// budget (allocate-ahead semantics, internal/mem).
	Executable bool
	// GapTime/GapMem compare against the exact frontier: makespan over the
	// best achievable makespan at this cell's memory level, and MIN_MEM
	// over the best achievable MIN_MEM. Meaningful only when HasGap.
	GapTime float64
	GapMem  float64
	HasGap  bool
}

// Key identifies a cell across table generations.
func (c *Cell) Key() string {
	return fmt.Sprintf("%s/%s/%d", c.Structure, c.Sched, c.BudgetPct)
}

// Table is a full bake-off result.
type Table struct {
	Cells []Cell
}

// DefaultStructures materializes the pinned zoo: the paper's Figure 2
// example plus generated structures at two scales — small instances the
// exact solver can fence, and larger irregular ones that exercise the
// heuristics where exactness is out of reach.
func DefaultStructures() ([]Structure, error) {
	type spec struct {
		name  string
		gen   string // "" = figure2
		seed  uint64
		size  int
		procs int
	}
	specs := []spec{
		{name: "figure2", procs: 2},
		{name: "memtree-16", gen: "memtree", seed: 7, size: 16, procs: 2},
		{name: "elimtree-14", gen: "elimtree", seed: 3, size: 14, procs: 2},
		{name: "powerlaw-12", gen: "powerlaw", seed: 5, size: 12, procs: 2},
		{name: "elimtree-120", gen: "elimtree", seed: 11, size: 120, procs: 4},
		{name: "powerlaw-150", gen: "powerlaw", seed: 13, size: 150, procs: 4},
		{name: "highfill-90", gen: "highfill", seed: 17, size: 90, procs: 4},
	}
	gens := make(map[string]graph.Scenario)
	for _, sc := range graph.Scenarios() {
		gens[sc.Name] = sc
	}
	var out []Structure
	for _, sp := range specs {
		var g *graph.DAG
		var err error
		if sp.gen == "" {
			g = sched.Figure2DAG()
		} else {
			sc, ok := gens[sp.gen]
			if !ok {
				return nil, fmt.Errorf("bakeoff: unknown generator %q", sp.gen)
			}
			g, err = sc.Build(sp.seed, sp.size)
			if err != nil {
				return nil, fmt.Errorf("bakeoff: %s: %w", sp.name, err)
			}
			if !sc.PresetOwners {
				sched.CyclicOwners(g, sp.procs)
			}
		}
		assign, err := sched.OwnerComputeAssign(g, sp.procs)
		if err != nil {
			return nil, fmt.Errorf("bakeoff: %s: %w", sp.name, err)
		}
		st := Structure{Name: sp.name, G: g, Assign: assign, Procs: sp.procs}
		if g.NumTasks() <= 20 {
			res, err := exact.Frontier(g, assign, sp.procs, sched.Unit(), exact.Options{})
			if err == nil && res.Complete {
				st.Exact = res
			}
		}
		out = append(out, st)
	}
	return out, nil
}

// Run measures every (structure × scheduler × budget) cell.
func Run(structures []Structure) (*Table, error) {
	model := sched.Unit()
	tbl := &Table{}
	for _, st := range structures {
		// The reference TOT (budget base) comes from the RCP schedule so
		// that every heuristic of a structure shares the same budget axis.
		ref, err := sched.ScheduleRCP(st.G, st.Assign, st.Procs, model)
		if err != nil {
			return nil, fmt.Errorf("bakeoff: %s: rcp reference: %w", st.Name, err)
		}
		refTOT := ref.TOT()
		perm := ref.PermSize()
		var maxPerm int64
		for _, v := range perm {
			if v > maxPerm {
				maxPerm = v
			}
		}
		for _, pct := range BudgetPcts {
			budget := refTOT * int64(pct) / 100
			for _, h := range Heuristics() {
				s, err := sched.ScheduleWith(h, st.G, st.Assign, st.Procs, model, budget-maxPerm)
				if err != nil {
					return nil, fmt.Errorf("bakeoff: %s/%s: %w", st.Name, h, err)
				}
				pl, err := mem.NewPlan(s, budget)
				if err != nil {
					return nil, fmt.Errorf("bakeoff: %s/%s: plan: %w", st.Name, h, err)
				}
				peaks := s.PerProcPeaks()
				var peakMax int64
				for _, pk := range peaks {
					if pk > peakMax {
						peakMax = pk
					}
				}
				cell := Cell{
					Structure:  st.Name,
					Tasks:      st.G.NumTasks(),
					Procs:      st.Procs,
					Sched:      h,
					BudgetPct:  pct,
					Budget:     budget,
					Makespan:   s.Makespan,
					MinMem:     s.MinMem(),
					TOT:        s.TOT(),
					PeakMax:    peakMax,
					Imbalance:  s.PeakImbalance(),
					Executable: pl.Executable,
				}
				if st.Exact != nil {
					if gt, ok := st.Exact.GapTime(s.Makespan, s.MinMem()); ok {
						if gm, ok2 := st.Exact.GapMem(s.MinMem()); ok2 {
							cell.GapTime, cell.GapMem, cell.HasGap = gt, gm, true
						}
					}
				}
				tbl.Cells = append(tbl.Cells, cell)
			}
		}
	}
	return tbl, nil
}

const tsvHeader = "structure\ttasks\tprocs\tsched\tbudget%\tbudget\tmakespan\tminmem\ttot\tpeakmax\timbalance\texec\tgap_time\tgap_mem"

func fmtF(v float64) string { return strconv.FormatFloat(v, 'g', 9, 64) }

// TSV renders the table deterministically: fixed column set, fixed float
// formatting, one row per cell in generation order.
func (t *Table) TSV() []byte {
	var b bytes.Buffer
	fmt.Fprintln(&b, tsvHeader)
	for i := range t.Cells {
		c := &t.Cells[i]
		gt, gm := "-", "-"
		if c.HasGap {
			gt, gm = fmtF(c.GapTime), fmtF(c.GapMem)
		}
		fmt.Fprintf(&b, "%s\t%d\t%d\t%s\t%d\t%d\t%s\t%d\t%d\t%d\t%s\t%v\t%s\t%s\n",
			c.Structure, c.Tasks, c.Procs, c.Sched, c.BudgetPct, c.Budget,
			fmtF(c.Makespan), c.MinMem, c.TOT, c.PeakMax, fmtF(c.Imbalance),
			c.Executable, gt, gm)
	}
	return b.Bytes()
}

func schedByName(name string) (sched.Heuristic, error) {
	for _, h := range Heuristics() {
		if h.String() == name {
			return h, nil
		}
	}
	return 0, fmt.Errorf("bakeoff: unknown heuristic %q", name)
}

// ParseTSV parses a table rendered by TSV.
func ParseTSV(data []byte) (*Table, error) {
	lines := strings.Split(strings.TrimRight(string(data), "\n"), "\n")
	if len(lines) == 0 || lines[0] != tsvHeader {
		return nil, fmt.Errorf("bakeoff: bad or missing header")
	}
	tbl := &Table{}
	for ln, line := range lines[1:] {
		f := strings.Split(line, "\t")
		if len(f) != 14 {
			return nil, fmt.Errorf("bakeoff: line %d: %d fields", ln+2, len(f))
		}
		var c Cell
		var err error
		c.Structure = f[0]
		if c.Tasks, err = strconv.Atoi(f[1]); err != nil {
			return nil, fmt.Errorf("bakeoff: line %d tasks: %w", ln+2, err)
		}
		if c.Procs, err = strconv.Atoi(f[2]); err != nil {
			return nil, fmt.Errorf("bakeoff: line %d procs: %w", ln+2, err)
		}
		if c.Sched, err = schedByName(f[3]); err != nil {
			return nil, err
		}
		if c.BudgetPct, err = strconv.Atoi(f[4]); err != nil {
			return nil, fmt.Errorf("bakeoff: line %d budget%%: %w", ln+2, err)
		}
		if c.Budget, err = strconv.ParseInt(f[5], 10, 64); err != nil {
			return nil, fmt.Errorf("bakeoff: line %d budget: %w", ln+2, err)
		}
		if c.Makespan, err = strconv.ParseFloat(f[6], 64); err != nil {
			return nil, fmt.Errorf("bakeoff: line %d makespan: %w", ln+2, err)
		}
		if c.MinMem, err = strconv.ParseInt(f[7], 10, 64); err != nil {
			return nil, fmt.Errorf("bakeoff: line %d minmem: %w", ln+2, err)
		}
		if c.TOT, err = strconv.ParseInt(f[8], 10, 64); err != nil {
			return nil, fmt.Errorf("bakeoff: line %d tot: %w", ln+2, err)
		}
		if c.PeakMax, err = strconv.ParseInt(f[9], 10, 64); err != nil {
			return nil, fmt.Errorf("bakeoff: line %d peakmax: %w", ln+2, err)
		}
		if c.Imbalance, err = strconv.ParseFloat(f[10], 64); err != nil {
			return nil, fmt.Errorf("bakeoff: line %d imbalance: %w", ln+2, err)
		}
		if c.Executable, err = strconv.ParseBool(f[11]); err != nil {
			return nil, fmt.Errorf("bakeoff: line %d exec: %w", ln+2, err)
		}
		if f[12] != "-" {
			if c.GapTime, err = strconv.ParseFloat(f[12], 64); err != nil {
				return nil, fmt.Errorf("bakeoff: line %d gap_time: %w", ln+2, err)
			}
			if c.GapMem, err = strconv.ParseFloat(f[13], 64); err != nil {
				return nil, fmt.Errorf("bakeoff: line %d gap_mem: %w", ln+2, err)
			}
			c.HasGap = true
		}
		tbl.Cells = append(tbl.Cells, c)
	}
	return tbl, nil
}

// Regression is one cell that got worse in a guarded dimension.
type Regression struct {
	Key    string
	Reason string
}

// Compare reports the cells of next that regressed against prev: larger
// makespan, larger MIN_MEM or peak, or lost executability. Cells present
// only on one side are not regressions (the zoo may grow), and
// improvements are deliberately not symmetric — they change the golden
// bytes and are blessed with -update, but never fail.
func Compare(prev, next *Table) []Regression {
	idx := make(map[string]*Cell, len(prev.Cells))
	for i := range prev.Cells {
		idx[prev.Cells[i].Key()] = &prev.Cells[i]
	}
	var regs []Regression
	for i := range next.Cells {
		c := &next.Cells[i]
		old, ok := idx[c.Key()]
		if !ok {
			continue
		}
		const relEps = 1e-9
		if c.Makespan > old.Makespan*(1+relEps) {
			regs = append(regs, Regression{c.Key(), fmt.Sprintf("makespan %s -> %s", fmtF(old.Makespan), fmtF(c.Makespan))})
		}
		if c.MinMem > old.MinMem {
			regs = append(regs, Regression{c.Key(), fmt.Sprintf("minmem %d -> %d", old.MinMem, c.MinMem)})
		}
		if c.PeakMax > old.PeakMax {
			regs = append(regs, Regression{c.Key(), fmt.Sprintf("peakmax %d -> %d", old.PeakMax, c.PeakMax)})
		}
		if old.Executable && !c.Executable {
			regs = append(regs, Regression{c.Key(), "lost executability"})
		}
	}
	return regs
}
