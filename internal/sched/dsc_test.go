package sched

import (
	"testing"

	"repro/internal/graph"
	"repro/internal/util"
)

// chainGraph builds k independent chains of length l: the classic case
// where locality-driven clustering must zero the chain edges (one chain =
// one cluster), while cyclic owners would communicate on every edge.
func chainGraph(t *testing.T, k, l int) *graph.DAG {
	t.Helper()
	b := graph.NewBuilder()
	for c := 0; c < k; c++ {
		var prev graph.ObjID = -1
		for s := 0; s < l; s++ {
			o := b.Object(chName("o", c, s), 100)
			var reads []graph.ObjID
			if prev >= 0 {
				reads = []graph.ObjID{prev}
			}
			b.Task(chName("t", c, s), 50, reads, []graph.ObjID{o})
			prev = o
		}
	}
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func chName(p string, a, b int) string {
	return p + string(rune('A'+a)) + string(rune('a'+b%26)) + string(rune('0'+b/26))
}

func crossProcEdges(g *graph.DAG, assign []graph.Proc) int {
	n := 0
	for ti := 0; ti < g.NumTasks(); ti++ {
		for _, e := range g.Out(graph.TaskID(ti)) {
			if e.Kind == graph.DepTrue && assign[e.From] != assign[e.To] {
				n++
			}
		}
	}
	return n
}

func TestDSCZerosChainEdges(t *testing.T) {
	g := chainGraph(t, 4, 10)
	DSCOwners(g, 4, Unit())
	assign, err := OwnerComputeAssign(g, 4)
	if err != nil {
		t.Fatal(err)
	}
	if got := crossProcEdges(g, assign); got != 0 {
		t.Fatalf("DSC left %d cross-processor chain edges", got)
	}
	// And the load must still be spread: all four processors used.
	used := map[graph.Proc]bool{}
	for _, p := range assign {
		used[p] = true
	}
	if len(used) != 4 {
		t.Fatalf("only %d processors used", len(used))
	}
}

func TestDSCBeatsCyclicOnChains(t *testing.T) {
	model := Unit()
	g1 := chainGraph(t, 6, 8)
	DSCOwners(g1, 3, model)
	a1, err := OwnerComputeAssign(g1, 3)
	if err != nil {
		t.Fatal(err)
	}
	s1, err := ScheduleRCP(g1, a1, 3, model)
	if err != nil {
		t.Fatal(err)
	}
	g2 := chainGraph(t, 6, 8)
	CyclicOwners(g2, 3)
	a2, err := OwnerComputeAssign(g2, 3)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := ScheduleRCP(g2, a2, 3, model)
	if err != nil {
		t.Fatal(err)
	}
	if s1.Makespan > s2.Makespan {
		t.Fatalf("DSC makespan %v worse than cyclic %v", s1.Makespan, s2.Makespan)
	}
}

func TestDSCValidOnRandomGraphs(t *testing.T) {
	rng := util.NewRNG(17)
	for trial := 0; trial < 25; trial++ {
		p := 2 + rng.Intn(4)
		g := randomOwnerComputeDAG(rng, 20+rng.Intn(50), 5+rng.Intn(15), p)
		DSCOwners(g, p, T3D())
		assign, err := OwnerComputeAssign(g, p)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		for _, h := range []Heuristic{RCP, MPO, DTS} {
			s, err := ScheduleWith(h, g, assign, p, T3D(), 0)
			if err != nil {
				t.Fatalf("trial %d %v: %v", trial, h, err)
			}
			if err := s.Validate(); err != nil {
				t.Fatalf("trial %d %v: %v", trial, h, err)
			}
		}
		// Every owner must be in range.
		for oi := range g.Objects {
			own := g.Objects[oi].Owner
			if own < 0 || int(own) >= p {
				t.Fatalf("trial %d: object %d owner %d out of range", trial, oi, own)
			}
		}
	}
}

func TestDSCCommutativeWritersColocated(t *testing.T) {
	// Accumulation graphs: all writers of an object must land together so
	// owner-compute holds.
	b := graph.NewBuilder()
	acc := b.Object("acc", 10)
	b.Task("init", 1, nil, []graph.ObjID{acc})
	for i := 0; i < 6; i++ {
		in := b.Object(chName("i", 0, i), 5)
		b.Task(chName("p", 0, i), 10, nil, []graph.ObjID{in})
		b.CommutativeTask(chName("u", 0, i), 5, []graph.ObjID{in, acc}, []graph.ObjID{acc})
	}
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	DSCOwners(g, 3, Unit())
	if _, err := OwnerComputeAssign(g, 3); err != nil {
		t.Fatalf("owner-compute violated after DSC: %v", err)
	}
}
