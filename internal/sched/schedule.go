// Package sched implements the scheduling layer of the paper: owner-compute
// clustering and load-balanced mapping, and the three task-ordering
// heuristics evaluated in Section 5 — RCP (critical-path ordering, the
// time-efficient baseline), MPO (memory-priority guided ordering) and DTS
// (data-access directed time slicing, with optional slice merging under a
// known memory budget). It also evaluates schedules: the MEM_REQ / MIN_MEM
// quantities of Definitions 4-6, the no-recycling total TOT used by the
// paper's memory-constraint percentages, and a predicted makespan.
package sched

import (
	"fmt"

	"repro/internal/graph"
)

// Heuristic names a task-ordering algorithm.
type Heuristic uint8

const (
	// RCP is critical-path list scheduling (Yang & Gerasoulis [20]).
	RCP Heuristic = iota
	// MPO is memory-priority guided ordering (Section 4.1).
	MPO
	// DTS is data-access directed time slicing (Section 4.2).
	DTS
	// DTSMerge is DTS followed by slice merging under AVAIL_MEM (Figure 6).
	DTSMerge
	// TreeMem is the tree-memory scheduler: Liu's memory-optimal traversal
	// on tree-shaped dependence graphs (via the hill/valley segment algebra
	// of Marchal–Sinnen–Vivien and Eyraud-Dubois et al., see PAPERS.md),
	// generalized to arbitrary DAGs by a greedy memory sweep, and lifted to
	// p processors as a rank-strict bounded-memory list schedule.
	TreeMem
)

func (h Heuristic) String() string {
	switch h {
	case RCP:
		return "RCP"
	case MPO:
		return "MPO"
	case DTS:
		return "DTS"
	case DTSMerge:
		return "DTS+merge"
	case TreeMem:
		return "TreeMem"
	}
	return "?"
}

// Schedule is a static schedule: an assignment of every task to a processor
// and an execution order on each processor, together with the object
// ownership map that induced it.
type Schedule struct {
	G *graph.DAG
	P int
	// Assign[t] is the processor of task t.
	Assign []graph.Proc
	// Order[p] lists the tasks of processor p in execution order.
	Order [][]graph.TaskID
	// Pos[t] is the position of task t within Order[Assign[t]].
	Pos []int32
	// Makespan is the parallel time predicted by the ordering simulation
	// (no memory-management overhead).
	Makespan float64
	// Heuristic records which ordering produced the schedule.
	Heuristic Heuristic
	// Slices, for DTS schedules, maps each task to its slice index
	// (nil otherwise).
	Slices []int32
	// NumSlices is the number of slices for DTS schedules (post merging).
	NumSlices int
}

// finalize fills Pos and validates that every task appears exactly once.
func (s *Schedule) finalize() error {
	n := s.G.NumTasks()
	s.Pos = make([]int32, n)
	for i := range s.Pos {
		s.Pos[i] = -1
	}
	count := 0
	for p := 0; p < s.P; p++ {
		for i, t := range s.Order[p] {
			if s.Assign[t] != graph.Proc(p) {
				return fmt.Errorf("sched: task %d ordered on proc %d but assigned to %d", t, p, s.Assign[t])
			}
			if s.Pos[t] != -1 {
				return fmt.Errorf("sched: task %d appears twice", t)
			}
			s.Pos[t] = int32(i)
			count++
		}
	}
	if count != n {
		return fmt.Errorf("sched: %d of %d tasks ordered", count, n)
	}
	return nil
}

// Validate checks that the per-processor orders respect all dependence
// edges: for every edge u->v, u is ordered before v if on the same
// processor, and there is no cycle in the induced execution constraints.
func (s *Schedule) Validate() error {
	for t := 0; t < s.G.NumTasks(); t++ {
		for _, e := range s.G.Out(graph.TaskID(t)) {
			if s.Assign[e.From] == s.Assign[e.To] && s.Pos[e.From] >= s.Pos[e.To] {
				return fmt.Errorf("sched: edge %d->%d violated on proc %d", e.From, e.To, s.Assign[e.From])
			}
		}
	}
	// Cross-processor cycles: the execution order must be a linear extension
	// of the DAG plus the per-proc chains; check by topological sort over
	// the union.
	n := s.G.NumTasks()
	indeg := make([]int32, n)
	extra := make([][]graph.TaskID, n)
	for p := 0; p < s.P; p++ {
		for i := 1; i < len(s.Order[p]); i++ {
			u, v := s.Order[p][i-1], s.Order[p][i]
			extra[u] = append(extra[u], v)
			indeg[v]++
		}
	}
	for t := 0; t < n; t++ {
		for range s.G.In(graph.TaskID(t)) {
			indeg[t]++
		}
	}
	queue := make([]graph.TaskID, 0, n)
	for t := 0; t < n; t++ {
		if indeg[t] == 0 {
			queue = append(queue, graph.TaskID(t))
		}
	}
	seen := 0
	for len(queue) > 0 {
		u := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		seen++
		relax := func(v graph.TaskID) {
			indeg[v]--
			if indeg[v] == 0 {
				queue = append(queue, v)
			}
		}
		for _, e := range s.G.Out(u) {
			relax(e.To)
		}
		for _, v := range extra[u] {
			relax(v)
		}
	}
	if seen != n {
		return fmt.Errorf("sched: execution constraints contain a cycle")
	}
	return nil
}

// PermSize returns the total size of permanent objects on each processor
// (every object is permanent on its owner and stays allocated throughout).
func (s *Schedule) PermSize() []int64 {
	perm := make([]int64, s.P)
	for i := range s.G.Objects {
		o := &s.G.Objects[i]
		if o.Owner >= 0 {
			perm[o.Owner] += o.Size
		}
	}
	return perm
}

// VolatileObjects returns, for each processor, the set of volatile objects
// it touches: objects read or written by its tasks but owned elsewhere,
// keyed by object ID mapped to size.
func (s *Schedule) VolatileObjects() []map[graph.ObjID]int64 {
	vol := make([]map[graph.ObjID]int64, s.P)
	for p := range vol {
		vol[p] = make(map[graph.ObjID]int64)
	}
	for t := 0; t < s.G.NumTasks(); t++ {
		p := s.Assign[t]
		task := &s.G.Tasks[t]
		for _, lists := range [2][]graph.ObjID{task.Reads, task.Writes} {
			for _, o := range lists {
				if s.G.Objects[o].Owner != p {
					vol[p][o] = s.G.Objects[o].Size
				}
			}
		}
	}
	return vol
}

// TOT returns the paper's "total memory space needed for a given task
// schedule without any space recycling": on each processor the permanent
// space plus the space of every volatile object it touches; TOT is the
// maximum over processors.
func (s *Schedule) TOT() int64 {
	perm := s.PermSize()
	vol := s.VolatileObjects()
	var tot int64
	for p := 0; p < s.P; p++ {
		sum := perm[p]
		for _, sz := range vol[p] { //det:ok sum fold, commutative
			sum += sz
		}
		if sum > tot {
			tot = sum
		}
	}
	return tot
}

// VolatileLifetimes computes, for each processor, the first-use and
// last-use positions of each volatile object in that processor's order
// (Definition 4 alive range). Returned as maps object -> [2]int32{first,
// last}.
func (s *Schedule) VolatileLifetimes() []map[graph.ObjID][2]int32 {
	lt := make([]map[graph.ObjID][2]int32, s.P)
	for p := range lt {
		lt[p] = make(map[graph.ObjID][2]int32)
	}
	for p := 0; p < s.P; p++ {
		for i, t := range s.Order[p] {
			task := &s.G.Tasks[t]
			touch := func(o graph.ObjID) {
				if s.G.Objects[o].Owner == graph.Proc(p) {
					return
				}
				if r, ok := lt[p][o]; ok {
					r[1] = int32(i)
					lt[p][o] = r
				} else {
					lt[p][o] = [2]int32{int32(i), int32(i)}
				}
			}
			for _, o := range task.Reads {
				touch(o)
			}
			for _, o := range task.Writes {
				touch(o)
			}
		}
	}
	return lt
}

// PerProcPeaks computes, for each processor, the peak space requirement of
// its order under immediate-free semantics (Definition 5 applied per
// processor): permanent space plus the maximum overlap of volatile
// lifetimes, S_p^A in the Figure 7 comparisons. A processor that runs no
// tasks still holds its permanent objects.
func (s *Schedule) PerProcPeaks() []int64 {
	perm := s.PermSize()
	lt := s.VolatileLifetimes()
	peaks := make([]int64, s.P)
	for p := 0; p < s.P; p++ {
		// Sweep the order accumulating alive volatile sizes.
		allocAt := make(map[int32]int64) // position -> size allocated
		freeAfter := make(map[int32]int64)
		for o, r := range lt[p] { //det:ok sums into position buckets, commutative
			allocAt[r[0]] += s.G.Objects[o].Size
			freeAfter[r[1]] += s.G.Objects[o].Size
		}
		peak := perm[p]
		var alive int64
		for i := range s.Order[p] {
			alive += allocAt[int32(i)]
			if req := perm[p] + alive; req > peak {
				peak = req
			}
			alive -= freeAfter[int32(i)]
		}
		peaks[p] = peak
	}
	return peaks
}

// MinMem computes MIN_MEM (Definition 5): the maximum over processors and
// tasks of the memory requirement assuming volatile objects are freed
// immediately after their last use and allocated at their first use, with
// lifetimes able to share space only when disjoint.
func (s *Schedule) MinMem() int64 {
	var minMem int64
	for _, pk := range s.PerProcPeaks() {
		if pk > minMem {
			minMem = pk
		}
	}
	return minMem
}

// PerProcPeak returns the largest per-processor peak, max_p S_p^A. By
// Definition 5 this equals MIN_MEM; callers that need the full vector (to
// report imbalance, not just the max) use PerProcPeaks.
func (s *Schedule) PerProcPeak() int64 { return s.MinMem() }

// PeakImbalance reports how unevenly the peak space requirement is spread
// across processors: the largest per-processor peak divided by the mean
// peak. 1.0 means perfectly balanced; p means one processor carries
// everything. A schedule with no processors (or all-zero peaks) reports 1.0.
func (s *Schedule) PeakImbalance() float64 {
	peaks := s.PerProcPeaks()
	var sum, max int64
	for _, pk := range peaks {
		sum += pk
		if pk > max {
			max = pk
		}
	}
	if sum == 0 {
		return 1.0
	}
	return float64(max) * float64(len(peaks)) / float64(sum)
}
