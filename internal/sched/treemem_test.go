package sched

import (
	"testing"

	"repro/internal/graph"
	"repro/internal/util"
)

// buildChainGadget makes a linear chain T0 -> T1 -> ... -> T{n-1} where
// every task writes a link object owned by processor 0 and reads an unowned
// file object of the given size that its successor reads again — the
// 1-ary memory tree.
func buildChainGadget(t *testing.T, sizes []int64) *graph.DAG {
	t.Helper()
	b := graph.NewBuilder()
	n := len(sizes)
	link := make([]graph.ObjID, n)
	file := make([]graph.ObjID, n)
	for i := 0; i < n; i++ {
		link[i] = b.Object("l"+string(rune('A'+i)), 1)
		file[i] = b.Object("f"+string(rune('A'+i)), sizes[i])
	}
	for i := 0; i < n; i++ {
		reads := []graph.ObjID{file[i]}
		if i > 0 {
			reads = append(reads, link[i-1], file[i-1])
		}
		b.Task("T"+string(rune('A'+i)), 1, reads, []graph.ObjID{link[i]})
	}
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		g.Objects[link[i]].Owner = 0
	}
	return g
}

// TestTreeMemChainTakesLiuPath pins the Liu branch on the simplest tree: a
// chain is an in-forest with chain-shaped lifetimes, its only traversal is
// program order, and the footprint is the largest adjacent file pair plus
// the link residency.
func TestTreeMemChainTakesLiuPath(t *testing.T) {
	g := buildChainGadget(t, []int64{3, 5, 2, 4})
	assign, err := OwnerComputeAssign(g, 1)
	if err != nil {
		t.Fatal(err)
	}
	order, liu, err := TreeMemOrder(g, assign, Unit())
	if err != nil {
		t.Fatal(err)
	}
	if !liu {
		t.Fatal("chain gadget did not take the Liu tree path")
	}
	for i, tk := range order {
		if int(tk) != i {
			t.Fatalf("chain order %v is not program order", order)
		}
	}
	s, err := ScheduleTreeMem(g, assign, 1, Unit())
	if err != nil {
		t.Fatal(err)
	}
	// perm: 4 links of size 1; peak volatile pair: f1+f2 = 5+3... the
	// largest adjacent pair is (3,5) -> 8; MIN_MEM = 4 + 8 = 12.
	if got := s.MinMem(); got != 12 {
		t.Fatalf("chain MIN_MEM %d, want 12", got)
	}
	if fp := SequentialFootprint(g, assign, 1, order); fp != s.MinMem() {
		t.Fatalf("chain footprint %d != MIN_MEM %d (single-proc tree must realize its bound)", fp, s.MinMem())
	}
}

// TestTreeMemOrderBeatsPostorderOnSkewedTree pins a case where child order
// matters: two subtrees with different hills must be traversed
// heaviest-first. Liu's merge does so; a naive id-order postorder does not.
func TestTreeMemOrderBeatsPostorderOnSkewedTree(t *testing.T) {
	// Root with children A (file 2) and B (file 7). Visiting A first keeps
	// A's file alive (2) while B's hill (7) is climbed: peak 9. Visiting B
	// first: peak max(7, 2+7=9)... both orders reach 9 at the root where
	// f_A + f_B + f_root coexist; distinguish with deeper subtrees:
	// A = chain a1(6)->a2(1), B = chain b1(5)->b2(1), root file 1.
	// Traversing A fully then B: peak = max(6+1 during a2, 1 + 5+1, ...)
	//   a1: 6; a2: 6+1=7 (f_a1 freed after a2 -> residual 1+... link sizes
	// aside, the exact numbers are asserted via SequentialFootprint below
	// rather than re-derived here.
	b := graph.NewBuilder()
	mk := func(name string, size int64) graph.ObjID { return b.Object(name, size) }
	la1, la2 := mk("la1", 1), mk("la2", 1)
	lb1, lb2 := mk("lb1", 1), mk("lb2", 1)
	lr := mk("lr", 1)
	fa1, fa2 := mk("fa1", 6), mk("fa2", 1)
	fb1, fb2 := mk("fb1", 5), mk("fb2", 1)
	fr := mk("fr", 1)
	b.Task("a1", 1, []graph.ObjID{fa1}, []graph.ObjID{la1})
	b.Task("a2", 1, []graph.ObjID{fa2, la1, fa1}, []graph.ObjID{la2})
	b.Task("b1", 1, []graph.ObjID{fb1}, []graph.ObjID{lb1})
	b.Task("b2", 1, []graph.ObjID{fb2, lb1, fb1}, []graph.ObjID{lb2})
	b.Task("r", 1, []graph.ObjID{fr, la2, fa2, lb2, fb2}, []graph.ObjID{lr})
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	for _, o := range []graph.ObjID{la1, la2, lb1, lb2, lr} {
		g.Objects[o].Owner = 0
	}
	assign, err := OwnerComputeAssign(g, 1)
	if err != nil {
		t.Fatal(err)
	}
	order, liu, err := TreeMemOrder(g, assign, Unit())
	if err != nil {
		t.Fatal(err)
	}
	if !liu {
		t.Fatal("skewed tree did not take the Liu path")
	}
	got := SequentialFootprint(g, assign, 1, order)
	// Every valid traversal is a permutation of the two chains plus the
	// root; enumerate all of them and take the best footprint.
	best := int64(1 << 62)
	orders := [][]graph.TaskID{
		{0, 1, 2, 3, 4}, {2, 3, 0, 1, 4},
		{0, 2, 1, 3, 4}, {2, 0, 3, 1, 4},
		{0, 2, 3, 1, 4}, {2, 0, 1, 3, 4},
	}
	for _, o := range orders {
		if fp := SequentialFootprint(g, assign, 1, o); fp < best {
			best = fp
		}
	}
	if got != best {
		t.Fatalf("Liu traversal footprint %d, best over all traversals %d (order %v)", got, best, order)
	}
}

// TestTreeMemGeneralDAGFallsBackToGreedy checks the non-tree path: the
// Figure-2 DAG has fanout, so TreeMem must take the greedy sweep and still
// produce a valid schedule whose MIN_MEM respects the sequential footprint
// bound.
func TestTreeMemGeneralDAGFallsBackToGreedy(t *testing.T) {
	g := Figure2DAG()
	assign, err := OwnerComputeAssign(g, 2)
	if err != nil {
		t.Fatal(err)
	}
	order, liu, err := TreeMemOrder(g, assign, T3D())
	if err != nil {
		t.Fatal(err)
	}
	if liu {
		t.Fatal("Figure-2 DAG (fanout) claimed the Liu tree path")
	}
	if len(order) != g.NumTasks() {
		t.Fatalf("order has %d of %d tasks", len(order), g.NumTasks())
	}
	s, err := ScheduleTreeMem(g, assign, 2, T3D())
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	if s.Heuristic != TreeMem {
		t.Fatalf("schedule records heuristic %v", s.Heuristic)
	}
	if bound := SequentialFootprint(g, assign, 2, order); s.MinMem() > bound {
		t.Fatalf("MIN_MEM %d exceeds the sequential footprint bound %d", s.MinMem(), bound)
	}
	// The memory-first order matches MPO/DTS's 7 on this example (RCP: 9).
	if got := s.MinMem(); got != 7 {
		t.Fatalf("Figure-2 TreeMem MIN_MEM %d, want 7", got)
	}
}

// TestTreeMemBoundOnRandomDAGs is the bound property at scale: on arbitrary
// random owner-compute DAGs (nothing tree-shaped about them) the rank-strict
// lifting keeps MIN_MEM within the activation order's sequential footprint,
// and scheduling is deterministic.
func TestTreeMemBoundOnRandomDAGs(t *testing.T) {
	for seed := uint64(1); seed <= 25; seed++ {
		rng := util.NewRNG(seed * 31)
		p := 1 + rng.Intn(4)
		g := randomOwnerComputeDAG(rng, 10+rng.Intn(50), 5+rng.Intn(20), p)
		assign, err := OwnerComputeAssign(g, p)
		if err != nil {
			t.Fatal(err)
		}
		order, _, err := TreeMemOrder(g, assign, Unit())
		if err != nil {
			t.Fatal(err)
		}
		s, err := ScheduleTreeMem(g, assign, p, Unit())
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if err := s.Validate(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if bound := SequentialFootprint(g, assign, p, order); s.MinMem() > bound {
			t.Fatalf("seed %d: MIN_MEM %d exceeds footprint bound %d", seed, s.MinMem(), bound)
		}
		s2, err := ScheduleTreeMem(g, assign, p, Unit())
		if err != nil {
			t.Fatal(err)
		}
		for q := 0; q < p; q++ {
			if len(s.Order[q]) != len(s2.Order[q]) {
				t.Fatalf("seed %d: nondeterministic order lengths", seed)
			}
			for i := range s.Order[q] {
				if s.Order[q][i] != s2.Order[q][i] {
					t.Fatalf("seed %d: nondeterministic order on proc %d", seed, q)
				}
			}
		}
	}
}

// TestFigure2PerProcPeaks pins the per-processor peak vector and imbalance
// on the paper's Figure-2 example: before the fix PerProcPeak was a bare
// MinMem alias and the table could not see that RCP's 9 lives entirely on
// processor 1 while processor 0 peaks at 7.
func TestFigure2PerProcPeaks(t *testing.T) {
	g := Figure2DAG()
	assign, err := OwnerComputeAssign(g, 2)
	if err != nil {
		t.Fatal(err)
	}
	rcp, err := ScheduleRCP(g, assign, 2, T3D())
	if err != nil {
		t.Fatal(err)
	}
	peaks := rcp.PerProcPeaks()
	if len(peaks) != 2 || peaks[0] != 7 || peaks[1] != 9 {
		t.Fatalf("RCP per-proc peaks %v, want [7 9]", peaks)
	}
	if rcp.PerProcPeak() != 9 || rcp.MinMem() != 9 {
		t.Fatalf("RCP max peak %d / MinMem %d, want 9/9", rcp.PerProcPeak(), rcp.MinMem())
	}
	if imb := rcp.PeakImbalance(); imb != 1.125 {
		t.Fatalf("RCP peak imbalance %g, want 1.125 (9*2/16)", imb)
	}
	mpo, err := ScheduleMPO(g, assign, 2, T3D())
	if err != nil {
		t.Fatal(err)
	}
	peaks = mpo.PerProcPeaks()
	if len(peaks) != 2 || peaks[0] != 7 || peaks[1] != 6 {
		t.Fatalf("MPO per-proc peaks %v, want [7 6]", peaks)
	}
	if imb := mpo.PeakImbalance(); imb <= 1.076 || imb >= 1.077 {
		t.Fatalf("MPO peak imbalance %g, want 14/13", imb)
	}
}

// TestPeakImbalanceDegenerate covers the all-zero guard.
func TestPeakImbalanceDegenerate(t *testing.T) {
	b := graph.NewBuilder()
	o := b.Object("x", 0)
	b.Task("t", 1, nil, []graph.ObjID{o})
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	g.Objects[o].Owner = 0
	assign, err := OwnerComputeAssign(g, 2)
	if err != nil {
		t.Fatal(err)
	}
	s, err := ScheduleRCP(g, assign, 2, Unit())
	if err != nil {
		t.Fatal(err)
	}
	if imb := s.PeakImbalance(); imb != 1.0 {
		t.Fatalf("zero-size schedule imbalance %g, want 1", imb)
	}
}
