// Package exact is a branch-and-bound reference solver for small
// scheduling instances: given a task graph, a fixed owner-compute
// assignment and a cost model, it enumerates every per-processor execution
// order (all linear extensions, interleaved across processors) and returns
// the true Pareto frontier over (makespan, MIN_MEM) — the same two
// quantities internal/sched reports for its heuristics, computed with
// identical start-time and immediate-free semantics. It exists to measure
// the heuristics, not to schedule real workloads: instances are capped at
// MaxTasks (default 20), in the spirit of the exact memory-constrained
// multiprocessor formulations of Papp, Papp and Yzelman (arXiv 2507.17411).
//
// The search prunes with (a) per-branch lower bounds against the incumbent
// frontier — a branch whose optimistic (time, memory) completion is already
// weakly dominated cannot extend the frontier — and (b) memoized dominance
// over states keyed by the scheduled-task bitmask: the alive volatile sets
// are a pure function of the mask, so two search states with the same mask
// compare on processor clocks, realized peaks and pending data-ready times
// alone; a state componentwise no better than a recorded one is dead.
package exact

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/graph"
	"repro/internal/sched"
)

// Options tunes the solver.
type Options struct {
	// MaxTasks rejects instances larger than this (default 20): the state
	// space is exponential and the solver is a test oracle, not a scheduler.
	MaxTasks int
	// NodeBudget caps search-tree expansions (default 4e6). An exhausted
	// budget yields Complete == false and a frontier that is only an upper
	// envelope (it must not be used as a lower bound).
	NodeBudget int64
}

func (o Options) withDefaults() Options {
	if o.MaxTasks == 0 {
		o.MaxTasks = 20
	}
	if o.NodeBudget == 0 {
		o.NodeBudget = 4_000_000
	}
	return o
}

// Point is one Pareto-optimal (makespan, MIN_MEM) pair.
type Point struct {
	Makespan float64
	MinMem   int64
}

// Result is the solver outcome.
type Result struct {
	// Frontier holds the non-dominated points, ascending in Makespan and
	// strictly descending in MinMem.
	Frontier []Point
	// Nodes counts search-tree expansions.
	Nodes int64
	// Complete is false when NodeBudget ran out; the frontier is then not
	// exact and Admits/GapTime must not be trusted as bounds.
	Complete bool
}

const eps = 1e-9

// Admits reports whether a measured (makespan, minMem) pair is achievable
// or worse — i.e. weakly dominated by some frontier point. Every correctly
// measured schedule of the instance must be admitted; a pair that beats the
// frontier in both dimensions at once is impossible and indicates a
// measurement bug.
func (r *Result) Admits(makespan float64, minMem int64) bool {
	for _, f := range r.Frontier {
		if f.Makespan <= makespan+eps+1e-9*math.Abs(makespan) && f.MinMem <= minMem {
			return true
		}
	}
	return false
}

// BestMem returns the smallest MIN_MEM of any schedule (the right end of
// the frontier).
func (r *Result) BestMem() int64 {
	if len(r.Frontier) == 0 {
		return 0
	}
	return r.Frontier[len(r.Frontier)-1].MinMem
}

// BestMakespan returns the smallest makespan of any schedule.
func (r *Result) BestMakespan() float64 {
	if len(r.Frontier) == 0 {
		return 0
	}
	return r.Frontier[0].Makespan
}

// GapTime returns how far a measured schedule sits above the best exact
// makespan achievable at its memory level (1.0 = optimal). The second
// return is false when no frontier point fits the memory level (cannot
// happen for correctly measured schedules).
func (r *Result) GapTime(makespan float64, minMem int64) (float64, bool) {
	best := math.Inf(1)
	for _, f := range r.Frontier {
		if f.MinMem <= minMem && f.Makespan < best {
			best = f.Makespan
		}
	}
	if math.IsInf(best, 1) || best == 0 {
		return 0, false
	}
	return makespan / best, true
}

// GapMem returns minMem over the smallest achievable MIN_MEM.
func (r *Result) GapMem(minMem int64) (float64, bool) {
	b := r.BestMem()
	if b == 0 {
		return 0, false
	}
	return float64(minMem) / float64(b), true
}

type volEntry struct {
	obj  graph.ObjID
	size int64
}

type solver struct {
	g      *graph.DAG
	assign []graph.Proc
	p      int
	model  sched.CostModel
	n      int

	bl       []float64 // bottom levels including comm: per-task time lower bound
	perm     []int64
	taskVols [][]volEntry // distinct volatile objects per task
	cnt      []int32      // total touches per (proc, obj), indexed q*m+o
	left     []int32
	m        int

	mask      uint32
	full      uint32
	clock     []float64
	workLeft  []float64
	aliveVol  []int64
	peakVol   []int64
	ready     []float64 // data-ready time per task
	remaining []int32

	frontier  []Point
	nodes     int64
	budget    int64
	complete  bool
	memo      map[uint32][][]float64
	memoSize  int
	memoLimit int
}

// Frontier computes the exact (makespan, MIN_MEM) Pareto frontier of the
// instance under the given processor assignment.
func Frontier(g *graph.DAG, assign []graph.Proc, p int, model sched.CostModel, opt Options) (*Result, error) {
	opt = opt.withDefaults()
	n := g.NumTasks()
	if n > opt.MaxTasks {
		return nil, fmt.Errorf("exact: %d tasks exceeds the %d-task cap", n, opt.MaxTasks)
	}
	if n > 30 {
		return nil, fmt.Errorf("exact: %d tasks cannot be bitmasked", n)
	}
	s := &solver{
		g: g, assign: assign, p: p, model: model, n: n, m: g.NumObjects(),
		bl:        g.BottomLevels(model.EdgeComm(g, assign)),
		clock:     make([]float64, p),
		workLeft:  make([]float64, p),
		aliveVol:  make([]int64, p),
		peakVol:   make([]int64, p),
		ready:     make([]float64, n),
		remaining: make([]int32, n),
		budget:    opt.NodeBudget,
		complete:  true,
		memo:      make(map[uint32][][]float64),
		memoLimit: 300_000,
	}
	s.full = uint32(1)<<uint(n) - 1
	s.perm = make([]int64, p)
	for i := range g.Objects {
		o := &g.Objects[i]
		if o.Owner >= 0 && int(o.Owner) < p {
			s.perm[o.Owner] += o.Size
		}
	}
	s.taskVols = make([][]volEntry, n)
	s.cnt = make([]int32, p*s.m)
	for t := 0; t < n; t++ {
		q := assign[t]
		task := &g.Tasks[t]
		seen := make(map[graph.ObjID]bool, len(task.Reads)+len(task.Writes))
		for _, lists := range [2][]graph.ObjID{task.Reads, task.Writes} {
			for _, o := range lists {
				if g.Objects[o].Owner == q || seen[o] {
					continue
				}
				seen[o] = true
				s.taskVols[t] = append(s.taskVols[t], volEntry{o, g.Objects[o].Size})
				s.cnt[int(q)*s.m+int(o)]++
			}
		}
		s.remaining[t] = int32(len(g.In(graph.TaskID(t))))
		s.workLeft[q] += model.TaskTime(task)
	}
	s.left = append([]int32(nil), s.cnt...)

	s.expand()
	sort.Slice(s.frontier, func(i, j int) bool { return s.frontier[i].Makespan < s.frontier[j].Makespan })
	return &Result{Frontier: s.frontier, Nodes: s.nodes, Complete: s.complete}, nil
}

// curMem is the MIN_MEM realized so far (a lower bound on any completion).
func (s *solver) curMem() int64 {
	var mm int64
	for q := 0; q < s.p; q++ {
		if v := s.perm[q] + s.peakVol[q]; v > mm {
			mm = v
		}
	}
	return mm
}

// bounds returns optimistic completions: lbTime is the largest of the
// current clocks, each processor's clock plus its remaining work, and each
// unscheduled task's data-ready time plus its bottom level; lbMem is the
// realized peak (memory never un-peaks).
func (s *solver) bounds() (float64, int64) {
	var lbT float64
	for q := 0; q < s.p; q++ {
		if s.clock[q] > lbT {
			lbT = s.clock[q]
		}
		if v := s.clock[q] + s.workLeft[q]; v > lbT {
			lbT = v
		}
	}
	for t := 0; t < s.n; t++ {
		if s.mask&(1<<uint(t)) != 0 {
			continue
		}
		if v := s.ready[t] + s.bl[t]; v > lbT {
			lbT = v
		}
	}
	return lbT, s.curMem()
}

func (s *solver) prunedByFrontier(lbT float64, lbM int64) bool {
	for _, f := range s.frontier {
		// Strict comparison on time: any completion of this branch takes at
		// least lbT and at least lbM, so a frontier point at or below both
		// weakly dominates everything the branch can reach.
		if f.Makespan <= lbT && f.MinMem <= lbM {
			return true
		}
	}
	return false
}

// dominatedMemo reports whether the current state is componentwise no
// better than a recorded state with the same mask, and records it
// otherwise. The dominance vector is (clocks, volatile peaks, data-ready
// times of unscheduled tasks): alive volatile contents are a pure function
// of the mask and need no comparison.
func (s *solver) dominatedMemo() bool {
	vec := make([]float64, 0, 2*s.p+s.n)
	for q := 0; q < s.p; q++ {
		vec = append(vec, s.clock[q])
	}
	for q := 0; q < s.p; q++ {
		vec = append(vec, float64(s.peakVol[q]))
	}
	for t := 0; t < s.n; t++ {
		if s.mask&(1<<uint(t)) == 0 {
			vec = append(vec, s.ready[t])
		}
	}
	entries := s.memo[s.mask]
	for _, e := range entries {
		dominated := true
		for i, v := range e {
			if vec[i] < v-eps {
				dominated = false
				break
			}
		}
		if dominated {
			return true
		}
	}
	if s.memoSize < s.memoLimit && len(entries) < 64 {
		s.memo[s.mask] = append(entries, vec)
		s.memoSize++
	}
	return false
}

func (s *solver) offer(mk float64, mm int64) {
	for _, f := range s.frontier {
		if f.Makespan <= mk+eps && f.MinMem <= mm {
			return // dominated (or equal)
		}
	}
	kept := s.frontier[:0]
	for _, f := range s.frontier {
		if mk <= f.Makespan+eps && mm <= f.MinMem {
			continue // now dominated by the new point
		}
		kept = append(kept, f)
	}
	s.frontier = append(kept, Point{mk, mm})
}

type trailEntry struct {
	q         graph.Proc
	prevClock float64
	prevWork  float64
	prevPeak  int64
	allocated []volEntry // newly alive at this step
	freed     []volEntry // died at this step
	rTouched  []graph.TaskID
	rPrev     []float64
}

func (s *solver) place(t graph.TaskID) trailEntry {
	q := s.assign[t]
	tr := trailEntry{q: q, prevClock: s.clock[q], prevWork: s.workLeft[q], prevPeak: s.peakVol[q]}
	start := s.clock[q]
	if s.ready[t] > start {
		start = s.ready[t]
	}
	dur := s.model.TaskTime(&s.g.Tasks[t])
	finish := start + dur
	s.clock[q] = finish
	s.workLeft[q] -= dur
	base := int(q) * s.m
	for _, v := range s.taskVols[t] {
		if s.left[base+int(v.obj)] == s.cnt[base+int(v.obj)] {
			s.aliveVol[q] += v.size
			tr.allocated = append(tr.allocated, v)
		}
	}
	if s.aliveVol[q] > s.peakVol[q] {
		s.peakVol[q] = s.aliveVol[q]
	}
	for _, v := range s.taskVols[t] {
		s.left[base+int(v.obj)]--
		if s.left[base+int(v.obj)] == 0 {
			s.aliveVol[q] -= v.size
			tr.freed = append(tr.freed, v)
		}
	}
	for _, e := range s.g.Out(t) {
		arr := finish
		if e.Kind == graph.DepTrue && s.assign[e.From] != s.assign[e.To] {
			arr += s.model.CommTime(s.g.Objects[e.Obj].Size)
		}
		s.remaining[e.To]--
		if arr > s.ready[e.To] {
			tr.rTouched = append(tr.rTouched, e.To)
			tr.rPrev = append(tr.rPrev, s.ready[e.To])
			s.ready[e.To] = arr
		}
	}
	s.mask |= 1 << uint(t)
	return tr
}

func (s *solver) unplace(t graph.TaskID, tr trailEntry) {
	s.mask &^= 1 << uint(t)
	q := tr.q
	s.clock[q] = tr.prevClock
	s.workLeft[q] = tr.prevWork
	s.peakVol[q] = tr.prevPeak
	base := int(q) * s.m
	for _, v := range tr.freed {
		s.aliveVol[q] += v.size
	}
	for _, v := range s.taskVols[t] {
		s.left[base+int(v.obj)]++
	}
	for _, v := range tr.allocated {
		s.aliveVol[q] -= v.size
	}
	for _, e := range s.g.Out(t) {
		s.remaining[e.To]++
	}
	for i, u := range tr.rTouched {
		s.ready[u] = tr.rPrev[i]
	}
}

func (s *solver) expand() {
	if !s.complete {
		return
	}
	s.nodes++
	if s.nodes > s.budget {
		s.complete = false
		return
	}
	if s.mask == s.full {
		var mk float64
		for q := 0; q < s.p; q++ {
			if s.clock[q] > mk {
				mk = s.clock[q]
			}
		}
		s.offer(mk, s.curMem())
		return
	}
	lbT, lbM := s.bounds()
	if s.prunedByFrontier(lbT, lbM) {
		return
	}
	if s.dominatedMemo() {
		return
	}
	cands := make([]graph.TaskID, 0, s.n)
	for t := 0; t < s.n; t++ {
		if s.mask&(1<<uint(t)) == 0 && s.remaining[t] == 0 {
			cands = append(cands, graph.TaskID(t))
		}
	}
	// Critical-path-first branching finds strong incumbents early.
	sort.Slice(cands, func(i, j int) bool {
		if s.bl[cands[i]] != s.bl[cands[j]] {
			return s.bl[cands[i]] > s.bl[cands[j]]
		}
		return cands[i] < cands[j]
	})
	for _, t := range cands {
		tr := s.place(t)
		s.expand()
		s.unplace(t, tr)
		if !s.complete {
			return
		}
	}
}
