package exact_test

import (
	"fmt"
	"math"
	"sort"
	"testing"

	"repro/internal/graph"
	"repro/internal/sched"
	"repro/internal/sched/exact"
	"repro/internal/util"
)

// randomInstance builds a random owner-compute instance of at most n tasks
// on p processors: task i writes its own object and reads a few earlier
// ones, so dependence chains, fanout and volatile lifetimes all vary with
// the seed.
func randomInstance(t *testing.T, seed uint64, n, p int) (*graph.DAG, []graph.Proc) {
	t.Helper()
	rng := util.NewRNG(seed)
	b := graph.NewBuilder()
	objs := make([]graph.ObjID, n)
	for i := 0; i < n; i++ {
		objs[i] = b.Object(fmt.Sprintf("d%d", i), int64(1+rng.Intn(4)))
	}
	for i := 0; i < n; i++ {
		var reads []graph.ObjID
		if i > 0 {
			k := rng.Intn(3)
			seen := map[int]bool{}
			for j := 0; j < k; j++ {
				pick := rng.Intn(i)
				if !seen[pick] {
					seen[pick] = true
					reads = append(reads, objs[pick])
				}
			}
		}
		b.Task(fmt.Sprintf("t%d", i), 1+rng.Float64()*2, reads, []graph.ObjID{objs[i]})
	}
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	sched.CyclicOwners(g, p)
	assign, err := sched.OwnerComputeAssign(g, p)
	if err != nil {
		t.Fatal(err)
	}
	return g, assign
}

func allHeuristics() []sched.Heuristic {
	return []sched.Heuristic{sched.RCP, sched.MPO, sched.DTS, sched.DTSMerge, sched.TreeMem}
}

// TestFrontierLowerBoundsHeuristics is the core property: on random small
// instances, every heuristic's (makespan, MIN_MEM) must be weakly dominated
// by the exact frontier — the solver lower-bounds the heuristics in both
// dimensions at once. The companion mutation checks prove the property has
// teeth: points strictly better than the frontier are rejected.
func TestFrontierLowerBoundsHeuristics(t *testing.T) {
	seeds := 60
	if testing.Short() {
		seeds = 15
	}
	model := sched.Unit()
	for seed := 0; seed < seeds; seed++ {
		rng := util.NewRNG(uint64(seed)*77 + 1)
		n := 4 + rng.Intn(9) // 4..12 tasks
		p := 1 + rng.Intn(3)
		g, assign := randomInstance(t, uint64(seed)+1000, n, p)
		res, err := exact.Frontier(g, assign, p, model, exact.Options{})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if !res.Complete {
			t.Fatalf("seed %d: budget exhausted on a %d-task instance", seed, n)
		}
		if len(res.Frontier) == 0 {
			t.Fatalf("seed %d: empty frontier", seed)
		}
		for _, h := range allHeuristics() {
			s, err := sched.ScheduleWith(h, g, assign, p, model, 1<<40)
			if err != nil {
				t.Fatalf("seed %d %s: %v", seed, h, err)
			}
			if !res.Admits(s.Makespan, s.MinMem()) {
				t.Errorf("seed %d: %s point (%g, %d) beats the exact frontier %v",
					seed, h, s.Makespan, s.MinMem(), res.Frontier)
			}
			if gt, ok := res.GapTime(s.Makespan, s.MinMem()); ok && gt < 1-1e-9 {
				t.Errorf("seed %d: %s time gap %g below 1", seed, h, gt)
			}
			if gm, ok := res.GapMem(s.MinMem()); ok && gm < 1-1e-9 {
				t.Errorf("seed %d: %s mem gap %g below 1", seed, h, gm)
			}
		}
		// Mutation check: a fabricated measurement strictly better than the
		// frontier in either dimension must be caught.
		best := res.Frontier[0]
		if res.Admits(best.Makespan*0.99-0.01, 1<<40) {
			t.Errorf("seed %d: admitted a makespan faster than optimal", seed)
		}
		if best.MinMem > 0 && res.Admits(best.Makespan, best.MinMem-1) {
			t.Errorf("seed %d: admitted (optimal makespan, less than its memory)", seed)
		}
		low := res.BestMem()
		if low > 0 && res.Admits(math.Inf(1), low-1) {
			t.Errorf("seed %d: admitted memory below the instance minimum", seed)
		}
	}
}

// naiveFrontier enumerates every interleaving of ready tasks with no
// pruning at all and collects the non-dominated (makespan, MIN_MEM) pairs
// under the same start-time and immediate-free semantics as the solver and
// runList. Exponential — callers keep n tiny.
func naiveFrontier(g *graph.DAG, assign []graph.Proc, p int, model sched.CostModel) []exact.Point {
	n := g.NumTasks()
	m := g.NumObjects()
	perm := make([]int64, p)
	for i := range g.Objects {
		o := &g.Objects[i]
		if o.Owner >= 0 && int(o.Owner) < p {
			perm[o.Owner] += o.Size
		}
	}
	type vol struct {
		o  graph.ObjID
		sz int64
	}
	vols := make([][]vol, n)
	cnt := make([]int32, p*m)
	for t := 0; t < n; t++ {
		q := assign[t]
		task := &g.Tasks[t]
		seen := map[graph.ObjID]bool{}
		for _, lists := range [2][]graph.ObjID{task.Reads, task.Writes} {
			for _, o := range lists {
				if g.Objects[o].Owner == q || seen[o] {
					continue
				}
				seen[o] = true
				vols[t] = append(vols[t], vol{o, g.Objects[o].Size})
				cnt[int(q)*m+int(o)]++
			}
		}
	}
	var points []exact.Point
	left := append([]int32(nil), cnt...)
	clock := make([]float64, p)
	alive := make([]int64, p)
	peak := make([]int64, p)
	ready := make([]float64, n)
	remaining := make([]int32, n)
	for t := 0; t < n; t++ {
		remaining[t] = int32(len(g.In(graph.TaskID(t))))
	}
	done := make([]bool, n)
	var rec func(placed int)
	rec = func(placed int) {
		if placed == n {
			var mk float64
			var mm int64
			for q := 0; q < p; q++ {
				if clock[q] > mk {
					mk = clock[q]
				}
				if v := perm[q] + peak[q]; v > mm {
					mm = v
				}
			}
			points = append(points, exact.Point{Makespan: mk, MinMem: mm})
			return
		}
		for t := 0; t < n; t++ {
			if done[t] || remaining[t] != 0 {
				continue
			}
			q := assign[t]
			sClock, sAlive, sPeak := clock[q], alive[q], peak[q]
			sReady := append([]float64(nil), ready...)
			start := clock[q]
			if ready[t] > start {
				start = ready[t]
			}
			finish := start + model.TaskTime(&g.Tasks[t])
			clock[q] = finish
			base := int(q) * m
			for _, v := range vols[t] {
				if left[base+int(v.o)] == cnt[base+int(v.o)] {
					alive[q] += v.sz
				}
			}
			if alive[q] > peak[q] {
				peak[q] = alive[q]
			}
			for _, v := range vols[t] {
				left[base+int(v.o)]--
				if left[base+int(v.o)] == 0 {
					alive[q] -= v.sz
				}
			}
			for _, e := range g.Out(graph.TaskID(t)) {
				arr := finish
				if e.Kind == graph.DepTrue && assign[e.From] != assign[e.To] {
					arr += model.CommTime(g.Objects[e.Obj].Size)
				}
				if arr > ready[e.To] {
					ready[e.To] = arr
				}
				remaining[e.To]--
			}
			done[t] = true
			rec(placed + 1)
			done[t] = false
			for _, e := range g.Out(graph.TaskID(t)) {
				remaining[e.To]++
			}
			copy(ready, sReady)
			for _, v := range vols[t] {
				left[base+int(v.o)]++
			}
			clock[q], alive[q], peak[q] = sClock, sAlive, sPeak
		}
	}
	rec(0)
	// Reduce to the non-dominated set.
	sort.Slice(points, func(i, j int) bool {
		if points[i].Makespan != points[j].Makespan {
			return points[i].Makespan < points[j].Makespan
		}
		return points[i].MinMem < points[j].MinMem
	})
	var front []exact.Point
	bestMem := int64(math.MaxInt64)
	for _, pt := range points {
		if pt.MinMem < bestMem {
			front = append(front, pt)
			bestMem = pt.MinMem
		}
	}
	return front
}

// TestFrontierMatchesBruteForce differentially validates the pruned solver
// against an unpruned enumeration on tiny instances: the prunings
// (incumbent dominance, memoized state dominance, lower bounds) must never
// cut a frontier point.
func TestFrontierMatchesBruteForce(t *testing.T) {
	seeds := 30
	if testing.Short() {
		seeds = 10
	}
	model := sched.Unit()
	for seed := 0; seed < seeds; seed++ {
		rng := util.NewRNG(uint64(seed)*13 + 5)
		n := 3 + rng.Intn(5) // 3..7 tasks
		p := 1 + rng.Intn(2)
		g, assign := randomInstance(t, uint64(seed)+500, n, p)
		res, err := exact.Frontier(g, assign, p, model, exact.Options{})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		want := naiveFrontier(g, assign, p, model)
		if len(res.Frontier) != len(want) {
			t.Fatalf("seed %d: frontier %v, brute force %v", seed, res.Frontier, want)
		}
		for i := range want {
			if math.Abs(res.Frontier[i].Makespan-want[i].Makespan) > 1e-9 ||
				res.Frontier[i].MinMem != want[i].MinMem {
				t.Fatalf("seed %d: frontier %v, brute force %v", seed, res.Frontier, want)
			}
		}
	}
}

// TestTaskCapAndBudget pins the guard rails: oversized instances are
// rejected, and an exhausted node budget is reported as incomplete rather
// than silently passing off a partial frontier as exact.
func TestTaskCapAndBudget(t *testing.T) {
	g, assign := randomInstance(t, 9, 22, 2)
	if _, err := exact.Frontier(g, assign, 2, sched.Unit(), exact.Options{}); err == nil {
		t.Fatal("22-task instance accepted by the default 20-task cap")
	}
	g31, assign31 := randomInstance(t, 9, 31, 2)
	if _, err := exact.Frontier(g31, assign31, 2, sched.Unit(), exact.Options{MaxTasks: 40}); err == nil {
		t.Fatal("31-task instance accepted despite the 30-bit mask limit")
	}
	g2, assign2 := randomInstance(t, 11, 14, 2)
	res, err := exact.Frontier(g2, assign2, 2, sched.Unit(), exact.Options{NodeBudget: 5})
	if err != nil {
		t.Fatal(err)
	}
	if res.Complete {
		t.Fatal("5-node budget reported a complete search")
	}
	if res.Nodes <= 5 && len(res.Frontier) > 0 {
		t.Fatalf("budget-capped run did %d nodes yet offered %d points", res.Nodes, len(res.Frontier))
	}
}

// TestEmptyAndHelpers covers the degenerate accessors.
func TestEmptyAndHelpers(t *testing.T) {
	var r exact.Result
	if r.BestMem() != 0 || r.BestMakespan() != 0 {
		t.Fatal("empty result should report zero bests")
	}
	if _, ok := r.GapMem(5); ok {
		t.Fatal("GapMem on empty frontier should report not-ok")
	}
	if _, ok := r.GapTime(5, 5); ok {
		t.Fatal("GapTime on empty frontier should report not-ok")
	}
	if r.Admits(1, 1) {
		t.Fatal("empty frontier admits nothing")
	}
}
