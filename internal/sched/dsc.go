package sched

import (
	"sort"

	"repro/internal/graph"
)

// DSCOwners implements the paper's other stage-1 option: locality-driven
// clustering in the spirit of DSC (Yang & Gerasoulis [21]), simplified to
// a list-based edge-zeroing pass, followed by load-balanced mapping of the
// clusters to processors. To preserve the owner-compute invariant (all
// writers of an object on one processor), clustering operates on
// owner-compute units — one unit per written object, carrying all its
// writer tasks — and merges units when placing a unit on the cluster of
// its dominant predecessor reduces its estimated start time.
//
// Object owners are set from the final unit placement; objects that are
// never written follow the unit of their first reader.
func DSCOwners(g *graph.DAG, p int, model CostModel) *graph.DAG {
	// Units: one per written object; tasks writing nothing join the unit of
	// their first read's writer (rare) or unit 0.
	nObj := g.NumObjects()
	unitOf := make([]int32, g.NumTasks())
	objUnit := make([]int32, nObj)
	for i := range objUnit {
		objUnit[i] = -1
	}
	nUnits := int32(0)
	for ti := range g.Tasks {
		t := &g.Tasks[ti]
		if len(t.Writes) == 0 {
			unitOf[ti] = -1 // resolved below
			continue
		}
		o := t.Writes[0]
		if objUnit[o] == -1 {
			objUnit[o] = nUnits
			nUnits++
		}
		u := objUnit[o]
		unitOf[ti] = u
		for _, w := range t.Writes[1:] {
			if objUnit[w] == -1 {
				objUnit[w] = u
			}
		}
	}
	if nUnits == 0 {
		nUnits = 1
	}
	for ti := range g.Tasks {
		if unitOf[ti] != -1 {
			continue
		}
		u := int32(0)
		for _, e := range g.In(graph.TaskID(ti)) {
			if unitOf[e.From] >= 0 {
				u = unitOf[e.From]
				break
			}
		}
		unitOf[ti] = u
	}

	// Unit graph: aggregating tasks into units can create cycles between
	// units even though the task graph is acyclic, so collapse unit-level
	// strongly connected components first (mutually dependent units are
	// colocated) and cluster the condensation, which is a DAG.
	rawAdj := make([][]int32, nUnits)
	seenEdge := make(map[[2]int32]bool)
	for ti := range g.Tasks {
		for _, e := range g.Out(graph.TaskID(ti)) {
			uf, ut := unitOf[e.From], unitOf[e.To]
			if uf == ut || seenEdge[[2]int32{uf, ut}] {
				continue
			}
			seenEdge[[2]int32{uf, ut}] = true
			rawAdj[uf] = append(rawAdj[uf], ut)
		}
	}
	comp, nCompInt := graph.SCC(rawAdj)
	nComp := int32(nCompInt)
	compOfUnit := func(u int32) int32 { return comp[u] }

	work := make([]float64, nComp)
	adj := make([]map[int32]float64, nComp)
	indeg := make([]int32, nComp)
	for ti := range g.Tasks {
		work[compOfUnit(unitOf[ti])] += g.Tasks[ti].Cost
		for _, e := range g.Out(graph.TaskID(ti)) {
			uf, ut := compOfUnit(unitOf[e.From]), compOfUnit(unitOf[e.To])
			if uf == ut {
				continue
			}
			if adj[uf] == nil {
				adj[uf] = make(map[int32]float64)
			}
			c := 0.0
			if e.Kind == graph.DepTrue {
				c = model.CommTime(g.Objects[e.Obj].Size)
			}
			if _, seen := adj[uf][ut]; !seen {
				indeg[ut]++
			}
			if c > adj[uf][ut] {
				adj[uf][ut] = c
			}
		}
	}
	nUnits = nComp // cluster at component granularity below

	// List-based edge zeroing over the unit DAG in topological order:
	// place each unit on the cluster of the predecessor contributing its
	// latest arrival if that lowers its start estimate, else open a new
	// cluster.
	clusterOf := make([]int32, nUnits)
	for i := range clusterOf {
		clusterOf[i] = -1
	}
	clusterReady := []float64{}
	finish := make([]float64, nUnits)

	// Kahn order.
	queue := make([]int32, 0, nUnits)
	indegCopy := append([]int32(nil), indeg...)
	for u := int32(0); u < nUnits; u++ {
		if indegCopy[u] == 0 {
			queue = append(queue, u)
		}
	}
	preds := make([]map[int32]float64, nUnits)
	for u := int32(0); u < nUnits; u++ {
		for v, c := range adj[u] { //det:ok builds a map; final content is order-independent
			if preds[v] == nil {
				preds[v] = make(map[int32]float64)
			}
			preds[v][u] = c
		}
	}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		// Arrival time per predecessor cluster choice.
		bestCluster := int32(-1)
		bestStart := 0.0
		// Option A: new cluster — start when all messages have arrived.
		startNew := 0.0
		var domPred int32 = -1
		domArrival := -1.0
		// Iterate predecessors in unit order so the dominant-predecessor
		// choice breaks arrival-time ties deterministically (smallest unit
		// wins); map order here would leak into cluster numbering and from
		// there into the object owners, breaking plan content addressing.
		for _, pu := range sortedUnitKeys(preds[u]) {
			arr := finish[pu] + preds[u][pu]
			if arr > startNew {
				startNew = arr
			}
			if arr > domArrival {
				domArrival = arr
				domPred = pu
			}
		}
		bestCluster, bestStart = -1, startNew
		// Option B: join the dominant predecessor's cluster (zero its edge).
		if domPred >= 0 {
			c := clusterOf[domPred]
			start := clusterReady[c]
			for pu, cc := range preds[u] { //det:ok max fold, commutative
				arr := finish[pu]
				if clusterOf[pu] != c {
					arr += cc
				}
				if arr > start {
					start = arr
				}
			}
			if start <= bestStart {
				bestCluster, bestStart = c, start
			}
		}
		if bestCluster == -1 {
			bestCluster = int32(len(clusterReady))
			clusterReady = append(clusterReady, 0)
		}
		clusterOf[u] = bestCluster
		finish[u] = bestStart + work[u]/maxf(model.ComputeRate, 1)
		if model.ComputeRate <= 0 {
			finish[u] = bestStart + work[u]
		}
		clusterReady[bestCluster] = finish[u]

		for _, v := range sortedUnitKeys(adj[u]) {
			indegCopy[v]--
			if indegCopy[v] == 0 {
				queue = append(queue, v)
			}
		}
	}

	// LPT map clusters to processors by total work.
	nClusters := len(clusterReady)
	cwork := make([]float64, nClusters)
	for u := int32(0); u < nUnits; u++ {
		cwork[clusterOf[u]] += work[u]
	}
	order := make([]int, nClusters)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		if cwork[order[a]] != cwork[order[b]] {
			return cwork[order[a]] > cwork[order[b]]
		}
		return order[a] < order[b]
	})
	procOf := make([]graph.Proc, nClusters)
	load := make([]float64, p)
	for _, c := range order {
		best := 0
		for q := 1; q < p; q++ {
			if load[q] < load[best] {
				best = q
			}
		}
		procOf[c] = graph.Proc(best)
		load[best] += cwork[c]
	}

	// Object owners from unit placement.
	for o := 0; o < nObj; o++ {
		if objUnit[o] >= 0 {
			g.Objects[o].Owner = procOf[clusterOf[compOfUnit(objUnit[o])]]
		}
	}
	next := 0
	for o := 0; o < nObj; o++ {
		if objUnit[o] == -1 {
			// Never-written object: co-locate with its first reader's unit.
			placed := false
			for ti := range g.Tasks {
				for _, r := range g.Tasks[ti].Reads {
					if r == graph.ObjID(o) {
						g.Objects[o].Owner = procOf[clusterOf[compOfUnit(unitOf[ti])]]
						placed = true
						break
					}
				}
				if placed {
					break
				}
			}
			if !placed {
				g.Objects[o].Owner = graph.Proc(next % p)
				next++
			}
		}
	}
	return g
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

// sortedUnitKeys returns the keys of a unit-weight map in ascending order.
func sortedUnitKeys(m map[int32]float64) []int32 {
	keys := make([]int32, 0, len(m))
	for k := range m { //det:ok keys collected then sorted below
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	return keys
}
