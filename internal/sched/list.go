package sched

import (
	"fmt"

	"repro/internal/graph"
)

// policy customizes the list-scheduling engine of Figure 4. Priorities are
// expressed as heap keys where SMALLER is better (schedulers negate
// "higher is better" quantities); eligibility gates the heap top (DTS uses
// it to enforce slice-by-slice execution, and its slice-major key order
// guarantees that an ineligible top implies no eligible ready task).
type policy interface {
	// keys returns the heap keys of ready task t (smaller = better).
	keys(t graph.TaskID) (k1, k2 float64)
	// eligible reports whether ready task t may be scheduled on p now.
	eligible(t graph.TaskID, p graph.Proc) bool
	// inserted notifies the policy that t joined p's ready set.
	inserted(t graph.TaskID, p graph.Proc)
	// scheduled notifies the policy that t was placed on p.
	scheduled(t graph.TaskID, p graph.Proc)
}

// refreshable is implemented by policies whose ready-task keys change as
// tasks are scheduled (MPO); the engine injects a callback that re-sinks a
// ready task in its heap.
type refreshable interface {
	setRefresh(func(t graph.TaskID, p graph.Proc))
}

// runList executes the scheduling loop shared by RCP, MPO and DTS:
//
//	while there is an unscheduled task:
//	  find the processor Px with the earliest idle time (among those with
//	  an eligible ready task);
//	  schedule Px's highest-priority ready task;
//	  update ready lists (and affected priorities).
//
// Task start times account for cross-processor communication delays of the
// cost model, so the returned Makespan is the scheduler's predicted
// parallel time. Each scheduling step costs O(P + log n + degree).
func runList(g *graph.DAG, assign []graph.Proc, p int, model CostModel, pol policy, h Heuristic) (*Schedule, error) {
	n := g.NumTasks()
	s := &Schedule{
		G:         g,
		P:         p,
		Assign:    assign,
		Order:     make([][]graph.TaskID, p),
		Heuristic: h,
	}
	heaps := make([]*taskHeap, p)
	for q := 0; q < p; q++ {
		heaps[q] = newTaskHeap()
	}
	if r, ok := pol.(refreshable); ok {
		r.setRefresh(func(t graph.TaskID, q graph.Proc) {
			k1, k2 := pol.keys(t)
			heaps[q].Update(t, k1, k2)
		})
	}

	remaining := make([]int32, n)
	dataReady := make([]float64, n)
	for t := 0; t < n; t++ {
		remaining[t] = int32(len(g.In(graph.TaskID(t))))
	}
	insert := func(t graph.TaskID) {
		q := assign[t]
		pol.inserted(t, q)
		k1, k2 := pol.keys(t)
		heaps[q].Push(t, k1, k2)
	}
	for t := 0; t < n; t++ {
		if remaining[t] == 0 {
			insert(graph.TaskID(t))
		}
	}

	clock := make([]float64, p)
	scheduledCount := 0
	for scheduledCount < n {
		best := -1
		for q := 0; q < p; q++ {
			if heaps[q].Len() == 0 || !pol.eligible(heaps[q].Top(), graph.Proc(q)) {
				continue
			}
			if best == -1 || clock[q] < clock[best] {
				best = q
			}
		}
		if best == -1 {
			return nil, fmt.Errorf("sched: no eligible ready task (%d of %d scheduled); policy starves", scheduledCount, n)
		}
		chosen := heaps[best].Pop()

		start := clock[best]
		if dataReady[chosen] > start {
			start = dataReady[chosen]
		}
		f := start + model.TaskTime(&g.Tasks[chosen])
		clock[best] = f
		s.Order[best] = append(s.Order[best], chosen)
		scheduledCount++
		pol.scheduled(chosen, graph.Proc(best))

		for _, e := range g.Out(chosen) {
			arr := f
			if e.Kind == graph.DepTrue && assign[e.From] != assign[e.To] {
				arr += model.CommTime(g.Objects[e.Obj].Size)
			}
			if arr > dataReady[e.To] {
				dataReady[e.To] = arr
			}
			remaining[e.To]--
			if remaining[e.To] == 0 {
				insert(e.To)
			}
		}
	}
	makespan := 0.0
	for q := 0; q < p; q++ {
		if clock[q] > makespan {
			makespan = clock[q]
		}
	}
	s.Makespan = makespan
	if err := s.finalize(); err != nil {
		return nil, err
	}
	return s, nil
}
