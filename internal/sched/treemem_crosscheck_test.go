package sched_test

import (
	"fmt"
	"testing"

	"repro/internal/graph"
	"repro/internal/mem"
	"repro/internal/sched"
	"repro/internal/sched/exact"
	"repro/internal/util"
	"repro/internal/verify"
)

// TestTreeMemMatchesExactOnTrees cross-checks the Liu scheduler against the
// branch-and-bound reference: on memory-tree instances small enough to solve
// exactly, the sequential TreeMem schedule must land on the true MIN_MEM
// optimum — not within a factor, exactly — and the resulting MAP plan must
// execute at that capacity and pass the symbolic verifier.
func TestTreeMemMatchesExactOnTrees(t *testing.T) {
	seeds := []uint64{1, 2, 3, 5, 7, 11, 13, 17}
	if testing.Short() {
		seeds = seeds[:4]
	}
	for _, seed := range seeds {
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			size := 8 + int(seed%11) // 8..18 tasks, under the exact cap
			g, err := graph.GenMemoryTree(seed, size)
			if err != nil {
				t.Fatal(err)
			}
			assign, err := sched.OwnerComputeAssign(g, 1)
			if err != nil {
				t.Fatal(err)
			}
			model := sched.Unit()
			s, err := sched.ScheduleTreeMem(g, assign, 1, model)
			if err != nil {
				t.Fatal(err)
			}
			_, liu, err := sched.TreeMemOrder(g, assign, model)
			if err != nil {
				t.Fatal(err)
			}
			if !liu {
				t.Fatal("memory-tree instance did not take the Liu path")
			}
			res, err := exact.Frontier(g, assign, 1, model, exact.Options{})
			if err != nil {
				t.Fatal(err)
			}
			if !res.Complete {
				t.Fatalf("exact solver exhausted its budget on %d tasks", g.NumTasks())
			}
			if got, want := s.MinMem(), res.BestMem(); got != want {
				t.Fatalf("TreeMem MIN_MEM %d, exact sequential optimum %d", got, want)
			}
			mp, err := mem.NewPlan(s, s.MinMem())
			if err != nil {
				t.Fatal(err)
			}
			if !mp.Executable {
				t.Fatalf("TreeMem plan not executable at its own MIN_MEM %d", s.MinMem())
			}
			if r := verify.Check(s, mp); !r.OK() {
				t.Fatalf("verifier flagged the optimal plan: %v", r.Err())
			}
		})
	}
}

// parallelMemoryTree is the multi-processor variant of the memory-tree
// gadget: same in-forest shape, but link ownership is dealt round-robin so
// the owner-compute rule spreads the traversal over p processors.
func parallelMemoryTree(t *testing.T, seed uint64, size, p int) *graph.DAG {
	t.Helper()
	g, err := graph.GenMemoryTree(seed, size)
	if err != nil {
		t.Fatal(err)
	}
	i := 0
	for o := range g.Objects {
		if g.Objects[o].Owner == 0 { // the links; files stay unowned
			g.Objects[o].Owner = graph.Proc(i % p)
			i++
		}
	}
	return g
}

// TestTreeMemParallelTreeWithinSequentialBound lifts the cross-check to
// p > 1: the rank-strict list policy may only interleave the Liu order, so
// every processor's peak stays within the order's sequential footprint (the
// 2014-style bound), the plan executes at that bound, and the verifier's
// allocator replay agrees.
func TestTreeMemParallelTreeWithinSequentialBound(t *testing.T) {
	for _, seed := range []uint64{3, 9, 21, 33} {
		for _, p := range []int{2, 3} {
			g := parallelMemoryTree(t, seed, 12+int(seed%9), p)
			assign, err := sched.OwnerComputeAssign(g, p)
			if err != nil {
				t.Fatal(err)
			}
			model := sched.Unit()
			order, _, err := sched.TreeMemOrder(g, assign, model)
			if err != nil {
				t.Fatal(err)
			}
			bound := sched.SequentialFootprint(g, assign, p, order)
			s, err := sched.ScheduleTreeMem(g, assign, p, model)
			if err != nil {
				t.Fatal(err)
			}
			if err := s.Validate(); err != nil {
				t.Fatal(err)
			}
			if s.MinMem() > bound {
				t.Fatalf("seed %d p %d: parallel MIN_MEM %d exceeds sequential footprint %d", seed, p, s.MinMem(), bound)
			}
			mp, err := mem.NewPlan(s, bound)
			if err != nil {
				t.Fatal(err)
			}
			if !mp.Executable {
				t.Fatalf("seed %d p %d: plan not executable at the footprint bound %d", seed, p, bound)
			}
			if r := verify.Check(s, mp); !r.OK() {
				t.Fatalf("seed %d p %d: verifier flagged the plan: %v", seed, p, r.Err())
			}
		}
	}
}

// TestTreeMemNeverAboveOtherHeuristicsOnTrees: on its home turf the memory
// scheduler should be at least as frugal as every other heuristic — the
// bake-off table's memtree column, asserted as a property over seeds.
func TestTreeMemNeverAboveOtherHeuristicsOnTrees(t *testing.T) {
	rng := util.NewRNG(99)
	for trial := 0; trial < 12; trial++ {
		seed := rng.Uint64()
		g, err := graph.GenMemoryTree(seed, 6+trial)
		if err != nil {
			t.Fatal(err)
		}
		assign, err := sched.OwnerComputeAssign(g, 1)
		if err != nil {
			t.Fatal(err)
		}
		model := sched.Unit()
		tm, err := sched.ScheduleTreeMem(g, assign, 1, model)
		if err != nil {
			t.Fatal(err)
		}
		for _, h := range []sched.Heuristic{sched.RCP, sched.MPO, sched.DTS, sched.DTSMerge} {
			s, err := sched.ScheduleWith(h, g, assign, 1, model, 1<<40)
			if err != nil {
				t.Fatalf("%s: %v", h, err)
			}
			if tm.MinMem() > s.MinMem() {
				t.Fatalf("trial %d: TreeMem MIN_MEM %d above %s's %d on a tree", trial, tm.MinMem(), h, s.MinMem())
			}
		}
	}
}
