package trace

import (
	"math"
	"sort"
	"sync"
	"testing"

	"repro/internal/util"
)

func TestHistogramExactSmallValues(t *testing.T) {
	h := NewHistogram()
	for v := int64(0); v < 16; v++ {
		h.Observe(v)
	}
	if h.Count() != 16 || h.Min() != 0 || h.Max() != 15 {
		t.Fatalf("count=%d min=%d max=%d", h.Count(), h.Min(), h.Max())
	}
	// Small values land in exact buckets: every quantile is a recorded value.
	if got := h.Quantile(0); got != 0 {
		t.Errorf("q0 = %d, want 0", got)
	}
	if got := h.Quantile(1); got != 15 {
		t.Errorf("q1 = %d, want 15", got)
	}
	if got := h.Quantile(0.5); got != 7 && got != 8 {
		t.Errorf("q50 = %d, want 7 or 8", got)
	}
	if mean := h.Mean(); math.Abs(mean-7.5) > 1e-9 {
		t.Errorf("mean = %v, want 7.5", mean)
	}
}

// TestHistogramQuantileError: for a wide range of magnitudes, the reported
// quantile of a uniform sample never deviates from the true quantile by
// more than the bucket spread (~2/16) plus rank rounding.
func TestHistogramQuantileError(t *testing.T) {
	h := NewHistogram()
	const n = 20000
	rng := util.NewRNG(7)
	vals := make([]int64, 0, n)
	for i := 0; i < n; i++ {
		// Log-uniform in [1, 2^40).
		v := int64(1) << (rng.Intn(40))
		v += int64(rng.Uint64() % uint64(v))
		h.Observe(v)
		vals = append(vals, v)
	}
	// The histogram never understates: quantile >= the bucket's content,
	// and relative error vs a sorted reference stays under 2/16 + slack.
	sorted := append([]int64(nil), vals...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	for _, q := range []float64{0.1, 0.5, 0.9, 0.99} {
		got := h.Quantile(q)
		want := sorted[int(q*float64(n-1))]
		rel := math.Abs(float64(got)-float64(want)) / float64(want)
		if rel > 0.15 {
			t.Errorf("q%.2f: got %d want %d (rel err %.3f)", q, got, want, rel)
		}
	}
	if h.Quantile(1) != h.Max() {
		t.Errorf("q1 %d != max %d", h.Quantile(1), h.Max())
	}
	if h.Quantile(0) != h.Min() {
		t.Errorf("q0 %d != min %d", h.Quantile(0), h.Min())
	}
}

func TestHistogramMerge(t *testing.T) {
	a, b := NewHistogram(), NewHistogram()
	for v := int64(1); v <= 100; v++ {
		a.Observe(v)
	}
	for v := int64(1000); v <= 2000; v++ {
		b.Observe(v)
	}
	a.Merge(b)
	if a.Count() != 100+1001 {
		t.Fatalf("merged count %d", a.Count())
	}
	if a.Min() != 1 || a.Max() != 2000 {
		t.Fatalf("merged min=%d max=%d", a.Min(), a.Max())
	}
	wantSum := int64(100*101/2) + int64(1001*1500)
	if got := a.Mean() * float64(a.Count()); math.Abs(got-float64(wantSum)) > 1 {
		t.Fatalf("merged sum %v, want %d", got, wantSum)
	}
	// Merging an empty or nil histogram changes nothing.
	before := a.Count()
	a.Merge(NewHistogram())
	a.Merge(nil)
	if a.Count() != before {
		t.Fatalf("count changed by empty merge: %d", a.Count())
	}
}

func TestHistogramNilAndNegative(t *testing.T) {
	var h *Histogram
	h.Observe(5) // must not panic
	if h.Count() != 0 || h.Quantile(0.5) != 0 || h.Mean() != 0 || h.Min() != 0 || h.Max() != 0 {
		t.Fatal("nil histogram must report zeros")
	}
	g := NewHistogram()
	g.Observe(-17)
	if g.Count() != 1 || g.Max() != 0 {
		t.Fatalf("negative sample not clamped: count=%d max=%d", g.Count(), g.Max())
	}
}

func TestHistogramConcurrent(t *testing.T) {
	h := NewHistogram()
	var wg sync.WaitGroup
	const workers, per = 8, 1000
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := util.NewRNG(uint64(w + 1))
			for i := 0; i < per; i++ {
				h.Observe(int64(rng.Intn(1 << 20)))
			}
		}(w)
	}
	wg.Wait()
	if h.Count() != workers*per {
		t.Fatalf("count %d, want %d", h.Count(), workers*per)
	}
}

func TestHistogramSummary(t *testing.T) {
	h := NewHistogram()
	h.Observe(1500)
	h.Observe(2500)
	s := h.Summary(1000, "ms")
	if s == "" || h.Count() != 2 {
		t.Fatalf("summary %q", s)
	}
	for _, want := range []string{"n=2", "p50=", "p99=", "ms"} {
		if !contains(s, want) {
			t.Errorf("summary %q missing %q", s, want)
		}
	}
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}
