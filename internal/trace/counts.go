package trace

import (
	"fmt"
	"strings"
)

// CountTable renders a per-processor integer-counter table: one column per
// counter name, one row per processor, and a final "all" row with per-column
// totals. perProc is indexed [processor][counter] and must be rectangular
// with len(cols) columns. It is the text form of the engine's reliability
// counters (retransmits, drops, duplicates, acks), used by cmd/rapidsolve's
// report; like StateTable it is deliberately independent of internal/proto.
func CountTable(cols []string, perProc [][]int64) string {
	width := 10
	for _, c := range cols {
		if len(c)+2 > width {
			width = len(c) + 2
		}
	}
	var b strings.Builder
	b.WriteString("proc")
	for _, c := range cols {
		fmt.Fprintf(&b, "%*s", width, c)
	}
	b.WriteByte('\n')
	totals := make([]int64, len(cols))
	for p, row := range perProc {
		fmt.Fprintf(&b, "P%-3d", p)
		for i := range cols {
			v := int64(0)
			if i < len(row) {
				v = row[i]
			}
			totals[i] += v
			fmt.Fprintf(&b, "%*d", width, v)
		}
		b.WriteByte('\n')
	}
	b.WriteString("all ")
	for i := range cols {
		fmt.Fprintf(&b, "%*d", width, totals[i])
	}
	b.WriteByte('\n')
	return b.String()
}
