package trace

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// Prometheus text-format (version 0.0.4) rendering and parsing. The
// writer is what rapidd's GET /metrics serves; the parser is its
// adversary in tests — a strict reader of the exposition format that
// fails on anything a real scraper would reject, so the endpoint cannot
// drift into almost-Prometheus output.

// PromSanitize maps an arbitrary dotted counter name to a legal
// Prometheus metric name: every character outside [a-zA-Z0-9_:] becomes
// '_', and a leading digit is prefixed with '_'.
func PromSanitize(name string) string {
	var b strings.Builder
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
			b.WriteByte(c)
		case c >= '0' && c <= '9':
			if i == 0 {
				b.WriteByte('_')
			}
			b.WriteByte(c)
		default:
			b.WriteByte('_')
		}
	}
	if b.Len() == 0 {
		return "_"
	}
	return b.String()
}

func promValidName(name string) bool {
	if name == "" {
		return false
	}
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
		case c >= '0' && c <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

func promValidLabelName(name string) bool {
	return promValidName(name) && !strings.Contains(name, ":")
}

// promEscape escapes a label value per the exposition format.
func promEscape(v string) string {
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(v)
}

func promFormatValue(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

type promSample struct {
	suffix string // appended to the family name ("" usually, "_sum", ...)
	labels string // pre-rendered, sorted, "{...}" or ""
	value  float64
}

type promFamily struct {
	name    string
	help    string
	typ     string
	samples []promSample
}

// PromWriter accumulates metric families and renders them sorted by
// family name (sample order within a family is insertion order), so the
// output is deterministic regardless of map iteration.
type PromWriter struct {
	families map[string]*promFamily
}

// NewPromWriter returns an empty writer.
func NewPromWriter() *PromWriter {
	return &PromWriter{families: make(map[string]*promFamily)}
}

func renderLabels(labels map[string]string) string {
	if len(labels) == 0 {
		return ""
	}
	keys := make([]string, 0, len(labels))
	for k := range labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	b.WriteByte('{')
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, `%s="%s"`, k, promEscape(labels[k]))
	}
	b.WriteByte('}')
	return b.String()
}

func (w *PromWriter) family(name, help, typ string) *promFamily {
	f := w.families[name]
	if f == nil {
		f = &promFamily{name: name, help: help, typ: typ}
		w.families[name] = f
	}
	return f
}

func (w *PromWriter) add(name, help, typ string, labels map[string]string, v float64) {
	f := w.family(name, help, typ)
	f.samples = append(f.samples, promSample{labels: renderLabels(labels), value: v})
}

// Counter records one counter sample; repeated calls with the same name
// and different labels extend the family.
func (w *PromWriter) Counter(name, help string, labels map[string]string, v float64) {
	w.add(name, help, "counter", labels, v)
}

// Gauge records one gauge sample.
func (w *PromWriter) Gauge(name, help string, labels map[string]string, v float64) {
	w.add(name, help, "gauge", labels, v)
}

// Summary renders a Histogram as a Prometheus summary: φ-quantiles 0.5,
// 0.9 and 0.99 plus <name>_sum and <name>_count. An empty (or nil)
// histogram still renders, with zero count — scrapers prefer a present
// zero series over one that appears later.
func (w *PromWriter) Summary(name, help string, h *Histogram) {
	f := w.family(name, help, "summary")
	for _, q := range []float64{0.5, 0.9, 0.99} {
		f.samples = append(f.samples, promSample{
			labels: fmt.Sprintf(`{quantile=%q}`, strconv.FormatFloat(q, 'g', -1, 64)),
			value:  float64(h.Quantile(q)),
		})
	}
	f.samples = append(f.samples,
		promSample{suffix: "_sum", value: float64(h.Sum())},
		promSample{suffix: "_count", value: float64(h.Count())})
}

// WriteTo renders the exposition, families in name order.
func (w *PromWriter) WriteTo(out io.Writer) (int64, error) {
	names := make([]string, 0, len(w.families))
	for name := range w.families {
		names = append(names, name)
	}
	sort.Strings(names)
	var total int64
	for _, name := range names {
		f := w.families[name]
		if f.help != "" {
			n, err := fmt.Fprintf(out, "# HELP %s %s\n", f.name, f.help)
			total += int64(n)
			if err != nil {
				return total, err
			}
		}
		n, err := fmt.Fprintf(out, "# TYPE %s %s\n", f.name, f.typ)
		total += int64(n)
		if err != nil {
			return total, err
		}
		for _, s := range f.samples {
			n, err := fmt.Fprintf(out, "%s%s%s %s\n", f.name, s.suffix, s.labels, promFormatValue(s.value))
			total += int64(n)
			if err != nil {
				return total, err
			}
		}
	}
	return total, nil
}

// String renders the exposition to a string.
func (w *PromWriter) String() string {
	var b strings.Builder
	w.WriteTo(&b)
	return b.String()
}

// PromSample is one parsed exposition sample.
type PromSample struct {
	Name   string
	Labels map[string]string
	Value  float64
}

// Key renders the sample's identity (name plus sorted labels) — what
// must be unique within one exposition.
func (s PromSample) Key() string {
	return s.Name + renderLabels(s.Labels)
}

// ParsePromText is a strict parser of the Prometheus text exposition
// format: it validates metric and label names, label-value escaping,
// float values, HELP/TYPE comment structure, and rejects duplicate
// samples. It exists so tests can assert a /metrics endpoint emits what a
// real scraper accepts — any syntax error fails loudly with its line.
func ParsePromText(data string) ([]PromSample, error) {
	var samples []PromSample
	seen := make(map[string]bool)
	typed := make(map[string]string)
	for ln, line := range strings.Split(data, "\n") {
		lineNo := ln + 1
		if strings.TrimSpace(line) == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			kind, name, rest, err := parsePromComment(line)
			if err != nil {
				return nil, fmt.Errorf("line %d: %v", lineNo, err)
			}
			if kind == "TYPE" {
				if typed[name] != "" {
					return nil, fmt.Errorf("line %d: duplicate TYPE for %s", lineNo, name)
				}
				switch rest {
				case "counter", "gauge", "summary", "histogram", "untyped":
				default:
					return nil, fmt.Errorf("line %d: unknown metric type %q", lineNo, rest)
				}
				typed[name] = rest
			}
			continue
		}
		s, err := parsePromSample(line)
		if err != nil {
			return nil, fmt.Errorf("line %d: %v", lineNo, err)
		}
		if seen[s.Key()] {
			return nil, fmt.Errorf("line %d: duplicate sample %s", lineNo, s.Key())
		}
		seen[s.Key()] = true
		samples = append(samples, s)
	}
	return samples, nil
}

func parsePromComment(line string) (kind, name, rest string, err error) {
	body := strings.TrimPrefix(line, "#")
	if !strings.HasPrefix(body, " ") {
		return "", "", "", fmt.Errorf("malformed comment %q", line)
	}
	fields := strings.SplitN(strings.TrimPrefix(body, " "), " ", 3)
	if fields[0] != "HELP" && fields[0] != "TYPE" {
		return "comment", "", "", nil // free-form comment: legal, carries nothing
	}
	if len(fields) < 3 {
		return "", "", "", fmt.Errorf("%s comment needs a name and a body: %q", fields[0], line)
	}
	if !promValidName(fields[1]) {
		return "", "", "", fmt.Errorf("bad metric name %q in %s comment", fields[1], fields[0])
	}
	return fields[0], fields[1], fields[2], nil
}

func parsePromSample(line string) (PromSample, error) {
	s := PromSample{}
	rest := line
	// Metric name: up to '{', ' ' or tab.
	end := strings.IndexAny(rest, "{ \t")
	if end < 0 {
		return s, fmt.Errorf("sample without value: %q", line)
	}
	s.Name = rest[:end]
	if !promValidName(s.Name) {
		return s, fmt.Errorf("bad metric name %q", s.Name)
	}
	rest = rest[end:]
	if strings.HasPrefix(rest, "{") {
		lbls, tail, err := parsePromLabels(rest)
		if err != nil {
			return s, err
		}
		s.Labels = lbls
		rest = tail
	}
	fields := strings.Fields(rest)
	if len(fields) < 1 || len(fields) > 2 {
		return s, fmt.Errorf("want value [timestamp] after metric, got %q", strings.TrimSpace(rest))
	}
	v, err := strconv.ParseFloat(fields[0], 64)
	if err != nil {
		return s, fmt.Errorf("bad sample value %q", fields[0])
	}
	s.Value = v
	if len(fields) == 2 {
		if _, err := strconv.ParseInt(fields[1], 10, 64); err != nil {
			return s, fmt.Errorf("bad timestamp %q", fields[1])
		}
	}
	return s, nil
}

func parsePromLabels(in string) (map[string]string, string, error) {
	labels := make(map[string]string)
	rest := in[1:] // past '{'
	for {
		rest = strings.TrimLeft(rest, " ")
		if strings.HasPrefix(rest, "}") {
			return labels, rest[1:], nil
		}
		eq := strings.Index(rest, "=")
		if eq < 0 {
			return nil, "", fmt.Errorf("label without '=' in %q", in)
		}
		name := strings.TrimSpace(rest[:eq])
		if !promValidLabelName(name) {
			return nil, "", fmt.Errorf("bad label name %q", name)
		}
		rest = rest[eq+1:]
		if !strings.HasPrefix(rest, `"`) {
			return nil, "", fmt.Errorf("label value for %q not quoted", name)
		}
		rest = rest[1:]
		var val strings.Builder
		for {
			if rest == "" {
				return nil, "", fmt.Errorf("unterminated label value for %q", name)
			}
			c := rest[0]
			if c == '"' {
				rest = rest[1:]
				break
			}
			if c == '\\' {
				if len(rest) < 2 {
					return nil, "", fmt.Errorf("dangling escape in label value for %q", name)
				}
				switch rest[1] {
				case '\\':
					val.WriteByte('\\')
				case '"':
					val.WriteByte('"')
				case 'n':
					val.WriteByte('\n')
				default:
					return nil, "", fmt.Errorf("bad escape \\%c in label value for %q", rest[1], name)
				}
				rest = rest[2:]
				continue
			}
			val.WriteByte(c)
			rest = rest[1:]
		}
		if _, dup := labels[name]; dup {
			return nil, "", fmt.Errorf("duplicate label %q", name)
		}
		labels[name] = val.String()
		rest = strings.TrimLeft(rest, " ")
		if strings.HasPrefix(rest, ",") {
			rest = rest[1:]
			continue
		}
		if !strings.HasPrefix(rest, "}") {
			return nil, "", fmt.Errorf("expected ',' or '}' after label %q", name)
		}
	}
}
