// Package trace records execution spans from the simulator (task
// executions, MAP activity) and renders ASCII Gantt charts like the paper's
// Figure 2(b)/(c) schedule illustrations.
package trace

import (
	"fmt"
	"sort"
	"strings"
)

// Kind classifies a span.
type Kind uint8

const (
	// Task is a task execution span.
	Task Kind = iota
	// MAP is a memory-allocation-point span.
	MAP
)

// Span is one recorded interval on a processor.
type Span struct {
	Proc       int32
	Kind       Kind
	Name       string
	Start, End float64
}

// Recorder accumulates spans.
type Recorder struct {
	Spans []Span
}

// Add records a span.
func (r *Recorder) Add(s Span) {
	if r == nil {
		return
	}
	r.Spans = append(r.Spans, s)
}

// Makespan returns the latest end time recorded.
func (r *Recorder) Makespan() float64 {
	m := 0.0
	for _, s := range r.Spans {
		if s.End > m {
			m = s.End
		}
	}
	return m
}

// Gantt renders an ASCII Gantt chart with the given number of columns.
// Each processor gets one row; task spans are drawn with the first letter
// of their name, MAPs with '#', idle time with '.'.
func (r *Recorder) Gantt(cols int) string {
	if len(r.Spans) == 0 {
		return "(empty trace)\n"
	}
	makespan := r.Makespan()
	if makespan <= 0 {
		makespan = 1
	}
	maxProc := int32(0)
	for _, s := range r.Spans {
		if s.Proc > maxProc {
			maxProc = s.Proc
		}
	}
	rows := make([][]byte, maxProc+1)
	for i := range rows {
		rows[i] = []byte(strings.Repeat(".", cols))
	}
	sorted := append([]Span(nil), r.Spans...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Start < sorted[j].Start })
	for _, s := range sorted {
		c0 := int(s.Start / makespan * float64(cols))
		c1 := int(s.End / makespan * float64(cols))
		if c1 <= c0 {
			c1 = c0 + 1
		}
		if c1 > cols {
			c1 = cols
		}
		ch := byte('#')
		if s.Kind == Task {
			ch = '*'
			if len(s.Name) > 0 {
				ch = s.Name[0]
			}
		}
		for c := c0; c < c1; c++ {
			rows[s.Proc][c] = ch
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "time 0 .. %.6g\n", makespan)
	for p, row := range rows {
		fmt.Fprintf(&b, "P%-2d |%s|\n", p, row)
	}
	return b.String()
}
