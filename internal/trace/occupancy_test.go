package trace

import (
	"strings"
	"testing"
)

func TestStateTable(t *testing.T) {
	states := []string{"REC", "EXE", "SND", "MAP", "END"}
	perProc := [][]float64{
		{0.5, 2, 0.25, 0.125, 0},
		{1.5, 1, 0.75, 0.875, 0},
	}
	out := StateTable(states, perProc, "s")
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 { // header + P0 + P1 + all
		t.Fatalf("want 4 lines, got %d:\n%s", len(lines), out)
	}
	for _, h := range []string{"REC(s)", "EXE(s)", "SND(s)", "MAP(s)", "END(s)"} {
		if !strings.Contains(lines[0], h) {
			t.Errorf("header missing %q: %s", h, lines[0])
		}
	}
	if !strings.HasPrefix(lines[1], "P0") || !strings.HasPrefix(lines[2], "P1") {
		t.Errorf("missing processor rows:\n%s", out)
	}
	if !strings.HasPrefix(lines[3], "all") {
		t.Errorf("missing totals row:\n%s", out)
	}
	// Totals row sums the columns: REC total 2, EXE total 3.
	if !strings.Contains(lines[3], "2") || !strings.Contains(lines[3], "3") {
		t.Errorf("totals row wrong: %s", lines[3])
	}
}

func TestStateTableNoUnit(t *testing.T) {
	out := StateTable([]string{"A", "B"}, [][]float64{{1, 2}}, "")
	if strings.Contains(out, "(") {
		t.Errorf("unitless header should have no parens:\n%s", out)
	}
}
