package trace

import (
	"strings"
	"testing"
)

func TestGanttBasic(t *testing.T) {
	r := &Recorder{}
	r.Add(Span{Proc: 0, Kind: Task, Name: "alpha", Start: 0, End: 5})
	r.Add(Span{Proc: 1, Kind: MAP, Name: "MAP", Start: 0, End: 1})
	r.Add(Span{Proc: 1, Kind: Task, Name: "beta", Start: 1, End: 10})
	if r.Makespan() != 10 {
		t.Fatalf("makespan %v", r.Makespan())
	}
	g := r.Gantt(20)
	lines := strings.Split(strings.TrimSpace(g), "\n")
	if len(lines) != 3 {
		t.Fatalf("expected 3 lines, got %d:\n%s", len(lines), g)
	}
	if !strings.Contains(lines[1], "a") {
		t.Fatalf("task letter missing on P0 row: %q", lines[1])
	}
	if !strings.Contains(lines[2], "#") || !strings.Contains(lines[2], "b") {
		t.Fatalf("MAP or task missing on P1 row: %q", lines[2])
	}
}

func TestGanttEmpty(t *testing.T) {
	r := &Recorder{}
	if !strings.Contains(r.Gantt(10), "empty") {
		t.Fatalf("empty trace not reported")
	}
}

func TestNilRecorderAddSafe(t *testing.T) {
	var r *Recorder
	r.Add(Span{}) // must not panic
}

func TestGanttClampsShortSpans(t *testing.T) {
	r := &Recorder{}
	r.Add(Span{Proc: 0, Kind: Task, Name: "y", Start: 0, End: 1 - 1e-9})
	r.Add(Span{Proc: 0, Kind: Task, Name: "x", Start: 1 - 1e-9, End: 1})
	g := r.Gantt(10)
	if !strings.Contains(g, "x") {
		t.Fatalf("zero-width span not drawn:\n%s", g)
	}
}
