package trace

import (
	"strings"
	"testing"
)

func TestCountTable(t *testing.T) {
	out := CountTable([]string{"retrans", "dropped"}, [][]int64{{3, 3}, {0, 0}})
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("want header + 2 procs + totals, got %d lines:\n%s", len(lines), out)
	}
	if !strings.Contains(lines[0], "retrans") || !strings.Contains(lines[0], "dropped") {
		t.Errorf("header missing columns: %q", lines[0])
	}
	if !strings.HasPrefix(lines[1], "P0") || !strings.Contains(lines[1], "3") {
		t.Errorf("P0 row wrong: %q", lines[1])
	}
	if !strings.HasPrefix(lines[3], "all") {
		t.Errorf("totals row wrong: %q", lines[3])
	}
	cells := strings.Fields(lines[3])
	if len(cells) != 3 || cells[1] != "3" || cells[2] != "3" {
		t.Errorf("totals row should sum columns: %q", lines[3])
	}
	// A short row is padded with zeros rather than panicking.
	if out := CountTable([]string{"a", "b"}, [][]int64{{1}}); !strings.Contains(out, "0") {
		t.Errorf("short row not zero-padded:\n%s", out)
	}
}
