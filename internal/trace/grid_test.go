package trace

import (
	"strings"
	"testing"
)

func TestGrid(t *testing.T) {
	out := Grid([]string{"class", "detail"}, [][]string{
		{"use-before-map", "object used before any MAP allocates it"},
		{"leak"},
	})
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("want 4 lines, got %d:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[0], "class") || !strings.Contains(lines[0], "detail") {
		t.Fatalf("bad header: %q", lines[0])
	}
	if !strings.HasPrefix(lines[1], "--------------") {
		t.Fatalf("bad separator: %q", lines[1])
	}
	// Ragged row renders its present cells.
	if !strings.HasPrefix(lines[3], "leak") {
		t.Fatalf("ragged row mishandled: %q", lines[3])
	}
	// Column alignment: "detail" starts at the same offset in header and rows.
	off := strings.Index(lines[0], "detail")
	if got := strings.Index(lines[2], "object used"); got != off {
		t.Fatalf("detail column misaligned: header at %d, row at %d", off, got)
	}
	if strings.HasSuffix(lines[2], " ") {
		t.Fatalf("trailing padding on last column: %q", lines[2])
	}
}

func TestGridEmpty(t *testing.T) {
	out := Grid([]string{"a"}, nil)
	if !strings.Contains(out, "a\n") {
		t.Fatalf("empty grid: %q", out)
	}
}
