package trace

import (
	"strings"
	"testing"
)

func TestPromSanitize(t *testing.T) {
	cases := map[string]string{
		"rapidd.jobs.completed": "rapidd_jobs_completed",
		"already_legal:name":    "already_legal:name",
		"9starts.with.digit":    "_9starts_with_digit",
		"spaced out":            "spaced_out",
		"":                      "_",
		"héllo":                 "h__llo", // é is two UTF-8 bytes
	}
	for in, want := range cases {
		if got := PromSanitize(in); got != want {
			t.Errorf("PromSanitize(%q) = %q, want %q", in, got, want)
		}
	}
	for _, in := range []string{"a.b", "9x", "x y", ""} {
		if !promValidName(PromSanitize(in)) {
			t.Errorf("PromSanitize(%q) = %q is not a valid name", in, PromSanitize(in))
		}
	}
}

// TestPromWriterDeterministicOutput: families render sorted by name with
// HELP/TYPE headers, label values escaped, regardless of insert order.
func TestPromWriterDeterministicOutput(t *testing.T) {
	w := NewPromWriter()
	w.Gauge("zz_gauge", "a gauge", nil, 2.5)
	w.Counter("aa_total", "a counter", map[string]string{"tenant": `we"ird\nl`}, 7)
	w.Counter("aa_total", "a counter", map[string]string{"tenant": "plain"}, 8)
	got := w.String()
	want := `# HELP aa_total a counter
# TYPE aa_total counter
aa_total{tenant="we\"ird\\nl"} 7
aa_total{tenant="plain"} 8
# HELP zz_gauge a gauge
# TYPE zz_gauge gauge
zz_gauge 2.5
`
	if got != want {
		t.Fatalf("output:\n%s\nwant:\n%s", got, want)
	}
	// Re-rendering is stable.
	if again := w.String(); again != got {
		t.Fatal("second render differs from the first")
	}
}

// TestPromWriterSummary: a histogram renders as quantiles + _sum/_count,
// and an empty histogram still renders a zero-count family.
func TestPromWriterSummary(t *testing.T) {
	h := NewHistogram()
	for i := int64(1); i <= 100; i++ {
		h.Observe(i)
	}
	w := NewPromWriter()
	w.Summary("lat_us", "latency", h)
	out := w.String()
	samples, err := ParsePromText(out)
	if err != nil {
		t.Fatalf("summary output does not parse: %v\n%s", err, out)
	}
	byKey := make(map[string]float64)
	for _, s := range samples {
		byKey[s.Key()] = s.Value
	}
	if got := byKey["lat_us_count"]; got != 100 {
		t.Errorf("count %v, want 100", got)
	}
	if got := byKey["lat_us_sum"]; got != 5050 {
		t.Errorf("sum %v, want 5050", got)
	}
	p50 := byKey[`lat_us{quantile="0.5"}`]
	p99 := byKey[`lat_us{quantile="0.99"}`]
	if p50 < 45 || p50 > 55 || p99 < 95 || p99 > 100 {
		t.Errorf("quantiles p50=%v p99=%v outside tolerance", p50, p99)
	}

	empty := NewPromWriter()
	empty.Summary("none_us", "", NewHistogram())
	es, err := ParsePromText(empty.String())
	if err != nil {
		t.Fatalf("empty summary does not parse: %v", err)
	}
	found := false
	for _, s := range es {
		if s.Name == "none_us_count" && s.Value == 0 {
			found = true
		}
	}
	if !found {
		t.Fatal("empty summary missing zero none_us_count")
	}
}

// TestParsePromTextRoundTrip: everything the writer can produce, the
// strict parser accepts and returns faithfully.
func TestParsePromTextRoundTrip(t *testing.T) {
	w := NewPromWriter()
	w.Counter("c_total", "counts", nil, 3)
	w.Gauge("g", "", map[string]string{"a": "x", "b": "esc\"\\\n"}, -1.5)
	samples, err := ParsePromText(w.String())
	if err != nil {
		t.Fatal(err)
	}
	if len(samples) != 2 {
		t.Fatalf("got %d samples, want 2", len(samples))
	}
	var g *PromSample
	for i := range samples {
		if samples[i].Name == "g" {
			g = &samples[i]
		}
	}
	if g == nil || g.Value != -1.5 || g.Labels["b"] != "esc\"\\\n" {
		t.Fatalf("gauge sample mangled: %+v", g)
	}
}

func TestParsePromTextAcceptsValidForms(t *testing.T) {
	in := strings.Join([]string{
		"# a free-form comment",
		"# TYPE up untyped",
		"up 1",
		"with_ts 4 1712345678",
		`inf_val{sign="plus"} +Inf`,
		`inf_val{sign="minus"} -Inf`,
		"nan_val NaN",
		"spaced   9.5",
		"", // blank line
	}, "\n")
	samples, err := ParsePromText(in)
	if err != nil {
		t.Fatal(err)
	}
	if len(samples) != 6 {
		t.Fatalf("got %d samples, want 6", len(samples))
	}
}

func TestParsePromTextRejectsMalformed(t *testing.T) {
	bad := map[string]string{
		"bad metric name":    `9leading 1`,
		"bad label name":     `m{9x="v"} 1`,
		"colon label name":   `m{a:b="v"} 1`,
		"unquoted value":     `m{a=v} 1`,
		"unterminated value": `m{a="v} 1`,
		"bad escape":         `m{a="\t"} 1`,
		"no value":           `m{a="v"}`,
		"garbage value":      `m not-a-number`,
		"bad timestamp":      `m 1 later`,
		"dup labels":         `m{a="1",a="2"} 1`,
		"dup sample":         "m 1\nm 2",
		"dup TYPE":           "# TYPE m counter\n# TYPE m gauge\nm 1",
		"unknown TYPE":       "# TYPE m sideways\nm 1",
		"short TYPE":         "# TYPE m",
		"short HELP":         "# HELP m",
		"bad comment":        "#nospace",
		"missing brace":      `m{a="v" 1`,
	}
	for name, in := range bad {
		if _, err := ParsePromText(in); err == nil {
			t.Errorf("%s: parser accepted %q", name, in)
		}
	}
}

func TestHistogramSum(t *testing.T) {
	h := NewHistogram()
	if h.Sum() != 0 {
		t.Fatal("fresh histogram has nonzero sum")
	}
	h.Observe(40)
	h.Observe(2)
	if got := h.Sum(); got != 42 {
		t.Fatalf("sum %d, want 42", got)
	}
	var nilH *Histogram
	if nilH.Sum() != 0 {
		t.Fatal("nil histogram Sum() != 0")
	}
}
