package trace

import (
	"fmt"
	"strings"
)

// StateTable renders a per-processor protocol-state occupancy table: one
// column per state name (headed e.g. "REC(s)" when unit is "s"), one row
// per processor, and a final "all" row with per-state totals. perProc is
// indexed [processor][state] and must be rectangular with len(states)
// columns. It is the text form of the engine's Occupancy counters, used by
// cmd/rapidsolve's report and test harnesses.
func StateTable(states []string, perProc [][]float64, unit string) string {
	heads := make([]string, len(states))
	for i, s := range states {
		heads[i] = s
		if unit != "" {
			heads[i] += "(" + unit + ")"
		}
	}
	width := 10
	for _, h := range heads {
		if len(h)+2 > width {
			width = len(h) + 2
		}
	}
	var b strings.Builder
	b.WriteString("proc")
	for _, h := range heads {
		fmt.Fprintf(&b, "%*s", width, h)
	}
	b.WriteByte('\n')
	totals := make([]float64, len(states))
	for p, row := range perProc {
		fmt.Fprintf(&b, "P%-3d", p)
		for i := range states {
			v := 0.0
			if i < len(row) {
				v = row[i]
			}
			totals[i] += v
			fmt.Fprintf(&b, "%*.4g", width, v)
		}
		b.WriteByte('\n')
	}
	b.WriteString("all ")
	for i := range states {
		fmt.Fprintf(&b, "%*.4g", width, totals[i])
	}
	b.WriteByte('\n')
	return b.String()
}
