package trace

import (
	"sync"
	"testing"
)

func TestMetricsBasic(t *testing.T) {
	m := NewMetrics()
	m.Inc("a", 1)
	m.Inc("a", 2)
	m.Inc("b", 5)
	if got := m.Get("a"); got != 3 {
		t.Errorf("a = %d, want 3", got)
	}
	if got := m.Get("missing"); got != 0 {
		t.Errorf("missing = %d, want 0", got)
	}
	snap := m.Snapshot()
	if snap["a"] != 3 || snap["b"] != 5 {
		t.Errorf("snapshot = %v", snap)
	}
	if s := m.String(); s != "a 3\nb 5\n" {
		t.Errorf("String() = %q", s)
	}
}

func TestMetricsNil(t *testing.T) {
	var m *Metrics
	m.Inc("a", 1) // must not panic
	if m.Get("a") != 0 || m.Snapshot() != nil {
		t.Error("nil metrics should be inert")
	}
}

func TestMetricsConcurrent(t *testing.T) {
	m := NewMetrics()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				m.Inc("n", 1)
			}
		}()
	}
	wg.Wait()
	if got := m.Get("n"); got != 8000 {
		t.Errorf("n = %d, want 8000", got)
	}
}
