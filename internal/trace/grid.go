package trace

import (
	"fmt"
	"strings"
)

// Grid renders an arbitrary header + rows table with left-aligned columns
// sized to their content. The last column is not padded, so free-text
// detail columns do not drag trailing spaces. Ragged rows are tolerated
// (missing cells render empty). It is the text form of the static
// verifier's findings report, used by cmd/rapidverify and cmd/rapidsolve;
// like StateTable it is deliberately independent of internal/verify.
func Grid(cols []string, rows [][]string) string {
	widths := make([]int, len(cols))
	for i, c := range cols {
		widths[i] = len(c)
	}
	for _, r := range rows {
		for i := 0; i < len(r) && i < len(widths); i++ {
			if len(r[i]) > widths[i] {
				widths[i] = len(r[i])
			}
		}
	}
	var b strings.Builder
	line := func(cells []string) {
		for i, w := range widths {
			v := ""
			if i < len(cells) {
				v = cells[i]
			}
			if i == len(widths)-1 {
				b.WriteString(v)
			} else {
				fmt.Fprintf(&b, "%-*s  ", w, v)
			}
		}
		b.WriteByte('\n')
	}
	line(cols)
	sep := make([]string, len(cols))
	for i, w := range widths {
		sep[i] = strings.Repeat("-", w)
	}
	line(sep)
	for _, r := range rows {
		line(r)
	}
	return b.String()
}
