package trace

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// Metrics is a thread-safe registry of named monotonic counters plus
// last-value gauges. It is the recorder's numeric sibling: where Recorder
// captures timed spans for Gantt rendering, Metrics captures event counts
// from long-running components (the plan cache's hits/misses/evictions,
// the daemon's admissions) and point-in-time states (the daemon's health
// state). A nil *Metrics is valid and discards everything, mirroring
// Recorder.Add.
type Metrics struct {
	mu sync.Mutex
	c  map[string]int64
	g  map[string]int64
}

// NewMetrics returns an empty counter registry.
func NewMetrics() *Metrics {
	return &Metrics{c: make(map[string]int64), g: make(map[string]int64)}
}

// Inc adds delta to the named counter, creating it at zero if absent.
func (m *Metrics) Inc(name string, delta int64) {
	if m == nil {
		return
	}
	m.mu.Lock()
	m.c[name] += delta
	m.mu.Unlock()
}

// Get returns the current value of the named counter (zero if absent).
func (m *Metrics) Get(name string) int64 {
	if m == nil {
		return 0
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.c[name]
}

// Set stores the current value of the named gauge. Unlike a counter a
// gauge moves both ways — it reports a state, not an accumulation.
func (m *Metrics) Set(name string, v int64) {
	if m == nil {
		return
	}
	m.mu.Lock()
	m.g[name] = v
	m.mu.Unlock()
}

// Gauge returns the last value Set for the named gauge (zero if absent).
func (m *Metrics) Gauge(name string) int64 {
	if m == nil {
		return 0
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.g[name]
}

// Gauges returns a copy of all gauges.
func (m *Metrics) Gauges() map[string]int64 {
	if m == nil {
		return nil
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make(map[string]int64, len(m.g))
	for k, v := range m.g {
		out[k] = v
	}
	return out
}

// Snapshot returns a copy of all counters.
func (m *Metrics) Snapshot() map[string]int64 {
	if m == nil {
		return nil
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make(map[string]int64, len(m.c))
	for k, v := range m.c {
		out[k] = v
	}
	return out
}

// String renders the counters one per line in name order.
func (m *Metrics) String() string {
	snap := m.Snapshot()
	names := make([]string, 0, len(snap))
	for k := range snap {
		names = append(names, k)
	}
	sort.Strings(names)
	var b strings.Builder
	for _, k := range names {
		fmt.Fprintf(&b, "%s %d\n", k, snap[k])
	}
	return b.String()
}
