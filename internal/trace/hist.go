package trace

import (
	"fmt"
	"math/bits"
	"strings"
	"sync"
)

// histSubBits is the number of linear sub-buckets per power-of-two range,
// as a bit count: 16 sub-buckets bound the relative quantile error at
// 1/16 ≈ 6%.
const histSubBits = 4

// Histogram is a thread-safe log-bucketed histogram of non-negative int64
// samples — request latencies in microseconds, queue depths, sizes. Values
// land in power-of-two ranges subdivided into 2^histSubBits linear
// sub-buckets (the HDR-histogram layout), so quantiles are accurate to a
// few percent across the full int64 range while the whole structure stays
// a flat array of counters: Observe is a couple of shifts and one add,
// cheap enough for the closed-loop load generator's hot path.
//
// A nil *Histogram is valid and discards everything, mirroring Metrics.
type Histogram struct {
	mu     sync.Mutex
	counts [64 << histSubBits]int64
	n      int64
	sum    int64
	min    int64
	max    int64
}

// NewHistogram returns an empty histogram.
func NewHistogram() *Histogram { return &Histogram{} }

// histBucket maps a value to its bucket index. Values below 2^histSubBits
// get exact buckets; larger values share a bucket with at most a
// 2^-histSubBits relative spread.
func histBucket(v int64) int {
	if v < 1<<histSubBits {
		return int(v)
	}
	exp := bits.Len64(uint64(v)) - 1 // position of the top bit, >= histSubBits
	sub := (v >> (exp - histSubBits)) & (1<<histSubBits - 1)
	return ((exp - histSubBits + 1) << histSubBits) + int(sub)
}

// histValue returns the inclusive upper edge of bucket b — quantiles
// report this edge, so they never understate a latency.
func histValue(b int) int64 {
	if b < 1<<histSubBits {
		return int64(b)
	}
	exp := b>>histSubBits + histSubBits - 1
	sub := int64(b&(1<<histSubBits-1)) | 1<<histSubBits
	return (sub+1)<<(exp-histSubBits) - 1
}

// Observe records one sample. Negative values are clamped to zero.
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	if v < 0 {
		v = 0
	}
	h.mu.Lock()
	h.counts[histBucket(v)]++
	if h.n == 0 || v < h.min {
		h.min = v
	}
	if v > h.max {
		h.max = v
	}
	h.n++
	h.sum += v
	h.mu.Unlock()
}

// Count returns the number of recorded samples.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.n
}

// Sum returns the running total of all recorded samples.
func (h *Histogram) Sum() int64 {
	if h == nil {
		return 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.sum
}

// Mean returns the arithmetic mean of the samples (0 when empty).
func (h *Histogram) Mean() float64 {
	if h == nil {
		return 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.n == 0 {
		return 0
	}
	return float64(h.sum) / float64(h.n)
}

// Min returns the smallest recorded sample (0 when empty).
func (h *Histogram) Min() int64 {
	if h == nil {
		return 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.min
}

// Max returns the largest recorded sample (0 when empty).
func (h *Histogram) Max() int64 {
	if h == nil {
		return 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.max
}

// Quantile returns the q-quantile (q in [0, 1]) as the upper edge of the
// bucket holding the q-th sample, clamped to the observed min/max so exact
// extremes stay exact. Returns 0 when empty.
func (h *Histogram) Quantile(q float64) int64 {
	if h == nil {
		return 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.n == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	// Rank of the target sample, 1-based ceiling so Quantile(0) is the
	// first sample and Quantile(1) the last.
	rank := int64(q*float64(h.n-1)) + 1
	var seen int64
	for b, c := range h.counts {
		seen += c
		if seen >= rank {
			v := histValue(b)
			if v < h.min {
				v = h.min
			}
			if v > h.max {
				v = h.max
			}
			return v
		}
	}
	return h.max
}

// Merge folds other's samples into h (min/max/sum/count included); other
// is unchanged. A nil other is a no-op.
func (h *Histogram) Merge(other *Histogram) {
	if h == nil || other == nil {
		return
	}
	other.mu.Lock()
	counts := other.counts
	n, sum, mn, mx := other.n, other.sum, other.min, other.max
	other.mu.Unlock()
	if n == 0 {
		return
	}
	h.mu.Lock()
	for b := range counts {
		h.counts[b] += counts[b]
	}
	if h.n == 0 || mn < h.min {
		h.min = mn
	}
	if mx > h.max {
		h.max = mx
	}
	h.n += n
	h.sum += sum
	h.mu.Unlock()
}

// Summary renders count/mean/min/p50/p90/p99/max on one line, dividing
// samples by scale (e.g. 1000 for µs→ms) and suffixing unit.
func (h *Histogram) Summary(scale float64, unit string) string {
	if scale <= 0 {
		scale = 1
	}
	f := func(v int64) string { return fmt.Sprintf("%.2f%s", float64(v)/scale, unit) }
	var b strings.Builder
	fmt.Fprintf(&b, "n=%d mean=%.2f%s min=%s p50=%s p90=%s p99=%s max=%s",
		h.Count(), h.Mean()/scale, unit, f(h.Min()),
		f(h.Quantile(0.50)), f(h.Quantile(0.90)), f(h.Quantile(0.99)), f(h.Max()))
	return b.String()
}
