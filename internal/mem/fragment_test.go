package mem

import (
	"testing"

	"repro/internal/graph"
	"repro/internal/sched"
	"repro/internal/util"
)

// fragSchedule hand-builds a schedule whose MAP trace must fragment on P1.
// Volatile copies are allocated in first-use order A(10), B(10), C(10),
// E(16); A and C die before D(20) is needed while B and E stay alive, so
// the arena holds two separated 10-unit holes plus a 15-unit tail — no
// contiguous 20 even though the counting allocator sees 36 free units.
func fragSchedule(t *testing.T) *sched.Schedule {
	t.Helper()
	b := graph.NewBuilder()
	// Producer objects on P0 (read remotely by P1 -> volatiles there).
	oa := b.Object("A", 10)
	ob := b.Object("B", 10)
	oc := b.Object("C", 10)
	od := b.Object("D", 20)
	oe := b.Object("E", 16)
	// P1's permanent outputs.
	r1 := b.Object("r1", 1)
	r2 := b.Object("r2", 1)
	r3 := b.Object("r3", 1)
	r4 := b.Object("r4", 1)
	r5 := b.Object("r5", 1)

	b.Task("pA", 1, nil, []graph.ObjID{oa})
	b.Task("pB", 1, nil, []graph.ObjID{ob})
	b.Task("pC", 1, nil, []graph.ObjID{oc})
	b.Task("pD", 1, nil, []graph.ObjID{od})
	b.Task("pE", 1, nil, []graph.ObjID{oe})
	b.Task("useA", 1, []graph.ObjID{oa}, []graph.ObjID{r1})
	b.Task("useB1", 1, []graph.ObjID{ob}, []graph.ObjID{r3})
	b.Task("useC", 1, []graph.ObjID{oc}, []graph.ObjID{r2})
	b.Task("useE1", 1, []graph.ObjID{oe}, []graph.ObjID{r5})
	b.Task("useD", 1, []graph.ObjID{od}, []graph.ObjID{r4})
	b.Task("useFinal", 1, []graph.ObjID{ob, oe, r4}, []graph.ObjID{r4})
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	for _, o := range []graph.ObjID{oa, ob, oc, od, oe} {
		g.Objects[o].Owner = 0
	}
	for _, o := range []graph.ObjID{r1, r2, r3, r4, r5} {
		g.Objects[o].Owner = 1
	}
	s := &sched.Schedule{
		G: g, P: 2,
		Assign: []graph.Proc{0, 0, 0, 0, 0, 1, 1, 1, 1, 1, 1},
		Order: [][]graph.TaskID{
			{0, 1, 2, 3, 4},
			{5, 6, 7, 8, 9, 10}, // useA, useB1, useC, useE1, useD, useFinal
		},
	}
	if err := fillPositions(s); err != nil {
		t.Fatal(err)
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	return s
}

// fillPositions mirrors Schedule.finalize for hand-built schedules.
func fillPositions(s *sched.Schedule) error {
	s.Pos = make([]int32, s.G.NumTasks())
	for p := range s.Order {
		for i, t := range s.Order[p] {
			s.Pos[t] = int32(i)
		}
	}
	return nil
}

func TestArenaReplayDetectsFragmentation(t *testing.T) {
	s := fragSchedule(t)
	// Capacity 66 covers P0's permanent producers (A+B+C+D+E). On P1
	// (perm 5), the first MAP greedily lays out A@5, B@15, C@25, E@35..51
	// (D does not fit: 51+20 > 66); the second MAP frees A and C — two
	// separated 10-unit holes plus the 15-unit tail — and the counting
	// allocator accepts D (31 in use, 35 free) while no contiguous 20
	// exists.
	capacity := int64(66)
	pl, err := NewPlan(s, capacity)
	if err != nil {
		t.Fatal(err)
	}
	if !pl.Executable {
		t.Fatalf("counting plan must be executable at %d (MinMem %d)", capacity, s.MinMem())
	}
	rep := ArenaReplay(pl)
	if rep.OK {
		t.Fatalf("arena replay should fragment")
	}
	if rep.FailProc != 1 {
		t.Fatalf("failure on proc %d, want 1", rep.FailProc)
	}
	// With headroom the replay succeeds.
	pl2, err := NewPlan(s, capacity+20)
	if err != nil {
		t.Fatal(err)
	}
	rep2 := ArenaReplay(pl2)
	if !rep2.OK {
		t.Fatalf("replay with headroom failed at obj %d", rep2.FailObj)
	}
	// Floors reports the premium.
	counting, address, err := Floors(s, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if address <= counting {
		t.Fatalf("no fragmentation premium: counting %d address %d", counting, address)
	}
}

func TestFloorsAgreeOnUniformSizes(t *testing.T) {
	// Uniform object sizes cannot fragment at MAP granularity: the floors
	// must coincide (the empirical finding of the extension experiment).
	rng := util.NewRNG(3131)
	b := graph.NewBuilder()
	var objs []graph.ObjID
	for i := 0; i < 12; i++ {
		objs = append(objs, b.Object(string(rune('A'+i)), 10))
	}
	written := []graph.ObjID{}
	for t2 := 0; t2 < 40; t2++ {
		var reads []graph.ObjID
		for r := 0; r < rng.Intn(3); r++ {
			if len(written) > 0 {
				reads = append(reads, written[rng.Intn(len(written))])
			}
		}
		w := objs[rng.Intn(len(objs))]
		b.Task(string(rune('a'+t2%26))+string(rune('0'+t2/26)), 1, reads, []graph.ObjID{w})
		written = append(written, w)
	}
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	sched.CyclicOwners(g, 3)
	assign, err := sched.OwnerComputeAssign(g, 3)
	if err != nil {
		t.Fatal(err)
	}
	s, err := sched.ScheduleMPO(g, assign, 3, sched.Unit())
	if err != nil {
		t.Fatal(err)
	}
	counting, address, err := Floors(s, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if counting != address {
		t.Fatalf("uniform sizes fragmented: counting %d address %d", counting, address)
	}
}
