// Package mem implements the active memory management planning of Section
// 3: given a static schedule and a per-processor memory capacity, it
// computes where the Memory Allocation Points (MAPs) fall, which volatile
// objects each MAP deallocates (dead-point information from a static
// liveness analysis of the schedule) and allocates (greedy allocate-ahead
// until the next task's objects no longer fit), and the address packages
// each MAP must send to the processors that will deposit data into the
// newly allocated space via remote memory access.
//
// The plan is deterministic: in the paper MAPs are "inserted dynamically
// based on memory space availability", but for a fixed schedule and
// capacity the dynamic insertion always lands at the same positions, so
// both the discrete-event simulator and the concurrent executor share this
// planner.
package mem

import (
	"fmt"
	"sort"

	"repro/internal/graph"
	"repro/internal/sched"
)

// MAP is one memory allocation point on a processor. It executes
// immediately before the task at position Pos of the processor's order
// (Pos == 0 is the mandatory MAP at the beginning of the schedule).
type MAP struct {
	Pos int32
	// Frees are the volatile objects dead at this point (last use < Pos).
	Frees []graph.ObjID
	// Allocs are the volatile objects allocated here, covering tasks
	// Pos..CoverEnd-1.
	Allocs []graph.ObjID
	// CoverEnd is the position of the first task NOT covered by this MAP
	// (i.e. the next MAP's position, or the order length for the last MAP).
	CoverEnd int32
	// Notify maps a destination processor to the objects among Allocs whose
	// addresses that processor needs (because it executes producer tasks
	// that will RMA-deposit those objects here).
	Notify map[graph.Proc][]graph.ObjID
}

// ProcPlan is the MAP plan of one processor.
type ProcPlan struct {
	MAPs []MAP
	// Peak is the highest memory-in-use (permanent + allocated volatile)
	// reached while following the plan.
	Peak int64
	// Executable is false if some allocation could not be satisfied even
	// right before its first using task.
	Executable bool
	// FailPos is the order position whose allocation failed (valid only if
	// !Executable).
	FailPos int32
}

// Plan is the full machine-wide MAP plan.
type Plan struct {
	Schedule *sched.Schedule
	Capacity int64
	Procs    []ProcPlan
	// Executable is the conjunction over processors.
	Executable bool
}

// AvgMAPs returns the average number of MAPs per processor (the paper's
// "#MAPs" columns). Processors with empty schedules still count their
// mandatory initial MAP.
func (pl *Plan) AvgMAPs() float64 {
	total := 0
	for i := range pl.Procs {
		total += len(pl.Procs[i].MAPs)
	}
	return float64(total) / float64(len(pl.Procs))
}

// TotalMAPs returns the machine-wide MAP count.
func (pl *Plan) TotalMAPs() int {
	total := 0
	for i := range pl.Procs {
		total += len(pl.Procs[i].MAPs)
	}
	return total
}

// MaxPeak returns the maximum per-processor peak memory of the plan.
func (pl *Plan) MaxPeak() int64 {
	var peak int64
	for i := range pl.Procs {
		if pl.Procs[i].Peak > peak {
			peak = pl.Procs[i].Peak
		}
	}
	return peak
}

// remoteProducers returns, for processor p, a map from volatile object to
// the set of processors that execute producer tasks whose output is
// RMA-deposited into p's copy of the object.
func remoteProducers(s *sched.Schedule, p graph.Proc) map[graph.ObjID]map[graph.Proc]bool {
	res := make(map[graph.ObjID]map[graph.Proc]bool)
	for _, t := range s.Order[p] {
		for _, e := range s.G.In(t) {
			if e.Kind != graph.DepTrue {
				continue
			}
			q := s.Assign[e.From]
			if q == p {
				continue
			}
			if s.G.Objects[e.Obj].Owner == p {
				// The object is permanent here; its address is known from
				// the start (permanent addresses are exchanged once during
				// preprocessing, as in the original RAPID).
				continue
			}
			m, ok := res[e.Obj]
			if !ok {
				m = make(map[graph.Proc]bool)
				res[e.Obj] = m
			}
			m[q] = true
		}
	}
	return res
}

// Options tune the planner (ablation studies).
type Options struct {
	// JustInTime disables the paper's greedy allocate-ahead: each MAP
	// allocates only the volatile objects of its own task, deferring later
	// allocations to later MAPs. This lowers the space held for
	// not-yet-needed objects (tighter budgets become executable) at the
	// price of more MAPs and later address notification (less data
	// presending).
	JustInTime bool
}

// NewPlan computes the MAP plan for the schedule under the given
// per-processor capacity (in the same units as object sizes), with the
// paper's greedy allocate-ahead policy.
func NewPlan(s *sched.Schedule, capacity int64) (*Plan, error) {
	return NewPlanOpts(s, capacity, Options{})
}

// NewPlanOpts is NewPlan with planner options.
func NewPlanOpts(s *sched.Schedule, capacity int64, opt Options) (*Plan, error) {
	if err := validateOwnerCompute(s); err != nil {
		return nil, err
	}
	perm := s.PermSize()
	lifetimes := s.VolatileLifetimes()
	pl := &Plan{Schedule: s, Capacity: capacity, Procs: make([]ProcPlan, s.P), Executable: true}

	for p := 0; p < s.P; p++ {
		pp := &pl.Procs[p]
		pp.Executable = true
		order := s.Order[p]
		lt := lifetimes[p]
		producers := remoteProducers(s, graph.Proc(p))

		if perm[p] > capacity {
			pp.Executable = false
			pp.FailPos = 0
			pl.Executable = false
			pp.Peak = perm[p]
			continue
		}

		// lastUse sorted by position for dead-point scanning.
		type life struct {
			obj         graph.ObjID
			first, last int32
		}
		lives := make([]life, 0, len(lt))
		for o, r := range lt { //det:ok collected then sorted below
			lives = append(lives, life{o, r[0], r[1]})
		}
		// The lifetime table is a map; order the scan by (first use, object)
		// so the Frees/Allocs lists of every MAP come out in one canonical
		// order. Plan serialization content-addresses compiled artifacts, so
		// equal inputs must produce byte-identical plans.
		sort.Slice(lives, func(i, j int) bool {
			if lives[i].first != lives[j].first {
				return lives[i].first < lives[j].first
			}
			return lives[i].obj < lives[j].obj
		})
		// volatile objects needed (first) by each task position.
		needAt := make([][]graph.ObjID, len(order)+1)
		for _, l := range lives {
			needAt[l.first] = append(needAt[l.first], l.obj)
		}

		inUse := perm[p]
		peak := perm[p]
		allocated := make(map[graph.ObjID]bool, len(lives))
		freed := make(map[graph.ObjID]bool, len(lives))

		pos := int32(0)
		for {
			m := MAP{Pos: pos, Notify: make(map[graph.Proc][]graph.ObjID)}
			// Deallocate dead volatiles: allocated, not yet freed, last use
			// before pos.
			for _, l := range lives {
				if allocated[l.obj] && !freed[l.obj] && l.last < pos {
					freed[l.obj] = true
					inUse -= s.G.Objects[l.obj].Size
					m.Frees = append(m.Frees, l.obj)
				}
			}
			// Allocate ahead following the execution chain.
			k := pos
			for int(k) < len(order) {
				var need int64
				for _, o := range needAt[k] {
					if !allocated[o] {
						need += s.G.Objects[o].Size
					}
				}
				if opt.JustInTime && k > pos && need > 0 {
					break // defer the next allocation to its own MAP
				}
				if inUse+need > capacity {
					break
				}
				for _, o := range needAt[k] {
					if allocated[o] {
						continue
					}
					allocated[o] = true
					inUse += s.G.Objects[o].Size
					m.Allocs = append(m.Allocs, o)
					for q := range producers[o] { //det:ok one append per distinct q; per-q list order set by the o loop
						m.Notify[q] = append(m.Notify[q], o)
					}
				}
				k++
			}
			if inUse > peak {
				peak = inUse
			}
			if k == pos && int(pos) < len(order) {
				// Even the immediately next task cannot be satisfied: the
				// schedule is non-executable under this capacity.
				pp.Executable = false
				pp.FailPos = pos
				pl.Executable = false
				m.CoverEnd = pos
				pp.MAPs = append(pp.MAPs, m)
				break
			}
			m.CoverEnd = k
			pp.MAPs = append(pp.MAPs, m)
			if int(k) >= len(order) {
				break
			}
			pos = k
		}
		pp.Peak = peak
	}
	return pl, nil
}

// validateOwnerCompute checks the precondition of the active memory
// management scheme: every task writes only objects owned by its processor,
// so volatile objects are read-only remote copies deposited by RMA.
func validateOwnerCompute(s *sched.Schedule) error {
	for t := 0; t < s.G.NumTasks(); t++ {
		for _, o := range s.G.Tasks[t].Writes {
			if s.G.Objects[o].Owner != s.Assign[t] {
				return fmt.Errorf("mem: task %q on processor %d writes object %q owned by %d (owner-compute violated)",
					s.G.Tasks[t].Name, s.Assign[t], s.G.Objects[o].Name, s.G.Objects[o].Owner)
			}
		}
	}
	return nil
}
