package mem

import (
	"testing"

	"repro/internal/graph"
	"repro/internal/sched"
	"repro/internal/util"
)

func figure2Schedule(t *testing.T, h sched.Heuristic) *sched.Schedule {
	t.Helper()
	g := sched.Figure2DAG()
	assign, err := sched.OwnerComputeAssign(g, 2)
	if err != nil {
		t.Fatal(err)
	}
	s, err := sched.ScheduleWith(h, g, assign, 2, sched.Unit(), 1<<30)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestFullCapacitySingleMAP(t *testing.T) {
	s := figure2Schedule(t, sched.RCP)
	pl, err := NewPlan(s, s.TOT())
	if err != nil {
		t.Fatal(err)
	}
	if !pl.Executable {
		t.Fatalf("full capacity must be executable")
	}
	for p := range pl.Procs {
		if len(pl.Procs[p].MAPs) != 1 {
			t.Fatalf("proc %d has %d MAPs at full capacity", p, len(pl.Procs[p].MAPs))
		}
		if pl.Procs[p].MAPs[0].Pos != 0 {
			t.Fatalf("first MAP not at position 0")
		}
	}
	if pl.AvgMAPs() != 1 {
		t.Fatalf("AvgMAPs = %v", pl.AvgMAPs())
	}
}

func TestReducedCapacityInsertsMAPs(t *testing.T) {
	s := figure2Schedule(t, sched.MPO)
	// MPO needs 7 units on P1; TOT is larger. Capacity 7 forces recycling.
	pl, err := NewPlan(s, 7)
	if err != nil {
		t.Fatal(err)
	}
	if !pl.Executable {
		t.Fatalf("capacity == MinMem should be executable for this schedule (MinMem=%d)", s.MinMem())
	}
	if pl.TotalMAPs() <= 2 {
		t.Fatalf("expected extra MAPs beyond the initial ones, got %d", pl.TotalMAPs())
	}
	if pl.MaxPeak() > 7 {
		t.Fatalf("peak %d exceeds capacity", pl.MaxPeak())
	}
}

func TestNonExecutableDetection(t *testing.T) {
	s := figure2Schedule(t, sched.RCP)
	// Below permanent space: trivially non-executable.
	perm := s.PermSize()
	var maxPerm int64
	for _, v := range perm {
		if v > maxPerm {
			maxPerm = v
		}
	}
	pl, err := NewPlan(s, maxPerm-1)
	if err != nil {
		t.Fatal(err)
	}
	if pl.Executable {
		t.Fatalf("capacity below permanent space must be non-executable")
	}
	// Between perm and MinMem: RCP on the Figure-2 graph needs 9; at 8 the
	// RCP schedule must fail while the MPO schedule (MinMem 7) succeeds.
	pl8, err := NewPlan(s, 8)
	if err != nil {
		t.Fatal(err)
	}
	if pl8.Executable {
		t.Fatalf("RCP schedule should be non-executable at capacity 8 (MinMem=%d)", s.MinMem())
	}
	mpo := figure2Schedule(t, sched.MPO)
	plm, err := NewPlan(mpo, 8)
	if err != nil {
		t.Fatal(err)
	}
	if !plm.Executable {
		t.Fatalf("MPO schedule should be executable at capacity 8 (MinMem=%d)", mpo.MinMem())
	}
}

// replayPlan re-executes the plan bookkeeping and checks every invariant.
func replayPlan(t *testing.T, pl *Plan) {
	t.Helper()
	s := pl.Schedule
	perm := s.PermSize()
	lifetimes := s.VolatileLifetimes()
	for p := 0; p < s.P; p++ {
		pp := &pl.Procs[p]
		if !pp.Executable {
			continue
		}
		lt := lifetimes[p]
		inUse := perm[p]
		allocatedAt := make(map[graph.ObjID]int32)
		freed := make(map[graph.ObjID]bool)
		if len(pp.MAPs) == 0 || pp.MAPs[0].Pos != 0 {
			t.Fatalf("proc %d: first MAP missing or not at 0", p)
		}
		prevEnd := int32(0)
		for mi, m := range pp.MAPs {
			if mi > 0 && m.Pos != prevEnd {
				t.Fatalf("proc %d: MAP %d at %d, expected %d", p, mi, m.Pos, prevEnd)
			}
			prevEnd = m.CoverEnd
			for _, o := range m.Frees {
				r, ok := lt[o]
				if !ok {
					t.Fatalf("proc %d frees non-volatile %d", p, o)
				}
				if r[1] >= m.Pos {
					t.Fatalf("proc %d frees %d at pos %d but last use is %d", p, o, m.Pos, r[1])
				}
				if _, ok := allocatedAt[o]; !ok || freed[o] {
					t.Fatalf("proc %d frees %d which is not live", p, o)
				}
				freed[o] = true
				inUse -= s.G.Objects[o].Size
			}
			for _, o := range m.Allocs {
				if _, dup := allocatedAt[o]; dup {
					t.Fatalf("proc %d allocates %d twice (name-based criterion violated)", p, o)
				}
				allocatedAt[o] = m.Pos
				inUse += s.G.Objects[o].Size
			}
			if inUse > pl.Capacity {
				t.Fatalf("proc %d exceeds capacity after MAP %d: %d > %d", p, mi, inUse, pl.Capacity)
			}
		}
		if prevEnd != int32(len(s.Order[p])) {
			t.Fatalf("proc %d: MAPs cover %d of %d tasks", p, prevEnd, len(s.Order[p]))
		}
		// Every volatile object must be allocated at or before its first use.
		for o, r := range lt {
			at, ok := allocatedAt[o]
			if !ok {
				t.Fatalf("proc %d: volatile %d never allocated", p, o)
			}
			if at > r[0] {
				t.Fatalf("proc %d: volatile %d allocated at %d, first use %d", p, o, at, r[0])
			}
		}
	}
}

func TestPlanInvariantsOnRandomDAGs(t *testing.T) {
	rng := util.NewRNG(21)
	for trial := 0; trial < 40; trial++ {
		p := 2 + rng.Intn(4)
		g := randomOwnerComputeDAG(rng, 20+rng.Intn(50), 6+rng.Intn(12), p)
		assign, err := sched.OwnerComputeAssign(g, p)
		if err != nil {
			t.Fatal(err)
		}
		h := []sched.Heuristic{sched.RCP, sched.MPO, sched.DTS}[trial%3]
		s, err := sched.ScheduleWith(h, g, assign, p, sched.Unit(), 1<<30)
		if err != nil {
			t.Fatal(err)
		}
		tot := s.TOT()
		minm := s.MinMem()
		for _, cap := range []int64{tot, (tot + minm) / 2, minm} {
			pl, err := NewPlan(s, cap)
			if err != nil {
				t.Fatal(err)
			}
			replayPlan(t, pl)
			if cap >= tot && pl.TotalMAPs() != p {
				t.Fatalf("trial %d: full capacity should give exactly one MAP per proc", trial)
			}
			if pl.Executable && pl.MaxPeak() > cap {
				t.Fatalf("trial %d: peak exceeds capacity", trial)
			}
			if cap == tot && !pl.Executable {
				t.Fatalf("trial %d: TOT capacity must be executable", trial)
			}
		}
	}
}

func TestMAPCountGrowsAsMemoryShrinks(t *testing.T) {
	s := figure2Schedule(t, sched.DTS)
	prev := -1
	for _, cap := range []int64{s.TOT(), 8, 7} {
		pl, err := NewPlan(s, cap)
		if err != nil {
			t.Fatal(err)
		}
		if !pl.Executable {
			t.Fatalf("capacity %d unexpectedly non-executable (MinMem=%d)", cap, s.MinMem())
		}
		if prev >= 0 && pl.TotalMAPs() < prev {
			t.Fatalf("MAP count decreased as memory shrank")
		}
		prev = pl.TotalMAPs()
	}
}

func TestNotifyTargetsAreProducers(t *testing.T) {
	s := figure2Schedule(t, sched.RCP)
	pl, err := NewPlan(s, s.TOT())
	if err != nil {
		t.Fatal(err)
	}
	for p := range pl.Procs {
		for _, m := range pl.Procs[p].MAPs {
			for dst, objs := range m.Notify {
				if dst == graph.Proc(p) {
					t.Fatalf("proc %d notifies itself", p)
				}
				for _, o := range objs {
					// dst must own a producer task of o feeding proc p.
					found := false
					for _, task := range s.Order[p] {
						for _, e := range s.G.In(task) {
							if e.Kind == graph.DepTrue && e.Obj == o && s.Assign[e.From] == dst {
								found = true
							}
						}
					}
					if !found {
						t.Fatalf("notify %d->%d for object %d has no producer", p, dst, o)
					}
				}
			}
		}
	}
}

func TestOwnerComputeViolationRejected(t *testing.T) {
	b := graph.NewBuilder()
	x := b.Object("x", 1)
	b.Task("w", 1, nil, []graph.ObjID{x})
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	g.Objects[x].Owner = 1
	s := &sched.Schedule{
		G: g, P: 2,
		Assign: []graph.Proc{0},
		Order:  [][]graph.TaskID{{0}, {}},
	}
	if _, err := NewPlan(s, 100); err == nil {
		t.Fatalf("expected owner-compute violation error")
	}
}

// randomOwnerComputeDAG mirrors the sched test helper (duplicated to avoid
// exporting test-only code).
func randomOwnerComputeDAG(rng *util.RNG, nTasks, nObjs, p int) *graph.DAG {
	b := graph.NewBuilder()
	objs := make([]graph.ObjID, nObjs)
	for i := 0; i < nObjs; i++ {
		objs[i] = b.Object(string(rune('A'+i%26))+string(rune('0'+i/26)), int64(1+rng.Intn(4)))
	}
	written := []graph.ObjID{}
	for t := 0; t < nTasks; t++ {
		var reads []graph.ObjID
		for r := 0; r < rng.Intn(3); r++ {
			if len(written) > 0 {
				reads = append(reads, written[rng.Intn(len(written))])
			}
		}
		wobj := objs[rng.Intn(nObjs)]
		b.Task(string(rune('a'+t%26))+string(rune('0'+t/26)), float64(1+rng.Intn(5)), reads, []graph.ObjID{wobj})
		written = append(written, wobj)
	}
	g, err := b.Build()
	if err != nil {
		panic(err)
	}
	sched.CyclicOwners(g, p)
	return g
}
