package mem

import (
	"repro/internal/graph"
	"repro/internal/rma"
	"repro/internal/sched"
)

// ArenaReplay replays a plan's allocation/deallocation trace against
// address-based first-fit arenas (rma.Arena) instead of the counting
// allocator the plan was validated with. It reports whether every
// allocation found a contiguous block, and the worst external
// fragmentation observed (free units unusable for the failing or largest
// request). The paper's MIN_MEM arithmetic assumes compactable space; this
// measures how far a real allocator — the "special memory allocator" the
// conclusion calls for — is from that assumption.
type ArenaReplayResult struct {
	OK bool
	// FailProc/FailObj identify the first allocation that found no
	// contiguous block (valid when !OK).
	FailProc graph.Proc
	FailObj  graph.ObjID
	// MaxFreeBlocks is the largest number of free-list fragments seen.
	MaxFreeBlocks int
}

// ArenaReplay runs the replay for every processor of the plan.
func ArenaReplay(pl *Plan) ArenaReplayResult {
	res := ArenaReplayResult{OK: true}
	s := pl.Schedule
	for p := 0; p < s.P; p++ {
		if !pl.Procs[p].Executable {
			return ArenaReplayResult{OK: false, FailProc: graph.Proc(p), FailObj: -1}
		}
		a := rma.NewArena(pl.Capacity)
		addrOf := make(map[graph.ObjID]int64)
		// Permanent objects first, as the executor allocates them.
		for oi := range s.G.Objects {
			o := &s.G.Objects[oi]
			if o.Owner != graph.Proc(p) {
				continue
			}
			addr, ok := a.Alloc(o.Size)
			if !ok {
				return ArenaReplayResult{OK: false, FailProc: graph.Proc(p), FailObj: graph.ObjID(oi), MaxFreeBlocks: res.MaxFreeBlocks}
			}
			addrOf[graph.ObjID(oi)] = addr
		}
		for _, m := range pl.Procs[p].MAPs {
			for _, o := range m.Frees {
				a.Free(addrOf[o])
				delete(addrOf, o)
			}
			for _, o := range m.Allocs {
				addr, ok := a.Alloc(s.G.Objects[o].Size)
				if !ok {
					return ArenaReplayResult{OK: false, FailProc: graph.Proc(p), FailObj: o, MaxFreeBlocks: res.MaxFreeBlocks}
				}
				addrOf[o] = addr
			}
			if fb := a.FreeBlocks(); fb > res.MaxFreeBlocks {
				res.MaxFreeBlocks = fb
			}
		}
	}
	return res
}

// Floors computes the tightest executable capacity of a schedule under the
// counting allocator (the paper's model) and under address-based
// allocation (counting-feasible plan whose arena replay also succeeds).
// The gap is the fragmentation premium. Both are found by binary search
// between 1 and TOT.
func Floors(s *sched.Schedule, opt Options) (counting, address int64, err error) {
	tot := s.TOT()
	search := func(pred func(capacity int64) (bool, error)) (int64, error) {
		lo, hi := int64(1), tot
		for lo < hi {
			mid := (lo + hi) / 2
			ok, err := pred(mid)
			if err != nil {
				return 0, err
			}
			if ok {
				hi = mid
			} else {
				lo = mid + 1
			}
		}
		return lo, nil
	}
	counting, err = search(func(capacity int64) (bool, error) {
		pl, err := NewPlanOpts(s, capacity, opt)
		if err != nil {
			return false, err
		}
		return pl.Executable, nil
	})
	if err != nil {
		return 0, 0, err
	}
	address, err = search(func(capacity int64) (bool, error) {
		pl, err := NewPlanOpts(s, capacity, opt)
		if err != nil {
			return false, err
		}
		if !pl.Executable {
			return false, nil
		}
		return ArenaReplay(pl).OK, nil
	})
	if err != nil {
		return 0, 0, err
	}
	return counting, address, nil
}
