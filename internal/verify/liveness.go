package verify

import (
	"fmt"

	"repro/internal/graph"
)

// structural is the pre-pass that makes the deeper analyses safe: it checks
// every index the later passes dereference and recomputes task positions
// from the orders. It returns false when the plan is too malformed to
// analyze further.
func (c *checker) structural() bool {
	s, mp := c.s, c.mp
	fatal := func(detail string) bool {
		c.res.add(Finding{Class: ClassStructure, Proc: graph.None, Pos: graph.None,
			Task: graph.None, Obj: graph.None, Detail: detail})
		return false
	}
	if s == nil || mp == nil {
		return fatal("nil schedule or memory plan")
	}
	if s.G == nil {
		return fatal("schedule has no task graph")
	}
	n := s.G.NumTasks()
	m := int32(s.G.NumObjects())
	if s.P < 1 {
		return fatal(fmt.Sprintf("schedule has %d processors", s.P))
	}
	if len(s.Order) != s.P {
		return fatal(fmt.Sprintf("schedule has %d orders for %d processors", len(s.Order), s.P))
	}
	if len(mp.Procs) != s.P {
		return fatal(fmt.Sprintf("memory plan has %d processors, schedule %d", len(mp.Procs), s.P))
	}
	if len(s.Assign) != n {
		return fatal(fmt.Sprintf("%d assignments for %d tasks", len(s.Assign), n))
	}
	for t := 0; t < n; t++ {
		if q := s.Assign[t]; q < 0 || int(q) >= s.P {
			return fatal(fmt.Sprintf("task %d assigned to out-of-range processor %d", t, q))
		}
		task := &s.G.Tasks[t]
		for _, lists := range [2][]graph.ObjID{task.Reads, task.Writes} {
			for _, o := range lists {
				if o < 0 || o >= m {
					return fatal(fmt.Sprintf("task %d references out-of-range object %d", t, o))
				}
			}
		}
	}
	// Recompute positions from the orders; every task must appear exactly
	// once on its assigned processor.
	c.pos = make([]int32, n)
	for i := range c.pos {
		c.pos[i] = -1
	}
	count := 0
	for p := 0; p < s.P; p++ {
		for i, t := range s.Order[p] {
			if t < 0 || int(t) >= n {
				return fatal(fmt.Sprintf("order of processor %d lists out-of-range task %d", p, t))
			}
			if s.Assign[t] != graph.Proc(p) {
				return fatal(fmt.Sprintf("task %d ordered on processor %d but assigned to %d", t, p, s.Assign[t]))
			}
			if c.pos[t] != -1 {
				return fatal(fmt.Sprintf("task %d ordered twice", t))
			}
			c.pos[t] = int32(i)
			count++
		}
	}
	if count != n {
		return fatal(fmt.Sprintf("%d of %d tasks ordered", count, n))
	}
	c.res.Checks += 4 + n
	// The stored Pos array must agree with the orders (the executors index
	// by it); disagreement is survivable for analysis but reported.
	if len(s.Pos) != n {
		c.res.add(Finding{Class: ClassStructure, Proc: graph.None, Pos: graph.None,
			Task: graph.None, Obj: graph.None,
			Detail: fmt.Sprintf("stored position array has %d entries for %d tasks", len(s.Pos), n)})
	} else {
		for t := 0; t < n; t++ {
			if s.Pos[t] != c.pos[t] {
				c.res.add(Finding{Class: ClassStructure, Proc: s.Assign[t], Pos: c.pos[t],
					Task: graph.TaskID(t), Obj: graph.None,
					Detail: fmt.Sprintf("stored position %d disagrees with order position %d", s.Pos[t], c.pos[t])})
				break
			}
		}
	}
	// MAP tables: positions in range and strictly increasing, object
	// references in range.
	for p := range mp.Procs {
		maps := mp.Procs[p].MAPs
		prev := int32(-1)
		for mi := range maps {
			mapp := &maps[mi]
			if mapp.Pos < 0 || int(mapp.Pos) > len(s.Order[p]) {
				return fatal(fmt.Sprintf("processor %d MAP %d at out-of-range position %d", p, mi, mapp.Pos))
			}
			if mapp.Pos <= prev {
				c.res.add(Finding{Class: ClassStructure, Proc: graph.Proc(p), Pos: mapp.Pos,
					Task: graph.None, Obj: graph.None,
					Detail: fmt.Sprintf("MAP positions not strictly increasing (%d after %d)", mapp.Pos, prev)})
			}
			prev = mapp.Pos
			for _, lists := range [2][]graph.ObjID{mapp.Frees, mapp.Allocs} {
				for _, o := range lists {
					if o < 0 || o >= m {
						return fatal(fmt.Sprintf("processor %d MAP at %d references out-of-range object %d", p, mapp.Pos, o))
					}
				}
			}
			for q := range mapp.Notify {
				if q < 0 || int(q) >= s.P {
					return fatal(fmt.Sprintf("processor %d MAP at %d notifies out-of-range processor %d", p, mapp.Pos, q))
				}
			}
		}
		c.res.Checks += len(maps)
	}
	return true
}

// objState tracks one volatile object through the liveness replay.
type objState uint8

const (
	objUnallocated objState = iota
	objAllocated
	objFreed
)

// liveness replays each processor's MAP sequence against its task order:
// the dataflow pass proving allocate-before-first-use and free-after-last-
// use, plus the symbolic allocator replay that computes exact peaks and
// checks them against the declared peaks and the capacity.
func (c *checker) liveness() {
	s, mp := c.s, c.mp
	perm := s.PermSize()
	c.res.Peaks = make([]int64, s.P)

	for p := 0; p < s.P; p++ {
		pp := &mp.Procs[p]
		order := s.Order[p]
		lt := c.lifetimes[p]
		producers := c.remoteProducers(graph.Proc(p))
		if !pp.Executable {
			// The planner stops at the failing position; the tail of the
			// order legitimately has no allocations to verify.
			c.res.Peaks[p] = pp.Peak
			continue
		}
		if len(order) > 0 && (len(pp.MAPs) == 0 || pp.MAPs[0].Pos != 0) {
			c.report(Finding{Class: ClassStructure, Proc: graph.Proc(p), Pos: 0,
				Task: graph.None, Obj: graph.None,
				Detail: "missing mandatory initial MAP at position 0"})
		}
		state := make(map[graph.ObjID]objState, len(lt))
		freedAt := make(map[graph.ObjID]int32, len(lt))
		inUse := perm[p]
		peak := perm[p]
		mi := 0
		prevCover := int32(0)
		for pos := int32(0); pos <= int32(len(order)); pos++ {
			for mi < len(pp.MAPs) && pp.MAPs[mi].Pos == pos {
				mapp := &pp.MAPs[mi]
				c.check()
				if mapp.Pos != prevCover && mi > 0 {
					c.report(Finding{Class: ClassStructure, Proc: graph.Proc(p), Pos: mapp.Pos,
						Task: graph.None, Obj: graph.None,
						Detail: fmt.Sprintf("MAP coverage gap: previous MAP covered through %d, this MAP at %d", prevCover, mapp.Pos)})
				}
				prevCover = mapp.CoverEnd
				c.replayMAP(graph.Proc(p), mapp.Pos, mapp.Frees, mapp.Allocs, mapp.Notify,
					state, freedAt, lt, producers, &inUse, &peak)
				mi++
			}
			if int(pos) >= len(order) {
				break
			}
			t := order[pos]
			task := &c.g.Tasks[t]
			for _, lists := range [2][]graph.ObjID{task.Reads, task.Writes} {
				for _, o := range lists {
					if c.g.Objects[o].Owner == graph.Proc(p) {
						continue
					}
					c.check()
					switch state[o] {
					case objUnallocated:
						c.reportOnce(Finding{Class: ClassUseBeforeMAP, Proc: graph.Proc(p), Pos: pos,
							Task: t, Obj: o,
							Detail: "volatile object used before any MAP allocates it"})
					case objFreed:
						c.reportOnce(Finding{Class: ClassUseAfterFree, Proc: graph.Proc(p), Pos: pos,
							Task: t, Obj: o,
							Detail: fmt.Sprintf("volatile object used after its free at MAP@%d", freedAt[o])})
					}
				}
			}
		}
		for ; mi < len(pp.MAPs); mi++ {
			c.report(Finding{Class: ClassStructure, Proc: graph.Proc(p), Pos: pp.MAPs[mi].Pos,
				Task: graph.None, Obj: graph.None,
				Detail: "MAP positioned past the end of the order"})
		}
		if len(pp.MAPs) > 0 {
			c.check()
			if last := pp.MAPs[len(pp.MAPs)-1].CoverEnd; last != int32(len(order)) {
				c.report(Finding{Class: ClassStructure, Proc: graph.Proc(p), Pos: pp.MAPs[len(pp.MAPs)-1].Pos,
					Task: graph.None, Obj: graph.None,
					Detail: fmt.Sprintf("last MAP covers through %d, order has %d tasks", last, len(order))})
			}
		}
		c.res.Peaks[p] = peak
		c.check()
		if peak != pp.Peak {
			c.report(Finding{Class: ClassPeakMismatch, Proc: graph.Proc(p), Pos: graph.None,
				Task: graph.None, Obj: graph.None,
				Detail: fmt.Sprintf("declared peak %d, symbolic replay computes %d (stale plan?)", pp.Peak, peak)})
		}
		c.check()
		if peak > mp.Capacity {
			c.report(Finding{Class: ClassBudgetOverflow, Proc: graph.Proc(p), Pos: graph.None,
				Task: graph.None, Obj: graph.None,
				Detail: fmt.Sprintf("replayed peak %d exceeds capacity %d (AVAIL_MEM)", peak, mp.Capacity)})
		}
	}
}

// replayMAP applies one MAP to the symbolic allocator state, checking the
// free/alloc invariants and the Notify cross-check.
func (c *checker) replayMAP(p graph.Proc, pos int32,
	frees, allocs []graph.ObjID, notify map[graph.Proc][]graph.ObjID,
	state map[graph.ObjID]objState, freedAt map[graph.ObjID]int32,
	lt map[graph.ObjID][2]int32, producers map[graph.ObjID]map[graph.Proc]bool,
	inUse, peak *int64) {

	for _, o := range frees {
		c.check()
		switch state[o] {
		case objFreed:
			c.reportOnce(Finding{Class: ClassDoubleFree, Proc: p, Pos: pos, Task: graph.None, Obj: o,
				Detail: fmt.Sprintf("volatile object freed again (first free at MAP@%d)", freedAt[o])})
			continue
		case objUnallocated:
			c.reportOnce(Finding{Class: ClassStructure, Proc: p, Pos: pos, Task: graph.None, Obj: o,
				Detail: "MAP frees an object that was never allocated"})
			continue
		}
		state[o] = objFreed
		freedAt[o] = pos
		*inUse -= c.g.Objects[o].Size
		if r, ok := lt[o]; ok && r[1] >= pos {
			c.reportOnce(Finding{Class: ClassUseAfterFree, Proc: p, Pos: pos, Task: graph.None, Obj: o,
				Detail: fmt.Sprintf("freed at MAP@%d before its last use at position %d", pos, r[1])})
		}
	}
	// Dead objects the planner should have recycled here but did not.
	for o, st := range state {
		if st != objAllocated {
			continue
		}
		if r, ok := lt[o]; ok && r[1] < pos {
			c.reportOnce(Finding{Class: ClassLeak, Proc: p, Pos: pos, Task: graph.None, Obj: o,
				Detail: fmt.Sprintf("dead since position %d but not freed at MAP@%d (space not recycled)", r[1], pos)})
		}
	}
	for _, o := range allocs {
		c.check()
		switch state[o] {
		case objAllocated:
			c.reportOnce(Finding{Class: ClassRealloc, Proc: p, Pos: pos, Task: graph.None, Obj: o,
				Detail: "volatile object allocated twice"})
			continue
		case objFreed:
			c.reportOnce(Finding{Class: ClassRealloc, Proc: p, Pos: pos, Task: graph.None, Obj: o,
				Detail: fmt.Sprintf("volatile object resurrected after its free at MAP@%d", freedAt[o])})
			continue
		}
		if c.g.Objects[o].Owner == p {
			c.reportOnce(Finding{Class: ClassStructure, Proc: p, Pos: pos, Task: graph.None, Obj: o,
				Detail: "MAP allocates an object the processor owns permanently"})
			continue
		}
		state[o] = objAllocated
		*inUse += c.g.Objects[o].Size
		if _, used := lt[o]; !used {
			c.reportOnce(Finding{Class: ClassLeak, Proc: p, Pos: pos, Task: graph.None, Obj: o,
				Detail: "volatile object allocated but never used on this processor"})
		}
	}
	if *inUse > *peak {
		*peak = *inUse
	}
	// Notify cross-check: the address packages announced by this MAP must
	// match, object by object, the remote producers that will RMA-deposit
	// into the freshly allocated buffers (Theorem 1's address-packages-
	// precede-remote-writes precondition, statically).
	expected := make(map[graph.Proc]map[graph.ObjID]bool)
	for _, o := range allocs {
		for q := range producers[o] {
			if expected[q] == nil {
				expected[q] = make(map[graph.ObjID]bool)
			}
			expected[q][o] = true
		}
	}
	for q, objs := range notify {
		for _, o := range objs {
			c.check()
			if !expected[q][o] {
				c.reportOnce(Finding{Class: ClassNotifyMismatch, Proc: p, Pos: pos, Task: graph.None, Obj: o,
					Detail: fmt.Sprintf("MAP notifies processor %d of an object it does not deposit here", q)})
				continue
			}
			delete(expected[q], o)
		}
	}
	for q, objs := range expected {
		for o := range objs {
			c.check()
			c.reportOnce(Finding{Class: ClassNotifyMismatch, Proc: p, Pos: pos, Task: graph.None, Obj: o,
				Detail: fmt.Sprintf("producer on processor %d deposits this object but receives no address package from this MAP", q)})
		}
	}
}

// remoteProducers mirrors the memory planner's producer analysis: for
// processor p, the set of processors whose tasks RMA-deposit each volatile
// object into p's buffers.
func (c *checker) remoteProducers(p graph.Proc) map[graph.ObjID]map[graph.Proc]bool {
	res := make(map[graph.ObjID]map[graph.Proc]bool)
	for _, t := range c.s.Order[p] {
		for _, e := range c.g.In(t) {
			if e.Kind != graph.DepTrue {
				continue
			}
			q := c.s.Assign[e.From]
			if q == p || c.g.Objects[e.Obj].Owner == p {
				continue
			}
			mm, ok := res[e.Obj]
			if !ok {
				mm = make(map[graph.Proc]bool)
				res[e.Obj] = mm
			}
			mm[q] = true
		}
	}
	return res
}
