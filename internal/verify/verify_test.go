package verify

import (
	"strings"
	"testing"

	"repro/internal/graph"
	"repro/internal/mem"
	"repro/internal/sched"
)

func figure2Plan(t *testing.T, h sched.Heuristic, capacity int64) (*sched.Schedule, *mem.Plan) {
	t.Helper()
	g := sched.Figure2DAG()
	assign, err := sched.OwnerComputeAssign(g, 2)
	if err != nil {
		t.Fatal(err)
	}
	s, err := sched.ScheduleWith(h, g, assign, 2, sched.Unit(), capacity)
	if err != nil {
		t.Fatal(err)
	}
	pl, err := mem.NewPlan(s, capacity)
	if err != nil {
		t.Fatal(err)
	}
	return s, pl
}

func has(res *Result, cl Class) bool {
	for _, f := range res.Findings {
		if f.Class == cl {
			return true
		}
	}
	return false
}

func find(res *Result, cl Class) (Finding, bool) {
	for _, f := range res.Findings {
		if f.Class == cl {
			return f, true
		}
	}
	return Finding{}, false
}

func TestCleanPlansPass(t *testing.T) {
	for _, h := range []sched.Heuristic{sched.RCP, sched.MPO, sched.DTS, sched.DTSMerge, sched.TreeMem} {
		for _, cap := range []int64{1 << 30, 12, 9} {
			s, pl := figure2Plan(t, h, cap)
			res := Check(s, pl)
			if !res.OK() {
				t.Errorf("%v/cap=%d: clean plan rejected: %v", h, cap, res.Err())
			}
			if res.Checks == 0 {
				t.Errorf("%v/cap=%d: no checks counted", h, cap)
			}
			if pl.Executable {
				for p, want := range res.Peaks {
					if want != pl.Procs[p].Peak {
						t.Errorf("%v/cap=%d: replayed peak %d != declared %d on P%d",
							h, cap, want, pl.Procs[p].Peak, p)
					}
				}
			}
		}
	}
}

func TestNonExecutablePlanPasses(t *testing.T) {
	s, pl := figure2Plan(t, sched.RCP, 3)
	if pl.Executable {
		t.Skip("capacity unexpectedly executable")
	}
	res := Check(s, pl)
	if !res.OK() {
		t.Fatalf("non-executable plan should verify clean (it declares failure): %v", res.Err())
	}
	if res.Executable {
		t.Fatalf("result should mirror non-executability")
	}
}

func TestNilInputs(t *testing.T) {
	if res := Check(nil, nil); !has(res, ClassStructure) {
		t.Fatalf("nil inputs must yield a structure finding")
	}
	if res := CheckArtifact(nil); !has(res, ClassStructure) {
		t.Fatalf("nil artifact must yield a structure finding")
	}
}

// firstVolatileAlloc returns the first (proc, MAP index, alloc slot) whose
// object is used by more than zero tasks, for tamper tests.
func firstVolatileAlloc(t *testing.T, pl *mem.Plan) (p, mi, ai int) {
	t.Helper()
	for p := range pl.Procs {
		for mi := range pl.Procs[p].MAPs {
			if len(pl.Procs[p].MAPs[mi].Allocs) > 0 {
				return p, mi, 0
			}
		}
	}
	t.Fatal("plan has no volatile allocations")
	return 0, 0, 0
}

func TestDetectUseBeforeMAP(t *testing.T) {
	s, pl := figure2Plan(t, sched.RCP, 1<<30)
	p, mi, ai := firstVolatileAlloc(t, pl)
	mapp := &pl.Procs[p].MAPs[mi]
	o := mapp.Allocs[ai]
	mapp.Allocs = append(mapp.Allocs[:ai], mapp.Allocs[ai+1:]...)
	res := Check(s, pl)
	f, ok := find(res, ClassUseBeforeMAP)
	if !ok {
		t.Fatalf("stripped allocation not detected: %v", res.Findings)
	}
	if f.Obj != o || f.Proc != graph.Proc(p) || f.Task == graph.None {
		t.Fatalf("imprecise diagnostic: %+v (want obj %d on P%d with a task)", f, o, p)
	}
}

func TestDetectFreeBeforeLastUse(t *testing.T) {
	s, pl := figure2Plan(t, sched.RCP, 1<<30)
	p, mi, ai := firstVolatileAlloc(t, pl)
	mapp := &pl.Procs[p].MAPs[mi]
	o := mapp.Allocs[ai]
	// Free it immediately at a synthetic MAP right after the allocating one,
	// before its last use.
	last := int32(len(s.Order[p]))
	pl.Procs[p].MAPs[mi].CoverEnd = mapp.Pos + 1
	pl.Procs[p].MAPs = append(pl.Procs[p].MAPs, mem.MAP{
		Pos: mapp.Pos + 1, CoverEnd: last, Frees: []graph.ObjID{o},
	})
	res := Check(s, pl)
	f, ok := find(res, ClassUseAfterFree)
	if !ok {
		t.Fatalf("early free not detected: %v", res.Findings)
	}
	if f.Obj != o || f.Proc != graph.Proc(p) {
		t.Fatalf("imprecise diagnostic: %+v", f)
	}
}

func TestDetectDoubleFreeAndRealloc(t *testing.T) {
	s, pl := figure2Plan(t, sched.RCP, 1<<30)
	p, mi, ai := firstVolatileAlloc(t, pl)
	mapp := &pl.Procs[p].MAPs[mi]
	o := mapp.Allocs[ai]
	last := int32(len(s.Order[p]))
	pl.Procs[p].MAPs[mi].CoverEnd = last - 1
	pl.Procs[p].MAPs = append(pl.Procs[p].MAPs, mem.MAP{
		Pos: last - 1, CoverEnd: last,
		Frees:  []graph.ObjID{o, o},
		Allocs: []graph.ObjID{o},
	})
	res := Check(s, pl)
	if !has(res, ClassDoubleFree) {
		t.Fatalf("double free not detected: %v", res.Findings)
	}
	if !has(res, ClassRealloc) {
		t.Fatalf("resurrection not detected: %v", res.Findings)
	}
}

func TestDetectBudgetOverflowAndPeakMismatch(t *testing.T) {
	s, pl := figure2Plan(t, sched.RCP, 1<<30)
	pl.Capacity = 1 // far below the replayed peak
	pl.Procs[0].Peak++
	res := Check(s, pl)
	if !has(res, ClassBudgetOverflow) {
		t.Fatalf("budget overflow not detected: %v", res.Findings)
	}
	f, _ := find(res, ClassPeakMismatch)
	if f.Proc != 0 {
		t.Fatalf("peak mismatch not located on P0: %v", res.Findings)
	}
}

func TestDetectNotifyMismatch(t *testing.T) {
	s, pl := figure2Plan(t, sched.RCP, 1<<30)
	tampered := false
	for p := range pl.Procs {
		for mi := range pl.Procs[p].MAPs {
			if len(pl.Procs[p].MAPs[mi].Notify) > 0 {
				pl.Procs[p].MAPs[mi].Notify = nil
				tampered = true
				break
			}
		}
		if tampered {
			break
		}
	}
	if !tampered {
		t.Skip("plan has no cross-processor notifications")
	}
	if res := Check(s, pl); !has(res, ClassNotifyMismatch) {
		t.Fatalf("dropped address packages not detected: %v", res.Findings)
	}
}

func TestDetectOrderViolation(t *testing.T) {
	s, pl := figure2Plan(t, sched.RCP, 1<<30)
	// Reverse one processor's order: every same-proc edge flips.
	for p := range s.Order {
		if len(s.Order[p]) < 2 {
			continue
		}
		o := s.Order[p]
		for i, j := 0, len(o)-1; i < j; i, j = i+1, j-1 {
			o[i], o[j] = o[j], o[i]
		}
		break
	}
	if res := Check(s, pl); !has(res, ClassOrderViolation) {
		t.Fatalf("reversed order not detected: %v", res.Findings)
	}
}

// crossSchedule builds the minimal deadlock: a->b and c->d cross processors,
// but P0 orders d before a and P1 orders b before c, so each processor's
// first task waits on the other's second.
func crossSchedule(t *testing.T) (*sched.Schedule, *mem.Plan) {
	t.Helper()
	b := graph.NewBuilder()
	x := b.Object("x", 1)
	y := b.Object("y", 1)
	u := b.Object("u", 1)
	w := b.Object("w", 1)
	ta := b.Task("a", 1, nil, []graph.ObjID{x})
	tb := b.Task("b", 1, []graph.ObjID{x}, []graph.ObjID{y})
	tc := b.Task("c", 1, nil, []graph.ObjID{u})
	td := b.Task("d", 1, []graph.ObjID{u}, []graph.ObjID{w})
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	g.Objects[x].Owner = 0
	g.Objects[w].Owner = 0
	g.Objects[y].Owner = 1
	g.Objects[u].Owner = 1
	s := &sched.Schedule{
		G: g, P: 2,
		Assign: []graph.Proc{0, 1, 1, 0},
		Order:  [][]graph.TaskID{{td, ta}, {tb, tc}},
		Pos:    make([]int32, 4),
	}
	for p := range s.Order {
		for i, tk := range s.Order[p] {
			s.Pos[tk] = int32(i)
		}
	}
	pl := &mem.Plan{Schedule: s, Capacity: 1 << 30, Executable: true,
		Procs: make([]mem.ProcPlan, 2)}
	// Minimal MAP structure: one initial MAP per processor allocating the
	// volatile objects it reads.
	alloc := [][]graph.ObjID{{u}, {x}}
	notify := []map[graph.Proc][]graph.ObjID{
		{1: {u}},
		{0: {x}},
	}
	for p := range pl.Procs {
		pl.Procs[p] = mem.ProcPlan{Executable: true, Peak: 1,
			MAPs: []mem.MAP{{Pos: 0, CoverEnd: int32(len(s.Order[p])),
				Allocs: alloc[p], Notify: notify[p]}}}
	}
	return s, pl
}

func TestDetectWaitForCycle(t *testing.T) {
	s, pl := crossSchedule(t)
	res := Check(s, pl)
	f, ok := find(res, ClassWaitCycle)
	if !ok {
		t.Fatalf("deadlock not detected: %v", res.Findings)
	}
	// The chain must name all four tasks and carry the wait reasons.
	for _, name := range []string{`"a"`, `"b"`, `"c"`, `"d"`} {
		if !strings.Contains(f.Detail, name) {
			t.Fatalf("blocking chain missing task %s: %s", name, f.Detail)
		}
	}
	if !strings.Contains(f.Detail, "waits for arrival") {
		t.Fatalf("blocking chain missing wait reason: %s", f.Detail)
	}
}

// thresholdFixture builds a three-task pipeline a(P0) -> b(P1) -> c(P1)
// whose hand-built plan passes, then a tamper closure that makes c read x
// without any true-dependence in-edge for it (the static picture of
// protocol tables that lost a producer): a version of x still arrives at P1
// for b, but nothing orders c's read against it.
func thresholdFixture(t *testing.T) (s *sched.Schedule, pl *mem.Plan, tamper func(), tc graph.TaskID, x graph.ObjID) {
	t.Helper()
	b := graph.NewBuilder()
	x = b.Object("x", 1)
	y := b.Object("y", 1)
	z := b.Object("z", 1)
	ta := b.Task("a", 1, nil, []graph.ObjID{x})
	tb := b.Task("b", 1, []graph.ObjID{x}, []graph.ObjID{y})
	tc = b.Task("c", 1, []graph.ObjID{y}, []graph.ObjID{z})
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	g.Objects[x].Owner = 0
	g.Objects[y].Owner = 1
	g.Objects[z].Owner = 1
	s = &sched.Schedule{
		G: g, P: 2,
		Assign: []graph.Proc{0, 1, 1},
		Order:  [][]graph.TaskID{{ta}, {tb, tc}},
		Pos:    []int32{0, 0, 1},
	}
	pl = &mem.Plan{Schedule: s, Capacity: 1 << 30, Executable: true,
		Procs: []mem.ProcPlan{
			{Executable: true, Peak: 1, // permanent x
				MAPs: []mem.MAP{{Pos: 0, CoverEnd: 1}}},
			{Executable: true, Peak: 3, // permanent y,z + volatile x
				MAPs: []mem.MAP{{Pos: 0, CoverEnd: 2,
					Allocs: []graph.ObjID{x},
					Notify: map[graph.Proc][]graph.ObjID{0: {x}}}}},
		}}
	tamper = func() { g.Tasks[tc].Reads = append(g.Tasks[tc].Reads, x) }
	return s, pl, tamper, tc, x
}

func TestDetectThresholdMismatch(t *testing.T) {
	s, pl, tamper, tc, x := thresholdFixture(t)
	if res := Check(s, pl); !res.OK() {
		t.Fatalf("baseline hand-built plan should pass: %v", res.Err())
	}
	tamper()
	res := Check(s, pl)
	f, ok := find(res, ClassThresholdMismatch)
	if !ok {
		t.Fatalf("ungated remote read not detected: %v", res.Findings)
	}
	if f.Task != tc || f.Obj != x {
		t.Fatalf("imprecise diagnostic: %+v", f)
	}
}

func TestDetectDTSBoundViolation(t *testing.T) {
	s, pl := figure2Plan(t, sched.DTS, 1<<30)
	if s.Slices == nil {
		t.Skip("DTS schedule has no slices")
	}
	// Break slice monotonicity: give the last task of P0's order a smaller
	// slice than its predecessor.
	var tampered bool
	for p := range s.Order {
		o := s.Order[p]
		if len(o) < 2 {
			continue
		}
		lastT := o[len(o)-1]
		prevT := o[len(o)-2]
		if s.Slices[prevT] > 0 {
			s.Slices[lastT] = s.Slices[prevT] - 1
			tampered = true
			break
		}
	}
	if !tampered {
		t.Skip("no multi-slice processor order to tamper")
	}
	if res := Check(s, pl); !has(res, ClassDTSBound) {
		t.Fatalf("slice-monotonicity violation not detected: %v", res.Findings)
	}
}

func TestFindingsCapped(t *testing.T) {
	s, pl := figure2Plan(t, sched.RCP, 1<<30)
	// Strip every allocation everywhere: floods of use-before-map findings,
	// bounded by dedup + the cap.
	for p := range pl.Procs {
		for mi := range pl.Procs[p].MAPs {
			pl.Procs[p].MAPs[mi].Allocs = nil
			pl.Procs[p].MAPs[mi].Notify = nil
		}
	}
	res := Check(s, pl)
	if res.OK() {
		t.Fatal("gutted plan passed")
	}
	if len(res.Findings) > maxFindings {
		t.Fatalf("findings not capped: %d", len(res.Findings))
	}
}

func TestResultRendering(t *testing.T) {
	s, pl := figure2Plan(t, sched.RCP, 1<<30)
	pl.Procs[0].Peak++
	res := Check(s, pl)
	if res.Err() == nil {
		t.Fatal("expected error")
	}
	cols, rows := res.Rows()
	if len(cols) == 0 || len(rows) != len(res.Findings) {
		t.Fatalf("rows mismatch: %d cols, %d rows, %d findings", len(cols), len(rows), len(res.Findings))
	}
	for _, r := range rows {
		if len(r) != len(cols) {
			t.Fatalf("ragged row: %v", r)
		}
	}
	for _, f := range res.Findings {
		if f.String() == "" {
			t.Fatal("empty rendering")
		}
	}
}
