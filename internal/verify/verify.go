// Package verify is a static analyzer over compiled execution plans: it
// proves, without executing anything, the invariants the paper's
// correctness argument rests on, so that a corrupted, stale or
// mis-scheduled plan is rejected at a plan boundary (compile, cache load,
// daemon admission) instead of surfacing as a runtime watchdog timeout.
//
// Three analyses run over a (schedule, MAP plan) pair:
//
//   - A per-processor dataflow liveness pass replays the MAP sequence
//     against the task order and proves every volatile object is
//     MAP-allocated before its first use, freed only after its last use,
//     never freed twice and never resurrected — the Theorem 1 precondition
//     that every volatile object's MAP precedes its first use, plus
//     use-after-free / double-free / leak detection with task- and
//     object-precise diagnostics.
//
//   - A cross-processor wait-for graph is built from the schedule's
//     receive/send ordering (per-processor execution chains, data-arrival
//     waits on version producers, control-signal waits on retained
//     precedence edges). A cycle means the deadlock-freedom precondition of
//     Theorem 1 is violated; the finding carries the full blocking chain.
//     The MAP address-package handshake adds no further cycles statically:
//     every blocking protocol state performs RA, so a deposit can only
//     stall behind a peer that is itself making progress (see
//     internal/proto).
//
//   - The allocator is replayed symbolically to compute the exact peak
//     volatile memory per processor, which is checked against the plan's
//     declared peaks (stale-plan detection) and its capacity (AVAIL_MEM);
//     for DTS/DTS+merge schedules the immediate-free volatile peak is
//     additionally checked against the Theorem 2 slice bound h (the
//     "S1/p + h" corollary), and slice-monotone ordering is verified.
//
// Arrival thresholds and address-package pre-assignments are cross-checked
// against the actual in-edges of the graph: a remote read not gated by any
// true dependence edge (while versions of the object do arrive) is a data
// race the protocol cannot order, and a MAP Notify set that disagrees with
// the producers that will RMA-deposit into the newly allocated buffers
// means address packages would precede no remote write, or remote writes
// would precede their address package.
//
// The verifier never panics on malformed input: a structural pre-pass
// checks every index before the deeper passes dereference it.
package verify

import (
	"fmt"
	"strings"

	"repro/internal/graph"
	"repro/internal/mem"
	"repro/internal/plan"
	"repro/internal/sched"
)

// Class names a verifier finding class.
type Class string

// Finding classes. Each maps to one invariant of the paper's correctness
// story; see DESIGN.md §8 for the claim-by-claim correspondence.
const (
	// ClassStructure: the plan is internally inconsistent (dangling
	// indices, order/assignment disagreement, MAP coverage gaps).
	ClassStructure Class = "structure"
	// ClassUseBeforeMAP: a task uses a volatile object before any MAP
	// allocates it (Theorem 1 precondition violated).
	ClassUseBeforeMAP Class = "use-before-map"
	// ClassUseAfterFree: a MAP frees a volatile object at or before its
	// last use, or a task uses an object after its free.
	ClassUseAfterFree Class = "use-after-free"
	// ClassDoubleFree: a volatile object is freed twice.
	ClassDoubleFree Class = "double-free"
	// ClassRealloc: a volatile object is allocated twice, or resurrected
	// after its free.
	ClassRealloc Class = "realloc"
	// ClassLeak: a volatile object is allocated but never used, or stays
	// allocated past a MAP that should have recycled it.
	ClassLeak Class = "leak"
	// ClassOrderViolation: a dependence edge is ordered backwards on its
	// processor.
	ClassOrderViolation Class = "order-violation"
	// ClassWaitCycle: the cross-processor wait-for graph has a cycle — a
	// potential deadlock; the detail carries the full blocking chain.
	ClassWaitCycle Class = "wait-cycle"
	// ClassThresholdMismatch: a remote read is not gated by any arrival
	// threshold although versions of the object arrive at the processor.
	ClassThresholdMismatch Class = "threshold-mismatch"
	// ClassNotifyMismatch: a MAP's address-package Notify set disagrees
	// with the producers that actually deposit into the allocated buffers.
	ClassNotifyMismatch Class = "notify-mismatch"
	// ClassBudgetOverflow: the replayed peak exceeds the plan's capacity.
	ClassBudgetOverflow Class = "budget-overflow"
	// ClassPeakMismatch: the declared per-processor peak disagrees with
	// the symbolic replay (stale or tampered plan).
	ClassPeakMismatch Class = "peak-mismatch"
	// ClassDTSBound: a DTS schedule violates slice-monotone ordering or
	// the Theorem 2 volatile-space bound h.
	ClassDTSBound Class = "dts-bound"
)

// Finding is one verifier diagnostic, located as precisely as the defect
// allows: Proc/Pos/Task/Obj are -1 (graph.None) when not applicable.
type Finding struct {
	Class    Class        `json:"class"`
	Proc     graph.Proc   `json:"proc"`
	Pos      int32        `json:"pos"`
	Task     graph.TaskID `json:"task"`
	TaskName string       `json:"task_name,omitempty"`
	Obj      graph.ObjID  `json:"obj"`
	ObjName  string       `json:"obj_name,omitempty"`
	Detail   string       `json:"detail"`
}

// String renders the finding on one line.
func (f Finding) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "[%s]", f.Class)
	if f.Proc != graph.None {
		fmt.Fprintf(&b, " P%d", f.Proc)
	}
	if f.Pos != graph.None {
		fmt.Fprintf(&b, "#%d", f.Pos)
	}
	if f.TaskName != "" {
		fmt.Fprintf(&b, " task %q", f.TaskName)
	}
	if f.ObjName != "" {
		fmt.Fprintf(&b, " object %q", f.ObjName)
	}
	b.WriteString(": ")
	b.WriteString(f.Detail)
	return b.String()
}

// maxFindings caps the findings list so a thoroughly corrupted plan cannot
// produce an unbounded report; Truncated records that the cap was hit.
const maxFindings = 100

// Result is the outcome of one verification.
type Result struct {
	// Findings lists every detected invariant violation (capped).
	Findings []Finding
	// Truncated is true when more than maxFindings violations exist.
	Truncated bool
	// Checks counts the individual invariants checked (for reporting).
	Checks int
	// Peaks is the symbolically replayed peak memory per processor
	// (present when the structural pre-pass succeeded).
	Peaks []int64
	// Executable mirrors the plan's declared executability; liveness and
	// budget findings are only meaningful for executable plans.
	Executable bool
}

// OK reports whether the plan passed every check.
func (r *Result) OK() bool { return len(r.Findings) == 0 }

// Err returns nil for a clean plan and a one-line summary error otherwise.
func (r *Result) Err() error {
	if r.OK() {
		return nil
	}
	more := ""
	if len(r.Findings) > 1 {
		more = fmt.Sprintf(" (+%d more)", len(r.Findings)-1)
	}
	return fmt.Errorf("verify: %d findings: %s%s", len(r.Findings), r.Findings[0], more)
}

// Rows flattens the findings into a header + rows table for rendering
// (e.g. with trace.Grid).
func (r *Result) Rows() (cols []string, rows [][]string) {
	cols = []string{"class", "proc", "pos", "task", "object", "detail"}
	rows = make([][]string, len(r.Findings))
	cell := func(v int32, prefix string) string {
		if v == graph.None {
			return "-"
		}
		return fmt.Sprintf("%s%d", prefix, v)
	}
	for i, f := range r.Findings {
		task := f.TaskName
		if task == "" {
			task = cell(f.Task, "")
		}
		obj := f.ObjName
		if obj == "" {
			obj = cell(f.Obj, "")
		}
		rows[i] = []string{string(f.Class), cell(int32(f.Proc), "P"), cell(f.Pos, ""), task, obj, f.Detail}
	}
	return cols, rows
}

// checker carries the state shared by the analysis passes.
type checker struct {
	s   *sched.Schedule
	mp  *mem.Plan
	g   *graph.DAG
	res *Result
	// pos is the position of each task recomputed from the orders (the
	// stored Pos array is itself subject to verification).
	pos []int32
	// lifetimes[p] maps each volatile object of processor p to its
	// first/last use positions.
	lifetimes []map[graph.ObjID][2]int32
	// dedup suppresses repeat findings of the same (class, proc, obj).
	dedup map[string]bool
}

// Check statically verifies a compiled plan: schedule structure, protocol
// wait-for acyclicity, MAP liveness, memory budget, threshold coverage and
// (for DTS schedules) the Theorem 2 bound. It never executes anything and
// never panics on malformed input.
func Check(s *sched.Schedule, mp *mem.Plan) *Result {
	c := &checker{
		s:     s,
		mp:    mp,
		res:   &Result{},
		dedup: make(map[string]bool),
	}
	if s != nil && mp != nil {
		c.res.Executable = mp.Executable
	}
	if !c.structural() {
		return c.res
	}
	c.g = s.G
	c.computeLifetimes()
	c.ownerCompute()
	c.orderEdges()
	c.waitFor()
	c.thresholds()
	c.liveness()
	c.dtsBound()
	return c.res
}

// CheckArtifact verifies a (typically just decoded) plan artifact: the
// artifact-level envelope plus everything Check proves.
func CheckArtifact(a *plan.Artifact) *Result {
	res := &Result{}
	if a == nil {
		res.add(Finding{Class: ClassStructure, Proc: graph.None, Pos: graph.None,
			Task: graph.None, Obj: graph.None, Detail: "nil artifact"})
		return res
	}
	if a.Schedule == nil || a.Mem == nil {
		res.add(Finding{Class: ClassStructure, Proc: graph.None, Pos: graph.None,
			Task: graph.None, Obj: graph.None, Detail: "artifact missing schedule or memory plan"})
		return res
	}
	res = Check(a.Schedule, a.Mem)
	res.Checks++
	if a.Mem.Schedule != a.Schedule {
		res.add(Finding{Class: ClassStructure, Proc: graph.None, Pos: graph.None,
			Task: graph.None, Obj: graph.None,
			Detail: "memory plan refers to a different schedule than the artifact's"})
	}
	res.Checks++
	if a.Capacity != a.Mem.Capacity {
		res.add(Finding{Class: ClassStructure, Proc: graph.None, Pos: graph.None,
			Task: graph.None, Obj: graph.None,
			Detail: fmt.Sprintf("artifact capacity %d disagrees with memory plan capacity %d", a.Capacity, a.Mem.Capacity)})
	}
	return res
}

// add appends a finding unless the cap is reached.
func (r *Result) add(f Finding) {
	if len(r.Findings) >= maxFindings {
		r.Truncated = true
		return
	}
	r.Findings = append(r.Findings, f)
}

// report files a finding, resolving task/object names when in range.
func (c *checker) report(f Finding) {
	if c.g != nil {
		if f.Task != graph.None && int(f.Task) < len(c.g.Tasks) {
			f.TaskName = c.g.Tasks[f.Task].Name
		}
		if f.Obj != graph.None && int(f.Obj) < len(c.g.Objects) {
			f.ObjName = c.g.Objects[f.Obj].Name
		}
	}
	c.res.add(f)
}

// reportOnce files a finding unless an identical (class, proc, obj) one was
// already filed — liveness defects repeat at every later use otherwise.
func (c *checker) reportOnce(f Finding) {
	key := fmt.Sprintf("%s/%d/%d", f.Class, f.Proc, f.Obj)
	if c.dedup[key] {
		return
	}
	c.dedup[key] = true
	c.report(f)
}

// check counts one invariant check.
func (c *checker) check() { c.res.Checks++ }

// computeLifetimes fills lifetimes from the verified orders (not from the
// stored Pos array, which may itself be corrupt).
func (c *checker) computeLifetimes() {
	s := c.s
	c.lifetimes = make([]map[graph.ObjID][2]int32, s.P)
	for p := 0; p < s.P; p++ {
		lt := make(map[graph.ObjID][2]int32)
		for i, t := range s.Order[p] {
			task := &c.g.Tasks[t]
			touch := func(o graph.ObjID) {
				if c.g.Objects[o].Owner == graph.Proc(p) {
					return
				}
				if r, ok := lt[o]; ok {
					r[1] = int32(i)
					lt[o] = r
				} else {
					lt[o] = [2]int32{int32(i), int32(i)}
				}
			}
			for _, o := range task.Reads {
				touch(o)
			}
			for _, o := range task.Writes {
				touch(o)
			}
		}
		c.lifetimes[p] = lt
	}
}

// ownerCompute checks the owner-compute precondition of the active memory
// scheme: tasks write only objects owned by their processor.
func (c *checker) ownerCompute() {
	for t := range c.g.Tasks {
		c.check()
		for _, o := range c.g.Tasks[t].Writes {
			if c.g.Objects[o].Owner != c.s.Assign[t] {
				c.report(Finding{Class: ClassStructure, Proc: c.s.Assign[t], Pos: c.pos[t],
					Task: graph.TaskID(t), Obj: o,
					Detail: fmt.Sprintf("owner-compute violated: writes object owned by processor %d", c.g.Objects[o].Owner)})
			}
		}
	}
}
