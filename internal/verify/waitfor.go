package verify

import (
	"fmt"
	"strings"

	"repro/internal/graph"
	"repro/internal/sched"
)

// orderEdges checks that every dependence edge between tasks on the same
// processor is ordered forward — a backwards edge means the consumer runs
// before its producer and the protocol tables cannot fix that.
func (c *checker) orderEdges() {
	for t := range c.g.Tasks {
		for _, e := range c.g.Out(graph.TaskID(t)) {
			if c.s.Assign[e.From] != c.s.Assign[e.To] {
				continue
			}
			c.check()
			if c.pos[e.From] >= c.pos[e.To] {
				c.report(Finding{Class: ClassOrderViolation, Proc: c.s.Assign[e.To],
					Pos: c.pos[e.To], Task: e.To, Obj: e.Obj,
					Detail: fmt.Sprintf("%s dependence from task %d (position %d) ordered backwards", e.Kind, e.From, c.pos[e.From])})
			}
		}
	}
}

// waitEdge is one edge of the wait-for graph, with enough context to render
// the blocking chain of a cycle.
type waitEdge struct {
	to  graph.TaskID
	obj graph.ObjID // graph.None for chain/control edges
	why string
}

// waitFor builds the cross-processor wait-for graph over task nodes and
// reports the first cycle as a potential deadlock with the full blocking
// chain. The edges are exactly what can block an executor in the five-state
// protocol: a task waits for its per-processor predecessor (the order is
// sequential), for the data arrivals of its cross-processor true
// dependences, and for the control signals of retained precedence edges.
// Sends never block (the suspended-send queue), and the MAP address-package
// handshake polls in every blocking state, so neither adds static edges.
func (c *checker) waitFor() {
	n := c.g.NumTasks()
	adj := make([][]waitEdge, n)
	for p := 0; p < c.s.P; p++ {
		order := c.s.Order[p]
		for i := 1; i < len(order); i++ {
			adj[order[i]] = append(adj[order[i]], waitEdge{
				to:  order[i-1],
				obj: graph.None,
				why: fmt.Sprintf("runs after it on processor %d", p),
			})
		}
	}
	for t := 0; t < n; t++ {
		for _, e := range c.g.In(graph.TaskID(t)) {
			if c.s.Assign[e.From] == c.s.Assign[e.To] {
				continue // covered by the chain edges
			}
			switch e.Kind {
			case graph.DepTrue:
				adj[e.To] = append(adj[e.To], waitEdge{
					to:  e.From,
					obj: e.Obj,
					why: fmt.Sprintf("waits for arrival of object %d", e.Obj),
				})
			default:
				adj[e.To] = append(adj[e.To], waitEdge{
					to:  e.From,
					obj: graph.None,
					why: fmt.Sprintf("waits for %s-dependence control signal", e.Kind),
				})
			}
		}
	}
	c.res.Checks += n

	// Iterative three-color DFS; on the first back edge, reconstruct the
	// cycle from the stack and report it as one finding.
	const (
		white = 0
		gray  = 1
		black = 2
	)
	color := make([]uint8, n)
	for root := 0; root < n; root++ {
		if color[root] != white {
			continue
		}
		stack := []dfsFrame{{t: graph.TaskID(root)}}
		color[root] = gray
		for len(stack) > 0 {
			f := &stack[len(stack)-1]
			if f.next < len(adj[f.t]) {
				e := adj[f.t][f.next]
				f.next++
				switch color[e.to] {
				case white:
					color[e.to] = gray
					stack = append(stack, dfsFrame{t: e.to})
				case gray:
					c.reportCycle(stack, e, adj)
					return
				}
				continue
			}
			color[f.t] = black
			stack = stack[:len(stack)-1]
		}
	}
}

// dfsFrame is one frame of the iterative cycle-detection DFS: the task and
// the index of the next out-edge to explore.
type dfsFrame struct {
	t    graph.TaskID
	next int
}

// reportCycle renders the blocking chain of the cycle closed by back edge
// `back` out of the top of the DFS stack.
func (c *checker) reportCycle(stack []dfsFrame, back waitEdge, adj [][]waitEdge) {
	// Find where the cycle starts on the stack.
	start := 0
	for i, f := range stack {
		if f.t == back.to {
			start = i
			break
		}
	}
	cyc := stack[start:]
	var b strings.Builder
	b.WriteString("potential deadlock, blocking chain: ")
	for i := len(cyc) - 1; i >= 0; i-- {
		f := cyc[i]
		fmt.Fprintf(&b, "task %q (P%d#%d)", c.g.Tasks[f.t].Name, c.s.Assign[f.t], c.pos[f.t])
		var why string
		if i > 0 {
			// The edge f took to reach the next frame down the chain.
			why = adj[f.t][f.next-1].why
		} else {
			why = back.why
		}
		fmt.Fprintf(&b, " %s -> ", why)
	}
	fmt.Fprintf(&b, "task %q (P%d#%d)", c.g.Tasks[back.to].Name, c.s.Assign[back.to], c.pos[back.to])
	top := cyc[len(cyc)-1]
	c.report(Finding{Class: ClassWaitCycle, Proc: c.s.Assign[top.t], Pos: c.pos[top.t],
		Task: top.t, Obj: back.obj, Detail: b.String()})
}

// thresholds cross-checks arrival gating against the in-edges: the protocol
// tables derive each processor's expected version count per volatile object
// from the cross-processor true-dependence producers, and gate each reader
// on an arrival threshold. A task that reads a volatile object without any
// true-dependence in-edge for it — while versions of that object do arrive
// at the processor — reads a buffer the protocol never ordered against its
// producer: a data race the sequence-number pre-assignment cannot cover.
func (c *checker) thresholds() {
	// producers[(p,o)] mirrors proto.Derive's version producers: the set of
	// distinct u* = latest-positioned cross-processor true-dependence
	// producer of o, over all readers of o on p. Its cardinality is
	// Derive's Expect count.
	type po struct {
		p graph.Proc
		o graph.ObjID
	}
	producers := make(map[po]map[graph.TaskID]bool)
	for v := range c.g.Tasks {
		p := c.s.Assign[v]
		best := make(map[graph.ObjID]graph.TaskID)
		for _, e := range c.g.In(graph.TaskID(v)) {
			if e.Kind != graph.DepTrue || c.s.Assign[e.From] == p {
				continue
			}
			if u, ok := best[e.Obj]; !ok || c.pos[e.From] > c.pos[u] {
				best[e.Obj] = e.From
			}
		}
		for o, u := range best {
			k := po{p, o}
			if producers[k] == nil {
				producers[k] = make(map[graph.TaskID]bool)
			}
			producers[k][u] = true
		}
	}
	for v := range c.g.Tasks {
		p := c.s.Assign[v]
		gated := make(map[graph.ObjID]bool)
		for _, e := range c.g.In(graph.TaskID(v)) {
			if e.Kind == graph.DepTrue && c.s.Assign[e.From] != p {
				gated[e.Obj] = true
			}
		}
		for _, o := range c.g.Tasks[v].Reads {
			if c.g.Objects[o].Owner == p {
				continue
			}
			c.check()
			if !gated[o] && len(producers[po{p, o}]) > 0 {
				c.reportOnce(Finding{Class: ClassThresholdMismatch, Proc: p, Pos: c.pos[v],
					Task: graph.TaskID(v), Obj: o,
					Detail: fmt.Sprintf("remote read not gated by any arrival threshold while %d version(s) arrive at the processor", len(producers[po{p, o}]))})
			}
		}
	}
}

// dtsBound verifies, for DTS/DTS+merge schedules, slice-monotone per-
// processor ordering and the Theorem 2 volatile-space bound: with
// immediate-free recycling, no processor's volatile need exceeds
// h = max over slices of the slice's per-processor volatile footprint
// (the additive term of the "S1/p + h" corollary).
func (c *checker) dtsBound() {
	s := c.s
	n := c.g.NumTasks()
	if s.Slices == nil || len(s.Slices) != n || s.NumSlices <= 0 {
		return
	}
	for t := 0; t < n; t++ {
		if s.Slices[t] < 0 || int(s.Slices[t]) >= s.NumSlices {
			c.report(Finding{Class: ClassDTSBound, Proc: s.Assign[t], Pos: c.pos[t],
				Task: graph.TaskID(t), Obj: graph.None,
				Detail: fmt.Sprintf("slice index %d out of range [0,%d)", s.Slices[t], s.NumSlices)})
			return
		}
	}
	for p := 0; p < s.P; p++ {
		prev := int32(-1)
		for i, t := range s.Order[p] {
			c.check()
			if s.Slices[t] < prev {
				c.report(Finding{Class: ClassDTSBound, Proc: graph.Proc(p), Pos: int32(i),
					Task: t, Obj: graph.None,
					Detail: fmt.Sprintf("slice-monotone order violated: slice %d after slice %d", s.Slices[t], prev)})
			}
			if s.Slices[t] > prev {
				prev = s.Slices[t]
			}
		}
	}
	h := sched.SliceVolatileNeed(c.g, s.Assign, s.P, s.Slices, s.NumSlices)
	var hMax int64
	for _, v := range h {
		if v > hMax {
			hMax = v
		}
	}
	// Immediate-free peak per processor: sweep the verified lifetimes.
	// Because volatile lifetimes never span slices in a valid DTS schedule,
	// this peak must stay within hMax.
	for p := 0; p < s.P; p++ {
		type ev struct {
			pos   int32
			delta int64
		}
		var evs []ev
		for o, r := range c.lifetimes[p] {
			evs = append(evs, ev{r[0], c.g.Objects[o].Size}, ev{r[1] + 1, -c.g.Objects[o].Size})
		}
		// Counting sort by position keeps this deterministic and linear.
		byPos := make([]int64, len(s.Order[p])+2)
		for _, e := range evs {
			byPos[e.pos] += e.delta
		}
		var cur, peak int64
		for _, d := range byPos {
			cur += d
			if cur > peak {
				peak = cur
			}
		}
		c.check()
		if peak > hMax {
			c.report(Finding{Class: ClassDTSBound, Proc: graph.Proc(p), Pos: graph.None,
				Task: graph.None, Obj: graph.None,
				Detail: fmt.Sprintf("immediate-free volatile peak %d exceeds Theorem 2 slice bound h=%d", peak, hMax)})
		}
	}
}
