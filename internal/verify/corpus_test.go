package verify

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/graph"
	"repro/internal/mem"
	"repro/internal/plan"
	"repro/internal/sched"
)

var update = flag.Bool("update", false, "regenerate the badplans corpus")

// corpusDir holds one golden fixture per verifier finding class. Each file
// is a checksummed lenient encoding of a deliberately defective plan; the
// expected finding class is the filename stem.
const corpusDir = "testdata/badplans"

// badPlans enumerates the corpus: fixture name -> constructor. The name must
// start with the expected finding class (it may carry a -variant suffix).
func badPlans(t *testing.T) map[string]func(t *testing.T) *plan.Artifact {
	t.Helper()
	wrap := func(s *sched.Schedule, pl *mem.Plan) *plan.Artifact {
		return &plan.Artifact{
			Fingerprint: plan.Fingerprint(s.G, []byte("badplan")),
			Model:       sched.Unit(),
			Capacity:    pl.Capacity,
			Schedule:    s,
			Mem:         pl,
		}
	}
	return map[string]func(t *testing.T) *plan.Artifact{
		"use-before-map": func(t *testing.T) *plan.Artifact {
			s, pl := figure2Plan(t, sched.RCP, 1<<30)
			p, mi, ai := firstVolatileAlloc(t, pl)
			mapp := &pl.Procs[p].MAPs[mi]
			o := mapp.Allocs[ai]
			mapp.Allocs = append(mapp.Allocs[:ai], mapp.Allocs[ai+1:]...)
			for q, objs := range mapp.Notify {
				keep := objs[:0]
				for _, oo := range objs {
					if oo != o {
						keep = append(keep, oo)
					}
				}
				if len(keep) == 0 {
					delete(mapp.Notify, q)
				} else {
					mapp.Notify[q] = keep
				}
			}
			return wrap(s, pl)
		},
		"use-after-free": func(t *testing.T) *plan.Artifact {
			// Free before last use.
			s, pl := figure2Plan(t, sched.RCP, 1<<30)
			p, mi, ai := firstVolatileAlloc(t, pl)
			mapp := &pl.Procs[p].MAPs[mi]
			o := mapp.Allocs[ai]
			last := int32(len(s.Order[p]))
			pl.Procs[p].MAPs[mi].CoverEnd = mapp.Pos + 1
			pl.Procs[p].MAPs = append(pl.Procs[p].MAPs, mem.MAP{
				Pos: mapp.Pos + 1, CoverEnd: last, Frees: []graph.ObjID{o},
			})
			return wrap(s, pl)
		},
		"double-free": func(t *testing.T) *plan.Artifact {
			s, pl := figure2Plan(t, sched.RCP, 1<<30)
			p, mi, ai := firstVolatileAlloc(t, pl)
			mapp := &pl.Procs[p].MAPs[mi]
			o := mapp.Allocs[ai]
			last := int32(len(s.Order[p]))
			pl.Procs[p].MAPs[mi].CoverEnd = last - 1
			pl.Procs[p].MAPs = append(pl.Procs[p].MAPs, mem.MAP{
				Pos: last - 1, CoverEnd: last, Frees: []graph.ObjID{o, o},
			})
			return wrap(s, pl)
		},
		"wait-cycle": func(t *testing.T) *plan.Artifact {
			s, pl := crossSchedule(t)
			return wrap(s, pl)
		},
		"budget-overflow": func(t *testing.T) *plan.Artifact {
			s, pl := figure2Plan(t, sched.RCP, 1<<30)
			pl.Capacity = 1 // far below the replayed peak; still claims executable
			return wrap(s, pl)
		},
		"threshold-mismatch": func(t *testing.T) *plan.Artifact {
			s, pl, tamper, _, _ := thresholdFixture(t)
			tamper()
			return wrap(s, pl)
		},
	}
}

func TestGenerateCorpus(t *testing.T) {
	if !*update {
		t.Skip("run with -update to regenerate the corpus")
	}
	if err := os.MkdirAll(corpusDir, 0o755); err != nil {
		t.Fatal(err)
	}
	for name, build := range badPlans(t) {
		enc, err := plan.EncodeLenient(build(t))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if err := os.WriteFile(filepath.Join(corpusDir, name+".rplan"), enc, 0o644); err != nil {
			t.Fatal(err)
		}
	}
}

// TestCorpusDetection loads every committed fixture through the lenient
// codec and asserts the verifier reports the class the filename names, with
// object-precise diagnostics for the liveness classes.
func TestCorpusDetection(t *testing.T) {
	files, err := filepath.Glob(filepath.Join(corpusDir, "*.rplan"))
	if err != nil {
		t.Fatal(err)
	}
	if len(files) < 6 {
		t.Fatalf("corpus has %d fixtures, want >= 6 (regenerate with -update)", len(files))
	}
	for _, file := range files {
		name := strings.TrimSuffix(filepath.Base(file), ".rplan")
		t.Run(name, func(t *testing.T) {
			data, err := os.ReadFile(file)
			if err != nil {
				t.Fatal(err)
			}
			a, err := plan.DecodeLenient(data)
			if err != nil {
				t.Fatalf("fixture does not decode: %v", err)
			}
			res := CheckArtifact(a)
			if res.OK() {
				t.Fatal("defective fixture verified clean")
			}
			f, ok := find(res, Class(name))
			if !ok {
				t.Fatalf("expected class %q, got %v", name, res.Findings)
			}
			switch Class(name) {
			case ClassUseBeforeMAP, ClassUseAfterFree, ClassDoubleFree:
				if f.Proc == graph.None || f.Obj == graph.None {
					t.Fatalf("liveness finding not object-precise: %+v", f)
				}
			case ClassThresholdMismatch:
				if f.Task == graph.None || f.Obj == graph.None {
					t.Fatalf("threshold finding not task-precise: %+v", f)
				}
			case ClassWaitCycle:
				if !strings.Contains(f.Detail, "blocking chain") {
					t.Fatalf("cycle finding missing chain: %+v", f)
				}
			}
		})
	}
}

// TestCorpusInSync rebuilds each fixture and checks the committed bytes
// match, so corpus drift is caught instead of silently testing stale plans.
func TestCorpusInSync(t *testing.T) {
	for name, build := range badPlans(t) {
		data, err := os.ReadFile(filepath.Join(corpusDir, name+".rplan"))
		if err != nil {
			t.Fatalf("%s: %v (regenerate with -update)", name, err)
		}
		enc, err := plan.EncodeLenient(build(t))
		if err != nil {
			t.Fatal(err)
		}
		if string(data) != string(enc) {
			t.Errorf("%s: committed fixture out of sync with its constructor (regenerate with -update)", name)
		}
	}
}
