package trisolve

import (
	"math"
	"testing"

	"repro/internal/chol"
	"repro/internal/exec"
	"repro/internal/graph"
	"repro/internal/mem"
	"repro/internal/sched"
	"repro/internal/sparse"
	"repro/internal/util"
)

func buildProblem(t *testing.T, p int) (*chol.Problem, *Problem, *sparse.Matrix, []float64, []float64) {
	t.Helper()
	rng := util.NewRNG(61)
	m := sparse.AddRandomSymLinks(sparse.Grid2D(7, 6, true), 8, rng)
	m = sparse.SPDValues(m.PermuteSym(sparse.RCM(m)), rng)
	cp, err := chol.Build(m, chol.Options{Procs: p, BlockSize: 5})
	if err != nil {
		t.Fatal(err)
	}
	factor, err := cp.SequentialFactor()
	if err != nil {
		t.Fatal(err)
	}
	xTrue := make([]float64, m.N)
	for i := range xTrue {
		xTrue[i] = rng.NormFloat64()
	}
	b := make([]float64, m.N)
	for j := 0; j < m.N; j++ {
		vals := m.ColVal(j)
		for k, i := range m.Col(j) {
			b[i] += vals[k] * xTrue[j]
		}
	}
	pr, err := Build(cp, factor, b)
	if err != nil {
		t.Fatal(err)
	}
	return cp, pr, m, b, xTrue
}

func TestGraphStructure(t *testing.T) {
	_, pr, _, _, _ := buildProblem(t, 4)
	if err := pr.G.Validate(); err != nil {
		t.Fatal(err)
	}
	if err := pr.G.CheckDependenceComplete(); err != nil {
		t.Fatal(err)
	}
	// 2 solve tasks per block column plus 2 updates per sub-diagonal block.
	subdiag := 0
	for k := 0; k < pr.NB; k++ {
		for _, i := range pr.chol.Rows[k] {
			if i > int32(k) {
				subdiag++
			}
		}
	}
	want := 2*pr.NB + 2*subdiag
	if pr.G.NumTasks() != want {
		t.Fatalf("tasks %d, want %d", pr.G.NumTasks(), want)
	}
}

func TestSequentialSolve(t *testing.T) {
	_, pr, _, _, xTrue := buildProblem(t, 2)
	x, err := pr.SequentialSolve()
	if err != nil {
		t.Fatal(err)
	}
	for i := range x {
		if math.Abs(x[i]-xTrue[i]) > 1e-8 {
			t.Fatalf("x[%d] = %v, want %v", i, x[i], xTrue[i])
		}
	}
}

func TestConcurrentSolveMatches(t *testing.T) {
	for _, h := range []sched.Heuristic{sched.RCP, sched.MPO, sched.DTS} {
		_, pr, _, _, xTrue := buildProblem(t, 4)
		assign, err := sched.OwnerComputeAssign(pr.G, 4)
		if err != nil {
			t.Fatal(err)
		}
		s, err := sched.ScheduleWith(h, pr.G, assign, 4, sched.T3D(), 1<<40)
		if err != nil {
			t.Fatal(err)
		}
		plan, err := mem.NewPlan(s, s.MinMem())
		if err != nil {
			t.Fatal(err)
		}
		if !plan.Executable {
			plan, err = mem.NewPlan(s, s.TOT())
			if err != nil || !plan.Executable {
				t.Fatal("TOT plan must be executable")
			}
		}
		res, err := exec.Run(s, plan, exec.Config{Kernel: pr.Kernel, Init: pr.InitObject})
		if err != nil {
			t.Fatalf("%v: %v", h, err)
		}
		// x segments live on their owners; gather from Perm plus any local
		// buffers (x objects are permanent on their owners, so Perm has
		// them all).
		x := pr.Assemble(res.Perm)
		for i := range x {
			if math.Abs(x[i]-xTrue[i]) > 1e-8 {
				t.Fatalf("%v: x[%d] = %v, want %v", h, i, x[i], xTrue[i])
			}
		}
	}
}

func TestInputVolatilesHaveNoProducers(t *testing.T) {
	_, pr, _, _, _ := buildProblem(t, 4)
	// L blocks must never be written by any task.
	_, writers := pr.G.Accessors()
	for id := range pr.lCoord {
		if len(writers[id]) != 0 {
			t.Fatalf("factor block %d has writers", id)
		}
	}
	_ = graph.None
}

func TestResidualThroughFullPipeline(t *testing.T) {
	// Factor concurrently, then solve concurrently, then check A·x = b.
	p := 3
	cp, _, m, b, _ := buildProblem(t, p)
	assign, err := sched.OwnerComputeAssign(cp.G, p)
	if err != nil {
		t.Fatal(err)
	}
	s, err := sched.ScheduleMPO(cp.G, assign, p, sched.T3D())
	if err != nil {
		t.Fatal(err)
	}
	plan, err := mem.NewPlan(s, s.TOT())
	if err != nil {
		t.Fatal(err)
	}
	fres, err := exec.Run(s, plan, exec.Config{Kernel: cp.Kernel, Init: cp.InitObject})
	if err != nil {
		t.Fatal(err)
	}
	pr2, err := Build(cp, fres.Perm, b)
	if err != nil {
		t.Fatal(err)
	}
	assign2, err := sched.OwnerComputeAssign(pr2.G, p)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := sched.ScheduleMPO(pr2.G, assign2, p, sched.T3D())
	if err != nil {
		t.Fatal(err)
	}
	plan2, err := mem.NewPlan(s2, s2.TOT())
	if err != nil {
		t.Fatal(err)
	}
	sres, err := exec.Run(s2, plan2, exec.Config{Kernel: pr2.Kernel, Init: pr2.InitObject})
	if err != nil {
		t.Fatal(err)
	}
	x := pr2.Assemble(sres.Perm)
	// residual ‖Ax − b‖_∞ relative to ‖b‖_∞
	r := append([]float64(nil), b...)
	for j := 0; j < m.N; j++ {
		vals := m.ColVal(j)
		for k, i := range m.Col(j) {
			r[i] -= vals[k] * x[j]
		}
	}
	maxR, maxB := 0.0, 0.0
	for i := range r {
		if v := math.Abs(r[i]); v > maxR {
			maxR = v
		}
		if v := math.Abs(b[i]); v > maxB {
			maxB = v
		}
	}
	if maxR/maxB > 1e-10 {
		t.Fatalf("relative residual %v", maxR/maxB)
	}
}
