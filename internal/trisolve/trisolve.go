// Package trisolve builds distributed sparse triangular solve task graphs —
// the third workload the paper reports RAPID handling well ("RAPID is able
// to deliver good performance for sparse code such as Cholesky
// factorization and triangular solvers"). Given the 2-D block structure of
// a Cholesky factor L, it builds the task graph for
//
//	L·y = b        (forward substitution)
//	Lᵀ·x = y       (backward substitution)
//
// over block columns: solve tasks invert diagonal blocks, update tasks
// accumulate sub-diagonal contributions (commutative, like the
// factorization's updates). Vector segments y_k/x_k are owned by the owner
// of the diagonal block L[k,k]; factor blocks keep their factorization
// owners, so the communication pattern is the factor's transposed one.
//
// Factor blocks are pure inputs (no producer task): their volatile copies
// are filled during preprocessing (the executor initializes them at
// allocation), mirroring RAPID's initial data distribution.
package trisolve

import (
	"fmt"

	"repro/internal/blas"
	"repro/internal/chol"
	"repro/internal/graph"
)

type opKind uint8

const (
	opFSolve opKind = iota // y_k = L_kk^-1 y_k
	opFUpd                 // y_i -= L_ik · y_k
	opBSolve               // x_k = L_kk^-T y_k
	opBUpd                 // y_k -= L_ikᵀ · x_i
)

type taskInfo struct {
	kind opKind
	i, k int32
}

// Problem is a built triangular-solve instance (forward + backward).
type Problem struct {
	NB int
	G  *graph.DAG

	chol   *chol.Problem
	factor map[graph.ObjID][]float64 // chol object -> factored block buffer
	b      []float64

	// object maps
	lObj     map[[2]int32]graph.ObjID // (i,k) -> L block object (this graph)
	lCoord   map[graph.ObjID][2]int32
	yObj     []graph.ObjID
	xObj     []graph.ObjID
	dims     []int
	segStart []int

	info map[graph.TaskID]taskInfo
}

// Build constructs the solve graph from a factored Cholesky problem.
// factor maps the chol problem's object IDs to factored block buffers
// (e.g. chol.SequentialFactor output or a rapid.Execute report); b is the
// right-hand side.
func Build(cp *chol.Problem, factor map[graph.ObjID][]float64, b []float64) (*Problem, error) {
	if len(b) != cp.N {
		return nil, fmt.Errorf("trisolve: rhs length %d != n %d", len(b), cp.N)
	}
	pr := &Problem{
		NB:     cp.NB,
		chol:   cp,
		factor: factor,
		b:      append([]float64(nil), b...),
		lObj:   make(map[[2]int32]graph.ObjID),
		lCoord: make(map[graph.ObjID][2]int32),
		info:   make(map[graph.TaskID]taskInfo),
	}
	gb := graph.NewBuilder()

	// Geometry.
	pr.dims = make([]int, cp.NB)
	pr.segStart = make([]int, cp.NB+1)
	for k := 0; k < cp.NB; k++ {
		pr.dims[k] = cp.BlockDim(k)
		pr.segStart[k+1] = pr.segStart[k] + pr.dims[k]
	}

	// Objects: factor blocks (inputs) with the factorization's owners,
	// vector segments owned by the diagonal block's owner.
	type owned struct {
		id    graph.ObjID
		owner graph.Proc
	}
	var owners []owned
	for k := 0; k < cp.NB; k++ {
		for _, i := range cp.Rows[k] {
			co, ok := cp.BlockObj(int(i), k)
			if !ok {
				return nil, fmt.Errorf("trisolve: missing chol block (%d,%d)", i, k)
			}
			id := gb.Object(fmt.Sprintf("L[%d,%d]", i, k), int64(pr.dims[i]*pr.dims[k]))
			pr.lObj[[2]int32{i, int32(k)}] = id
			pr.lCoord[id] = [2]int32{i, int32(k)}
			owners = append(owners, owned{id, cp.G.Objects[co].Owner})
		}
	}
	pr.yObj = make([]graph.ObjID, cp.NB)
	pr.xObj = make([]graph.ObjID, cp.NB)
	for k := 0; k < cp.NB; k++ {
		diag, _ := cp.BlockObj(k, k)
		own := cp.G.Objects[diag].Owner
		pr.yObj[k] = gb.Object(fmt.Sprintf("y[%d]", k), int64(pr.dims[k]))
		owners = append(owners, owned{pr.yObj[k], own})
		pr.xObj[k] = gb.Object(fmt.Sprintf("x[%d]", k), int64(pr.dims[k]))
		owners = append(owners, owned{pr.xObj[k], own})
	}

	// Forward substitution.
	addInfo := func(t graph.TaskID, ti taskInfo) { pr.info[t] = ti }
	for k := int32(0); k < int32(cp.NB); k++ {
		dk := float64(pr.dims[k])
		diag := pr.lObj[[2]int32{k, k}]
		t := gb.Task(fmt.Sprintf("fsolve(%d)", k), dk*dk,
			[]graph.ObjID{diag, pr.yObj[k]}, []graph.ObjID{pr.yObj[k]})
		addInfo(t, taskInfo{kind: opFSolve, i: k, k: k})
		for _, i := range pr.chol.Rows[k] {
			if i <= k {
				continue
			}
			lik := pr.lObj[[2]int32{i, k}]
			t := gb.CommutativeTask(fmt.Sprintf("fupd(%d,%d)", i, k),
				2*float64(pr.dims[i])*dk,
				[]graph.ObjID{lik, pr.yObj[k], pr.yObj[i]}, []graph.ObjID{pr.yObj[i]})
			addInfo(t, taskInfo{kind: opFUpd, i: i, k: k})
		}
	}
	// Backward substitution.
	for k := int32(cp.NB) - 1; k >= 0; k-- {
		dk := float64(pr.dims[k])
		for _, i := range pr.chol.Rows[k] {
			if i <= k {
				continue
			}
			lik := pr.lObj[[2]int32{i, k}]
			t := gb.CommutativeTask(fmt.Sprintf("bupd(%d,%d)", i, k),
				2*float64(pr.dims[i])*dk,
				[]graph.ObjID{lik, pr.xObj[i], pr.yObj[k]}, []graph.ObjID{pr.yObj[k]})
			addInfo(t, taskInfo{kind: opBUpd, i: i, k: k})
		}
		diag := pr.lObj[[2]int32{k, k}]
		t := gb.Task(fmt.Sprintf("bsolve(%d)", k), dk*dk,
			[]graph.ObjID{diag, pr.yObj[k]}, []graph.ObjID{pr.xObj[k]})
		addInfo(t, taskInfo{kind: opBSolve, i: k, k: k})
	}

	g, err := gb.Build()
	if err != nil {
		return nil, fmt.Errorf("trisolve: %w", err)
	}
	for _, o := range owners {
		g.Objects[o.id].Owner = o.owner
	}
	pr.G = g
	return pr, nil
}

// InitObject fills buffers: L blocks from the factored Cholesky buffers,
// y segments from the right-hand side, x segments with zero.
func (pr *Problem) InitObject(o graph.ObjID, buf []float64) {
	if c, ok := pr.lCoord[o]; ok {
		co, _ := pr.chol.BlockObj(int(c[0]), int(c[1]))
		copy(buf, pr.factor[co])
		return
	}
	for k := 0; k < pr.NB; k++ {
		if pr.yObj[k] == o {
			copy(buf, pr.b[pr.segStart[k]:pr.segStart[k+1]])
			return
		}
		if pr.xObj[k] == o {
			for i := range buf {
				buf[i] = 0
			}
			return
		}
	}
}

// Kernel executes a solve/update task numerically.
func (pr *Problem) Kernel(t graph.TaskID, get func(graph.ObjID) []float64) error {
	ti, ok := pr.info[t]
	if !ok {
		return fmt.Errorf("trisolve: unknown task %d", t)
	}
	switch ti.kind {
	case opFSolve:
		l := get(pr.lObj[[2]int32{ti.k, ti.k}])
		y := get(pr.yObj[ti.k])
		blas.TrsvLower(pr.dims[ti.k], l, pr.dims[ti.k], y)
	case opFUpd:
		l := get(pr.lObj[[2]int32{ti.i, ti.k}])
		yk := get(pr.yObj[ti.k])
		yi := get(pr.yObj[ti.i])
		blas.GemvSub(pr.dims[ti.i], pr.dims[ti.k], l, pr.dims[ti.k], yk, yi)
	case opBUpd:
		l := get(pr.lObj[[2]int32{ti.i, ti.k}])
		xi := get(pr.xObj[ti.i])
		yk := get(pr.yObj[ti.k])
		blas.GemvTSub(pr.dims[ti.i], pr.dims[ti.k], l, pr.dims[ti.k], xi, yk)
	case opBSolve:
		l := get(pr.lObj[[2]int32{ti.k, ti.k}])
		y := get(pr.yObj[ti.k])
		x := get(pr.xObj[ti.k])
		copy(x, y)
		blas.TrsvLowerT(pr.dims[ti.k], l, pr.dims[ti.k], x)
	}
	return nil
}

// Assemble gathers the solution vector from executed x-segment buffers.
func (pr *Problem) Assemble(objects map[graph.ObjID][]float64) []float64 {
	x := make([]float64, pr.chol.N)
	for k := 0; k < pr.NB; k++ {
		copy(x[pr.segStart[k]:pr.segStart[k+1]], objects[pr.xObj[k]])
	}
	return x
}

// SequentialSolve runs the kernels in topological order (reference).
func (pr *Problem) SequentialSolve() ([]float64, error) {
	bufs := make(map[graph.ObjID][]float64, pr.G.NumObjects())
	for oi := range pr.G.Objects {
		b := make([]float64, pr.G.Objects[oi].Size)
		pr.InitObject(graph.ObjID(oi), b)
		bufs[graph.ObjID(oi)] = b
	}
	order, err := pr.G.TopoSort()
	if err != nil {
		return nil, err
	}
	get := func(o graph.ObjID) []float64 { return bufs[o] }
	for _, t := range order {
		if err := pr.Kernel(t, get); err != nil {
			return nil, err
		}
	}
	return pr.Assemble(bufs), nil
}
