// Package chol builds the 2-D block sparse Cholesky task graphs of the
// paper's first evaluation application. The input SPD matrix is partitioned
// into w×w blocks; the nonzero block pattern of the factor is computed by
// symbolic factorization and closed under block-level fill (the static
// overestimation used by RAPID so the dependence structure is fixed before
// execution). Data objects are the nonzero lower-triangular blocks A[I,J];
// tasks are the familiar right-looking kernels
//
//	Potrf_k          : A[k,k] <- chol(A[k,k])
//	Scale_ik         : A[i,k] <- A[i,k] · A[k,k]^-T
//	Update_ijk       : A[i,j] <- A[i,j] - A[i,k]·A[j,k]ᵀ   (commutative)
//
// with a 2-D cyclic block-to-processor mapping (Rothberg & Schreiber style)
// setting object owners, and the owner-compute rule assigning tasks.
package chol

import (
	"fmt"
	"math"

	"repro/internal/blas"
	"repro/internal/graph"
	"repro/internal/sparse"
)

// opKind discriminates the numeric kernel of a task.
type opKind uint8

const (
	opPotrf opKind = iota
	opScale
	opUpdate
	opSyrk
)

type taskInfo struct {
	kind    opKind
	i, j, k int32 // block coordinates
}

// Problem is a built Cholesky instance: the task graph, the block objects
// and the kernel metadata needed to execute it numerically.
type Problem struct {
	N  int // matrix order
	W  int // block size
	NB int
	P  int // processors
	G  *graph.DAG

	// Rows[J] lists block rows I >= J with a present block (post closure).
	Rows [][]int32

	blockOf map[[2]int32]graph.ObjID
	coordOf map[graph.ObjID][2]int32 // lazy inverse of blockOf
	info    []taskInfo
	dims    []int // scalar dimension of each block row/column

	// A holds the numeric input matrix when numerics are requested.
	A *sparse.Matrix
}

// Options configure the build.
type Options struct {
	// Procs is the number of processors p; the block grid is pr×pc with
	// pr·pc = p, pr as close to sqrt(p) as possible.
	Procs int
	// BlockSize w.
	BlockSize int
}

// procGrid returns pr, pc with pr*pc == p and pr <= pc, pr maximal.
func procGrid(p int) (int, int) {
	pr := int(math.Sqrt(float64(p)))
	for pr > 1 && p%pr != 0 {
		pr--
	}
	return pr, p / pr
}

// Build constructs the problem from a symmetric-pattern matrix (values
// optional; needed only for numeric execution).
func Build(a *sparse.Matrix, opt Options) (*Problem, error) {
	if opt.Procs <= 0 || opt.BlockSize <= 0 {
		return nil, fmt.Errorf("chol: invalid options %+v", opt)
	}
	if !a.IsSymmetricPattern() {
		return nil, fmt.Errorf("chol: matrix pattern is not symmetric")
	}
	bp := sparse.NewBlockPattern2D(a, opt.BlockSize)
	pr := &Problem{
		N: a.N, W: opt.BlockSize, NB: bp.NB, P: opt.Procs,
		blockOf: make(map[[2]int32]graph.ObjID),
		A:       a,
	}
	pr.dims = make([]int, bp.NB)
	for b := 0; b < bp.NB; b++ {
		pr.dims[b] = bp.BlockDim(b)
	}

	// Block-level closure: if blocks (I,k) and (J,k) are present with
	// I >= J > k, block (I,J) receives an update and must be present.
	rowSets := make([]map[int32]bool, bp.NB)
	for j := 0; j < bp.NB; j++ {
		rowSets[j] = make(map[int32]bool, len(bp.Rows[j]))
		for _, r := range bp.Rows[j] {
			rowSets[j][r] = true
		}
	}
	for k := 0; k < bp.NB; k++ {
		below := belowDiag(sortedKeys(rowSets[k]), int32(k))
		for x := 0; x < len(below); x++ {
			for y := 0; y <= x; y++ {
				rowSets[below[y]][below[x]] = true // block (I=below[x], J=below[y])
			}
		}
	}
	pr.Rows = make([][]int32, bp.NB)
	for j := 0; j < bp.NB; j++ {
		pr.Rows[j] = sortedKeys(rowSets[j])
	}

	// Objects with 2-D cyclic owners.
	gb := graph.NewBuilder()
	prp, prc := procGrid(opt.Procs)
	owners := make([]graph.Proc, 0, 1024)
	for j := 0; j < bp.NB; j++ {
		for _, i := range pr.Rows[j] {
			id := gb.Object(blockName(i, int32(j)), int64(pr.dims[i]*pr.dims[j]))
			pr.blockOf[[2]int32{i, int32(j)}] = id
			owners = append(owners, graph.Proc((int(i)%prp)*prc+(j%prc)))
		}
	}

	// Tasks in right-looking sequential order.
	for k := int32(0); k < int32(bp.NB); k++ {
		dk := pr.dims[k]
		diag := pr.blockOf[[2]int32{k, k}]
		fk := float64(dk)
		gb.Task(fmt.Sprintf("potrf(%d)", k), fk*fk*fk/3,
			[]graph.ObjID{diag}, []graph.ObjID{diag})
		pr.info = append(pr.info, taskInfo{kind: opPotrf, i: k, j: k, k: k})

		below := belowDiag(pr.Rows[k], k)
		for _, i := range below {
			bik := pr.blockOf[[2]int32{i, k}]
			gb.Task(fmt.Sprintf("scale(%d,%d)", i, k), float64(pr.dims[i])*fk*fk,
				[]graph.ObjID{diag, bik}, []graph.ObjID{bik})
			pr.info = append(pr.info, taskInfo{kind: opScale, i: i, j: k, k: k})
		}
		for x := 0; x < len(below); x++ {
			for y := 0; y <= x; y++ {
				i, j := below[x], below[y]
				bik := pr.blockOf[[2]int32{i, k}]
				bjk := pr.blockOf[[2]int32{j, k}]
				bij := pr.blockOf[[2]int32{i, j}]
				if i == j {
					gb.CommutativeTask(fmt.Sprintf("syrk(%d,%d)", i, k),
						float64(pr.dims[i])*float64(pr.dims[i])*fk,
						[]graph.ObjID{bik, bij}, []graph.ObjID{bij})
					pr.info = append(pr.info, taskInfo{kind: opSyrk, i: i, j: j, k: k})
				} else {
					gb.CommutativeTask(fmt.Sprintf("update(%d,%d,%d)", i, j, k),
						2*float64(pr.dims[i])*float64(pr.dims[j])*fk,
						[]graph.ObjID{bik, bjk, bij}, []graph.ObjID{bij})
					pr.info = append(pr.info, taskInfo{kind: opUpdate, i: i, j: j, k: k})
				}
			}
		}
	}

	g, err := gb.Build()
	if err != nil {
		return nil, fmt.Errorf("chol: %w", err)
	}
	for oi := range owners {
		g.Objects[oi].Owner = owners[oi]
	}
	pr.coordOf = make(map[graph.ObjID][2]int32, len(pr.blockOf))
	for c, id := range pr.blockOf {
		pr.coordOf[id] = c
	}
	pr.G = g
	return pr, nil
}

func blockName(i, j int32) string { return fmt.Sprintf("A[%d,%d]", i, j) }

func sortedKeys(m map[int32]bool) []int32 {
	out := make([]int32, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	// insertion sort (short lists)
	for i := 1; i < len(out); i++ {
		v := out[i]
		j := i - 1
		for j >= 0 && out[j] > v {
			out[j+1] = out[j]
			j--
		}
		out[j+1] = v
	}
	return out
}

func belowDiag(rows []int32, k int32) []int32 {
	out := make([]int32, 0, len(rows))
	for _, r := range rows {
		if r > k {
			out = append(out, r)
		}
	}
	return out
}

// BlockDim returns the scalar dimension of block row/column b.
func (pr *Problem) BlockDim(b int) int { return pr.dims[b] }

// BlockObj returns the object ID of block (i, j).
func (pr *Problem) BlockObj(i, j int) (graph.ObjID, bool) {
	id, ok := pr.blockOf[[2]int32{int32(i), int32(j)}]
	return id, ok
}

// InitObject fills buf (row-major dims[i]×dims[j]) with the values of block
// (I, J) of A; fill blocks start at zero. Used by executors to initialize
// permanent objects on their owners.
func (pr *Problem) InitObject(o graph.ObjID, buf []float64) {
	for i := range buf {
		buf[i] = 0
	}
	if pr.A == nil || pr.A.Val == nil {
		return
	}
	bi, bj := pr.blockCoords(o)
	w := pr.W
	r0, c0 := int(bi)*w, int(bj)*w
	rows, cols := pr.dims[bi], pr.dims[bj]
	for j := 0; j < cols; j++ {
		col := pr.A.Col(c0 + j)
		vals := pr.A.ColVal(c0 + j)
		for k, i := range col {
			r := int(i) - r0
			if r >= 0 && r < rows {
				if bi == bj && r < j {
					continue // keep lower triangle only
				}
				buf[r*cols+j] = vals[k]
			}
		}
	}
}

// blockCoords recovers (I, J) for an object. The inverse map is built by
// Build so that InitObject is safe to call from concurrent executors.
func (pr *Problem) blockCoords(o graph.ObjID) (int32, int32) {
	c := pr.coordOf[o]
	return c[0], c[1]
}

// Kernel executes task t numerically against the object buffers supplied by
// get. Buffers are row-major dims[i]×dims[j] blocks.
func (pr *Problem) Kernel(t graph.TaskID, get func(graph.ObjID) []float64) error {
	ti := pr.info[t]
	task := &pr.G.Tasks[t]
	switch ti.kind {
	case opPotrf:
		d := get(task.Writes[0])
		n := pr.dims[ti.k]
		return blas.Potrf(n, d, n)
	case opScale:
		diag := get(task.Reads[0])
		b := get(task.Writes[0])
		m, n := pr.dims[ti.i], pr.dims[ti.k]
		blas.TrsmRightLowerT(m, n, diag, n, b, n, false)
		return nil
	case opSyrk:
		a := get(task.Reads[0])
		c := get(task.Writes[0])
		n, k := pr.dims[ti.i], pr.dims[ti.k]
		blas.Syrk(n, k, -1, a, k, c, n)
		return nil
	case opUpdate:
		a := get(task.Reads[0]) // A[i,k]
		b := get(task.Reads[1]) // A[j,k]
		c := get(task.Writes[0])
		m, n, k := pr.dims[ti.i], pr.dims[ti.j], pr.dims[ti.k]
		blas.Gemm(false, true, m, n, k, -1, a, k, b, k, c, n)
		return nil
	}
	return fmt.Errorf("chol: unknown kernel for task %d", t)
}

// SequentialFactor runs the kernels in a sequential topological order and
// returns the block buffers, for use as a reference in tests.
func (pr *Problem) SequentialFactor() (map[graph.ObjID][]float64, error) {
	bufs := make(map[graph.ObjID][]float64, pr.G.NumObjects())
	for oi := range pr.G.Objects {
		b := make([]float64, pr.G.Objects[oi].Size)
		pr.InitObject(graph.ObjID(oi), b)
		bufs[graph.ObjID(oi)] = b
	}
	order, err := pr.G.TopoSort()
	if err != nil {
		return nil, err
	}
	get := func(o graph.ObjID) []float64 { return bufs[o] }
	for _, t := range order {
		if err := pr.Kernel(t, get); err != nil {
			return nil, fmt.Errorf("chol: task %q: %w", pr.G.Tasks[t].Name, err)
		}
	}
	return bufs, nil
}

// AssembleL expands block buffers into a dense lower-triangular factor.
func (pr *Problem) AssembleL(bufs map[graph.ObjID][]float64) []float64 {
	n := pr.N
	l := make([]float64, n*n)
	for c, id := range pr.blockOf {
		bi, bj := c[0], c[1]
		rows, cols := pr.dims[bi], pr.dims[bj]
		buf := bufs[id]
		for r := 0; r < rows; r++ {
			for q := 0; q < cols; q++ {
				gi, gj := int(bi)*pr.W+r, int(bj)*pr.W+q
				if gj > gi {
					continue
				}
				l[gi*n+gj] = buf[r*cols+q]
			}
		}
	}
	return l
}
