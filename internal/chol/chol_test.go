package chol

import (
	"math"
	"testing"

	"repro/internal/blas"
	"repro/internal/graph"
	"repro/internal/sparse"
	"repro/internal/util"
)

func testMatrix(t *testing.T, nx, ny, links int, seed uint64) *sparse.Matrix {
	t.Helper()
	rng := util.NewRNG(seed)
	m := sparse.AddRandomSymLinks(sparse.Grid2D(nx, ny, true), links, rng)
	perm := sparse.RCM(m)
	m = m.PermuteSym(perm)
	return sparse.SPDValues(m, rng)
}

func TestBuildStructure(t *testing.T) {
	a := testMatrix(t, 6, 5, 4, 1)
	pr, err := Build(a, Options{Procs: 4, BlockSize: 4})
	if err != nil {
		t.Fatal(err)
	}
	if err := pr.G.Validate(); err != nil {
		t.Fatal(err)
	}
	if err := pr.G.CheckDependenceComplete(); err != nil {
		t.Fatal(err)
	}
	// Every object must have an owner in range.
	for i := range pr.G.Objects {
		own := pr.G.Objects[i].Owner
		if own < 0 || int(own) >= 4 {
			t.Fatalf("object %d owner %d", i, own)
		}
	}
	// Diagonal blocks must exist for every block column.
	for k := 0; k < pr.NB; k++ {
		if _, ok := pr.BlockObj(k, k); !ok {
			t.Fatalf("missing diagonal block %d", k)
		}
	}
}

func TestSequentialFactorMatchesDense(t *testing.T) {
	a := testMatrix(t, 5, 4, 3, 2)
	pr, err := Build(a, Options{Procs: 2, BlockSize: 3})
	if err != nil {
		t.Fatal(err)
	}
	bufs, err := pr.SequentialFactor()
	if err != nil {
		t.Fatal(err)
	}
	l := pr.AssembleL(bufs)
	// Dense reference.
	ref := a.ToDense()
	if err := blas.Potrf(a.N, ref, a.N); err != nil {
		t.Fatal(err)
	}
	n := a.N
	for i := 0; i < n; i++ {
		for j := 0; j <= i; j++ {
			if math.Abs(l[i*n+j]-ref[i*n+j]) > 1e-8 {
				t.Fatalf("L mismatch at (%d,%d): %v vs %v", i, j, l[i*n+j], ref[i*n+j])
			}
		}
	}
}

func TestFactorResidual(t *testing.T) {
	a := testMatrix(t, 7, 6, 6, 3)
	pr, err := Build(a, Options{Procs: 4, BlockSize: 5})
	if err != nil {
		t.Fatal(err)
	}
	bufs, err := pr.SequentialFactor()
	if err != nil {
		t.Fatal(err)
	}
	l := pr.AssembleL(bufs)
	n := a.N
	// ‖A - L·Lᵀ‖_F / ‖A‖_F
	rec := make([]float64, n*n)
	blas.Gemm(false, true, n, n, n, 1, l, n, l, n, rec, n)
	ad := a.ToDense()
	num, den := 0.0, 0.0
	for i := 0; i < n; i++ {
		for j := 0; j <= i; j++ {
			d := ad[i*n+j] - rec[i*n+j]
			num += d * d
			den += ad[i*n+j] * ad[i*n+j]
		}
	}
	if r := math.Sqrt(num / den); r > 1e-12 {
		t.Fatalf("relative residual %v too large", r)
	}
}

func TestTaskCountsScaleWithFill(t *testing.T) {
	a := testMatrix(t, 8, 8, 0, 4)
	pr1, err := Build(a, Options{Procs: 2, BlockSize: 4})
	if err != nil {
		t.Fatal(err)
	}
	pr2, err := Build(a, Options{Procs: 2, BlockSize: 8})
	if err != nil {
		t.Fatal(err)
	}
	if pr1.G.NumTasks() <= pr2.G.NumTasks() {
		t.Fatalf("smaller blocks should give more tasks: %d vs %d", pr1.G.NumTasks(), pr2.G.NumTasks())
	}
	if pr1.G.NumTasks() < pr1.NB {
		t.Fatalf("fewer tasks than block columns")
	}
}

func TestOwnerComputeHolds(t *testing.T) {
	a := testMatrix(t, 6, 6, 5, 5)
	pr, err := Build(a, Options{Procs: 6, BlockSize: 4})
	if err != nil {
		t.Fatal(err)
	}
	// Every task's written object is owned by a single processor, so the
	// owner-compute rule can assign it.
	for ti := range pr.G.Tasks {
		task := &pr.G.Tasks[ti]
		if len(task.Writes) != 1 {
			t.Fatalf("task %q writes %d objects", task.Name, len(task.Writes))
		}
	}
}

func TestInitObjectLowerTriangle(t *testing.T) {
	a := testMatrix(t, 4, 4, 2, 6)
	pr, err := Build(a, Options{Procs: 2, BlockSize: 4})
	if err != nil {
		t.Fatal(err)
	}
	o, _ := pr.BlockObj(0, 0)
	buf := make([]float64, pr.G.Objects[o].Size)
	pr.InitObject(o, buf)
	w := pr.dims[0]
	for i := 0; i < w; i++ {
		for j := i + 1; j < w; j++ {
			if buf[i*w+j] != 0 {
				t.Fatalf("diagonal block has upper-triangle value at (%d,%d)", i, j)
			}
		}
	}
	if buf[0] == 0 {
		t.Fatalf("diagonal entry missing")
	}
}

func TestCostsArePositive(t *testing.T) {
	a := testMatrix(t, 5, 5, 2, 7)
	pr, err := Build(a, Options{Procs: 2, BlockSize: 3})
	if err != nil {
		t.Fatal(err)
	}
	for ti := range pr.G.Tasks {
		if pr.G.Tasks[ti].Cost <= 0 {
			t.Fatalf("task %q has non-positive cost", pr.G.Tasks[ti].Name)
		}
	}
	if pr.G.SeqSpace() <= 0 {
		t.Fatalf("sequential space must be positive")
	}
	_ = graph.None
}
