// Package proto derives the static communication tables of the RAPID-style
// execution protocol from a schedule: which completed task sends which data
// object to which processors (send points), how many deposits a consumer
// must observe before a given version of a volatile object is available
// (arrival thresholds), and the control signals implementing retained
// cross-processor precedence (anti/output) edges.
//
// The tables encode the paper's name-based consistency criterion: each
// volatile object has ONE buffer per consumer processor; successive
// versions are deposited into the same buffer, and the dependence
// completeness of the transformed graph guarantees a version is never
// overwritten before its readers have finished (Theorem 1's data
// consistency half). Versions are deduplicated so that only the last writer
// before each remote read generation actually sends.
package proto

import (
	"sort"

	"repro/internal/graph"
	"repro/internal/sched"
)

// Send is one data message a task issues after completing: object Obj to
// processor Dst, carrying version sequence number Seq (1-based) among all
// versions of Obj that Dst receives.
type Send struct {
	Obj graph.ObjID
	Dst graph.Proc
	Seq int32
}

// Need is one data requirement of a task: the arrival counter of volatile
// object Obj on the task's processor must be at least MinArrivals.
type Need struct {
	Obj         graph.ObjID
	MinArrivals int32
}

// Tables holds the derived protocol state for a schedule.
type Tables struct {
	// Sends[t] lists the data messages task t issues on completion.
	Sends [][]Send
	// Needs[t] lists the volatile-object arrival thresholds gating task t.
	Needs [][]Need
	// CtlNeed[t] is the number of cross-processor control signals task t
	// must receive (retained precedence edges).
	CtlNeed []int32
	// CtlSends[t] lists the tasks that t signals on completion.
	CtlSends [][]graph.TaskID
	// Expect[p] maps each volatile object of processor p to the total
	// number of versions p will receive (for sizing and sanity checks).
	Expect []map[graph.ObjID]int32
}

// Derive computes the protocol tables for a schedule.
func Derive(s *sched.Schedule) *Tables {
	n := s.G.NumTasks()
	t := &Tables{
		Sends:    make([][]Send, n),
		Needs:    make([][]Need, n),
		CtlNeed:  make([]int32, n),
		CtlSends: make([][]graph.TaskID, n),
		Expect:   make([]map[graph.ObjID]int32, s.P),
	}
	for p := range t.Expect {
		t.Expect[p] = make(map[graph.ObjID]int32)
	}

	// For each (object, consumer proc): the set of "version points" — for
	// every remote reader v, the producer u*(v) with the largest schedule
	// position among v's true in-edges for that object. Only those
	// producers send; all are on the object's owner so their positions
	// totally order the versions.
	type key struct {
		obj graph.ObjID
		dst graph.Proc
	}
	versionProducers := make(map[key]map[graph.TaskID]bool)
	readerStar := make(map[[2]int32]graph.TaskID) // (task, obj) -> u*

	for v := 0; v < n; v++ {
		vp := s.Assign[v]
		var perObj map[graph.ObjID]graph.TaskID
		for _, e := range s.G.In(graph.TaskID(v)) {
			if e.Kind != graph.DepTrue {
				if s.Assign[e.From] != vp {
					t.CtlNeed[v]++
					t.CtlSends[e.From] = append(t.CtlSends[e.From], graph.TaskID(v))
				}
				continue
			}
			if s.Assign[e.From] == vp {
				continue
			}
			if perObj == nil {
				perObj = make(map[graph.ObjID]graph.TaskID)
			}
			if prev, ok := perObj[e.Obj]; !ok || s.Pos[e.From] > s.Pos[prev] {
				perObj[e.Obj] = e.From
			}
		}
		for o, u := range perObj { //det:ok each key writes distinct map entries; no order dependence
			k := key{o, vp}
			m, ok := versionProducers[k]
			if !ok {
				m = make(map[graph.TaskID]bool)
				versionProducers[k] = m
			}
			m[u] = true
			readerStar[[2]int32{int32(v), int32(o)}] = u
		}
	}

	// Assign sequence numbers per (obj, dst) by producer schedule position.
	seqOf := make(map[[3]int32]int32)        // (producer, obj, dst) -> seq
	for k, prods := range versionProducers { //det:ok per-key results independent; Sends re-sorted below
		us := make([]graph.TaskID, 0, len(prods))
		for u := range prods { //det:ok collected and sorted below
			us = append(us, u)
		}
		sort.Slice(us, func(a, b int) bool { return s.Pos[us[a]] < s.Pos[us[b]] })
		for i, u := range us {
			seq := int32(i + 1)
			seqOf[[3]int32{int32(u), int32(k.obj), int32(k.dst)}] = seq
			t.Sends[u] = append(t.Sends[u], Send{Obj: k.obj, Dst: k.dst, Seq: seq})
		}
		t.Expect[k.dst][k.obj] = int32(len(us))
	}

	// Reader thresholds.
	for v := 0; v < n; v++ {
		vp := s.Assign[v]
		seen := make(map[graph.ObjID]bool)
		for _, e := range s.G.In(graph.TaskID(v)) {
			if e.Kind != graph.DepTrue || s.Assign[e.From] == vp || seen[e.Obj] {
				continue
			}
			seen[e.Obj] = true
			u := readerStar[[2]int32{int32(v), int32(e.Obj)}]
			seq := seqOf[[3]int32{int32(u), int32(e.Obj), int32(vp)}]
			t.Needs[v] = append(t.Needs[v], Need{Obj: e.Obj, MinArrivals: seq})
		}
	}
	// Deterministic ordering for reproducible executions.
	for v := 0; v < n; v++ {
		sort.Slice(t.Needs[v], func(a, b int) bool { return t.Needs[v][a].Obj < t.Needs[v][b].Obj })
		sort.Slice(t.Sends[v], func(a, b int) bool {
			sa, sb := t.Sends[v][a], t.Sends[v][b]
			if sa.Dst != sb.Dst {
				return sa.Dst < sb.Dst
			}
			return sa.Obj < sb.Obj
		})
	}
	return t
}
