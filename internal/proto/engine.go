// engine.go is the dynamic half of the protocol: a backend-agnostic Core
// that owns every REC/EXE/SND/MAP/END transition of the paper's five-state
// execution protocol (Section 3.3). The static tables (proto.Derive) say
// WHAT must be communicated; the Core decides WHEN, in the order the
// deadlock-freedom proof (Theorem 1) requires:
//
//	REC  wait for the arrival counters of the current task's volatile
//	     objects and its cross-processor control signals,
//	EXE  run the task (the driver runs or charges the kernel),
//	SND  issue the task's data messages; messages whose remote address is
//	     unknown go onto the suspended-send queue,
//	MAP  free dead volatile objects, allocate ahead, deposit address
//	     packages (retrying while a peer's single slot is occupied),
//	END  drain the suspended-send queue.
//
// Exactly one implementation of these transitions exists; the concurrent
// executor (internal/exec, wall clock, goroutines, real RMA buffers) and
// the discrete-event simulator (internal/machine, virtual clock, T3D cost
// model) are thin drivers that supply a Backend each. Because every
// transition flows through this choke point, fault injection (Faults) and
// per-state occupancy accounting (Occupancy) apply to both executors
// uniformly.
package proto

import (
	"fmt"
	"sort"

	"repro/internal/graph"
	"repro/internal/mem"
	"repro/internal/sched"
	"repro/internal/util"
)

// State enumerates the five protocol states. It indexes Occupancy.
type State int8

const (
	StateREC State = iota
	StateEXE
	StateSND
	StateMAP
	StateEND
	// NumStates is the number of protocol states (the Occupancy length).
	NumStates
)

var stateNames = [NumStates]string{"REC", "EXE", "SND", "MAP", "END"}

func (s State) String() string {
	if s < 0 || s >= NumStates {
		return fmt.Sprintf("State(%d)", int(s))
	}
	return stateNames[s]
}

// StateNames returns the five protocol state names in Occupancy order.
func StateNames() []string { return append([]string(nil), stateNames[:]...) }

// Occupancy is the time one processor spent in each protocol state,
// indexed by State. The unit is whatever clock the driver passes to the
// Core: wall-clock seconds for the concurrent executor, virtual seconds
// for the simulator.
type Occupancy [NumStates]float64

// Total returns the time accounted across all states.
func (o Occupancy) Total() float64 {
	t := 0.0
	for _, v := range o {
		t += v
	}
	return t
}

// Faults configures deterministic fault injection at the protocol's two
// message choke points. A delayed address package fails its first deposit
// attempt (the MAP retries exactly as if the peer's slot were occupied); a
// delayed data message is forced through the suspended-send queue even
// when its remote address is already known (the next CQ dispatches it).
// Decisions are pure functions of (Seed, message identity), so the
// wall-clock and virtual-clock backends delay the same messages, and a
// perturbed run must still terminate with results identical to a
// fault-free one — the protocol's liveness claim made checkable.
type Faults struct {
	// Seed selects the (deterministic) set of delayed messages.
	Seed uint64
	// AddrFrac is the fraction of address packages delayed one round.
	AddrFrac float64
	// DataFrac is the fraction of data messages forced to suspend once.
	DataFrac float64
}

// Enabled reports whether any fault injection is configured.
func (f Faults) Enabled() bool { return f.AddrFrac > 0 || f.DataFrac > 0 }

// delayData decides whether the data message snd is delayed. The key
// (Obj, Dst, Seq) identifies a message uniquely machine-wide.
func (f Faults) delayData(snd Send) bool {
	if f.DataFrac <= 0 {
		return false
	}
	h := util.Hash64(f.Seed, 0xDA7A, uint64(snd.Obj), uint64(snd.Dst), uint64(snd.Seq))
	return float64(h>>11)/float64(1<<53) < f.DataFrac
}

// delayAddr decides whether the address package of src's mapIdx-th MAP to
// dst is delayed.
func (f Faults) delayAddr(src, dst graph.Proc, mapIdx int) bool {
	if f.AddrFrac <= 0 {
		return false
	}
	h := util.Hash64(f.Seed, 0xADD2, uint64(src), uint64(dst), uint64(mapIdx))
	return float64(h>>11)/float64(1<<53) < f.AddrFrac
}

// Backend supplies a Core with the mechanics that differ between the
// wall-clock executor and the virtual-clock simulator. Every method is
// called only by the Core's own driver (one logical processor), never
// concurrently for the same Core.
type Backend interface {
	// ApplyMAP performs a MAP's frees and allocations on local memory.
	ApplyMAP(m *mem.MAP) error
	// TryNotify attempts to deposit the address package for the given
	// freshly allocated objects into dst's slot; it reports false while
	// dst has not consumed the previous package (single-slot handshake).
	TryNotify(dst graph.Proc, objs []graph.ObjID) bool
	// ReadAddresses is the RA operation: consume every address package
	// currently pending for this processor. Returns the packages consumed.
	ReadAddresses() int
	// AddrKnown reports whether the remote buffer address for snd has been
	// learned through an address package (or preprocessing).
	AddrKnown(snd Send) bool
	// SendData dispatches one data message; AddrKnown(snd) must hold.
	SendData(snd Send)
	// SendCtl delivers one control signal toward task t.
	SendCtl(t graph.TaskID)
	// CtlCount returns the control signals received for task t so far.
	CtlCount(t graph.TaskID) int32
	// Arrived returns the arrival counter of local object o and whether o
	// is currently allocated.
	Arrived(o graph.ObjID) (int32, bool)
	// FaultWake guarantees a future Poll on this processor after fault
	// injection delayed a message. The wall-clock backend busy-polls
	// anyway (no-op); the virtual-clock backend schedules a wake event,
	// since nothing else might re-examine the processor.
	FaultWake()
}

// Engine is the immutable shared state of one protocol run: the schedule,
// the MAP plan, the derived communication tables and the fault plan. Both
// executors build one Engine and drive one Core per processor off it.
type Engine struct {
	S      *sched.Schedule
	Plan   *mem.Plan
	Tables *Tables
	Faults Faults
}

// NewEngine derives the protocol tables for the schedule. The plan must be
// executable (use mem.NewPlan and check Executable first).
func NewEngine(s *sched.Schedule, plan *mem.Plan, f Faults) (*Engine, error) {
	if !plan.Executable {
		return nil, fmt.Errorf("proto: plan is not executable under capacity %d", plan.Capacity)
	}
	return &Engine{S: s, Plan: plan, Tables: Derive(s), Faults: f}, nil
}

// StatusKind classifies what a Core needs from its driver next.
type StatusKind int8

const (
	// Blocked: the processor cannot advance. The driver must Poll (RA/CQ)
	// and call Advance again once something may have changed.
	Blocked StatusKind = iota
	// RunTask: the driver runs (executor) or charges (simulator) the
	// kernel of Status.Task, then calls TaskDone.
	RunTask
	// RunMAP: the MAP's memory work has been applied and its address
	// packages queued; the driver charges the MAP cost, if any, then calls
	// Advance again (which deposits the queued packages).
	RunMAP
	// Finished: all tasks ran and the suspended-send queue is empty.
	Finished
)

// Status is the result of one Advance call.
type Status struct {
	Kind StatusKind
	// State is the blocking protocol state when Kind == Blocked.
	State State
	// Task is the task to run when Kind == RunTask.
	Task graph.TaskID
	// MAP is the executed allocation point when Kind == RunMAP.
	MAP *mem.MAP
}

// Stats counts the protocol events of one processor.
type Stats struct {
	// MAPs is the number of memory allocation points executed.
	MAPs int
	// TasksRun is the number of tasks completed.
	TasksRun int
	// DataSent is the number of data messages dispatched (direct + queue).
	DataSent int
	// DataSuspended is the number of sends that went through the
	// suspended-send queue (address unknown at SND, or fault-delayed).
	DataSuspended int
	// CtlSent is the number of control signals issued.
	CtlSent int
	// AddrConsumed is the number of address packages read (RA).
	AddrConsumed int
	// FaultsInjected is the number of messages fault injection delayed.
	FaultsInjected int
}

// pendPkg is one not-yet-deposited address package of the current MAP.
type pendPkg struct {
	dst     graph.Proc
	objs    []graph.ObjID
	delayed bool
}

// Core is the per-processor protocol state machine. Drivers loop on
// Advance, acting on the returned Status, and call Poll in every blocking
// state — the RA/CQ discipline the deadlock-freedom proof requires.
type Core struct {
	eng   *Engine
	be    Backend
	p     graph.Proc
	order []graph.TaskID
	maps  []mem.MAP

	pos       int32
	mapIdx    int
	pend      []pendPkg
	suspended []Send
	curTask   graph.TaskID

	// Stats accumulates protocol event counts; read it after Finished.
	Stats Stats

	occ      Occupancy
	cur      State
	tracking bool
	stamp    float64
}

// NewCore returns the protocol state machine for processor p backed by be.
func (e *Engine) NewCore(p graph.Proc, be Backend) *Core {
	return &Core{
		eng:   e,
		be:    be,
		p:     p,
		order: e.S.Order[p],
		maps:  e.Plan.Procs[p].MAPs,
	}
}

// Proc returns the processor this core drives.
func (c *Core) Proc() graph.Proc { return c.p }

// Pos returns the current position in the processor's task order.
func (c *Core) Pos() int32 { return c.pos }

// SuspendedLen returns the current suspended-send queue length.
func (c *Core) SuspendedLen() int { return len(c.suspended) }

// CurrentState returns the protocol state the core last entered.
func (c *Core) CurrentState() State { return c.cur }

// Occupancy returns the per-state time accumulated so far.
func (c *Core) Occupancy() Occupancy { return c.occ }

// enter switches occupancy accounting to state s at time now.
func (c *Core) enter(s State, now float64) {
	if c.tracking {
		c.occ[c.cur] += now - c.stamp
	}
	c.cur, c.stamp, c.tracking = s, now, true
}

// closeOcc stops occupancy accounting (the processor is done).
func (c *Core) closeOcc(now float64) {
	if c.tracking {
		c.occ[c.cur] += now - c.stamp
		c.tracking = false
	}
}

// Advance moves the processor to its next protocol decision point and
// tells the driver what to do. It never blocks.
func (c *Core) Advance(now float64) (Status, error) {
	// Finish the MAP handshake: deposit queued address packages, retrying
	// while a destination's single slot is occupied.
	if len(c.pend) > 0 {
		if !c.flushNotify() {
			c.enter(StateMAP, now)
			return Status{Kind: Blocked, State: StateMAP}, nil
		}
	}
	// MAP state: at most one allocation point per order position.
	if c.mapIdx < len(c.maps) && c.maps[c.mapIdx].Pos == c.pos {
		m := &c.maps[c.mapIdx]
		c.mapIdx++
		c.Stats.MAPs++
		c.enter(StateMAP, now)
		if err := c.be.ApplyMAP(m); err != nil {
			return Status{}, err
		}
		c.queueNotify(m)
		return Status{Kind: RunMAP, MAP: m}, nil
	}
	// END state: out of tasks, drain the suspended queue.
	if int(c.pos) >= len(c.order) {
		if len(c.suspended) > 0 {
			c.enter(StateEND, now)
			return Status{Kind: Blocked, State: StateEND}, nil
		}
		c.closeOcc(now)
		return Status{Kind: Finished}, nil
	}
	// REC state for the next task.
	t := c.order[c.pos]
	c.curTask = t
	ok, err := c.ready(t)
	if err != nil {
		return Status{}, err
	}
	if !ok {
		c.enter(StateREC, now)
		return Status{Kind: Blocked, State: StateREC, Task: t}, nil
	}
	// EXE state: hand the task to the driver.
	c.enter(StateEXE, now)
	return Status{Kind: RunTask, Task: t}, nil
}

// queueNotify stages the MAP's address packages in deterministic
// destination order and applies the fault plan to each.
func (c *Core) queueNotify(m *mem.MAP) {
	if len(m.Notify) == 0 {
		return
	}
	dsts := make([]graph.Proc, 0, len(m.Notify))
	for dst := range m.Notify {
		dsts = append(dsts, dst)
	}
	sort.Slice(dsts, func(i, j int) bool { return dsts[i] < dsts[j] })
	for _, dst := range dsts {
		c.pend = append(c.pend, pendPkg{
			dst:     dst,
			objs:    m.Notify[dst],
			delayed: c.eng.Faults.delayAddr(c.p, dst, c.mapIdx-1),
		})
	}
}

// flushNotify attempts every pending address package once and reports
// whether all went out. A fault-delayed package skips one attempt.
func (c *Core) flushNotify() bool {
	kept := c.pend[:0]
	for i := range c.pend {
		pk := c.pend[i]
		if pk.delayed {
			pk.delayed = false
			c.Stats.FaultsInjected++
			c.be.FaultWake()
			kept = append(kept, pk)
			continue
		}
		if !c.be.TryNotify(pk.dst, pk.objs) {
			kept = append(kept, pk)
		}
	}
	c.pend = kept
	return len(c.pend) == 0
}

// ready implements the REC condition for task t: all cross-processor
// control signals received and every volatile input's arrival counter at
// its threshold.
func (c *Core) ready(t graph.TaskID) (bool, error) {
	if c.be.CtlCount(t) < c.eng.Tables.CtlNeed[t] {
		return false, nil
	}
	for _, need := range c.eng.Tables.Needs[t] {
		got, ok := c.be.Arrived(need.Obj)
		if !ok {
			return false, fmt.Errorf("proto: proc %d task %q needs unallocated object %q (MAP plan hole)",
				c.p, c.eng.S.G.Tasks[t].Name, c.eng.S.G.Objects[need.Obj].Name)
		}
		if got < need.MinArrivals {
			return false, nil
		}
	}
	return true, nil
}

// TaskDone records completion of the task last returned by Advance and
// performs the SND state: data messages whose remote address is unknown —
// or that fault injection delays — go onto the suspended-send queue.
func (c *Core) TaskDone(now float64) {
	c.enter(StateSND, now)
	t := c.curTask
	c.Stats.TasksRun++
	for _, snd := range c.eng.Tables.Sends[t] {
		if c.eng.Faults.delayData(snd) {
			c.Stats.FaultsInjected++
			c.Stats.DataSuspended++
			c.suspended = append(c.suspended, snd)
			c.be.FaultWake()
			continue
		}
		if !c.be.AddrKnown(snd) {
			c.Stats.DataSuspended++
			c.suspended = append(c.suspended, snd)
			continue
		}
		c.be.SendData(snd)
		c.Stats.DataSent++
	}
	for _, v := range c.eng.Tables.CtlSends[t] {
		c.be.SendCtl(v)
		c.Stats.CtlSent++
	}
	c.pos++
}

// Poll runs RA (read address packages) then CQ (dispatch suspended sends
// whose addresses are now known, FIFO per (object, destination)) — the two
// operations the protocol requires in every blocking state. It reports
// whether any message moved, which drivers use as a progress signal.
func (c *Core) Poll(now float64) bool {
	_ = now
	progress := false
	if n := c.be.ReadAddresses(); n > 0 {
		c.Stats.AddrConsumed += n
		progress = true
	}
	if len(c.suspended) > 0 {
		blocked := make(map[[2]int32]bool)
		kept := c.suspended[:0]
		for _, snd := range c.suspended {
			k := [2]int32{int32(snd.Obj), int32(snd.Dst)}
			if blocked[k] || !c.be.AddrKnown(snd) {
				blocked[k] = true
				kept = append(kept, snd)
				continue
			}
			c.be.SendData(snd)
			c.Stats.DataSent++
			progress = true
		}
		c.suspended = kept
	}
	return progress
}

// BlockedInfo describes what the processor is currently waiting on, for
// watchdog timeouts (executor) and deadlock reports (simulator).
func (c *Core) BlockedInfo() string {
	g := c.eng.S.G
	switch {
	case len(c.pend) > 0:
		dsts := make([]graph.Proc, len(c.pend))
		for i, pk := range c.pend {
			dsts[i] = pk.dst
		}
		return fmt.Sprintf("MAP state: waiting to deposit address packages to processors %v (previous package not yet consumed)", dsts)
	case int(c.pos) >= len(c.order):
		if len(c.suspended) > 0 {
			snd := c.suspended[0]
			return fmt.Sprintf("END state: draining %d suspended sends, head is object %q to processor %d (address not yet received)",
				len(c.suspended), g.Objects[snd.Obj].Name, snd.Dst)
		}
		return "finished"
	default:
		t := c.order[c.pos]
		if have, want := c.be.CtlCount(t), c.eng.Tables.CtlNeed[t]; have < want {
			return fmt.Sprintf("REC state: task %q at position %d waiting for control signals (%d/%d)",
				g.Tasks[t].Name, c.pos, have, want)
		}
		for _, need := range c.eng.Tables.Needs[t] {
			got, ok := c.be.Arrived(need.Obj)
			if !ok {
				return fmt.Sprintf("REC state: task %q needs unallocated object %q", g.Tasks[t].Name, g.Objects[need.Obj].Name)
			}
			if got < need.MinArrivals {
				return fmt.Sprintf("REC state: task %q at position %d waiting for object %q (arrivals %d/%d)",
					g.Tasks[t].Name, c.pos, g.Objects[need.Obj].Name, got, need.MinArrivals)
			}
		}
		return fmt.Sprintf("ready at task %q, position %d", g.Tasks[t].Name, c.pos)
	}
}
