// engine.go is the dynamic half of the protocol: a backend-agnostic Core
// that owns every REC/EXE/SND/MAP/END transition of the paper's five-state
// execution protocol (Section 3.3). The static tables (proto.Derive) say
// WHAT must be communicated; the Core decides WHEN, in the order the
// deadlock-freedom proof (Theorem 1) requires:
//
//	REC  wait for the arrival counters of the current task's volatile
//	     objects and its cross-processor control signals,
//	EXE  run the task (the driver runs or charges the kernel),
//	SND  issue the task's data messages; messages whose remote address is
//	     unknown go onto the suspended-send queue,
//	MAP  free dead volatile objects, allocate ahead, deposit address
//	     packages (retrying while a peer's single slot is occupied),
//	END  drain the suspended-send queue.
//
// Exactly one implementation of these transitions exists; the concurrent
// executor (internal/exec, wall clock, goroutines, real RMA buffers) and
// the discrete-event simulator (internal/machine, virtual clock, T3D cost
// model) are thin drivers that supply a Backend each. Because every
// transition flows through this choke point, fault injection (Faults) and
// per-state occupancy accounting (Occupancy) apply to both executors
// uniformly.
package proto

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/graph"
	"repro/internal/mem"
	"repro/internal/sched"
	"repro/internal/util"
)

// State enumerates the five protocol states. It indexes Occupancy.
type State int8

const (
	StateREC State = iota
	StateEXE
	StateSND
	StateMAP
	StateEND
	// NumStates is the number of protocol states (the Occupancy length).
	NumStates
)

var stateNames = [NumStates]string{"REC", "EXE", "SND", "MAP", "END"}

func (s State) String() string {
	if s < 0 || s >= NumStates {
		return fmt.Sprintf("State(%d)", int(s))
	}
	return stateNames[s]
}

// StateNames returns the five protocol state names in Occupancy order.
func StateNames() []string { return append([]string(nil), stateNames[:]...) }

// Occupancy is the time one processor spent in each protocol state,
// indexed by State. The unit is whatever clock the driver passes to the
// Core: wall-clock seconds for the concurrent executor, virtual seconds
// for the simulator.
type Occupancy [NumStates]float64

// Total returns the time accounted across all states.
func (o Occupancy) Total() float64 {
	t := 0.0
	for _, v := range o {
		t += v
	}
	return t
}

// Faults configures deterministic fault injection at the protocol's two
// message choke points. A delayed address package fails its first deposit
// attempt (the MAP retries exactly as if the peer's slot were occupied); a
// delayed data message is forced through the suspended-send queue even
// when its remote address is already known (the next CQ dispatches it).
// A *dropped* message is lost in transit — the receiver never sees it —
// and the sender's reliability layer retransmits it after a timeout with
// exponential backoff; a *duplicated* message is delivered twice and the
// receiver's sequence-number dedup discards the second copy.
// Decisions are pure functions of (Seed, message identity, attempt
// number), so the wall-clock and virtual-clock backends fail the same
// transmissions, and a perturbed run must still terminate with results
// identical to a fault-free one — the protocol's liveness claim, and now
// Theorem 1's every-message-is-delivered assumption, made checkable.
type Faults struct {
	// Seed selects the (deterministic) set of perturbed messages.
	Seed uint64
	// AddrFrac is the fraction of address packages delayed one round.
	AddrFrac float64
	// DataFrac is the fraction of data messages forced to suspend once.
	DataFrac float64
	// DropFrac is the fraction of transmissions (address packages and data
	// messages) lost in transit. Each retransmission attempt rolls again,
	// so a message is lost for good only when MaxRetries is exhausted.
	DropFrac float64
	// DupFrac is the fraction of delivered data messages and address
	// packages that arrive twice; receivers discard the extra copy.
	DupFrac float64
	// RTO is the base retransmission timeout in clock seconds (wall-clock
	// for the executor, virtual for the simulator). 0 means DefaultRTO.
	RTO float64
	// Backoff multiplies the timeout after every lost transmission.
	// 0 means DefaultBackoff.
	Backoff float64
	// MaxRetries caps the retransmissions of one message; exceeding it
	// aborts the run with an error. 0 means DefaultMaxRetries.
	MaxRetries int
}

// Reliability-layer defaults (used when the corresponding Faults field is
// zero). The RTO is deliberately far above the simulated network latency
// and far below the executor watchdog window, so both clocks resolve a
// retransmission without tripping liveness checks.
const (
	DefaultRTO        = 50e-6
	DefaultBackoff    = 2.0
	DefaultMaxRetries = 12
)

// Enabled reports whether any fault injection is configured.
func (f Faults) Enabled() bool {
	return f.AddrFrac > 0 || f.DataFrac > 0 || f.DropFrac > 0 || f.DupFrac > 0
}

func (f Faults) maxRetries() int {
	if f.MaxRetries <= 0 {
		return DefaultMaxRetries
	}
	return f.MaxRetries
}

// rto returns the retransmission timeout after the attempt-th lost
// transmission (1-based): RTO · Backoff^(attempt−1).
func (f Faults) rto(attempt int32) float64 {
	d := f.RTO
	if d <= 0 {
		d = DefaultRTO
	}
	b := f.Backoff
	if b <= 0 {
		b = DefaultBackoff
	}
	for i := int32(1); i < attempt; i++ {
		d *= b
	}
	return d
}

// hit converts a hash to a [0,1) coin toss against frac.
func hit(h uint64, frac float64) bool {
	return frac > 0 && float64(h>>11)/float64(1<<53) < frac
}

// delayData decides whether the data message snd is delayed. The key
// (Obj, Dst, Seq) identifies a message uniquely machine-wide.
func (f Faults) delayData(snd Send) bool {
	return hit(util.Hash64(f.Seed, 0xDA7A, uint64(snd.Obj), uint64(snd.Dst), uint64(snd.Seq)), f.DataFrac)
}

// delayAddr decides whether the address package of src's mapIdx-th MAP to
// dst is delayed.
func (f Faults) delayAddr(src, dst graph.Proc, mapIdx int) bool {
	return hit(util.Hash64(f.Seed, 0xADD2, uint64(src), uint64(dst), uint64(mapIdx)), f.AddrFrac)
}

// dropData decides whether the attempt-th transmission (1-based) of data
// message snd is lost in transit. The attempt number is part of the key so
// a retransmission can succeed where the original was lost — and because
// the attempt sequence of a message is itself deterministic, both backends
// lose exactly the same transmissions.
func (f Faults) dropData(snd Send, attempt int32) bool {
	return hit(util.Hash64(f.Seed, 0xD209, uint64(snd.Obj), uint64(snd.Dst), uint64(snd.Seq), uint64(attempt)), f.DropFrac)
}

// dupData decides whether the (eventually delivered) data message snd
// arrives in duplicate.
func (f Faults) dupData(snd Send) bool {
	return hit(util.Hash64(f.Seed, 0xD0B1, uint64(snd.Obj), uint64(snd.Dst), uint64(snd.Seq)), f.DupFrac)
}

// dropAddr decides whether the attempt-th transmission of src's seq-th
// address package to dst is lost in transit.
func (f Faults) dropAddr(src, dst graph.Proc, seq, attempt int32) bool {
	return hit(util.Hash64(f.Seed, 0xAD09, uint64(src), uint64(dst), uint64(seq), uint64(attempt)), f.DropFrac)
}

// dupAddr decides whether src's seq-th address package to dst arrives in
// duplicate.
func (f Faults) dupAddr(src, dst graph.Proc, seq int32) bool {
	return hit(util.Hash64(f.Seed, 0xADB1, uint64(src), uint64(dst), uint64(seq)), f.DupFrac)
}

// Backend supplies a Core with the mechanics that differ between the
// wall-clock executor and the virtual-clock simulator. Every method is
// called only by the Core's own driver (one logical processor), never
// concurrently for the same Core.
type Backend interface {
	// ApplyMAP performs a MAP's frees and allocations on local memory.
	ApplyMAP(m *mem.MAP) error
	// TryNotify attempts to deposit the address package for the given
	// freshly allocated objects into dst's slot; it reports false while
	// dst has not consumed the previous package (single-slot handshake).
	// seq is the package's per-(src,dst) sequence number; receivers use it
	// to discard duplicated deliveries.
	TryNotify(dst graph.Proc, objs []graph.ObjID, seq int32) bool
	// ReadAddresses is the RA operation: consume every address package
	// currently pending for this processor. Returns the packages consumed.
	ReadAddresses() int
	// AddrKnown reports whether the remote buffer address for snd has been
	// learned through an address package (or preprocessing).
	AddrKnown(snd Send) bool
	// SendData dispatches one data message; AddrKnown(snd) must hold.
	SendData(snd Send)
	// SendCtl delivers one control signal toward task t.
	SendCtl(t graph.TaskID)
	// CtlCount returns the control signals received for task t so far.
	CtlCount(t graph.TaskID) int32
	// Arrived returns the arrival counter of local object o and whether o
	// is currently allocated.
	Arrived(o graph.ObjID) (int32, bool)
	// WakeAfter registers a wake timer: the backend must guarantee this
	// processor's driver runs Poll and Advance again no later than delay
	// clock seconds from now (delay 0: as soon as possible). The Core arms
	// it whenever its next step depends on time rather than on a peer's
	// deposit — fault-delayed messages and retransmission timers (RTO with
	// backoff) — so a driver may park the processor between events without
	// losing liveness. The contract is binding for both backends: the
	// wall-clock executor schedules the wake on its timer wheel, the
	// virtual-clock simulator pushes a wake event.
	WakeAfter(delay float64)
}

// Engine is the immutable shared state of one protocol run: the schedule,
// the MAP plan, the derived communication tables and the fault plan. Both
// executors build one Engine and drive one Core per processor off it.
type Engine struct {
	S      *sched.Schedule
	Plan   *mem.Plan
	Tables *Tables
	Faults Faults
}

// deriveMemo caches Derive results by schedule identity. Tables are pure
// functions of the schedule and are never written after Derive, so every
// engine over the same *Schedule — repeated executor runs of a cached
// plan, the two backends of an equivalence check — can share one set. The
// ring is small and overwritten FIFO; the memo exists to amortize the
// inspector phase across executions of one schedule, not to be a cache of
// record. Callers must treat schedules as immutable once built (every
// schedule in this repository is).
var (
	deriveMu   sync.Mutex
	deriveMemo [8]struct {
		s *sched.Schedule
		t *Tables
	}
	deriveNext int
)

func deriveCached(s *sched.Schedule) *Tables {
	deriveMu.Lock()
	for i := range deriveMemo {
		if deriveMemo[i].s == s {
			t := deriveMemo[i].t
			deriveMu.Unlock()
			return t
		}
	}
	deriveMu.Unlock()
	t := Derive(s)
	deriveMu.Lock()
	deriveMemo[deriveNext] = struct {
		s *sched.Schedule
		t *Tables
	}{s, t}
	deriveNext = (deriveNext + 1) % len(deriveMemo)
	deriveMu.Unlock()
	return t
}

// NewEngine derives the protocol tables for the schedule (memoized by
// schedule identity — the inspector runs once per schedule, not once per
// execution). The plan must be executable (use mem.NewPlan and check
// Executable first).
func NewEngine(s *sched.Schedule, plan *mem.Plan, f Faults) (*Engine, error) {
	if !plan.Executable {
		return nil, fmt.Errorf("proto: plan is not executable under capacity %d", plan.Capacity)
	}
	return &Engine{S: s, Plan: plan, Tables: deriveCached(s), Faults: f}, nil
}

// WaitKind classifies what a Blocked processor is waiting on. Drivers use
// it to decide what event can unblock the processor (and watchdogs report
// it, so a stall dump says not just *that* a processor is parked but *why*).
type WaitKind int8

const (
	// WaitNone: the processor is not blocked.
	WaitNone WaitKind = iota
	// WaitArrival: REC — a volatile input's arrival counter is below its
	// threshold; a peer's data deposit unblocks.
	WaitArrival
	// WaitCtl: REC — cross-processor control signals outstanding; a peer's
	// task completion unblocks.
	WaitCtl
	// WaitAddrSlot: MAP — a destination has not consumed the previous
	// address package; the destination's next RA unblocks.
	WaitAddrSlot
	// WaitAddr: SND/END — a queued data message's remote buffer address has
	// not been learned yet; the consumer's address package unblocks.
	WaitAddr
	// WaitTimer: a retransmission (or fault-delay) timer must expire before
	// the next transmission attempt; only time unblocks.
	WaitTimer
)

var waitNames = [...]string{"none", "arrival", "ctl", "addr-slot", "addr", "timer"}

func (k WaitKind) String() string {
	if k < 0 || int(k) >= len(waitNames) {
		return fmt.Sprintf("WaitKind(%d)", int(k))
	}
	return waitNames[k]
}

// Wait describes what a Blocked processor is waiting on: the reason plus
// the identity of the thing being waited for. It is diagnostic AND
// operational: an event-driven driver may park the processor until the
// matching event (or Due, when a timer is armed) instead of polling.
type Wait struct {
	Kind WaitKind
	// Obj is the waited-on object (WaitArrival, WaitAddr).
	Obj graph.ObjID
	// Task is the gated task (WaitArrival, WaitCtl).
	Task graph.TaskID
	// Dst is the peer processor involved (WaitAddrSlot, WaitAddr).
	Dst graph.Proc
	// Have/Want are counter progress for WaitArrival and WaitCtl.
	Have, Want int32
	// Due is the earliest armed retransmission deadline among this
	// processor's queued messages, in clock seconds (0: no timer armed).
	// The driver's WakeAfter timer already covers it; Due makes the
	// deadline visible to watchdogs and tests.
	Due float64
}

// StatusKind classifies what a Core needs from its driver next.
type StatusKind int8

const (
	// Blocked: the processor cannot advance. Status.Wait says what it is
	// waiting on. The driver must Poll (RA/CQ) and call Advance again once
	// something may have changed — for an event-driven driver, after the
	// next wake signal or WakeAfter timer.
	Blocked StatusKind = iota
	// RunTask: the driver runs (executor) or charges (simulator) the
	// kernel of Status.Task, then calls TaskDone.
	RunTask
	// RunMAP: the MAP's memory work has been applied and its address
	// packages queued; the driver charges the MAP cost, if any, then calls
	// Advance again (which deposits the queued packages).
	RunMAP
	// Finished: all tasks ran and the suspended-send queue is empty.
	Finished
)

// Status is the result of one Advance call.
type Status struct {
	Kind StatusKind
	// State is the blocking protocol state when Kind == Blocked.
	State State
	// Wait is what the processor is waiting on when Kind == Blocked.
	Wait Wait
	// Task is the task to run when Kind == RunTask.
	Task graph.TaskID
	// MAP is the executed allocation point when Kind == RunMAP.
	MAP *mem.MAP
}

// Stats counts the protocol events of one processor.
type Stats struct {
	// MAPs is the number of memory allocation points executed.
	MAPs int
	// TasksRun is the number of tasks completed.
	TasksRun int
	// DataSent is the number of data messages dispatched (direct + queue).
	DataSent int
	// DataSuspended is the number of sends that went through the
	// suspended-send queue (address unknown at SND, or fault-delayed).
	DataSuspended int
	// CtlSent is the number of control signals issued.
	CtlSent int
	// AddrConsumed is the number of address packages read (RA), net of
	// discarded duplicates.
	AddrConsumed int
	// FaultsInjected is the number of messages fault injection delayed.
	FaultsInjected int
	// Dropped is the number of transmissions (data messages and address
	// packages) this processor lost to injected message loss.
	Dropped int
	// Retransmits is the number of retransmissions this processor
	// performed after losing a transmission (attempts beyond the first).
	Retransmits int
	// DupsSent is the number of duplicate copies injected into this
	// processor's deliveries; every one is discarded by the receiver's
	// sequence-number dedup.
	DupsSent int
	// Acked is the number of transmissions confirmed delivered exactly
	// once (data messages plus address packages).
	Acked int
	// BlockedAdvances counts the Advance calls that returned Blocked — the
	// driver-visible spin count. An event-driven driver advances a blocked
	// processor only when something changed, so this stays within a small
	// factor of the machine's message count; a busy-polling driver shows
	// orders of magnitude more. It is timing-dependent and deliberately NOT
	// part of the backend-equivalence comparison.
	BlockedAdvances int
}

// Reliability summarizes the ack/retransmit layer for one processor.
// Retransmits, Dropped, DupsSent and Acked are sender-side (from Stats);
// DupDropped is receiver-side, counted by the backend that discarded the
// duplicate deliveries. Machine-wide, DupsSent must equal DupDropped.
type Reliability struct {
	// Retransmits is the number of retransmissions performed.
	Retransmits int
	// Dropped is the number of transmissions lost to injected faults.
	Dropped int
	// DupsSent is the number of duplicate copies injected into deliveries.
	DupsSent int
	// DupDropped is the number of duplicate deliveries this processor's
	// receivers discarded via sequence-number dedup.
	DupDropped int
	// Acked is the number of transmissions confirmed delivered.
	Acked int
}

// Reliability extracts the sender-side reliability counters, attaching the
// receiver-side duplicate-discard count the backend observed.
func (s Stats) Reliability(dupDropped int) Reliability {
	return Reliability{
		Retransmits: s.Retransmits,
		Dropped:     s.Dropped,
		DupsSent:    s.DupsSent,
		DupDropped:  dupDropped,
		Acked:       s.Acked,
	}
}

// SumReliability folds per-processor reliability counters into a
// machine-wide total.
func SumReliability(rs []Reliability) Reliability {
	var t Reliability
	for _, r := range rs {
		t.Retransmits += r.Retransmits
		t.Dropped += r.Dropped
		t.DupsSent += r.DupsSent
		t.DupDropped += r.DupDropped
		t.Acked += r.Acked
	}
	return t
}

// pendPkg is one not-yet-deposited address package of the current MAP.
type pendPkg struct {
	dst  graph.Proc
	objs []graph.ObjID
	// seq is the per-(src,dst) package sequence number (1-based).
	seq     int32
	delayed bool
	// dup marks an injected duplicate copy of an already-delivered
	// package; it skips loss/duplication rolls and is discarded by the
	// receiver's dedup when it lands.
	dup bool
	// attempt counts transmissions lost so far; due is the time the next
	// retransmission may go out.
	attempt int32
	due     float64
}

// outSend is one data message in the outbound (suspended-send) queue:
// waiting for its remote address, for a retransmission timer, or for an
// earlier message with the same (object, destination) to be delivered
// first (per-key FIFO keeps versions arriving in sequence order).
type outSend struct {
	snd     Send
	attempt int32
	due     float64
}

func sendKey(snd Send) [2]int32 { return [2]int32{int32(snd.Obj), int32(snd.Dst)} }

// Core is the per-processor protocol state machine. Drivers loop on
// Advance, acting on the returned Status, and call Poll in every blocking
// state — the RA/CQ discipline the deadlock-freedom proof requires.
type Core struct {
	eng   *Engine
	be    Backend
	p     graph.Proc
	order []graph.TaskID
	maps  []mem.MAP

	pos     int32
	mapIdx  int
	pend    []pendPkg
	curTask graph.TaskID

	// outq is the outbound data-message queue (the paper's suspended-send
	// queue, extended with retransmission state); outKeys counts queued
	// entries per (object, destination) so fresh sends cannot overtake a
	// queued predecessor of the same key.
	outq    []outSend
	outKeys map[[2]int32]int
	// addrSeq numbers the address packages sent to each destination.
	addrSeq []int32
	// err latches a fatal protocol error (retry budget exhausted) that the
	// next Advance surfaces.
	err error

	// Stats accumulates protocol event counts; read it after Finished.
	Stats Stats

	occ      Occupancy
	cur      State
	tracking bool
	stamp    float64
}

// NewCore returns the protocol state machine for processor p backed by be.
func (e *Engine) NewCore(p graph.Proc, be Backend) *Core {
	return &Core{
		eng:     e,
		be:      be,
		p:       p,
		order:   e.S.Order[p],
		maps:    e.Plan.Procs[p].MAPs,
		addrSeq: make([]int32, e.S.P),
	}
}

// Proc returns the processor this core drives.
func (c *Core) Proc() graph.Proc { return c.p }

// Pos returns the current position in the processor's task order.
func (c *Core) Pos() int32 { return c.pos }

// SuspendedLen returns the current outbound (suspended-send) queue length.
func (c *Core) SuspendedLen() int { return len(c.outq) }

// RetransPending returns the number of queued messages — data sends plus
// address packages — currently awaiting a retransmission timer after an
// injected loss. Watchdogs report it to make loss-induced stalls
// diagnosable.
func (c *Core) RetransPending() int {
	n := 0
	for i := range c.outq {
		if c.outq[i].attempt > 0 {
			n++
		}
	}
	for i := range c.pend {
		if c.pend[i].attempt > 0 {
			n++
		}
	}
	return n
}

// CurrentState returns the protocol state the core last entered.
func (c *Core) CurrentState() State { return c.cur }

// Occupancy returns the per-state time accumulated so far.
func (c *Core) Occupancy() Occupancy { return c.occ }

// enter switches occupancy accounting to state s at time now.
func (c *Core) enter(s State, now float64) {
	if c.tracking {
		c.occ[c.cur] += now - c.stamp
	}
	c.cur, c.stamp, c.tracking = s, now, true
}

// closeOcc stops occupancy accounting (the processor is done).
func (c *Core) closeOcc(now float64) {
	if c.tracking {
		c.occ[c.cur] += now - c.stamp
		c.tracking = false
	}
}

// Advance moves the processor to its next protocol decision point and
// tells the driver what to do. It never blocks.
func (c *Core) Advance(now float64) (Status, error) {
	if c.err != nil {
		return Status{}, c.err
	}
	// Finish the MAP handshake: deposit queued address packages, retrying
	// while a destination's single slot is occupied (or, after an injected
	// loss, while the retransmission timer runs).
	if len(c.pend) > 0 {
		if !c.flushNotify(now) {
			if c.err != nil {
				return Status{}, c.err
			}
			c.enter(StateMAP, now)
			c.Stats.BlockedAdvances++
			return Status{Kind: Blocked, State: StateMAP, Wait: c.pendWait(now)}, nil
		}
	}
	// MAP state: at most one allocation point per order position.
	if c.mapIdx < len(c.maps) && c.maps[c.mapIdx].Pos == c.pos {
		m := &c.maps[c.mapIdx]
		c.mapIdx++
		c.Stats.MAPs++
		c.enter(StateMAP, now)
		if err := c.be.ApplyMAP(m); err != nil {
			return Status{}, err
		}
		c.queueNotify(m)
		return Status{Kind: RunMAP, MAP: m}, nil
	}
	// END state: out of tasks, drain the outbound queue.
	if int(c.pos) >= len(c.order) {
		if len(c.outq) > 0 {
			c.enter(StateEND, now)
			c.Stats.BlockedAdvances++
			return Status{Kind: Blocked, State: StateEND, Wait: c.outWait(now)}, nil
		}
		c.closeOcc(now)
		return Status{Kind: Finished}, nil
	}
	// REC state for the next task.
	t := c.order[c.pos]
	c.curTask = t
	ok, err := c.ready(t)
	if err != nil {
		return Status{}, err
	}
	if !ok {
		c.enter(StateREC, now)
		c.Stats.BlockedAdvances++
		return Status{Kind: Blocked, State: StateREC, Task: t, Wait: c.recWait(t)}, nil
	}
	// EXE state: hand the task to the driver.
	c.enter(StateEXE, now)
	return Status{Kind: RunTask, Task: t}, nil
}

// pendWait derives the Wait of a MAP-blocked processor from its pending
// address packages: an occupied destination slot if any package could go
// out now, otherwise the earliest retransmission deadline.
func (c *Core) pendWait(now float64) Wait {
	w := Wait{Kind: WaitTimer}
	for i := range c.pend {
		pk := &c.pend[i]
		if pk.due > now {
			if w.Due == 0 || pk.due < w.Due {
				w.Due = pk.due
			}
			continue
		}
		if w.Kind != WaitAddrSlot {
			w.Kind, w.Dst = WaitAddrSlot, pk.dst
		}
	}
	return w
}

// outWait derives the Wait of an END-blocked processor from the outbound
// queue's head: an unlearned remote address, or a running retransmission
// timer. Due is the earliest deadline across the whole queue.
func (c *Core) outWait(now float64) Wait {
	w := Wait{Kind: WaitAddr, Obj: c.outq[0].snd.Obj, Dst: c.outq[0].snd.Dst}
	if c.be.AddrKnown(c.outq[0].snd) {
		w.Kind = WaitTimer
	}
	for i := range c.outq {
		if due := c.outq[i].due; due > now && (w.Due == 0 || due < w.Due) {
			w.Due = due
		}
	}
	return w
}

// recWait derives the Wait of a REC-blocked processor: the first unmet
// control-signal or arrival requirement of the gating task. Counters are
// re-read from the backend, so a deposit racing with the blocked verdict
// may leave no unmet requirement; the generic fallback is harmless — the
// driver's next Advance will see the task ready.
func (c *Core) recWait(t graph.TaskID) Wait {
	if have, want := c.be.CtlCount(t), c.eng.Tables.CtlNeed[t]; have < want {
		return Wait{Kind: WaitCtl, Task: t, Have: have, Want: want}
	}
	for _, need := range c.eng.Tables.Needs[t] {
		got, ok := c.be.Arrived(need.Obj)
		if !ok || got < need.MinArrivals {
			return Wait{Kind: WaitArrival, Task: t, Obj: need.Obj, Have: got, Want: need.MinArrivals}
		}
	}
	return Wait{Kind: WaitArrival, Task: t}
}

// queueNotify stages the MAP's address packages in deterministic
// destination order and applies the fault plan to each.
func (c *Core) queueNotify(m *mem.MAP) {
	if len(m.Notify) == 0 {
		return
	}
	dsts := make([]graph.Proc, 0, len(m.Notify))
	for dst := range m.Notify { //det:ok collected and sorted below
		dsts = append(dsts, dst)
	}
	sort.Slice(dsts, func(i, j int) bool { return dsts[i] < dsts[j] })
	for _, dst := range dsts {
		c.addrSeq[dst]++
		c.pend = append(c.pend, pendPkg{
			dst:     dst,
			objs:    m.Notify[dst],
			seq:     c.addrSeq[dst],
			delayed: c.eng.Faults.delayAddr(c.p, dst, c.mapIdx-1),
		})
	}
}

// flushNotify attempts every pending address package once and reports
// whether all went out. A fault-delayed package skips one attempt; a
// dropped transmission stays queued until its retransmission timer (RTO
// with exponential backoff) expires; a successfully deposited package may
// be followed by an injected duplicate copy, which travels through the
// same single-slot handshake and is discarded by the receiver's dedup.
func (c *Core) flushNotify(now float64) bool {
	kept := c.pend[:0]
	for i := range c.pend {
		pk := c.pend[i]
		if pk.delayed {
			pk.delayed = false
			c.Stats.FaultsInjected++
			c.be.WakeAfter(0)
			kept = append(kept, pk)
			continue
		}
		if pk.due > now {
			c.be.WakeAfter(pk.due - now)
			kept = append(kept, pk)
			continue
		}
		if !pk.dup && c.eng.Faults.dropAddr(c.p, pk.dst, pk.seq, pk.attempt+1) {
			// This transmission is lost in transit: the slot is untouched
			// and the receiver sees nothing. Arm the retransmission timer.
			pk.attempt++
			if pk.attempt > 1 {
				c.Stats.Retransmits++
			}
			c.Stats.Dropped++
			if int(pk.attempt) > c.eng.Faults.maxRetries() {
				c.err = fmt.Errorf("proto: proc %d: address package %d to processor %d lost %d times, retry budget %d exhausted",
					c.p, pk.seq, pk.dst, pk.attempt, c.eng.Faults.maxRetries())
				kept = append(kept, pk)
				continue
			}
			pk.due = now + c.eng.Faults.rto(pk.attempt)
			c.be.WakeAfter(pk.due - now)
			kept = append(kept, pk)
			continue
		}
		if !c.be.TryNotify(pk.dst, pk.objs, pk.seq) {
			// Slot occupied: the ordinary MAP handshake retry, not a loss.
			kept = append(kept, pk)
			continue
		}
		if pk.dup {
			c.Stats.DupsSent++
			continue
		}
		if pk.attempt > 0 {
			c.Stats.Retransmits++
		}
		c.Stats.Acked++
		if c.eng.Faults.dupAddr(c.p, pk.dst, pk.seq) {
			// Queue an identical second copy; it deposits once the slot
			// frees and the receiver discards it by sequence number.
			kept = append(kept, pendPkg{dst: pk.dst, objs: pk.objs, seq: pk.seq, dup: true})
		}
	}
	c.pend = kept
	return len(c.pend) == 0
}

// pushOut appends a data message to the outbound queue.
func (c *Core) pushOut(m outSend) {
	if c.outKeys == nil {
		c.outKeys = make(map[[2]int32]int)
	}
	c.outKeys[sendKey(m.snd)]++
	c.outq = append(c.outq, m)
}

// transmit performs one transmission attempt of m's data message and
// reports whether it was delivered. A lost attempt arms m's retransmission
// timer (exponential backoff, capped retry budget); a delivered message may
// be followed by an injected duplicate copy that the receiver discards.
func (c *Core) transmit(m *outSend, now float64) bool {
	m.attempt++
	if m.attempt > 1 {
		c.Stats.Retransmits++
	}
	if c.eng.Faults.dropData(m.snd, m.attempt) {
		c.Stats.Dropped++
		if int(m.attempt) > c.eng.Faults.maxRetries() {
			c.err = fmt.Errorf("proto: proc %d: data message (object %d seq %d to processor %d) lost %d times, retry budget %d exhausted",
				c.p, m.snd.Obj, m.snd.Seq, m.snd.Dst, m.attempt, c.eng.Faults.maxRetries())
			return false
		}
		m.due = now + c.eng.Faults.rto(m.attempt)
		c.be.WakeAfter(m.due - now)
		return false
	}
	c.be.SendData(m.snd)
	c.Stats.DataSent++
	c.Stats.Acked++
	if c.eng.Faults.dupData(m.snd) {
		// Deliver a second copy; the receiver's per-buffer sequence check
		// discards it without touching the arrival counter.
		c.be.SendData(m.snd)
		c.Stats.DupsSent++
	}
	return true
}

// ready implements the REC condition for task t: all cross-processor
// control signals received and every volatile input's arrival counter at
// its threshold.
func (c *Core) ready(t graph.TaskID) (bool, error) {
	if c.be.CtlCount(t) < c.eng.Tables.CtlNeed[t] {
		return false, nil
	}
	for _, need := range c.eng.Tables.Needs[t] {
		got, ok := c.be.Arrived(need.Obj)
		if !ok {
			return false, fmt.Errorf("proto: proc %d task %q needs unallocated object %q (MAP plan hole)",
				c.p, c.eng.S.G.Tasks[t].Name, c.eng.S.G.Objects[need.Obj].Name)
		}
		if got < need.MinArrivals {
			return false, nil
		}
	}
	return true, nil
}

// TaskDone records completion of the task last returned by Advance and
// performs the SND state: data messages whose remote address is unknown —
// or that fault injection delays, or whose (object, destination) key has a
// queued predecessor awaiting retransmission — go onto the outbound queue;
// the rest transmit immediately (and join the queue if that transmission
// is lost).
func (c *Core) TaskDone(now float64) {
	c.enter(StateSND, now)
	t := c.curTask
	c.Stats.TasksRun++
	for _, snd := range c.eng.Tables.Sends[t] {
		if c.eng.Faults.delayData(snd) {
			c.Stats.FaultsInjected++
			c.Stats.DataSuspended++
			c.pushOut(outSend{snd: snd})
			c.be.WakeAfter(0)
			continue
		}
		if (len(c.outq) > 0 && c.outKeys[sendKey(snd)] > 0) || !c.be.AddrKnown(snd) {
			c.Stats.DataSuspended++
			c.pushOut(outSend{snd: snd})
			continue
		}
		m := outSend{snd: snd}
		if !c.transmit(&m, now) {
			c.pushOut(m)
		}
	}
	for _, v := range c.eng.Tables.CtlSends[t] {
		c.be.SendCtl(v)
		c.Stats.CtlSent++
	}
	c.pos++
}

// Poll runs RA (read address packages) then CQ (dispatch queued sends
// whose addresses are known and whose retransmission timers have expired,
// FIFO per (object, destination)) — the two operations the protocol
// requires in every blocking state. It reports whether any message moved,
// which drivers use as a progress signal.
func (c *Core) Poll(now float64) bool {
	progress := false
	if n := c.be.ReadAddresses(); n > 0 {
		c.Stats.AddrConsumed += n
		progress = true
	}
	if len(c.outq) > 0 {
		blocked := make(map[[2]int32]bool)
		kept := c.outq[:0]
		for i := range c.outq {
			m := c.outq[i]
			k := sendKey(m.snd)
			if blocked[k] || !c.be.AddrKnown(m.snd) {
				blocked[k] = true
				kept = append(kept, m)
				continue
			}
			if m.due > now {
				// Retransmission timer still running; later messages of the
				// same key must wait behind it to keep versions in order.
				blocked[k] = true
				kept = append(kept, m)
				c.be.WakeAfter(m.due - now)
				continue
			}
			if !c.transmit(&m, now) {
				blocked[k] = true
				kept = append(kept, m)
				continue
			}
			if c.outKeys[k]--; c.outKeys[k] == 0 {
				delete(c.outKeys, k)
			}
			progress = true
		}
		c.outq = kept
	}
	return progress
}

// BlockedInfo describes what the processor is currently waiting on, for
// watchdog timeouts (executor) and deadlock reports (simulator).
func (c *Core) BlockedInfo() string {
	g := c.eng.S.G
	switch {
	case len(c.pend) > 0:
		dsts := make([]graph.Proc, len(c.pend))
		retrans := 0
		for i, pk := range c.pend {
			dsts[i] = pk.dst
			if pk.attempt > 0 {
				retrans++
			}
		}
		return fmt.Sprintf("MAP state: waiting to deposit address packages to processors %v (previous package not yet consumed; %d awaiting retransmission)", dsts, retrans)
	case int(c.pos) >= len(c.order):
		if len(c.outq) > 0 {
			m := c.outq[0]
			why := "address not yet received"
			if m.attempt > 0 {
				why = fmt.Sprintf("lost %d times, awaiting retransmission", m.attempt)
			}
			return fmt.Sprintf("END state: draining %d suspended sends, head is object %q to processor %d (%s)",
				len(c.outq), g.Objects[m.snd.Obj].Name, m.snd.Dst, why)
		}
		return "finished"
	default:
		t := c.order[c.pos]
		if have, want := c.be.CtlCount(t), c.eng.Tables.CtlNeed[t]; have < want {
			return fmt.Sprintf("REC state: task %q at position %d waiting for control signals (%d/%d)",
				g.Tasks[t].Name, c.pos, have, want)
		}
		for _, need := range c.eng.Tables.Needs[t] {
			got, ok := c.be.Arrived(need.Obj)
			if !ok {
				return fmt.Sprintf("REC state: task %q needs unallocated object %q", g.Tasks[t].Name, g.Objects[need.Obj].Name)
			}
			if got < need.MinArrivals {
				return fmt.Sprintf("REC state: task %q at position %d waiting for object %q (arrivals %d/%d)",
					g.Tasks[t].Name, c.pos, g.Objects[need.Obj].Name, got, need.MinArrivals)
			}
		}
		return fmt.Sprintf("ready at task %q, position %d", g.Tasks[t].Name, c.pos)
	}
}
