package proto

import (
	"testing"

	"repro/internal/graph"
	"repro/internal/sched"
	"repro/internal/util"
)

func figure2Schedule(t *testing.T) *sched.Schedule {
	t.Helper()
	g := sched.Figure2DAG()
	assign, err := sched.OwnerComputeAssign(g, 2)
	if err != nil {
		t.Fatal(err)
	}
	s, err := sched.ScheduleRCP(g, assign, 2, sched.Unit())
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestSendsMatchNeeds(t *testing.T) {
	s := figure2Schedule(t)
	tb := Derive(s)
	// Every need must be satisfiable: for (obj, proc) the expected count
	// must be at least the largest threshold.
	for v := 0; v < s.G.NumTasks(); v++ {
		p := s.Assign[v]
		for _, need := range tb.Needs[v] {
			if tb.Expect[p][need.Obj] < need.MinArrivals {
				t.Fatalf("task %d needs %d arrivals of obj %d on proc %d but only %d are sent",
					v, need.MinArrivals, need.Obj, p, tb.Expect[p][need.Obj])
			}
		}
	}
	// Send sequence numbers per (obj, dst) must be 1..k in producer
	// schedule order.
	type key struct {
		obj graph.ObjID
		dst graph.Proc
	}
	seqs := map[key][]int32{}
	poss := map[key][]int32{}
	for u := 0; u < s.G.NumTasks(); u++ {
		for _, snd := range tb.Sends[u] {
			k := key{snd.Obj, snd.Dst}
			seqs[k] = append(seqs[k], snd.Seq)
			poss[k] = append(poss[k], s.Pos[u])
		}
	}
	for k, ss := range seqs {
		// Sort by position; sequence numbers must then be 1..n ascending.
		ps := poss[k]
		for i := 0; i < len(ss); i++ {
			for j := i + 1; j < len(ss); j++ {
				if ps[j] < ps[i] {
					ps[i], ps[j] = ps[j], ps[i]
					ss[i], ss[j] = ss[j], ss[i]
				}
			}
		}
		for i, v := range ss {
			if v != int32(i+1) {
				t.Fatalf("key %v: seqs %v not 1..n in producer order", k, ss)
			}
		}
	}
}

func TestNoLocalSends(t *testing.T) {
	s := figure2Schedule(t)
	tb := Derive(s)
	for u := 0; u < s.G.NumTasks(); u++ {
		for _, snd := range tb.Sends[u] {
			if snd.Dst == s.Assign[u] {
				t.Fatalf("task %d sends to its own processor", u)
			}
			if s.G.Objects[snd.Obj].Owner == snd.Dst {
				t.Fatalf("task %d sends obj %d to its owner (permanent there)", u, snd.Obj)
			}
		}
	}
}

func TestCtlMatchesCrossPrecEdges(t *testing.T) {
	// Build a graph with a retained cross-processor anti edge.
	b := graph.NewBuilder()
	x := b.Object("x", 1)
	y := b.Object("y", 1)
	b.Task("w1", 1, nil, []graph.ObjID{x})
	r := b.Task("r", 1, []graph.ObjID{x}, []graph.ObjID{y})
	w2 := b.Task("w2", 1, []graph.ObjID{x}, []graph.ObjID{x})
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	g.Objects[x].Owner = 0
	g.Objects[y].Owner = 1
	assign, err := sched.OwnerComputeAssign(g, 2)
	if err != nil {
		t.Fatal(err)
	}
	s, err := sched.ScheduleRCP(g, assign, 2, sched.Unit())
	if err != nil {
		t.Fatal(err)
	}
	tb := Derive(s)
	// r is on proc 1 (writes y), w2 on proc 0: the anti edge r->w2 crosses.
	if tb.CtlNeed[w2] != 1 {
		t.Fatalf("CtlNeed[w2] = %d, want 1", tb.CtlNeed[w2])
	}
	found := false
	for _, v := range tb.CtlSends[r] {
		if v == w2 {
			found = true
		}
	}
	if !found {
		t.Fatalf("r does not signal w2")
	}
}

func TestDedupAcrossVersions(t *testing.T) {
	// Owner proc 0 writes x twice (v1, v2); proc 1 reads after v1 and
	// after v2: two versions must be sent with thresholds 1 and 2.
	b := graph.NewBuilder()
	x := b.Object("x", 1)
	o1 := b.Object("o1", 1)
	o2 := b.Object("o2", 1)
	b.Task("w1", 1, nil, []graph.ObjID{x})
	r1 := b.Task("r1", 1, []graph.ObjID{x}, []graph.ObjID{o1})
	b.Task("w2", 1, []graph.ObjID{x, o1}, []graph.ObjID{x})
	r2 := b.Task("r2", 1, []graph.ObjID{x}, []graph.ObjID{o2})
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	g.Objects[x].Owner = 0
	g.Objects[o1].Owner = 1
	g.Objects[o2].Owner = 1
	assign, err := sched.OwnerComputeAssign(g, 2)
	if err != nil {
		t.Fatal(err)
	}
	s, err := sched.ScheduleRCP(g, assign, 2, sched.Unit())
	if err != nil {
		t.Fatal(err)
	}
	tb := Derive(s)
	if tb.Expect[1][x] != 2 {
		t.Fatalf("expect %d versions of x on proc 1, want 2", tb.Expect[1][x])
	}
	needOf := func(task graph.TaskID) int32 {
		for _, n := range tb.Needs[task] {
			if n.Obj == x {
				return n.MinArrivals
			}
		}
		return -1
	}
	if needOf(r1) != 1 || needOf(r2) != 2 {
		t.Fatalf("thresholds r1=%d r2=%d, want 1 and 2", needOf(r1), needOf(r2))
	}
}

func TestRandomGraphsThresholdsConsistent(t *testing.T) {
	rng := util.NewRNG(2024)
	for trial := 0; trial < 30; trial++ {
		p := 2 + rng.Intn(4)
		g := randomDAG(rng, 25+rng.Intn(40), 6+rng.Intn(10), p)
		assign, err := sched.OwnerComputeAssign(g, p)
		if err != nil {
			t.Fatal(err)
		}
		s, err := sched.ScheduleMPO(g, assign, p, sched.Unit())
		if err != nil {
			t.Fatal(err)
		}
		tb := Derive(s)
		for v := 0; v < g.NumTasks(); v++ {
			for _, need := range tb.Needs[v] {
				if tb.Expect[s.Assign[v]][need.Obj] < need.MinArrivals {
					t.Fatalf("trial %d: unsatisfiable threshold", trial)
				}
			}
		}
	}
}

func randomDAG(rng *util.RNG, nTasks, nObjs, p int) *graph.DAG {
	b := graph.NewBuilder()
	objs := make([]graph.ObjID, nObjs)
	for i := 0; i < nObjs; i++ {
		objs[i] = b.Object(string(rune('A'+i%26))+string(rune('0'+i/26)), int64(1+rng.Intn(4)))
	}
	written := []graph.ObjID{}
	for t := 0; t < nTasks; t++ {
		var reads []graph.ObjID
		for r := 0; r < rng.Intn(3); r++ {
			if len(written) > 0 {
				reads = append(reads, written[rng.Intn(len(written))])
			}
		}
		wobj := objs[rng.Intn(nObjs)]
		b.Task(string(rune('a'+t%26))+string(rune('0'+t/26)), float64(1+rng.Intn(5)), reads, []graph.ObjID{wobj})
		written = append(written, wobj)
	}
	g, err := b.Build()
	if err != nil {
		panic(err)
	}
	sched.CyclicOwners(g, p)
	return g
}
