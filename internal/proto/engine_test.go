package proto

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/graph"
	"repro/internal/mem"
	"repro/internal/sched"
	"repro/internal/util"
)

// loopMachine is a minimal in-package harness: instant message delivery,
// single-slot address packages, and a round-robin driver with a unit-step
// clock. It exists to test the Core's transition logic in isolation from
// the real backends (which have their own equivalence suite).
type loopMachine struct {
	eng   *Engine
	ctl   []int32
	be    []*loopBackend
	cores []*Core
	tick  float64
}

type loopBackend struct {
	m        *loopMachine
	p        graph.Proc
	arrivals map[graph.ObjID]int32
	// lastSeq is the highest data-message sequence delivered per object
	// (receiver-side dedup).
	lastSeq map[graph.ObjID]int32
	alloc   map[graph.ObjID]bool
	addr    map[[2]int32]bool
	// slots[src] holds the at-most-one in-flight package from src.
	slots   []([]graph.ObjID)
	slotSeq []int32
	full    []bool
	// seen is the highest address-package sequence consumed per source.
	seen []int32
	// dupDrop counts duplicate deliveries this processor discarded.
	dupDrop int
}

func newLoopMachine(t *testing.T, s *sched.Schedule, pl *mem.Plan, f Faults) *loopMachine {
	t.Helper()
	eng, err := NewEngine(s, pl, f)
	if err != nil {
		t.Fatal(err)
	}
	m := &loopMachine{eng: eng, ctl: make([]int32, s.G.NumTasks())}
	for p := 0; p < s.P; p++ {
		be := &loopBackend{
			m: m, p: graph.Proc(p),
			arrivals: make(map[graph.ObjID]int32),
			lastSeq:  make(map[graph.ObjID]int32),
			alloc:    make(map[graph.ObjID]bool),
			addr:     make(map[[2]int32]bool),
			slots:    make([][]graph.ObjID, s.P),
			slotSeq:  make([]int32, s.P),
			full:     make([]bool, s.P),
			seen:     make([]int32, s.P),
		}
		m.be = append(m.be, be)
		m.cores = append(m.cores, eng.NewCore(graph.Proc(p), be))
	}
	return m
}

// run drives all cores round-robin until every one finishes; it fails the
// test if no core makes progress for a full sweep repeatedly (deadlock).
func (m *loopMachine) run(t *testing.T) {
	t.Helper()
	if err := m.runE(); err != nil {
		t.Fatal(err)
	}
}

// runE is run returning errors instead of failing the test, for tests that
// expect the protocol to abort (e.g. retry-budget exhaustion).
func (m *loopMachine) runE() error {
	done := make([]bool, len(m.cores))
	for round := 0; ; round++ {
		if round > 100000 {
			return fmt.Errorf("loop harness: no termination after 100000 rounds")
		}
		allDone := true
		for i, c := range m.cores {
			if done[i] {
				continue
			}
			allDone = false
			m.tick++
			st, err := c.Advance(m.tick)
			if err != nil {
				return err
			}
			switch st.Kind {
			case RunMAP:
				// Loop back into Advance next sweep (MAP cost is free here).
			case RunTask:
				m.tick++
				c.TaskDone(m.tick)
				c.Poll(m.tick)
			case Blocked:
				c.Poll(m.tick)
			case Finished:
				done[i] = true
			}
		}
		if allDone {
			return nil
		}
	}
}

func (be *loopBackend) ApplyMAP(mp *mem.MAP) error {
	for _, o := range mp.Frees {
		delete(be.alloc, o)
		delete(be.arrivals, o)
	}
	for _, o := range mp.Allocs {
		be.alloc[o] = true
		be.arrivals[o] = 0
	}
	return nil
}

func (be *loopBackend) TryNotify(dst graph.Proc, objs []graph.ObjID, seq int32) bool {
	peer := be.m.be[dst]
	if peer.full[be.p] {
		return false
	}
	peer.slots[be.p] = objs
	peer.slotSeq[be.p] = seq
	peer.full[be.p] = true
	return true
}

func (be *loopBackend) ReadAddresses() int {
	n := 0
	for src := range be.slots {
		if !be.full[src] {
			continue
		}
		be.full[src] = false
		if be.slotSeq[src] <= be.seen[src] {
			be.dupDrop++
			continue
		}
		be.seen[src] = be.slotSeq[src]
		for _, o := range be.slots[src] {
			be.addr[[2]int32{int32(o), int32(src)}] = true
		}
		n++
	}
	return n
}

func (be *loopBackend) AddrKnown(snd Send) bool {
	return be.addr[[2]int32{int32(snd.Obj), int32(snd.Dst)}]
}

func (be *loopBackend) SendData(snd Send) {
	peer := be.m.be[snd.Dst]
	if snd.Seq <= peer.lastSeq[snd.Obj] {
		peer.dupDrop++
		return
	}
	peer.lastSeq[snd.Obj] = snd.Seq
	peer.arrivals[snd.Obj]++
}

func (be *loopBackend) SendCtl(t graph.TaskID) { be.m.ctl[t]++ }

func (be *loopBackend) CtlCount(t graph.TaskID) int32 { return be.m.ctl[t] }

func (be *loopBackend) Arrived(o graph.ObjID) (int32, bool) {
	if !be.alloc[o] {
		return 0, false
	}
	return be.arrivals[o], true
}

func (be *loopBackend) WakeAfter(delay float64) {} // round-robin re-examines everyone

func planFor(t *testing.T, s *sched.Schedule) *mem.Plan {
	t.Helper()
	pl, err := mem.NewPlan(s, s.MinMem())
	if err != nil {
		t.Fatal(err)
	}
	if !pl.Executable {
		pl, err = mem.NewPlan(s, s.TOT())
		if err != nil || !pl.Executable {
			t.Fatal("TOT plan must be executable")
		}
	}
	return pl
}

// TestCoreRunsRandomGraphs drives the state machine over random schedules
// and checks the protocol-determined totals: every task runs, every MAP of
// the plan executes, every table send is delivered, every control signal
// arrives, and occupancy time is accounted.
func TestCoreRunsRandomGraphs(t *testing.T) {
	rng := util.NewRNG(77)
	for trial := 0; trial < 10; trial++ {
		p := 2 + rng.Intn(3)
		g := randomDAG(rng, 25+rng.Intn(30), 6+rng.Intn(8), p)
		assign, err := sched.OwnerComputeAssign(g, p)
		if err != nil {
			t.Fatal(err)
		}
		s, err := sched.ScheduleWith([]sched.Heuristic{sched.RCP, sched.MPO, sched.DTS}[trial%3],
			g, assign, p, sched.Unit(), 1<<40)
		if err != nil {
			t.Fatal(err)
		}
		pl := planFor(t, s)
		m := newLoopMachine(t, s, pl, Faults{})
		m.run(t)

		tables := m.eng.Tables
		totalSends, totalCtl := 0, 0
		for v := 0; v < g.NumTasks(); v++ {
			totalSends += len(tables.Sends[v])
			totalCtl += len(tables.CtlSends[v])
		}
		gotSends, gotCtl, gotTasks := 0, 0, 0
		for q, c := range m.cores {
			if c.Stats.MAPs != len(pl.Procs[q].MAPs) {
				t.Errorf("trial %d: proc %d ran %d MAPs, plan has %d", trial, q, c.Stats.MAPs, len(pl.Procs[q].MAPs))
			}
			if c.Stats.TasksRun != len(s.Order[q]) {
				t.Errorf("trial %d: proc %d ran %d tasks, order has %d", trial, q, c.Stats.TasksRun, len(s.Order[q]))
			}
			if c.SuspendedLen() != 0 {
				t.Errorf("trial %d: proc %d finished with %d suspended sends", trial, q, c.SuspendedLen())
			}
			if len(s.Order[q]) > 0 && c.Occupancy().Total() <= 0 {
				t.Errorf("trial %d: proc %d accounted no occupancy", trial, q)
			}
			gotSends += c.Stats.DataSent
			gotCtl += c.Stats.CtlSent
			gotTasks += c.Stats.TasksRun
		}
		if gotSends != totalSends {
			t.Errorf("trial %d: %d sends dispatched, tables have %d", trial, gotSends, totalSends)
		}
		if gotCtl != totalCtl {
			t.Errorf("trial %d: %d control signals, tables have %d", trial, gotCtl, totalCtl)
		}
		if gotTasks != g.NumTasks() {
			t.Errorf("trial %d: %d tasks ran, graph has %d", trial, gotTasks, g.NumTasks())
		}
	}
}

// TestCoreForcedSuspension: with DataFrac 1 every data message must pass
// through the suspended-send queue exactly once, so the per-processor
// suspension counts equal the communication tables' per-processor sends.
func TestCoreForcedSuspension(t *testing.T) {
	s := figure2Schedule(t)
	pl := planFor(t, s)
	m := newLoopMachine(t, s, pl, Faults{Seed: 3, DataFrac: 1})
	m.run(t)
	tables := m.eng.Tables
	for q, c := range m.cores {
		want := 0
		for _, task := range s.Order[q] {
			want += len(tables.Sends[task])
		}
		if c.Stats.DataSuspended != want {
			t.Errorf("proc %d: %d suspensions, want %d (table sends)", q, c.Stats.DataSuspended, want)
		}
		if c.Stats.DataSent != want {
			t.Errorf("proc %d: %d sends dispatched, want %d", q, c.Stats.DataSent, want)
		}
		if want > 0 && c.Stats.FaultsInjected < want {
			t.Errorf("proc %d: %d faults injected, want >= %d", q, c.Stats.FaultsInjected, want)
		}
	}
}

// TestFaultsDeterministic: delay decisions are pure functions of the seed
// and message identity — same seed, same verdicts; a fraction of 1 delays
// everything and 0 nothing.
func TestFaultsDeterministic(t *testing.T) {
	f1 := Faults{Seed: 42, AddrFrac: 0.5, DataFrac: 0.5}
	f2 := Faults{Seed: 42, AddrFrac: 0.5, DataFrac: 0.5}
	for i := 0; i < 100; i++ {
		snd := Send{Obj: graph.ObjID(i % 7), Dst: graph.Proc(i % 3), Seq: int32(i)}
		if f1.delayData(snd) != f2.delayData(snd) {
			t.Fatalf("send %d: same seed, different verdicts", i)
		}
		if f1.delayAddr(graph.Proc(i%3), graph.Proc(i%5), i) != f2.delayAddr(graph.Proc(i%3), graph.Proc(i%5), i) {
			t.Fatalf("addr %d: same seed, different verdicts", i)
		}
	}
	all := Faults{Seed: 1, AddrFrac: 1, DataFrac: 1}
	none := Faults{Seed: 1}
	if none.Enabled() {
		t.Error("zero fractions must disable injection")
	}
	for i := 0; i < 20; i++ {
		snd := Send{Obj: graph.ObjID(i), Dst: 1, Seq: int32(i)}
		if !all.delayData(snd) || none.delayData(snd) {
			t.Fatalf("send %d: frac-1 must delay, frac-0 must not", i)
		}
	}
}

// TestCoreLossAndDup drives random schedules under heavy message loss and
// duplication: every message must still be delivered exactly once (totals
// equal the communication tables), every lost transmission must be
// retransmitted, every injected duplicate must be discarded by a receiver,
// and the acked count must equal the messages actually delivered.
func TestCoreLossAndDup(t *testing.T) {
	rng := util.NewRNG(123)
	totalDropped := 0
	for trial := 0; trial < 6; trial++ {
		p := 2 + rng.Intn(3)
		g := randomDAG(rng, 25+rng.Intn(30), 6+rng.Intn(8), p)
		assign, err := sched.OwnerComputeAssign(g, p)
		if err != nil {
			t.Fatal(err)
		}
		s, err := sched.ScheduleWith([]sched.Heuristic{sched.RCP, sched.MPO, sched.DTS}[trial%3],
			g, assign, p, sched.Unit(), 1<<40)
		if err != nil {
			t.Fatal(err)
		}
		pl := planFor(t, s)
		m := newLoopMachine(t, s, pl, Faults{Seed: uint64(trial + 1), DropFrac: 0.3, DupFrac: 0.2})
		m.run(t)

		totalSends := 0
		for v := 0; v < g.NumTasks(); v++ {
			totalSends += len(m.eng.Tables.Sends[v])
		}
		gotSends, dropped, retrans, dupsSent, dupDropped, acked, addrConsumed, leftover := 0, 0, 0, 0, 0, 0, 0, 0
		for q, c := range m.cores {
			if c.SuspendedLen() != 0 {
				t.Errorf("trial %d: proc %d finished with %d suspended sends", trial, q, c.SuspendedLen())
			}
			gotSends += c.Stats.DataSent
			dropped += c.Stats.Dropped
			retrans += c.Stats.Retransmits
			dupsSent += c.Stats.DupsSent
			acked += c.Stats.Acked
			addrConsumed += c.Stats.AddrConsumed
			dupDropped += m.be[q].dupDrop
			// A duplicated address package deposited after its receiver
			// finished stays in the slot unconsumed; it is the only kind of
			// message legitimately in flight at termination.
			for src, f := range m.be[q].full {
				if f {
					if m.be[q].slotSeq[src] > m.be[q].seen[src] {
						t.Errorf("trial %d: proc %d finished with a non-duplicate package from %d unconsumed", trial, q, src)
					}
					leftover++
				}
			}
		}
		if gotSends != totalSends {
			t.Errorf("trial %d: %d messages delivered, tables have %d", trial, gotSends, totalSends)
		}
		if retrans != dropped {
			t.Errorf("trial %d: %d retransmits for %d drops (must be equal when every message is eventually delivered)",
				trial, retrans, dropped)
		}
		if dupsSent != dupDropped+leftover {
			t.Errorf("trial %d: %d duplicates injected, %d discarded + %d in flight at termination",
				trial, dupsSent, dupDropped, leftover)
		}
		if acked != totalSends+addrConsumed {
			t.Errorf("trial %d: %d acked, want %d data + %d address packages", trial, acked, totalSends, addrConsumed)
		}
		totalDropped += dropped
	}
	if totalDropped == 0 {
		t.Error("DropFrac 0.3 lost no transmissions across all trials")
	}
}

// TestCoreLossDeterministic: two runs with the same seed produce identical
// reliability counters.
func TestCoreLossDeterministic(t *testing.T) {
	s := figure2Schedule(t)
	pl := planFor(t, s)
	f := Faults{Seed: 7, DropFrac: 0.4, DupFrac: 0.3}
	m1 := newLoopMachine(t, s, pl, f)
	m1.run(t)
	m2 := newLoopMachine(t, s, pl, f)
	m2.run(t)
	for q := range m1.cores {
		if m1.cores[q].Stats != m2.cores[q].Stats {
			t.Errorf("proc %d: same seed, different stats:\n%+v\n%+v", q, m1.cores[q].Stats, m2.cores[q].Stats)
		}
	}
}

// TestCoreRetryBudgetExhaustion: with DropFrac 1 every transmission is
// lost, so the first message must exhaust its retry budget and abort the
// run with a descriptive error instead of hanging.
func TestCoreRetryBudgetExhaustion(t *testing.T) {
	s := figure2Schedule(t)
	pl := planFor(t, s)
	m := newLoopMachine(t, s, pl, Faults{Seed: 9, DropFrac: 1, MaxRetries: 3})
	err := m.runE()
	if err == nil || !strings.Contains(err.Error(), "retry budget") {
		t.Fatalf("want retry-budget error, got %v", err)
	}
}

// TestRTOBackoff: the retransmission timeout grows exponentially and the
// zero-value Faults fall back to the documented defaults.
func TestRTOBackoff(t *testing.T) {
	f := Faults{RTO: 1, Backoff: 2}
	for attempt, want := range map[int32]float64{1: 1, 2: 2, 3: 4, 4: 8} {
		if got := f.rto(attempt); got != want {
			t.Errorf("rto(%d) = %v, want %v", attempt, got, want)
		}
	}
	var d Faults
	if d.rto(1) != DefaultRTO {
		t.Errorf("default rto(1) = %v, want %v", d.rto(1), DefaultRTO)
	}
	if d.rto(2) != DefaultRTO*DefaultBackoff {
		t.Errorf("default rto(2) = %v, want %v", d.rto(2), DefaultRTO*DefaultBackoff)
	}
	if d.maxRetries() != DefaultMaxRetries {
		t.Errorf("default maxRetries = %d, want %d", d.maxRetries(), DefaultMaxRetries)
	}
	if (Faults{MaxRetries: 5}).maxRetries() != 5 {
		t.Error("explicit MaxRetries ignored")
	}
	if !(Faults{DropFrac: 0.1}).Enabled() || !(Faults{DupFrac: 0.1}).Enabled() {
		t.Error("drop/dup fractions must enable injection")
	}
}

// TestDropDupDeterministic: loss and duplication verdicts are pure
// functions of (seed, message identity, attempt); a retransmission rolls a
// fresh verdict, and fraction 1/0 drop everything/nothing.
func TestDropDupDeterministic(t *testing.T) {
	f1 := Faults{Seed: 42, DropFrac: 0.5, DupFrac: 0.5}
	f2 := Faults{Seed: 42, DropFrac: 0.5, DupFrac: 0.5}
	for i := 0; i < 100; i++ {
		snd := Send{Obj: graph.ObjID(i % 7), Dst: graph.Proc(i % 3), Seq: int32(i)}
		for attempt := int32(1); attempt <= 3; attempt++ {
			if f1.dropData(snd, attempt) != f2.dropData(snd, attempt) {
				t.Fatalf("send %d attempt %d: same seed, different drop verdicts", i, attempt)
			}
			if f1.dropAddr(graph.Proc(i%3), graph.Proc(i%5), int32(i), attempt) !=
				f2.dropAddr(graph.Proc(i%3), graph.Proc(i%5), int32(i), attempt) {
				t.Fatalf("addr %d attempt %d: same seed, different drop verdicts", i, attempt)
			}
		}
		if f1.dupData(snd) != f2.dupData(snd) || f1.dupAddr(graph.Proc(i%3), graph.Proc(i%5), int32(i)) != f2.dupAddr(graph.Proc(i%3), graph.Proc(i%5), int32(i)) {
			t.Fatalf("message %d: same seed, different dup verdicts", i)
		}
	}
	all := Faults{Seed: 1, DropFrac: 1, DupFrac: 1}
	var none Faults
	for i := 0; i < 20; i++ {
		snd := Send{Obj: graph.ObjID(i), Dst: 1, Seq: int32(i)}
		if !all.dropData(snd, 1) || none.dropData(snd, 1) {
			t.Fatalf("send %d: frac-1 must drop, frac-0 must not", i)
		}
		if !all.dupData(snd) || none.dupData(snd) {
			t.Fatalf("send %d: frac-1 must duplicate, frac-0 must not", i)
		}
	}
}

// TestNewEngineRejectsUnexecutablePlan: the engine refuses plans that do
// not fit their capacity.
func TestNewEngineRejectsUnexecutablePlan(t *testing.T) {
	s := figure2Schedule(t)
	_, err := NewEngine(s, &mem.Plan{Capacity: 3}, Faults{})
	if err == nil || !strings.Contains(err.Error(), "not executable") {
		t.Fatalf("want not-executable error, got %v", err)
	}
}

// TestStateNames: the State stringer and StateNames agree and cover all
// five protocol states.
func TestStateNames(t *testing.T) {
	names := StateNames()
	if len(names) != int(NumStates) {
		t.Fatalf("%d names for %d states", len(names), NumStates)
	}
	want := []string{"REC", "EXE", "SND", "MAP", "END"}
	for i, w := range want {
		if names[i] != w || State(i).String() != w {
			t.Errorf("state %d: %q / %q, want %q", i, names[i], State(i).String(), w)
		}
	}
	if !strings.Contains(State(99).String(), "99") {
		t.Error("out-of-range state should print its number")
	}
}
