package proto

import (
	"strings"
	"testing"

	"repro/internal/graph"
	"repro/internal/mem"
	"repro/internal/sched"
	"repro/internal/util"
)

// loopMachine is a minimal in-package harness: instant message delivery,
// single-slot address packages, and a round-robin driver with a unit-step
// clock. It exists to test the Core's transition logic in isolation from
// the real backends (which have their own equivalence suite).
type loopMachine struct {
	eng   *Engine
	ctl   []int32
	be    []*loopBackend
	cores []*Core
	tick  float64
}

type loopBackend struct {
	m        *loopMachine
	p        graph.Proc
	arrivals map[graph.ObjID]int32
	alloc    map[graph.ObjID]bool
	addr     map[[2]int32]bool
	// slots[src] holds the at-most-one in-flight package from src.
	slots []([]graph.ObjID)
	full  []bool
}

func newLoopMachine(t *testing.T, s *sched.Schedule, pl *mem.Plan, f Faults) *loopMachine {
	t.Helper()
	eng, err := NewEngine(s, pl, f)
	if err != nil {
		t.Fatal(err)
	}
	m := &loopMachine{eng: eng, ctl: make([]int32, s.G.NumTasks())}
	for p := 0; p < s.P; p++ {
		be := &loopBackend{
			m: m, p: graph.Proc(p),
			arrivals: make(map[graph.ObjID]int32),
			alloc:    make(map[graph.ObjID]bool),
			addr:     make(map[[2]int32]bool),
			slots:    make([][]graph.ObjID, s.P),
			full:     make([]bool, s.P),
		}
		m.be = append(m.be, be)
		m.cores = append(m.cores, eng.NewCore(graph.Proc(p), be))
	}
	return m
}

// run drives all cores round-robin until every one finishes; it fails the
// test if no core makes progress for a full sweep repeatedly (deadlock).
func (m *loopMachine) run(t *testing.T) {
	t.Helper()
	done := make([]bool, len(m.cores))
	for round := 0; ; round++ {
		if round > 100000 {
			t.Fatal("loop harness: no termination after 100000 rounds")
		}
		allDone := true
		for i, c := range m.cores {
			if done[i] {
				continue
			}
			allDone = false
			m.tick++
			st, err := c.Advance(m.tick)
			if err != nil {
				t.Fatal(err)
			}
			switch st.Kind {
			case RunMAP:
				// Loop back into Advance next sweep (MAP cost is free here).
			case RunTask:
				m.tick++
				c.TaskDone(m.tick)
				c.Poll(m.tick)
			case Blocked:
				c.Poll(m.tick)
			case Finished:
				done[i] = true
			}
		}
		if allDone {
			return
		}
	}
}

func (be *loopBackend) ApplyMAP(mp *mem.MAP) error {
	for _, o := range mp.Frees {
		delete(be.alloc, o)
		delete(be.arrivals, o)
	}
	for _, o := range mp.Allocs {
		be.alloc[o] = true
		be.arrivals[o] = 0
	}
	return nil
}

func (be *loopBackend) TryNotify(dst graph.Proc, objs []graph.ObjID) bool {
	peer := be.m.be[dst]
	if peer.full[be.p] {
		return false
	}
	peer.slots[be.p] = objs
	peer.full[be.p] = true
	return true
}

func (be *loopBackend) ReadAddresses() int {
	n := 0
	for src := range be.slots {
		if !be.full[src] {
			continue
		}
		for _, o := range be.slots[src] {
			be.addr[[2]int32{int32(o), int32(src)}] = true
		}
		be.full[src] = false
		n++
	}
	return n
}

func (be *loopBackend) AddrKnown(snd Send) bool {
	return be.addr[[2]int32{int32(snd.Obj), int32(snd.Dst)}]
}

func (be *loopBackend) SendData(snd Send) { be.m.be[snd.Dst].arrivals[snd.Obj]++ }

func (be *loopBackend) SendCtl(t graph.TaskID) { be.m.ctl[t]++ }

func (be *loopBackend) CtlCount(t graph.TaskID) int32 { return be.m.ctl[t] }

func (be *loopBackend) Arrived(o graph.ObjID) (int32, bool) {
	if !be.alloc[o] {
		return 0, false
	}
	return be.arrivals[o], true
}

func (be *loopBackend) FaultWake() {} // round-robin re-examines everyone

func planFor(t *testing.T, s *sched.Schedule) *mem.Plan {
	t.Helper()
	pl, err := mem.NewPlan(s, s.MinMem())
	if err != nil {
		t.Fatal(err)
	}
	if !pl.Executable {
		pl, err = mem.NewPlan(s, s.TOT())
		if err != nil || !pl.Executable {
			t.Fatal("TOT plan must be executable")
		}
	}
	return pl
}

// TestCoreRunsRandomGraphs drives the state machine over random schedules
// and checks the protocol-determined totals: every task runs, every MAP of
// the plan executes, every table send is delivered, every control signal
// arrives, and occupancy time is accounted.
func TestCoreRunsRandomGraphs(t *testing.T) {
	rng := util.NewRNG(77)
	for trial := 0; trial < 10; trial++ {
		p := 2 + rng.Intn(3)
		g := randomDAG(rng, 25+rng.Intn(30), 6+rng.Intn(8), p)
		assign, err := sched.OwnerComputeAssign(g, p)
		if err != nil {
			t.Fatal(err)
		}
		s, err := sched.ScheduleWith([]sched.Heuristic{sched.RCP, sched.MPO, sched.DTS}[trial%3],
			g, assign, p, sched.Unit(), 1<<40)
		if err != nil {
			t.Fatal(err)
		}
		pl := planFor(t, s)
		m := newLoopMachine(t, s, pl, Faults{})
		m.run(t)

		tables := m.eng.Tables
		totalSends, totalCtl := 0, 0
		for v := 0; v < g.NumTasks(); v++ {
			totalSends += len(tables.Sends[v])
			totalCtl += len(tables.CtlSends[v])
		}
		gotSends, gotCtl, gotTasks := 0, 0, 0
		for q, c := range m.cores {
			if c.Stats.MAPs != len(pl.Procs[q].MAPs) {
				t.Errorf("trial %d: proc %d ran %d MAPs, plan has %d", trial, q, c.Stats.MAPs, len(pl.Procs[q].MAPs))
			}
			if c.Stats.TasksRun != len(s.Order[q]) {
				t.Errorf("trial %d: proc %d ran %d tasks, order has %d", trial, q, c.Stats.TasksRun, len(s.Order[q]))
			}
			if c.SuspendedLen() != 0 {
				t.Errorf("trial %d: proc %d finished with %d suspended sends", trial, q, c.SuspendedLen())
			}
			if len(s.Order[q]) > 0 && c.Occupancy().Total() <= 0 {
				t.Errorf("trial %d: proc %d accounted no occupancy", trial, q)
			}
			gotSends += c.Stats.DataSent
			gotCtl += c.Stats.CtlSent
			gotTasks += c.Stats.TasksRun
		}
		if gotSends != totalSends {
			t.Errorf("trial %d: %d sends dispatched, tables have %d", trial, gotSends, totalSends)
		}
		if gotCtl != totalCtl {
			t.Errorf("trial %d: %d control signals, tables have %d", trial, gotCtl, totalCtl)
		}
		if gotTasks != g.NumTasks() {
			t.Errorf("trial %d: %d tasks ran, graph has %d", trial, gotTasks, g.NumTasks())
		}
	}
}

// TestCoreForcedSuspension: with DataFrac 1 every data message must pass
// through the suspended-send queue exactly once, so the per-processor
// suspension counts equal the communication tables' per-processor sends.
func TestCoreForcedSuspension(t *testing.T) {
	s := figure2Schedule(t)
	pl := planFor(t, s)
	m := newLoopMachine(t, s, pl, Faults{Seed: 3, DataFrac: 1})
	m.run(t)
	tables := m.eng.Tables
	for q, c := range m.cores {
		want := 0
		for _, task := range s.Order[q] {
			want += len(tables.Sends[task])
		}
		if c.Stats.DataSuspended != want {
			t.Errorf("proc %d: %d suspensions, want %d (table sends)", q, c.Stats.DataSuspended, want)
		}
		if c.Stats.DataSent != want {
			t.Errorf("proc %d: %d sends dispatched, want %d", q, c.Stats.DataSent, want)
		}
		if want > 0 && c.Stats.FaultsInjected < want {
			t.Errorf("proc %d: %d faults injected, want >= %d", q, c.Stats.FaultsInjected, want)
		}
	}
}

// TestFaultsDeterministic: delay decisions are pure functions of the seed
// and message identity — same seed, same verdicts; a fraction of 1 delays
// everything and 0 nothing.
func TestFaultsDeterministic(t *testing.T) {
	f1 := Faults{Seed: 42, AddrFrac: 0.5, DataFrac: 0.5}
	f2 := Faults{Seed: 42, AddrFrac: 0.5, DataFrac: 0.5}
	for i := 0; i < 100; i++ {
		snd := Send{Obj: graph.ObjID(i % 7), Dst: graph.Proc(i % 3), Seq: int32(i)}
		if f1.delayData(snd) != f2.delayData(snd) {
			t.Fatalf("send %d: same seed, different verdicts", i)
		}
		if f1.delayAddr(graph.Proc(i%3), graph.Proc(i%5), i) != f2.delayAddr(graph.Proc(i%3), graph.Proc(i%5), i) {
			t.Fatalf("addr %d: same seed, different verdicts", i)
		}
	}
	all := Faults{Seed: 1, AddrFrac: 1, DataFrac: 1}
	none := Faults{Seed: 1}
	if none.Enabled() {
		t.Error("zero fractions must disable injection")
	}
	for i := 0; i < 20; i++ {
		snd := Send{Obj: graph.ObjID(i), Dst: 1, Seq: int32(i)}
		if !all.delayData(snd) || none.delayData(snd) {
			t.Fatalf("send %d: frac-1 must delay, frac-0 must not", i)
		}
	}
}

// TestNewEngineRejectsUnexecutablePlan: the engine refuses plans that do
// not fit their capacity.
func TestNewEngineRejectsUnexecutablePlan(t *testing.T) {
	s := figure2Schedule(t)
	_, err := NewEngine(s, &mem.Plan{Capacity: 3}, Faults{})
	if err == nil || !strings.Contains(err.Error(), "not executable") {
		t.Fatalf("want not-executable error, got %v", err)
	}
}

// TestStateNames: the State stringer and StateNames agree and cover all
// five protocol states.
func TestStateNames(t *testing.T) {
	names := StateNames()
	if len(names) != int(NumStates) {
		t.Fatalf("%d names for %d states", len(names), NumStates)
	}
	want := []string{"REC", "EXE", "SND", "MAP", "END"}
	for i, w := range want {
		if names[i] != w || State(i).String() != w {
			t.Errorf("state %d: %q / %q, want %q", i, names[i], State(i).String(), w)
		}
	}
	if !strings.Contains(State(99).String(), "99") {
		t.Error("out-of-range state should print its number")
	}
}
