package paper

import (
	"io"
	"math"
	"strings"
	"testing"
)

// These tests assert the qualitative findings of the paper's evaluation on
// the Small workloads — the properties EXPERIMENTS.md claims reproduce.

func TestTable1RatiosGrowWithProcs(t *testing.T) {
	rows := Table1(io.Discard, Small)
	if len(rows) != 4 {
		t.Fatalf("rows %d", len(rows))
	}
	for i := 1; i < len(rows); i++ {
		if rows[i].Ratio <= rows[i-1].Ratio {
			t.Fatalf("ratio not increasing: %+v", rows)
		}
	}
	if rows[0].Ratio < 1.2 || rows[len(rows)-1].Ratio < 4 {
		t.Fatalf("ratios implausibly small: %+v", rows)
	}
}

func TestTable2OverheadGrowsAsMemoryShrinks(t *testing.T) {
	rows := Table2(io.Discard, Small)
	for _, r := range rows {
		// Overall trend within a row: the tightest executable budget costs
		// at least as much as full memory (the paper itself has small
		// non-monotonic dips in the middle columns, e.g. Table 3's
		// 18.3% -> 18.1%).
		first, last := math.Inf(1), math.Inf(1)
		for _, v := range r.PTIncrease {
			if math.IsInf(v, 0) {
				continue
			}
			if math.IsInf(first, 0) {
				first = v
			}
			last = v
		}
		if !math.IsInf(first, 0) && last+1e-9 < first {
			t.Fatalf("P=%d: tightest budget cheaper than full memory: %v", r.Procs, r.PTIncrease)
		}
	}
	// The paper's "more processors make tight budgets executable" effect:
	// P=2 must have non-executable entries, P=32 must not.
	last := rows[len(rows)-1]
	for _, v := range last.PTIncrease {
		if math.IsInf(v, 0) {
			t.Fatalf("P=32 should be executable at every tested budget")
		}
	}
	first := rows[0]
	sawInf := false
	for _, v := range first.PTIncrease {
		if math.IsInf(v, 1) {
			sawInf = true
		}
	}
	if !sawInf {
		t.Fatalf("P=2 should hit a non-executable budget")
	}
}

func TestTable5MPONeedsFewerOrEqualMAPs(t *testing.T) {
	rows := Table5(io.Discard, Small)
	better := 0
	for _, r := range rows {
		for i := range r.RCP {
			if math.IsInf(r.MPO[i], 0) && !math.IsInf(r.RCP[i], 0) {
				t.Fatalf("P=%d: MPO non-executable where RCP runs", r.Procs)
			}
			if !math.IsInf(r.RCP[i], 0) && r.MPO[i] > r.RCP[i]+0.51 {
				t.Fatalf("P=%d: MPO needs clearly more MAPs (%v vs %v)", r.Procs, r.MPO[i], r.RCP[i])
			}
			if !math.IsInf(r.RCP[i], 0) && r.MPO[i] < r.RCP[i] {
				better++
			}
		}
	}
	if better == 0 {
		t.Fatalf("MPO never reduced the MAP count")
	}
}

func TestFigure7Ordering(t *testing.T) {
	a, b := Figure7(io.Discard, Small)
	check := func(series []Figure7Series, app string, rcpMuchWorse bool) {
		byLabel := map[string][]float64{}
		for _, s := range series {
			byLabel[s.Label] = s.Ratios
		}
		ideal, rcp, mpo, dts := byLabel["ideal S1/p"], byLabel["RCP"], byLabel["MPO"], byLabel["DTS"]
		for i := range ideal {
			if rcp[i] > ideal[i]+1e-9 || mpo[i] > ideal[i]+1e-9 || dts[i] > ideal[i]+1e-9 {
				t.Fatalf("%s: ratio above ideal at index %d", app, i)
			}
			if mpo[i]+1e-9 < rcp[i] && dts[i]+1e-9 < rcp[i] {
				t.Fatalf("%s: both memory heuristics worse than RCP at index %d", app, i)
			}
		}
		last := len(ideal) - 1
		if mpo[last] <= rcp[last] {
			t.Fatalf("%s: MPO not more memory-scalable than RCP at P=32 (%v vs %v)", app, mpo[last], rcp[last])
		}
		if rcpMuchWorse && rcp[last] > mpo[last]/2 {
			t.Fatalf("%s: expected RCP to be severely unscalable (%v vs %v)", app, rcp[last], mpo[last])
		}
	}
	check(a, "cholesky", false)
	check(b, "lu", true)
}

func TestTable8MFLOPSScale(t *testing.T) {
	rows := Table8(io.Discard, Small)
	if len(rows) != 3 {
		t.Fatalf("rows %d", len(rows))
	}
	for i := 1; i < len(rows); i++ {
		if rows[i].PT >= rows[i-1].PT {
			t.Fatalf("PT not decreasing with processors: %+v", rows)
		}
		if rows[i].MFLOPS <= rows[i-1].MFLOPS {
			t.Fatalf("MFLOPS not increasing with processors: %+v", rows)
		}
	}
}

func TestAblationMergeSweepMonotone(t *testing.T) {
	rows := AblationMergeSweep(io.Discard, Small)
	for i := 1; i < len(rows); i++ {
		if rows[i].Slices > rows[i-1].Slices {
			t.Fatalf("slice count grew with larger budget: %+v", rows)
		}
		if rows[i].PT > rows[i-1].PT*1.02 {
			t.Fatalf("parallel time degraded with larger budget: %+v", rows)
		}
	}
}

func TestFigure3Narrative(t *testing.T) {
	var sb strings.Builder
	Figure3(&sb)
	out := sb.String()
	for _, want := range []string{"MAP 1", "alloc{", "notify P", "free{", "P0", "P1"} {
		if !strings.Contains(out, want) {
			t.Fatalf("Figure 3 output missing %q:\n%s", want, out)
		}
	}
}

func TestExtensionTrisolveMemoryScales(t *testing.T) {
	rows := ExtensionTrisolve(io.Discard, Small)
	for i := 1; i < len(rows); i++ {
		if rows[i].MinMemRatio >= rows[i-1].MinMemRatio {
			t.Fatalf("per-processor memory share not shrinking: %+v", rows)
		}
	}
}
