package paper

import (
	"fmt"
	"io"

	"repro/internal/mem"
	"repro/internal/sched"
)

// FragmentationRow is one row of the fragmentation extension experiment.
type FragmentationRow struct {
	Procs                       int
	CountingFloor, AddressFloor int64
	PremiumPct                  float64
}

// ExtensionFragmentation measures the paper's closing open problem: the
// MIN_MEM arithmetic (and the counting allocator behind the MAP planner)
// assumes freed space is perfectly reusable, but "space freed from
// irregular ... structures usually contains many small pieces and is hard
// to be re-utilized". We replay each MAP plan's allocation trace against a
// real first-fit coalescing allocator (rma.Arena) and binary-search the
// tightest capacity that still works — the gap over the counting floor is
// the fragmentation premium a special memory allocator must close.
// Measured on the Cholesky workload with MPO ordering.
func ExtensionFragmentation(w io.Writer, sc Scale) []FragmentationRow {
	header(w, "Extension: fragmentation premium of address-based allocation (MPO)")
	var rows []FragmentationRow
	for _, app := range []struct {
		name string
		wls  func(Scale, int) []Workload
	}{{"Cholesky (uniform blocks)", cholWorkloads}, {"LU (variable panels)", luWorkloads}} {
		fmt.Fprintf(w, "%s\n", app.name)
		fmt.Fprintf(w, "%-5s %16s %16s %10s\n", "P", "counting floor", "first-fit floor", "premium")
		for _, p := range tableProcs {
			wl := app.wls(sc, p)[0]
			s := buildSchedule(wl.G, p, sched.MPO, 0)
			counting, address, err := mem.Floors(s, mem.Options{})
			if err != nil {
				panic(err)
			}
			row := FragmentationRow{
				Procs:         p,
				CountingFloor: counting,
				AddressFloor:  address,
				PremiumPct:    100 * (float64(address)/float64(counting) - 1),
			}
			rows = append(rows, row)
			fmt.Fprintf(w, "P=%-3d %16d %16d %9.2f%%\n", p, counting, address, row.PremiumPct)
		}
	}
	return rows
}

// BreakdownRow is one row of the memory-breakdown extension experiment.
type BreakdownRow struct {
	Procs   int
	DataPct float64
	DepPct  float64 // dependence-structure share, the paper's 18-50% figure
}

// ExtensionMemoryBreakdown estimates the other space overhead the paper's
// conclusion quantifies: "dependence structures can take from 18% to 50%
// of the total memory space". Per processor we count the storage of the
// local dependence structure (edge records touching local tasks and task
// descriptors, in float64-word units: 2 words per edge endpoint, 6 per
// task) against the data-object space of the schedule, and report the
// machine-wide average share.
func ExtensionMemoryBreakdown(w io.Writer, sc Scale) []BreakdownRow {
	header(w, "Extension: dependence-structure share of total memory")
	fmt.Fprintf(w, "%-5s %12s %12s\n", "P", "data", "dep-struct")
	const (
		wordsPerEdgeEnd = 2
		wordsPerTask    = 6
	)
	var rows []BreakdownRow
	for _, p := range tableProcs {
		wl := cholWorkloads(sc, p)[0]
		s := buildSchedule(wl.G, p, sched.MPO, 0)
		perm := s.PermSize()
		vol := s.VolatileObjects()
		var depSum, dataSum float64
		for q := 0; q < p; q++ {
			localTasks := len(s.Order[q])
			localEdgeEnds := 0
			for _, t := range s.Order[q] {
				localEdgeEnds += len(s.G.Out(t)) + len(s.G.In(t))
			}
			dep := float64(wordsPerTask*localTasks + wordsPerEdgeEnd*localEdgeEnds)
			data := float64(perm[q])
			for _, sz := range vol[q] {
				data += float64(sz)
			}
			depSum += dep
			dataSum += data
		}
		row := BreakdownRow{
			Procs:   p,
			DataPct: 100 * dataSum / (dataSum + depSum),
			DepPct:  100 * depSum / (dataSum + depSum),
		}
		rows = append(rows, row)
		fmt.Fprintf(w, "P=%-3d %11.1f%% %11.1f%%\n", p, row.DataPct, row.DepPct)
	}
	return rows
}
