// Package paper regenerates every table and figure of the evaluation
// section (Section 5) of Fu & Yang, PPoPP'97, on the simulated machine:
//
//	Table 1  – per-processor memory over S1/p without recycling (Cholesky)
//	Table 2  – PT increase and #MAPs under 100/75/50/40% memory (Cholesky)
//	Table 3  – the same for sparse LU
//	Table 4  – RCP vs MPO parallel times (Cholesky, LU)
//	Table 5  – average #MAPs, RCP vs MPO (Cholesky)
//	Table 6  – MPO vs DTS parallel times (Cholesky, LU)
//	Table 7  – RCP vs DTS+merge parallel times (Cholesky, LU)
//	Table 8  – large sparse LU: PT, #MAPs, MFLOPS
//	Figure 7 – memory scalability of the three heuristics
//
// Absolute numbers differ from the paper (synthetic matrices, idealized
// cost model); the shapes — who wins, how overhead grows as memory shrinks
// and processor counts rise, where schedules stop being executable — are
// the reproduction targets. See EXPERIMENTS.md.
package paper

import (
	"fmt"
	"io"
	"math"

	"repro/internal/chol"
	"repro/internal/graph"
	"repro/internal/lu"
	"repro/internal/machine"
	"repro/internal/mem"
	"repro/internal/sched"
	"repro/internal/sparse"
	"repro/internal/trisolve"
	"repro/internal/util"
)

// Scale selects workload sizes.
type Scale int

const (
	// Small is a scaled-down workload for quick runs and benchmarks.
	Small Scale = iota
	// Full uses the paper's matrix dimensions (n = 3500..7300).
	Full
)

// Workload bundles a built application instance for one processor count.
type Workload struct {
	Name string
	G    *graph.DAG
}

// Workload caches: the same built problems are shared across tables (the
// harness is sequential, so plain maps suffice).
var (
	cholCache = map[[2]int][]Workload{}
	luCache   = map[[2]int][]Workload{}
)

// cholWorkloads returns the Cholesky test problems (BCSSTK15/24 stand-ins)
// built for p processors.
func cholWorkloads(sc Scale, p int) []Workload {
	if w, ok := cholCache[[2]int{int(sc), p}]; ok {
		return w
	}
	w := buildCholWorkloads(sc, p)
	cholCache[[2]int{int(sc), p}] = w
	return w
}

func buildCholWorkloads(sc Scale, p int) []Workload {
	var mats []struct {
		name string
		m    *sparse.Matrix
	}
	if sc == Full {
		mats = []struct {
			name string
			m    *sparse.Matrix
		}{
			{"BCSSTK15~", sparse.BCSSTK15Like()},
			{"BCSSTK24~", sparse.BCSSTK24Like()},
		}
	} else {
		rng := util.NewRNG(100)
		mats = []struct {
			name string
			m    *sparse.Matrix
		}{
			{"grid24x18", sparse.AddRandomSymLinks(sparse.Grid2D(24, 18, true), 150, rng)},
			{"grid20x20", sparse.AddRandomSymLinks(sparse.Grid2D(20, 20, true), 120, rng)},
		}
	}
	bs := 24
	if sc == Small {
		bs = 12
	}
	out := make([]Workload, 0, len(mats))
	for _, mm := range mats {
		m := mm.m.PermuteSym(sparse.RCM(mm.m))
		pr, err := chol.Build(m, chol.Options{Procs: p, BlockSize: bs})
		if err != nil {
			panic(fmt.Sprintf("paper: chol build %s: %v", mm.name, err))
		}
		out = append(out, Workload{Name: mm.name, G: pr.G})
	}
	return out
}

// luWorkloads returns the LU test problem (goodwin stand-in) built for p
// processors.
func luWorkloads(sc Scale, p int) []Workload {
	if w, ok := luCache[[2]int{int(sc), p}]; ok {
		return w
	}
	w := buildLUWorkloads(sc, p)
	luCache[[2]int{int(sc), p}] = w
	return w
}

func buildLUWorkloads(sc Scale, p int) []Workload {
	var m *sparse.Matrix
	name := "goodwin~"
	if sc == Full {
		m = sparse.GoodwinLike()
	} else {
		rng := util.NewRNG(200)
		m = sparse.AddRandomUnsymLinks(sparse.Grid2D(26, 22, true), 500, rng)
		name = "grid26x22u"
	}
	bs := 24
	if sc == Small {
		bs = 12
	}
	pr, err := lu.Build(m, lu.Options{Procs: p, BlockSize: bs})
	if err != nil {
		panic(fmt.Sprintf("paper: lu build: %v", err))
	}
	return []Workload{{Name: name, G: pr.G}}
}

// trisolveGraph builds the triangular-solve task graph from the factored
// first Cholesky workload.
func trisolveGraph(sc Scale, p int) *graph.DAG {
	key := [2]int{int(sc), p}
	if g, ok := trisolveCache[key]; ok {
		return g
	}
	// Rebuild the underlying chol problem with values so the factor exists.
	var m *sparse.Matrix
	rng := util.NewRNG(100)
	if sc == Full {
		m = sparse.BCSSTK15Like()
	} else {
		m = sparse.AddRandomSymLinks(sparse.Grid2D(24, 18, true), 150, rng)
	}
	bs := 24
	if sc == Small {
		bs = 12
	}
	m = sparse.SPDValues(m.PermuteSym(sparse.RCM(m)), rng)
	cp, err := chol.Build(m, chol.Options{Procs: p, BlockSize: bs})
	if err != nil {
		panic(err)
	}
	factor, err := cp.SequentialFactor()
	if err != nil {
		panic(err)
	}
	b := make([]float64, m.N)
	for i := range b {
		b[i] = 1
	}
	ts, err := trisolve.Build(cp, factor, b)
	if err != nil {
		panic(err)
	}
	trisolveCache[key] = ts.G
	return ts.G
}

var trisolveCache = map[[2]int]*graph.DAG{}

// buildSchedule assigns owners via the application mapping already present
// on the graph and orders with the heuristic.
func buildSchedule(g *graph.DAG, p int, h sched.Heuristic, availVol int64) *sched.Schedule {
	assign, err := sched.OwnerComputeAssign(g, p)
	if err != nil {
		panic("paper: " + err.Error())
	}
	s, err := sched.ScheduleWith(h, g, assign, p, sched.T3D(), availVol)
	if err != nil {
		panic("paper: " + err.Error())
	}
	return s
}

// simulate runs the machine simulator for the schedule under capacity,
// returning (parallel time, avg MAPs, executable).
func simulate(s *sched.Schedule, capacity int64, baseline bool) (float64, float64, bool) {
	pl, err := mem.NewPlan(s, capacity)
	if err != nil {
		panic("paper: " + err.Error())
	}
	if !pl.Executable {
		return math.Inf(1), math.Inf(1), false
	}
	res, err := machine.Simulate(s, pl, sched.T3D(), machine.Options{Baseline: baseline})
	if err != nil {
		panic("paper: " + err.Error())
	}
	return res.ParallelTime, res.AvgMAPs, true
}

// Procs used throughout the evaluation tables.
var tableProcs = []int{2, 4, 8, 16, 32}

// memPercents of Tables 2 and 3 (the 100% column reports overhead with
// full memory under management).
var memPercents = []int{100, 75, 50, 40}

// cmpPercents of Tables 4, 6, 7.
var cmpPercents = []int{75, 50, 40, 25}

// fmtEntry renders a ratio entry the way the paper does.
func fmtPct(v float64) string {
	if math.IsInf(v, 0) {
		return "inf"
	}
	return fmt.Sprintf("%.1f%%", v*100)
}

func fmtMAPs(v float64) string {
	if math.IsInf(v, 0) {
		return "inf"
	}
	return fmt.Sprintf("%.2f", v)
}

// header prints a rule-delimited table title.
func header(w io.Writer, title string) {
	fmt.Fprintf(w, "\n=== %s ===\n", title)
}
