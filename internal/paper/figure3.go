package paper

import (
	"fmt"
	"io"

	"repro/internal/machine"
	"repro/internal/mem"
	"repro/internal/sched"
	"repro/internal/trace"
)

// Figure3 writes to w an illustration of Figure 3 of the paper on the
// Figure-2 worked example:
// where the memory allocation points fall when the available memory is
// tight, which volatile objects each MAP frees and allocates, which
// addresses are notified to whom, and the resulting execution as a Gantt
// chart (MAPs drawn as '#').
func Figure3(w io.Writer) {
	header(w, "Figure 3: memory allocation points on the Figure-2 example")
	g := sched.Figure2DAG()
	assign, err := sched.OwnerComputeAssign(g, 2)
	if err != nil {
		panic(err)
	}
	s, err := sched.ScheduleMPO(g, assign, 2, sched.Unit())
	if err != nil {
		panic(err)
	}
	capacity := s.MinMem()
	fmt.Fprintf(w, "MPO schedule, %d memory units per processor (MIN_MEM)\n\n", capacity)
	pl, err := mem.NewPlan(s, capacity)
	if err != nil {
		panic(err)
	}
	for p := 0; p < s.P; p++ {
		fmt.Fprintf(w, "P%d order:", p)
		for _, t := range s.Order[p] {
			fmt.Fprintf(w, " %s", g.Tasks[t].Name)
		}
		fmt.Fprintln(w)
		for mi, m := range pl.Procs[p].MAPs {
			pos := "start of schedule"
			if m.Pos > 0 {
				pos = fmt.Sprintf("before %s", g.Tasks[s.Order[p][m.Pos]].Name)
			}
			fmt.Fprintf(w, "  MAP %d (%s):", mi+1, pos)
			if len(m.Frees) > 0 {
				fmt.Fprintf(w, " free{")
				for i, o := range m.Frees {
					if i > 0 {
						fmt.Fprint(w, ",")
					}
					fmt.Fprint(w, g.Objects[o].Name)
				}
				fmt.Fprint(w, "}")
			}
			if len(m.Allocs) > 0 {
				fmt.Fprintf(w, " alloc{")
				for i, o := range m.Allocs {
					if i > 0 {
						fmt.Fprint(w, ",")
					}
					fmt.Fprint(w, g.Objects[o].Name)
				}
				fmt.Fprint(w, "}")
			}
			for dst, objs := range m.Notify {
				fmt.Fprintf(w, " notify P%d of {", dst)
				for i, o := range objs {
					if i > 0 {
						fmt.Fprint(w, ",")
					}
					fmt.Fprint(w, g.Objects[o].Name)
				}
				fmt.Fprint(w, "}")
			}
			fmt.Fprintln(w)
		}
	}
	rec := &trace.Recorder{}
	model := sched.Unit()
	// Half-unit MAP charges so the allocation points are visible in the
	// chart.
	model.MAPOverhead = 0.5
	model.MAPPerObject = 0.25
	if _, err := machine.Simulate(s, pl, model, machine.Options{Trace: rec}); err != nil {
		panic(err)
	}
	fmt.Fprintln(w, "\nexecution ('#' = MAP activity):")
	fmt.Fprint(w, rec.Gantt(72))
}

// ExtensionTrisolveRow reports the triangular-solve extension experiment.
type ExtensionTrisolveRow struct {
	Procs       int
	Tasks       int
	MinMemRatio float64 // MPO MIN_MEM over S1
	PT          float64
}

// ExtensionTrisolve runs the sparse triangular solver — the third workload
// the paper says RAPID handles — through the same pipeline: graph size,
// memory behaviour under MPO, and simulated parallel time. (The paper has
// no table for it; this is the repository's extension experiment.)
func ExtensionTrisolve(w io.Writer, sc Scale) []ExtensionTrisolveRow {
	header(w, "Extension: sparse triangular solve (forward+backward) through the pipeline")
	fmt.Fprintf(w, "%-5s %8s %12s %12s\n", "P", "tasks", "mem/S1", "PT")
	var rows []ExtensionTrisolveRow
	for _, p := range tableProcs {
		g := trisolveGraph(sc, p)
		s := buildSchedule(g, p, sched.MPO, 0)
		pl, err := mem.NewPlan(s, s.MinMem())
		if err != nil {
			panic(err)
		}
		if !pl.Executable {
			pl, err = mem.NewPlan(s, s.TOT())
			if err != nil {
				panic(err)
			}
		}
		res, err := machine.Simulate(s, pl, sched.T3D(), machine.Options{})
		if err != nil {
			panic(err)
		}
		row := ExtensionTrisolveRow{
			Procs:       p,
			Tasks:       g.NumTasks(),
			MinMemRatio: float64(s.MinMem()) / float64(g.SeqSpace()),
			PT:          res.ParallelTime,
		}
		rows = append(rows, row)
		fmt.Fprintf(w, "P=%-3d %8d %12.3f %12.4g\n", row.Procs, row.Tasks, row.MinMemRatio, row.PT)
	}
	return rows
}
