package paper

import (
	"fmt"
	"io"
	"math"

	"repro/internal/machine"
	"repro/internal/mem"
	"repro/internal/sched"
)

// AblationRowMAP is one row of the MAP-policy ablation.
type AblationRowMAP struct {
	Procs                 int
	GreedyMAPs, JITMAPs   float64
	GreedyPT, JITPT       float64
	GreedyFloor, JITFloor int64 // tightest executable capacity found
}

// AblationMAPPolicy compares the paper's greedy allocate-ahead MAP policy
// against a just-in-time variant (DESIGN.md §5): greedy notifies addresses
// early (enabling data presending, fewer MAPs) but holds space for future
// objects; just-in-time admits tighter memory budgets at the cost of more
// MAPs and later notification. Measured on the Cholesky workload with MPO
// ordering at a 50% memory budget; the executable floor is found by binary
// search between MinMem and TOT.
func AblationMAPPolicy(w io.Writer, sc Scale) []AblationRowMAP {
	header(w, "Ablation: greedy allocate-ahead vs just-in-time MAP allocation (Cholesky, MPO, 50% memory)")
	fmt.Fprintf(w, "%-5s %14s %14s %12s %14s %14s\n", "P", "greedy #MAPs", "JIT #MAPs", "PT ratio", "greedy floor", "JIT floor")
	var rows []AblationRowMAP
	for _, p := range tableProcs {
		wl := cholWorkloads(sc, p)[0]
		s := buildSchedule(wl.G, p, sched.MPO, 0)
		tot := s.TOT()
		capacity := tot / 2
		row := AblationRowMAP{Procs: p}
		for i, jit := range []bool{false, true} {
			pl, err := mem.NewPlanOpts(s, capacity, mem.Options{JustInTime: jit})
			if err != nil {
				panic(err)
			}
			pt := math.Inf(1)
			maps := math.Inf(1)
			if pl.Executable {
				res, err := machine.Simulate(s, pl, sched.T3D(), machine.Options{})
				if err != nil {
					panic(err)
				}
				pt, maps = res.ParallelTime, res.AvgMAPs
			}
			floor := executableFloor(s, mem.Options{JustInTime: jit})
			if i == 0 {
				row.GreedyMAPs, row.GreedyPT, row.GreedyFloor = maps, pt, floor
			} else {
				row.JITMAPs, row.JITPT, row.JITFloor = maps, pt, floor
			}
		}
		rows = append(rows, row)
		ratio := row.JITPT / row.GreedyPT
		fmt.Fprintf(w, "P=%-3d %14s %14s %12.3f %14d %14d\n",
			p, fmtMAPs(row.GreedyMAPs), fmtMAPs(row.JITMAPs), ratio, row.GreedyFloor, row.JITFloor)
	}
	return rows
}

// executableFloor binary-searches the tightest capacity at which the plan
// remains executable.
func executableFloor(s *sched.Schedule, opt mem.Options) int64 {
	lo, hi := int64(1), s.TOT()
	for lo < hi {
		mid := (lo + hi) / 2
		pl, err := mem.NewPlanOpts(s, mid, opt)
		if err != nil {
			panic(err)
		}
		if pl.Executable {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo
}

// AblationRowSlots is one row of the address-buffer-depth ablation.
type AblationRowSlots struct {
	Procs int
	PT    []float64 // indexed by depth 1, 2, 4
}

// AblationSlotDepth measures the cost of the paper's single-slot address
// buffers: deeper buffers let a consumer's MAP return before every peer has
// consumed its previous package. Measured on the Cholesky workload with MPO
// ordering at a 40% memory budget.
func AblationSlotDepth(w io.Writer, sc Scale) []AblationRowSlots {
	depths := []int{1, 2, 4}
	header(w, "Ablation: address-buffer depth (Cholesky, MPO, 40% memory)")
	fmt.Fprintf(w, "%-5s", "P")
	for _, d := range depths {
		fmt.Fprintf(w, " %14s", fmt.Sprintf("PT depth=%d", d))
	}
	fmt.Fprintln(w)
	var rows []AblationRowSlots
	for _, p := range tableProcs {
		wl := cholWorkloads(sc, p)[0]
		s := buildSchedule(wl.G, p, sched.MPO, 0)
		capacity := s.TOT() * 40 / 100
		pl, err := mem.NewPlan(s, capacity)
		if err != nil {
			panic(err)
		}
		row := AblationRowSlots{Procs: p}
		fmt.Fprintf(w, "P=%-3d", p)
		for _, d := range depths {
			pt := math.Inf(1)
			if pl.Executable {
				res, err := machine.Simulate(s, pl, sched.T3D(), machine.Options{SlotDepth: d})
				if err != nil {
					panic(err)
				}
				pt = res.ParallelTime
			}
			row.PT = append(row.PT, pt)
			if math.IsInf(pt, 0) {
				fmt.Fprintf(w, " %14s", "inf")
			} else {
				fmt.Fprintf(w, " %14.4g", pt)
			}
		}
		fmt.Fprintln(w)
		rows = append(rows, row)
	}
	return rows
}

// AblationRowMerge is one row of the slice-merge budget sweep.
type AblationRowMerge struct {
	BudgetPct int
	Slices    int
	PT        float64
}

// AblationMergeSweep sweeps the DTS slice-merging budget from tight to
// loose on the LU workload at p=16 and reports how the slice count and the
// parallel time respond: the time recovered by merging is the content of
// Table 7.
func AblationMergeSweep(w io.Writer, sc Scale) []AblationRowMerge {
	header(w, "Ablation: DTS slice-merge budget sweep (LU, p=16)")
	const p = 16
	wl := luWorkloads(sc, p)[0]
	fmt.Fprintf(w, "%-10s %8s %12s\n", "budget", "slices", "PT")
	var rows []AblationRowMerge
	for _, pct := range []int{5, 10, 25, 50, 100} {
		// Budget as a percentage of the volatile TOT.
		s0 := buildSchedule(wl.G, p, sched.DTS, 0)
		volTot := s0.TOT()
		budget := volTot * int64(pct) / 100
		s := buildSchedule(wl.G, p, sched.DTSMerge, budget)
		pl, err := mem.NewPlan(s, s.TOT())
		if err != nil {
			panic(err)
		}
		res, err := machine.Simulate(s, pl, sched.T3D(), machine.Options{})
		if err != nil {
			panic(err)
		}
		row := AblationRowMerge{BudgetPct: pct, Slices: s.NumSlices, PT: res.ParallelTime}
		rows = append(rows, row)
		fmt.Fprintf(w, "%9d%% %8d %12.4g\n", pct, row.Slices, row.PT)
	}
	return rows
}
