package paper

import (
	"fmt"
	"io"

	"repro/internal/lu"
	"repro/internal/sched"
	"repro/internal/sparse"
	"repro/internal/util"
)

// Table8Row is one row of Table 8.
type Table8Row struct {
	Procs   int
	PT      float64
	AvgMAPs float64
	MFLOPS  float64
}

// Table8 reproduces Table 8: solving a previously-unsolvable sparse LU
// instance (a BCSSTK33-like matrix truncated to its leading block, per the
// paper's "take data from column/row 1 up to 6080") under a memory budget
// that requires active memory management, with MPO ordering. MFLOPS is
// computed from the structural flop count and the simulated parallel time.
func Table8(w io.Writer, sc Scale) []Table8Row {
	header(w, "Table 8: large sparse LU with partial pivoting under memory pressure")
	var m *sparse.Matrix
	bs := 24
	if sc == Full {
		m = sparse.BCSSTK33Like().Truncate(6080)
	} else {
		rng := util.NewRNG(33)
		m = sparse.AddRandomUnsymLinks(sparse.Grid2D(32, 24, true), 600, rng)
		bs = 12
	}
	fmt.Fprintf(w, "%-6s %12s %10s %10s\n", "#proc", "PT(seconds)", "Ave.#MAPs", "MFLOPS")
	var rows []Table8Row
	for _, p := range []int{16, 32, 64} {
		pr, err := lu.Build(m, lu.Options{Procs: p, BlockSize: bs})
		if err != nil {
			panic("paper: " + err.Error())
		}
		s := buildSchedule(pr.G, p, sched.MPO, 0)
		// Budget: half of the no-recycling requirement, forcing the active
		// memory management to earn its keep (mirrors the paper's scenario
		// where the instance does not fit the original executor).
		capacity := s.TOT() / 2
		if capacity < s.MinMem() {
			capacity = s.MinMem()
		}
		pt, maps, ok := simulate(s, capacity, false)
		if !ok {
			panic("paper: Table 8 configuration must be executable")
		}
		flops := pr.G.TotalWork()
		row := Table8Row{Procs: p, PT: pt, AvgMAPs: maps, MFLOPS: flops / pt / 1e6}
		rows = append(rows, row)
		fmt.Fprintf(w, "%-6d %12.2f %10.2f %10.1f\n", row.Procs, row.PT, row.AvgMAPs, row.MFLOPS)
	}
	return rows
}

// Figure7Series is one curve of Figure 7: memory reduction ratios
// S1 / S_p^A over processor counts.
type Figure7Series struct {
	Label  string
	Ratios []float64 // indexed like tableProcs
}

// Figure7 reproduces Figure 7: memory scalability (S1/S_p^A) of the three
// heuristics against the ideal S1/(S1/p) = p, for (a) sparse Cholesky and
// (b) sparse LU.
func Figure7(w io.Writer, sc Scale) (a, b []Figure7Series) {
	a = figure7half(w, "Figure 7a: memory scalability, sparse Cholesky", cholWorkloads, sc)
	b = figure7half(w, "Figure 7b: memory scalability, sparse LU", luWorkloads, sc)
	return a, b
}

func figure7half(w io.Writer, title string, workloads func(Scale, int) []Workload, sc Scale) []Figure7Series {
	header(w, title)
	heuristics := []sched.Heuristic{sched.RCP, sched.MPO, sched.DTS}
	series := make([]Figure7Series, 0, len(heuristics)+1)
	ideal := Figure7Series{Label: "ideal S1/p"}
	for _, p := range tableProcs {
		ideal.Ratios = append(ideal.Ratios, float64(p))
	}
	series = append(series, ideal)
	for _, h := range heuristics {
		s7 := Figure7Series{Label: h.String()}
		for _, p := range tableProcs {
			sum, count := 0.0, 0
			for _, wl := range workloads(sc, p) {
				s := buildSchedule(wl.G, p, h, 0)
				s1 := float64(wl.G.SeqSpace())
				sum += s1 / float64(s.PerProcPeak())
				count++
			}
			s7.Ratios = append(s7.Ratios, sum/float64(count))
		}
		series = append(series, s7)
	}
	fmt.Fprintf(w, "%-12s", "series")
	for _, p := range tableProcs {
		fmt.Fprintf(w, " %8s", fmt.Sprintf("P=%d", p))
	}
	fmt.Fprintln(w)
	for _, s7 := range series {
		fmt.Fprintf(w, "%-12s", s7.Label)
		for _, r := range s7.Ratios {
			fmt.Fprintf(w, " %8.2f", r)
		}
		fmt.Fprintln(w)
	}
	return series
}
