package paper

import (
	"fmt"
	"io"
	"math"

	"repro/internal/sched"
)

// Table1Row is one column of the paper's Table 1.
type Table1Row struct {
	Procs int
	Ratio float64 // average per-processor memory over S1/p, no recycling
}

// Table1 reproduces Table 1: the average ratio of per-processor memory use
// (permanent + all volatile objects, never recycled — the original RAPID
// allocation strategy) over the lower bound S1/p, for sparse Cholesky under
// RCP ordering.
func Table1(w io.Writer, sc Scale) []Table1Row {
	header(w, "Table 1: per-processor memory over S1/p, sparse Cholesky, no recycling")
	fmt.Fprintf(w, "%-12s %8s\n", "#processors", "ratio")
	var rows []Table1Row
	for _, p := range []int{2, 4, 8, 16} {
		sum, count := 0.0, 0
		for _, wl := range cholWorkloads(sc, p) {
			s := buildSchedule(wl.G, p, sched.RCP, 0)
			perm := s.PermSize()
			vol := s.VolatileObjects()
			s1 := float64(wl.G.SeqSpace())
			for q := 0; q < p; q++ {
				used := float64(perm[q])
				for _, sz := range vol[q] {
					used += float64(sz)
				}
				sum += used / (s1 / float64(p))
				count++
			}
		}
		r := Table1Row{Procs: p, Ratio: sum / float64(count)}
		rows = append(rows, r)
		fmt.Fprintf(w, "%-12d %8.2f\n", r.Procs, r.Ratio)
	}
	return rows
}

// OverheadRow is one row of Tables 2 and 3.
type OverheadRow struct {
	Procs int
	// PTIncrease[i] and MAPs[i] correspond to memPercents[i]; +Inf marks a
	// non-executable configuration.
	PTIncrease []float64
	MAPs       []float64
}

// overheadTable is the shared implementation of Tables 2 and 3: the cost of
// the run-time memory management scheme under shrinking memory, for RCP
// schedules. The comparison base is the parallel time of the same schedule
// with 100% memory and no memory-managing overhead (the original RAPID).
func overheadTable(w io.Writer, title string, workloads func(Scale, int) []Workload, sc Scale) []OverheadRow {
	header(w, title)
	fmt.Fprintf(w, "%-5s", "P")
	for _, pct := range memPercents {
		fmt.Fprintf(w, " | %7s PT-incr  #MAPs", fmt.Sprintf("%d%%", pct))
	}
	fmt.Fprintln(w)
	var rows []OverheadRow
	for _, p := range tableProcs {
		row := OverheadRow{Procs: p, PTIncrease: make([]float64, len(memPercents)), MAPs: make([]float64, len(memPercents))}
		wls := workloads(sc, p)
		// Average the ratios over the workloads, matrix by matrix.
		for i := range memPercents {
			row.PTIncrease[i] = 0
			row.MAPs[i] = 0
		}
		for _, wl := range wls {
			s := buildSchedule(wl.G, p, sched.RCP, 0)
			tot := s.TOT()
			basePT, _, ok := simulate(s, tot, true)
			if !ok {
				panic("paper: baseline must be executable")
			}
			for i, pct := range memPercents {
				capacity := tot * int64(pct) / 100
				pt, maps, ok := simulate(s, capacity, false)
				if !ok {
					row.PTIncrease[i] = math.Inf(1)
					row.MAPs[i] = math.Inf(1)
					continue
				}
				if !math.IsInf(row.PTIncrease[i], 0) {
					row.PTIncrease[i] += (pt/basePT - 1) / float64(len(wls))
					row.MAPs[i] += maps / float64(len(wls))
				}
			}
		}
		rows = append(rows, row)
		fmt.Fprintf(w, "P=%-3d", p)
		for i := range memPercents {
			fmt.Fprintf(w, " | %16s %6s", fmtPct(row.PTIncrease[i]), fmtMAPs(row.MAPs[i]))
		}
		fmt.Fprintln(w)
	}
	return rows
}

// Table2 reproduces Table 2 (sparse Cholesky).
func Table2(w io.Writer, sc Scale) []OverheadRow {
	return overheadTable(w, "Table 2: run-time execution scheme overhead, sparse Cholesky", cholWorkloads, sc)
}

// Table3 reproduces Table 3 (sparse LU).
func Table3(w io.Writer, sc Scale) []OverheadRow {
	return overheadTable(w, "Table 3: run-time execution scheme overhead, sparse LU", luWorkloads, sc)
}

// CompareRow is one row of Tables 4, 6 and 7: entries are PT_B/PT_A - 1 per
// memory percentage; NaN renders "*" (B executable, A not), -Inf renders
// "-" (neither executable).
type CompareRow struct {
	Procs   int
	Entries []float64
}

const (
	entryStarA = math.MaxFloat64 // B executable while A is not -> "*"
	entryDash  = -math.MaxFloat64
)

func fmtCompare(v float64) string {
	switch v {
	case entryStarA:
		return "*"
	case entryDash:
		return "-"
	}
	return fmtPct(v)
}

// compareTable runs A vs B under the paper's entry semantics.
func compareTable(w io.Writer, title string, workloads func(Scale, int) []Workload, sc Scale,
	hA, hB sched.Heuristic, mergeBudget bool) []CompareRow {
	header(w, title)
	fmt.Fprintf(w, "%-5s", "P")
	for _, pct := range cmpPercents {
		fmt.Fprintf(w, " %8s", fmt.Sprintf("%d%%", pct))
	}
	fmt.Fprintln(w)
	var rows []CompareRow
	for _, p := range tableProcs {
		row := CompareRow{Procs: p, Entries: make([]float64, len(cmpPercents))}
		wls := workloads(sc, p)
		type per struct {
			ok  [2]bool
			pt  [2]float64
			cnt int
		}
		acc := make([]per, len(cmpPercents))
		for _, wl := range wls {
			sA := buildSchedule(wl.G, p, hA, 0)
			tot := sA.TOT()
			for i, pct := range cmpPercents {
				capacity := tot * int64(pct) / 100
				sB := buildSchedule(wl.G, p, hB, volatileBudget(wl, p, capacity, mergeBudget))
				ptA, _, okA := simulate(sA, capacity, false)
				ptB, _, okB := simulate(sB, capacity, false)
				acc[i].cnt++
				if okA {
					acc[i].ok[0] = true
					acc[i].pt[0] += ptA
				}
				if okB {
					acc[i].ok[1] = true
					acc[i].pt[1] += ptB
				}
			}
		}
		for i := range cmpPercents {
			switch {
			case !acc[i].ok[0] && !acc[i].ok[1]:
				row.Entries[i] = entryDash
			case !acc[i].ok[0]:
				row.Entries[i] = entryStarA
			case !acc[i].ok[1]:
				// A executable, B not: the paper has no symbol for this
				// (it does not occur); render as dash.
				row.Entries[i] = entryDash
			default:
				row.Entries[i] = acc[i].pt[1]/acc[i].pt[0] - 1
			}
		}
		rows = append(rows, row)
		fmt.Fprintf(w, "P=%-3d", p)
		for i := range cmpPercents {
			fmt.Fprintf(w, " %8s", fmtCompare(row.Entries[i]))
		}
		fmt.Fprintln(w)
	}
	return rows
}

// volatileBudget converts a capacity into the per-processor volatile budget
// used by DTS slice merging (capacity minus the largest permanent space).
func volatileBudget(wl Workload, p int, capacity int64, merge bool) int64 {
	if !merge {
		return 1 << 62
	}
	perm := make([]int64, p)
	for i := range wl.G.Objects {
		perm[wl.G.Objects[i].Owner] += wl.G.Objects[i].Size
	}
	var maxPerm int64
	for _, v := range perm {
		if v > maxPerm {
			maxPerm = v
		}
	}
	b := capacity - maxPerm
	if b < 1 {
		b = 1
	}
	return b
}

// Table4 reproduces Table 4: RCP vs MPO, (a) Cholesky and (b) LU.
func Table4(w io.Writer, sc Scale) (a, b []CompareRow) {
	a = compareTable(w, "Table 4a: RCP vs MPO, sparse Cholesky (entry = PT_MPO/PT_RCP - 1)", cholWorkloads, sc, sched.RCP, sched.MPO, false)
	b = compareTable(w, "Table 4b: RCP vs MPO, sparse LU", luWorkloads, sc, sched.RCP, sched.MPO, false)
	return a, b
}

// Table5Row is one row of Table 5.
type Table5Row struct {
	Procs int
	// RCP[i] / MPO[i] are average #MAPs at cmpPercents[i]; +Inf means
	// non-executable.
	RCP, MPO []float64
}

// Table5 reproduces Table 5: average number of MAPs for sparse Cholesky,
// RCP vs MPO, under shrinking memory.
func Table5(w io.Writer, sc Scale) []Table5Row {
	header(w, "Table 5: average #MAPs, sparse Cholesky, RCP vs MPO")
	fmt.Fprintf(w, "%-5s", "P")
	for _, pct := range cmpPercents {
		fmt.Fprintf(w, " %13s", fmt.Sprintf("%d%% RCP/MPO", pct))
	}
	fmt.Fprintln(w)
	var rows []Table5Row
	for _, p := range tableProcs {
		row := Table5Row{Procs: p, RCP: make([]float64, len(cmpPercents)), MPO: make([]float64, len(cmpPercents))}
		wls := cholWorkloads(sc, p)
		for _, wl := range wls {
			sA := buildSchedule(wl.G, p, sched.RCP, 0)
			sB := buildSchedule(wl.G, p, sched.MPO, 0)
			tot := sA.TOT()
			for i, pct := range cmpPercents {
				capacity := tot * int64(pct) / 100
				_, mapsA, okA := simulate(sA, capacity, false)
				_, mapsB, okB := simulate(sB, capacity, false)
				if !okA {
					row.RCP[i] = math.Inf(1)
				} else if !math.IsInf(row.RCP[i], 0) {
					row.RCP[i] += mapsA / float64(len(wls))
				}
				if !okB {
					row.MPO[i] = math.Inf(1)
				} else if !math.IsInf(row.MPO[i], 0) {
					row.MPO[i] += mapsB / float64(len(wls))
				}
			}
		}
		rows = append(rows, row)
		fmt.Fprintf(w, "P=%-3d", p)
		for i := range cmpPercents {
			fmt.Fprintf(w, " %13s", fmtMAPs(row.RCP[i])+"/"+fmtMAPs(row.MPO[i]))
		}
		fmt.Fprintln(w)
	}
	return rows
}

// Table6 reproduces Table 6: MPO vs DTS.
func Table6(w io.Writer, sc Scale) (a, b []CompareRow) {
	a = compareTable(w, "Table 6a: MPO vs DTS, sparse Cholesky (entry = PT_DTS/PT_MPO - 1)", cholWorkloads, sc, sched.MPO, sched.DTS, false)
	b = compareTable(w, "Table 6b: MPO vs DTS, sparse LU", luWorkloads, sc, sched.MPO, sched.DTS, false)
	return a, b
}

// Table7 reproduces Table 7: RCP vs DTS with slice merging.
func Table7(w io.Writer, sc Scale) (a, b []CompareRow) {
	a = compareTable(w, "Table 7a: RCP vs DTS+merge, sparse Cholesky (entry = PT_DTSm/PT_RCP - 1)", cholWorkloads, sc, sched.RCP, sched.DTSMerge, true)
	b = compareTable(w, "Table 7b: RCP vs DTS+merge, sparse LU", luWorkloads, sc, sched.RCP, sched.DTSMerge, true)
	return a, b
}
