package rapidd

import (
	"sort"
	"sync"
)

// Priority classes. Overload sheds low-priority traffic first: each class
// may only fill a fraction of the backlog, so by the time the queue is
// half full new low-priority work is already being refused while high
// keeps the full depth. The numeric order is load-shedding order.
const (
	prioLow    = 0
	prioNormal = 1
	prioHigh   = 2
)

func parsePriority(name string) (int, bool) {
	switch name {
	case "low":
		return prioLow, true
	case "", "normal":
		return prioNormal, true
	case "high":
		return prioHigh, true
	}
	return 0, false
}

func priorityName(p int) string {
	switch p {
	case prioLow:
		return "low"
	case prioHigh:
		return "high"
	}
	return "normal"
}

// wfqueue is the worker pool's ready queue: weighted-fair across tenants
// (start-time fair queueing over a virtual clock), FIFO within a tenant,
// with priority-threshold load shedding at the front door. It replaces
// the PR-5 global FIFO channel: under contention each tenant drains in
// proportion to its weight instead of in raw arrival order, so one tenant
// flooding the queue delays mostly itself.
//
// Enqueueing is two-phase so the daemon can write the job to the
// write-ahead journal between reserving a slot and making the task
// visible to workers: reserve (capacity + virtual-clock stamp, under the
// lock) → journal append (no lock) → commit (task becomes poppable).
// A journal failure aborts the reservation; workers never see a task
// whose submit record is not durable, so the journal cannot record an
// admit before its submit.
type wfqueue struct {
	mu     sync.Mutex
	cond   *sync.Cond
	closed bool // guarded-by: mu

	maxDepth int // buffered capacity; 0 = handoff to an idle worker only
	depth    int // reserved-or-queued tasks; guarded-by: mu
	idle     int // workers parked in next(); guarded-by: mu

	vtime   float64             // guarded-by: mu
	tenants map[string]*tenantQ // guarded-by: mu
	weight  func(tenant string) float64

	// dispatchable, when set, gates the pop: a tenant for which it reports
	// false is skipped, so workers never pick up a job that would only park
	// at admission and wedge a pool slot (tenant isolation must hold at any
	// Workers size, not just Workers > quota-blocked backlog). The filter
	// is bypassed once the queue is closed: drain must pop every remaining
	// task so its job can terminate (cancelled or run), not strand it.
	// Whoever opens headroom must wake() the queue, or skipped tasks sleep
	// until the next unrelated signal.
	dispatchable func(tenant string) bool
}

type tenantQ struct {
	tasks      []*task // sorted by vfinish (== commit order per tenant)
	reserved   int     // reserved-not-yet-committed slots
	lastFinish float64
}

// wslot is a reserved queue slot: the capacity unit plus the task's
// virtual-clock stamps, assigned atomically at reservation time so WFQ
// order matches arrival order even when commits race.
type wslot struct {
	tenant          string
	vstart, vfinish float64
}

func newWFQueue(maxDepth int, weight func(string) float64) *wfqueue {
	if weight == nil {
		weight = func(string) float64 { return 1 }
	}
	q := &wfqueue{maxDepth: maxDepth, tenants: make(map[string]*tenantQ), weight: weight}
	q.cond = sync.NewCond(&q.mu)
	return q
}

// prioLimit is the backlog fraction a priority class may fill: low stops
// at half, normal at three quarters, high uses the whole depth. The
// fractions round up, so a small queue never rounds a class's share to
// zero (a depth-1 queue still accepts one job of any class). Idle
// workers always count as extra capacity (the channel-handoff semantics
// of the pre-WFQ pool), so an idle server never sheds anything.
func (q *wfqueue) prioLimit(prio int) int {
	switch prio {
	case prioLow:
		return (q.maxDepth + 1) / 2
	case prioNormal:
		return (q.maxDepth*3 + 3) / 4
	}
	return q.maxDepth
}

// reserve claims a queue slot for one job of the tenant, stamping it with
// the tenant's next virtual start/finish. ok=false means the class's
// backlog share is full — shed. force bypasses the capacity check
// (journal recovery re-queues jobs the previous daemon already accepted).
func (q *wfqueue) reserve(tenant string, prio int, force bool) (wslot, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if !force && q.depth >= q.prioLimit(prio)+q.idle {
		return wslot{}, false
	}
	tq := q.tenants[tenant]
	if tq == nil {
		tq = &tenantQ{}
		q.tenants[tenant] = tq
	}
	w := q.weight(tenant)
	if w <= 0 {
		w = 1
	}
	vstart := q.vtime
	if tq.lastFinish > vstart {
		vstart = tq.lastFinish
	}
	sl := wslot{tenant: tenant, vstart: vstart, vfinish: vstart + 1/w}
	tq.lastFinish = sl.vfinish
	tq.reserved++
	q.depth++
	return sl, true
}

// commit makes a reserved task visible to workers.
func (q *wfqueue) commit(sl wslot, tk *task) {
	q.mu.Lock()
	tq := q.tenants[sl.tenant]
	tq.reserved--
	// Insert in vfinish order; commits almost always arrive in reserve
	// order, so this is an append in practice.
	i := sort.Search(len(tq.tasks), func(i int) bool { return tq.tasks[i].vfinish > tk.vfinish })
	tq.tasks = append(tq.tasks, nil)
	copy(tq.tasks[i+1:], tq.tasks[i:])
	tq.tasks[i] = tk
	q.mu.Unlock()
	q.cond.Signal()
}

// abort releases a reserved slot whose journal write failed. The virtual
// clock is not rolled back — a later reservation of the same tenant may
// already build on it — which only nudges that tenant's share for one
// round.
func (q *wfqueue) abort(sl wslot) {
	q.mu.Lock()
	q.tenants[sl.tenant].reserved--
	q.depth--
	q.mu.Unlock()
	q.cond.Signal()
}

// next blocks until a task is available and returns the fair-queueing
// choice: the tenant whose head task has the smallest virtual finish
// (ties by tenant name, for determinism). Returns nil once the queue is
// closed and fully drained.
func (q *wfqueue) next() *task {
	q.mu.Lock()
	defer q.mu.Unlock()
	for {
		if tk := q.popLocked(); tk != nil {
			return tk
		}
		if q.closed && q.reservedLocked() == 0 {
			return nil
		}
		q.idle++
		q.cond.Wait()
		q.idle--
	}
}

// reservedLocked counts reserved-not-committed slots; drain must wait for
// them (their journal append is in progress).
func (q *wfqueue) reservedLocked() int {
	n := 0
	for _, tq := range q.tenants {
		n += tq.reserved
	}
	return n
}

func (q *wfqueue) popLocked() *task {
	var best *tenantQ
	var bestName string
	for name, tq := range q.tenants {
		if len(tq.tasks) == 0 {
			continue
		}
		if !q.closed && q.dispatchable != nil && !q.dispatchable(name) {
			continue
		}
		if best == nil || tq.tasks[0].vfinish < best.tasks[0].vfinish ||
			(tq.tasks[0].vfinish == best.tasks[0].vfinish && name < bestName) {
			best, bestName = tq, name
		}
	}
	if best == nil {
		return nil
	}
	tk := best.tasks[0]
	best.tasks = best.tasks[1:]
	q.depth--
	if tk.vstart > q.vtime {
		q.vtime = tk.vstart
	}
	return tk
}

// wake re-runs every parked worker's pop. Admission calls it (via the
// headroom hook) when a release or a departing waiter may have turned a
// skipped tenant dispatchable again.
func (q *wfqueue) wake() {
	q.cond.Broadcast()
}

// close stops intake (reserve still succeeds only for forced recovery
// pushes, which cannot happen after close in practice) and wakes every
// parked worker so the backlog drains and workers exit.
func (q *wfqueue) close() {
	q.mu.Lock()
	q.closed = true
	q.mu.Unlock()
	q.cond.Broadcast()
}

// stats returns (queued+reserved, capacity).
func (q *wfqueue) stats() (depth, capacity int) {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.depth, q.maxDepth
}

// depths returns the per-tenant queued-task count (empty tenants
// omitted) — the queue-depth gauge behind /metrics.
func (q *wfqueue) depths() map[string]int {
	q.mu.Lock()
	defer q.mu.Unlock()
	out := make(map[string]int)
	for name, tq := range q.tenants {
		if n := len(tq.tasks) + tq.reserved; n > 0 {
			out[name] = n
		}
	}
	return out
}
