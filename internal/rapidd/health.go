package rapidd

import (
	"encoding/json"
	"errors"
	"net/http"
	"strconv"
	"sync"
	"time"

	"repro/internal/journal"
)

// Health plane: the daemon's failure-domain state machine.
//
//	durable ──fault──▶ degraded ──attempt──▶ recovering ──ok──▶ durable
//	                      ▲                        │
//	                      └────────fail────────────┘
//
// The journal is the source of truth — it poisons itself on the first
// I/O fault (see journal.ErrDegraded) — and the health plane follows:
// noteJournalError observes the fault, flips the state and starts one
// re-arm loop that retries journal.Rearm with exponential backoff until
// the disk comes back. While degraded, the -degraded-mode policy decides
// what happens to new submits: "reject" refuses them with 503 +
// Retry-After (durability required), "serve" accepts them with
// Durable:false stamped on the job record. /healthz exposes the state
// with readiness semantics (200 durable / 503 + JSON otherwise) so a
// router tier can steer traffic away before clients see failures.

// HealthState enumerates the daemon's durability states.
type HealthState int

const (
	// HealthDurable: every acknowledged submit is fsync'd to the journal
	// (or durability is disabled entirely — no promise to break).
	HealthDurable HealthState = iota
	// HealthDegraded: an I/O fault poisoned the journal's active segment;
	// the re-arm loop is backing off before the next recovery attempt.
	HealthDegraded
	// HealthRecovering: a re-arm attempt is in flight.
	HealthRecovering
)

// String names the state for /healthz and logs.
func (h HealthState) String() string {
	switch h {
	case HealthDegraded:
		return "degraded"
	case HealthRecovering:
		return "recovering"
	}
	return "durable"
}

// Degraded-mode policies (Config.DegradedMode).
const (
	// DegradedReject refuses new submits with 503 while the journal is
	// degraded: clients that need the durability guarantee get an honest
	// "not now" instead of a silently weaker acknowledgement.
	DegradedReject = "reject"
	// DegradedServe keeps accepting submits while degraded, stamping
	// Durable:false on the job record: availability first, with the
	// weaker guarantee visible per job.
	DegradedServe = "serve"
)

// maxRearmBackoffFactor caps the exponential backoff at 32× the base.
const maxRearmBackoffFactor = 32

// health is the state machine's mutable core; Server embeds one.
type health struct {
	mu       sync.Mutex
	state    HealthState // guarded-by: mu
	cause    string      // guarded-by: mu
	since    time.Time   // when the current state was entered; guarded-by: mu
	attempts int64       // re-arm attempts in the current window; guarded-by: mu
	rearming bool        // re-arm loop goroutine running; guarded-by: mu
	stopped  bool        // Drain called; no new loops; guarded-by: mu
	stop     chan struct{}
}

// healthSnapshot is the JSON body /healthz serves while not ready.
type healthSnapshot struct {
	State    string `json:"state"`
	Cause    string `json:"cause,omitempty"`
	SinceMS  int64  `json:"since_ms"` // time in the current state
	Attempts int64  `json:"rearm_attempts"`
	Mode     string `json:"degraded_mode"`
}

// healthState returns the current state.
func (s *Server) healthState() HealthState {
	s.health.mu.Lock()
	defer s.health.mu.Unlock()
	return s.health.state
}

// healthSnap snapshots the state machine for /healthz.
func (s *Server) healthSnap() healthSnapshot {
	s.health.mu.Lock()
	defer s.health.mu.Unlock()
	return healthSnapshot{
		State:    s.health.state.String(),
		Cause:    s.health.cause,
		SinceMS:  time.Since(s.health.since).Milliseconds(),
		Attempts: s.health.attempts,
		Mode:     s.cfg.DegradedMode,
	}
}

// setHealth transitions the state machine and publishes the gauge.
// Called with health.mu held.
func (s *Server) setHealthLocked(st HealthState, cause string) {
	if s.health.state != st {
		s.health.since = time.Now()
	}
	s.health.state = st
	s.health.cause = cause
	s.metrics.Set("rapidd.health.state", int64(st))
}

// noteJournalError observes an Append failure. A degraded-journal error
// flips the state machine and starts the re-arm loop (once); any other
// error is just counted by the caller.
func (s *Server) noteJournalError(err error) {
	if !errors.Is(err, journal.ErrDegraded) {
		return
	}
	s.health.mu.Lock()
	defer s.health.mu.Unlock()
	if s.health.state == HealthDurable {
		s.metrics.Inc("rapidd.health.degraded_windows", 1)
		s.health.attempts = 0
		s.setHealthLocked(HealthDegraded, err.Error())
	}
	if !s.health.rearming && !s.health.stopped {
		s.health.rearming = true
		s.wg.Add(1)
		go s.rearmLoop()
	}
}

// rearmLoop retries journal.Rearm with exponential backoff until the
// journal is durable again or the daemon drains. One loop runs per
// degraded window; it exits on success.
func (s *Server) rearmLoop() {
	defer s.wg.Done()
	backoff := s.cfg.RearmBackoff
	timer := time.NewTimer(backoff)
	defer timer.Stop()
	for {
		select {
		case <-s.health.stop:
			return
		case <-timer.C:
		}
		s.health.mu.Lock()
		s.health.attempts++
		s.setHealthLocked(HealthRecovering, s.health.cause)
		s.health.mu.Unlock()
		s.metrics.Inc("rapidd.health.rearm_attempts", 1)

		err := s.jnl.Rearm()

		s.health.mu.Lock()
		if err == nil {
			s.setHealthLocked(HealthDurable, "")
			s.health.rearming = false
			s.health.mu.Unlock()
			s.metrics.Inc("rapidd.health.rearms", 1)
			return
		}
		s.setHealthLocked(HealthDegraded, err.Error())
		s.health.mu.Unlock()
		if backoff < s.cfg.RearmBackoff*maxRearmBackoffFactor {
			backoff *= 2
		}
		timer.Reset(backoff)
	}
}

// stopHealth shuts the re-arm loop down for Drain. Safe to call once.
func (s *Server) stopHealth() {
	s.health.mu.Lock()
	if !s.health.stopped {
		s.health.stopped = true
		close(s.health.stop)
	}
	s.health.mu.Unlock()
}

// refuseDegraded 503s a submit while the journal cannot make it durable,
// with the same deterministic jittered Retry-After hint shedding uses —
// recovery is usually one successful fsync away.
func (s *Server) refuseDegraded(w http.ResponseWriter, prio int) {
	s.metrics.Inc("rapidd.jobs.refused_degraded", 1)
	w.Header().Set("Retry-After", strconv.Itoa(s.retryAfterSecs(prio)))
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusServiceUnavailable)
	json.NewEncoder(w).Encode(map[string]any{
		"error":  "rapidd: journal degraded, not accepting jobs (degraded-mode=reject)",
		"health": s.healthSnap(),
	})
}

// handleHealthz serves readiness: 200 + "ok" while durable, 503 + the
// state machine's JSON snapshot otherwise. A router tier can steer
// traffic away on the 503 and return it when the body says durable.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	st := s.healthSnap()
	if st.State == HealthDurable.String() {
		w.Write([]byte("ok\n"))
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("Retry-After", "1")
	w.WriteHeader(http.StatusServiceUnavailable)
	json.NewEncoder(w).Encode(st)
}
