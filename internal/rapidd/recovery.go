package rapidd

import (
	"context"
	"fmt"
	"sort"
	"time"

	"repro/internal/journal"
)

// Journal recovery: a restarted daemon replays the write-ahead log and
// gives every job the previous daemon had acknowledged an explicit fate —
// nothing is silently dropped:
//
//   - submitted but never admitted (it was waiting in the queue or at
//     admission): re-queued and executed by this daemon, marked Recovered;
//   - admitted (it was executing when the daemon died): failed explicitly
//     with a restart error — its execution may have been mid-flight and
//     partial results are not trustworthy, but the client polling
//     GET /v1/jobs/{id} sees a definite terminal answer;
//   - cancelled before a worker observed the cancellation: failed
//     explicitly as cancelled;
//   - already terminal: skipped — the client got its answer from the
//     previous daemon (compaction eventually drops these records).
//
// The ID counter resumes past the journal's high-water mark, so job IDs
// never collide across restarts.

// replayedJob folds one job's journal records.
type replayedJob struct {
	seq       uint64
	id        string
	tenant    string
	priority  string
	spec      []byte
	admitted  bool
	cancelled bool
	terminal  bool
}

// recover rebuilds server state from a journal replay. Called from Open
// before the workers start, so recovered jobs enter the queue in their
// original submission order ahead of any new traffic.
func (s *Server) recover(rep *journal.Replay) {
	if rep.TruncatedBytes > 0 {
		s.metrics.Inc("rapidd.journal.truncated_bytes", rep.TruncatedBytes)
	}
	jobs := make(map[string]*replayedJob)
	var order []*replayedJob
	for _, rec := range rep.Records {
		switch rec.Op {
		case journal.OpSubmit:
			if _, dup := jobs[rec.ID]; dup {
				// Belt and braces: the journal's compaction-root handling
				// should make a duplicate submit impossible; if one slips
				// through anyway, requeueing the same ID twice would
				// double-execute the job and double-book its admission.
				s.metrics.Inc("rapidd.journal.duplicate_submits", 1)
				continue
			}
			rj := &replayedJob{
				seq: rec.Seq, id: rec.ID, tenant: rec.Tenant,
				priority: rec.Priority, spec: rec.Spec,
			}
			jobs[rec.ID] = rj
			order = append(order, rj)
		case journal.OpAdmit:
			if rj := jobs[rec.ID]; rj != nil {
				rj.admitted = true
			}
		case journal.OpCancel:
			if rj := jobs[rec.ID]; rj != nil {
				rj.cancelled = true
			}
		case journal.OpComplete:
			if rj := jobs[rec.ID]; rj != nil {
				rj.terminal = true
			}
		}
	}
	s.seq = s.jnl.HighSeq()
	sort.Slice(order, func(i, k int) bool { return order[i].seq < order[k].seq })
	for _, rj := range order {
		if rj.terminal {
			continue
		}
		switch {
		case rj.admitted:
			s.recoverFailed(rj, "rapidd: daemon restarted while the job was executing")
			s.metrics.Inc("rapidd.journal.failed_inflight", 1)
		case rj.cancelled:
			s.recoverFailed(rj, "rapidd: cancelled before the restart")
			s.metrics.Inc("rapidd.journal.failed_cancelled", 1)
		default:
			s.requeue(rj)
		}
	}
}

// recoverFailed materializes a journal job directly in a terminal failed
// state, with the completion record the previous daemon never wrote.
func (s *Server) recoverFailed(rj *replayedJob, msg string) {
	spec, err := parseJobSpec(rj.spec, rj.tenant)
	if err != nil {
		// The spec was validated before it was journaled; an unreadable
		// one here means a decoding drift — keep the tenant for
		// accounting and fail the job with both causes visible.
		spec = JobSpec{Tenant: rj.tenant, Priority: rj.priority}
		msg = fmt.Sprintf("%s (spec unreadable at replay: %v)", msg, err)
	}
	done := make(chan struct{})
	close(done)
	s.mu.Lock()
	s.jobs[rj.id] = &Job{
		ID: rj.id, Seq: rj.seq, Spec: spec, Status: StatusFailed,
		Error: msg, Recovered: true, Durable: true,
	}
	s.done[rj.id] = done
	s.tenantStatLocked(rj.tenant).recovered++
	s.tenantStatLocked(rj.tenant).failed++
	s.mu.Unlock()
	s.metrics.Inc("rapidd.jobs.failed", 1)
	s.journalAppend(journal.Record{
		Op: journal.OpComplete, ID: rj.id, Status: string(StatusFailed), Error: msg,
	})
}

// requeue re-enqueues a journal job that never started executing. The
// queue reservation is forced: the previous daemon already accepted this
// job, so priority shedding does not apply to it again.
func (s *Server) requeue(rj *replayedJob) {
	spec, err := parseJobSpec(rj.spec, rj.tenant)
	if err != nil {
		s.recoverFailed(rj, "rapidd: unreadable spec at replay")
		return
	}
	prio, _ := parsePriority(spec.Priority)
	ctx, cancel := context.WithCancel(context.Background())
	if s.cfg.DefaultDeadline > 0 || spec.DeadlineMS > 0 {
		// The original submission clock died with the old daemon; the
		// deadline restarts here, bounding the recovered execution.
		deadline := time.Duration(spec.DeadlineMS) * time.Millisecond
		if deadline == 0 {
			deadline = s.cfg.DefaultDeadline
		}
		ctx, cancel = context.WithTimeout(context.Background(), deadline)
	}
	slot, _ := s.queue.reserve(spec.Tenant, prio, true)
	tk := &task{
		id: rj.id, spec: spec, prio: prio,
		vstart: slot.vstart, vfinish: slot.vfinish,
		ctx: ctx, cancel: cancel, done: make(chan struct{}),
	}
	s.mu.Lock()
	s.jobs[rj.id] = &Job{ID: rj.id, Seq: rj.seq, Spec: spec, Status: StatusPending, Recovered: true, Durable: true}
	s.done[rj.id] = tk.done
	s.cancels[rj.id] = cancel
	ts := s.tenantStatLocked(spec.Tenant)
	ts.recovered++
	ts.submitted++
	s.mu.Unlock()
	s.queue.commit(slot, tk)
	s.metrics.Inc("rapidd.journal.recovered", 1)
	s.metrics.Inc("rapidd.jobs.submitted", 1)
}
