package rapidd

import (
	"testing"
	"time"
)

func wfqPush(q *wfqueue, tenant string, prio int) bool {
	sl, ok := q.reserve(tenant, prio, false)
	if !ok {
		return false
	}
	q.commit(sl, &task{id: tenant, spec: JobSpec{Tenant: tenant}, prio: prio,
		vstart: sl.vstart, vfinish: sl.vfinish})
	return true
}

// TestWFQWeightedDrainOrder: a 3:1 weighted pair drains 3:1 under
// contention, and equal virtual finishes break ties by tenant name, so
// the pop order is fully deterministic.
func TestWFQWeightedDrainOrder(t *testing.T) {
	weights := map[string]float64{"a": 3, "b": 1}
	q := newWFQueue(64, func(tn string) float64 { return weights[tn] })
	for i := 0; i < 12; i++ {
		if !wfqPush(q, "a", prioNormal) || !wfqPush(q, "b", prioNormal) {
			t.Fatal("push shed below capacity")
		}
	}
	counts := map[string]int{}
	for i := 0; i < 8; i++ {
		counts[q.next().spec.Tenant]++
	}
	// vfinish for a: 1/3, 2/3, 1, 4/3 ...; for b: 1, 2. In the first 8
	// pops a takes 6 and b 2 — the 3:1 weight ratio.
	if counts["a"] != 6 || counts["b"] != 2 {
		t.Fatalf("first 8 pops: %v, want a=6 b=2", counts)
	}
}

// TestWFQFIFOWithinTenant: one tenant's jobs leave in arrival order.
func TestWFQFIFOWithinTenant(t *testing.T) {
	q := newWFQueue(16, nil)
	for i := 0; i < 5; i++ {
		sl, ok := q.reserve("t", prioNormal, false)
		if !ok {
			t.Fatal("shed below capacity")
		}
		q.commit(sl, &task{id: string(rune('a' + i)), vstart: sl.vstart, vfinish: sl.vfinish})
	}
	for i := 0; i < 5; i++ {
		if got := q.next().id; got != string(rune('a'+i)) {
			t.Fatalf("pop %d = %q", i, got)
		}
	}
}

// TestWFQPriorityThresholds: with no idle workers a depth-4 queue admits
// low to half, normal to three quarters, high to the end; force bypasses
// the check (journal recovery).
func TestWFQPriorityThresholds(t *testing.T) {
	q := newWFQueue(4, nil)
	if !wfqPush(q, "t", prioLow) || !wfqPush(q, "t", prioLow) {
		t.Fatal("low shed before its half share")
	}
	if wfqPush(q, "t", prioLow) {
		t.Fatal("3rd low accepted past half depth")
	}
	if !wfqPush(q, "t", prioNormal) {
		t.Fatal("normal shed before its 3/4 share")
	}
	if wfqPush(q, "t", prioNormal) {
		t.Fatal("4th normal accepted past 3/4 depth")
	}
	if !wfqPush(q, "t", prioHigh) {
		t.Fatal("high shed below full depth")
	}
	if wfqPush(q, "t", prioHigh) {
		t.Fatal("high accepted past full depth")
	}
	if sl, ok := q.reserve("t", prioLow, true); !ok {
		t.Fatal("forced reserve shed")
	} else {
		q.abort(sl)
	}
	if d, c := q.stats(); d != 4 || c != 4 {
		t.Fatalf("stats %d/%d, want 4/4", d, c)
	}
	if got := q.depths()["t"]; got != 4 {
		t.Fatalf("tenant depth %d, want 4", got)
	}
}

// TestWFQTinyQueueAcceptsEachClass: integer rounding must not shrink a
// class's share to zero — a depth-1 queue accepts one job of any class.
func TestWFQTinyQueueAcceptsEachClass(t *testing.T) {
	for _, prio := range []int{prioLow, prioNormal, prioHigh} {
		q := newWFQueue(1, nil)
		if !wfqPush(q, "t", prio) {
			t.Fatalf("depth-1 queue shed priority %s", priorityName(prio))
		}
		if wfqPush(q, "t", prio) {
			t.Fatalf("depth-1 queue accepted a 2nd %s", priorityName(prio))
		}
	}
}

// TestWFQIdleWorkerHandoff: an unbuffered queue (maxDepth 0) accepts a
// job exactly when a worker is parked in next() — the channel-handoff
// semantics the pre-WFQ pool had.
func TestWFQIdleWorkerHandoff(t *testing.T) {
	q := newWFQueue(0, nil)
	if _, ok := q.reserve("t", prioHigh, false); ok {
		t.Fatal("unbuffered queue accepted with no idle worker")
	}
	got := make(chan *task)
	go func() { got <- q.next() }()
	deadline := time.Now().Add(10 * time.Second)
	for {
		if ok := wfqPush(q, "t", prioLow); ok {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("idle worker never counted as capacity")
		}
		time.Sleep(time.Millisecond)
	}
	select {
	case tk := <-got:
		if tk == nil {
			t.Fatal("worker got nil from an open queue")
		}
	case <-time.After(10 * time.Second):
		t.Fatal("handoff never reached the worker")
	}
	q.close()
	if q.next() != nil {
		t.Fatal("closed empty queue returned a task")
	}
}

// TestWFQAbortFreesCapacity: an aborted reservation (journal write
// failure) releases the slot for the next request.
func TestWFQAbortFreesCapacity(t *testing.T) {
	q := newWFQueue(1, nil)
	sl, ok := q.reserve("t", prioNormal, false)
	if !ok {
		t.Fatal("reserve shed on an empty queue")
	}
	if _, ok := q.reserve("t", prioNormal, false); ok {
		t.Fatal("second reserve fit a full queue")
	}
	q.abort(sl)
	if !wfqPush(q, "t", prioNormal) {
		t.Fatal("reserve shed after abort freed the slot")
	}
}

// TestWFQCloseDrainsBacklog: close lets queued tasks drain, then workers
// get nil.
func TestWFQCloseDrainsBacklog(t *testing.T) {
	q := newWFQueue(8, nil)
	for i := 0; i < 3; i++ {
		wfqPush(q, "t", prioNormal)
	}
	q.close()
	for i := 0; i < 3; i++ {
		if q.next() == nil {
			t.Fatalf("pop %d: backlog lost at close", i)
		}
	}
	if q.next() != nil {
		t.Fatal("drained closed queue returned a task")
	}
}

func TestParsePriorityNames(t *testing.T) {
	for name, want := range map[string]int{"": prioNormal, "normal": prioNormal, "low": prioLow, "high": prioHigh} {
		got, ok := parsePriority(name)
		if !ok || got != want {
			t.Errorf("parsePriority(%q) = %d, %v", name, got, ok)
		}
	}
	if _, ok := parsePriority("urgent"); ok {
		t.Error("parsePriority accepted an unknown class")
	}
	for _, p := range []int{prioLow, prioNormal, prioHigh} {
		if got, ok := parsePriority(priorityName(p)); !ok || got != p {
			t.Errorf("priorityName round-trip broke for %d", p)
		}
	}
}
