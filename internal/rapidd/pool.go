package rapidd

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"time"

	"repro/internal/journal"
)

// The serving layer: a bounded pool of worker goroutines executes admitted
// jobs in parallel. Requests enter through a bounded queue that drains
// weighted-fair across tenants (wfq.go) — a full backlog sheds the
// request with 429 + Retry-After, low priority first, instead of letting
// the backlog (and every queued client's latency) grow without bound.
// Workers coalesce identical in-flight specs onto a single execution
// (single-flight, the same mechanism the plan cache uses for compiles),
// enforce per-job deadlines, and drain gracefully on shutdown.
//
// Concurrency safety comes from the layers below: concurrent jobs share
// AVAIL_MEM (and their tenant's sub-quota) through the admission
// controller — each books its aggregate planned peak before executing —
// and the plan cache is already single-flight per fingerprint, so a burst
// of distinct requests for one new structure compiles it once.

// task is one queued execution: the job ID plus the request-scoped
// context that carries its deadline/cancellation, stamped with its
// weighted-fair-queueing virtual times at reservation.
type task struct {
	id   string
	spec JobSpec
	prio int
	// vstart/vfinish are the WFQ virtual-clock stamps (see wfq.go).
	vstart, vfinish float64
	// submittedAt feeds the latency histograms; zero for recovered jobs.
	submittedAt time.Time
	ctx         context.Context
	cancel      context.CancelFunc
	done        chan struct{}
}

// outcome is a terminal job snapshot, shared between a coalesced group's
// leader and its followers.
type outcome struct {
	job Job
	// err is the leader's terminal cause with its identity intact —
	// rebuilding it from the job's error string would lose
	// errors.Is(err, context.DeadlineExceeded/Canceled), and with it the
	// followers' expired/cancelled classification in setTerminal.
	err error
}

// worker pulls tasks in weighted-fair order until the queue is closed by
// Drain and fully drained.
func (s *Server) worker() {
	defer s.wg.Done()
	for {
		tk := s.queue.next()
		if tk == nil {
			return
		}
		s.process(tk)
	}
}

// process drives one task to a terminal state. Identical specs already
// executing are joined rather than re-executed: followers block on the
// leader's flight and adopt its result. The spec is the coalescing key
// (marshalled canonically), which is strictly finer than the plan
// fingerprint — two specs that differ only in execution-relevant fields
// (tenant, priority, verify, hold, fault mix, deadline) never merge,
// while the plan cache still deduplicates their compile by fingerprint
// underneath.
func (s *Server) process(tk *task) {
	defer close(tk.done)
	defer func() {
		tk.cancel()
		s.mu.Lock()
		delete(s.cancels, tk.id)
		s.mu.Unlock()
	}()
	if !tk.submittedAt.IsZero() {
		s.queueWait.Observe(time.Since(tk.submittedAt).Microseconds())
	}
	if err := tk.ctx.Err(); err != nil {
		s.failFast(tk.id, fmt.Errorf("rapidd: job expired before execution: %w", err))
		return
	}
	v, shared, _ := s.flights.DoNotify(coalesceKey(tk.spec), func() (any, error) {
		return s.runJob(tk), nil
	}, func() { s.metrics.Inc("rapidd.jobs.coalesced", 1) })
	if !shared {
		return // leader already updated its own record inside runJob
	}
	oc, _ := v.(*outcome)
	s.adoptOutcome(tk.id, oc)
}

// coalesceKey canonicalizes a normalized spec. Equal keys imply equal
// fingerprints AND equal execution semantics, so sharing one execution is
// observationally identical to running both (all generators and fault
// plans are deterministic in the spec).
func coalesceKey(spec JobSpec) string {
	b, err := json.Marshal(spec)
	if err != nil {
		// A JobSpec of scalars cannot fail to marshal; fall back to an
		// uncoalescable key rather than wrongly merging.
		return fmt.Sprintf("nocoalesce-%p", &spec)
	}
	return string(b)
}

// runJob is the leader path: compile → admit → execute with the bounded
// fault-retry loop, exactly as the serial daemon ran jobs, but bounded by
// the task's context. Returns the terminal snapshot for followers.
func (s *Server) runJob(tk *task) *outcome {
	var err error
	for attempt := 0; ; attempt++ {
		s.update(tk.id, func(j *Job) { j.Attempts = attempt + 1 })
		err = s.attempt(tk.ctx, tk.id, tk.spec, attempt)
		if err == nil {
			s.setTerminal(tk.id, StatusDone, nil)
			return s.snapshot(tk.id)
		}
		if tk.ctx.Err() != nil || !faultsFor(tk.spec, attempt).Enabled() || attempt >= s.cfg.MaxJobRetries {
			break
		}
		s.metrics.Inc("rapidd.jobs.retried", 1)
		select {
		case <-time.After(s.cfg.RetryBackoff << attempt):
		case <-tk.ctx.Done():
		}
	}
	s.setTerminal(tk.id, StatusFailed, err)
	oc := s.snapshot(tk.id)
	oc.err = err
	return oc
}

// setTerminal is the one exit gate of every job: it publishes the final
// status, appends the journal completion record (making the terminal
// state durable — replay will not resurrect this job), bumps the global
// and per-tenant counters, and feeds the latency summary.
func (s *Server) setTerminal(id string, st JobStatus, jobErr error) {
	errStr := ""
	if jobErr != nil {
		errStr = jobErr.Error()
	}
	s.mu.Lock()
	j := s.jobs[id]
	j.Status = st
	j.Error = errStr
	ts := s.tenantStatLocked(j.Spec.Tenant)
	if st == StatusDone {
		ts.completed++
	} else {
		ts.failed++
		if errors.Is(jobErr, context.DeadlineExceeded) {
			ts.expired++
		}
	}
	submittedAt := j.submittedAt
	s.mu.Unlock()

	if st == StatusDone {
		s.metrics.Inc("rapidd.jobs.completed", 1)
	} else {
		s.metrics.Inc("rapidd.jobs.failed", 1)
		switch {
		case errors.Is(jobErr, context.DeadlineExceeded):
			s.metrics.Inc("rapidd.jobs.deadline_expired", 1)
		case errors.Is(jobErr, context.Canceled):
			s.metrics.Inc("rapidd.jobs.cancelled", 1)
		}
	}
	if !submittedAt.IsZero() {
		s.latency.Observe(time.Since(submittedAt).Microseconds())
	}
	s.journalAppend(journal.Record{Op: journal.OpComplete, ID: id, Status: string(st), Error: errStr})
}

// snapshot copies the job record under the lock.
func (s *Server) snapshot(id string) *outcome {
	s.mu.Lock()
	defer s.mu.Unlock()
	return &outcome{job: *s.jobs[id]}
}

// adoptOutcome copies a leader's terminal result into a follower's
// record, marking the follower as coalesced.
func (s *Server) adoptOutcome(id string, oc *outcome) {
	if oc == nil {
		s.failFast(id, errors.New("rapidd: coalesced execution returned no result"))
		return
	}
	src := oc.job
	s.update(id, func(j *Job) {
		j.Error = src.Error
		j.PlanSource = src.PlanSource
		j.Fingerprint = src.Fingerprint
		j.Replanned = src.Replanned
		j.DemandUnits = src.DemandUnits
		j.Tasks = src.Tasks
		j.Objects = src.Objects
		j.Attempts = src.Attempts
		j.Retransmits = src.Retransmits
		j.MAPs = src.MAPs
		j.PeakUnits = src.PeakUnits
		j.Residual = src.Residual
		j.VerifyFindings = src.VerifyFindings
		j.InspectMS = src.InspectMS
		j.ExecMS = src.ExecMS
		j.StateUS = src.StateUS
		j.Coalesced = true
		j.CoalescedWith = src.ID
	})
	err := oc.err
	if err == nil && src.Status != StatusDone && src.Error != "" {
		err = errors.New(src.Error)
	}
	s.setTerminal(id, src.Status, err)
}

// failFast marks a job failed without executing anything.
func (s *Server) failFast(id string, err error) {
	s.setTerminal(id, StatusFailed, err)
}

// Cancel aborts the job if it is still pending or waiting for admission;
// a job already executing runs to completion (the executor owns its
// goroutines). Returns false for unknown jobs. The cancellation is
// journaled so a crash between Cancel and the worker observing it does
// not resurrect the job at replay.
func (s *Server) Cancel(id string) bool {
	s.mu.Lock()
	cancel, ok := s.cancels[id]
	s.mu.Unlock()
	if ok {
		s.journalAppend(journal.Record{Op: journal.OpCancel, ID: id})
		cancel()
	}
	return ok
}

// Drain stops intake — new solve requests are refused with 503 — closes
// the queue, and waits for the workers to finish the backlog. Safe to
// call more than once. If ctx expires first, the workers keep draining in
// the background and the error reports the interruption. The journal is
// closed once the workers are done (every in-flight job has written its
// completion record), so a clean shutdown replays to an empty live set.
func (s *Server) Drain(ctx context.Context) error {
	s.mu.Lock()
	if !s.draining {
		s.draining = true
		s.queue.close()
	}
	s.mu.Unlock()
	// Stop the health plane's re-arm loop (it is wg-tracked, so the wait
	// below covers it); a drained daemon no longer promises durability.
	s.stopHealth()
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		if s.jnl != nil {
			s.jnl.Close()
		}
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return fmt.Errorf("rapidd: drain interrupted with jobs still in flight: %w", ctx.Err())
	}
}
