package rapidd

import (
	"testing"
)

// FuzzParseJobSpec fuzzes the solve endpoint's whole input surface: any
// byte string must either produce a normalized, in-range spec or an error
// — never a panic, and never a spec the rest of the daemon would have to
// defend against. Normalization must also be a fixpoint: re-normalizing an
// accepted spec changes nothing, so a spec echoed back by the API and
// resubmitted is admitted identically (stable coalescing keys depend on
// this).
func FuzzParseJobSpec(f *testing.F) {
	for _, seed := range []string{
		`{}`,
		`{"kind":"chol","n":300,"procs":4,"heuristic":"mpo","verify":true}`,
		`{"kind":"lu","n":80,"seed":2,"block":16,"heuristic":"dtsmerge"}`,
		`{"mem_percent":60,"hold_ms":100,"deadline_ms":5000}`,
		`{"drop_frac":0.25,"dup_frac":0.1,"fault_seed":7}`,
		`{"kind":"qr"}`,
		`{"n":-1}`,
		`{"procs":1e99}`,
		"{\"heuristic\":\"\u0000\"}",
		`not json`,
		`"a bare string"`,
		`[1,2,3]`,
		`{"n":`,
		``,
	} {
		f.Add([]byte(seed))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		spec, err := parseJobSpec(data, "default")
		if err != nil {
			return
		}
		if spec.Kind != "chol" && spec.Kind != "lu" {
			t.Fatalf("accepted kind %q", spec.Kind)
		}
		if spec.N < 8 || spec.N > 20000 {
			t.Fatalf("accepted n %d", spec.N)
		}
		if spec.Procs < 1 || spec.Procs > 256 {
			t.Fatalf("accepted procs %d", spec.Procs)
		}
		if spec.Block < 1 || spec.Block > 256 {
			t.Fatalf("accepted block %d", spec.Block)
		}
		if _, err := parseHeuristic(spec.Heuristic); err != nil {
			t.Fatalf("accepted heuristic %q", spec.Heuristic)
		}
		if spec.MemPercent < 0 || spec.MemPercent > 100 {
			t.Fatalf("accepted mem_percent %d", spec.MemPercent)
		}
		if spec.HoldMS < 0 || spec.HoldMS > 60000 {
			t.Fatalf("accepted hold_ms %d", spec.HoldMS)
		}
		if spec.DropFrac < 0 || spec.DropFrac > 1 || spec.DupFrac < 0 || spec.DupFrac > 1 {
			t.Fatalf("accepted fault fractions %g/%g", spec.DropFrac, spec.DupFrac)
		}
		if spec.DeadlineMS < 0 || spec.DeadlineMS > 600000 {
			t.Fatalf("accepted deadline_ms %d", spec.DeadlineMS)
		}
		again := spec
		if err := normalizeSpec(&again); err != nil {
			t.Fatalf("re-normalization rejected an accepted spec: %v", err)
		}
		if again != spec {
			t.Fatalf("normalization not a fixpoint: %+v vs %+v", spec, again)
		}
	})
}
