package rapidd

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"repro/internal/journal"
	"repro/internal/trace"
)

// TestRestartAfterInterruptedCompactionRunsJobsOnce: a crash between a
// journal compaction's publish and the old segment's removal leaves both
// segments on disk, and the compacted one repeats every live job's
// submit/admit frames. The restarted daemon must see each job exactly
// once — the duplicated replay used to requeue the same ID twice
// (double execution, double admission booking).
func TestRestartAfterInterruptedCompactionRunsJobsOnce(t *testing.T) {
	dir := t.TempDir()
	frame := func(rec journal.Record) []byte {
		b, err := journal.EncodeRecord(rec)
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	spec := []byte(`{"tenant":"acme","kind":"chol","n":90,"seed":41,"procs":2}`)
	submit := frame(journal.Record{Op: journal.OpSubmit, Seq: 1, ID: "j0001", Tenant: "acme", Priority: "normal", Spec: spec})
	// Segment 1: the pre-compaction log. Segment 2: what compaction
	// published (mark + live frames) before the crash killed the removal.
	seg1 := append(append([]byte(nil), submit...),
		append(frame(journal.Record{Op: journal.OpSubmit, Seq: 2, ID: "j0002", Tenant: "acme", Spec: spec}),
			frame(journal.Record{Op: journal.OpComplete, ID: "j0002", Status: string(StatusDone)})...)...)
	seg2 := append(frame(journal.Record{Op: journal.OpMark, Seq: 2}), submit...)
	if err := os.WriteFile(filepath.Join(dir, "wal-00000001.log"), seg1, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "wal-00000002.log"), seg2, 0o644); err != nil {
		t.Fatal(err)
	}

	metrics := trace.NewMetrics()
	srv, err := Open(Config{JournalDir: dir, JournalNoSync: true, Workers: 2, Metrics: metrics})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	defer ts.Close()

	j1 := getJob(t, ts, "j0001", true)
	if j1.Status != StatusDone || !j1.Recovered {
		t.Fatalf("recovered job: %s recovered=%v (%s)", j1.Status, j1.Recovered, j1.Error)
	}
	if got := metrics.Get("rapidd.journal.recovered"); got != 1 {
		t.Errorf("recovered counter %d, want 1 (duplicated replay?)", got)
	}
	if got := metrics.Get("rapidd.jobs.submitted"); got != 1 {
		t.Errorf("submitted counter %d, want 1", got)
	}
	if jobs := listJobs(t, ts); len(jobs) != 1 {
		t.Fatalf("job list has %d entries, want 1: %+v", len(jobs), jobs)
	}
	// No budget may remain booked once the recovered job finished.
	if _, inUse, _, queued := srv.adm.snapshot(); inUse != 0 || queued != 0 {
		t.Fatalf("admission state after recovery: inUse=%d queued=%d", inUse, queued)
	}
	if err := srv.Drain(t.Context()); err != nil {
		t.Fatal(err)
	}
}

// TestDuplicateSubmitReplayDeduped: even if a duplicated submit record
// reaches recover (the journal layer should prevent it), the second one
// is dropped and counted instead of double-requeueing the job.
func TestDuplicateSubmitReplayDeduped(t *testing.T) {
	dir := t.TempDir()
	spec := []byte(`{"tenant":"acme","kind":"chol","n":90,"seed":43,"procs":2}`)
	seedJournal(t, dir, []journal.Record{
		{Op: journal.OpSubmit, Seq: 1, ID: "j0001", Tenant: "acme", Priority: "normal", Spec: spec},
		{Op: journal.OpSubmit, Seq: 1, ID: "j0001", Tenant: "acme", Priority: "normal", Spec: spec},
	})
	metrics := trace.NewMetrics()
	srv, err := Open(Config{JournalDir: dir, JournalNoSync: true, Workers: 2, Metrics: metrics})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	defer ts.Close()
	j := getJob(t, ts, "j0001", true)
	if j.Status != StatusDone {
		t.Fatalf("deduped job: %s (%s)", j.Status, j.Error)
	}
	if got := metrics.Get("rapidd.journal.duplicate_submits"); got != 1 {
		t.Errorf("duplicate_submits %d, want 1", got)
	}
	if got := metrics.Get("rapidd.journal.recovered"); got != 1 {
		t.Errorf("recovered counter %d, want 1", got)
	}
	if err := srv.Drain(t.Context()); err != nil {
		t.Fatal(err)
	}
}

// TestConcurrentShedCounters: the per-tenant shed counter must be
// mutated under s.mu — concurrent sheds racing metrics readers used to
// trip the race detector and lose increments.
func TestConcurrentShedCounters(t *testing.T) {
	metrics := trace.NewMetrics()
	srv := New(Config{Workers: 1, Metrics: metrics})
	const n = 64
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			srv.shed(httptest.NewRecorder(), "acme", prioNormal)
		}()
		wg.Add(1)
		go func() {
			defer wg.Done()
			srv.handleMetrics(httptest.NewRecorder(), httptest.NewRequest(http.MethodGet, "/metrics", nil))
		}()
	}
	wg.Wait()
	if got := srv.tenantStat("acme").shed; got != n {
		t.Fatalf("tenant shed counter %d, want %d", got, n)
	}
	if err := srv.Drain(t.Context()); err != nil {
		t.Fatal(err)
	}
}

// TestCoalescedFollowerKeepsDeadlineIdentity: a follower adopting an
// expired leader's outcome must classify as deadline-expired — the error
// identity travels in the outcome, not just its string.
func TestCoalescedFollowerKeepsDeadlineIdentity(t *testing.T) {
	metrics := trace.NewMetrics()
	srv := New(Config{Workers: 1, Metrics: metrics})
	srv.mu.Lock()
	srv.jobs["ja"] = &Job{ID: "ja", Spec: JobSpec{Tenant: "acme"}, Status: StatusFailed, Error: context.DeadlineExceeded.Error()}
	srv.jobs["jb"] = &Job{ID: "jb", Spec: JobSpec{Tenant: "acme"}, Status: StatusRunning}
	srv.mu.Unlock()

	srv.adoptOutcome("jb", &outcome{job: *srv.jobs["ja"], err: context.DeadlineExceeded})

	jb := getJobLocal(srv, "jb")
	if jb.Status != StatusFailed || !jb.Coalesced || jb.CoalescedWith != "ja" {
		t.Fatalf("follower: %+v", jb)
	}
	if got := metrics.Get("rapidd.jobs.deadline_expired"); got != 1 {
		t.Errorf("deadline_expired %d, want 1", got)
	}
	if got := srv.tenantStat("acme").expired; got != 1 {
		t.Errorf("tenant expired counter %d, want 1", got)
	}
	// A follower whose leader failed for an untyped reason still fails
	// with the same message, without expired/cancelled misclassification.
	srv.mu.Lock()
	srv.jobs["jc"] = &Job{ID: "jc", Spec: JobSpec{Tenant: "acme"}, Status: StatusFailed, Error: "kernel exploded"}
	srv.jobs["jd"] = &Job{ID: "jd", Spec: JobSpec{Tenant: "acme"}, Status: StatusRunning}
	srv.mu.Unlock()
	srv.adoptOutcome("jd", &outcome{job: *srv.jobs["jc"], err: errors.New("kernel exploded")})
	if jd := getJobLocal(srv, "jd"); jd.Error != "kernel exploded" {
		t.Fatalf("untyped follower error %q", jd.Error)
	}
	if got := metrics.Get("rapidd.jobs.deadline_expired"); got != 1 {
		t.Errorf("untyped failure bumped deadline_expired to %d", got)
	}
	if err := srv.Drain(t.Context()); err != nil {
		t.Fatal(err)
	}
}

func getJobLocal(s *Server, id string) Job {
	s.mu.Lock()
	defer s.mu.Unlock()
	return *s.jobs[id]
}

// TestOversizedSpecRejectedConsistently: the HTTP body cap equals the
// journal's spec cap, so an oversized spec is a 400 on both the
// journal-less and the journaled path — never accepted and then bounced
// with a 500 at the journal write.
func TestOversizedSpecRejectedConsistently(t *testing.T) {
	big := `{"kind":"chol","n":90,"procs":2,"pad":"` + strings.Repeat("x", journal.MaxSpecBytes) + `"}`
	for name, cfg := range map[string]Config{
		"no-journal": {Workers: 1},
		"journal":    {Workers: 1, JournalDir: t.TempDir(), JournalNoSync: true},
	} {
		srv := New(cfg)
		ts := httptest.NewServer(srv)
		resp := postSolveBody(t, ts, big, "")
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: oversized spec: HTTP %d, want 400", name, resp.StatusCode)
		}
		if err := srv.Drain(t.Context()); err != nil {
			t.Fatal(err)
		}
		ts.Close()
	}
}

// TestLongErrorStillJournalsCompletion: a terminal error longer than the
// journal's field cap must be truncated, not dropped — a missing
// completion record would resurrect the finished job at the next replay.
func TestLongErrorStillJournalsCompletion(t *testing.T) {
	dir := t.TempDir()
	metrics := trace.NewMetrics()
	srv := New(Config{JournalDir: dir, JournalNoSync: true, Workers: 1, Metrics: metrics})
	srv.mu.Lock()
	srv.jobs["jx"] = &Job{ID: "jx", Spec: JobSpec{Tenant: "acme"}, Status: StatusRunning}
	srv.mu.Unlock()
	srv.setTerminal("jx", StatusFailed, errors.New(strings.Repeat("e", 5*journal.MaxFieldBytes)))
	if got := metrics.Get("rapidd.journal.errors"); got != 0 {
		t.Fatalf("journal.errors %d, want 0 (completion record dropped)", got)
	}
	if err := srv.Drain(t.Context()); err != nil {
		t.Fatal(err)
	}
	rep, err := journal.ReplayDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var done *journal.Record
	for i, rec := range rep.Records {
		if rec.Op == journal.OpComplete && rec.ID == "jx" {
			done = &rep.Records[i]
		}
	}
	if done == nil {
		t.Fatal("no completion record journaled for the long-error job")
	}
	if len(done.Error) > journal.MaxFieldBytes || !strings.HasSuffix(done.Error, "...(truncated)") {
		t.Fatalf("journaled error not truncated: %d bytes, tail %q", len(done.Error), done.Error[len(done.Error)-20:])
	}
}
