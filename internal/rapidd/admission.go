package rapidd

import (
	"context"
	"fmt"
	"sync"
)

// admission is the machine-wide memory-budget admission controller. Every
// job declares, before it may execute, the aggregate volatile-memory
// high-water mark of its compiled MAP plan (the sum over processors of the
// plan's per-processor peaks — the space the executor will actually hold,
// which Theorem 2 bounds by S1/p + h per processor for DTS schedules).
// Jobs are admitted while the sum of admitted demands stays within
// AVAIL_MEM; a job that would overflow the budget waits in FIFO order —
// queued, never rejected — until running jobs release enough space.
type admission struct {
	mu    sync.Mutex
	avail int64 // 0 = unlimited
	inUse int64
	queue []*waiter

	// peakInUse records the highest admitted total, for stats.
	peakInUse int64
}

type waiter struct {
	demand   int64
	admitted chan struct{}
}

func newAdmission(avail int64) *admission {
	return &admission{avail: avail}
}

// acquire blocks until demand units fit under the budget, in arrival
// order. onQueue (may be nil) fires exactly once if the caller has to
// wait, before blocking — callers use it to expose a "queued" state.
// Demands larger than the whole budget are rejected with an error: the
// caller must replan to a smaller footprint first (see planForBudget), so
// a failure here is a caller bug, not load.
func (a *admission) acquire(demand int64, onQueue func()) error {
	return a.acquireCtx(context.Background(), demand, onQueue)
}

// acquireCtx is acquire with cancellation: a waiter whose context expires
// (per-job deadline) or is cancelled (client disconnect, shed) leaves the
// queue without ever booking budget — and without wedging the jobs parked
// behind it, which are re-pumped in case the departed waiter was the
// too-big head. If admission and cancellation race, the booked units are
// released before returning the context error, so either way no budget
// can leak from a caller that does not run.
func (a *admission) acquireCtx(ctx context.Context, demand int64, onQueue func()) error {
	if demand < 0 {
		return fmt.Errorf("rapidd: negative admission demand %d", demand)
	}
	a.mu.Lock()
	if a.avail > 0 && demand > a.avail {
		a.mu.Unlock()
		return fmt.Errorf("rapidd: job needs %d units but AVAIL_MEM is %d; replan under the budget before admission", demand, a.avail)
	}
	if err := ctx.Err(); err != nil {
		a.mu.Unlock()
		return err
	}
	if len(a.queue) == 0 && a.fits(demand) {
		a.admit(demand)
		a.mu.Unlock()
		return nil
	}
	w := &waiter{demand: demand, admitted: make(chan struct{})}
	a.queue = append(a.queue, w)
	a.mu.Unlock()
	if onQueue != nil {
		onQueue()
	}
	select {
	case <-w.admitted:
		return nil
	case <-ctx.Done():
	}
	a.mu.Lock()
	for i, q := range a.queue {
		if q == w {
			a.queue = append(a.queue[:i], a.queue[i+1:]...)
			a.pump()
			a.mu.Unlock()
			return ctx.Err()
		}
	}
	a.mu.Unlock()
	// Lost the race: pump admitted us concurrently with cancellation.
	// Give the units straight back.
	<-w.admitted
	a.release(demand)
	return ctx.Err()
}

// release returns demand units and admits queued jobs that now fit, in
// FIFO order.
func (a *admission) release(demand int64) {
	a.mu.Lock()
	a.inUse -= demand
	if a.inUse < 0 {
		a.inUse = 0
	}
	a.pump()
	a.mu.Unlock()
}

// pump admits from the head of the queue while the budget allows. Strict
// FIFO: a large job at the head blocks smaller jobs behind it, trading
// utilization for no starvation. Called with mu held.
func (a *admission) pump() {
	for len(a.queue) > 0 && a.fits(a.queue[0].demand) {
		w := a.queue[0]
		a.queue = a.queue[1:]
		a.admit(w.demand)
		close(w.admitted)
	}
}

func (a *admission) fits(demand int64) bool {
	return a.avail <= 0 || a.inUse+demand <= a.avail
}

// admit books demand units. Called with mu held.
func (a *admission) admit(demand int64) {
	a.inUse += demand
	if a.inUse > a.peakInUse {
		a.peakInUse = a.inUse
	}
}

// snapshot returns (avail, inUse, peakInUse, queued).
func (a *admission) snapshot() (int64, int64, int64, int) {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.avail, a.inUse, a.peakInUse, len(a.queue)
}
