package rapidd

import (
	"context"
	"fmt"
	"sync"
)

// admission is the machine-wide memory-budget admission controller. Every
// job declares, before it may execute, the aggregate volatile-memory
// high-water mark of its compiled MAP plan (the sum over processors of the
// plan's per-processor peaks — the space the executor will actually hold,
// which Theorem 2 bounds by S1/p + h per processor for DTS schedules).
// Jobs are admitted while the sum of admitted demands stays within
// AVAIL_MEM; a job that would overflow the budget waits — queued, never
// rejected — until running jobs release enough space.
//
// Multi-tenancy layers sub-quotas on the same budget: each tenant may be
// capped at a slice of AVAIL_MEM, and the invariant is two-sided —
// Σ_tenant inUse(t) = inUse ≤ AVAIL_MEM and inUse(t) ≤ quota(t). A waiter
// blocked only by its own tenant's quota never blocks other tenants
// (it is skipped, no cross-tenant head-of-line blocking), while a waiter
// blocked by the machine budget holds strict FIFO so the global queue
// cannot starve. Within one tenant, order stays FIFO.
type admission struct {
	mu    sync.Mutex
	avail int64     // 0 = unlimited; set at construction, immutable after
	inUse int64     // guarded-by: mu
	queue []*waiter // guarded-by: mu

	// peakInUse records the highest admitted total, for stats.
	peakInUse int64 // guarded-by: mu

	// quotas caps each tenant's share of AVAIL_MEM (absent/0: use
	// defaultQuota; defaultQuota 0: uncapped). Both immutable after
	// construction.
	quotas       map[string]int64
	defaultQuota int64
	tenantUse    map[string]int64 // guarded-by: mu
	tenantPeak   map[string]int64 // guarded-by: mu

	// onHeadroom, when set, fires after any state change that can give a
	// previously-stuck tenant admission headroom (a release, or a waiter
	// leaving the queue). The dispatch queue uses it to re-examine tasks
	// it skipped for lack of headroom. Called with mu NOT held.
	onHeadroom func()
}

type waiter struct {
	tenant   string
	demand   int64
	admitted chan struct{}
}

func newAdmission(avail int64, quotas map[string]int64, defaultQuota int64) *admission {
	return &admission{
		avail:        avail,
		quotas:       quotas,
		defaultQuota: defaultQuota,
		tenantUse:    make(map[string]int64),
		tenantPeak:   make(map[string]int64),
	}
}

// quota returns the tenant's sub-quota (0 = uncapped).
func (a *admission) quota(tenant string) int64 {
	if q, ok := a.quotas[tenant]; ok {
		return q
	}
	return a.defaultQuota
}

// acquire blocks until demand units fit under both the machine budget and
// the tenant's quota. onQueue (may be nil) fires exactly once if the
// caller has to wait, before blocking — callers use it to expose a
// "queued" state. Demands larger than the whole budget or the tenant
// quota are rejected with an error: the caller must replan to a smaller
// footprint first (see planForBudget), so a failure here is a caller bug,
// not load.
func (a *admission) acquire(tenant string, demand int64, onQueue func()) error {
	return a.acquireCtx(context.Background(), tenant, demand, onQueue)
}

// acquireCtx is acquire with cancellation: a waiter whose context expires
// (per-job deadline) or is cancelled (client disconnect, shed) leaves the
// queue without ever booking budget — and without wedging the jobs parked
// behind it, which are re-pumped in case the departed waiter was the
// too-big head. If admission and cancellation race, the booked units are
// released before returning the context error, so either way no budget
// can leak from a caller that does not run.
func (a *admission) acquireCtx(ctx context.Context, tenant string, demand int64, onQueue func()) error {
	if demand < 0 {
		return fmt.Errorf("rapidd: negative admission demand %d", demand)
	}
	a.mu.Lock()
	if a.avail > 0 && demand > a.avail {
		a.mu.Unlock()
		return fmt.Errorf("rapidd: job needs %d units but AVAIL_MEM is %d; replan under the budget before admission", demand, a.avail)
	}
	if q := a.quota(tenant); q > 0 && demand > q {
		a.mu.Unlock()
		return fmt.Errorf("rapidd: job needs %d units but tenant %q quota is %d; replan under the quota before admission", demand, tenant, q)
	}
	if err := ctx.Err(); err != nil {
		a.mu.Unlock()
		return err
	}
	w := &waiter{tenant: tenant, demand: demand, admitted: make(chan struct{})}
	a.queue = append(a.queue, w)
	a.pumpLocked()
	if admitted(w) {
		a.mu.Unlock()
		return nil
	}
	a.mu.Unlock()
	if onQueue != nil {
		onQueue()
	}
	select {
	case <-w.admitted:
		return nil
	case <-ctx.Done():
	}
	a.mu.Lock()
	for i, q := range a.queue {
		if q == w {
			a.queue = append(a.queue[:i], a.queue[i+1:]...)
			a.pumpLocked()
			a.mu.Unlock()
			a.notifyHeadroom()
			return ctx.Err()
		}
	}
	a.mu.Unlock()
	// Lost the race: pump admitted us concurrently with cancellation.
	// Give the units straight back.
	<-w.admitted
	a.release(tenant, demand)
	return ctx.Err()
}

func admitted(w *waiter) bool {
	select {
	case <-w.admitted:
		return true
	default:
		return false
	}
}

// release returns demand units and admits queued jobs that now fit.
func (a *admission) release(tenant string, demand int64) {
	a.mu.Lock()
	a.inUse -= demand
	if a.inUse < 0 {
		a.inUse = 0
	}
	a.tenantUse[tenant] -= demand
	if a.tenantUse[tenant] <= 0 {
		delete(a.tenantUse, tenant)
	}
	a.pumpLocked()
	a.mu.Unlock()
	a.notifyHeadroom()
}

// notifyHeadroom invokes the headroom hook outside the lock (the hook
// broadcasts on the dispatch queue's condition variable, whose lock must
// never nest inside a.mu — the queue's pop path holds its own lock while
// calling dispatchable, which takes a.mu).
func (a *admission) notifyHeadroom() {
	if a.onHeadroom != nil {
		a.onHeadroom()
	}
}

// dispatchable reports whether handing another of the tenant's jobs to a
// worker can make progress now: the tenant must have queue-free admission
// (no waiter of its own already parked — per-tenant FIFO means a new job
// would just park behind it) and quota headroom (a tenant sitting exactly
// at its cap cannot admit anything more until it releases). The check is a
// heuristic, not a reservation: a job's demand is only known after
// compilation, so a dispatched job may still park at admission briefly —
// but a tenant this predicate rejects would park its job with certainty,
// wedging a pool slot for no gain.
func (a *admission) dispatchable(tenant string) bool {
	a.mu.Lock()
	defer a.mu.Unlock()
	for _, w := range a.queue {
		if w.tenant == tenant {
			return false
		}
	}
	if q := a.quota(tenant); q > 0 && a.tenantUse[tenant] >= q {
		return false
	}
	return true
}

// pumpLocked admits queued waiters while budgets allow. A waiter blocked only
// by its tenant quota is skipped — and so is every later waiter of that
// tenant, preserving per-tenant FIFO — so one tenant at its cap cannot
// block the rest. A waiter blocked by the machine budget stops the scan:
// strict FIFO against the global budget, trading utilization for no
// starvation. Called with mu held.
func (a *admission) pumpLocked() {
	var blocked map[string]bool
	for i := 0; i < len(a.queue); {
		w := a.queue[i]
		if blocked[w.tenant] || !a.tenantFitsLocked(w.tenant, w.demand) {
			if blocked == nil {
				blocked = make(map[string]bool)
			}
			blocked[w.tenant] = true
			i++
			continue
		}
		if !a.globalFitsLocked(w.demand) {
			break
		}
		a.queue = append(a.queue[:i], a.queue[i+1:]...)
		a.admitLocked(w)
	}
}

func (a *admission) globalFitsLocked(demand int64) bool {
	return a.avail <= 0 || a.inUse+demand <= a.avail
}

func (a *admission) tenantFitsLocked(tenant string, demand int64) bool {
	q := a.quota(tenant)
	return q <= 0 || a.tenantUse[tenant]+demand <= q
}

// admitLocked books the waiter's demand against both ledgers. Called with mu
// held.
func (a *admission) admitLocked(w *waiter) {
	a.inUse += w.demand
	if a.inUse > a.peakInUse {
		a.peakInUse = a.inUse
	}
	a.tenantUse[w.tenant] += w.demand
	if a.tenantUse[w.tenant] > a.tenantPeak[w.tenant] {
		a.tenantPeak[w.tenant] = a.tenantUse[w.tenant]
	}
	close(w.admitted)
}

// snapshot returns (avail, inUse, peakInUse, queued).
func (a *admission) snapshot() (int64, int64, int64, int) {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.avail, a.inUse, a.peakInUse, len(a.queue)
}

// tenantSnapshot returns each tenant's booked units (tenants with zero
// booked units are omitted) and the count of queued waiters per tenant.
func (a *admission) tenantSnapshot() (inUse map[string]int64, queued map[string]int) {
	a.mu.Lock()
	defer a.mu.Unlock()
	inUse = make(map[string]int64, len(a.tenantUse))
	for t, u := range a.tenantUse {
		inUse[t] = u
	}
	queued = make(map[string]int)
	for _, w := range a.queue {
		queued[w.tenant]++
	}
	return inUse, queued
}
