package rapidd

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"syscall"
	"testing"
	"time"

	"repro/internal/iofault"
	"repro/internal/trace"
)

// faultServer builds a journaled server on an injectable filesystem with
// a fast re-arm loop, plus its test frontend.
func faultServer(t *testing.T, mode string) (*Server, *httptest.Server, *iofault.FaultFS, *trace.Metrics) {
	t.Helper()
	ffs := iofault.NewFaultFS(nil, iofault.Plan{})
	metrics := trace.NewMetrics()
	srv, err := Open(Config{
		JournalDir:   t.TempDir(),
		JournalFS:    ffs,
		Workers:      2,
		DegradedMode: mode,
		RearmBackoff: time.Millisecond,
		Metrics:      metrics,
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		srv.Drain(ctx)
		ts.Close()
	})
	return srv, ts, ffs, metrics
}

func healthzCode(t *testing.T, ts *httptest.Server) int {
	t.Helper()
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	return resp.StatusCode
}

func waitHealthz(t *testing.T, ts *httptest.Server, want int) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for healthzCode(t, ts) != want {
		if time.Now().After(deadline) {
			t.Fatalf("healthz never reached %d", want)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestDegradedRejectRoundTrip walks the whole state machine under the
// default reject policy: a healthy submit is acked Durable:true; a disk
// fault degrades the daemon on the next submit (503), flips /healthz to
// 503 + JSON, and keeps refusing; healing lets the re-arm loop rotate
// onto a fresh segment and the daemon serves durably again.
func TestDegradedRejectRoundTrip(t *testing.T) {
	_, ts, ffs, metrics := faultServer(t, DegradedReject)

	j := solveSync(t, ts, JobSpec{Kind: "chol", N: 80, Seed: 3, Procs: 2})
	if j.Status != StatusDone || !j.Durable {
		t.Fatalf("healthy job: status=%s durable=%v, want done/true", j.Status, j.Durable)
	}
	if healthzCode(t, ts) != http.StatusOK {
		t.Fatal("healthy daemon not ready")
	}

	ffs.Break(iofault.ClassSync, syscall.EIO)
	resp := postSolveRaw(t, ts, JobSpec{Kind: "chol", N: 80, Seed: 4, Procs: 2})
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("submit with dead disk: HTTP %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("degraded refusal carries no Retry-After")
	}
	resp.Body.Close()

	// /healthz now reports the degraded state machine as JSON.
	hr, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	if hr.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("healthz while degraded: HTTP %d, want 503", hr.StatusCode)
	}
	var snap struct {
		State string `json:"state"`
		Mode  string `json:"degraded_mode"`
	}
	if err := json.NewDecoder(hr.Body).Decode(&snap); err != nil {
		t.Fatalf("healthz body not JSON: %v", err)
	}
	hr.Body.Close()
	if snap.State == "durable" || snap.Mode != DegradedReject {
		t.Fatalf("healthz snapshot %+v, want degraded/recovering with mode reject", snap)
	}

	// Still degraded (the fast gate, no journal touch): submits refuse.
	resp2 := postSolveRaw(t, ts, JobSpec{Kind: "chol", N: 80, Seed: 5, Procs: 2})
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("second submit while degraded: HTTP %d, want 503", resp2.StatusCode)
	}
	if metrics.Get("rapidd.jobs.refused_degraded") < 1 {
		t.Error("refused_degraded counter did not advance")
	}

	ffs.Heal()
	waitHealthz(t, ts, http.StatusOK)
	if metrics.Get("rapidd.health.rearms") == 0 || metrics.Get("rapidd.health.degraded_windows") != 1 {
		t.Errorf("rearms=%d windows=%d, want >=1/1",
			metrics.Get("rapidd.health.rearms"), metrics.Get("rapidd.health.degraded_windows"))
	}
	if metrics.Gauge("rapidd.health.state") != int64(HealthDurable) {
		t.Errorf("health gauge %d after recovery, want %d", metrics.Gauge("rapidd.health.state"), HealthDurable)
	}
	j2 := solveSync(t, ts, JobSpec{Kind: "chol", N: 80, Seed: 6, Procs: 2})
	if j2.Status != StatusDone || !j2.Durable {
		t.Fatalf("post-recovery job: status=%s durable=%v, want done/true", j2.Status, j2.Durable)
	}
}

// TestDegradedServeStampsNonDurable: under the availability-first policy
// the daemon keeps serving through a dead disk, but the acknowledgement
// says Durable:false — the weaker guarantee is visible, not silent.
func TestDegradedServeStampsNonDurable(t *testing.T) {
	_, ts, ffs, metrics := faultServer(t, DegradedServe)

	ffs.Break(iofault.ClassDurability, syscall.EIO)
	j := solveSync(t, ts, JobSpec{Kind: "chol", N: 80, Seed: 9, Procs: 2})
	if j.Status != StatusDone {
		t.Fatalf("serve-mode job under dead disk: %s (%s)", j.Status, j.Error)
	}
	if j.Durable {
		t.Fatal("job acked Durable:true while the journal was degraded")
	}
	if metrics.Get("rapidd.jobs.nondurable") == 0 {
		t.Error("nondurable counter did not advance")
	}
	if healthzCode(t, ts) != http.StatusServiceUnavailable {
		t.Error("serve mode must still report not-ready on /healthz")
	}

	ffs.Heal()
	waitHealthz(t, ts, http.StatusOK)
	j2 := solveSync(t, ts, JobSpec{Kind: "chol", N: 80, Seed: 10, Procs: 2})
	if j2.Status != StatusDone || !j2.Durable {
		t.Fatalf("post-recovery job: status=%s durable=%v, want done/true", j2.Status, j2.Durable)
	}
}

// TestHealthzWithoutJournal: no journal, no durability promise to break —
// the daemon is always ready and jobs are visibly non-durable.
func TestHealthzWithoutJournal(t *testing.T) {
	srv := New(Config{Workers: 1})
	ts := httptest.NewServer(srv)
	defer ts.Close()
	if healthzCode(t, ts) != http.StatusOK {
		t.Fatal("journal-less daemon not ready")
	}
	if j := solveSync(t, ts, JobSpec{Kind: "chol", N: 80, Seed: 2, Procs: 2}); j.Durable {
		t.Fatal("journal-less job claims durability")
	}
}

// TestBadDegradedModeRejected: a typo'd policy fails at Open, not at the
// first outage.
func TestBadDegradedModeRejected(t *testing.T) {
	if _, err := Open(Config{DegradedMode: "shrug"}); err == nil {
		t.Fatal("Open accepted degraded mode \"shrug\"")
	}
}

// TestJobWaitReturnsWhenClientGone: a GET /v1/jobs/{id}?wait=1 whose
// client disconnects must release the handler goroutine instead of
// parking it until the job finishes.
func TestJobWaitReturnsWhenClientGone(t *testing.T) {
	srv := New(Config{Workers: 1})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	j := solveAsync(t, ts, JobSpec{Kind: "chol", N: 80, Seed: 11, Procs: 2, HoldMS: 1500})

	ctx, cancel := context.WithCancel(context.Background())
	req := httptest.NewRequest(http.MethodGet, "/v1/jobs/"+j.ID+"?wait=1", nil).WithContext(ctx)
	returned := make(chan struct{})
	go func() {
		srv.ServeHTTP(httptest.NewRecorder(), req)
		close(returned)
	}()
	time.Sleep(20 * time.Millisecond)
	cancel()
	select {
	case <-returned:
	case <-time.After(time.Second):
		t.Fatal("handler still parked after the waiting client left")
	}
	// The job itself is unaffected and still completes.
	if got := getJob(t, ts, j.ID, true); got.Status != StatusDone {
		t.Fatalf("job after abandoned wait: %s (%s)", got.Status, got.Error)
	}
}
