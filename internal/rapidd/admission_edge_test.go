package rapidd

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/trace"
)

// TestAdmissionEdgeCases is the table of boundary behaviours: an unlimited
// controller, exact fits, zero demands, and demands that equal the whole
// budget.
func TestAdmissionEdgeCases(t *testing.T) {
	cases := []struct {
		name  string
		avail int64
		steps func(t *testing.T, a *admission)
	}{
		{"unlimited-admits-anything", 0, func(t *testing.T, a *admission) {
			if err := a.acquire("t", 1<<50, nil); err != nil {
				t.Fatal(err)
			}
			if err := a.acquire("t", 1<<50, func() { t.Error("unlimited controller queued") }); err != nil {
				t.Fatal(err)
			}
		}},
		{"exact-fit-admits-immediately", 100, func(t *testing.T, a *admission) {
			if err := a.acquire("t", 100, func() { t.Error("exact fit queued") }); err != nil {
				t.Fatal(err)
			}
			if _, inUse, _, _ := a.snapshot(); inUse != 100 {
				t.Fatalf("inUse %d", inUse)
			}
			a.release("t", 100)
			if err := a.acquire("t", 100, func() { t.Error("refilled budget queued") }); err != nil {
				t.Fatal(err)
			}
		}},
		{"zero-demand-always-fits", 10, func(t *testing.T, a *admission) {
			if err := a.acquire("t", 10, nil); err != nil {
				t.Fatal(err)
			}
			// An empty queue and a zero demand: admitted without waiting
			// even though the budget is exhausted.
			if err := a.acquire("t", 0, func() { t.Error("zero demand queued") }); err != nil {
				t.Fatal(err)
			}
		}},
		{"one-over-budget-rejected", 100, func(t *testing.T, a *admission) {
			if err := a.acquire("t", 101, nil); err == nil {
				t.Fatal("101/100 must be a caller error")
			}
			// The rejection booked nothing.
			if err := a.acquire("t", 100, nil); err != nil {
				t.Fatal(err)
			}
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) { tc.steps(t, newAdmission(tc.avail, nil, 0)) })
	}
}

// TestAdmissionConcurrentLastBytes races many goroutines for a budget with
// room for exactly one of them at a time: the admitted total must never
// exceed the budget (peak proves it under -race), nothing deadlocks, and
// every unit comes back.
func TestAdmissionConcurrentLastBytes(t *testing.T) {
	a := newAdmission(3, nil, 0)
	var wg sync.WaitGroup
	for i := 0; i < 24; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := a.acquire("t", 3, nil); err != nil {
				t.Error(err)
				return
			}
			a.release("t", 3)
		}()
	}
	wg.Wait()
	_, inUse, peak, queued := a.snapshot()
	if inUse != 0 || queued != 0 {
		t.Fatalf("inUse=%d queued=%d after all releases", inUse, queued)
	}
	if peak != 3 {
		t.Fatalf("peak %d, want exactly 3 (one holder at a time)", peak)
	}
}

// TestAdmissionCancelledWaiterReleasesNothing: a waiter whose context is
// already cancelled is turned away before booking; one cancelled while
// parked leaves the queue without budget and without wedging successors.
func TestAdmissionCancelledWaiterReleasesNothing(t *testing.T) {
	a := newAdmission(10, nil, 0)
	done := context.Background()
	cancelled, cancel := context.WithCancel(done)
	cancel()
	if err := a.acquireCtx(cancelled, "t", 1, nil); err == nil {
		t.Fatal("cancelled context admitted")
	}
	if _, inUse, _, _ := a.snapshot(); inUse != 0 {
		t.Fatalf("cancelled pre-check booked %d units", inUse)
	}

	if err := a.acquire("t", 8, nil); err != nil {
		t.Fatal(err)
	}
	ctx, cancelHead := context.WithCancel(done)
	headQueued := make(chan struct{})
	headDone := make(chan error, 1)
	go func() { headDone <- a.acquireCtx(ctx, "t", 5, func() { close(headQueued) }) }()
	<-headQueued

	// A small job parks behind the (too big) head in FIFO order.
	tailDone := make(chan error, 1)
	tailQueued := make(chan struct{})
	go func() { tailDone <- a.acquireCtx(done, "t", 2, func() { close(tailQueued) }) }()
	<-tailQueued

	// Cancelling the head must re-pump the queue: the tail fits (8+2=10)
	// and gets admitted even though nothing was released.
	cancelHead()
	if err := <-headDone; err == nil {
		t.Fatal("cancelled head admitted")
	}
	select {
	case err := <-tailDone:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("tail wedged behind a cancelled head")
	}
	_, inUse, _, queued := a.snapshot()
	if inUse != 10 || queued != 0 {
		t.Fatalf("inUse=%d queued=%d, want 10, 0", inUse, queued)
	}
	a.release("t", 8)
	a.release("t", 2)
	if _, inUse, _, _ := a.snapshot(); inUse != 0 {
		t.Fatalf("inUse=%d after releases", inUse)
	}
}

// TestAdmissionCancelAdmitRace races release-driven admission against
// cancellation over many rounds: whichever side wins, the booked units are
// always returned and the controller ends every round empty.
func TestAdmissionCancelAdmitRace(t *testing.T) {
	for round := 0; round < 200; round++ {
		a := newAdmission(1, nil, 0)
		if err := a.acquire("t", 1, nil); err != nil {
			t.Fatal(err)
		}
		ctx, cancel := context.WithCancel(context.Background())
		queued := make(chan struct{})
		done := make(chan error, 1)
		go func() { done <- a.acquireCtx(ctx, "t", 1, func() { close(queued) }) }()
		<-queued
		var wg sync.WaitGroup
		wg.Add(2)
		go func() { defer wg.Done(); a.release("t", 1) }()
		go func() { defer wg.Done(); cancel() }()
		wg.Wait()
		if err := <-done; err == nil {
			// Admitted: the waiter owns the unit and must release it.
			a.release("t", 1)
		}
		if _, inUse, _, queuedN := a.snapshot(); inUse != 0 || queuedN != 0 {
			t.Fatalf("round %d: inUse=%d queued=%d", round, inUse, queuedN)
		}
	}
}

// TestServerClientDisconnectReleasesBudget: a synchronous client that goes
// away while its job waits for admission aborts the job — the wait ends,
// nothing is booked, and the budget drains to zero once the running job
// finishes.
func TestServerClientDisconnectReleasesBudget(t *testing.T) {
	spec := JobSpec{Kind: "chol", N: 100, Seed: 5, Procs: 3}
	probe := New(Config{})
	tsProbe := httptest.NewServer(probe)
	ref := solveSync(t, tsProbe, spec)
	tsProbe.Close()
	if ref.Status != StatusDone || ref.DemandUnits <= 0 {
		t.Fatalf("probe job: %s demand=%d", ref.Status, ref.DemandUnits)
	}

	metrics := trace.NewMetrics()
	srv := New(Config{AvailMem: ref.DemandUnits * 3 / 2, Workers: 2, Metrics: metrics})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	hold := spec
	hold.HoldMS = 500
	j1 := solveAsync(t, ts, hold)
	waitStatus(t, ts, j1.ID, StatusRunning, StatusDone)

	// Same structure, different hold: no coalescing, parks at admission.
	body := `{"kind":"chol","n":100,"seed":5,"procs":3,"hold_ms":1}`
	ctx, cancel := context.WithCancel(context.Background())
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, ts.URL+"/v1/solve?wait=1", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	errc := make(chan error, 1)
	go func() {
		resp, err := http.DefaultClient.Do(req)
		if err == nil {
			resp.Body.Close()
		}
		errc <- err
	}()
	// Wait until the job is parked at admission, then hang up.
	deadline := time.Now().Add(10 * time.Second)
	for metrics.Get("rapidd.jobs.queued") == 0 {
		if time.Now().After(deadline) {
			t.Fatal("second job never queued at admission")
		}
		time.Sleep(2 * time.Millisecond)
	}
	cancel()
	if err := <-errc; err == nil {
		t.Fatal("disconnected request reported success")
	}

	// The abandoned job must fail without booking; find it via the list.
	var abandoned string
	for _, j := range listJobs(t, ts) {
		if j.ID != j1.ID {
			abandoned = j.ID
		}
	}
	if abandoned == "" {
		t.Fatal("abandoned job not in the list")
	}
	fin := getJob(t, ts, abandoned, true)
	if fin.Status != StatusFailed {
		t.Fatalf("abandoned job: %s (%s)", fin.Status, fin.Error)
	}
	if j := getJob(t, ts, j1.ID, true); j.Status != StatusDone {
		t.Fatalf("job 1: %s (%s)", j.Status, j.Error)
	}
	if _, inUse, _, queued := srv.adm.snapshot(); inUse != 0 || queued != 0 {
		t.Fatalf("disconnect leaked admission state: inUse=%d queued=%d", inUse, queued)
	}
	if metrics.Get("rapidd.jobs.cancelled") != 1 {
		t.Errorf("cancelled counter %d, want 1", metrics.Get("rapidd.jobs.cancelled"))
	}
}

func listJobs(t *testing.T, ts *httptest.Server) []Job {
	t.Helper()
	resp, err := http.Get(ts.URL + "/v1/jobs")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var jobs []Job
	if err := json.NewDecoder(resp.Body).Decode(&jobs); err != nil {
		t.Fatal(err)
	}
	return jobs
}
