package rapidd

import (
	"bufio"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"os/exec"
	"strings"
	"testing"
	"time"

	"repro/internal/journal"
	"repro/internal/trace"
)

// seedJournal writes records the way a previous daemon would have, then
// closes the journal so a Server can replay it.
func seedJournal(t *testing.T, dir string, recs []journal.Record) {
	t.Helper()
	jnl, rep, err := journal.Open(dir, journal.Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Records) != 0 {
		t.Fatalf("fresh journal dir has %d records", len(rep.Records))
	}
	for _, rec := range recs {
		if err := jnl.Append(rec); err != nil {
			t.Fatal(err)
		}
	}
	if err := jnl.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestRestartRecoversJournaledJobs drives every replay fate from a
// hand-built journal: a queued job is re-run, an executing job and a
// cancelled job fail explicitly, a terminal job is not resurrected, an
// unreadable spec fails loudly — and new IDs continue past the journal's
// high-water mark, so IDs never collide across restarts.
func TestRestartRecoversJournaledJobs(t *testing.T) {
	dir := t.TempDir()
	spec := []byte(`{"tenant":"acme","kind":"chol","n":90,"seed":7,"procs":2}`)
	seedJournal(t, dir, []journal.Record{
		{Op: journal.OpSubmit, Seq: 1, ID: "j0001", Tenant: "acme", Priority: "normal", Spec: spec},
		{Op: journal.OpSubmit, Seq: 2, ID: "j0002", Tenant: "acme", Priority: "normal", Spec: []byte(`{"tenant":"acme","kind":"chol","n":90,"seed":8,"procs":2}`)},
		{Op: journal.OpAdmit, Seq: 2, ID: "j0002"},
		{Op: journal.OpSubmit, Seq: 3, ID: "j0003", Tenant: "acme", Priority: "normal", Spec: spec},
		{Op: journal.OpCancel, Seq: 3, ID: "j0003"},
		{Op: journal.OpSubmit, Seq: 4, ID: "j0004", Tenant: "acme", Priority: "normal", Spec: spec},
		{Op: journal.OpComplete, Seq: 4, ID: "j0004", Status: string(StatusDone)},
		{Op: journal.OpSubmit, Seq: 5, ID: "j0005", Tenant: "acme", Priority: "normal", Spec: []byte(`{"n":-5}`)},
	})

	metrics := trace.NewMetrics()
	srv, err := Open(Config{JournalDir: dir, JournalNoSync: true, Workers: 2, Metrics: metrics})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	defer ts.Close()

	// j0001 was queued: this daemon executes it.
	j1 := getJob(t, ts, "j0001", true)
	if j1.Status != StatusDone || !j1.Recovered {
		t.Fatalf("queued job after restart: %s recovered=%v (%s)", j1.Status, j1.Recovered, j1.Error)
	}
	if j1.Spec.Tenant != "acme" || j1.Seq != 1 {
		t.Fatalf("recovered job lost identity: tenant=%q seq=%d", j1.Spec.Tenant, j1.Seq)
	}
	// j0002 was executing when the daemon died: explicit failure.
	j2 := getJob(t, ts, "j0002", true)
	if j2.Status != StatusFailed || !strings.Contains(j2.Error, "restarted while the job was executing") {
		t.Fatalf("in-flight job after restart: %s (%q)", j2.Status, j2.Error)
	}
	// j0003 was cancelled: explicit failure, not resurrection.
	j3 := getJob(t, ts, "j0003", true)
	if j3.Status != StatusFailed || !strings.Contains(j3.Error, "cancelled") {
		t.Fatalf("cancelled job after restart: %s (%q)", j3.Status, j3.Error)
	}
	// j0004 finished before the restart: the old daemon answered, this one
	// does not resurrect it.
	resp, err := http.Get(ts.URL + "/v1/jobs/j0004")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("terminal job resurrected: HTTP %d", resp.StatusCode)
	}
	// j0005's spec does not parse: explicit failure.
	j5 := getJob(t, ts, "j0005", true)
	if j5.Status != StatusFailed {
		t.Fatalf("unreadable-spec job: %s", j5.Status)
	}

	if got := metrics.Get("rapidd.journal.recovered"); got != 1 {
		t.Errorf("recovered counter %d, want 1", got)
	}
	if got := metrics.Get("rapidd.journal.failed_inflight"); got != 1 {
		t.Errorf("failed_inflight counter %d, want 1", got)
	}

	// The ID counter resumed past the high-water mark.
	j := solveSync(t, ts, JobSpec{Kind: "chol", N: 90, Seed: 9, Procs: 2})
	if j.ID != "j0006" || j.Seq != 6 {
		t.Fatalf("post-restart job %s seq=%d, want j0006 seq=6", j.ID, j.Seq)
	}
}

// TestCleanRestartReplaysEmpty: a drained daemon leaves a journal whose
// replay recovers nothing, and the next incarnation keeps allocating
// fresh IDs.
func TestCleanRestartReplaysEmpty(t *testing.T) {
	dir := t.TempDir()
	srv1 := New(Config{JournalDir: dir, JournalNoSync: true, Workers: 2})
	ts1 := httptest.NewServer(srv1)
	var firstIDs []string
	for i := 0; i < 3; i++ {
		j := solveSync(t, ts1, JobSpec{Kind: "chol", N: 90, Seed: uint64(100 + i), Procs: 2})
		if j.Status != StatusDone {
			t.Fatalf("job %d: %s (%s)", i, j.Status, j.Error)
		}
		firstIDs = append(firstIDs, j.ID)
	}
	if err := srv1.Drain(t.Context()); err != nil {
		t.Fatal(err)
	}
	ts1.Close()

	metrics := trace.NewMetrics()
	srv2, err := Open(Config{JournalDir: dir, JournalNoSync: true, Workers: 2, Metrics: metrics})
	if err != nil {
		t.Fatal(err)
	}
	ts2 := httptest.NewServer(srv2)
	defer ts2.Close()
	if got := metrics.Get("rapidd.journal.recovered") + metrics.Get("rapidd.journal.failed_inflight"); got != 0 {
		t.Fatalf("clean restart recovered %d jobs, want 0", got)
	}
	j := solveSync(t, ts2, JobSpec{Kind: "chol", N: 90, Seed: 200, Procs: 2})
	if j.Status != StatusDone {
		t.Fatalf("post-restart job: %s (%s)", j.Status, j.Error)
	}
	for _, old := range firstIDs {
		if j.ID == old {
			t.Fatalf("ID %s collided across restarts", j.ID)
		}
	}
}

// TestJournalWriteFailureRejectsSubmit: when the submit record cannot be
// made durable the request is a 500 and leaves nothing behind — no job
// record, no queue slot, no tenant counter.
func TestJournalWriteFailureRejectsSubmit(t *testing.T) {
	dir := t.TempDir()
	metrics := trace.NewMetrics()
	srv := New(Config{JournalDir: dir, JournalNoSync: true, Workers: 1, QueueDepth: 4, Metrics: metrics})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	// Fail the journal underneath the server.
	srv.jnl.Close()
	resp := postSolveBody(t, ts, `{"tenant":"acme","kind":"chol","n":90,"seed":1,"procs":2}`, "")
	resp.Body.Close()
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("submit with a dead journal: HTTP %d, want 500", resp.StatusCode)
	}
	if got := metrics.Get("rapidd.journal.errors"); got != 1 {
		t.Errorf("journal.errors %d, want 1", got)
	}
	if got := metrics.Get("rapidd.jobs.submitted"); got != 0 {
		t.Errorf("submitted counter %d, want 0", got)
	}
	if jobs := listJobs(t, ts); len(jobs) != 0 {
		t.Fatalf("failed submit left %d job records", len(jobs))
	}
	if depth, _ := srv.queue.stats(); depth != 0 {
		t.Fatalf("failed submit left queue depth %d", depth)
	}
	if srv.tenantStat("acme").submitted != 0 {
		t.Fatalf("failed submit left tenant counter %d", srv.tenantStat("acme").submitted)
	}
}

// crashHelperEnv gates the subprocess half of the SIGKILL test.
const crashHelperEnv = "RAPIDD_CRASH_HELPER_DIR"

// TestCrashHelperProcess is not a test of its own: re-executed as a child
// process by TestCrashRestartRecovery, it runs a journaled daemon,
// reports readiness, then waits to be SIGKILLed mid-load.
func TestCrashHelperProcess(t *testing.T) {
	dir := os.Getenv(crashHelperEnv)
	if dir == "" {
		t.Skip("helper process for TestCrashRestartRecovery")
	}
	// Real fsync: the point is that acknowledged submits survive SIGKILL.
	srv := New(Config{JournalDir: dir, Workers: 2, QueueDepth: 32})
	ts := httptest.NewServer(srv)
	for i := 0; i < 12; i++ {
		spec := fmt.Sprintf(`{"tenant":"t%d","kind":"chol","n":90,"seed":%d,"procs":2,"hold_ms":400}`, i%3, 300+i)
		resp, err := http.Post(ts.URL+"/v1/solve", "application/json", strings.NewReader(spec))
		if err != nil {
			fmt.Println("SUBMIT-ERROR", err)
			os.Exit(1)
		}
		resp.Body.Close()
	}
	fmt.Println("SUBMITTED")
	os.Stdout.Sync()
	time.Sleep(time.Minute) // the parent SIGKILLs us here
}

// TestCrashRestartRecovery is the end-to-end durability proof: a real
// daemon process is SIGKILLed with jobs queued and executing, then a new
// daemon replays the same journal. Every job the dead daemon had
// acknowledged must reach a terminal state — re-run or explicitly failed,
// never silently dropped — and the admission ledger must drain to zero.
func TestCrashRestartRecovery(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns a subprocess")
	}
	dir := t.TempDir()
	cmd := exec.Command(os.Args[0], "-test.run=TestCrashHelperProcess$", "-test.v")
	cmd.Env = append(os.Environ(), crashHelperEnv+"="+dir)
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	ready := make(chan bool, 1)
	go func() {
		sc := bufio.NewScanner(stdout)
		for sc.Scan() {
			if strings.Contains(sc.Text(), "SUBMITTED") {
				ready <- true
				return
			}
		}
		ready <- false
	}()
	select {
	case ok := <-ready:
		if !ok {
			cmd.Process.Kill()
			cmd.Wait()
			t.Fatal("helper exited before submitting")
		}
	case <-time.After(60 * time.Second):
		cmd.Process.Kill()
		cmd.Wait()
		t.Fatal("helper never reported SUBMITTED")
	}
	// SIGKILL: no deferred cleanup, no journal close — a real crash.
	if err := cmd.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	cmd.Wait()

	// What did the dead daemon acknowledge? Read the journal cold.
	rep, err := journal.ReplayDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	submitted := make(map[string]bool)
	terminal := make(map[string]bool)
	for _, rec := range rep.Records {
		switch rec.Op {
		case journal.OpSubmit:
			submitted[rec.ID] = true
		case journal.OpComplete:
			terminal[rec.ID] = true
		}
	}
	if len(submitted) == 0 {
		t.Fatal("journal lost every acknowledged submit")
	}
	live := 0
	for id := range submitted {
		if !terminal[id] {
			live++
		}
	}
	if live == 0 {
		t.Fatal("every job completed before the kill; the crash tested nothing")
	}

	srv, err := Open(Config{JournalDir: dir, JournalNoSync: true, Workers: 2, QueueDepth: 32})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	defer ts.Close()
	for id := range submitted {
		if terminal[id] {
			continue // the dead daemon answered; not resurrected
		}
		j := getJob(t, ts, id, true)
		if j.Status != StatusDone && j.Status != StatusFailed {
			t.Fatalf("job %s after crash restart: %s", id, j.Status)
		}
		if !j.Recovered {
			t.Errorf("job %s not marked recovered", id)
		}
	}
	if _, inUse, _, queued := srv.adm.snapshot(); inUse != 0 || queued != 0 {
		t.Fatalf("budget leaked across the crash: inUse=%d queued=%d", inUse, queued)
	}
	if err := srv.Drain(t.Context()); err != nil {
		t.Fatal(err)
	}
	// A clean drain leaves no live jobs for the next incarnation.
	rep2, err := journal.ReplayDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	liveAfter := make(map[string]bool)
	for _, rec := range rep2.Records {
		switch rec.Op {
		case journal.OpSubmit:
			liveAfter[rec.ID] = true
		case journal.OpComplete:
			delete(liveAfter, rec.ID)
		}
	}
	if len(liveAfter) != 0 {
		t.Fatalf("jobs still live after recovery + drain: %v", liveAfter)
	}
}
