package rapidd

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/trace"
)

func postSolveRaw(t *testing.T, ts *httptest.Server, spec JobSpec) *http.Response {
	t.Helper()
	body, _ := json.Marshal(spec)
	resp, err := http.Post(ts.URL+"/v1/solve", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func waitStatus(t *testing.T, ts *httptest.Server, id string, want ...JobStatus) Job {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		j := getJob(t, ts, id, false)
		for _, w := range want {
			if j.Status == w {
				return j
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s stuck at %s (%s)", id, j.Status, j.Error)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestServerExecutesJobsInParallel proves the pool actually overlaps
// executions: two distinct jobs both reach the execution hook before either
// is released. A serial server would deadlock here (guarded by a timeout).
func TestServerExecutesJobsInParallel(t *testing.T) {
	srv := New(Config{Workers: 2, QueueDepth: 4})
	arrived := make(chan uint64, 2)
	release := make(chan struct{})
	srv.execHook = func(spec JobSpec) {
		arrived <- spec.Seed
		<-release
	}
	ts := httptest.NewServer(srv)
	defer ts.Close()

	a := solveAsync(t, ts, JobSpec{Kind: "chol", N: 90, Seed: 31, Procs: 2})
	b := solveAsync(t, ts, JobSpec{Kind: "chol", N: 90, Seed: 32, Procs: 2})
	for i := 0; i < 2; i++ {
		select {
		case <-arrived:
		case <-time.After(10 * time.Second):
			t.Fatal("jobs never overlapped: the pool is executing serially")
		}
	}
	close(release)
	for _, id := range []string{a.ID, b.ID} {
		if j := getJob(t, ts, id, true); j.Status != StatusDone {
			t.Fatalf("job %s: %s (%s)", id, j.Status, j.Error)
		}
	}
}

// TestServerShedsWhenQueueFull: with one worker and no queue buffer, a
// request arriving while the worker is busy is shed with 429 + Retry-After
// — in O(1), leaving no job record — and job IDs stay dense afterwards.
func TestServerShedsWhenQueueFull(t *testing.T) {
	metrics := trace.NewMetrics()
	srv := New(Config{
		Workers:    -1, // clamp to 1
		QueueDepth: -1, // unbuffered: accept only if a worker is idle
		RetryAfter: 1500 * time.Millisecond,
		Metrics:    metrics,
	})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	// The unbuffered enqueue succeeds only when the worker receives it, so
	// once this returns the single worker is provably busy holding j0001.
	j1 := solveAsync(t, ts, JobSpec{Kind: "chol", N: 90, Seed: 11, Procs: 2, HoldMS: 500})
	if j1.ID != "j0001" {
		t.Fatalf("first job ID %q", j1.ID)
	}

	resp := postSolveRaw(t, ts, JobSpec{Kind: "chol", N: 90, Seed: 12, Procs: 2})
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("overload response HTTP %d, want 429", resp.StatusCode)
	}
	if got := resp.Header.Get("Retry-After"); got != "2" && got != "3" && got != "4" {
		t.Fatalf("Retry-After %q, want in [2, 4] (1.5s rounded up, plus up to one base of jitter)", got)
	}
	if metrics.Get("rapidd.jobs.shed") != 1 {
		t.Fatalf("shed counter %d, want 1", metrics.Get("rapidd.jobs.shed"))
	}

	// The shed request left no trace: once the worker frees up, the next
	// accepted job takes the next dense ID and completes normally.
	if j := getJob(t, ts, j1.ID, true); j.Status != StatusDone {
		t.Fatalf("job 1: %s (%s)", j.Status, j.Error)
	}
	j3 := solveSync(t, ts, JobSpec{Kind: "chol", N: 90, Seed: 13, Procs: 2})
	if j3.ID != "j0002" || j3.Status != StatusDone {
		t.Fatalf("post-shed job %q %s, want j0002 done", j3.ID, j3.Status)
	}
}

// TestServerCoalescesIdenticalInflightSpecs: while one request for a spec
// is executing, a second identical request joins it instead of executing
// again — one execution, two completed jobs, the follower marked coalesced.
func TestServerCoalescesIdenticalInflightSpecs(t *testing.T) {
	metrics := trace.NewMetrics()
	srv := New(Config{Workers: 2, QueueDepth: 4, Metrics: metrics})
	gate := make(chan struct{})
	srv.execHook = func(JobSpec) { <-gate }
	ts := httptest.NewServer(srv)
	defer ts.Close()

	spec := JobSpec{Kind: "chol", N: 90, Seed: 21, Procs: 2}
	norm := spec
	if err := normalizeSpec(&norm); err != nil {
		t.Fatal(err)
	}

	a := solveAsync(t, ts, spec)
	deadline := time.Now().Add(10 * time.Second)
	for !srv.flights.Inflight(coalesceKey(norm)) {
		if time.Now().After(deadline) {
			t.Fatal("leader flight never registered")
		}
		time.Sleep(time.Millisecond)
	}
	b := solveAsync(t, ts, spec)
	for metrics.Get("rapidd.jobs.coalesced") == 0 {
		if time.Now().After(deadline) {
			t.Fatal("second request never joined the in-flight execution")
		}
		time.Sleep(time.Millisecond)
	}
	close(gate)

	ja := getJob(t, ts, a.ID, true)
	jb := getJob(t, ts, b.ID, true)
	if ja.Status != StatusDone || jb.Status != StatusDone {
		t.Fatalf("jobs: %s (%s) / %s (%s)", ja.Status, ja.Error, jb.Status, jb.Error)
	}
	if ja.Coalesced {
		t.Fatal("leader must not be marked coalesced")
	}
	if !jb.Coalesced || jb.CoalescedWith != ja.ID {
		t.Fatalf("follower coalesced=%v with=%q, want true with %q", jb.Coalesced, jb.CoalescedWith, ja.ID)
	}
	if jb.Fingerprint == "" || jb.Fingerprint != ja.Fingerprint {
		t.Fatalf("fingerprints %q vs %q", ja.Fingerprint, jb.Fingerprint)
	}
	if got := metrics.Get("rapidd.jobs.completed"); got != 2 {
		t.Fatalf("completed counter %d, want 2", got)
	}
	if got := metrics.Get("rapidd.jobs.coalesced"); got != 1 {
		t.Fatalf("coalesced counter %d, want 1", got)
	}
}

// TestServerDeadlineExpiresInQueue: a queued job whose deadline passes
// before a worker picks it up fails with a deadline error — it never
// executes and never books budget.
func TestServerDeadlineExpiresInQueue(t *testing.T) {
	metrics := trace.NewMetrics()
	srv := New(Config{Workers: -1, QueueDepth: 1, Metrics: metrics})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	j1 := solveAsync(t, ts, JobSpec{Kind: "chol", N: 90, Seed: 41, Procs: 2, HoldMS: 400})
	waitStatus(t, ts, j1.ID, StatusRunning, StatusDone)

	j2 := solveAsync(t, ts, JobSpec{Kind: "chol", N: 90, Seed: 42, Procs: 2, DeadlineMS: 50})
	fin := getJob(t, ts, j2.ID, true)
	if fin.Status != StatusFailed || !strings.Contains(fin.Error, "expired before execution") {
		t.Fatalf("queued-past-deadline job: %s (%q)", fin.Status, fin.Error)
	}
	if metrics.Get("rapidd.jobs.deadline_expired") != 1 {
		t.Fatalf("deadline_expired counter %d, want 1", metrics.Get("rapidd.jobs.deadline_expired"))
	}
	if j := getJob(t, ts, j1.ID, true); j.Status != StatusDone {
		t.Fatalf("job 1: %s (%s)", j.Status, j.Error)
	}
	if _, inUse, _, queued := srv.adm.snapshot(); inUse != 0 || queued != 0 {
		t.Fatalf("expired job left admission state: inUse=%d queued=%d", inUse, queued)
	}
}

// TestServerDeadlineDuringAdmissionWait: a job parked waiting for AVAIL_MEM
// whose deadline expires fails without booking budget, and the units the
// running job holds are untouched.
func TestServerDeadlineDuringAdmissionWait(t *testing.T) {
	spec := JobSpec{Kind: "chol", N: 100, Seed: 5, Procs: 3}
	probe := New(Config{})
	tsProbe := httptest.NewServer(probe)
	ref := solveSync(t, tsProbe, spec)
	tsProbe.Close()
	if ref.Status != StatusDone || ref.DemandUnits <= 0 {
		t.Fatalf("probe job: %s demand=%d", ref.Status, ref.DemandUnits)
	}

	metrics := trace.NewMetrics()
	srv := New(Config{AvailMem: ref.DemandUnits * 3 / 2, Workers: 2, Metrics: metrics})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	hold := spec
	hold.HoldMS = 500
	j1 := solveAsync(t, ts, hold)
	waitStatus(t, ts, j1.ID, StatusRunning, StatusDone)

	// Differs only in hold/deadline, so no coalescing; same footprint, so
	// it must wait for admission — and expire there.
	short := spec
	short.HoldMS = 1
	short.DeadlineMS = 80
	j2 := solveSync(t, ts, short)
	if j2.Status != StatusFailed || !strings.Contains(j2.Error, "deadline") {
		t.Fatalf("admission-parked job: %s (%q), want deadline failure", j2.Status, j2.Error)
	}
	if metrics.Get("rapidd.jobs.queued") == 0 {
		t.Error("job 2 never reached the admission queue")
	}
	if metrics.Get("rapidd.jobs.deadline_expired") != 1 {
		t.Errorf("deadline_expired counter %d, want 1", metrics.Get("rapidd.jobs.deadline_expired"))
	}
	if j := getJob(t, ts, j1.ID, true); j.Status != StatusDone {
		t.Fatalf("job 1: %s (%s)", j.Status, j.Error)
	}
	if _, inUse, _, queued := srv.adm.snapshot(); inUse != 0 || queued != 0 {
		t.Fatalf("admission state leaked: inUse=%d queued=%d", inUse, queued)
	}
}

// TestServerCancelQueuedJob: cancelling a queued job aborts it before
// execution; cancelling an unknown ID reports false.
func TestServerCancelQueuedJob(t *testing.T) {
	metrics := trace.NewMetrics()
	srv := New(Config{Workers: -1, QueueDepth: 1, Metrics: metrics})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	j1 := solveAsync(t, ts, JobSpec{Kind: "chol", N: 90, Seed: 51, Procs: 2, HoldMS: 400})
	waitStatus(t, ts, j1.ID, StatusRunning, StatusDone)
	j2 := solveAsync(t, ts, JobSpec{Kind: "chol", N: 90, Seed: 52, Procs: 2})
	if !srv.Cancel(j2.ID) {
		t.Fatal("Cancel returned false for a live job")
	}
	fin := getJob(t, ts, j2.ID, true)
	if fin.Status != StatusFailed || !strings.Contains(fin.Error, "expired before execution") {
		t.Fatalf("cancelled job: %s (%q)", fin.Status, fin.Error)
	}
	if metrics.Get("rapidd.jobs.cancelled") != 1 {
		t.Fatalf("cancelled counter %d, want 1", metrics.Get("rapidd.jobs.cancelled"))
	}
	if srv.Cancel("nope") {
		t.Fatal("Cancel returned true for an unknown job")
	}
	if j := getJob(t, ts, j1.ID, true); j.Status != StatusDone {
		t.Fatalf("job 1: %s (%s)", j.Status, j.Error)
	}
}

// TestServerDrain: drain finishes the backlog, then refuses new work with
// 503; calling it again is a no-op.
func TestServerDrain(t *testing.T) {
	metrics := trace.NewMetrics()
	srv := New(Config{Workers: 2, Metrics: metrics})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	var ids []string
	for i := 0; i < 3; i++ {
		j := solveAsync(t, ts, JobSpec{Kind: "chol", N: 90, Seed: uint64(61 + i), Procs: 2, HoldMS: 50})
		ids = append(ids, j.ID)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := srv.Drain(ctx); err != nil {
		t.Fatal(err)
	}
	for _, id := range ids {
		if j := getJob(t, ts, id, false); j.Status != StatusDone {
			t.Fatalf("job %s after drain: %s (%s)", id, j.Status, j.Error)
		}
	}

	resp := postSolveRaw(t, ts, JobSpec{Kind: "chol", N: 90, Seed: 70, Procs: 2})
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("post-drain solve HTTP %d, want 503", resp.StatusCode)
	}
	if metrics.Get("rapidd.jobs.refused_draining") != 1 {
		t.Fatalf("refused_draining counter %d, want 1", metrics.Get("rapidd.jobs.refused_draining"))
	}
	if err := srv.Drain(ctx); err != nil {
		t.Fatalf("second drain: %v", err)
	}

	statsResp, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	var stats struct {
		Workers  int  `json:"workers"`
		QueueCap int  `json:"queue_cap"`
		Draining bool `json:"draining"`
	}
	if err := json.NewDecoder(statsResp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	statsResp.Body.Close()
	if stats.Workers != 2 || !stats.Draining {
		t.Fatalf("stats workers=%d draining=%v, want 2, true", stats.Workers, stats.Draining)
	}
}
