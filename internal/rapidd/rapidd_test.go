package rapidd

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/trace"
	"repro/rapid"
)

// TestAdmissionFIFO exercises the controller deterministically: a job that
// fits is admitted at once, the next overflowing job queues (with the
// onQueue callback fired), later jobs wait behind it in strict FIFO order,
// and releases admit from the head.
func TestAdmissionFIFO(t *testing.T) {
	a := newAdmission(100, nil, 0)
	if err := a.acquire("t", 60, func() { t.Error("first job must not queue") }); err != nil {
		t.Fatal(err)
	}

	queued2 := make(chan struct{})
	done2 := make(chan struct{})
	go func() {
		if err := a.acquire("t", 60, func() { close(queued2) }); err != nil {
			t.Error(err)
		}
		close(done2)
	}()
	<-queued2 // second job is parked, not rejected

	// Third job would fit (60+10 <= 100) but must wait behind the head.
	done3 := make(chan struct{})
	go func() {
		if err := a.acquire("t", 10, nil); err != nil {
			t.Error(err)
		}
		close(done3)
	}()
	select {
	case <-done3:
		t.Fatal("FIFO violated: small job jumped the queue")
	case <-time.After(50 * time.Millisecond):
	}

	a.release("t", 60)
	<-done2
	<-done3
	_, inUse, peak, queued := a.snapshot()
	if inUse != 70 || queued != 0 {
		t.Fatalf("inUse=%d queued=%d, want 70, 0", inUse, queued)
	}
	if peak != 70 {
		t.Fatalf("peakInUse=%d, want 70", peak)
	}
	a.release("t", 60)
	a.release("t", 10)
	if _, inUse, _, _ := a.snapshot(); inUse != 0 {
		t.Fatalf("inUse=%d after all releases", inUse)
	}
}

func TestAdmissionOversizedIsCallerError(t *testing.T) {
	a := newAdmission(100, nil, 0)
	if err := a.acquire("t", 101, nil); err == nil {
		t.Fatal("demand above AVAIL_MEM must error (caller should have replanned)")
	}
	if err := a.acquire("t", -1, nil); err == nil {
		t.Fatal("negative demand must error")
	}
	// Unlimited controller admits anything.
	u := newAdmission(0, nil, 0)
	if err := u.acquire("t", 1<<40, nil); err != nil {
		t.Fatal(err)
	}
}

func solveSync(t *testing.T, ts *httptest.Server, spec JobSpec) Job {
	t.Helper()
	body, _ := json.Marshal(spec)
	resp, err := http.Post(ts.URL+"/v1/solve?wait=1", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("solve: HTTP %d", resp.StatusCode)
	}
	var job Job
	if err := json.NewDecoder(resp.Body).Decode(&job); err != nil {
		t.Fatal(err)
	}
	return job
}

func solveAsync(t *testing.T, ts *httptest.Server, spec JobSpec) Job {
	t.Helper()
	body, _ := json.Marshal(spec)
	resp, err := http.Post(ts.URL+"/v1/solve", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var job Job
	if err := json.NewDecoder(resp.Body).Decode(&job); err != nil {
		t.Fatal(err)
	}
	return job
}

func getJob(t *testing.T, ts *httptest.Server, id string, wait bool) Job {
	t.Helper()
	url := ts.URL + "/v1/jobs/" + id
	if wait {
		url += "?wait=1"
	}
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var job Job
	if err := json.NewDecoder(resp.Body).Decode(&job); err != nil {
		t.Fatal(err)
	}
	return job
}

// TestServerCacheHit is the first acceptance scenario: two sequential
// solves of the same structure; the second must be served from the plan
// cache (no inspection).
func TestServerCacheHit(t *testing.T) {
	metrics := trace.NewMetrics()
	srv := New(Config{CacheDir: t.TempDir(), Metrics: metrics})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	spec := JobSpec{Kind: "chol", N: 100, Seed: 3, Procs: 3, Verify: true}
	j1 := solveSync(t, ts, spec)
	if j1.Status != StatusDone {
		t.Fatalf("job 1: %s (%s)", j1.Status, j1.Error)
	}
	if j1.PlanSource != "compiled" {
		t.Fatalf("job 1 plan source %q, want compiled", j1.PlanSource)
	}
	if j1.Residual > 1e-8 {
		t.Fatalf("job 1 residual %g", j1.Residual)
	}

	j2 := solveSync(t, ts, spec)
	if j2.Status != StatusDone {
		t.Fatalf("job 2: %s (%s)", j2.Status, j2.Error)
	}
	if j2.PlanSource != "memory" {
		t.Fatalf("job 2 plan source %q, want memory (cache hit)", j2.PlanSource)
	}
	if j2.Fingerprint == "" || j2.Fingerprint != j1.Fingerprint {
		t.Fatalf("fingerprints %q vs %q, want equal and non-empty", j1.Fingerprint, j2.Fingerprint)
	}
	if metrics.Get("plancache.hit.mem") == 0 {
		t.Errorf("no memory hit recorded: %v", metrics.Snapshot())
	}

	// A different structure misses.
	j3 := solveSync(t, ts, JobSpec{Kind: "chol", N: 100, Seed: 4, Procs: 3})
	if j3.PlanSource != "compiled" || j3.Fingerprint == j1.Fingerprint {
		t.Fatalf("job 3 source %q fingerprint %q: different seed must recompile", j3.PlanSource, j3.Fingerprint)
	}
}

// TestServerLUJob runs the other factorization kind end to end.
func TestServerLUJob(t *testing.T) {
	srv := New(Config{})
	ts := httptest.NewServer(srv)
	defer ts.Close()
	j := solveSync(t, ts, JobSpec{Kind: "lu", N: 80, Seed: 2, Procs: 3, Heuristic: "dtsmerge", Verify: true})
	if j.Status != StatusDone {
		t.Fatalf("lu job: %s (%s)", j.Status, j.Error)
	}
	if j.Residual > 1e-6 {
		t.Fatalf("lu residual %g", j.Residual)
	}
}

// TestServerQueuesOverBudgetJob is the second acceptance scenario: while a
// running job holds most of AVAIL_MEM, an identical job queues (visible
// status) and then completes — it is never rejected.
func TestServerQueuesOverBudgetJob(t *testing.T) {
	// Learn the job's footprint on an unconstrained server first.
	spec := JobSpec{Kind: "chol", N: 100, Seed: 5, Procs: 3}
	probe := New(Config{})
	tsProbe := httptest.NewServer(probe)
	ref := solveSync(t, tsProbe, spec)
	tsProbe.Close()
	if ref.Status != StatusDone || ref.DemandUnits <= 0 {
		t.Fatalf("probe job: %s demand=%d", ref.Status, ref.DemandUnits)
	}

	// Budget fits one copy of the job but not two.
	metrics := trace.NewMetrics()
	srv := New(Config{AvailMem: ref.DemandUnits * 3 / 2, Metrics: metrics})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	hold := spec
	hold.HoldMS = 400
	j1 := solveAsync(t, ts, hold)
	// Wait until job 1 has actually been admitted.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if st := getJob(t, ts, j1.ID, false).Status; st == StatusRunning || st == StatusDone {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job 1 never started: %+v", getJob(t, ts, j1.ID, false))
		}
		time.Sleep(5 * time.Millisecond)
	}

	j2 := solveSync(t, ts, spec)
	if j2.Status != StatusDone {
		t.Fatalf("job 2 must complete, got %s (%s)", j2.Status, j2.Error)
	}
	if metrics.Get("rapidd.jobs.queued") == 0 {
		t.Error("job 2 should have passed through the queued state")
	}
	if j2.Replanned {
		t.Error("job 2 fits AVAIL_MEM on its own; it must wait, not shrink")
	}
	j1Final := getJob(t, ts, j1.ID, true)
	if j1Final.Status != StatusDone {
		t.Fatalf("job 1: %s (%s)", j1Final.Status, j1Final.Error)
	}
	_, inUse, peak, queued := srv.adm.snapshot()
	if inUse != 0 || queued != 0 {
		t.Fatalf("admission not drained: inUse=%d queued=%d", inUse, queued)
	}
	if peak > srv.cfg.AvailMem {
		t.Fatalf("admitted peak %d exceeded AVAIL_MEM %d", peak, srv.cfg.AvailMem)
	}
}

// TestServerReplansOversizedJob: a job whose unconstrained plan exceeds the
// whole machine budget is recompiled under a fitting per-processor
// capacity and still completes — not rejected, not OOM-planned.
func TestServerReplansOversizedJob(t *testing.T) {
	spec := JobSpec{Kind: "chol", N: 100, Seed: 5, Procs: 3, Verify: true}
	probe := New(Config{})
	tsProbe := httptest.NewServer(probe)
	ref := solveSync(t, tsProbe, spec)
	tsProbe.Close()
	if ref.Status != StatusDone {
		t.Fatalf("probe job: %s (%s)", ref.Status, ref.Error)
	}

	metrics := trace.NewMetrics()
	srv := New(Config{AvailMem: ref.DemandUnits * 3 / 4, Metrics: metrics})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	j := solveSync(t, ts, spec)
	if j.Status != StatusDone {
		t.Fatalf("oversized job must be replanned and complete, got %s (%s)", j.Status, j.Error)
	}
	if !j.Replanned {
		t.Fatal("job should report it was replanned under the budget")
	}
	if j.DemandUnits > srv.cfg.AvailMem {
		t.Fatalf("replanned demand %d still exceeds AVAIL_MEM %d", j.DemandUnits, srv.cfg.AvailMem)
	}
	if j.Residual > 1e-8 {
		t.Fatalf("replanned job residual %g", j.Residual)
	}
	if metrics.Get("rapidd.jobs.replanned") == 0 {
		t.Error("replanned counter not bumped")
	}
}

func TestServerValidation(t *testing.T) {
	srv := New(Config{})
	ts := httptest.NewServer(srv)
	defer ts.Close()
	for _, body := range []string{
		`{"kind":"qr"}`,
		`{"n":4}`,
		`{"procs":-1}`,
		`{"heuristic":"fifo"}`,
		`{"mem_percent":200}`,
		`{"drop_frac":1.5}`,
		`{"dup_frac":-0.2}`,
		`not json`,
	} {
		resp, err := http.Post(ts.URL+"/v1/solve", "application/json", bytes.NewReader([]byte(body)))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("spec %s: HTTP %d, want 400", body, resp.StatusCode)
		}
	}
	resp, err := http.Get(ts.URL + "/v1/solve")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /v1/solve: HTTP %d, want 405", resp.StatusCode)
	}
	resp, err = http.Get(ts.URL + "/v1/jobs/nope")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown job: HTTP %d, want 404", resp.StatusCode)
	}
}

func TestServerStatsAndJobList(t *testing.T) {
	srv := New(Config{CacheDir: t.TempDir(), AvailMem: 1 << 40})
	ts := httptest.NewServer(srv)
	defer ts.Close()
	spec := JobSpec{Kind: "chol", N: 90, Seed: 9, Procs: 2}
	solveSync(t, ts, spec)
	solveSync(t, ts, spec)

	resp, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	var stats struct {
		Counters  map[string]int64 `json:"counters"`
		AvailMem  int64            `json:"avail_mem"`
		MemInUse  int64            `json:"mem_in_use"`
		MemPeak   int64            `json:"mem_peak"`
		JobsQueue int              `json:"jobs_queued"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if stats.Counters["rapidd.jobs.completed"] != 2 {
		t.Errorf("completed=%d, want 2 (counters %v)", stats.Counters["rapidd.jobs.completed"], stats.Counters)
	}
	if stats.Counters["plancache.hit.mem"] != 1 {
		t.Errorf("hit.mem=%d, want 1", stats.Counters["plancache.hit.mem"])
	}
	if stats.AvailMem != 1<<40 || stats.MemInUse != 0 || stats.MemPeak <= 0 {
		t.Errorf("admission stats: %+v", stats)
	}

	resp, err = http.Get(ts.URL + "/v1/jobs")
	if err != nil {
		t.Fatal(err)
	}
	var jobs []Job
	if err := json.NewDecoder(resp.Body).Decode(&jobs); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(jobs) != 2 {
		t.Fatalf("job list has %d entries, want 2", len(jobs))
	}
	for i, j := range jobs {
		if want := fmt.Sprintf("j%04d", i+1); j.ID != want {
			t.Errorf("job %d ID %q, want %q", i, j.ID, want)
		}
	}
}

// TestServerStateOccupancyMetrics checks that a completed job carries the
// executor's per-state occupancy and that the machine-wide counters appear
// in the /v1/stats metrics snapshot, one per protocol state.
func TestServerStateOccupancyMetrics(t *testing.T) {
	metrics := trace.NewMetrics()
	srv := New(Config{CacheDir: t.TempDir(), Metrics: metrics})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	j := solveSync(t, ts, JobSpec{Kind: "chol", N: 100, Seed: 7, Procs: 3})
	if j.Status != StatusDone {
		t.Fatalf("job: %s (%s)", j.Status, j.Error)
	}
	states := []string{"REC", "EXE", "SND", "MAP", "END"}
	if len(j.StateUS) != len(states) {
		t.Fatalf("job StateUS has %d entries, want %d: %v", len(j.StateUS), len(states), j.StateUS)
	}
	var total int64
	for _, s := range states {
		us, ok := j.StateUS[s]
		if !ok {
			t.Errorf("job StateUS missing state %q: %v", s, j.StateUS)
		}
		total += us
	}
	if total <= 0 {
		t.Errorf("job spent no accounted time in any state: %v", j.StateUS)
	}

	resp, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	var stats struct {
		Counters map[string]int64 `json:"counters"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	for _, s := range []string{"rec", "exe", "snd", "map", "end"} {
		if _, ok := stats.Counters["rapidd.state."+s+"_us"]; !ok {
			t.Errorf("stats counters missing rapidd.state.%s_us: %v", s, stats.Counters)
		}
	}
	if stats.Counters["rapidd.state.exe_us"] != j.StateUS["EXE"] {
		t.Errorf("stats exe_us %d != job EXE %d", stats.Counters["rapidd.state.exe_us"], j.StateUS["EXE"])
	}
}

// TestServerFaultInjectedJobRetransmits runs a job under injected message
// loss and duplication: the reliability layer must absorb the faults (the
// residual is still exact), and the retransmit activity must be visible on
// the job record and in the rapidd.reliability.* counters.
func TestServerFaultInjectedJobRetransmits(t *testing.T) {
	metrics := trace.NewMetrics()
	srv := New(Config{Metrics: metrics})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	j := solveSync(t, ts, JobSpec{
		Kind: "chol", N: 100, Seed: 3, Procs: 3, Verify: true,
		DropFrac: 0.25, DupFrac: 0.10, FaultSeed: 2,
	})
	if j.Status != StatusDone {
		t.Fatalf("faulty job: %s (%s)", j.Status, j.Error)
	}
	if j.Residual > 1e-8 {
		t.Fatalf("residual %g under faults, want exact factorization", j.Residual)
	}
	if j.Retransmits == 0 {
		t.Error("25%% loss injected but job reports zero retransmits")
	}
	if j.Attempts != 1 {
		t.Errorf("job took %d attempts, want 1 (the reliability layer, not retries, absorbs loss)", j.Attempts)
	}
	if metrics.Get("rapidd.reliability.retransmits") != j.Retransmits {
		t.Errorf("reliability counter %d != job retransmits %d",
			metrics.Get("rapidd.reliability.retransmits"), j.Retransmits)
	}
	if metrics.Get("rapidd.reliability.acked") == 0 {
		t.Error("acked counter not bumped")
	}

	// A fault-free job reports zero retransmits.
	clean := solveSync(t, ts, JobSpec{Kind: "chol", N: 100, Seed: 3, Procs: 3})
	if clean.Status != StatusDone || clean.Retransmits != 0 {
		t.Fatalf("clean job: %s retransmits=%d, want done with 0", clean.Status, clean.Retransmits)
	}
}

// TestServerFailingJobReleasesAdmission is the admission-leak regression
// test: a job whose fault plan is unsurvivable (every transmission dropped,
// so the engine's retry budget is exhausted on every attempt) must fail —
// after its bounded retries — without leaking one unit of booked admission
// budget, and the machine must still run subsequent jobs.
func TestServerFailingJobReleasesAdmission(t *testing.T) {
	metrics := trace.NewMetrics()
	srv := New(Config{
		AvailMem:      1 << 40,
		MaxJobRetries: 1,
		RetryBackoff:  time.Millisecond,
		JobTimeout:    10 * time.Second,
		Metrics:       metrics,
	})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	j := solveSync(t, ts, JobSpec{Kind: "chol", N: 100, Seed: 3, Procs: 3, DropFrac: 1})
	if j.Status != StatusFailed {
		t.Fatalf("unsurvivable job: %s, want failed", j.Status)
	}
	if j.Attempts != 2 {
		t.Errorf("job took %d attempts, want 2 (1 retry with a fresh fault seed)", j.Attempts)
	}
	if metrics.Get("rapidd.jobs.retried") != 1 {
		t.Errorf("retried counter %d, want 1", metrics.Get("rapidd.jobs.retried"))
	}
	if _, inUse, _, queued := srv.adm.snapshot(); inUse != 0 || queued != 0 {
		t.Fatalf("failed job leaked admission budget: inUse=%d queued=%d", inUse, queued)
	}

	// The budget is intact: a normal job still runs to completion.
	ok := solveSync(t, ts, JobSpec{Kind: "chol", N: 100, Seed: 3, Procs: 3})
	if ok.Status != StatusDone {
		t.Fatalf("follow-up job: %s (%s)", ok.Status, ok.Error)
	}
	if _, inUse, _, _ := srv.adm.snapshot(); inUse != 0 {
		t.Fatalf("inUse=%d after completion", inUse)
	}
}

// TestServerPanicRecoveryReleasesAdmission injects a panic into the
// execution path: the job must fail (not crash the daemon), its booked
// DemandUnits must be released during unwinding, and the server must keep
// serving jobs afterwards.
func TestServerPanicRecoveryReleasesAdmission(t *testing.T) {
	metrics := trace.NewMetrics()
	srv := New(Config{AvailMem: 1 << 40, Metrics: metrics})
	srv.execHook = func(spec JobSpec) {
		if spec.Seed == 99 {
			panic("injected kernel fault")
		}
	}
	ts := httptest.NewServer(srv)
	defer ts.Close()

	j := solveSync(t, ts, JobSpec{Kind: "chol", N: 100, Seed: 99, Procs: 3})
	if j.Status != StatusFailed || !strings.Contains(j.Error, "panicked") {
		t.Fatalf("panicking job: %s (%q), want failed with panic message", j.Status, j.Error)
	}
	if metrics.Get("rapidd.jobs.panics") != 1 {
		t.Errorf("panics counter %d, want 1", metrics.Get("rapidd.jobs.panics"))
	}
	if _, inUse, _, queued := srv.adm.snapshot(); inUse != 0 || queued != 0 {
		t.Fatalf("panicking job leaked admission budget: inUse=%d queued=%d", inUse, queued)
	}

	ok := solveSync(t, ts, JobSpec{Kind: "chol", N: 100, Seed: 3, Procs: 3})
	if ok.Status != StatusDone {
		t.Fatalf("daemon did not survive the panic: follow-up job %s (%s)", ok.Status, ok.Error)
	}
}

// TestVerifyRejectsTamperedPlan tampers the compiled plan between compile
// and admission (via the test hook): the static verifier must reject the
// job before any budget is booked, surface the findings in the job record
// and bump the rejection counter.
func TestVerifyRejectsTamperedPlan(t *testing.T) {
	metrics := trace.NewMetrics()
	srv := New(Config{Metrics: metrics, AvailMem: 1 << 40})
	srv.planHook = func(p *rapid.Plan) {
		// A peak that disagrees with the symbolic replay: the stale-plan
		// signature.
		p.Mem.Procs[0].Peak += 1 << 20
	}
	ts := httptest.NewServer(srv)
	defer ts.Close()

	j := solveSync(t, ts, JobSpec{Kind: "chol", N: 60, Seed: 1, Procs: 2})
	if j.Status != StatusFailed {
		t.Fatalf("tampered plan ran: %s", j.Status)
	}
	if !strings.Contains(j.Error, "static verifier") {
		t.Fatalf("error does not name the verifier: %q", j.Error)
	}
	if len(j.VerifyFindings) == 0 {
		t.Fatal("job record carries no findings")
	}
	found := false
	for _, f := range j.VerifyFindings {
		if f.Class == "peak-mismatch" && f.Proc == 0 {
			found = true
		}
	}
	if !found {
		t.Fatalf("findings lack the seeded peak-mismatch: %+v", j.VerifyFindings)
	}
	if metrics.Get("rapidd.verify.rejected") != 1 {
		t.Fatalf("verify.rejected = %d, want 1", metrics.Get("rapidd.verify.rejected"))
	}
	// No admission units may remain booked after the rejection.
	if _, inUse, _, _ := srv.adm.snapshot(); inUse != 0 {
		t.Fatalf("rejected job leaked %d admission units", inUse)
	}
}

// TestVerifyPassesCleanJob checks the happy path increments the pass
// counter and leaves the job record without findings.
func TestVerifyPassesCleanJob(t *testing.T) {
	metrics := trace.NewMetrics()
	srv := New(Config{Metrics: metrics})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	j := solveSync(t, ts, JobSpec{Kind: "chol", N: 60, Seed: 1, Procs: 2})
	if j.Status != StatusDone {
		t.Fatalf("clean job failed: %s (%s)", j.Status, j.Error)
	}
	if len(j.VerifyFindings) != 0 {
		t.Fatalf("clean job carries findings: %+v", j.VerifyFindings)
	}
	if metrics.Get("rapidd.verify.passed") == 0 {
		t.Fatal("verify.passed not incremented")
	}
}

// TestVerifyVerdictMemoized checks that repeat serves of the same cached
// plan skip re-verification: the second identical job hits the memoized
// verdict instead of incrementing verify.passed again.
func TestVerifyVerdictMemoized(t *testing.T) {
	metrics := trace.NewMetrics()
	srv := New(Config{Metrics: metrics})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	spec := JobSpec{Kind: "chol", N: 60, Seed: 1, Procs: 2}
	for i := 0; i < 2; i++ {
		if j := solveSync(t, ts, spec); j.Status != StatusDone {
			t.Fatalf("job %d failed: %s (%s)", i, j.Status, j.Error)
		}
	}
	if got := metrics.Get("rapidd.verify.passed"); got != 1 {
		t.Fatalf("verify.passed = %d, want 1 (verdict not memoized)", got)
	}
	if got := metrics.Get("rapidd.verify.cached"); got != 1 {
		t.Fatalf("verify.cached = %d, want 1", got)
	}
}
