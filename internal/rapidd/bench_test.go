package rapidd

import (
	"context"
	"testing"

	"repro/rapid"
)

// benchPlan compiles the daemon's default job (chol n=120, 4 procs, MPO)
// exactly as solve() would, so the verifier benchmark measures the plan
// shape the serve path actually gates on.
func benchPlan(b *testing.B) *rapid.Plan {
	b.Helper()
	pb, err := buildProblem(JobSpec{Kind: "chol", N: 120, Seed: 1, Procs: 4, Block: 8, Heuristic: "mpo"})
	if err != nil {
		b.Fatal(err)
	}
	h, _ := parseHeuristic("mpo")
	plan, err := rapid.Compile(pb.prog, rapid.Options{Procs: 4, Heuristic: h})
	if err != nil {
		b.Fatal(err)
	}
	return plan
}

// BenchmarkVerifyPlan measures the static verifier alone — the cost solve()
// adds to every request, including memory-tier cache hits.
func BenchmarkVerifyPlan(b *testing.B) {
	plan := benchPlan(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if res := rapid.VerifyPlan(plan); !res.OK() {
			b.Fatal(res.Err())
		}
	}
}

// BenchmarkCachedServe measures the full serve path for a job whose plan is
// already in the memory cache tier: plan fetch, static verification,
// admission bookkeeping and execution. Together with BenchmarkVerifyPlan
// this bounds the verification overhead on the cached serve path
// (EXPERIMENTS.md records the ratio).
func BenchmarkCachedServe(b *testing.B) {
	srv := New(Config{})
	spec := JobSpec{Kind: "chol", N: 120, Seed: 1, Procs: 4, Block: 8, Heuristic: "mpo"}
	// attempt() updates the job record, so register the IDs it will use.
	srv.mu.Lock()
	srv.jobs["warm"] = &Job{ID: "warm", Spec: spec}
	srv.jobs["bench"] = &Job{ID: "bench", Spec: spec}
	srv.mu.Unlock()
	// Warm the cache so every timed iteration is a memory-tier hit.
	if err := srv.attempt(context.Background(), "warm", spec, 0); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := srv.attempt(context.Background(), "bench", spec, 0); err != nil {
			b.Fatal(err)
		}
	}
}
