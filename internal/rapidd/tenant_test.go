package rapidd

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"

	"repro/internal/trace"
)

func postSolveBody(t *testing.T, ts *httptest.Server, body, tenantHeader string) *http.Response {
	t.Helper()
	req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/solve?wait=1", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	if tenantHeader != "" {
		req.Header.Set("X-Tenant", tenantHeader)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

// TestTenantHeaderAndValidation: the X-Tenant header names the tenant
// when the spec does not, the spec wins when both are present, and
// illegal tenants or priorities are 400s before any job is created.
func TestTenantHeaderAndValidation(t *testing.T) {
	srv := New(Config{Workers: 2})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	resp := postSolveBody(t, ts, `{"kind":"chol","n":90,"seed":1,"procs":2}`, "acme")
	var j Job
	if err := json.NewDecoder(resp.Body).Decode(&j); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if j.Spec.Tenant != "acme" {
		t.Fatalf("header-derived tenant %q, want acme", j.Spec.Tenant)
	}

	resp = postSolveBody(t, ts, `{"tenant":"inline","kind":"chol","n":90,"seed":2,"procs":2}`, "acme")
	if err := json.NewDecoder(resp.Body).Decode(&j); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if j.Spec.Tenant != "inline" {
		t.Fatalf("spec tenant %q, want inline (spec beats header)", j.Spec.Tenant)
	}

	resp = postSolveBody(t, ts, `{"kind":"chol","n":90,"seed":3,"procs":2}`, "")
	if err := json.NewDecoder(resp.Body).Decode(&j); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if j.Spec.Tenant != "default" || j.Spec.Priority != "normal" {
		t.Fatalf("defaults tenant=%q priority=%q, want default/normal", j.Spec.Tenant, j.Spec.Priority)
	}

	for name, body := range map[string]string{
		"tenant with slash": `{"tenant":"a/b"}`,
		"tenant too long":   `{"tenant":"` + strings.Repeat("x", 65) + `"}`,
		"unknown priority":  `{"priority":"urgent"}`,
	} {
		resp := postSolveBody(t, ts, body, "")
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: HTTP %d, want 400", name, resp.StatusCode)
		}
	}
	// An illegal header tenant is also refused, not silently renamed.
	resp = postSolveBody(t, ts, `{"kind":"chol"}`, "bad tenant!")
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad header tenant: HTTP %d, want 400", resp.StatusCode)
	}
}

// TestTenantQuotaIsolation: a tenant at its quota queues its own next job
// without blocking another tenant's admission (no cross-tenant
// head-of-line blocking), and the ledgers drain to zero afterwards.
func TestTenantQuotaIsolation(t *testing.T) {
	spec := JobSpec{Kind: "chol", N: 100, Seed: 5, Procs: 3}
	probe := New(Config{})
	tsProbe := httptest.NewServer(probe)
	ref := solveSync(t, tsProbe, spec)
	tsProbe.Close()
	if ref.Status != StatusDone || ref.DemandUnits <= 0 {
		t.Fatalf("probe job: %s demand=%d", ref.Status, ref.DemandUnits)
	}
	demand := ref.DemandUnits

	metrics := trace.NewMetrics()
	srv := New(Config{
		AvailMem:     demand * 3,
		TenantQuotas: map[string]int64{"greedy": demand},
		Workers:      4,
		Metrics:      metrics,
	})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	g1 := spec
	g1.Tenant = "greedy"
	g1.HoldMS = 700
	j1 := solveAsync(t, ts, g1)
	waitStatus(t, ts, j1.ID, StatusRunning, StatusDone)

	// Second greedy job: same structure (same demand), different hold so
	// it cannot coalesce. The tenant is at its quota, so quota-aware
	// dispatch keeps the job in the ready queue — no worker picks it up
	// only to park at admission — even though 2×demand of machine budget
	// is free.
	g2 := spec
	g2.Tenant = "greedy"
	g2.HoldMS = 1
	j2 := solveAsync(t, ts, g2)
	deadline := time.Now().Add(10 * time.Second)
	for {
		if d := srv.queue.depths(); d["greedy"] >= 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("greedy job 2 never held back at its quota")
		}
		time.Sleep(2 * time.Millisecond)
	}

	// A different tenant sails past the greedy backlog.
	o1 := spec
	o1.Tenant = "other"
	jo := solveSync(t, ts, o1)
	if jo.Status != StatusDone {
		t.Fatalf("other tenant blocked behind greedy quota: %s (%s)", jo.Status, jo.Error)
	}
	if d := srv.queue.depths(); d["greedy"] != 1 {
		t.Fatalf("greedy queue depth %d while other completed, want 1", d["greedy"])
	}
	if _, queued := srv.adm.tenantSnapshot(); queued["greedy"] != 0 {
		t.Fatalf("greedy parked %d waiters at admission; dispatch should have held them in the queue", queued["greedy"])
	}

	// The stats endpoint exposes the per-tenant ledgers while they hold.
	inUse, _ := srv.adm.tenantSnapshot()
	if inUse["greedy"] != demand {
		t.Fatalf("greedy in-use %d, want %d", inUse["greedy"], demand)
	}

	if j := getJob(t, ts, j2.ID, true); j.Status != StatusDone {
		t.Fatalf("greedy job 2: %s (%s)", j.Status, j.Error)
	}
	if j := getJob(t, ts, j1.ID, true); j.Status != StatusDone {
		t.Fatalf("greedy job 1: %s (%s)", j.Status, j.Error)
	}
	if _, inUseTotal, _, queuedN := srv.adm.snapshot(); inUseTotal != 0 || queuedN != 0 {
		t.Fatalf("ledgers leaked: inUse=%d queued=%d", inUseTotal, queuedN)
	}
	if inUse, _ := srv.adm.tenantSnapshot(); len(inUse) != 0 {
		t.Fatalf("tenant ledger leaked: %v", inUse)
	}
}

// TestQuotaAwareDispatchSmallPool is the small-pool hog/victim regression
// for quota-aware dispatch: with only two workers and a hog tenant whose
// quota fits exactly one job, the hog's backlog must stay in the ready
// queue — not be handed to the second worker, which would park at
// admission and wedge the whole pool — so a victim tenant's job completes
// while the hog still holds. Pre-fix, worker dispatch ignored admission
// headroom and tenant isolation silently required Workers to exceed the
// quota-blocked backlog.
func TestQuotaAwareDispatchSmallPool(t *testing.T) {
	spec := JobSpec{Kind: "chol", N: 100, Seed: 7, Procs: 3}
	probe := New(Config{})
	tsProbe := httptest.NewServer(probe)
	ref := solveSync(t, tsProbe, spec)
	tsProbe.Close()
	if ref.Status != StatusDone || ref.DemandUnits <= 0 {
		t.Fatalf("probe job: %s demand=%d", ref.Status, ref.DemandUnits)
	}
	demand := ref.DemandUnits

	srv := New(Config{
		AvailMem:     demand * 4,
		TenantQuotas: map[string]int64{"hog": demand}, // fits exactly one job
		Workers:      2,
	})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	// Job A books the hog's whole quota and holds it; wait for Running so
	// the quota is provably booked before the backlog exists.
	a := spec
	a.Tenant = "hog"
	a.HoldMS = 2500
	ja := solveAsync(t, ts, a)
	waitStatus(t, ts, ja.ID, StatusRunning, StatusDone)

	var backlog []Job
	for i := 0; i < 3; i++ {
		b := spec
		b.Tenant = "hog"
		b.Seed = uint64(200 + i) // distinct specs: no in-flight coalescing
		backlog = append(backlog, solveAsync(t, ts, b))
	}

	// The victim sails past the hog backlog on the free worker.
	v := spec
	v.Tenant = "victim"
	jv := solveSync(t, ts, v)
	if jv.Status != StatusDone {
		t.Fatalf("victim wedged behind hog backlog on a 2-worker pool: %s (%s)", jv.Status, jv.Error)
	}
	if j := getJob(t, ts, ja.ID, false); j.Status != StatusRunning {
		t.Fatalf("hog job A already %s — victim completion proves nothing, raise its hold", j.Status)
	}
	// The old failure signature is a hog job parked AT ADMISSION (a worker
	// picked it up and wedged); quota-aware dispatch keeps the backlog in
	// the WFQ instead.
	if _, queued := srv.adm.tenantSnapshot(); queued["hog"] != 0 {
		t.Fatalf("%d hog jobs parked at admission: dispatch handed out non-dispatchable work", queued["hog"])
	}
	if d := srv.queue.depths(); d["hog"] != 3 {
		t.Fatalf("hog ready-queue depth %d, want 3 (backlog waits in the queue)", d["hog"])
	}

	// Once A releases, the headroom wake drains the backlog under the
	// quota; nothing is stranded by the dispatch filter.
	for _, j := range backlog {
		if got := getJob(t, ts, j.ID, true); got.Status != StatusDone {
			t.Fatalf("backlog job %s: %s (%s)", j.ID, got.Status, got.Error)
		}
	}
	if got := getJob(t, ts, ja.ID, true); got.Status != StatusDone {
		t.Fatalf("hog job A: %s (%s)", got.Status, got.Error)
	}
	if _, inUse, _, queuedN := srv.adm.snapshot(); inUse != 0 || queuedN != 0 {
		t.Fatalf("ledgers leaked: inUse=%d queued=%d", inUse, queuedN)
	}
}

// TestTenantQuotaTooSmallFailsExplicitly: a job whose smallest possible
// footprint exceeds its tenant quota fails with a definite error rather
// than queueing forever.
func TestTenantQuotaTooSmallFailsExplicitly(t *testing.T) {
	srv := New(Config{
		AvailMem:     1 << 40,
		TenantQuotas: map[string]int64{"tiny": 1},
		Workers:      1,
	})
	ts := httptest.NewServer(srv)
	defer ts.Close()
	j := solveSync(t, ts, JobSpec{Tenant: "tiny", Kind: "chol", N: 100, Seed: 5, Procs: 3})
	if j.Status != StatusFailed {
		t.Fatalf("impossible-quota job: %s, want failed", j.Status)
	}
	if j.Error == "" {
		t.Fatal("impossible-quota job failed without an error")
	}
}

// TestShedRetryAfterPriorityOrder: shed responses tell low-priority
// clients to back off 2× the base hint and high-priority half of it —
// each jittered into [base, 2×base] by a seeded hash, so two identically
// seeded, identically driven servers emit the same hints — and the
// per-class and per-tenant shed counters advance.
func TestShedRetryAfterPriorityOrder(t *testing.T) {
	metrics := trace.NewMetrics()
	srv := New(Config{
		Workers:    -1,
		QueueDepth: -1,
		RetryAfter: 2 * time.Second,
		Metrics:    metrics,
	})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	j1 := solveAsync(t, ts, JobSpec{Kind: "chol", N: 90, Seed: 71, Procs: 2, HoldMS: 900})
	waitStatus(t, ts, j1.ID, StatusRunning, StatusDone)

	// Fixed order (not map iteration): the jitter is a pure function of
	// the refusal sequence, so the order must be deterministic too.
	base := map[string]int{"low": 4, "normal": 2, "high": 1}
	var hints []string
	for _, prio := range []string{"low", "normal", "high"} {
		resp := postSolveBody(t, ts, `{"tenant":"shedme","priority":"`+prio+`","kind":"chol","n":90,"seed":72,"procs":2}`, "")
		resp.Body.Close()
		if resp.StatusCode != http.StatusTooManyRequests {
			t.Fatalf("%s: HTTP %d, want 429", prio, resp.StatusCode)
		}
		got := resp.Header.Get("Retry-After")
		hints = append(hints, got)
		secs, err := strconv.Atoi(got)
		if err != nil || secs < base[prio] || secs > 2*base[prio] {
			t.Errorf("%s: Retry-After %q, want in [%d, %d]", prio, got, base[prio], 2*base[prio])
		}
		if metrics.Get("rapidd.jobs.shed_"+prio) != 1 {
			t.Errorf("shed_%s counter %d, want 1", prio, metrics.Get("rapidd.jobs.shed_"+prio))
		}
	}
	// Same seed, same refusal sequence → identical hints on a second server.
	srv2 := New(Config{Workers: -1, QueueDepth: -1, RetryAfter: 2 * time.Second})
	ts2 := httptest.NewServer(srv2)
	defer ts2.Close()
	j2 := solveAsync(t, ts2, JobSpec{Kind: "chol", N: 90, Seed: 71, Procs: 2, HoldMS: 900})
	waitStatus(t, ts2, j2.ID, StatusRunning, StatusDone)
	for i, prio := range []string{"low", "normal", "high"} {
		resp := postSolveBody(t, ts2, `{"tenant":"shedme","priority":"`+prio+`","kind":"chol","n":90,"seed":72,"procs":2}`, "")
		resp.Body.Close()
		if got := resp.Header.Get("Retry-After"); got != hints[i] {
			t.Errorf("%s: Retry-After %q on twin server, want %q (seeded jitter must be reproducible)", prio, got, hints[i])
		}
	}
	if metrics.Get("rapidd.jobs.shed") != 3 {
		t.Errorf("shed counter %d, want 3", metrics.Get("rapidd.jobs.shed"))
	}
	if srv.tenantStat("shedme").shed != 3 {
		t.Errorf("tenant shed counter %d, want 3", srv.tenantStat("shedme").shed)
	}
	if j := getJob(t, ts, j1.ID, true); j.Status != StatusDone {
		t.Fatalf("held job: %s (%s)", j.Status, j.Error)
	}
}

// TestJobsOrderAndLimit: GET /v1/jobs lists jobs in submission order,
// ?limit keeps the newest N, and a bad limit is a 400.
func TestJobsOrderAndLimit(t *testing.T) {
	srv := New(Config{Workers: 2})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	var ids []string
	for i := 0; i < 5; i++ {
		j := solveSync(t, ts, JobSpec{Kind: "chol", N: 90, Seed: uint64(80 + i), Procs: 2})
		ids = append(ids, j.ID)
	}
	fetch := func(q string) ([]Job, int) {
		resp, err := http.Get(ts.URL + "/v1/jobs" + q)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return nil, resp.StatusCode
		}
		var jobs []Job
		if err := json.NewDecoder(resp.Body).Decode(&jobs); err != nil {
			t.Fatal(err)
		}
		return jobs, resp.StatusCode
	}

	all, _ := fetch("")
	if len(all) != 5 {
		t.Fatalf("listed %d jobs, want 5", len(all))
	}
	for i, j := range all {
		if j.ID != ids[i] {
			t.Fatalf("position %d: %q, want %q (submission order)", i, j.ID, ids[i])
		}
		if i > 0 && all[i].Seq <= all[i-1].Seq {
			t.Fatalf("Seq not increasing at %d", i)
		}
	}
	newest, _ := fetch("?limit=2")
	if len(newest) != 2 || newest[0].ID != ids[3] || newest[1].ID != ids[4] {
		t.Fatalf("limit=2 returned %v, want the newest two %v", newest, ids[3:])
	}
	if empty, _ := fetch("?limit=0"); len(empty) != 0 {
		t.Fatalf("limit=0 returned %d jobs", len(empty))
	}
	if _, code := fetch("?limit=-1"); code != http.StatusBadRequest {
		t.Fatalf("limit=-1: HTTP %d, want 400", code)
	}
	if _, code := fetch("?limit=x"); code != http.StatusBadRequest {
		t.Fatalf("limit=x: HTTP %d, want 400", code)
	}
}

// TestMetricsEndpoint: GET /metrics emits strict Prometheus text — the
// acceptance bar is that a real scraper's parser accepts it — including
// per-tenant series and the latency summary.
func TestMetricsEndpoint(t *testing.T) {
	metrics := trace.NewMetrics()
	srv := New(Config{Workers: 2, AvailMem: 1 << 30, TenantQuotas: map[string]int64{"gold": 1 << 29}, Metrics: metrics})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	for i, tenant := range []string{"gold", "silver", "gold"} {
		j := solveSync(t, ts, JobSpec{Tenant: tenant, Kind: "chol", N: 90, Seed: uint64(90 + i), Procs: 2})
		if j.Status != StatusDone {
			t.Fatalf("job %d: %s (%s)", i, j.Status, j.Error)
		}
	}

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") || !strings.Contains(ct, "version=0.0.4") {
		t.Fatalf("Content-Type %q", ct)
	}
	var sb strings.Builder
	if _, err := sb.WriteString(readAll(t, resp)); err != nil {
		t.Fatal(err)
	}
	body := sb.String()
	samples, err := trace.ParsePromText(body)
	if err != nil {
		t.Fatalf("/metrics output rejected by the strict parser: %v\n%s", err, body)
	}
	byKey := make(map[string]float64)
	for _, s := range samples {
		byKey[s.Key()] = s.Value
	}
	checks := map[string]float64{
		"rapidd_jobs_completed":                          3,
		`rapidd_tenant_submitted_total{tenant="gold"}`:   2,
		`rapidd_tenant_completed_total{tenant="silver"}`: 1,
		`rapidd_tenant_quota_units{tenant="gold"}`:       float64(1 << 29),
		"rapidd_job_latency_us_count":                    3,
		"rapidd_avail_mem_units":                         float64(1 << 30),
		"rapidd_workers":                                 2,
	}
	for key, want := range checks {
		if got, ok := byKey[key]; !ok || got != want {
			t.Errorf("%s = %v (present=%v), want %v", key, got, ok, want)
		}
	}
	if byKey[`rapidd_job_latency_us{quantile="0.99"}`] <= 0 {
		t.Error("latency p99 missing or zero")
	}
	// Determinism: a second scrape renders tenants in the same order.
	resp2, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body2 := readAll(t, resp2)
	resp2.Body.Close()
	if _, err := trace.ParsePromText(body2); err != nil {
		t.Fatalf("second scrape rejected: %v", err)
	}
	goldIdx := strings.Index(body2, `tenant="gold"`)
	silverIdx := strings.Index(body2, `tenant="silver"`)
	if goldIdx < 0 || silverIdx < 0 || goldIdx > silverIdx {
		t.Fatalf("tenant series not in sorted order (gold@%d silver@%d)", goldIdx, silverIdx)
	}
}

func readAll(t *testing.T, resp *http.Response) string {
	t.Helper()
	var sb strings.Builder
	buf := make([]byte, 4096)
	for {
		n, err := resp.Body.Read(buf)
		sb.Write(buf[:n])
		if err != nil {
			break
		}
	}
	return sb.String()
}
