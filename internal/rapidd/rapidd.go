// Package rapidd implements the long-running solve service: an HTTP daemon
// that accepts sparse factorization jobs, compiles-or-fetches their
// execution plans through the plan cache (so repeated structures skip the
// inspector phase), and executes them on a bounded worker pool under a
// machine-wide memory-budget admission controller.
//
// Endpoints (JSON unless noted):
//
//	POST /v1/solve      submit a job (body: JobSpec); ?wait=1 blocks until
//	                    the job is terminal and returns the full job; the
//	                    X-Tenant header names the tenant when the spec
//	                    does not
//	GET  /v1/jobs/{id}  job status and result
//	GET  /v1/jobs       jobs in submission order; ?limit=N keeps the
//	                    newest N
//	GET  /v1/stats      cache counters, pool and admission state
//	GET  /metrics       Prometheus text format: counters, per-tenant
//	                    gauges, latency summaries
//	GET  /healthz       readiness: 200 while every acknowledged submit is
//	                    durable, 503 + JSON state while the journal is
//	                    degraded (see health.go)
//
// Scale-out serving (see pool.go, wfq.go): Workers jobs execute
// concurrently; a bounded queue absorbs bursts, drains weighted-fair
// across tenants, and sheds overload with 429 + Retry-After — low
// priority first, each class told to back off proportionally longer;
// identical in-flight specs coalesce onto one execution (single-flight);
// per-job deadlines bound queue wait + admission wait + execution; Drain
// stops intake and lets the backlog finish on shutdown.
//
// Durability (see journal.go in internal/journal): with a journal
// directory configured, every job transition is written ahead to an
// fsync'd checksummed log. A restarted daemon replays it, re-queues jobs
// that were waiting, explicitly fails jobs that were executing, and
// continues ID allocation past the journal's high-water mark — no
// acknowledged job is ever silently forgotten.
//
// Memory admission: with a configured AVAIL_MEM, the daemon books each
// job's aggregate planned high-water mark (sum over processors of the MAP
// plan's peaks) before execution and queues jobs that would overflow the
// machine budget — concurrent workers share the one budget; a single job
// larger than the whole budget is recompiled under a per-processor
// capacity that fits (falling back to DTS with slice merging, whose
// S1/p + h space bound makes tight budgets executable) rather than
// rejected.
package rapidd

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"net/http"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/blas"
	"repro/internal/chol"
	"repro/internal/iofault"
	"repro/internal/journal"
	"repro/internal/lu"
	"repro/internal/plancache"
	"repro/internal/sparse"
	"repro/internal/trace"
	"repro/internal/util"
	"repro/rapid"
)

// Config configures a Server.
type Config struct {
	// CacheDir is the on-disk plan store ("" disables the disk tier).
	CacheDir string
	// CacheMemBudget bounds the in-memory plan cache in bytes (0: default).
	CacheMemBudget int64
	// AvailMem is the machine-wide memory budget in abstract units; jobs
	// whose planned footprint would overflow it queue until space frees.
	// 0 disables admission control.
	AvailMem int64
	// JobTimeout bounds each execution attempt: it becomes the executor's
	// watchdog BlockTimeout, so a job stalled by faults (or a kernel bug)
	// fails with a machine-state dump instead of wedging a worker forever.
	// 0 uses the executor default.
	JobTimeout time.Duration
	// MaxJobRetries bounds re-execution of jobs that fail under injected
	// faults; each retry uses a different fault seed so it does not replay
	// the loss pattern that killed the previous attempt. 0 means the
	// default (2); negative disables retries. Fault-free jobs never retry:
	// their failures are deterministic.
	MaxJobRetries int
	// RetryBackoff is the delay before the first retry (default 10ms),
	// doubled on each subsequent attempt.
	RetryBackoff time.Duration
	// Workers bounds how many jobs execute concurrently (the worker-pool
	// size). Concurrent jobs share AVAIL_MEM through the admission
	// controller. 0 means max(2, GOMAXPROCS); 1 serves serially (the
	// pre-pool behaviour, and the baseline of the EXPERIMENTS.md load
	// comparison); negative is clamped to 1.
	Workers int
	// QueueDepth bounds the backlog of accepted-but-not-yet-running jobs.
	// A request arriving at a full queue is shed with 429 + Retry-After
	// instead of growing the backlog. 0 means 64; negative means no
	// buffering (a request is accepted only if a worker is idle).
	QueueDepth int
	// DefaultDeadline applies to jobs whose spec sets no deadline_ms: the
	// job must finish (queue wait, admission wait and execution included)
	// within this long or fail with a deadline error. 0 disables.
	DefaultDeadline time.Duration
	// RetryAfter is the client back-off hint sent with shed (429)
	// responses (default 1s, rounded up to whole seconds on the wire).
	// The hint is priority-aware: low-priority sheds are told 2× this
	// base and high-priority half of it, so backed-off traffic returns
	// in priority order.
	RetryAfter time.Duration
	// JournalDir enables the write-ahead job journal in this directory
	// ("" disables durability). See internal/journal.
	JournalDir string
	// JournalNoSync skips the per-record fsync (tests and benchmarks
	// only — an unsynced journal can acknowledge jobs a crash loses).
	JournalNoSync bool
	// TenantQuotas caps each named tenant's admitted memory at a slice of
	// AVAIL_MEM, in the same abstract units. Tenants absent from the map
	// fall back to DefaultTenantQuota.
	TenantQuotas map[string]int64
	// DefaultTenantQuota caps tenants without an explicit quota
	// (0: uncapped — only AVAIL_MEM limits them).
	DefaultTenantQuota int64
	// TenantWeights sets weighted-fair-queueing weights (default 1 —
	// equal shares; higher drains proportionally faster under
	// contention). Non-positive weights are treated as 1.
	TenantWeights map[string]float64
	// Metrics receives cache and job counters (nil: a fresh registry).
	Metrics *trace.Metrics
	// DegradedMode selects the submit policy while the journal is degraded
	// (an I/O fault poisoned the active segment, see internal/journal):
	// "reject" (default) refuses new submits with 503 — durability
	// required; "serve" keeps accepting with Durable:false stamped on the
	// job record. See health.go.
	DegradedMode string
	// RearmBackoff is the initial delay between journal re-arm attempts
	// while degraded (default 50ms), doubled per failure up to 32× this.
	RearmBackoff time.Duration
	// ShedJitterSeed seeds the deterministic Retry-After jitter on shed
	// and degraded-reject responses (0: seed 1). Equal seeds produce
	// identical jitter sequences — load tests stay reproducible.
	ShedJitterSeed uint64
	// JournalFS is the filesystem seam the journal runs on (nil: the real
	// OS). Chaos tests inject an iofault.FaultFS here to kill and revive
	// the disk under the daemon.
	JournalFS iofault.FS
}

// JobSpec is a solve request.
type JobSpec struct {
	// Tenant names the submitting tenant for quota accounting, fair
	// queueing and metrics. Empty falls back to the request's X-Tenant
	// header, then to "default". Allowed: [a-zA-Z0-9._-], at most 64
	// bytes.
	Tenant string `json:"tenant"`
	// Priority is "low", "normal" (default) or "high". Under overload the
	// daemon sheds low first: each class may only fill a fraction of the
	// backlog (low ½, normal ¾, high all of it).
	Priority string `json:"priority"`
	// Kind selects the factorization: "chol" (default) or "lu".
	Kind string `json:"kind"`
	// N is the approximate matrix order (default 120).
	N int `json:"n"`
	// Seed drives the deterministic matrix generator (default 1). Equal
	// (kind, n, seed, block, procs) specs produce identical structures —
	// and therefore identical plan fingerprints.
	Seed uint64 `json:"seed"`
	// Procs is the number of virtual processors (default 4).
	Procs int `json:"procs"`
	// Block is the block/panel size (default 8).
	Block int `json:"block"`
	// Heuristic is rcp, mpo (default), dts, dtsmerge or treemem.
	Heuristic string `json:"heuristic"`
	// MemPercent caps each processor at this percentage of the schedule's
	// no-recycling requirement (0: uncapped).
	MemPercent int `json:"mem_percent"`
	// Verify computes the numeric residual after execution.
	Verify bool `json:"verify"`
	// HoldMS keeps the job's memory booked for this long after execution
	// (demos and tests of the admission queue).
	HoldMS int `json:"hold_ms"`
	// DropFrac injects deterministic message loss: this fraction of
	// protocol transmissions is dropped in transit and recovered by the
	// engine's retransmit layer. Range [0, 1]; 1 exhausts the retry budget
	// and fails the job (chaos testing).
	DropFrac float64 `json:"drop_frac"`
	// DupFrac injects duplicate deliveries, discarded by receiver dedup.
	DupFrac float64 `json:"dup_frac"`
	// FaultSeed selects the deterministic fault plan (default 1 when any
	// fault fraction is nonzero). Retries add the attempt number.
	FaultSeed uint64 `json:"fault_seed"`
	// DeadlineMS bounds the job end to end — queue wait, admission wait
	// and execution — in milliseconds. 0 uses the server's
	// DefaultDeadline (which may be "none"). Range [0, 600000].
	DeadlineMS int `json:"deadline_ms"`
}

// JobStatus enumerates a job's lifecycle. Pending → (Queued →) Running →
// Done/Failed; Queued appears only when admission has to wait.
type JobStatus string

const (
	StatusPending JobStatus = "pending"
	StatusQueued  JobStatus = "queued"
	StatusRunning JobStatus = "running"
	StatusDone    JobStatus = "done"
	StatusFailed  JobStatus = "failed"
)

// Job is the externally visible job record.
type Job struct {
	ID string `json:"id"`
	// Seq is the submission sequence number: monotonic across restarts
	// (seeded from the journal high-water mark), it defines the order
	// GET /v1/jobs lists jobs in.
	Seq    uint64    `json:"seq"`
	Spec   JobSpec   `json:"spec"`
	Status JobStatus `json:"status"`
	Error  string    `json:"error,omitempty"`
	// Recovered marks a job reconstructed from the journal after a
	// restart — re-queued if it had not started, failed explicitly if it
	// was executing when the previous daemon died.
	Recovered bool `json:"recovered,omitempty"`
	// Durable is true when the submit record is fsync'd in the journal: a
	// crash cannot lose this job. False when durability is disabled
	// (no -journal-dir) or the job was accepted while the journal was
	// degraded under -degraded-mode=serve.
	Durable bool `json:"durable"`

	// PlanSource says where the plan came from: compiled, memory, disk.
	PlanSource string `json:"plan_source,omitempty"`
	// Fingerprint is the plan's content address.
	Fingerprint string `json:"fingerprint,omitempty"`
	// Replanned is true when the unconstrained plan exceeded AVAIL_MEM and
	// the job was recompiled under a fitting per-processor capacity.
	Replanned bool `json:"replanned,omitempty"`
	// DemandUnits is the admitted aggregate memory high-water mark.
	DemandUnits int64 `json:"demand_units,omitempty"`
	// Tasks and Objects describe the compiled graph.
	Tasks   int `json:"tasks,omitempty"`
	Objects int `json:"objects,omitempty"`
	// Attempts counts execution attempts; >1 means fault-failed runs were
	// retried with fresh fault seeds.
	Attempts int `json:"attempts,omitempty"`
	// Retransmits is the machine-wide retransmission count of the engine's
	// reliability layer (nonzero only under injected loss).
	Retransmits int64 `json:"retransmits,omitempty"`
	// MAPs is the total number of memory allocation points executed.
	MAPs int `json:"maps,omitempty"`
	// PeakUnits is the max per-processor peak observed by the executor.
	PeakUnits int64 `json:"peak_units,omitempty"`
	// Residual is the verification residual (Verify jobs only).
	Residual float64 `json:"residual,omitempty"`
	// VerifyFindings carries the static verifier's diagnostics when the
	// plan was rejected before admission (Status failed).
	VerifyFindings []rapid.VerifyFinding `json:"verify_findings,omitempty"`
	// Coalesced is true when this request did not execute itself but
	// adopted the result of an identical in-flight job (CoalescedWith).
	Coalesced     bool   `json:"coalesced,omitempty"`
	CoalescedWith string `json:"coalesced_with,omitempty"`
	// InspectMS and ExecMS time the two phases.
	InspectMS float64 `json:"inspect_ms"`
	ExecMS    float64 `json:"exec_ms"`
	// StateUS is the executor's protocol-state occupancy summed across
	// processors, microseconds per state (REC/EXE/SND/MAP/END).
	StateUS map[string]int64 `json:"state_us,omitempty"`

	// submittedAt feeds the end-to-end latency histograms behind
	// /metrics; zero for jobs recovered from the journal (their original
	// submission time did not survive the crash, so they are excluded).
	submittedAt time.Time
}

// tenantStats aggregates per-tenant lifecycle counters for /metrics.
type tenantStats struct {
	submitted int64
	completed int64
	failed    int64
	shed      int64
	expired   int64
	recovered int64
}

// Server is the rapidd HTTP handler.
type Server struct {
	cfg     Config
	cache   *rapid.PlanCache
	metrics *trace.Metrics
	adm     *admission
	mux     *http.ServeMux

	// jnl is the write-ahead job journal (nil: durability disabled).
	jnl *journal.Journal
	// latency and queueWait feed the /metrics summaries: end-to-end
	// microseconds from submission to terminal state, and microseconds a
	// job spent queued before a worker picked it up.
	latency   *trace.Histogram
	queueWait *trace.Histogram

	// queue feeds the worker pool weighted-fair across tenants; flights
	// coalesces identical in-flight specs onto one execution (see
	// pool.go, wfq.go).
	queue   *wfqueue
	wg      sync.WaitGroup
	flights plancache.Group

	// health is the failure-domain state machine: durable → degraded →
	// recovering → durable, following the journal (see health.go).
	health health
	// shedSeq sequences the deterministic Retry-After jitter.
	shedSeq atomic.Uint64

	mu       sync.Mutex
	jobs     map[string]*Job
	done     map[string]chan struct{}
	cancels  map[string]context.CancelFunc
	tenants  map[string]*tenantStats
	seq      uint64
	draining bool

	// verified memoizes static-verifier verdicts by plan fingerprint, so
	// only the first serve of a plan pays for verification; repeat hits of
	// a cached plan (the steady-state serve path) pay a map lookup. Only
	// passing verdicts are recorded. Entries are a few dozen bytes per
	// distinct job shape, same growth as the plan cache keyspace.
	verifiedMu sync.Mutex
	verified   map[string]bool

	// execHook, when set (tests), runs after admission just before the
	// executor; a panic here exercises the job-level recovery path.
	execHook func(spec JobSpec)
	// planHook, when set (tests), may tamper with the compiled plan before
	// static verification, exercising the rejection path.
	planHook func(p *rapid.Plan)
}

// New creates a Server, panicking if the journal cannot be opened — use
// Open when JournalDir is set and the error should be handled.
func New(cfg Config) *Server {
	s, err := Open(cfg)
	if err != nil {
		panic(err)
	}
	return s
}

// Open creates a Server; with JournalDir set it replays the journal
// first, recovering queued jobs and explicitly failing the ones the
// previous daemon was executing when it died.
func Open(cfg Config) (*Server, error) {
	if cfg.Metrics == nil {
		cfg.Metrics = trace.NewMetrics()
	}
	if cfg.MaxJobRetries == 0 {
		cfg.MaxJobRetries = 2
	}
	if cfg.MaxJobRetries < 0 {
		cfg.MaxJobRetries = 0
	}
	if cfg.RetryBackoff <= 0 {
		cfg.RetryBackoff = 10 * time.Millisecond
	}
	if cfg.Workers == 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
		if cfg.Workers < 2 {
			cfg.Workers = 2
		}
	}
	if cfg.Workers < 1 {
		cfg.Workers = 1
	}
	switch {
	case cfg.QueueDepth == 0:
		cfg.QueueDepth = 64
	case cfg.QueueDepth < 0:
		cfg.QueueDepth = 0
	}
	if cfg.RetryAfter <= 0 {
		cfg.RetryAfter = time.Second
	}
	switch cfg.DegradedMode {
	case "":
		cfg.DegradedMode = DegradedReject
	case DegradedReject, DegradedServe:
	default:
		return nil, fmt.Errorf("rapidd: unknown degraded mode %q (want %q or %q)",
			cfg.DegradedMode, DegradedReject, DegradedServe)
	}
	if cfg.RearmBackoff <= 0 {
		cfg.RearmBackoff = 50 * time.Millisecond
	}
	if cfg.ShedJitterSeed == 0 {
		cfg.ShedJitterSeed = 1
	}
	weight := func(tenant string) float64 {
		if w, ok := cfg.TenantWeights[tenant]; ok && w > 0 {
			return w
		}
		return 1
	}
	s := &Server{
		cfg:     cfg,
		metrics: cfg.Metrics,
		cache: rapid.NewPlanCache(rapid.PlanCacheConfig{
			Dir:       cfg.CacheDir,
			MemBudget: cfg.CacheMemBudget,
			Metrics:   cfg.Metrics,
		}),
		adm:       newAdmission(cfg.AvailMem, cfg.TenantQuotas, cfg.DefaultTenantQuota),
		queue:     newWFQueue(cfg.QueueDepth, weight),
		latency:   trace.NewHistogram(),
		queueWait: trace.NewHistogram(),
		jobs:      make(map[string]*Job),
		done:      make(map[string]chan struct{}),
		cancels:   make(map[string]context.CancelFunc),
		tenants:   make(map[string]*tenantStats),
		verified:  make(map[string]bool),
	}
	s.health.stop = make(chan struct{})
	s.health.since = time.Now()
	s.metrics.Set("rapidd.health.state", int64(HealthDurable))
	// Quota-aware dispatch: the WFQ pop consults the admission ledgers so
	// workers skip tenants with no headroom (their jobs would only park at
	// admission, wedging pool slots), and admission wakes the queue when
	// headroom reappears. This keeps tenant isolation intact at any pool
	// size — a small-Workers deployment cannot have its whole pool wedged
	// behind one tenant's quota.
	s.queue.dispatchable = s.adm.dispatchable
	s.adm.onHeadroom = s.queue.wake
	if cfg.JournalDir != "" {
		jnl, rep, err := journal.Open(cfg.JournalDir, journal.Options{NoSync: cfg.JournalNoSync, FS: cfg.JournalFS})
		if err != nil {
			return nil, err
		}
		s.jnl = jnl
		// Recovery runs before the workers start, so recovered jobs keep
		// their original submission order at the head of the queue.
		s.recover(rep)
	}
	s.wg.Add(cfg.Workers)
	for i := 0; i < cfg.Workers; i++ {
		go s.worker()
	}
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("/v1/solve", s.handleSolve)
	s.mux.HandleFunc("/v1/jobs/", s.handleJob)
	s.mux.HandleFunc("/v1/jobs", s.handleJobs)
	s.mux.HandleFunc("/v1/stats", s.handleStats)
	s.mux.HandleFunc("/metrics", s.handleMetrics)
	s.mux.HandleFunc("/healthz", s.handleHealthz)
	return s, nil
}

// tenantStat returns the named tenant's counter block, creating it on
// first use. Called with s.mu NOT held.
func (s *Server) tenantStat(tenant string) *tenantStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.tenantStatLocked(tenant)
}

func (s *Server) tenantStatLocked(tenant string) *tenantStats {
	ts := s.tenants[tenant]
	if ts == nil {
		ts = &tenantStats{}
		s.tenants[tenant] = ts
	}
	return ts
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// maxSpecBytes bounds a solve request body; a spec is a few hundred bytes,
// so anything near the cap is garbage and is rejected before decoding.
// It equals the journal's spec cap so a body that passes the HTTP limit
// can always be journaled — with and without -journal-dir, the accepted
// input space is identical.
const maxSpecBytes = journal.MaxSpecBytes

// parseJobSpec decodes and normalizes a solve request body. It is the
// whole input surface of the solve endpoint, factored out so the fuzz
// target exercises exactly what the handler runs: any input either yields
// a spec whose fields are within their documented ranges, or an error —
// never a panic, never an out-of-range spec. defaultTenant (the request's
// X-Tenant header; may be empty) applies only when the spec names none.
func parseJobSpec(data []byte, defaultTenant string) (JobSpec, error) {
	var spec JobSpec
	if err := json.Unmarshal(data, &spec); err != nil {
		return spec, fmt.Errorf("rapidd: bad job spec: %v", err)
	}
	if spec.Tenant == "" {
		spec.Tenant = defaultTenant
	}
	if err := normalizeSpec(&spec); err != nil {
		return spec, err
	}
	return spec, nil
}

func (s *Server) handleSolve(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxSpecBytes))
	if err != nil {
		http.Error(w, "rapidd: bad job spec: "+err.Error(), http.StatusBadRequest)
		return
	}
	spec, err := parseJobSpec(body, r.Header.Get("X-Tenant"))
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	prio, _ := parsePriority(spec.Priority)
	deadline := time.Duration(spec.DeadlineMS) * time.Millisecond
	if deadline == 0 {
		deadline = s.cfg.DefaultDeadline
	}
	// The deadline clock starts at submission: queue wait counts.
	ctx, cancel := context.WithCancel(context.Background())
	if deadline > 0 {
		ctx, cancel = context.WithTimeout(context.Background(), deadline)
	}

	// Degraded-reject gate: while the journal cannot make a submit
	// durable, an honest 503 beats a silently weaker acknowledgement.
	// (The journalSubmit error path below catches the race where the
	// journal degrades between this check and the append.)
	if s.cfg.DegradedMode == DegradedReject && s.jnl != nil && s.healthState() != HealthDurable {
		cancel()
		s.refuseDegraded(w, prio)
		return
	}

	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		cancel()
		s.metrics.Inc("rapidd.jobs.refused_draining", 1)
		http.Error(w, "rapidd: draining, not accepting jobs", http.StatusServiceUnavailable)
		return
	}
	// Reserve a queue slot before anything else: shedding stays O(1) —
	// no job record, no journal write, no goroutine.
	slot, ok := s.queue.reserve(spec.Tenant, prio, false)
	if !ok {
		s.mu.Unlock()
		cancel()
		s.shed(w, spec.Tenant, prio)
		return
	}
	s.seq++
	id := fmt.Sprintf("j%04d", s.seq)
	tk := &task{
		id: id, spec: spec, prio: prio,
		vstart: slot.vstart, vfinish: slot.vfinish,
		submittedAt: time.Now(),
		ctx:         ctx, cancel: cancel, done: make(chan struct{}),
	}
	s.jobs[id] = &Job{ID: id, Seq: s.seq, Spec: spec, Status: StatusPending, submittedAt: tk.submittedAt}
	s.done[id] = tk.done
	s.cancels[id] = cancel
	seq := s.seq
	s.tenantStatLocked(spec.Tenant).submitted++
	s.mu.Unlock()

	// Write-ahead: the submit record is durable before a worker can see
	// the task (commit below), so the journal can never hold an admit or
	// completion for a job it never saw submitted.
	durable := s.jnl != nil
	if err := s.journalSubmit(seq, id, spec, body); err != nil {
		s.metrics.Inc("rapidd.journal.errors", 1)
		s.noteJournalError(err)
		if errors.Is(err, journal.ErrDegraded) && s.cfg.DegradedMode == DegradedServe {
			// Availability-first policy: accept the job with the weaker
			// guarantee made visible — Durable:false on the record, a
			// counter on the board. A crash before re-arm loses it.
			durable = false
			s.metrics.Inc("rapidd.jobs.nondurable", 1)
		} else {
			s.queue.abort(slot)
			s.mu.Lock()
			delete(s.jobs, id)
			delete(s.done, id)
			delete(s.cancels, id)
			s.tenantStatLocked(spec.Tenant).submitted--
			s.mu.Unlock()
			cancel()
			if errors.Is(err, journal.ErrDegraded) {
				s.refuseDegraded(w, prio)
				return
			}
			http.Error(w, "rapidd: journal write failed: "+err.Error(), http.StatusInternalServerError)
			return
		}
	}
	if durable {
		s.mu.Lock()
		s.jobs[id].Durable = true
		s.mu.Unlock()
	}
	s.queue.commit(slot, tk)
	s.metrics.Inc("rapidd.jobs.submitted", 1)

	if r.URL.Query().Get("wait") != "" {
		select {
		case <-tk.done:
		case <-r.Context().Done():
			// The synchronous client went away: abort the job if it has
			// not started executing, so an abandoned request cannot hold
			// a queue slot or book admission budget.
			cancel()
		}
	}
	s.writeJob(w, id)
}

func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	id := strings.TrimPrefix(r.URL.Path, "/v1/jobs/")
	s.mu.Lock()
	_, ok := s.jobs[id]
	s.mu.Unlock()
	if !ok {
		http.Error(w, "no such job", http.StatusNotFound)
		return
	}
	if r.URL.Query().Get("wait") != "" {
		s.mu.Lock()
		ch := s.done[id]
		s.mu.Unlock()
		select {
		case <-ch:
		case <-r.Context().Done():
			// The waiting client went away; release the handler goroutine
			// instead of parking it until the job (maybe hours later)
			// finishes. The job itself keeps running — only this watch
			// ends — and the response writes into a dead connection.
		}
	}
	s.writeJob(w, id)
}

// shed refuses one request in O(1) — no job record, no journal write, no
// goroutine — and tells the client when to come back. The Retry-After
// hint scales with how early the class sheds: low-priority traffic backs
// off 2× the base, normal 1×, high ½× (see retryAfterSecs), so retries
// return in priority order instead of re-stampeding at once.
func (s *Server) shed(w http.ResponseWriter, tenant string, prio int) {
	s.metrics.Inc("rapidd.jobs.shed", 1)
	s.metrics.Inc("rapidd.jobs.shed_"+priorityName(prio), 1)
	s.mu.Lock()
	s.tenantStatLocked(tenant).shed++
	s.mu.Unlock()
	w.Header().Set("Retry-After", strconv.Itoa(s.retryAfterSecs(prio)))
	http.Error(w, "rapidd: queue full, retry later", http.StatusTooManyRequests)
}

// retryAfterSecs computes the Retry-After hint for refused requests: the
// priority-scaled base (low 2×, normal 1×, high ½×, rounded up to whole
// seconds) plus a seeded jitter of up to one base, spreading backed-off
// clients over [base, 2×base] instead of re-stampeding at one instant.
// The jitter is a hash of (ShedJitterSeed, priority, refusal#) — a pure
// function of the request sequence, so identically seeded and identically
// driven servers emit identical hints and load tests stay reproducible.
func (s *Server) retryAfterSecs(prio int) int {
	after := s.cfg.RetryAfter
	switch prio {
	case prioLow:
		after *= 2
	case prioHigh:
		after /= 2
	}
	secs := int((after + time.Second - 1) / time.Second)
	n := s.shedSeq.Add(1)
	jitter := int(util.Hash64(s.cfg.ShedJitterSeed, uint64(prio), n) % uint64(secs+1))
	return secs + jitter
}

// journalSubmit appends the write-ahead submit record (no-op without a
// journal). body is the raw spec JSON as received — replay re-parses it
// through the same parseJobSpec the handler used.
func (s *Server) journalSubmit(seq uint64, id string, spec JobSpec, body []byte) error {
	if s.jnl == nil {
		return nil
	}
	return s.jnl.Append(journal.Record{
		Op: journal.OpSubmit, Seq: seq, ID: id,
		Tenant: spec.Tenant, Priority: spec.Priority, Spec: body,
	})
}

// journalAppend writes a non-submit record, surfacing failures as a
// counter and to the health plane — the job proceeds (the daemon must not
// wedge on a full disk), but the gap is visible and the re-arm loop
// starts working on it. Free-form fields are truncated to the journal's
// per-field cap first: dropping a completion record because a job's error
// string was long would resurrect an already-terminal job at replay.
func (s *Server) journalAppend(rec journal.Record) {
	if s.jnl == nil {
		return
	}
	rec.Status = truncateJournalField(rec.Status)
	rec.Error = truncateJournalField(rec.Error)
	if err := s.jnl.Append(rec); err != nil {
		s.metrics.Inc("rapidd.journal.errors", 1)
		s.noteJournalError(err)
	}
}

// truncateJournalField clamps s to the journal's per-field byte cap,
// marking the cut so a replayed record is recognizably shortened.
func truncateJournalField(s string) string {
	if len(s) <= journal.MaxFieldBytes {
		return s
	}
	const marker = "...(truncated)"
	return s[:journal.MaxFieldBytes-len(marker)] + marker
}

func (s *Server) handleJobs(w http.ResponseWriter, r *http.Request) {
	limit := -1
	if v := r.URL.Query().Get("limit"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 0 {
			http.Error(w, "rapidd: bad limit "+strconv.Quote(v), http.StatusBadRequest)
			return
		}
		limit = n
	}
	s.mu.Lock()
	list := make([]Job, 0, len(s.jobs))
	for _, j := range s.jobs {
		list = append(list, *j)
	}
	s.mu.Unlock()
	// Deterministic submission order. Sorting by Seq, not ID: IDs are
	// derived from Seq but compare lexicographically, which breaks once
	// the counter outgrows its zero padding (j10000 < j9999).
	sort.Slice(list, func(i, k int) bool { return list[i].Seq < list[k].Seq })
	if limit >= 0 && len(list) > limit {
		// The cap keeps the newest jobs — the tail of the submission
		// order — so a monitoring poll sees current traffic, bounded.
		list = list[len(list)-limit:]
	}
	writeJSON(w, list)
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	avail, inUse, peak, queued := s.adm.snapshot()
	tenantMem, tenantAdmQueue := s.adm.tenantSnapshot()
	s.mu.Lock()
	draining := s.draining
	s.mu.Unlock()
	s.verifiedMu.Lock()
	verified := len(s.verified)
	s.verifiedMu.Unlock()
	depth, capacity := s.queue.stats()
	stats := map[string]any{
		"verified_plans": verified,
		"counters":       s.metrics.Snapshot(),
		"gauges":         s.metrics.Gauges(),
		"health":         s.healthState().String(),
		"avail_mem":      avail,
		"mem_in_use":     inUse,
		"mem_peak":       peak,
		"jobs_queued":    queued,
		"workers":        s.cfg.Workers,
		"queue_len":      depth,
		"queue_cap":      capacity,
		"draining":       draining,
		"cache_entries":  s.cacheLen(),
		"plancache_line": rapid.CacheStats(s.metrics),
		"tenant_mem":     tenantMem,
		"tenant_queued":  tenantAdmQueue,
		"tenant_depth":   s.queue.depths(),
	}
	if s.jnl != nil {
		stats["journal"] = s.jnl.Stats()
	}
	writeJSON(w, stats)
}

// handleMetrics renders the Prometheus text exposition: every
// trace.Metrics counter, per-tenant gauges (queue depth, booked budget,
// quota) and counters (submitted/completed/failed/shed/expired/
// recovered), pool/admission gauges, and latency summaries.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	pw := trace.NewPromWriter()
	for name, v := range s.metrics.Snapshot() {
		pw.Counter("rapidd_"+trace.PromSanitize(strings.TrimPrefix(name, "rapidd.")), "", nil, float64(v))
	}

	avail, inUse, peakMem, queued := s.adm.snapshot()
	pw.Gauge("rapidd_avail_mem_units", "configured AVAIL_MEM budget", nil, float64(avail))
	pw.Gauge("rapidd_mem_in_use_units", "admitted memory demand", nil, float64(inUse))
	pw.Gauge("rapidd_mem_peak_units", "high-water admitted demand", nil, float64(peakMem))
	pw.Gauge("rapidd_admission_waiters", "jobs parked at admission", nil, float64(queued))
	depth, capacity := s.queue.stats()
	pw.Gauge("rapidd_queue_depth", "jobs queued for a worker", nil, float64(depth))
	pw.Gauge("rapidd_queue_capacity", "configured backlog bound", nil, float64(capacity))
	pw.Gauge("rapidd_workers", "worker-pool size", nil, float64(s.cfg.Workers))

	tenantMem, tenantAdmQueue := s.adm.tenantSnapshot()
	tenantDepth := s.queue.depths()
	s.mu.Lock()
	names := make([]string, 0, len(s.tenants))
	for name := range s.tenants {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		ts := s.tenants[name]
		lbl := map[string]string{"tenant": name}
		pw.Counter("rapidd_tenant_submitted_total", "jobs accepted per tenant", lbl, float64(ts.submitted))
		pw.Counter("rapidd_tenant_completed_total", "jobs completed per tenant", lbl, float64(ts.completed))
		pw.Counter("rapidd_tenant_failed_total", "jobs failed per tenant", lbl, float64(ts.failed))
		pw.Counter("rapidd_tenant_shed_total", "requests shed per tenant", lbl, float64(ts.shed))
		pw.Counter("rapidd_tenant_expired_total", "jobs past deadline per tenant", lbl, float64(ts.expired))
		pw.Counter("rapidd_tenant_recovered_total", "jobs recovered from the journal per tenant", lbl, float64(ts.recovered))
		pw.Gauge("rapidd_tenant_queue_depth", "queued jobs per tenant", lbl, float64(tenantDepth[name]))
		pw.Gauge("rapidd_tenant_mem_in_use_units", "booked budget per tenant", lbl, float64(tenantMem[name]))
		pw.Gauge("rapidd_tenant_admission_waiters", "admission waiters per tenant", lbl, float64(tenantAdmQueue[name]))
		pw.Gauge("rapidd_tenant_quota_units", "configured sub-quota per tenant", lbl, float64(s.adm.quota(name)))
	}
	s.mu.Unlock()

	pw.Summary("rapidd_job_latency_us", "submission-to-terminal latency", s.latency)
	pw.Summary("rapidd_queue_wait_us", "submission-to-worker-pickup wait", s.queueWait)
	pw.Gauge("rapidd_health_state", "0 durable, 1 degraded, 2 recovering", nil, float64(s.healthState()))
	if s.jnl != nil {
		st := s.jnl.Stats()
		degraded := 0.0
		if st.Degraded {
			degraded = 1
		}
		pw.Gauge("rapidd_journal_segments", "journal segment files", nil, float64(st.Segments))
		pw.Gauge("rapidd_journal_live_jobs", "non-terminal jobs in the journal", nil, float64(st.LiveJobs))
		pw.Gauge("rapidd_journal_degraded", "1 while the active segment is poisoned", nil, degraded)
		pw.Counter("rapidd_journal_records_total", "journal records this session", nil, float64(st.Records))
		pw.Counter("rapidd_journal_compactions_total", "journal compactions this session", nil, float64(st.Compactions))
		pw.Counter("rapidd_journal_rearms_total", "successful re-arms after degradation", nil, float64(st.Rearms))
		pw.Counter("rapidd_journal_gap_records_total", "gap markers written by re-arms", nil, float64(st.GapRecords))
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	pw.WriteTo(w)
}

func (s *Server) cacheLen() int {
	// The cache does not expose Len publicly through rapid; report via
	// counters instead (misses == entries ever compiled here).
	return int(s.metrics.Get("plancache.miss"))
}

func (s *Server) writeJob(w http.ResponseWriter, id string) {
	s.mu.Lock()
	j := *s.jobs[id]
	s.mu.Unlock()
	writeJSON(w, j)
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

// validTenant reports whether name is a legal tenant label: 1–64 bytes
// of [a-zA-Z0-9._-]. The charset is the intersection of what Prometheus
// label values render cleanly and what journal records and header values
// pass through unescaped.
func validTenant(name string) bool {
	if len(name) == 0 || len(name) > 64 {
		return false
	}
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9', c == '.', c == '_', c == '-':
		default:
			return false
		}
	}
	return true
}

func normalizeSpec(spec *JobSpec) error {
	if spec.Tenant == "" {
		spec.Tenant = "default"
	}
	if !validTenant(spec.Tenant) {
		return fmt.Errorf("rapidd: bad tenant %q (want 1-64 bytes of [a-zA-Z0-9._-])", spec.Tenant)
	}
	if _, ok := parsePriority(spec.Priority); !ok {
		return fmt.Errorf("rapidd: unknown priority %q (want low, normal or high)", spec.Priority)
	}
	if spec.Priority == "" {
		spec.Priority = "normal"
	}
	if spec.Kind == "" {
		spec.Kind = "chol"
	}
	if spec.Kind != "chol" && spec.Kind != "lu" {
		return fmt.Errorf("rapidd: unknown kind %q (want chol or lu)", spec.Kind)
	}
	if spec.N == 0 {
		spec.N = 120
	}
	if spec.N < 8 || spec.N > 20000 {
		return fmt.Errorf("rapidd: n=%d out of range [8, 20000]", spec.N)
	}
	if spec.Seed == 0 {
		spec.Seed = 1
	}
	if spec.Procs == 0 {
		spec.Procs = 4
	}
	if spec.Procs < 1 || spec.Procs > 256 {
		return fmt.Errorf("rapidd: procs=%d out of range [1, 256]", spec.Procs)
	}
	if spec.Block == 0 {
		spec.Block = 8
	}
	if spec.Block < 1 || spec.Block > 256 {
		return fmt.Errorf("rapidd: block=%d out of range [1, 256]", spec.Block)
	}
	if spec.Heuristic == "" {
		spec.Heuristic = "mpo"
	}
	if _, err := parseHeuristic(spec.Heuristic); err != nil {
		return err
	}
	if spec.MemPercent < 0 || spec.MemPercent > 100 {
		return fmt.Errorf("rapidd: mem_percent=%d out of range [0, 100]", spec.MemPercent)
	}
	if spec.HoldMS < 0 || spec.HoldMS > 60000 {
		return fmt.Errorf("rapidd: hold_ms=%d out of range [0, 60000]", spec.HoldMS)
	}
	if spec.DropFrac < 0 || spec.DropFrac > 1 {
		return fmt.Errorf("rapidd: drop_frac=%g out of range [0, 1]", spec.DropFrac)
	}
	if spec.DupFrac < 0 || spec.DupFrac > 1 {
		return fmt.Errorf("rapidd: dup_frac=%g out of range [0, 1]", spec.DupFrac)
	}
	if (spec.DropFrac > 0 || spec.DupFrac > 0) && spec.FaultSeed == 0 {
		spec.FaultSeed = 1
	}
	if spec.DeadlineMS < 0 || spec.DeadlineMS > 600000 {
		return fmt.Errorf("rapidd: deadline_ms=%d out of range [0, 600000]", spec.DeadlineMS)
	}
	return nil
}

// faultsFor derives the fault plan of one execution attempt. Retries shift
// the seed so a re-run does not deterministically replay the exact loss
// pattern that exhausted the previous attempt's retry budget.
func faultsFor(spec JobSpec, attempt int) rapid.Faults {
	if spec.DropFrac == 0 && spec.DupFrac == 0 {
		return rapid.Faults{}
	}
	return rapid.Faults{
		Seed:     spec.FaultSeed + uint64(attempt),
		DropFrac: spec.DropFrac,
		DupFrac:  spec.DupFrac,
	}
}

func parseHeuristic(name string) (rapid.Heuristic, error) {
	switch strings.ToLower(name) {
	case "rcp":
		return rapid.RCP, nil
	case "mpo":
		return rapid.MPO, nil
	case "dts":
		return rapid.DTS, nil
	case "dtsmerge":
		return rapid.DTSMerge, nil
	case "treemem":
		return rapid.TreeMem, nil
	}
	return 0, fmt.Errorf("rapidd: unknown heuristic %q", name)
}

// setStatus publishes a job state transition.
func (s *Server) setStatus(id string, st JobStatus) {
	s.mu.Lock()
	s.jobs[id].Status = st
	s.mu.Unlock()
}

// update mutates the job record under the lock.
func (s *Server) update(id string, f func(*Job)) {
	s.mu.Lock()
	f(s.jobs[id])
	s.mu.Unlock()
}

// attempt runs one execution attempt, converting a panic anywhere in the
// compile/execute path into a job failure instead of a daemon crash. The
// booked admission units are released during unwinding (solve defers the
// release), so a panicking job cannot leak budget.
func (s *Server) attempt(ctx context.Context, id string, spec JobSpec, attempt int) (err error) {
	defer func() {
		if r := recover(); r != nil {
			s.metrics.Inc("rapidd.jobs.panics", 1)
			err = fmt.Errorf("rapidd: job panicked: %v", r)
		}
	}()
	return s.solve(ctx, id, spec, attempt)
}

// problem abstracts the two factorization kinds for the executor.
type problem struct {
	prog   *rapid.Program
	kernel rapid.KernelFunc
	init   rapid.InitFunc
	bufLen func(rapid.ObjID) int64
	verify func(rep *rapid.Report) float64
}

func (s *Server) solve(ctx context.Context, id string, spec JobSpec, attempt int) error {
	h, _ := parseHeuristic(spec.Heuristic)
	pb, err := buildProblem(spec)
	if err != nil {
		return err
	}
	opt := rapid.Options{Procs: spec.Procs, Heuristic: h}
	if spec.MemPercent > 0 {
		// The percentage is relative to the schedule's no-recycling total,
		// which itself requires a throwaway compile; cache that one too.
		free, _, err := rapid.CompileCached(pb.prog, opt, s.cache)
		if err != nil {
			return err
		}
		opt.Memory = free.TOT() * int64(spec.MemPercent) / 100
	}

	t0 := time.Now()
	plan, src, err := rapid.CompileCached(pb.prog, opt, s.cache)
	if err != nil {
		return err
	}
	// The effective budget a single job must fit alone is the tighter of
	// the machine budget and its tenant's sub-quota.
	budget := s.cfg.AvailMem
	if q := s.adm.quota(spec.Tenant); q > 0 && (budget <= 0 || q < budget) {
		budget = q
	}
	replanned := false
	if budget > 0 {
		plan, opt, replanned, err = s.planForBudget(pb.prog, opt, plan, budget)
		if err != nil {
			return err
		}
	}
	if !plan.Executable() {
		return fmt.Errorf("rapidd: plan not executable under memory budget %d (MIN_MEM %d); try dtsmerge or a larger budget", opt.Memory, plan.MinMem())
	}
	if s.planHook != nil {
		s.planHook(plan)
	}
	// Static verification gates admission: a defective plan (stale cache,
	// planner bug, tampering) is rejected with its findings before any
	// budget is booked or any executor started. Verdicts are memoized by
	// fingerprint so repeat serves of a cached plan skip re-verification.
	already := false
	if plan.Fingerprint != "" {
		s.verifiedMu.Lock()
		already = s.verified[plan.Fingerprint]
		s.verifiedMu.Unlock()
	}
	if already {
		s.metrics.Inc("rapidd.verify.cached", 1)
	} else {
		if res := rapid.VerifyPlan(plan); !res.OK() {
			s.metrics.Inc("rapidd.verify.rejected", 1)
			s.update(id, func(j *Job) { j.VerifyFindings = res.Findings })
			return fmt.Errorf("rapidd: plan rejected by static verifier: %v", res.Err())
		}
		s.metrics.Inc("rapidd.verify.passed", 1)
		if plan.Fingerprint != "" {
			s.verifiedMu.Lock()
			s.verified[plan.Fingerprint] = true
			s.verifiedMu.Unlock()
		}
	}
	inspectMS := float64(time.Since(t0).Microseconds()) / 1000
	demand := aggregateDemand(plan)
	s.update(id, func(j *Job) {
		j.PlanSource = string(src)
		j.Fingerprint = plan.Fingerprint
		j.Replanned = replanned
		j.DemandUnits = demand
		j.Tasks = plan.Schedule.G.NumTasks()
		j.Objects = plan.Schedule.G.NumObjects()
		j.InspectMS = inspectMS
	})

	// Admission: book the aggregate high-water mark before executing.
	// The job's context bounds the wait — a deadline that expires or a
	// client that disconnects while parked here aborts without booking.
	err = s.adm.acquireCtx(ctx, spec.Tenant, demand, func() {
		s.setStatus(id, StatusQueued)
		s.metrics.Inc("rapidd.jobs.queued", 1)
	})
	if err != nil {
		return err
	}
	defer s.adm.release(spec.Tenant, demand)
	if err := ctx.Err(); err != nil {
		return err
	}
	// The admit record marks the job in-flight: after a crash, replay
	// fails it explicitly instead of re-running it (its budget was booked
	// and its executor may have had side effects mid-flight).
	s.journalAppend(journal.Record{Op: journal.OpAdmit, ID: id, Demand: demand})
	s.setStatus(id, StatusRunning)

	if s.execHook != nil {
		s.execHook(spec)
	}
	t1 := time.Now()
	rep, err := rapid.Execute(pb.prog, plan, rapid.ExecOptions{
		Kernel: pb.kernel, Init: pb.init, BufLen: pb.bufLen,
		Faults:       faultsFor(spec, attempt),
		BlockTimeout: s.cfg.JobTimeout,
	})
	if err != nil {
		return err
	}
	execMS := float64(time.Since(t1).Microseconds()) / 1000
	if spec.HoldMS > 0 {
		time.Sleep(time.Duration(spec.HoldMS) * time.Millisecond)
	}

	var peak int64
	maps := 0
	for _, m := range rep.MAPsPerProc {
		maps += m
	}
	for _, p := range rep.PeakUnits {
		if p > peak {
			peak = p
		}
	}
	residual := 0.0
	if spec.Verify {
		residual = pb.verify(rep)
	}
	stateUS := stateOccupancyUS(rep.Occupancy)
	for name, us := range stateUS {
		s.metrics.Inc("rapidd.state."+strings.ToLower(name)+"_us", us)
	}
	rel := rapid.SumReliability(rep.Reliability)
	s.metrics.Inc("rapidd.reliability.retransmits", int64(rel.Retransmits))
	s.metrics.Inc("rapidd.reliability.dropped", int64(rel.Dropped))
	s.metrics.Inc("rapidd.reliability.dups_sent", int64(rel.DupsSent))
	s.metrics.Inc("rapidd.reliability.dups_dropped", int64(rel.DupDropped))
	s.metrics.Inc("rapidd.reliability.acked", int64(rel.Acked))
	s.update(id, func(j *Job) {
		j.Retransmits = int64(rel.Retransmits)
		j.MAPs = maps
		j.PeakUnits = peak
		j.Residual = residual
		j.ExecMS = execMS
		j.StateUS = stateUS
	})
	return nil
}

// stateOccupancyUS folds per-processor protocol-state occupancy (seconds)
// into machine-wide microseconds per state.
func stateOccupancyUS(occ []rapid.StateOccupancy) map[string]int64 {
	if len(occ) == 0 {
		return nil
	}
	names := rapid.StateNames()
	out := make(map[string]int64, len(names))
	for si, name := range names {
		var us int64
		for _, o := range occ {
			us += int64(o[si] * 1e6)
		}
		out[name] = us
	}
	return out
}

// planForBudget ensures a single job fits its budget on its own — the
// tighter of AVAIL_MEM and the tenant's sub-quota: if the plan's
// aggregate footprint exceeds it, recompile with a per-processor capacity
// that cannot overflow it (sum of per-processor peaks ≤ procs ×
// capacity), first with the requested heuristic, then with DTS + slice
// merging, whose Theorem-2 space bound makes tight budgets executable
// when time-oriented orderings are not.
func (s *Server) planForBudget(prog *rapid.Program, opt rapid.Options, plan *rapid.Plan, budget int64) (*rapid.Plan, rapid.Options, bool, error) {
	demand := aggregateDemand(plan)
	if demand <= budget {
		return plan, opt, false, nil
	}
	capacity := budget / int64(opt.Procs)
	capped := opt
	if capped.Memory <= 0 || capped.Memory > capacity {
		capped.Memory = capacity
	}
	s.metrics.Inc("rapidd.jobs.replanned", 1)
	tight, _, err := rapid.CompileCached(prog, capped, s.cache)
	if err == nil && tight.Executable() {
		return tight, capped, true, nil
	}
	merged := capped
	merged.Heuristic = rapid.DTSMerge
	tight, _, err = rapid.CompileCached(prog, merged, s.cache)
	if err != nil {
		return nil, merged, true, err
	}
	return tight, merged, true, nil
}

// aggregateDemand is the job's machine-wide memory claim: the sum over
// processors of the MAP plan's peak (permanent + live volatile) usage.
func aggregateDemand(plan *rapid.Plan) int64 {
	var sum int64
	for i := range plan.Mem.Procs {
		sum += plan.Mem.Procs[i].Peak
	}
	return sum
}

// buildProblem constructs the matrix and task graph for a spec. Equal
// specs yield identical structures (generators are seeded), which is what
// makes the plan cache effective across requests.
func buildProblem(spec JobSpec) (*problem, error) {
	rng := util.NewRNG(spec.Seed)
	nx := int(math.Sqrt(float64(spec.N) * 1.3))
	if nx < 2 {
		nx = 2
	}
	ny := spec.N / nx
	if ny < 2 {
		ny = 2
	}
	switch spec.Kind {
	case "chol":
		pat := sparse.AddRandomSymLinks(sparse.Grid2D(nx, ny, true), spec.N/8, rng)
		pat = pat.PermuteSym(sparse.RCM(pat))
		a := sparse.SPDValues(pat, rng)
		pr, err := chol.Build(a, chol.Options{Procs: spec.Procs, BlockSize: spec.Block})
		if err != nil {
			return nil, err
		}
		return &problem{
			prog:   rapid.FromGraph(pr.G),
			kernel: pr.Kernel,
			init:   pr.InitObject,
			verify: func(rep *rapid.Report) float64 { return cholResidual(a, pr, rep) },
		}, nil
	case "lu":
		pat := sparse.AddRandomUnsymLinks(sparse.Grid2D(nx, ny, true), spec.N/4, rng)
		a := sparse.UnsymValues(pat, rng)
		pr, err := lu.Build(a, lu.Options{Procs: spec.Procs, BlockSize: spec.Block})
		if err != nil {
			return nil, err
		}
		return &problem{
			prog:   rapid.FromGraph(pr.G),
			kernel: pr.Kernel,
			init:   pr.InitObject,
			bufLen: pr.BufLen,
			verify: func(rep *rapid.Report) float64 { return luResidual(a, pr, rep, spec.Seed) },
		}, nil
	}
	return nil, fmt.Errorf("rapidd: unknown kind %q", spec.Kind)
}

// cholResidual computes ‖A−LLᵀ‖_F/‖A‖_F over the lower triangle.
func cholResidual(a *sparse.Matrix, pr *chol.Problem, rep *rapid.Report) float64 {
	l := pr.AssembleL(rep.Objects)
	rec := make([]float64, a.N*a.N)
	blas.Gemm(false, true, a.N, a.N, a.N, 1, l, a.N, l, a.N, rec, a.N)
	ad := a.ToDense()
	num, den := 0.0, 0.0
	for i := 0; i < a.N; i++ {
		for j := 0; j <= i; j++ {
			d := ad[i*a.N+j] - rec[i*a.N+j]
			num += d * d
			den += ad[i*a.N+j] * ad[i*a.N+j]
		}
	}
	return math.Sqrt(num / den)
}

// luResidual solves A x = b for a known x and reports max |x−x*|.
func luResidual(a *sparse.Matrix, pr *lu.Problem, rep *rapid.Report, seed uint64) float64 {
	rng := util.NewRNG(seed + 12345)
	xTrue := make([]float64, a.N)
	for i := range xTrue {
		xTrue[i] = rng.NormFloat64()
	}
	b := make([]float64, a.N)
	for j := 0; j < a.N; j++ {
		vals := a.ColVal(j)
		for k, i := range a.Col(j) {
			b[i] += vals[k] * xTrue[j]
		}
	}
	x := pr.Solve(rep.Objects, b)
	maxErr := 0.0
	for i := range x {
		if d := math.Abs(x[i] - xTrue[i]); d > maxErr {
			maxErr = d
		}
	}
	return maxErr
}
