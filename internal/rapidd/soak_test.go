// Soak test: sustained mixed traffic — hot cached keys, absorbable message
// faults, unsurvivable fault storms, overload bursts and tight deadlines —
// against one server instance, then proof that nothing accumulated: no
// goroutine leak, no admission-budget leak, queue drained, and the verdict
// memo bounded by the number of distinct plans, not the number of requests.
//
// The package is rapidd_test (external) so it can drive the server through
// internal/loadgen, which imports rapidd.
package rapidd_test

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"net/http"
	"net/http/httptest"
	"runtime"
	"testing"
	"time"

	"repro/internal/loadgen"
	"repro/internal/rapidd"
	"repro/internal/trace"
)

var soakDur = flag.Duration("soak", 10*time.Second, "minimum soak-test traffic duration (CI passes 60s)")

type soakStats struct {
	Counters      map[string]int64 `json:"counters"`
	MemInUse      int64            `json:"mem_in_use"`
	MemPeak       int64            `json:"mem_peak"`
	AvailMem      int64            `json:"avail_mem"`
	JobsQueued    int              `json:"jobs_queued"`
	QueueLen      int              `json:"queue_len"`
	VerifiedPlans int              `json:"verified_plans"`
	Draining      bool             `json:"draining"`
}

func readStats(t *testing.T, url string) soakStats {
	t.Helper()
	resp, err := http.Get(url + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st soakStats
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	return st
}

func TestSoakMixedTraffic(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test skipped under -short")
	}
	goroutinesBefore := runtime.NumGoroutine()

	// Learn the standard job's footprint so AVAIL_MEM can be set to fit
	// roughly two concurrent jobs — admission queueing happens for real.
	probe := rapidd.New(rapidd.Config{})
	tsProbe := httptest.NewServer(probe)
	ref := solveSync(t, tsProbe, rapidd.JobSpec{Kind: "chol", N: 90, Seed: 1, Procs: 2})
	tsProbe.Close()
	if ref.Status != rapidd.StatusDone || ref.DemandUnits <= 0 {
		t.Fatalf("probe: %s demand=%d", ref.Status, ref.DemandUnits)
	}

	metrics := trace.NewMetrics()
	srv := rapidd.New(rapidd.Config{
		Workers:       3,
		QueueDepth:    2,
		AvailMem:      ref.DemandUnits * 5 / 2,
		MaxJobRetries: 1,
		RetryBackoff:  2 * time.Millisecond,
		JobTimeout:    5 * time.Second,
		Metrics:       metrics,
	})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	// The distinct structures all batches draw from: at most maxKeys plan
	// fingerprints ever exist (replans under the budget add a handful).
	const maxKeys = 4
	base := loadgen.Config{URL: ts.URL, Keys: maxKeys, N: 90, Procs: 2, Kind: "chol"}
	batches := []struct {
		name string
		mut  func(c *loadgen.Config)
	}{
		{"hot-cached", func(c *loadgen.Config) { c.Clients = 3; c.Requests = 24; c.Skew = 1.5 }},
		{"faults-absorbed", func(c *loadgen.Config) {
			c.Clients = 3
			c.Requests = 12
			c.FaultFrac = 0.5
			c.DropFrac = 0.2
			c.DupFrac = 0.2
		}},
		{"fault-storm", func(c *loadgen.Config) {
			c.Clients = 2
			c.Requests = 4
			c.FaultFrac = 0.5
			c.DropFrac = 1 // unsurvivable: exercises retry + failure paths
		}},
		{"overload", func(c *loadgen.Config) {
			c.Clients = 8 // > workers + queue: some requests must shed
			c.Requests = 24
			c.HoldMS = 20
		}},
		{"deadline-pressure", func(c *loadgen.Config) {
			c.Clients = 4
			c.Requests = 12
			c.DeadlineMS = 30
			c.HoldMS = 20
		}},
	}

	start := time.Now()
	var issued, done, failed, shed int64
	for round := 0; time.Since(start) < *soakDur; round++ {
		b := batches[round%len(batches)]
		cfg := base
		cfg.Seed = uint64(round + 1)
		b.mut(&cfg)
		res, err := loadgen.Run(cfg, nil)
		if err != nil {
			t.Fatalf("round %d (%s): %v", round, b.name, err)
		}
		if res.Errors != 0 {
			t.Fatalf("round %d (%s): %d transport/protocol errors", round, b.name, res.Errors)
		}
		if res.Done+res.Failed+res.Shed != res.Issued {
			t.Fatalf("round %d (%s): outcomes do not partition issued: %+v", round, b.name, res)
		}
		issued += res.Issued
		done += res.Done
		failed += res.Failed
		shed += res.Shed
	}
	t.Logf("soak: %d issued, %d done, %d failed, %d shed over %v", issued, done, failed, shed, time.Since(start).Round(time.Second))
	if done == 0 {
		t.Fatal("soak completed no jobs")
	}

	// Drain and verify nothing is left behind.
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	if err := srv.Drain(ctx); err != nil {
		t.Fatal(err)
	}
	st := readStats(t, ts.URL)
	if st.MemInUse != 0 || st.JobsQueued != 0 || st.QueueLen != 0 {
		t.Fatalf("state left after drain: inUse=%d queued=%d queueLen=%d", st.MemInUse, st.JobsQueued, st.QueueLen)
	}
	if st.MemPeak > st.AvailMem {
		t.Fatalf("admitted peak %d exceeded AVAIL_MEM %d", st.MemPeak, st.AvailMem)
	}
	if !st.Draining {
		t.Fatal("stats do not report draining")
	}
	// The verdict memo is keyed by plan fingerprint: bounded by distinct
	// structures (plus budget replans), no matter how many requests ran.
	if st.VerifiedPlans == 0 || st.VerifiedPlans > 4*maxKeys {
		t.Fatalf("verdict memo has %d entries for %d issued requests over %d keys", st.VerifiedPlans, issued, maxKeys)
	}

	// Goroutine leak: the pool exits on drain; HTTP keep-alives and timer
	// goroutines wind down shortly after.
	ts.Close()
	http.DefaultClient.CloseIdleConnections()
	deadline := time.Now().Add(15 * time.Second)
	for {
		runtime.GC()
		if n := runtime.NumGoroutine(); n <= goroutinesBefore+8 {
			break
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			t.Fatalf("goroutine leak: %d before, %d after:\n%s",
				goroutinesBefore, runtime.NumGoroutine(), buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(50 * time.Millisecond)
	}
}

// solveSync mirrors the internal test helper for the external package.
func solveSync(t *testing.T, ts *httptest.Server, spec rapidd.JobSpec) rapidd.Job {
	t.Helper()
	body, _ := json.Marshal(spec)
	resp, err := http.Post(ts.URL+"/v1/solve?wait=1", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var job rapidd.Job
	if err := json.NewDecoder(resp.Body).Decode(&job); err != nil {
		t.Fatal(err)
	}
	return job
}
